// Command scip-bench regenerates the paper's tables and figures on the
// synthetic workload profiles.
//
// Usage:
//
//	scip-bench [-scale 0.01] [-seeds 3] [-quick] [-parallel] [-workers N] [-json BENCH.json] \
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	    [all|table1|fig1|fig3|fig4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablation ...]
//
// With no experiment arguments it lists the available experiments.
//
// Independent experiment cells run on a bounded worker pool (-parallel,
// default on, sized by GOMAXPROCS or -workers); table output is
// byte-identical to the serial run (-parallel=false). Per-figure wall
// times are written as machine-readable JSON to the -json path.
// -cpuprofile/-memprofile write pprof profiles covering the selected
// experiments (see EXPERIMENTS.md "Profiling the hot paths").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/scip-cache/scip/internal/exp"
	"github.com/scip-cache/scip/internal/runner"
	"github.com/scip-cache/scip/internal/sim"
)

// benchReport is the BENCH.json document: one timing entry per figure
// plus the run configuration, so speedup comparisons (serial vs parallel)
// are reproducible from the artefacts alone.
type benchReport struct {
	GeneratedUnix int64            `json:"generated_unix"`
	Scale         float64          `json:"scale"`
	Seeds         int              `json:"seeds"`
	Quick         bool             `json:"quick"`
	Parallel      bool             `json:"parallel"`
	Workers       int              `json:"workers"`
	GoMaxProcs    int              `json:"gomaxprocs"`
	Experiments   []experimentTime `json:"experiments"`
	TotalSeconds  float64          `json:"total_seconds"`
}

type experimentTime struct {
	Name    string  `json:"name"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func main() {
	scale := flag.Float64("scale", 0.01, "trace scale relative to the paper's full workloads")
	seeds := flag.Int("seeds", 3, "number of generation seeds to average over")
	quick := flag.Bool("quick", false, "trim parameter grids for a smoke run")
	parallel := flag.Bool("parallel", true, "run independent experiment cells on a worker pool (output is byte-identical either way)")
	workers := flag.Int("workers", 0, "worker pool size with -parallel (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "BENCH.json", "write per-figure timings as JSON to this path (empty disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stopProfiles, err := sim.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := exp.DefaultConfig(os.Stdout)
	cfg.Scale = *scale
	cfg.Quick = *quick
	cfg.Seeds = cfg.Seeds[:0]
	for i := 0; i < *seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, int64(i+1))
	}
	cfg.Workers = 1
	if *parallel {
		cfg.Workers = *workers // 0 sizes the pool by GOMAXPROCS
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("available experiments:")
		for _, r := range exp.Runners() {
			fmt.Printf("  %-10s %s\n", r.Name, r.Title)
		}
		fmt.Println("  all        run everything")
		return
	}
	var selected []exp.Runner
	for _, a := range args {
		if a == "all" {
			selected = exp.Runners()
			break
		}
		r, ok := exp.Lookup(a)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
		selected = append(selected, r)
	}
	report := benchReport{
		//scip:wallclock-ok BENCH.json metadata: records when the figures were generated, never feeds a decision
		GeneratedUnix: time.Now().Unix(),
		Scale:         *scale,
		Seeds:         *seeds,
		Quick:         *quick,
		Parallel:      *parallel,
		Workers:       runner.Workers(cfg.Workers),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	total := time.Now() //scip:wallclock-ok BENCH.json metering: wall time of the whole figure run
	for _, r := range selected {
		start := time.Now() //scip:wallclock-ok BENCH.json metering: wall time per experiment
		fmt.Printf("== %s: %s\n", r.Name, r.Title)
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start) //scip:wallclock-ok BENCH.json metering: wall time per experiment
		fmt.Printf("== %s done in %s\n\n", r.Name, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, experimentTime{
			Name: r.Name, Title: r.Title, Seconds: elapsed.Seconds(),
		})
	}
	report.TotalSeconds = time.Since(total).Seconds() //scip:wallclock-ok BENCH.json metering: wall time of the whole figure run
	if *jsonPath != "" {
		// Merge rather than overwrite: BENCH.json also carries the
		// scale_matrix section of `make bench-scale`, which a figure
		// rerun must not clobber (and vice versa).
		if err := sim.MergeJSON(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("timings written to %s (total %.2fs, %d workers)\n",
			*jsonPath, report.TotalSeconds, report.Workers)
	}
}
