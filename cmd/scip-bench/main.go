// Command scip-bench regenerates the paper's tables and figures on the
// synthetic workload profiles.
//
// Usage:
//
//	scip-bench [-scale 0.01] [-seeds 3] [-quick] [all|table1|fig1|fig3|fig4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablation ...]
//
// With no experiment arguments it lists the available experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/scip-cache/scip/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 0.01, "trace scale relative to the paper's full workloads")
	seeds := flag.Int("seeds", 3, "number of generation seeds to average over")
	quick := flag.Bool("quick", false, "trim parameter grids for a smoke run")
	flag.Parse()

	cfg := exp.DefaultConfig(os.Stdout)
	cfg.Scale = *scale
	cfg.Quick = *quick
	cfg.Seeds = cfg.Seeds[:0]
	for i := 0; i < *seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, int64(i+1))
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("available experiments:")
		for _, r := range exp.Runners() {
			fmt.Printf("  %-10s %s\n", r.Name, r.Title)
		}
		fmt.Println("  all        run everything")
		return
	}
	var selected []exp.Runner
	for _, a := range args {
		if a == "all" {
			selected = exp.Runners()
			break
		}
		r, ok := exp.Lookup(a)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
		selected = append(selected, r)
	}
	for _, r := range selected {
		start := time.Now()
		fmt.Printf("== %s: %s\n", r.Name, r.Title)
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s done in %s\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}
