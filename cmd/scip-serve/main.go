// Command scip-serve is a networked cache daemon fronting the sharded
// SCIP cache: an HTTP server with GET/PUT/DELETE on /obj/{key}, per-shard
// request coalescing for concurrent misses, a configurable upstream
// origin (timeout, bounded retry with exponential backoff, optional
// serve-stale degradation), Prometheus metrics on /metrics, liveness and
// status endpoints, and graceful shutdown that drains in-flight requests
// on SIGINT/SIGTERM.
//
// Usage:
//
//	scip-serve [-addr :8344] [-policy SCIP] [-cache 256MiB] [-shards 8] [-seed 1]
//	    [-mode mutex|actor] [-depth N] [-nolat]
//	    [-origin URL] [-origin-timeout 2s] [-origin-retries 2] [-origin-backoff 50ms]
//	    [-origin-latency 0] [-serve-stale] [-max-body 1MiB] [-drain 10s] [-interval 10s]
//	    [-peers URL,URL,... -self URL] [-peer-vnodes 64] [-peer-fanout 1]
//	    [-peer-timeout 500ms] [-peer-retries 0] [-peer-backoff 25ms]
//
// Without -origin the daemon fronts a deterministic synthetic origin
// (bodies are a pure function of the key), which is what trace replay
// and the end-to-end tests use; with -origin URL misses are fetched from
// GET URL/<key>. With -peers (the full fleet node list, including this
// node's own -self URL) a declared-size miss first asks the key's ring
// successors for their stored body via GET /peer/{key} and only falls
// back to the origin when no peer holds it — see CLUSTER.md. See
// OPERATIONS.md for the endpoint contract, the full metrics catalogue
// and worked examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/scip-cache/scip/internal/cluster"
	"github.com/scip-cache/scip/internal/server"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	policy := flag.String("policy", "SCIP", "sharded policy: SCIP, SCI, LRU, LRB, 2Q, TinyLFU, AdaptSize or a scorer: spec")
	cacheSize := flag.String("cache", "256MiB", "cache capacity (KiB/MiB/GiB suffixes)")
	shards := flag.Int("shards", 8, "shard count (rounded up to a power of two)")
	seed := flag.Int64("seed", 1, "policy seed (shard i gets seed+i)")
	modeFlag := flag.String("mode", "mutex", "shard concurrency mode: mutex or actor (DESIGN.md §10)")
	depth := flag.Int("depth", 0, "actor mailbox depth with -mode actor (0 = shard package default)")
	nolat := flag.Bool("nolat", false, "skip per-request access latency timing (statusz/metrics report zero latency)")
	originURL := flag.String("origin", "", "upstream origin base URL (empty: deterministic synthetic origin)")
	originTimeout := flag.Duration("origin-timeout", 2*time.Second, "per-attempt origin fetch timeout")
	originRetries := flag.Int("origin-retries", 2, "origin fetch retries after the first failure")
	originBackoff := flag.Duration("origin-backoff", 50*time.Millisecond, "delay before the first retry (doubles per attempt)")
	originLatency := flag.Duration("origin-latency", 0, "artificial synthetic-origin latency (ignored with -origin)")
	serveStale := flag.Bool("serve-stale", false, "serve a stored stale body when every origin attempt fails")
	maxBody := flag.String("max-body", "1MiB", "stored/accepted body size cap")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout (0 waits indefinitely)")
	interval := flag.Duration("interval", 10*time.Second, "live stats line period on stdout (0 disables)")
	peers := flag.String("peers", "", "comma-separated fleet node base URLs, including this node's -self (enables peer-fill)")
	self := flag.String("self", "", "this node's base URL within -peers")
	peerVNodes := flag.Int("peer-vnodes", 64, "virtual nodes per node on the peer ring (must match the router's -vnodes)")
	peerFanout := flag.Int("peer-fanout", 1, "ring successors asked per peer-fill attempt")
	peerTimeout := flag.Duration("peer-timeout", 500*time.Millisecond, "per-attempt peer fetch timeout")
	peerRetries := flag.Int("peer-retries", 0, "peer fetch retries after the first failure")
	peerBackoff := flag.Duration("peer-backoff", 25*time.Millisecond, "delay before the first peer retry (doubles per attempt)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "scip-serve:", err)
		os.Exit(1)
	}

	capBytes, err := trace.ParseBytes(*cacheSize)
	if err != nil {
		fail(fmt.Errorf("bad -cache: %w", err))
	}
	maxBodyBytes, err := trace.ParseBytes(*maxBody)
	if err != nil {
		fail(fmt.Errorf("bad -max-body: %w", err))
	}
	mode, err := shard.ParseMode(*modeFlag)
	if err != nil {
		fail(err)
	}
	cfg := server.Config{
		Policy:        *policy,
		CacheBytes:    capBytes,
		Shards:        *shards,
		Seed:          *seed,
		Mode:          mode,
		ActorDepth:    *depth,
		NoLatency:     *nolat,
		OriginTimeout: *originTimeout,
		OriginRetries: *originRetries,
		OriginBackoff: *originBackoff,
		ServeStale:    *serveStale,
		MaxBodyBytes:  maxBodyBytes,
	}
	if *originURL != "" {
		cfg.Origin = &server.HTTPOrigin{Base: *originURL}
	} else {
		cfg.Origin = &server.SyntheticOrigin{Latency: *originLatency}
	}
	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		pc, err := cluster.NewPeerClient(peerList, strings.TrimRight(*self, "/"), *peerVNodes, *peerFanout, nil)
		if err != nil {
			fail(fmt.Errorf("bad -peers/-self: %w", err))
		}
		cfg.PeerFill = pc
		cfg.PeerTimeout = *peerTimeout
		cfg.PeerRetries = *peerRetries
		cfg.PeerBackoff = *peerBackoff
	}
	s, err := server.New(cfg)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *interval > 0 {
		go reportLoop(ctx, s, *interval)
	}

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, *addr, *drain, ready) }()
	select {
	case a := <-ready:
		fmt.Printf("scip-serve: %s listening on %s (origin: %s)\n",
			s.Cache().Name(), a, originName(*originURL))
	case err := <-errc:
		fail(err)
	}
	<-ctx.Done()
	fmt.Println("scip-serve: shutting down, draining in-flight requests")
	if err := <-errc; err != nil {
		fail(err)
	}
	s.Close() // requests have drained; stop the actor goroutines
	snap := s.Stats().Snapshot()
	tot := snap.Totals()
	fmt.Printf("scip-serve: served %d requests (miss=%.4f byteMiss=%.4f), bye\n",
		tot.Requests, snap.MissRatio(), snap.ByteMissRatio())
}

func originName(url string) string {
	if url == "" {
		return "synthetic"
	}
	return url
}

// reportLoop prints a scip-load-style interval line while the daemon
// serves, sharing sim.FormatLoadInterval so the two tools' outputs line
// up in logs.
func reportLoop(ctx context.Context, s *server.Server, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now() //scip:wallclock-ok console metering: interval report timestamps, never a cache decision
	prev := s.Stats().Snapshot()
	prevT := start
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			cur := s.Stats().Snapshot()
			fmt.Println(sim.FormatLoadInterval(now.Sub(start), now.Sub(prevT), cur.Sub(prev)))
			prev, prevT = cur, now
		}
	}
}
