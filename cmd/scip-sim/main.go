// Command scip-sim replays a trace file against one cache policy and
// prints the resulting miss ratios.
//
// Usage:
//
//	scip-sim -trace cdn-t.trace -policy SCIP -cache 512MiB [-csv] [-warmup 0.2]
//
// Policies: SCIP, SCI, LRU, LIP, BIP, DIP, PIPP, DTA, SHiP, DGIPPR,
// DAAIP, ASC-IP, LRU-K, S4LRU, SS-LRU, GDSF, LHD, ARC, LIRS, LeCaR,
// CACHEUS, GL-Cache, LRB, 2Q, TinyLFU, AdaptSize, Belady, plus
// composable admission mixes via "scorer:" specs, e.g.
// -policy scorer:zro=0.6,size=0.2,freq=0.2 (see internal/admission/scorer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/scip-cache/scip/internal/admission"
	"github.com/scip-cache/scip/internal/admission/scorer"
	"github.com/scip-cache/scip/internal/belady"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/policies"
	"github.com/scip-cache/scip/internal/replacement"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

func buildPolicy(name string, capBytes int64, seed int64, tr *trace.Trace) (cache.Policy, error) {
	if scorer.IsSpec(name) {
		return scorer.FromSpec(name, capBytes, seed)
	}
	switch strings.ToUpper(name) {
	case "SCIP":
		return core.NewCache(capBytes, core.WithSeed(seed)), nil
	case "SCI":
		return core.NewSCICache(capBytes, core.WithSeed(seed)), nil
	case "LRU":
		return cache.NewLRU(capBytes), nil
	case "LIP":
		return policies.NewCache("LIP", capBytes, policies.LIP{}), nil
	case "BIP":
		return policies.NewCache("BIP", capBytes, policies.NewBIP(seed)), nil
	case "DIP":
		return policies.NewCache("DIP", capBytes, policies.NewDIP(capBytes, seed)), nil
	case "PIPP":
		return policies.NewPIPP(capBytes, seed), nil
	case "DTA":
		return policies.NewCache("DTA", capBytes, policies.NewDTA()), nil
	case "SHIP":
		return policies.NewCache("SHiP", capBytes, policies.NewSHiP()), nil
	case "DGIPPR":
		return policies.NewDGIPPR(capBytes, seed), nil
	case "DAAIP":
		return policies.NewCache("DAAIP", capBytes, policies.NewDAAIP(seed)), nil
	case "ASC-IP", "ASCIP":
		return policies.NewCache("ASC-IP", capBytes, policies.NewASCIP(capBytes)), nil
	case "LRU-K", "LRUK":
		return replacement.NewLRUK(capBytes, seed), nil
	case "S4LRU":
		return replacement.NewS4LRU(capBytes), nil
	case "SS-LRU", "SSLRU":
		return replacement.NewSSLRU(capBytes), nil
	case "GDSF":
		return replacement.NewGDSF(capBytes), nil
	case "LHD":
		return replacement.NewLHD(capBytes, seed), nil
	case "ARC":
		return replacement.NewARC(capBytes), nil
	case "LECAR":
		return replacement.NewLeCaR(capBytes, seed), nil
	case "CACHEUS":
		return replacement.NewCACHEUS(capBytes, seed), nil
	case "GL-CACHE", "GLCACHE":
		return replacement.NewGLCache(capBytes), nil
	case "LIRS":
		return replacement.NewLIRS(capBytes), nil
	case "2Q":
		return admission.NewTwoQ(capBytes), nil
	case "TINYLFU":
		return admission.NewTinyLFU(capBytes), nil
	case "ADAPTSIZE":
		return admission.NewAdaptSize(capBytes, seed), nil
	case "LRB":
		return lrb.New(capBytes, lrb.WithSeed(seed)), nil
	case "BELADY":
		return belady.New(tr, capBytes), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func main() {
	tracePath := flag.String("trace", "", "trace file (binary by default)")
	csv := flag.Bool("csv", false, "trace file is time,key,size CSV")
	lrbFmt := flag.Bool("lrb", false, "trace file is LRB-format (timestamp id size ...)")
	policy := flag.String("policy", "SCIP", "cache policy to replay")
	cacheSize := flag.String("cache", "512MiB", "cache capacity (supports KiB/MiB/GiB suffixes)")
	warmup := flag.Float64("warmup", 0.2, "warm-up fraction excluded from metrics")
	seed := flag.Int64("seed", 1, "policy seed")
	meter := flag.Bool("meter", false, "measure throughput and peak memory")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tracePath == "" {
		fail(fmt.Errorf("-trace is required"))
	}
	capBytes, err := trace.ParseBytes(*cacheSize)
	if err != nil {
		fail(fmt.Errorf("bad -cache: %w", err))
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	var tr *trace.Trace
	switch {
	case *csv:
		tr, err = trace.ReadCSV(f, *tracePath)
	case *lrbFmt:
		tr, err = trace.ReadLRB(f, *tracePath)
	default:
		tr, err = trace.ReadBinary(f, *tracePath)
	}
	if err != nil {
		fail(err)
	}
	p, err := buildPolicy(*policy, capBytes, *seed, tr)
	if err != nil {
		fail(err)
	}
	res := sim.Run(tr, p, sim.Options{WarmupFrac: *warmup, Meter: *meter})
	fmt.Println(res.String())
	if *meter {
		fmt.Printf("tps=%.0f req/s  peakHeap=%.1f MiB  cpu=%.0f ns/req\n",
			res.TPS, res.PeakHeapMiB, res.NsPerRequest)
	}
}
