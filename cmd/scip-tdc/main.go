// Command scip-tdc runs the TDC production-system simulation (the
// paper's §5.2 deployment study): a two-layer CDN hierarchy serving a
// multi-day timeline, with SCIP replacing the layers' LRU insertion
// policy midway.
//
// Usage:
//
//	scip-tdc [-days 14] [-deploy-day 7] [-scale 0.01] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/scip-cache/scip/internal/exp"
	"github.com/scip-cache/scip/internal/tdc"
)

func main() {
	days := flag.Int64("days", 14, "simulated days")
	deployDay := flag.Int64("deploy-day", 7, "day at which SCIP is deployed (-1: never)")
	scale := flag.Float64("scale", 0.01, "workload scale")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	tr, err := exp.TDCTrace(*scale, *seed, *days)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	deployAt := int64(-1)
	if *deployDay >= 0 {
		deployAt = *deployDay * 86_400
	}
	cfg := exp.TDCConfig(tr, deployAt, *seed)
	res := tdc.Run(tr, cfg)
	fmt.Printf("%-10s %10s %12s %12s %10s\n", "bucket(h)", "requests", "BTO-ratio", "BTO(MB)", "lat(ms)")
	for i, b := range res.Buckets {
		marker := ""
		if i == res.Deployed {
			marker = "  <-- SCIP deployed"
		}
		fmt.Printf("%-10d %10d %12.4f %12.1f %10.1f%s\n",
			b.StartTime/3600, b.Requests, b.BTORatio(), float64(b.BTOBytes)/(1<<20), b.MeanLatencyMs(), marker)
	}
	fmt.Println(res.Summary())
}
