// Command scip-analyze labels a trace's ZRO / A-ZRO / P-ZRO / A-P-ZRO
// occurrences under an LRU replay (the paper's Figure-1 analysis) and
// optionally reports the oracle-reduced miss ratios of Figure 3.
//
// Usage:
//
//	scip-analyze -trace cdn-t.trace -cache 512MiB [-csv] [-oracle]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/scip-cache/scip/internal/trace"
	"github.com/scip-cache/scip/internal/zro"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (binary by default)")
	csv := flag.Bool("csv", false, "trace file is time,key,size CSV")
	lrbFmt := flag.Bool("lrb", false, "trace file is LRB-format (timestamp id size ...)")
	cacheSize := flag.String("cache", "512MiB", "cache capacity")
	oracle := flag.Bool("oracle", false, "also run the Figure-3 oracle placements")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tracePath == "" {
		fail(fmt.Errorf("-trace is required"))
	}
	capBytes, err := trace.ParseBytes(*cacheSize)
	if err != nil {
		fail(err)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	var tr *trace.Trace
	switch {
	case *csv:
		tr, err = trace.ReadCSV(f, *tracePath)
	case *lrbFmt:
		tr, err = trace.ReadLRB(f, *tracePath)
	default:
		tr, err = trace.ReadBinary(f, *tracePath)
	}
	if err != nil {
		fail(err)
	}

	_, sum := zro.Analyze(tr, capBytes)
	fmt.Printf("requests=%d lruMissRatio=%.4f\n", len(tr.Requests), sum.MissRatio)
	fmt.Printf("ZRO:    %6.2f%% of missing objects (%d/%d), A-ZRO %6.2f%% of ZROs\n",
		100*sum.ZROFrac(), sum.ZROs, sum.Insertions, 100*sum.AZROFrac())
	fmt.Printf("P-ZRO:  %6.2f%% of hit objects     (%d/%d), A-P-ZRO %6.2f%% of P-ZROs\n",
		100*sum.PZROFrac(), sum.PZROs, sum.Hits, 100*sum.APZROFrac())
	if *oracle {
		fmt.Printf("oracle: mr(ZRO)=%.4f mr(P-ZRO)=%.4f mr(both)=%.4f\n",
			zro.OracleReplay(tr, capBytes, true, false, 1, 0),
			zro.OracleReplay(tr, capBytes, false, true, 1, 0),
			zro.OracleReplay(tr, capBytes, true, true, 1, 0))
	}
}
