// Command scip-route is the stateless routing tier in front of a fleet
// of scip-serve nodes: it consistent-hashes object keys across the fleet
// (a ring of virtual nodes over the node URLs), load-balances reads of
// router-detected hot keys across a replica set, fans hot writes and
// invalidations out to that set, fails over to ring successors when a
// node stops answering, and exports its own scip_route_* Prometheus
// metrics. The router holds no object state — health, the frequency
// sketch and every counter are soft hints rebuilt from traffic — so
// instances can be restarted or scaled out behind a TCP balancer without
// any handoff. See CLUSTER.md for the operator guide.
//
// Usage:
//
//	scip-route -nodes http://10.0.0.1:8344,http://10.0.0.2:8344 [-addr :8380]
//	    [-vnodes 64] [-replicas 2] [-replicate] [-hot-k 16] [-hot-min 64]
//	    [-node-timeout 2s] [-fail-threshold 3] [-health-interval 2s]
//	    [-max-body 1MiB] [-drain 10s] [-interval 10s]
//
// With -clusterbench FILE the binary instead runs the cluster
// equivalence benchmark (`make bench-cluster`): it spins an in-process
// fleet on loopback, replays a generated CDN-T trace through a router,
// cross-checks every node's shard counters byte-for-byte against a
// single-node replay of the same ring partition, and merges the
// cluster_matrix section (per-node cells plus router overhead) into
// FILE.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/scip-cache/scip/internal/cluster"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/server"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
	"github.com/scip-cache/scip/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8380", "listen address")
	nodes := flag.String("nodes", "", "comma-separated scip-serve base URLs (the ring identities; required)")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per node on the hash ring")
	replicas := flag.Int("replicas", 2, "replica-set size for hot keys (clamped to the node count)")
	replicate := flag.Bool("replicate", false, "enable hot-key replication (spread hot reads, fan out hot writes)")
	hotK := flag.Int("hot-k", 16, "maximum tracked hot-key count")
	hotMin := flag.Int("hot-min", 64, "sketch estimate a key needs to enter the hot set")
	nodeTimeout := flag.Duration("node-timeout", 2*time.Second, "per-attempt proxy timeout")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that mark a node down")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "background /healthz probe period")
	maxBody := flag.String("max-body", "1MiB", "accepted PUT body size cap")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout (0 waits indefinitely)")
	interval := flag.Duration("interval", 10*time.Second, "live stats line period on stdout (0 disables)")
	clusterbench := flag.String("clusterbench", "", "run the cluster equivalence benchmark and merge cluster_matrix into this JSON file")
	scale := flag.Float64("scale", 0.002, "trace scale for -clusterbench")
	policy := flag.String("policy", "SCIP", "node policy for -clusterbench")
	benchNodes := flag.Int("bench-nodes", 3, "fleet size for -clusterbench")
	shards := flag.Int("shards", 4, "per-node shard count for -clusterbench")
	clients := flag.Int("clients", 4, "concurrent replay clients for -clusterbench")
	seed := flag.Int64("seed", 1, "trace and policy seed for -clusterbench")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "scip-route:", err)
		os.Exit(1)
	}

	if *clusterbench != "" {
		if err := runClusterBench(*clusterbench, *scale, *policy, *benchNodes, *shards, *clients, *seed, *vnodes); err != nil {
			fail(err)
		}
		return
	}

	nodeList := splitNodes(*nodes)
	if len(nodeList) == 0 {
		fail(fmt.Errorf("-nodes is required (comma-separated scip-serve base URLs)"))
	}
	maxBodyBytes, err := trace.ParseBytes(*maxBody)
	if err != nil {
		fail(fmt.Errorf("bad -max-body: %w", err))
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          nodeList,
		VNodes:         *vnodes,
		Replicas:       *replicas,
		Replicate:      *replicate,
		HotK:           *hotK,
		HotMin:         *hotMin,
		NodeTimeout:    *nodeTimeout,
		FailThreshold:  *failThreshold,
		HealthInterval: *healthInterval,
		MaxBodyBytes:   maxBodyBytes,
	})
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *interval > 0 {
		go reportLoop(ctx, rt, *interval)
	}

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- rt.ListenAndServe(ctx, *addr, *drain, ready) }()
	select {
	case a := <-ready:
		fmt.Printf("scip-route: listening on %s, %d nodes, %d vnodes/node, replicate=%v\n",
			a, len(nodeList), *vnodes, *replicate)
	case err := <-errc:
		fail(err)
	}
	<-ctx.Done()
	fmt.Println("scip-route: shutting down, draining in-flight requests")
	if err := <-errc; err != nil {
		fail(err)
	}
	total, failovers, unroutable := rt.Requests()
	fmt.Printf("scip-route: routed %d requests (%d failovers, %d unroutable), bye\n",
		total, failovers, unroutable)
}

// splitNodes splits a comma-separated node list, trimming blanks.
func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, strings.TrimRight(n, "/"))
		}
	}
	return out
}

// reportLoop prints one router status line per interval.
func reportLoop(ctx context.Context, rt *cluster.Router, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var prevTotal int64
	prevT := time.Now() //scip:wallclock-ok console metering: interval report timestamps, never a routing decision input
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			total, failovers, unroutable := rt.Requests()
			rate := float64(total-prevTotal) / now.Sub(prevT).Seconds()
			buckets, sum := rt.Latency()
			snap := stats.Snapshot{Latency: buckets, LatencySumNanos: sum}
			fmt.Printf("route: %8.0f req/s  total=%d failovers=%d unroutable=%d p50=%s p99=%s\n",
				rate, total, failovers, unroutable,
				snap.LatencyQuantile(0.50), snap.LatencyQuantile(0.99))
			prevTotal, prevT = total, now
		}
	}
}

// benchNode is one in-process fleet member of the cluster benchmark.
type benchNode struct {
	srv    *server.Server
	url    string
	cancel context.CancelFunc
	done   chan error
}

// startNode builds and serves one fleet node on loopback.
func startNode(policy string, capBytes int64, shards int, seed int64) (*benchNode, error) {
	s, err := server.New(server.Config{
		Policy:     policy,
		CacheBytes: capBytes,
		Shards:     shards,
		Seed:       seed,
		Origin:     &server.SyntheticOrigin{MaxBody: 64},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0", 10*time.Second, ready) }()
	select {
	case a := <-ready:
		return &benchNode{srv: s, url: "http://" + a.String(), cancel: cancel, done: done}, nil
	case err := <-done:
		cancel()
		return nil, err
	}
}

// runClusterBench is `make bench-cluster`: an in-process fleet replay
// through the router, cross-checked for byte-identical shard counters
// against single-node replays of the ring partitions, with the router's
// added cost merged into jsonPath as cluster_matrix.
func runClusterBench(jsonPath string, scale float64, policy string, nodes, shards, clients int, seed int64, vnodes int) error {
	tr, err := gen.Generate(gen.CDNT.Config(scale, seed))
	if err != nil {
		return err
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, scale)
	fmt.Printf("scip-route clusterbench: %s  trace=%s (%d requests)  %d nodes x %d shards  cache=%.1f MiB/node\n",
		policy, tr.Name, len(tr.Requests), nodes, shards, float64(capBytes)/(1<<20))

	// Fleet on loopback.
	fleet := make([]*benchNode, 0, nodes)
	defer func() {
		for _, n := range fleet {
			n.cancel()
			<-n.done
			n.srv.Close()
		}
	}()
	urls := make([]string, 0, nodes)
	for i := 0; i < nodes; i++ {
		n, err := startNode(policy, capBytes, shards, seed)
		if err != nil {
			return err
		}
		fleet = append(fleet, n)
		urls = append(urls, n.url)
	}

	// Router in front of it.
	rt, err := cluster.NewRouter(cluster.RouterConfig{Nodes: urls, VNodes: vnodes})
	if err != nil {
		return err
	}
	rctx, rcancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	rdone := make(chan error, 1)
	go func() { rdone <- rt.ListenAndServe(rctx, "127.0.0.1:0", 10*time.Second, ready) }()
	defer func() {
		rcancel()
		<-rdone
	}()
	var routerAddr string
	select {
	case a := <-ready:
		routerAddr = a.String()
	case err := <-rdone:
		rcancel()
		return err
	}

	// Shard-partitioned concurrent replay through the router: client c
	// owns the (node, shard) pairs with (node*shards+shard) % clients ==
	// c and issues that partition's requests sequentially in trace
	// order, so every shard of every node sees the identical access
	// sequence as a single-node replay of its ring partition.
	laneOf := make([]int, len(tr.Requests))
	nodeOf := make([]int, len(tr.Requests))
	for i, req := range tr.Requests {
		n := rt.Ring().Lookup(req.Key)
		nodeOf[i] = n
		laneOf[i] = n*shards + fleet[n].srv.Cache().ShardIndex(req.Key)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
	var lat stats.Histogram
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := time.Now() //scip:wallclock-ok clusterbench metering: wall time and per-request latency, never a routing decision input
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, req := range tr.Requests {
				if laneOf[i]%clients != c {
					continue
				}
				url := fmt.Sprintf("http://%s/obj/%d?size=%d&t=%d", routerAddr, req.Key, req.Size, req.Time)
				t0 := time.Now() //scip:wallclock-ok clusterbench metering: client-observed request latency
				resp, err := client.Get(url)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat.Observe(time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds() //scip:wallclock-ok clusterbench metering: wall time for the throughput cell
	select {
	case err := <-errc:
		return err
	default:
	}

	// The equivalence cross-check: each fleet node's shard counters must
	// be byte-identical to a serial single-node replay of its ring
	// partition (routing must be a pure partition of the trace).
	rep := sim.ClusterReport{
		Trace:    tr.Name,
		Policy:   policy,
		Nodes:    nodes,
		VNodes:   vnodes,
		Shards:   shards,
		Requests: len(tr.Requests),
	}
	for n, bn := range fleet {
		got := bn.srv.Stats().Snapshot()
		ref, err := server.BuildSharded(policy, capBytes, shards, seed)
		if err != nil {
			return err
		}
		st := ref.EnableStats()
		var part int
		for i, req := range tr.Requests {
			if nodeOf[i] == n {
				ref.Access(req)
				part++
			}
		}
		want := st.Snapshot()
		ref.Close()
		for s := 0; s < shards; s++ {
			if want.Shards[s] != got.Shards[s] {
				return fmt.Errorf("clusterbench: node %d shard %d diverged from single-node replay:\n  single-node: %+v\n  fleet:       %+v",
					n, s, want.Shards[s], got.Shards[s])
			}
		}
		tot := got.Totals()
		cell := sim.ClusterCell{
			Node:      bn.url,
			Requests:  part,
			Hits:      tot.Hits,
			MissRatio: got.MissRatio(),
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Printf("node %d: %s  %d requests, miss=%.4f — byte-identical to single-node replay\n",
			n, bn.url, part, cell.MissRatio)
	}

	snap := stats.Snapshot{}
	snap.Latency, snap.LatencySumNanos = lat.Snapshot()
	rep.RouteKreqSec = float64(len(tr.Requests)) / elapsed / 1e3
	rep.RouteP50Micros = float64(snap.LatencyQuantile(0.50).Microseconds())
	rep.RouteP99Micros = float64(snap.LatencyQuantile(0.99).Microseconds())
	rep.GeneratedUnix = time.Now().Unix() //scip:wallclock-ok report metadata: records when the run happened, never feeds a decision
	fmt.Printf("router: %.1f kreq/s through the proxy, p50=%s p99=%s\n",
		rep.RouteKreqSec, snap.LatencyQuantile(0.50), snap.LatencyQuantile(0.99))
	out := struct {
		ClusterMatrix sim.ClusterReport `json:"cluster_matrix"`
	}{rep}
	if err := sim.MergeJSON(jsonPath, out); err != nil {
		return err
	}
	fmt.Printf("cluster_matrix merged into %s (%d cells)\n", jsonPath, len(rep.Cells))
	return nil
}
