// Command scip-vet runs the repository's own static analyzers
// (internal/analysis) over the module: detrand (no ambient randomness or
// wall-clock reads in deterministic-replay packages), maporder (no map
// iteration feeding ordered accumulators or output), nocopy (no value
// copies of types carrying sync or atomic state) and atomicmix (no plain
// access to variables accessed atomically elsewhere).
//
// Usage:
//
//	scip-vet [packages]
//
// Packages default to ./...; a dir/... suffix selects a subtree
// (e.g. ./internal/...). Diagnostics print as
// file:line: analyzer: message; the exit status is 1 when any
// diagnostic is reported and 2 when loading or type-checking fails.
// Intentional exceptions are declared in the source with a
// //scip:<token> comment carrying a justification (see
// internal/analysis and DESIGN.md §7).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/scip-cache/scip/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scip-vet [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's determinism and concurrency analyzers.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scip-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scip-vet:", err)
		os.Exit(2)
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAll(analysis.Analyzers(), pkg) {
			fmt.Println(d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "scip-vet: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}
