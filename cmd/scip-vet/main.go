// Command scip-vet runs the repository's own static analyzers
// (internal/analysis) over the module. The per-file syntactic checks —
// detrand (no ambient randomness or wall-clock reads in
// deterministic-replay packages), maporder (no map iteration feeding
// ordered accumulators or output), nocopy (no value copies of types
// carrying sync or atomic state), atomicmix (no plain access to
// variables accessed atomically elsewhere) and pkgdoc — are joined by
// the interprocedural, call-graph-backed checks: hotalloc (functions
// annotated //scip:hotpath and their transitive callees must be
// allocation-free), clocktaint (no wall-clock-derived value may flow
// into policy/admission/MAB/LRB decision state through any call chain),
// guardedby (//scip:guardedby struct fields must be accessed with their
// mutex provably held) and arenalife (unsafe arena strings must not
// outlive the server's request scope). A final audit diagnoses every
// //scip:*-ok suppression that no longer silences anything (stale) or
// names a token no analyzer recognises (unknown).
//
// Usage:
//
//	scip-vet [-run names] [-supps] [packages]
//
// Packages default to ./...; a dir/... suffix selects a subtree
// (e.g. ./internal/...). Note the flow-aware analyzers only see call
// edges inside the loaded set, so CI runs the full module. Diagnostics
// print as file:line: analyzer: message; the exit status is 1 when any
// diagnostic is reported and 2 when loading or type-checking fails.
// -run limits the run to a comma-separated list of analyzer names.
// -supps prints the suppression-and-annotation inventory (file:line,
// token, live/STALE, justification) instead of diagnostics.
// Intentional exceptions are declared in the source with a
// //scip:<token> comment carrying a justification (see
// internal/analysis and DESIGN.md §7).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/scip-cache/scip/internal/analysis"
)

func main() {
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	supps := flag.Bool("supps", false, "print the //scip: suppression inventory instead of diagnostics")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scip-vet [-run names] [-supps] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's determinism, concurrency and allocation analyzers.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*runNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scip-vet:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scip-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scip-vet:", err)
		os.Exit(2)
	}
	mod := analysis.NewModule(pkgs)
	diags := analysis.VetModule(analyzers, mod)

	if *supps {
		printInventory(mod)
		return
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scip-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run list against the registry.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames(all))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func analyzerNames(all []*analysis.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// printInventory lists every //scip: comment with its status: annotation
// tokens assert invariants, suppressions are live (consumed by an
// analyzer this run) or STALE.
func printInventory(mod *analysis.Module) {
	inv := mod.SuppressionInventory()
	stale := 0
	for _, s := range inv {
		status := "live"
		switch {
		case s.Annotation:
			status = "annotation"
		case !s.Used:
			status = "STALE"
			stale++
		}
		just := s.Justification
		if just == "" {
			just = "(no justification)"
		}
		fmt.Printf("%s:%d: //scip:%-14s %-10s %s\n", s.File, s.Line, s.Token, status, just)
	}
	fmt.Fprintf(os.Stderr, "scip-vet: %d //scip: comment(s), %d stale\n", len(inv), stale)
	if stale > 0 {
		os.Exit(1)
	}
}
