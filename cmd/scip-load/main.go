// Command scip-load is a closed-loop concurrent load harness for the
// sharded cache front: it replays a trace partitioned across N worker
// goroutines against a sharded policy (SCIP, SCI, LRU, LRB), prints live
// interval snapshots (request rate, object and byte miss ratio, per-shard
// occupancy, p50/p99 access latency) and writes a final JSON report in the
// BENCH.json artefact style.
//
// Usage:
//
//	scip-load [-profile CDN-T] [-scale 0.01] [-seed 1] [-trace file] [-csv|-lrb]
//	    [-policy SCIP] [-cache 655MiB] [-shards 8] [-workers N] [-repeat 1]
//	    [-interval 1s] [-json LOAD.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The trace is partitioned by shard, not by request index: every shard's
// request subsequence is replayed in trace order by exactly one worker, so
// each shard observes the identical access sequence regardless of the
// worker count and the final miss ratios are byte-identical across
// -workers 1 and -workers N. Workers are closed-loop: each issues its next
// request as soon as the previous one completes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/server"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
	"github.com/scip-cache/scip/internal/trace"
)

// buildSharded returns a sharded cache for one of the concurrency-ready
// policies — the same construction scip-serve uses (server.BuildSharded),
// so a load run and a daemon with matching flags replay the identical
// decision stream.
func buildSharded(policy string, capBytes int64, shards int, seed int64) (*shard.Cache, error) {
	return server.BuildSharded(policy, capBytes, shards, seed)
}

// runLoad replays tr against c from `workers` goroutines, each owning the
// shards whose index ≡ worker (mod workers). It reports interval snapshots
// to out every `interval` (0 disables) and returns the final cumulative
// snapshot and the elapsed wall time.
func runLoad(tr *trace.Trace, c *shard.Cache, workers, repeat int, interval time.Duration, out io.Writer) (stats.Snapshot, time.Duration) {
	st := c.Stats()
	if st == nil {
		st = c.EnableStats()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > c.Shards() {
		workers = c.Shards() // extra workers would own no shard
	}
	if repeat < 1 {
		repeat = 1
	}
	// Precompute each request's shard once; workers then filter the shared
	// trace instead of materialising per-worker copies.
	shardOf := make([]int32, len(tr.Requests))
	for i, req := range tr.Requests {
		shardOf[i] = int32(c.ShardIndex(req.Key))
	}
	// Repeats shift timestamps by the trace span so per-shard time stays
	// monotonic; the shift is worker-independent, preserving determinism.
	var span int64
	if n := len(tr.Requests); n > 0 {
		span = tr.Requests[n-1].Time + 1
	}

	stop := make(chan struct{})
	var reporter sync.WaitGroup
	start := time.Now()
	if interval > 0 && out != nil {
		reporter.Add(1)
		go func() {
			defer reporter.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			prev := st.Snapshot()
			prevT := time.Now()
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					cur := st.Snapshot()
					fmt.Fprintln(out, sim.FormatLoadInterval(now.Sub(start), now.Sub(prevT), cur.Sub(prev)))
					fmt.Fprintln(out, "  "+sim.FormatShardOccupancy(cur))
					prev, prevT = cur, now
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < repeat; rep++ {
				off := int64(rep) * span
				for i, req := range tr.Requests {
					if int(shardOf[i])%workers != w {
						continue
					}
					req.Time += off
					c.Access(req)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	reporter.Wait()
	return st.Snapshot(), elapsed
}

func main() {
	profile := flag.String("profile", "CDN-T", "synthetic workload profile (CDN-T, CDN-W, CDN-A); ignored with -trace")
	scale := flag.Float64("scale", 0.01, "synthetic trace scale relative to the paper's workload")
	seed := flag.Int64("seed", 1, "generation and policy seed")
	tracePath := flag.String("trace", "", "replay this trace file instead of generating one")
	csv := flag.Bool("csv", false, "trace file is time,key,size CSV")
	lrbFmt := flag.Bool("lrb", false, "trace file is LRB-format")
	policy := flag.String("policy", "SCIP", "sharded policy: SCIP, SCI, LRU or LRB")
	cacheSize := flag.String("cache", "", "cache capacity (KiB/MiB/GiB suffixes); default: profile's paper-scaled size")
	shards := flag.Int("shards", 8, "shard count (rounded up to a power of two)")
	workers := flag.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS, clamped to the shard count)")
	repeat := flag.Int("repeat", 1, "replay the trace this many times")
	interval := flag.Duration("interval", 1*time.Second, "live snapshot period (0 disables)")
	jsonPath := flag.String("json", "LOAD.json", "write the final report as JSON to this path (empty disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" || *memProfile != "" {
		stopProfiles, err := sim.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var (
		tr       *trace.Trace
		capBytes int64
		err      error
	)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		switch {
		case *csv:
			tr, err = trace.ReadCSV(f, *tracePath)
		case *lrbFmt:
			tr, err = trace.ReadLRB(f, *tracePath)
		default:
			tr, err = trace.ReadBinary(f, *tracePath)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
		if *cacheSize == "" {
			fail(fmt.Errorf("-cache is required with -trace"))
		}
	} else {
		var prof gen.Profile
		for _, p := range gen.Profiles {
			if strings.EqualFold(string(p), *profile) {
				prof = p
			}
		}
		if prof == "" {
			fail(fmt.Errorf("unknown profile %q (want CDN-T, CDN-W or CDN-A)", *profile))
		}
		tr, err = gen.Generate(prof.Config(*scale, *seed))
		if err != nil {
			fail(err)
		}
		capBytes = prof.CacheBytes(64<<30, *scale)
	}
	if *cacheSize != "" {
		capBytes, err = trace.ParseBytes(*cacheSize)
		if err != nil {
			fail(fmt.Errorf("bad -cache: %w", err))
		}
	}

	c, err := buildSharded(*policy, capBytes, *shards, *seed)
	if err != nil {
		fail(err)
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("scip-load: %s  trace=%s (%d requests x%d)  cache=%.1f MiB  shards=%d  workers=%d\n",
		c.Name(), tr.Name, len(tr.Requests), *repeat, float64(capBytes)/(1<<20), c.Shards(), min(nWorkers, c.Shards()))

	snap, elapsed := runLoad(tr, c, nWorkers, *repeat, *interval, os.Stdout)

	rep := sim.BuildLoadReport(snap, elapsed)
	rep.GeneratedUnix = time.Now().Unix()
	rep.Trace = tr.Name
	rep.Policy = c.Name()
	rep.CacheBytes = capBytes
	rep.Shards = c.Shards()
	rep.Workers = min(nWorkers, c.Shards())
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Repeat = *repeat

	fmt.Printf("done: %d requests in %.2fs (%.0f req/s)  miss=%.4f byteMiss=%.4f  occSkew=%.3f  p50=%s p99=%s\n",
		rep.Requests, rep.TotalSeconds, rep.RPS, rep.MissRatio, rep.ByteMissRatio,
		rep.OccupancySkew,
		snap.LatencyQuantile(0.50).Round(time.Nanosecond),
		snap.LatencyQuantile(0.99).Round(time.Nanosecond))
	if *jsonPath != "" {
		if err := sim.WriteJSON(*jsonPath, rep); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}
