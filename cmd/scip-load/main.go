// Command scip-load is a closed-loop concurrent load harness for the
// sharded cache front: it replays a trace partitioned across N worker
// goroutines against a sharded policy (SCIP, SCI, LRU, LRB, 2Q,
// TinyLFU, AdaptSize, or a composable "scorer:" admission spec), prints live
// interval snapshots (request rate, object and byte miss ratio, per-shard
// occupancy, p50/p99 access latency) and writes a final JSON report in the
// BENCH.json artefact style.
//
// Usage:
//
//	scip-load [-profile CDN-T] [-scale 0.01] [-seed 1] [-trace file] [-csv|-lrb]
//	    [-policy SCIP] [-cache 655MiB] [-shards 8] [-workers N] [-repeat 1]
//	    [-mode mutex|actor] [-batch N] [-depth N] [-nolat] [-gcstats]
//	    [-interval 1s] [-json LOAD.json] [-scalebench BENCH.json]
//	    [-gcbench BENCH.json] [-gcobjects 1000000]
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The trace is partitioned by shard, not by request index: every shard's
// request subsequence is replayed in trace order by exactly one worker, so
// each shard observes the identical access sequence regardless of the
// worker count and the final miss ratios are byte-identical across
// -workers 1 and -workers N. Workers are closed-loop: each issues its next
// request as soon as the previous one completes.
//
// -mode selects the shard concurrency mode (mutex locking or a goroutine
// per shard), -batch groups each shard's requests into AccessBatch calls
// of that size (amortising one lock acquisition or actor handoff per
// batch), and -nolat drops the per-request latency timing — the replay's
// only clock reads. None of the three changes a single counter
// (TestModeInvariance). -scalebench replays the workers x GOMAXPROCS x
// mode matrix instead of a single run and merges it into the given JSON
// file as the scale_matrix section. -gcbench runs the GC-pressure
// matrix (scannable-heap bytes per resident object, churn pause cost)
// and merges it as gc_matrix; -gcstats adds a live GC column to the
// interval reports of an ordinary run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/scip-cache/scip/internal/admission/scorer"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/runner"
	"github.com/scip-cache/scip/internal/server"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
	"github.com/scip-cache/scip/internal/trace"
)

// buildSharded returns a sharded cache for one of the concurrency-ready
// policies — the same construction scip-serve uses (server.BuildSharded),
// so a load run and a daemon with matching flags replay the identical
// decision stream.
func buildSharded(policy string, capBytes int64, shards int, seed int64, opts ...shard.Option) (*shard.Cache, error) {
	return server.BuildSharded(policy, capBytes, shards, seed, opts...)
}

// runLoad replays tr against c from `workers` goroutines, each owning the
// shards whose index ≡ worker (mod workers). batch > 1 groups each shard's
// requests into AccessBatch calls of that size; nolat disables the
// per-request latency timing, which is done driver-side with one clock
// read per request (stats.LatencyTicker reuses request N's completion
// timestamp as request N+1's start — valid because workers are
// closed-loop). It reports interval snapshots to out every `interval`
// (0 disables) and returns the final cumulative snapshot and the elapsed
// wall time. gcstats adds a GC delta column to each interval report —
// cycles, pause time and scannable heap — so a long replay shows live
// whether the pointer-free core is keeping GC cost flat.
func runLoad(tr *trace.Trace, c *shard.Cache, workers, repeat, batch int, nolat, gcstats bool, interval time.Duration, out io.Writer) (stats.Snapshot, time.Duration) {
	st := c.Stats()
	if st == nil {
		st = c.EnableStats()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > c.Shards() {
		workers = c.Shards() // extra workers would own no shard
	}
	if repeat < 1 {
		repeat = 1
	}
	// Precompute each request's shard once; workers then filter the shared
	// trace instead of materialising per-worker copies.
	shardOf := make([]int32, len(tr.Requests))
	for i, req := range tr.Requests {
		shardOf[i] = int32(c.ShardIndex(req.Key))
	}
	// Repeats shift timestamps by the trace span so per-shard time stays
	// monotonic; the shift is worker-independent, preserving determinism.
	var span int64
	if n := len(tr.Requests); n > 0 {
		span = tr.Requests[n-1].Time + 1
	}

	stop := make(chan struct{})
	var reporter sync.WaitGroup
	start := time.Now() //scip:wallclock-ok load-report metering: wall time of the replay, printed and written to JSON
	if interval > 0 && out != nil {
		reporter.Add(1)
		go func() {
			defer reporter.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			prev := st.Snapshot()
			prevT := time.Now() //scip:wallclock-ok console metering: interval report timestamps
			prevGC := stats.ReadGC()
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					cur := st.Snapshot()
					fmt.Fprintln(out, sim.FormatLoadInterval(now.Sub(start), now.Sub(prevT), cur.Sub(prev)))
					fmt.Fprintln(out, "  "+sim.FormatShardOccupancy(cur))
					if gcstats {
						gc := stats.ReadGC()
						fmt.Fprintf(out, "  gc: +%d cycles  pause +%s  heap-scan %.1f MiB  objects %d\n",
							gc.NumGC-prevGC.NumGC,
							(gc.PauseTotal - prevGC.PauseTotal).Round(time.Microsecond),
							float64(gc.HeapScanBytes)/(1<<20), gc.HeapObjects)
						prevGC = gc
					}
					prev, prevT = cur, now
				}
			}
		}()
	}

	lat := st.Latency()
	if nolat {
		lat = nil // nil histogram: the ticker becomes a no-op, zero clock reads
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tick := stats.NewLatencyTicker(lat)
			if batch <= 1 {
				tick.Start()
				for rep := 0; rep < repeat; rep++ {
					off := int64(rep) * span
					for i, req := range tr.Requests {
						if int(shardOf[i])%workers != w {
							continue
						}
						req.Time += off
						c.Access(req)
						tick.Tick()
					}
				}
				return
			}
			// One pending batch per owned shard, flushed when full and
			// once at the end — a shard's request order is exactly its
			// trace order, so batching is invisible to the counters.
			bufs := make([][]cache.Request, c.Shards())
			for s := w; s < c.Shards(); s += workers {
				bufs[s] = make([]cache.Request, 0, batch)
			}
			tick.Start()
			for rep := 0; rep < repeat; rep++ {
				off := int64(rep) * span
				for i, req := range tr.Requests {
					s := int(shardOf[i])
					if s%workers != w {
						continue
					}
					req.Time += off
					bufs[s] = append(bufs[s], req)
					if len(bufs[s]) == batch {
						c.AccessBatch(s, bufs[s], nil)
						tick.TickN(batch)
						bufs[s] = bufs[s][:0]
					}
				}
			}
			for s := w; s < c.Shards(); s += workers {
				if len(bufs[s]) > 0 {
					c.AccessBatch(s, bufs[s], nil)
					tick.TickN(len(bufs[s]))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //scip:wallclock-ok load-report metering: wall time of the replay
	close(stop)
	reporter.Wait()
	return st.Snapshot(), elapsed
}

func main() {
	profile := flag.String("profile", "CDN-T", "synthetic workload profile (CDN-T, CDN-W, CDN-A); ignored with -trace")
	scale := flag.Float64("scale", 0.01, "synthetic trace scale relative to the paper's workload")
	seed := flag.Int64("seed", 1, "generation and policy seed")
	tracePath := flag.String("trace", "", "replay this trace file instead of generating one")
	csv := flag.Bool("csv", false, "trace file is time,key,size CSV")
	lrbFmt := flag.Bool("lrb", false, "trace file is LRB-format")
	policy := flag.String("policy", "SCIP", "sharded policy: SCIP, SCI, LRU, LRB, 2Q, TinyLFU, AdaptSize or a scorer: spec")
	cacheSize := flag.String("cache", "", "cache capacity (KiB/MiB/GiB suffixes); default: profile's paper-scaled size")
	shards := flag.Int("shards", 8, "shard count (rounded up to a power of two)")
	workers := flag.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS, clamped to the shard count)")
	repeat := flag.Int("repeat", 1, "replay the trace this many times")
	modeFlag := flag.String("mode", "mutex", "shard concurrency mode: mutex or actor (DESIGN.md §10)")
	batch := flag.Int("batch", 1, "requests per AccessBatch call (amortises one lock/handoff per batch; <=1 = per-request)")
	depth := flag.Int("depth", 0, "actor mailbox depth with -mode actor (0 = shard package default)")
	nolat := flag.Bool("nolat", false, "skip per-request latency timing (drops the replay's only clock reads)")
	gcstats := flag.Bool("gcstats", false, "add a GC column (cycles, pause, heap-scan bytes) to each interval report")
	interval := flag.Duration("interval", 1*time.Second, "live snapshot period (0 disables)")
	jsonPath := flag.String("json", "LOAD.json", "write the final report as JSON to this path (empty disables)")
	scalebench := flag.String("scalebench", "", "replay the workers x GOMAXPROCS x mode matrix and merge it into this JSON file as scale_matrix, then exit")
	gcbench := flag.String("gcbench", "", "run the GC-pressure matrix (heap-scan bytes and pause deltas per working-set size) and merge it into this JSON file as gc_matrix, then exit")
	gcobjects := flag.Int("gcobjects", 1_000_000, "largest resident working set, in objects, for -gcbench")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" || *memProfile != "" {
		stopProfiles, err := sim.StartProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var (
		tr       *trace.Trace
		capBytes int64
		err      error
	)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		switch {
		case *csv:
			tr, err = trace.ReadCSV(f, *tracePath)
		case *lrbFmt:
			tr, err = trace.ReadLRB(f, *tracePath)
		default:
			tr, err = trace.ReadBinary(f, *tracePath)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
		if *cacheSize == "" {
			fail(fmt.Errorf("-cache is required with -trace"))
		}
	} else {
		var prof gen.Profile
		for _, p := range gen.Profiles {
			if strings.EqualFold(string(p), *profile) {
				prof = p
			}
		}
		if prof == "" {
			fail(fmt.Errorf("unknown profile %q (want CDN-T, CDN-W or CDN-A)", *profile))
		}
		tr, err = gen.Generate(prof.Config(*scale, *seed))
		if err != nil {
			fail(err)
		}
		capBytes = prof.CacheBytes(64<<30, *scale)
	}
	if *cacheSize != "" {
		capBytes, err = trace.ParseBytes(*cacheSize)
		if err != nil {
			fail(fmt.Errorf("bad -cache: %w", err))
		}
	}

	if *scalebench != "" {
		if err := runScaleBench(tr, *policy, capBytes, *shards, *seed, *batch, *scalebench); err != nil {
			fail(err)
		}
		return
	}

	if *gcbench != "" {
		if err := runGCBench(tr, *policy, *shards, *seed, *gcobjects, *gcbench); err != nil {
			fail(err)
		}
		return
	}

	mode, err := shard.ParseMode(*modeFlag)
	if err != nil {
		fail(err)
	}
	opts := []shard.Option{shard.WithMode(mode)}
	if *depth > 0 {
		opts = append(opts, shard.WithActorDepth(*depth))
	}
	c, err := buildSharded(*policy, capBytes, *shards, *seed, opts...)
	if err != nil {
		fail(err)
	}
	defer c.Close()
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("scip-load: %s  trace=%s (%d requests x%d)  cache=%.1f MiB  shards=%d  workers=%d  mode=%s batch=%d\n",
		c.Name(), tr.Name, len(tr.Requests), *repeat, float64(capBytes)/(1<<20), c.Shards(), min(nWorkers, c.Shards()), mode, *batch)

	snap, elapsed := runLoad(tr, c, nWorkers, *repeat, *batch, *nolat, *gcstats, *interval, os.Stdout)

	rep := sim.BuildLoadReport(snap, elapsed)
	rep.GeneratedUnix = time.Now().Unix() //scip:wallclock-ok report metadata: records when the run happened, never feeds a decision
	rep.Trace = tr.Name
	rep.Policy = c.Name()
	rep.CacheBytes = capBytes
	rep.Shards = c.Shards()
	rep.Workers = min(nWorkers, c.Shards())
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Repeat = *repeat

	fmt.Printf("done: %d requests in %.2fs (%.0f req/s)  miss=%.4f byteMiss=%.4f  occSkew=%.3f  p50=%s p99=%s\n",
		rep.Requests, rep.TotalSeconds, rep.RPS, rep.MissRatio, rep.ByteMissRatio,
		rep.OccupancySkew,
		snap.LatencyQuantile(0.50).Round(time.Nanosecond),
		snap.LatencyQuantile(0.99).Round(time.Nanosecond))
	if *jsonPath != "" {
		if err := sim.WriteJSON(*jsonPath, rep); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}

// runScaleBench replays the workers x GOMAXPROCS x mode throughput
// matrix (`make bench-scale`): for each GOMAXPROCS value suited to this
// machine and each worker count, it replays the trace once per
// concurrency configuration — per-request mutex locking, mutex locking
// amortised over -batch-request batches, and the actor path fed the same
// batches — and merges the cells into jsonPath as the scale_matrix
// section, alongside whatever else (scip-bench figures) the file holds.
// Only Mreq/s is wall-clock; the miss ratio must be identical in every
// cell and the run fails if any cell diverges (the serial-order
// invariant, cross-checked rather than assumed).
func runScaleBench(tr *trace.Trace, policy string, capBytes int64, shards int, seed int64, batch int, jsonPath string) error {
	if batch <= 1 {
		batch = 64
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	// 1, NumCPU/2, NumCPU — strictly increasing, duplicates skipped, so
	// a 1-CPU machine runs just {1} and records that honestly.
	gmps := []int{1}
	if n := runtime.NumCPU(); n >= 4 {
		gmps = append(gmps, n/2)
	}
	if n := runtime.NumCPU(); n > 1 {
		gmps = append(gmps, n)
	}
	var workerSet []int
	for w := 1; w <= 8; w *= 2 {
		if w <= shards {
			workerSet = append(workerSet, w)
		}
	}
	modes := []struct {
		name  string
		mode  shard.Mode
		batch int
	}{
		{"mutex", shard.ModeMutex, 1},
		{"batched", shard.ModeMutex, batch},
		{"actor", shard.ModeActor, batch},
	}

	label := strings.ToUpper(policy)
	if scorer.IsSpec(policy) {
		label = policy // scorer specs are case-sensitive display names
	}
	rep := sim.ScaleReport{
		Trace:      tr.Name,
		Policy:     label,
		CacheBytes: capBytes,
		Shards:     shards,
		Requests:   len(tr.Requests),
		NumCPU:     runtime.NumCPU(),
	}
	fmt.Printf("scip-load scalebench: %s  trace=%s (%d requests)  cache=%.1f MiB  shards=%d  ncpu=%d\n",
		rep.Policy, tr.Name, len(tr.Requests), float64(capBytes)/(1<<20), shards, rep.NumCPU)
	fmt.Printf("%-10s %-8s %-10s %-6s %12s %10s\n", "gomaxprocs", "workers", "mode", "batch", "Mreq/s", "missRatio")

	wantMiss, first := 0.0, true
	for _, g := range gmps {
		runtime.GOMAXPROCS(g)
		for _, w := range workerSet {
			for _, m := range modes {
				c, err := buildSharded(policy, capBytes, shards, seed, shard.WithMode(m.mode))
				if err != nil {
					return err
				}
				start := time.Now() //scip:wallclock-ok scale-matrix metering: wall time per cell
				hits := runner.ReplaySharded(tr.Requests, c, w, m.batch)
				elapsed := time.Since(start).Seconds() //scip:wallclock-ok scale-matrix metering: wall time per cell
				c.Close()
				miss := 1 - float64(hits)/float64(len(tr.Requests))
				if first {
					wantMiss, first = miss, false
				} else if miss != wantMiss {
					return fmt.Errorf("scalebench: gomaxprocs=%d workers=%d mode=%s: miss ratio %.6f != %.6f — serial-order invariant violated",
						g, w, m.name, miss, wantMiss)
				}
				cell := sim.ScaleCell{
					Workers:    w,
					GoMaxProcs: g,
					Mode:       m.name,
					Batch:      m.batch,
					MreqPerSec: float64(len(tr.Requests)) / elapsed / 1e6,
					MissRatio:  miss,
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Printf("%-10d %-8d %-10s %-6d %12.2f %10.4f\n",
					g, w, m.name, m.batch, cell.MreqPerSec, miss)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	rep.GeneratedUnix = time.Now().Unix() //scip:wallclock-ok report metadata: records when the run happened, never feeds a decision
	out := struct {
		ScaleMatrix sim.ScaleReport `json:"scale_matrix"`
	}{rep}
	if err := sim.MergeJSON(jsonPath, out); err != nil {
		return err
	}
	fmt.Printf("scale_matrix merged into %s (%d cells)\n", jsonPath, len(rep.Cells))
	return nil
}

// runGCBench measures the GC footprint of the pointer-free data plane
// (`make bench-gc`): for each working-set size up to maxObjects and each
// concurrency mode, it fills the cache to that many resident objects,
// forces a GC to read how many scannable heap bytes the resident set
// added (with slab-backed entries and a scalar index this is ~zero per
// object, the invariant DESIGN.md §12 promises), then replays the trace
// as churn and records the GC cycles and pause time the steady state
// incurred. Cells merge into jsonPath as the gc_matrix section. The
// churn miss ratio must be identical across modes at each size — the
// serial-order invariant, cross-checked rather than assumed — and the
// run fails on any divergence.
func runGCBench(tr *trace.Trace, policy string, shards int, seed int64, maxObjects int, jsonPath string) error {
	if maxObjects < 1024 {
		maxObjects = 1024
	}
	const objBytes = 4096
	// fillBase keeps fill keys disjoint from any trace key.
	const fillBase = uint64(1) << 40
	sizes := []int{maxObjects}
	if maxObjects >= 10_000 {
		sizes = []int{maxObjects / 10, maxObjects}
	}
	modes := []struct {
		name  string
		mode  shard.Mode
		batch int
	}{
		{"mutex", shard.ModeMutex, 1},
		{"batched", shard.ModeMutex, 64},
		{"actor", shard.ModeActor, 64},
	}

	label := strings.ToUpper(policy)
	if scorer.IsSpec(policy) {
		label = policy
	}
	rep := sim.GCReport{
		Trace:    tr.Name,
		Policy:   label,
		Shards:   shards,
		Requests: len(tr.Requests),
	}
	fmt.Printf("scip-load gcbench: %s  trace=%s (%d churn requests)  shards=%d\n",
		rep.Policy, tr.Name, len(tr.Requests), shards)
	fmt.Printf("%-10s %-8s %14s %10s %9s %10s %10s\n",
		"objects", "mode", "heapScanMiB", "scanB/obj", "gcCycles", "pause", "missRatio")

	for _, n := range sizes {
		// The fill ends at time 0 so the churn trace's native timestamps
		// continue monotonically per shard.
		fill := make([]cache.Request, n)
		for i := range fill {
			fill[i] = cache.Request{Time: int64(i - n), Key: fillBase + uint64(i), Size: objBytes}
		}
		wantMiss, first := 0.0, true
		for _, m := range modes {
			c, err := buildSharded(policy, int64(n)*objBytes, shards, seed, shard.WithMode(m.mode))
			if err != nil {
				return err
			}
			runtime.GC()
			gc0 := stats.ReadGC()
			runner.ReplaySharded(fill, c, 1, m.batch)
			runtime.GC()
			gc1 := stats.ReadGC()
			hits := runner.ReplaySharded(tr.Requests, c, 1, m.batch)
			gc2 := stats.ReadGC()
			c.Close()
			miss := 1 - float64(hits)/float64(len(tr.Requests))
			if first {
				wantMiss, first = miss, false
			} else if miss != wantMiss {
				return fmt.Errorf("gcbench: objects=%d mode=%s: miss ratio %.6f != %.6f — serial-order invariant violated",
					n, m.name, miss, wantMiss)
			}
			scanDelta := float64(int64(gc1.HeapScanBytes) - int64(gc0.HeapScanBytes))
			cell := sim.GCCell{
				Objects:         n,
				Mode:            m.name,
				HeapScanMiB:     scanDelta / (1 << 20),
				ScanBytesPerObj: scanDelta / float64(n),
				GCCycles:        gc2.NumGC - gc1.NumGC,
				PauseMillis:     (gc2.PauseTotal - gc1.PauseTotal).Seconds() * 1e3,
				MissRatio:       miss,
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("%-10d %-8s %14.2f %10.1f %9d %9.2fms %10.4f\n",
				n, m.name, cell.HeapScanMiB, cell.ScanBytesPerObj, cell.GCCycles, cell.PauseMillis, miss)
		}
	}
	rep.GeneratedUnix = time.Now().Unix() //scip:wallclock-ok report metadata: records when the run happened, never feeds a decision
	out := struct {
		GCMatrix sim.GCReport `json:"gc_matrix"`
	}{rep}
	if err := sim.MergeJSON(jsonPath, out); err != nil {
		return err
	}
	fmt.Printf("gc_matrix merged into %s (%d cells)\n", jsonPath, len(rep.Cells))
	return nil
}
