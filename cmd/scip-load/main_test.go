package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
)

// TestWorkerCountInvariance is the load harness's core correctness
// property: because the trace is partitioned by shard, every shard sees
// the identical request subsequence in the identical order no matter how
// many workers replay it — so hit, byte-hit and eviction counters must be
// byte-identical between -workers 1 and -workers N.
func TestWorkerCountInvariance(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)

	run := func(policy string, workers int) stats.Snapshot {
		c, err := buildSharded(policy, capBytes, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		snap, _ := runLoad(tr, c, workers, 1, 1, false, false, 0, nil)
		return snap
	}
	for _, policy := range []string{"SCIP", "LRU", "LRB"} {
		serial := run(policy, 1)
		concurrent := run(policy, 4)
		if n := serial.Totals().Requests; n != int64(len(tr.Requests)) {
			t.Fatalf("%s: serial run saw %d requests, trace has %d", policy, n, len(tr.Requests))
		}
		for i := range serial.Shards {
			a, b := serial.Shards[i], concurrent.Shards[i]
			if a.Requests != b.Requests || a.Hits != b.Hits ||
				a.BytesRequested != b.BytesRequested || a.BytesHit != b.BytesHit ||
				a.Evictions != b.Evictions || a.UsedBytes != b.UsedBytes {
				t.Fatalf("%s: shard %d diverges across worker counts:\n  1 worker: %+v\n  4 workers: %+v",
					policy, i, a, b)
			}
		}
		if serial.MissRatio() != concurrent.MissRatio() ||
			serial.ByteMissRatio() != concurrent.ByteMissRatio() {
			t.Fatalf("%s: miss ratios diverge: %v/%v vs %v/%v", policy,
				serial.MissRatio(), serial.ByteMissRatio(),
				concurrent.MissRatio(), concurrent.ByteMissRatio())
		}
	}
}

// TestRepeatExtendsRun: -repeat 2 doubles the observed request count and
// stays deterministic across worker counts.
func TestRepeatExtendsRun(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.0005, 5))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.0005)
	run := func(workers int) stats.Snapshot {
		c, err := buildSharded("LRU", capBytes, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		snap, _ := runLoad(tr, c, workers, 2, 1, false, false, 0, nil)
		return snap
	}
	serial, concurrent := run(1), run(4)
	if n := serial.Totals().Requests; n != 2*int64(len(tr.Requests)) {
		t.Fatalf("repeat=2 saw %d requests, want %d", n, 2*len(tr.Requests))
	}
	if serial.Totals() != concurrent.Totals() {
		t.Fatalf("repeat run diverges: %+v vs %+v", serial.Totals(), concurrent.Totals())
	}
}

// TestIntervalSnapshotOutput runs with live reporting enabled and checks
// the snapshot lines carry the promised fields (rate, miss ratios,
// occupancy skew, p50/p99) plus the per-shard occupancy list.
func TestIntervalSnapshotOutput(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.002, 7))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.002)
	c, err := buildSharded("LRU", capBytes, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	snap, _ := runLoad(tr, c, 4, 20, 1, false, true, 50*time.Millisecond, &out)
	if snap.Totals().Requests == 0 {
		t.Fatal("no requests replayed")
	}
	got := out.String()
	if got == "" {
		t.Skip("run finished before the first reporting tick on this machine")
	}
	for _, field := range []string{"req/s=", "miss=", "byteMiss=", "occSkew=", "p50=", "p99=", "shard MiB: ["} {
		if !strings.Contains(got, field) {
			t.Fatalf("interval output missing %q:\n%s", field, got)
		}
	}
}

// TestFormatLoadInterval pins the snapshot line format against a known
// delta so report parsing stays stable.
func TestFormatLoadInterval(t *testing.T) {
	st := stats.New(2)
	st.ObserveAccess(0, 100, true, 1000, 0)
	st.ObserveAccess(1, 100, false, 1000, 1)
	st.Latency().Observe(time.Millisecond)
	st.Latency().Observe(time.Millisecond)
	line := sim.FormatLoadInterval(2*time.Second, time.Second, st.Snapshot())
	for _, want := range []string{"t=    2.0s", "req/s=        2", "miss= 50.00%", "byteMiss= 50.00%", "occSkew= 1.00"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

// TestModeInvariance is the acceptance gate for the concurrency modes:
// for every policy, every combination of worker count, shard mode and
// batch size must produce byte-identical per-shard counters. A mode that
// reorders even one shard's request subsequence, or a batch path that
// accounts evictions differently, fails here.
func TestModeInvariance(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	variants := []struct {
		name  string
		mode  shard.Mode
		batch int
	}{
		{"mutex", shard.ModeMutex, 1},
		{"batched", shard.ModeMutex, 64},
		{"actor", shard.ModeActor, 64},
	}
	for _, policy := range []string{"SCIP", "LRU", "LRB"} {
		var want stats.Snapshot
		first := true
		for _, workers := range []int{1, 2, 4, 8} {
			for _, v := range variants {
				c, err := buildSharded(policy, capBytes, 8, 1, shard.WithMode(v.mode))
				if err != nil {
					t.Fatal(err)
				}
				snap, _ := runLoad(tr, c, workers, 1, v.batch, true, false, 0, nil)
				c.Close()
				if first {
					want, first = snap, false
					continue
				}
				for i := range want.Shards {
					a, b := want.Shards[i], snap.Shards[i]
					if a.Requests != b.Requests || a.Hits != b.Hits ||
						a.BytesRequested != b.BytesRequested || a.BytesHit != b.BytesHit ||
						a.Evictions != b.Evictions || a.UsedBytes != b.UsedBytes {
						t.Fatalf("%s %s workers=%d batch=%d: shard %d diverges:\n  reference: %+v\n  got:       %+v",
							policy, v.name, workers, v.batch, i, a, b)
					}
				}
			}
		}
	}
}

func TestBuildShardedRejectsUnknownPolicy(t *testing.T) {
	if _, err := buildSharded("nope", 1<<20, 4, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
