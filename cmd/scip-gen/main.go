// Command scip-gen generates a synthetic CDN trace for one of the paper's
// workload profiles and writes it to a file (binary varint format, or CSV
// with -csv).
//
// Usage:
//
//	scip-gen -profile CDN-T -scale 0.01 -seed 1 -o cdn-t.trace [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/scip-cache/scip/internal/gen"
)

func main() {
	profile := flag.String("profile", "CDN-T", "workload profile: CDN-T, CDN-W or CDN-A")
	scale := flag.Float64("scale", 0.01, "scale relative to the paper's full trace")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "output path (default <profile>.trace)")
	csv := flag.Bool("csv", false, "write time,key,size CSV instead of binary")
	flag.Parse()

	p := gen.Profile(*profile)
	found := false
	for _, known := range gen.Profiles {
		if known == p {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown profile %q (want CDN-T, CDN-W or CDN-A)\n", *profile)
		os.Exit(2)
	}
	tr, err := gen.Generate(p.Config(*scale, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = string(p) + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if *csv {
		err = tr.WriteCSV(f)
	} else {
		err = tr.WriteBinary(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(tr.ComputeStats().String())
	fmt.Printf("wrote %s\n", path)
}
