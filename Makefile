# Standard verify loop for the repository. `make check` is what CI (and
# every PR) should run: formatting (with simplification), vet, the
# repository's own scip-vet analyzers, build, tests, and the race
# detector over the concurrent experiment engine and sharded front.

GO ?= go

# Build-tag configurations to vet beyond the default build. scipdebug
# compiles the arena's per-dereference handle guards in (see
# internal/cache/arena_guard_on.go); every configuration added later
# must be listed here so `make vet` covers it.
VET_TAGS ?= scipdebug

.PHONY: check fmt-check vet lint supps build test test-race examples docs-check golden-equiv fuzz bench bench-kernels bench-figures bench-scale bench-gc bench-cluster bench-check load

check: fmt-check vet lint build test test-race examples docs-check golden-equiv

# gofmt -s also demands the simplified forms (composite-literal elision,
# range cleanups), not just canonical spacing.
fmt-check:
	@out=$$(gofmt -s -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
	@for tags in $(VET_TAGS); do \
		echo "vet -tags $$tags"; \
		$(GO) vet -tags "$$tags" ./... || exit 1; \
	done

# lint runs the repository's own determinism/concurrency/allocation
# analyzers (see internal/analysis and DESIGN.md "Invariants"): the
# per-file syntactic checks plus the interprocedural hotalloc,
# clocktaint, guardedby and arenalife passes, ending with the
# suppression audit — a stale or unknown //scip: comment fails the run.
lint:
	$(GO) run ./cmd/scip-vet ./...

# supps prints the //scip: suppression-and-annotation inventory
# (file:line, token, live/STALE, justification) and exits 1 when any
# suppression is stale.
supps:
	$(GO) run ./cmd/scip-vet -supps ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# examples builds the five runnable programs under examples/ and runs
# the Example* godoc functions (facade, internal/stats and
# internal/cluster): their // Output: blocks are the executable half of
# the documentation and must stay green.
examples:
	$(GO) build ./examples/...
	$(GO) test -run Example . ./internal/stats/ ./internal/cluster/

# docs-check fails on broken intra-repo markdown links (docs_test.go) and
# on internal/ packages missing a package comment (the scip-vet pkgdoc
# analyzer, scoped here to internal/... for a fast signal; `make lint`
# runs the full analyzer set).
docs-check:
	$(GO) test -run TestDocsLinks .
	$(GO) run ./cmd/scip-vet ./internal/...

# golden-equiv replays the goldened figures with every SCIP construction
# swapped for a zro-only scorer pipeline (internal/admission/scorer) and
# asserts byte-identity against the committed goldens: the decomposed
# admission pipeline must reproduce the monolith exactly. Runs as part
# of `make test` too (it is an ordinary test); the named target gives CI
# and humans a direct handle on the equivalence contract.
golden-equiv:
	$(GO) test ./internal/exp/ -run TestScorerGoldenEquivalence -count 1

# Short fuzz passes over the analysis fixture-comment parser and the
# interprocedural call-graph builder (arbitrary parseable source must
# never panic the module indexer or the flow analyzers).
fuzz:
	$(GO) test ./internal/analysis/ -run '^$$' -fuzz FuzzParseWant -fuzztime 30s
	$(GO) test ./internal/analysis/ -run '^$$' -fuzz FuzzCallGraph -fuzztime 30s

# Hot-path and per-figure micro benchmarks at reduced scale.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The ML-kernel trio behind the flat-matrix hot path: GBM training, the
# trained LRB access path, and single-tree prediction. BENCHTIME=5x (the
# CI setting) keeps it to a smoke run; raise it locally for stable
# numbers, e.g. `make bench-kernels BENCHTIME=2s`.
BENCHTIME ?= 1s
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkGBMFit|BenchmarkLRBAccessTrained|BenchmarkTreePredict' \
		-benchtime $(BENCHTIME) -benchmem .

# Full figure regeneration with per-figure timings in BENCH.json.
# scip-bench merges into the file, so the scale_matrix section written by
# bench-scale survives a figure rerun (and vice versa).
bench-figures:
	$(GO) run ./cmd/scip-bench -scale 0.01 -seeds 2 -json BENCH.json all

# The workers x GOMAXPROCS x concurrency-mode throughput matrix
# (EXPERIMENTS.md "Scaling"): one replay per (gomaxprocs, workers,
# mutex/batched/actor) cell, cross-checked for identical miss ratios and
# merged into BENCH.json as scale_matrix. SCALE=0.002 keeps the default
# run short; raise it for stable numbers, e.g. `make bench-scale
# SCALE=0.01`.
SCALE ?= 0.002
BENCHJSON ?= BENCH.json
bench-scale:
	$(GO) run ./cmd/scip-load -scale $(SCALE) -shards 8 -batch 64 -scalebench $(BENCHJSON)

# GC-pressure matrix (DESIGN.md §12): fills the cache to each working-set
# size, measures the scannable-heap bytes the resident set adds (~0 with
# the pointer-free core) and the pause cost of churn, cross-checks miss
# ratios across concurrency modes and merges the cells into BENCH.json as
# gc_matrix. GCOBJECTS=50000 keeps the default a CI smoke run; the
# committed artefact uses the paper-faithful 1M-object working set
# (`make bench-gc GCOBJECTS=1000000 SCALE=0.01`).
GCOBJECTS ?= 50000
bench-gc:
	$(GO) run ./cmd/scip-load -scale $(SCALE) -shards 8 -gcobjects $(GCOBJECTS) -gcbench $(BENCHJSON)

# Cluster equivalence smoke (CLUSTER.md): spins an in-process 3-node
# fleet on loopback with a scip-route router in front, replays a tiny
# CDN-T trace through the router from concurrent clients, cross-checks
# every node's shard counters byte-for-byte against a single-node replay
# of its ring partition, and merges the router-overhead cells into
# BENCH.json as cluster_matrix. SCALE=0.002 keeps it a CI smoke run.
bench-cluster:
	$(GO) run ./cmd/scip-route -clusterbench $(BENCHJSON) -scale $(SCALE) -shards 4 -bench-nodes 3

# Benchmark-regression guard: reruns the replay hot path and fails if
# ns/op regresses more than 20% against the committed baseline in
# BENCH.json (replay_hot_path.lru_ns_per_op_after). Best-of-3 damps
# scheduler noise; a genuine data-plane regression still trips it.
bench-check:
	@base=$$(sed -n 's/.*"lru_ns_per_op_after": *\([0-9.]*\).*/\1/p' $(BENCHJSON)); \
	if [ -z "$$base" ]; then echo "bench-check: no replay_hot_path baseline in $(BENCHJSON)"; exit 1; fi; \
	best=$$($(GO) test -run '^$$' -bench 'BenchmarkReplayHotPathLRU$$' -benchtime 1s -count 3 . \
		| awk '/BenchmarkReplayHotPathLRU/ {if (best == "" || $$3 < best) best = $$3} END {print best}'); \
	if [ -z "$$best" ]; then echo "bench-check: benchmark produced no result"; exit 1; fi; \
	echo "bench-check: best $$best ns/op vs baseline $$base ns/op (limit +20%)"; \
	awk -v b="$$best" -v base="$$base" 'BEGIN { exit !(b <= base * 1.2) }' || \
		{ echo "bench-check: BenchmarkReplayHotPathLRU regressed >20%"; exit 1; }

# Concurrent load run with the race detector enabled: replays a synthetic
# CDN-T trace across GOMAXPROCS workers against the sharded SCIP front,
# printing live snapshots and writing LOAD.json.
load:
	$(GO) run -race ./cmd/scip-load -scale 0.01 -shards 8 -repeat 2 -interval 1s -json LOAD.json
