# Standard verify loop for the repository. `make check` is what CI (and
# every PR) should run: formatting, vet, build, tests, and the race
# detector over the concurrent experiment engine and sharded front.

GO ?= go

.PHONY: check fmt-check vet build test test-race bench bench-figures

check: fmt-check vet build test test-race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Hot-path and per-figure micro benchmarks at reduced scale.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full figure regeneration with per-figure timings in BENCH.json.
bench-figures:
	$(GO) run ./cmd/scip-bench -scale 0.01 -seeds 2 -json BENCH.json all
