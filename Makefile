# Standard verify loop for the repository. `make check` is what CI (and
# every PR) should run: formatting, vet, build, tests, and the race
# detector over the concurrent experiment engine and sharded front.

GO ?= go

.PHONY: check fmt-check vet build test test-race bench bench-figures load

check: fmt-check vet build test test-race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Hot-path and per-figure micro benchmarks at reduced scale.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full figure regeneration with per-figure timings in BENCH.json.
bench-figures:
	$(GO) run ./cmd/scip-bench -scale 0.01 -seeds 2 -json BENCH.json all

# Concurrent load run with the race detector enabled: replays a synthetic
# CDN-T trace across GOMAXPROCS workers against the sharded SCIP front,
# printing live snapshots and writing LOAD.json.
load:
	$(GO) run -race ./cmd/scip-load -scale 0.01 -shards 8 -repeat 2 -interval 1s -json LOAD.json
