package scip_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docFiles are the repository's maintained documents: every intra-repo
// link in them must resolve, both the file part and any #anchor against
// the target's headings. PAPER.md/PAPERS.md/SNIPPETS.md/ISSUE.md are
// generated inputs and not checked.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"OPERATIONS.md",
	"CLUSTER.md",
	"ROADMAP.md",
}

// TestDocsLinks fails on broken intra-repo markdown links — a missing
// target file, or an anchor no heading in the target slugs to. External
// links (with a scheme) are out of scope: the check must not depend on
// the network.
func TestDocsLinks(t *testing.T) {
	for _, doc := range docFiles {
		t.Run(doc, func(t *testing.T) {
			links, err := markdownLinks(doc)
			if err != nil {
				t.Fatal(err)
			}
			if len(links) == 0 {
				t.Logf("%s has no intra-repo links", doc)
			}
			for _, l := range links {
				checkLink(t, doc, l)
			}
		})
	}
}

// link is one markdown link occurrence.
type link struct {
	line   int
	target string
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// markdownLinks extracts link targets from path, skipping fenced code
// blocks (``` ... ```) where bracketed text is code, not links.
func markdownLinks(path string) ([]link, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []link
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			out = append(out, link{line: i + 1, target: m[1]})
		}
	}
	return out, nil
}

func checkLink(t *testing.T, doc string, l link) {
	t.Helper()
	target := l.target
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return // external
	}
	file, anchor, _ := strings.Cut(target, "#")
	if file == "" {
		file = doc // in-document anchor
	}
	file = filepath.FromSlash(file)
	if _, err := os.Stat(file); err != nil {
		t.Errorf("%s:%d: link target %q does not exist", doc, l.line, l.target)
		return
	}
	if anchor == "" {
		return
	}
	if !strings.HasSuffix(file, ".md") {
		return // anchors into non-markdown files are not checkable here
	}
	slugs, err := headingSlugs(file)
	if err != nil {
		t.Fatal(err)
	}
	if !slugs[anchor] {
		t.Errorf("%s:%d: anchor %q not found in %s (known: %s)",
			doc, l.line, "#"+anchor, file, strings.Join(sortedKeys(slugs), ", "))
	}
}

// headingSlugs returns the GitHub-style anchor slugs of every markdown
// heading in path: lowercase, spaces to hyphens, punctuation dropped,
// duplicate slugs suffixed -1, -2, ...
func headingSlugs(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	slugs := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == "" || text[0] != ' ' {
			continue
		}
		slug := githubSlug(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		counts[slug]++
	}
	return slugs, nil
}

var slugDropRE = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

func githubSlug(heading string) string {
	// Strip inline code/emphasis markers, then GitHub's rule: lowercase,
	// drop punctuation, spaces become hyphens.
	s := strings.NewReplacer("`", "", "*", "", "§", "").Replace(heading)
	s = strings.ToLower(s)
	s = slugDropRE.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
