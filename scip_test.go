package scip_test

import (
	"testing"

	scip "github.com/scip-cache/scip"
)

func TestFacadeQuickstart(t *testing.T) {
	tr, err := scip.GenerateProfile(scip.CDNT, 0.0005, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := scip.NewCache(32<<20, scip.WithSeed(1), scip.WithInterval(2000))
	res := scip.Replay(tr, c, scip.ReplayOptions{WarmupFrac: 0.2})
	if res.MissRatio() <= 0 || res.MissRatio() >= 1 {
		t.Fatalf("implausible miss ratio %.4f", res.MissRatio())
	}
	lru := scip.Replay(tr, scip.NewLRU(32<<20), scip.ReplayOptions{WarmupFrac: 0.2})
	if res.MissRatio() > lru.MissRatio()+0.03 {
		t.Fatalf("SCIP %.4f collapsed against LRU %.4f", res.MissRatio(), lru.MissRatio())
	}
	bel := scip.BeladyMissRatio(tr, 32<<20)
	if bel > lru.MissRatio() {
		t.Fatalf("Belady %.4f worse than LRU %.4f", bel, lru.MissRatio())
	}
}

func TestFacadeCustomWorkload(t *testing.T) {
	tr, err := scip.Generate(scip.WorkloadConfig{
		Name: "tiny", Seed: 2,
		Requests:    20_000,
		CatalogSize: 300,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.3,
		SizeMean:    4096, SizeSigma: 1.0, MinSize: 64, MaxSize: 1 << 20,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.TotalRequests != 20_000 {
		t.Fatalf("requests = %d", st.TotalRequests)
	}
	s := scip.New(1<<20, scip.WithSeed(3))
	c := scip.NewQueueCache("custom", 1<<20, s)
	res := scip.Replay(tr, c, scip.ReplayOptions{})
	if res.Hits == 0 {
		t.Fatal("no hits on reusable workload")
	}
}

func TestFacadeSCIVariant(t *testing.T) {
	s := scip.NewSCI(1 << 20)
	if s.Name() != "SCI" {
		t.Fatalf("Name = %q", s.Name())
	}
	if pos := s.ChoosePromote(scip.Request{Key: 1, Size: 10}); pos != scip.MRU {
		t.Fatal("SCI must promote to MRU")
	}
}
