// Package gen produces synthetic CDN workloads that stand in for the
// paper's proprietary traces (CDN-T from Tencent TDC, CDN-W from the LRB
// Wikipedia trace, CDN-A from the Tencent photo store). Each generated
// trace preserves the structural properties the SCIP experiments depend
// on: Zipf-like popularity with temporal drift, heavy-tailed log-normal
// object sizes, one-hit wonders (the source of ZROs) and short re-access
// echoes of cold objects (the source of P-ZROs). The profiles scale the
// Table-1 request and object counts down uniformly so the cache-size to
// working-set ratios of the paper's experiments are preserved.
package gen
