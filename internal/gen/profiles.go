package gen

import "github.com/scip-cache/scip/internal/trace"

// Profile identifies one of the paper's three workloads.
type Profile string

// The three workloads of Table 1.
const (
	CDNT Profile = "CDN-T" // Tencent TDC image CDN
	CDNW Profile = "CDN-W" // LRB Wikipedia CDN
	CDNA Profile = "CDN-A" // Tencent photo store
)

// Profiles lists all workload profiles in the paper's order.
var Profiles = []Profile{CDNT, CDNW, CDNA}

// PaperStats returns the Table-1 statistics reported in the paper for the
// full-size workload (scale = 1).
func (p Profile) PaperStats() trace.Stats {
	switch p {
	case CDNT:
		return trace.Stats{
			Name:           string(CDNT),
			TotalRequests:  78_750_000,
			UniqueObjects:  24_710_000,
			MaxObjectSize:  mib(19.97),
			MinObjectSize:  2,
			MeanObjectSize: 44.56 * 1024,
			WorkingSetSize: 1097 << 30,
		}
	case CDNW:
		return trace.Stats{
			Name:           string(CDNW),
			TotalRequests:  100_000_000,
			UniqueObjects:  2_340_000,
			MaxObjectSize:  mib(674.38),
			MinObjectSize:  10,
			MeanObjectSize: 35.07 * 1024,
			WorkingSetSize: 327 << 30,
		}
	case CDNA:
		return trace.Stats{
			Name:           string(CDNA),
			TotalRequests:  99_550_000,
			UniqueObjects:  54_430_000,
			MaxObjectSize:  mib(7.99),
			MinObjectSize:  2,
			MeanObjectSize: 31.21 * 1024,
			WorkingSetSize: 1580 << 30,
		}
	}
	return trace.Stats{Name: string(p)}
}

// Config returns the generator configuration for the profile at the given
// scale. scale = 1 reproduces the paper's full trace sizes (do not do this
// on a laptop); the experiment harness defaults to scale = 1/50 and the
// go-test benchmarks to 1/500. Request counts, catalog sizes and drift all
// scale uniformly, so unique/total ratios — and therefore the cache-size to
// working-set ratios that drive every figure — are preserved.
//
// Calibration notes:
//   - CDN-T (images): moderate one-hit-wonder share (~31 % unique/total),
//     moderate echo rate.
//   - CDN-W (Wikipedia): tiny unique/total ratio (2.3 %), the strongest
//     quick-re-access behaviour — the paper reports 21.7 % of its hits are
//     P-ZROs — and a very heavy size tail (674 MB max). The paper's
//     Table 1 mean size (35 KB) is request-weighted; the working set size
//     implies a ~140 KB object-level mean, which is what we target since
//     cache ratios depend on the working set.
//   - CDN-A (photos): dominated by one-hit wonders (55 % unique/total),
//     flatter popularity.
func (p Profile) Config(scale float64, seed int64) Config {
	scaled := func(n float64) int {
		v := int(n * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch p {
	case CDNT:
		reqs := scaled(78.75e6)
		return Config{
			Name: string(CDNT), Seed: seed,
			Requests:    reqs,
			CatalogSize: maxInt(scaled(2.5e6), 64),
			ZipfAlpha:   0.9,
			OneHitFrac:  0.26,
			EchoProb:    0.15, EchoDelay: 200, EchoTailFrac: 0.5,
			EpochRequests: maxInt(reqs/10, 1), DriftFrac: 0.14,
			SizeMean: 44.56 * 1024, SizeSigma: 1.6, OneHitSizeBoost: 2.5,
			MinSize: 2, MaxSize: mib(19.97),
			Duration: 2 * 86400,
		}
	case CDNW:
		reqs := scaled(100e6)
		return Config{
			Name: string(CDNW), Seed: seed,
			Requests:    reqs,
			CatalogSize: maxInt(scaled(1.5e6), 64),
			ZipfAlpha:   0.8,
			OneHitFrac:  0.004,
			EchoProb:    0.5, EchoDelay: 150, EchoTailFrac: 0.7,
			EpochRequests: maxInt(reqs/10, 1), DriftFrac: 0.06,
			SizeMean: 140 * 1024, SizeSigma: 1.4, OneHitSizeBoost: 3,
			MinSize: 10, MaxSize: mib(674.38),
			Duration: 2 * 86400,
		}
	case CDNA:
		reqs := scaled(99.55e6)
		return Config{
			Name: string(CDNA), Seed: seed,
			Requests:    reqs,
			CatalogSize: maxInt(scaled(2.0e6), 64),
			ZipfAlpha:   0.7,
			OneHitFrac:  0.52,
			EchoProb:    0.10, EchoDelay: 250, EchoTailFrac: 0.5,
			EpochRequests: maxInt(reqs/10, 1), DriftFrac: 0.13,
			SizeMean: 31.21 * 1024, SizeSigma: 1.5, OneHitSizeBoost: 2,
			MinSize: 2, MaxSize: mib(7.99),
			Duration: 2 * 86400,
		}
	}
	// Unknown profile: a small generic workload, useful in tests.
	return Config{
		Name: string(p), Seed: seed,
		Requests:    scaled(1e6),
		CatalogSize: maxInt(scaled(5e4), 64),
		ZipfAlpha:   0.9,
		OneHitFrac:  0.2,
		EchoProb:    0.2, EchoDelay: 100, EchoTailFrac: 0.5,
		EpochRequests: maxInt(scaled(1e5), 1), DriftFrac: 0.1,
		SizeMean: 32 * 1024, SizeSigma: 1.5,
		MinSize: 16, MaxSize: 8 << 20,
		Duration: 86400,
	}
}

// CacheBytes maps one of the paper's absolute cache sizes (e.g. 64 GB) to
// the equivalent byte budget for a trace generated at the given scale,
// preserving the cache-to-working-set ratio of the full workload.
// Because generated working sets scale uniformly with the paper's, this is
// simply paperCacheBytes × scale.
func (p Profile) CacheBytes(paperCacheBytes int64, scale float64) int64 {
	return int64(float64(paperCacheBytes) * scale)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mib converts mebibytes to bytes.
func mib(f float64) int64 { return int64(f * (1 << 20)) }
