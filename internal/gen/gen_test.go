package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := CDNT.Config(0.001, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.CatalogSize = 0 },
		func(c *Config) { c.ZipfAlpha = -1 },
		func(c *Config) { c.OneHitFrac = 1.5 },
		func(c *Config) { c.EchoProb = -0.1 },
		func(c *Config) { c.MinSize = 0 },
		func(c *Config) { c.MaxSize = c.MinSize - 1 },
		func(c *Config) { c.SizeMean = 0 },
		func(c *Config) { c.Duration = 0 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := CDNT.Config(0.0005, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ across identical seeds")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %v vs %v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(CDNT.Config(0.0005, 1))
	b, _ := Generate(CDNT.Config(0.0005, 2))
	same := 0
	for i := range a.Requests {
		if a.Requests[i].Key == b.Requests[i].Key {
			same++
		}
	}
	if same == len(a.Requests) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	for _, p := range Profiles {
		cfg := p.Config(0.0008, 7)
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Requests) != cfg.Requests {
			t.Fatalf("%s: got %d requests, want %d", p, len(tr.Requests), cfg.Requests)
		}
		var prev int64
		sizes := map[uint64]int64{}
		for i, r := range tr.Requests {
			if r.Time < prev {
				t.Fatalf("%s: non-monotonic time at %d", p, i)
			}
			prev = r.Time
			if r.Size < cfg.MinSize || r.Size > cfg.MaxSize {
				t.Fatalf("%s: size %d outside [%d,%d]", p, r.Size, cfg.MinSize, cfg.MaxSize)
			}
			if s, ok := sizes[r.Key]; ok && s != r.Size {
				t.Fatalf("%s: object %d changed size %d -> %d", p, r.Key, s, r.Size)
			}
			sizes[r.Key] = r.Size
		}
	}
}

// TestProfileUniqueRatios checks that the unique/total object ratios of the
// generated workloads land near the paper's Table-1 ratios, which drive the
// ZRO structure of every experiment.
func TestProfileUniqueRatios(t *testing.T) {
	want := map[Profile]float64{}
	for _, p := range Profiles {
		ps := p.PaperStats()
		want[p] = float64(ps.UniqueObjects) / float64(ps.TotalRequests)
	}
	for _, p := range Profiles {
		tr, err := Generate(p.Config(0.002, 3))
		if err != nil {
			t.Fatal(err)
		}
		s := tr.ComputeStats()
		got := float64(s.UniqueObjects) / float64(s.TotalRequests)
		if math.Abs(got-want[p]) > 0.35*want[p]+0.02 {
			t.Errorf("%s: unique/total = %.3f, paper %.3f", p, got, want[p])
		}
	}
}

// TestProfileMeanSizes checks the object-level mean sizes are within a
// factor ~2 of the calibration targets (log-normal clamping shifts them).
func TestProfileMeanSizes(t *testing.T) {
	for _, p := range Profiles {
		cfg := p.Config(0.002, 3)
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := tr.ComputeStats()
		ratio := s.MeanObjectSize / cfg.SizeMean
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: mean size %.0f vs target %.0f (ratio %.2f)", p, s.MeanObjectSize, cfg.SizeMean, ratio)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(1000, 1.0)
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.rank(rng)]++
	}
	if counts[0] <= counts[100] || counts[100] <= counts[900] {
		t.Fatalf("Zipf not skewed: c0=%d c100=%d c900=%d", counts[0], counts[100], counts[900])
	}
	// Rank 0 should hold roughly 1/H(1000) of the mass (~13% for alpha=1).
	frac := float64(counts[0]) / 200000
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("rank-0 mass = %.3f, want ~0.13", frac)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := newZipf(100, 0)
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.rank(rng)]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("alpha=0 rank %d count %d not ~1000", r, c)
		}
	}
}

func TestCacheBytesScales(t *testing.T) {
	paperBytes := int64(64 << 30)
	got := CDNT.CacheBytes(paperBytes, 0.02)
	want := int64(float64(paperBytes) * 0.02)
	if got != want {
		t.Fatalf("CacheBytes=%d want %d", got, want)
	}
}

func TestPaperStatsCoverProfiles(t *testing.T) {
	for _, p := range Profiles {
		s := p.PaperStats()
		if s.TotalRequests == 0 || s.WorkingSetSize == 0 {
			t.Fatalf("%s: empty paper stats", p)
		}
	}
	if Profile("other").PaperStats().TotalRequests != 0 {
		t.Fatal("unknown profile should have empty paper stats")
	}
}

func TestUnknownProfileConfigUsable(t *testing.T) {
	cfg := Profile("tiny").Config(0.001, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("generic profile invalid: %v", err)
	}
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOneHitSizeBoostCorrelation verifies the size↔zero-reuse correlation:
// with a boost, objects seen exactly once must be larger on average than
// reused objects, while the overall mean stays near the target.
func TestOneHitSizeBoostCorrelation(t *testing.T) {
	cfg := Config{
		Name: "boost", Seed: 9,
		Requests:    120_000,
		CatalogSize: 2_000,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.3,
		SizeMean:    10_000, SizeSigma: 1.0, OneHitSizeBoost: 4,
		MinSize: 16, MaxSize: 10 << 20,
		Duration: 3600,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	sizes := map[uint64]int64{}
	for _, r := range tr.Requests {
		counts[r.Key]++
		sizes[r.Key] = r.Size
	}
	var oneSum, oneN, multiSum, multiN float64
	for k, c := range counts {
		if c == 1 {
			oneSum += float64(sizes[k])
			oneN++
		} else {
			multiSum += float64(sizes[k])
			multiN++
		}
	}
	oneMean := oneSum / oneN
	multiMean := multiSum / multiN
	if oneMean < 2*multiMean {
		t.Fatalf("one-hit mean %.0f not clearly above reused mean %.0f", oneMean, multiMean)
	}
	overall := tr.ComputeStats().MeanObjectSize
	if overall < cfg.SizeMean*0.4 || overall > cfg.SizeMean*2.5 {
		t.Fatalf("overall mean %.0f drifted from target %.0f", overall, cfg.SizeMean)
	}
}

// TestBoostDisabledIsNeutral: with boost 1 the two populations share the
// same size distribution.
func TestBoostDisabledIsNeutral(t *testing.T) {
	cfg := Config{
		Name: "noboost", Seed: 9,
		Requests:    120_000,
		CatalogSize: 2_000,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.3,
		SizeMean:    10_000, SizeSigma: 1.0,
		MinSize: 16, MaxSize: 10 << 20,
		Duration: 3600,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	sizes := map[uint64]int64{}
	for _, r := range tr.Requests {
		counts[r.Key]++
		sizes[r.Key] = r.Size
	}
	var oneSum, oneN, multiSum, multiN float64
	for k, c := range counts {
		if c == 1 {
			oneSum += float64(sizes[k])
			oneN++
		} else {
			multiSum += float64(sizes[k])
			multiN++
		}
	}
	ratio := (oneSum / oneN) / (multiSum / multiN)
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("boost=1 populations differ: ratio %.2f", ratio)
	}
}
