package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/trace"
)

// Config parametrises a synthetic workload.
type Config struct {
	// Name labels the trace.
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// Requests is the number of requests to generate.
	Requests int
	// CatalogSize is the number of objects in the rotating hot catalog.
	CatalogSize int
	// ZipfAlpha is the popularity skew of the catalog (typically 0.7–1.1).
	ZipfAlpha float64
	// OneHitFrac is the fraction of requests that address a fresh object
	// never requested again (one-hit wonders; these become ZROs).
	OneHitFrac float64
	// EchoProb is the probability that a catalog request to a cold
	// (tail) object schedules one quick re-access, which typically hits
	// and then never recurs — the P-ZRO generator.
	EchoProb float64
	// EchoDelay is the mean distance, in requests, between an access
	// and its echo.
	EchoDelay int
	// EchoTailFrac restricts echoes to the coldest fraction of the
	// catalog (by rank). 0.5 means only the colder half echoes.
	EchoTailFrac float64
	// EpochRequests is the drift period: every EpochRequests requests,
	// DriftFrac of the catalog is replaced with fresh objects.
	EpochRequests int
	// DriftFrac is the fraction of catalog slots replaced per epoch.
	DriftFrac float64
	// SizeMean is the target mean object size in bytes.
	SizeMean float64
	// SizeSigma is the log-normal shape parameter.
	SizeSigma float64
	// MinSize and MaxSize clamp object sizes (bytes).
	MinSize, MaxSize int64
	// OneHitSizeBoost multiplies the size scale of one-hit-wonder
	// objects relative to catalog objects (default 1: no correlation).
	// Real CDN traces correlate object size with zero reuse — large
	// objects are one-time downloads — which is the premise of
	// size-aware insertion policies; catalog sizes are scaled down so
	// the overall mean stays at SizeMean.
	OneHitSizeBoost float64
	// Duration is the simulated wall time covered by the trace, in
	// seconds; timestamps are spread uniformly across it.
	Duration int64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Requests <= 0:
		return fmt.Errorf("gen: Requests must be > 0, got %d", c.Requests)
	case c.CatalogSize <= 0:
		return fmt.Errorf("gen: CatalogSize must be > 0, got %d", c.CatalogSize)
	case c.ZipfAlpha < 0:
		return fmt.Errorf("gen: ZipfAlpha must be >= 0, got %g", c.ZipfAlpha)
	case c.OneHitFrac < 0 || c.OneHitFrac >= 1:
		return fmt.Errorf("gen: OneHitFrac must be in [0,1), got %g", c.OneHitFrac)
	case c.EchoProb < 0 || c.EchoProb > 1:
		return fmt.Errorf("gen: EchoProb must be in [0,1], got %g", c.EchoProb)
	case c.MinSize <= 0 || c.MaxSize < c.MinSize:
		return fmt.Errorf("gen: need 0 < MinSize <= MaxSize, got %d..%d", c.MinSize, c.MaxSize)
	case c.SizeMean <= 0:
		return fmt.Errorf("gen: SizeMean must be > 0, got %g", c.SizeMean)
	case c.Duration <= 0:
		return fmt.Errorf("gen: Duration must be > 0, got %d", c.Duration)
	}
	return nil
}

// zipf is a discrete bounded Zipf(alpha) sampler over ranks [0, n) using a
// precomputed CDF and binary search. Unlike math/rand's Zipf it supports
// alpha <= 1, which real CDN popularity curves require.
type zipf struct {
	cdf []float64
}

func newZipf(n int, alpha float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf}
}

// rank draws a rank in [0, n); rank 0 is the most popular.
func (z *zipf) rank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Generator produces a trace from a Config.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipf
	catalog []uint64 // rank -> object id
	sizes   map[uint64]int64
	nextID  uint64
	echoes  map[int][]uint64 // due request index -> object ids
	sizeMu  float64
	// muCatalog and muOneHit are the log-normal location parameters of
	// the two object populations (see Config.OneHitSizeBoost).
	muCatalog, muOneHit float64
}

// NewGenerator validates cfg and prepares a deterministic generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.EchoDelay <= 0 {
		cfg.EchoDelay = 100
	}
	if cfg.EpochRequests <= 0 {
		cfg.EpochRequests = cfg.Requests + 1 // no drift
	}
	if cfg.EchoTailFrac <= 0 || cfg.EchoTailFrac > 1 {
		cfg.EchoTailFrac = 1
	}
	if cfg.OneHitSizeBoost <= 0 {
		cfg.OneHitSizeBoost = 1
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		zipf:   newZipf(cfg.CatalogSize, cfg.ZipfAlpha),
		sizes:  make(map[uint64]int64, cfg.CatalogSize*2),
		echoes: make(map[int][]uint64),
		sizeMu: math.Log(cfg.SizeMean) - cfg.SizeSigma*cfg.SizeSigma/2,
	}
	// Split the mean between one-hit and catalog objects so the overall
	// unique-object mean stays near SizeMean despite the boost. The
	// one-hit share of unique objects is roughly
	// OneHitFrac·Requests / (OneHitFrac·Requests + CatalogSize).
	uShare := cfg.OneHitFrac * float64(cfg.Requests)
	uShare = uShare / (uShare + float64(cfg.CatalogSize))
	denom := uShare*cfg.OneHitSizeBoost + (1 - uShare)
	catScale := 1 / denom
	g.muCatalog = g.sizeMu + math.Log(catScale)
	g.muOneHit = g.sizeMu + math.Log(catScale*cfg.OneHitSizeBoost)
	g.catalog = make([]uint64, cfg.CatalogSize)
	for i := range g.catalog {
		g.catalog[i] = g.newObject(g.muCatalog)
	}
	return g, nil
}

// newObject mints a fresh object id with a log-normal size around mu.
func (g *Generator) newObject(mu float64) uint64 {
	id := g.nextID
	g.nextID++
	s := int64(math.Exp(mu + g.cfg.SizeSigma*g.rng.NormFloat64()))
	if s < g.cfg.MinSize {
		s = g.cfg.MinSize
	}
	if s > g.cfg.MaxSize {
		s = g.cfg.MaxSize
	}
	g.sizes[id] = s
	return id
}

// Generate produces the full trace.
func (g *Generator) Generate() *trace.Trace {
	cfg := g.cfg
	t := &trace.Trace{Name: cfg.Name, Requests: make([]cache.Request, 0, cfg.Requests)}
	tailStart := int(float64(cfg.CatalogSize) * (1 - cfg.EchoTailFrac))
	for i := 0; i < cfg.Requests; i++ {
		// Catalog drift at epoch boundaries: replaced slots keep their
		// popularity rank but point to fresh objects, so the retired
		// objects' cached copies become dead (future ZROs).
		if i > 0 && i%cfg.EpochRequests == 0 {
			replace := int(cfg.DriftFrac * float64(cfg.CatalogSize))
			for j := 0; j < replace; j++ {
				slot := g.rng.Intn(cfg.CatalogSize)
				g.catalog[slot] = g.newObject(g.muCatalog)
			}
		}
		var key uint64
		if due, ok := g.echoes[i]; ok {
			// Deliver one scheduled echo; requeue the rest.
			key = due[0]
			if len(due) > 1 {
				g.echoes[i+1] = append(g.echoes[i+1], due[1:]...)
			}
			delete(g.echoes, i)
		} else if g.rng.Float64() < cfg.OneHitFrac {
			key = g.newObject(g.muOneHit)
		} else {
			rank := g.zipf.rank(g.rng)
			key = g.catalog[rank]
			if rank >= tailStart && g.rng.Float64() < cfg.EchoProb {
				delay := 1 + g.rng.Intn(2*cfg.EchoDelay)
				g.echoes[i+delay] = append(g.echoes[i+delay], key)
			}
		}
		tm := int64(float64(i) / float64(cfg.Requests) * float64(cfg.Duration))
		t.Requests = append(t.Requests, cache.Request{Time: tm, Key: key, Size: g.sizes[key]})
	}
	return t
}

// Generate is a convenience wrapper: build a generator and produce the
// trace in one call.
func Generate(cfg Config) (*trace.Trace, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}
