// Package belady implements Belady's MIN algorithm adapted to
// variable-sized objects: on every eviction the cached object whose next
// request lies furthest in the future is removed (repeatedly, until the
// incoming object fits). It needs the whole trace in advance and serves
// as the unreachable lower bound in Figures 8 and 10, as well as the
// boundary oracle LRB's training labels are defined against.
package belady
