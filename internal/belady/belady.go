package belady

import (
	"container/heap"
	"math"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/trace"
)

// infinity is the next-use distance of objects never requested again.
const infinity = math.MaxInt64

type bentry struct {
	key     uint64
	size    int64
	nextUse int64
	heapIdx int
}

// maxHeap orders entries by descending next use.
type maxHeap []*bentry

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i].nextUse > h[j].nextUse }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *maxHeap) Push(x any)        { e := x.(*bentry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *maxHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Cache replays exactly the trace it was built from.
type Cache struct {
	name  string
	cap   int64
	bytes int64
	next  []int
	i     int
	index map[uint64]*bentry
	h     maxHeap

	evictedDistances int64
	evictions        int64
}

var _ cache.Policy = (*Cache)(nil)

// New builds a Belady cache for tr. The returned policy must be driven
// with tr's requests in order.
func New(tr *trace.Trace, capBytes int64) *Cache {
	next := make([]int, len(tr.Requests))
	last := make(map[uint64]int, 1<<12)
	for i := len(tr.Requests) - 1; i >= 0; i-- {
		k := tr.Requests[i].Key
		if j, ok := last[k]; ok {
			next[i] = j
		} else {
			next[i] = -1
		}
		last[k] = i
	}
	return &Cache{
		name:  "Belady",
		cap:   capBytes,
		next:  next,
		index: make(map[uint64]*bentry, 1<<12),
	}
}

// Name implements cache.Policy.
func (c *Cache) Name() string { return c.name }

// Capacity implements cache.Policy.
func (c *Cache) Capacity() int64 { return c.cap }

// Used implements cache.Policy.
func (c *Cache) Used() int64 { return c.bytes }

// nextUseAt converts the precomputed next index into a heap key.
func (c *Cache) nextUseAt(i int) int64 {
	if c.next[i] < 0 {
		return infinity
	}
	return int64(c.next[i])
}

// Access implements cache.Policy; requests must arrive in trace order.
func (c *Cache) Access(req cache.Request) bool {
	i := c.i
	c.i++
	if e, ok := c.index[req.Key]; ok {
		e.nextUse = c.nextUseAt(i)
		heap.Fix(&c.h, e.heapIdx)
		return true
	}
	if req.Size > c.cap || req.Size <= 0 {
		return false
	}
	nu := c.nextUseAt(i)
	if nu == infinity {
		// MIN never caches an object with no future use.
		return false
	}
	for c.bytes+req.Size > c.cap {
		victim := c.h[0]
		// Optimisation from the MIN construction: if the incoming
		// object's reuse is further away than the furthest cached
		// object's, caching it cannot help — bypass instead of evicting.
		if victim.nextUse <= nu {
			return false
		}
		heap.Pop(&c.h)
		delete(c.index, victim.key)
		c.bytes -= victim.size
		if victim.nextUse != infinity {
			c.evictedDistances += victim.nextUse - int64(i)
			c.evictions++
		}
	}
	e := &bentry{key: req.Key, size: req.Size, nextUse: nu}
	heap.Push(&c.h, e)
	c.index[req.Key] = e
	c.bytes += req.Size
	return false
}

// BoundaryEstimate returns the mean forward distance of Belady's evicted
// (finite-distance) victims — the "Belady boundary" LRB relaxes: objects
// whose next use lies beyond it are safe eviction candidates.
func (c *Cache) BoundaryEstimate() int64 {
	if c.evictions == 0 {
		return int64(len(c.next))
	}
	return c.evictedDistances / c.evictions
}

// MissRatio replays tr through a fresh Belady cache and returns the miss
// ratio (convenience for the experiment harness).
func MissRatio(tr *trace.Trace, capBytes int64) float64 {
	c := New(tr, capBytes)
	misses := 0
	for _, r := range tr.Requests {
		if !c.Access(r) {
			misses++
		}
	}
	if len(tr.Requests) == 0 {
		return 0
	}
	return float64(misses) / float64(len(tr.Requests))
}
