package belady

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

func mkTrace(keys ...uint64) *trace.Trace {
	t := &trace.Trace{Name: "b"}
	for i, k := range keys {
		t.Requests = append(t.Requests, cache.Request{Time: int64(i), Key: k, Size: 100})
	}
	return t
}

func TestBeladyOptimalOnTextbookExample(t *testing.T) {
	// Classic page-replacement example, 3 frames:
	// 7 0 1 2 0 3 0 4 2 3 0 3 2 — OPT gives 7 faults (incl. cold).
	tr := mkTrace(7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2)
	c := New(tr, 300)
	misses := 0
	for _, r := range tr.Requests {
		if !c.Access(r) {
			misses++
		}
	}
	// Classic OPT paging (which must place every page) gives 7 faults on
	// this sequence. Our MIN variant may bypass objects whose next use is
	// further than every cached object's, which saves one more fault
	// (the request for 4 at index 7 is served through without displacing
	// 0/2/3). It must never be worse than OPT's 7.
	if misses != 6 {
		t.Fatalf("misses = %d, want 6 (OPT-with-bypass)", misses)
	}
}

func TestBeladyNeverCachesDeadObjects(t *testing.T) {
	tr := mkTrace(1, 2, 3, 1, 2, 3)
	c := New(tr, 300)
	for i, r := range tr.Requests[:3] {
		c.Access(r)
		_ = i
	}
	// All three have future uses: cached.
	if c.Used() != 300 {
		t.Fatalf("Used=%d, want 300", c.Used())
	}
	tr2 := mkTrace(9, 1, 1)
	c2 := New(tr2, 300)
	c2.Access(tr2.Requests[0])
	if c2.Used() != 0 {
		t.Fatal("object with no future use was cached")
	}
}

func TestBeladyBeatsLRUAndHeuristics(t *testing.T) {
	tr, err := gen.Generate(gen.Config{
		Name: "b", Seed: 3,
		Requests:    50_000,
		CatalogSize: 800,
		ZipfAlpha:   0.8,
		OneHitFrac:  0.3,
		EchoProb:    0.2, EchoDelay: 60, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := int64(200_000)
	lru := sim.Run(tr, cache.NewLRU(capBytes), sim.Options{})
	bel := MissRatio(tr, capBytes)
	if bel >= lru.MissRatio() {
		t.Fatalf("Belady %.4f >= LRU %.4f", bel, lru.MissRatio())
	}
	if bel <= 0 {
		t.Fatal("Belady miss ratio should be positive (cold misses)")
	}
}

func TestBeladyCapacityInvariant(t *testing.T) {
	tr, _ := gen.Generate(gen.Config{
		Name: "b2", Seed: 5,
		Requests:    20_000,
		CatalogSize: 500,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.2,
		EchoProb:    0.1, EchoDelay: 50, EchoTailFrac: 0.5,
		EpochRequests: 10_000, DriftFrac: 0.1,
		SizeMean: 2000, SizeSigma: 1.0, MinSize: 100, MaxSize: 50_000,
		Duration: 3600,
	})
	capBytes := int64(150_000)
	c := New(tr, capBytes)
	for i, r := range tr.Requests {
		c.Access(r)
		if c.Used() > capBytes {
			t.Fatalf("capacity exceeded at %d", i)
		}
	}
	if c.BoundaryEstimate() <= 0 {
		t.Fatal("boundary estimate not positive")
	}
}

func TestBeladyHitUpdatesNextUse(t *testing.T) {
	// 1 appears at 0, 2, 4; cache of one object must hit 1 at 2 and at 4
	// if nothing displaces it.
	tr := mkTrace(1, 9, 1, 9, 1)
	c := New(tr, 100) // fits exactly one object
	hits := 0
	for _, r := range tr.Requests {
		if c.Access(r) {
			hits++
		}
	}
	// 9 is never cached (later 9 has no further use; first 9's reuse at 3
	// is further than 1's at 2). Hits: 1 at index 2 and 4.
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}
