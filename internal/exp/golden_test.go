//go:build !race

package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The ML-heavy figures (fig4 classifier accuracy, fig10/fig12 learned
// policies) are pinned byte-for-byte against committed goldens at quick
// benchmark scale. The goldens were captured before the flat-matrix
// kernel rewrite, so they prove the rewrite is output-preserving: any
// change to bin thresholds, split tie-breaking, training-sample order or
// model arithmetic shows up as a table diff here. Regenerate with
// `go test ./internal/exp -run TestGolden -update-golden` — but only
// when a change is *supposed* to alter figure output.
//
// The build tag keeps the replays out of `go test -race` runs: the
// goldens run the serial path (Workers: 1), so the race detector would
// triple the cost without exercising any concurrency.

var updateGolden = flag.Bool("update-golden", false, "rewrite the figure golden files")

// goldenCfg is the quick benchmark-scale configuration the goldens pin.
func goldenCfg(out *bytes.Buffer) Config {
	return Config{Scale: 0.001, Seeds: []int64{1}, Quick: true, Workers: 1, Out: out}
}

func runGolden(t *testing.T, name string) {
	t.Helper()
	r, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	var buf bytes.Buffer
	if err := r.Run(goldenCfg(&buf)); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	path := filepath.Join("testdata", name+"_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s output diverges from golden %s:\n%s", name, path, diffLines(want, buf.Bytes()))
	}
}

// diffLines renders the first divergent lines of got vs want.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	shown := 0
	for i := 0; i < n && shown < 8; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			fmt.Fprintf(&out, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
			shown++
		}
	}
	return out.String()
}

func TestGoldenFig4(t *testing.T)  { runGolden(t, "fig4") }
func TestGoldenFig10(t *testing.T) { runGolden(t, "fig10") }
func TestGoldenFig12(t *testing.T) { runGolden(t, "fig12") }
