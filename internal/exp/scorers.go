package exp

import (
	"fmt"

	"github.com/scip-cache/scip/internal/admission/scorer"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
)

func init() {
	register(Runner{Name: "scorers", Title: "Scorer pipeline: monolith equivalence and mixed-signal admission", Run: runScorers})
}

// scorerSpecs are the pipeline mixes the experiment compares against the
// monolithic SCIP cache. The MIX(zro) column must equal the SCIP column
// on every profile — a zro-only placement pipeline reproduces the
// monolith's decision stream bit-for-bit (TestScorerGoldenEquivalence
// pins the same invariant byte-for-byte against the figure goldens).
var scorerSpecs = []struct {
	name string
	spec string
}{
	{"MIX(zro)", "scorer:zro=1"},
	{"MIX(z+s+f)", "scorer:zro=0.6,size=0.2,freq=0.2"},
	{"MIX(all)", "scorer:zro=0.4,size=0.15,freq=0.15,ghost=0.15,reuse=0.15"},
	{"FILT(s+f)", "scorer:size=0.5,freq=0.5,mode=filter"},
}

// runScorers measures the composable admission pipeline (DESIGN.md §11):
// the monolith-equivalent mix, two weighted placement mixes, and a
// filter-mode mix, across all trace profiles.
func runScorers(cfg Config) error {
	builderSet := []policyBuilder{
		{"SCIP", func(c, s int64, sc float64) cache.Policy {
			return buildSCIPCache(c, s, scaledInterval(sc))
		}},
	}
	for _, sp := range scorerSpecs {
		full := fmt.Sprintf("%s,name=%s", sp.spec, sp.name)
		if _, _, _, err := scorer.ParseSpec(full); err != nil {
			return err
		}
		builderSet = append(builderSet, policyBuilder{sp.name, func(c, s int64, sc float64) cache.Policy {
			p, err := scorer.FromSpec(fmt.Sprintf("%s,interval=%d", full, scaledInterval(sc)), c, s)
			if err != nil {
				// Unreachable: the spec was validated above and interval
				// is numeric.
				panic(err)
			}
			return p
		}})
	}
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		for _, b := range builderSet {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Scorer pipeline — composable admission mixes, 64 GB-eq (scale %.4g)", cfg.Scale)
	i := 0
	for _, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, "%-8s", p)
		for _, b := range builderSet {
			fmt.Fprintf(cfg.Out, " %s=%.4f", b.name, cells[i])
			i++
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}
