package exp

import (
	"fmt"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/tdc"
	"github.com/scip-cache/scip/internal/trace"
)

func init() {
	register(Runner{Name: "fig6", Title: "Figure 6: TDC deployment — BTO traffic, BTO ratio, latency", Run: runFig6})
}

// TDCTrace generates the deployment-timeline workload: a TDC-flavoured
// image trace spanning `days` days. One-hit-wonder share and catalog
// drift are calibrated so the pre-deployment operating point sits in the
// paper's regime (BTO ratio around ten percent, a couple hundred ms mean
// latency) with genuine steady-state ZRO pressure for SCIP to relieve.
func TDCTrace(scale float64, seed int64, days int64) (*trace.Trace, error) {
	reqs := int(20e6 * scale * float64(days))
	if reqs < 50_000 {
		reqs = 50_000
	}
	cfg := gen.Config{
		Name: "TDC", Seed: seed,
		Requests:    reqs,
		CatalogSize: maxInt(reqs/80, 1_000),
		ZipfAlpha:   0.9,
		OneHitFrac:  0.08,
		EchoProb:    0.3, EchoDelay: 300, EchoTailFrac: 0.6,
		EpochRequests: reqs / int(2*days), DriftFrac: 0.06,
		SizeMean: 44 * 1024, SizeSigma: 1.4, OneHitSizeBoost: 2.5,
		MinSize: 128, MaxSize: 16 << 20,
		Duration: days * 86_400,
	}
	return gen.Generate(cfg)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TDCConfig sizes the hierarchy for the generated workload so the
// pre-deployment operating point matches the paper's regime.
func TDCConfig(tr *trace.Trace, deployAt int64, seed int64) tdc.Config {
	wss := tr.ComputeStats().WorkingSetSize
	cfg := tdc.DefaultConfig()
	cfg.OCCapacity = int64(0.02 * float64(wss))
	cfg.DCCapacity = int64(0.10 * float64(wss))
	cfg.DeployAt = deployAt
	cfg.BucketSeconds = 6 * 3600
	cfg.Seed = seed
	return cfg
}

// runFig6 reproduces Figure 6: the 14-day TDC timeline with SCIP deployed
// at day 7, reporting the BTO bandwidth/ratio and latency series and the
// before/after deltas of §5.2.
func runFig6(cfg Config) error {
	days := int64(14)
	if cfg.Quick {
		days = 4
	}
	// The TDC timeline is one stateful replay — inherently serial — so it
	// is a single cell on the experiment pool: it cannot fan out, but it
	// shares the pool's job accounting with the grid figures.
	type tdcCell struct {
		sysCfg tdc.Config
		res    *tdc.Result
	}
	cells, err := runJobs(cfg, []func() (tdcCell, error){func() (tdcCell, error) {
		tr, err := TDCTrace(cfg.Scale, cfg.Seeds[0], days)
		if err != nil {
			return tdcCell{}, err
		}
		sysCfg := TDCConfig(tr, days/2*86_400, cfg.Seeds[0])
		return tdcCell{sysCfg: sysCfg, res: tdc.Run(tr, sysCfg)}, nil
	}})
	if err != nil {
		return err
	}
	sysCfg, res := cells[0].sysCfg, cells[0].res
	// Normalise the traffic axis to the paper's pre-deployment operating
	// point (15.25 Gbps): the simulated byte volume is scale-dependent,
	// while the relative drop is the reproduced quantity.
	const paperPreGbps = 15.25
	preGbps := 0.0
	if res.Deployed > 0 {
		for _, b := range res.Buckets[:res.Deployed] {
			preGbps += b.BTOGbps(sysCfg.BucketSeconds)
		}
		preGbps /= float64(res.Deployed)
	}
	norm := func(g float64) float64 {
		if preGbps == 0 {
			return 0
		}
		return g / preGbps * paperPreGbps
	}
	header(cfg.Out, "# Figure 6 — TDC deployment timeline (scale %.4g, %d days, deploy at day %d)", cfg.Scale, days, days/2)
	header(cfg.Out, "# BTO(Gbps) normalised so the pre-deployment mean equals the paper's 15.25 Gbps")
	header(cfg.Out, "%-10s %10s %12s %12s %10s", "bucket(h)", "requests", "BTO(Gbps)", "BTO-ratio", "lat(ms)")
	for i, b := range res.Buckets {
		marker := ""
		if i == res.Deployed {
			marker = "  <-- SCIP deployed"
		}
		fmt.Fprintf(cfg.Out, "%-10d %10d %12.3f %12.4f %10.1f%s\n",
			b.StartTime/3600, b.Requests, norm(b.BTOGbps(sysCfg.BucketSeconds)), b.BTORatio(), b.MeanLatencyMs(), marker)
	}
	fmt.Fprintln(cfg.Out, res.Summary())
	// Steady-state deltas: exclude the cold-start ramp (the first quarter
	// of the pre-deployment window) so the comparison is fill-state fair,
	// like the paper's monitoring dashboards.
	if res.Deployed > 1 && res.Deployed < len(res.Buckets) {
		agg := func(bs []tdc.Bucket) (ratio, lat, bytesPerBucket float64) {
			var r, l, by, n float64
			for _, b := range bs {
				r += b.BTORatio()
				l += b.MeanLatencyMs()
				by += float64(b.BTOBytes)
				n++
			}
			return r / n, l / n, by / n
		}
		preR, preL, preB := agg(res.Buckets[res.Deployed/4 : res.Deployed])
		postR, postL, postB := agg(res.Buckets[res.Deployed:])
		fmt.Fprintf(cfg.Out,
			"steady-state deltas: BTO-ratio %.2f%% -> %.2f%% (paper 8.87%% -> 6.59%%) | BTO-traffic %.1f%% lower (paper 25.7%%) | latency %.1f -> %.1f ms, %.1f%% lower (paper 26.1%%)\n",
			100*preR, 100*postR, 100*(1-postB/preB), preL, postL, 100*(1-postL/preL))
	}
	return nil
}
