package exp

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/shard"
)

// TestShardedReplayWorkerInvariant pins the fix for the Extension C miss
// ratio: runSharded used to split the trace into contiguous index ranges,
// one per worker, so each shard received its requests interleaved across
// workers in scheduler order and the hit count varied run to run. The
// replay now partitions by shard — worker w owns the shards with index
// ≡ w mod workers — which keeps every shard's request subsequence in
// trace order, so the hit count must be identical for every worker count
// (and equal to a serial replay).
func TestShardedReplayWorkerInvariant(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.0008, 3))
	if err != nil {
		t.Fatal(err)
	}
	build := func() *shard.Cache {
		c, err := shard.New("scip", 1<<24, 8, func(cb int64, i int) cache.Policy {
			return core.NewCache(cb, core.WithSeed(int64(i)+1), core.WithInterval(2000))
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	var want int64
	first := true
	for _, workers := range []int{1, 2, 3, 4, 8} {
		// Batch size must be invisible too: batching only amortises
		// synchronisation, it never reorders a shard's subsequence.
		for _, batch := range []int{1, 7, 64} {
			hits := replayShardPartitioned(tr.Requests, build(), workers, batch)
			if first {
				want, first = hits, false
				continue
			}
			if hits != want {
				t.Fatalf("workers=%d batch=%d: hits=%d, want %d (serial replay)", workers, batch, hits, want)
			}
		}
	}
}
