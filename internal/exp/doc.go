// Package exp is the experiment harness: one runner per table/figure of
// the paper's evaluation, each regenerating the corresponding rows or
// series on the synthetic workload profiles. The cmd/scip-bench binary
// dispatches into this package; the repository-level benchmarks reuse the
// same runners at reduced scale.
package exp
