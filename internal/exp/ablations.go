package exp

import (
	"fmt"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
)

func init() {
	register(Runner{Name: "ablation", Title: "Ablations: SCIP design choices (DESIGN.md §6)", Run: runAblations})
}

// ablationVariant is one SCIP configuration under test.
type ablationVariant struct {
	name string
	opts func(capBytes int64, seed int64, scale float64) []core.Option
}

func baseOpts(seed int64, scale float64) []core.Option {
	return []core.Option{core.WithSeed(seed), core.WithInterval(scaledInterval(scale))}
}

// runAblations measures the miss-ratio impact of each resolved design
// choice on all three profiles.
func runAblations(cfg Config) error {
	variants := []ablationVariant{
		{"default", func(c, s int64, sc float64) []core.Option { return baseOpts(s, sc) }},
		{"history=1/4", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithHistoryFraction(0.25))
		}},
		{"history=1x", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithHistoryFraction(1.0))
		}},
		{"interval=1/4", func(c, s int64, sc float64) []core.Option {
			return []core.Option{core.WithSeed(s), core.WithInterval(scaledInterval(sc) / 4)}
		}},
		{"unified-ω", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithUnifiedModel())
		}},
		{"no-duel", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithDueling(0))
		}},
		{"no-evict-sig", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithEvictGain(0))
		}},
		{"no-hit-sig", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithHitGain(0))
		}},
		{"force-none", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithForceMode(core.ForceNone))
		}},
		{"force-both", func(c, s int64, sc float64) []core.Option {
			return append(baseOpts(s, sc), core.WithForceMode(core.ForceBoth))
		}},
	}
	if cfg.Quick {
		variants = variants[:5]
	}
	// Every (variant, profile) cell — plus the LRU reference row — is an
	// independent replay; enumerate them all as jobs and format the
	// ordered results serially.
	var jobs []func() (float64, error)
	for _, v := range variants {
		for _, p := range gen.Profiles {
			capBytes := p.CacheBytes(gb(64), cfg.Scale)
			b := policyBuilder{v.name, func(c, s int64, sc float64) cache.Policy {
				return core.NewCache(c, v.opts(c, s, sc)...)
			}}
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		jobs = append(jobs, missCell(cfg, p, capBytes,
			policyBuilder{"LRU", func(c, s int64, _ float64) cache.Policy { return cache.NewLRU(c) }}))
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Ablations — SCIP miss ratio by design variant (scale %.4g, 64 GB-eq)", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-14s", "variant")
	for _, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, " %10s", p)
	}
	fmt.Fprintln(cfg.Out)
	i := 0
	for _, v := range variants {
		fmt.Fprintf(cfg.Out, "%-14s", v.name)
		for range gen.Profiles {
			fmt.Fprintf(cfg.Out, " %10.4f", cells[i])
			i++
		}
		fmt.Fprintln(cfg.Out)
	}
	// LRU reference row.
	fmt.Fprintf(cfg.Out, "%-14s", "LRU(ref)")
	for range gen.Profiles {
		fmt.Fprintf(cfg.Out, " %10.4f", cells[i])
		i++
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// RunSCIPOnce is a helper used by benchmarks: one SCIP replay on a
// profile at the given cache size.
func RunSCIPOnce(p gen.Profile, scale float64, seed int64, paperCacheGB int64) (sim.Result, error) {
	tr, err := getTrace(p, scale, seed)
	if err != nil {
		return sim.Result{}, err
	}
	capBytes := p.CacheBytes(gb(paperCacheGB), scale)
	c := core.NewCache(capBytes, core.WithSeed(seed), core.WithInterval(scaledInterval(scale)))
	return sim.Run(tr, c, sim.Options{WarmupFrac: 0.2}), nil
}
