package exp

import (
	"fmt"
	"io"
	"sort"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/runner"
	"github.com/scip-cache/scip/internal/trace"
)

// Config controls experiment scale and output.
type Config struct {
	// Scale scales the paper's trace sizes (1 = full size; the harness
	// default is 1/100, the benchmarks run 1/500).
	Scale float64
	// Seeds are the generation seeds averaged over where noise matters.
	Seeds []int64
	// Out receives the experiment's table output.
	Out io.Writer
	// Quick trims parameter grids for smoke runs.
	Quick bool
	// Workers bounds the experiment engine's concurrency: 0 (the
	// default) sizes the pool by GOMAXPROCS, 1 forces the serial path,
	// and any larger value caps the pool. Table output is byte-identical
	// for every value — only wall-clock time changes.
	Workers int
}

// DefaultConfig returns the full-run configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{Scale: 0.01, Seeds: []int64{1, 2, 3}, Out: out}
}

// Runner is one experiment.
type Runner struct {
	// Name is the dispatch key (e.g. "fig8").
	Name string
	// Title describes the paper artefact reproduced.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) error
}

var registry []Runner

func register(r Runner) { registry = append(registry, r) }

// Runners returns all registered experiments sorted by name.
func Runners() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// traceCache memoises generated traces within one process. It is a
// singleflight memo so that two workers wanting the same (profile, scale,
// seed) trace generate it exactly once and share the result, and so that
// concurrent experiment cells never race on the map.
var traceCache runner.Memo[string, *trace.Trace]

// getTrace returns the memoised synthetic trace for a profile. Safe for
// concurrent use.
func getTrace(p gen.Profile, scale float64, seed int64) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%g/%d", p, scale, seed)
	return traceCache.Do(key, func() (*trace.Trace, error) {
		return gen.Generate(p.Config(scale, seed))
	})
}

// ClearTraceCache drops memoised traces (benchmarks call this between
// scales to bound memory).
func ClearTraceCache() { traceCache.Clear() }

// runJobs evaluates independent experiment cells on the config's worker
// pool and returns their results in submission order, which is what keeps
// parallel table output byte-identical to the serial run: jobs only
// compute, the caller formats from the ordered slice.
func runJobs[T any](cfg Config, jobs []func() (T, error)) ([]T, error) {
	return runner.Map(cfg.Workers, len(jobs), func(i int) (T, error) { return jobs[i]() })
}

// paperGB lists the cache sizes of Figures 8's panels.
var paperGB = []int64{64, 128, 256}

// gb converts gigabytes to bytes.
func gb(n int64) int64 { return n << 30 }

// header prints a table header line.
func header(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

// mean averages a float slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
