package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func quickCfg(out *bytes.Buffer) Config {
	return Config{Scale: 0.0008, Seeds: []int64{1}, Out: out, Quick: true}
}

func TestRunnersRegistered(t *testing.T) {
	want := []string{"ablation", "ext", "fig1", "fig10", "fig11", "fig12", "fig3", "fig4",
		"fig6", "fig7", "fig8", "fig9", "scorers", "table1"}
	got := Runners()
	if len(got) != len(want) {
		t.Fatalf("%d runners registered, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Name != want[i] {
			t.Fatalf("runner %d = %q, want %q", i, r.Name, want[i])
		}
		if r.Title == "" || r.Run == nil {
			t.Fatalf("runner %q incomplete", r.Name)
		}
	}
	if _, ok := Lookup("fig8"); !ok {
		t.Fatal("Lookup(fig8) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

// TestEveryExperimentRunsQuick smoke-runs every registered experiment at a
// tiny scale and checks it produces table output without error.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	for _, r := range Runners() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			var out bytes.Buffer
			if err := r.Run(quickCfg(&out)); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if out.Len() == 0 {
				t.Fatalf("%s produced no output", r.Name)
			}
			if !strings.Contains(out.String(), "CDN") && r.Name != "fig6" {
				t.Fatalf("%s output lacks workload rows:\n%s", r.Name, out.String())
			}
		})
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var out bytes.Buffer
	cfg := Config{Scale: 0.002, Seeds: []int64{1, 2}, Out: &out}
	r, _ := Lookup("fig7")
	if err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Every row must show SCIP beating LRU (the paper's headline).
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "CDN") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			t.Fatalf("malformed row %q", line)
		}
		var lru, scipMR float64
		if _, err := fmtSscan(fields[1], &lru); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(fields[3], &scipMR); err != nil {
			t.Fatal(err)
		}
		if scipMR > lru+0.02 {
			t.Errorf("%s: SCIP %.4f materially worse than LRU %.4f", fields[0], scipMR, lru)
		}
	}
}

func TestScaledInterval(t *testing.T) {
	if scaledInterval(1) != 50_000*50 {
		t.Fatalf("scale 1 interval = %d", scaledInterval(1))
	}
	if scaledInterval(0.0001) != 1000 {
		t.Fatal("interval floor not applied")
	}
}

func TestTraceCacheMemoises(t *testing.T) {
	ClearTraceCache()
	a, err := getTrace("CDN-T", 0.0005, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := getTrace("CDN-T", 0.0005, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace not memoised")
	}
	ClearTraceCache()
	c, err := getTrace("CDN-T", 0.0005, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("ClearTraceCache did not clear")
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean broken")
	}
}

// fmtSscan wraps fmt.Sscan for float parsing in tests.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
