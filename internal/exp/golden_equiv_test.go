//go:build !race

package exp

import (
	"testing"

	"github.com/scip-cache/scip/internal/admission/scorer"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
)

// TestScorerGoldenEquivalence swaps every SCIP construction in the
// figure tables for a zro-only scorer pipeline and replays the two
// goldened figures that exercise SCIP (fig10 standalone, fig12 embedded
// in LRU-K and LRB). Byte-identical output against the committed
// goldens proves the decomposed pipeline reproduces the monolith's
// decision stream exactly — the tentpole acceptance criterion. The
// monolith builders are restored afterwards so the plain golden tests
// keep pinning the original construction path.
func TestScorerGoldenEquivalence(t *testing.T) {
	origCache, origEnh := buildSCIPCache, buildSCIPEnhancer
	defer func() { buildSCIPCache, buildSCIPEnhancer = origCache, origEnh }()

	buildSCIPCache = func(capBytes, seed int64, interval int) cache.Policy {
		c, err := scorer.NewCache("SCIP", capBytes, scorer.Config{
			ZRO: 1, Seed: seed, Interval: interval, Tune: true,
		})
		if err != nil {
			t.Fatalf("scorer cache: %v", err)
		}
		return c
	}
	buildSCIPEnhancer = func(capBytes, seed int64, interval int) cache.InsertionPolicy {
		p, err := scorer.NewPipeline(capBytes, scorer.Config{
			ZRO: 1, Seed: seed, Interval: interval, Tune: true, Name: "SCIP",
			ZROOpts: []core.Option{core.ForEnhancement()},
		})
		if err != nil {
			t.Fatalf("scorer pipeline: %v", err)
		}
		return p
	}

	runGolden(t, "fig10")
	runGolden(t, "fig12")
}
