package exp

import (
	"bytes"
	"testing"
)

// TestParallelMatchesSerial asserts the engine's central guarantee: the
// parallel experiment runner produces byte-identical table output to the
// serial path. Even on a single-CPU machine Workers > 1 exercises the
// real pool (goroutines, the singleflight trace memo, out-of-order cell
// completion), so this catches any ordering dependence in the figures.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: replays figures twice")
	}
	for _, name := range []string{"fig7", "fig8", "fig1", "ablation"} {
		t.Run(name, func(t *testing.T) {
			r, ok := Lookup(name)
			if !ok {
				t.Fatalf("unknown experiment %q", name)
			}
			run := func(workers int) string {
				// Fresh memo per run so the parallel path regenerates its
				// own traces through the singleflight.
				ClearTraceCache()
				var out bytes.Buffer
				cfg := Config{Scale: 0.0008, Seeds: []int64{1}, Out: &out, Quick: true, Workers: workers}
				if err := r.Run(cfg); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return out.String()
			}
			serial := run(1)
			parallel := run(8)
			if serial != parallel {
				t.Fatalf("parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
			if len(serial) == 0 {
				t.Fatal("no output produced")
			}
		})
	}
}
