package exp

import (
	"fmt"

	"github.com/scip-cache/scip/internal/belady"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/lrb"
	"github.com/scip-cache/scip/internal/policies"
	"github.com/scip-cache/scip/internal/replacement"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

func init() {
	register(Runner{Name: "fig7", Title: "Figure 7: SCIP vs SCI miss ratios", Run: runFig7})
	register(Runner{Name: "fig8", Title: "Figure 8: SCIP vs insertion policies (64/128/256 GB)", Run: runFig8})
	register(Runner{Name: "fig9", Title: "Figure 9: insertion-policy resource usage on CDN-T", Run: runFig9})
	register(Runner{Name: "fig10", Title: "Figure 10: SCIP vs replacement algorithms", Run: runFig10})
	register(Runner{Name: "fig11", Title: "Figure 11: replacement-algorithm resource usage on CDN-T", Run: runFig11})
	register(Runner{Name: "fig12", Title: "Figure 12: enhancing LRU-K and LRB with SCIP / ASC-IP", Run: runFig12})
}

// scaledInterval shrinks SCIP's learning interval with the trace scale so
// the number of learning-rate updates per trace matches the full-size
// configuration.
func scaledInterval(scale float64) int {
	iv := int(float64(core.DefaultInterval) * scale * 50)
	if iv < 1000 {
		iv = 1000
	}
	return iv
}

// policyBuilder creates a fresh policy for a given capacity and seed.
type policyBuilder struct {
	name  string
	build func(capBytes, seed int64, scale float64) cache.Policy
}

// buildSCIPCache constructs the monolithic SCIP cache every figure table
// uses. It is a swappable hook: the scorer golden-equivalence test
// (golden_equiv_test.go) replaces it with a zro-only scorer pipeline and
// re-runs the goldened figures to prove the pipeline reproduces the
// monolith byte-identically.
var buildSCIPCache = func(capBytes, seed int64, interval int) cache.Policy {
	return core.NewCache(capBytes, core.WithSeed(seed), core.WithInterval(interval))
}

// buildSCIPEnhancer constructs the SCIP insertion policy embedded in
// LRU-K and LRB for Figure 12; swapped by the same equivalence test.
var buildSCIPEnhancer = func(capBytes, seed int64, interval int) cache.InsertionPolicy {
	return core.New(capBytes, core.WithSeed(seed), core.WithInterval(interval), core.ForEnhancement())
}

// insertionBaselines are Figure 8's competitors (all over LRU victim
// selection).
func insertionBaselines() []policyBuilder {
	return []policyBuilder{
		{"SCIP", func(c, s int64, sc float64) cache.Policy {
			return buildSCIPCache(c, s, scaledInterval(sc))
		}},
		{"LIP", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("LIP", c, policies.LIP{}) }},
		{"DIP", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("DIP", c, policies.NewDIP(c, s)) }},
		{"PIPP", func(c, s int64, _ float64) cache.Policy { return policies.NewPIPP(c, s) }},
		{"DTA", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("DTA", c, policies.NewDTA()) }},
		{"SHiP", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("SHiP", c, policies.NewSHiP()) }},
		{"DGIPPR", func(c, s int64, _ float64) cache.Policy { return policies.NewDGIPPR(c, s) }},
		{"DAAIP", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("DAAIP", c, policies.NewDAAIP(s)) }},
		{"ASC-IP", func(c, s int64, _ float64) cache.Policy { return policies.NewCache("ASC-IP", c, policies.NewASCIP(c)) }},
	}
}

// replacementBaselines are Figure 10's competitors.
func replacementBaselines() []policyBuilder {
	return []policyBuilder{
		{"SCIP", func(c, s int64, sc float64) cache.Policy {
			return buildSCIPCache(c, s, scaledInterval(sc))
		}},
		{"LRU", func(c, s int64, _ float64) cache.Policy { return cache.NewLRU(c) }},
		{"LRU-K", func(c, s int64, _ float64) cache.Policy { return replacement.NewLRUK(c, s) }},
		{"S4LRU", func(c, s int64, _ float64) cache.Policy { return replacement.NewS4LRU(c) }},
		{"SS-LRU", func(c, s int64, _ float64) cache.Policy { return replacement.NewSSLRU(c) }},
		{"GDSF", func(c, s int64, _ float64) cache.Policy { return replacement.NewGDSF(c) }},
		{"LHD", func(c, s int64, _ float64) cache.Policy { return replacement.NewLHD(c, s) }},
		{"CACHEUS", func(c, s int64, _ float64) cache.Policy { return replacement.NewCACHEUS(c, s) }},
		{"LRB", func(c, s int64, _ float64) cache.Policy { return lrb.New(c, lrb.WithSeed(s)) }},
		{"GL-Cache", func(c, s int64, _ float64) cache.Policy { return replacement.NewGLCache(c) }},
	}
}

// runMissRatio replays each seed's trace and averages the miss ratio.
func runMissRatio(cfg Config, p gen.Profile, capBytes int64, b policyBuilder) (float64, error) {
	var mrs []float64
	for _, seed := range cfg.Seeds {
		tr, err := getTrace(p, cfg.Scale, seed)
		if err != nil {
			return 0, err
		}
		res := sim.Run(tr, b.build(capBytes, seed, cfg.Scale), sim.Options{WarmupFrac: 0.2})
		mrs = append(mrs, res.MissRatio())
	}
	return mean(mrs), nil
}

// beladyMR computes Belady's miss ratio over the post-warmup region.
func beladyMR(tr *trace.Trace, capBytes int64) float64 {
	c := belady.New(tr, capBytes)
	warm := int(0.2 * float64(len(tr.Requests)))
	hits, total := 0, 0
	for i, r := range tr.Requests {
		h := c.Access(r)
		if i >= warm {
			total++
			if h {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(hits)/float64(total)
}

// missCell returns a job computing one (profile, builder) miss-ratio cell.
func missCell(cfg Config, p gen.Profile, capBytes int64, b policyBuilder) func() (float64, error) {
	return func() (float64, error) { return runMissRatio(cfg, p, capBytes, b) }
}

// beladyCell returns a job computing Belady's miss ratio for a profile.
func beladyCell(cfg Config, p gen.Profile, capBytes int64) func() (float64, error) {
	return func() (float64, error) {
		tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
		if err != nil {
			return 0, err
		}
		return beladyMR(tr, capBytes), nil
	}
}

// runFig7 compares SCIP and SCI on all profiles.
func runFig7(cfg Config) error {
	builders := []policyBuilder{
		{"LRU", func(c, s int64, _ float64) cache.Policy { return cache.NewLRU(c) }},
		{"SCI", func(c, s int64, sc float64) cache.Policy {
			return core.NewSCICache(c, core.WithSeed(s), core.WithInterval(scaledInterval(sc)))
		}},
		insertionBaselines()[0],
	}
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		for _, b := range builders {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Figure 7 — SCIP vs SCI (scale %.4g, %d seeds, 64 GB-equivalent)", cfg.Scale, len(cfg.Seeds))
	header(cfg.Out, "%-8s %10s %10s %10s %10s", "trace", "LRU", "SCI", "SCIP", "SCIP-SCI")
	for i, p := range gen.Profiles {
		lruMR, sciMR, scipMR := cells[3*i], cells[3*i+1], cells[3*i+2]
		fmt.Fprintf(cfg.Out, "%-8s %10.4f %10.4f %10.4f %+10.4f\n", p, lruMR, sciMR, scipMR, scipMR-sciMR)
	}
	return nil
}

// runFig8 compares SCIP with the eight insertion baselines and Belady at
// the three paper cache sizes. Every (size, profile, policy) cell is an
// independent job; the ordered results are formatted serially.
func runFig8(cfg Config) error {
	sizes := paperGB
	if cfg.Quick {
		sizes = sizes[:1]
	}
	builders := insertionBaselines()
	var jobs []func() (float64, error)
	for _, sz := range sizes {
		for _, p := range gen.Profiles {
			capBytes := p.CacheBytes(gb(sz), cfg.Scale)
			jobs = append(jobs, beladyCell(cfg, p, capBytes))
			for _, b := range builders {
				jobs = append(jobs, missCell(cfg, p, capBytes, b))
			}
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	i := 0
	for _, sz := range sizes {
		header(cfg.Out, "# Figure 8 — insertion policies, %d GB-equivalent (scale %.4g)", sz, cfg.Scale)
		header(cfg.Out, "%-8s %10s ...", "trace", "missRatio")
		for _, p := range gen.Profiles {
			fmt.Fprintf(cfg.Out, "%-8s Belady=%.4f", p, cells[i])
			i++
			for _, b := range builders {
				fmt.Fprintf(cfg.Out, " %s=%.4f", b.name, cells[i])
				i++
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}

// runResources measures peak memory, throughput and a CPU proxy for each
// policy on CDN-T (Figures 9 and 11 substitute in-process metering for
// the paper's testbed monitors; see DESIGN.md §3). The metered replays
// deliberately stay serial regardless of Config.Workers: wall-clock and
// peak-heap samples taken while sibling cells run would measure the pool,
// not the policy.
func runResources(cfg Config, builderSet []policyBuilder, figure string) error {
	p := gen.CDNT
	capBytes := p.CacheBytes(gb(64), cfg.Scale)
	tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
	if err != nil {
		return err
	}
	header(cfg.Out, "# %s — resource usage on CDN-T, 64 GB-equivalent (scale %.4g)", figure, cfg.Scale)
	header(cfg.Out, "%-10s %10s %12s %12s %14s", "policy", "missRatio", "cpuNsPerReq", "peakHeapMiB", "TPS(kreq/s)")
	rows := append([]policyBuilder(nil), builderSet...)
	rows = append(rows, policyBuilder{"Belady", nil})
	for _, b := range rows {
		if b.build == nil {
			// Belady's resource row: metered replay of the oracle.
			res := sim.Run(tr, belady.New(tr, capBytes), sim.Options{WarmupFrac: 0.2, Meter: true})
			fmt.Fprintf(cfg.Out, "%-10s %10.4f %12.1f %12.1f %14.1f\n",
				"Belady", res.MissRatio(), res.NsPerRequest, res.PeakHeapMiB, res.TPS/1000)
			continue
		}
		res := sim.Run(tr, b.build(capBytes, cfg.Seeds[0], cfg.Scale), sim.Options{WarmupFrac: 0.2, Meter: true})
		fmt.Fprintf(cfg.Out, "%-10s %10.4f %12.1f %12.1f %14.1f\n",
			b.name, res.MissRatio(), res.NsPerRequest, res.PeakHeapMiB, res.TPS/1000)
	}
	return nil
}

func runFig9(cfg Config) error  { return runResources(cfg, insertionBaselines(), "Figure 9") }
func runFig11(cfg Config) error { return runResources(cfg, replacementBaselines(), "Figure 11") }

// runFig10 compares SCIP with the replacement algorithms.
func runFig10(cfg Config) error {
	builders := replacementBaselines()
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		jobs = append(jobs, beladyCell(cfg, p, capBytes))
		for _, b := range builders {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Figure 10 — replacement algorithms, 64 GB-equivalent (scale %.4g)", cfg.Scale)
	i := 0
	for _, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, "%-8s Belady=%.4f", p, cells[i])
		i++
		for _, b := range builders {
			fmt.Fprintf(cfg.Out, " %s=%.4f", b.name, cells[i])
			i++
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// runFig12 measures the enhancement of LRU-K and LRB by SCIP and ASC-IP.
func runFig12(cfg Config) error {
	header(cfg.Out, "# Figure 12 — enhancing replacement algorithms (scale %.4g, %d seeds)", cfg.Scale, len(cfg.Seeds))
	header(cfg.Out, "%-8s %10s %12s %12s %10s %12s %12s", "trace", "LRU-K", "LRU-K-SCIP", "LRU-K-ASCIP", "LRB", "LRB-SCIP", "LRB-ASCIP")
	variants := []policyBuilder{
		{"LRU-K", func(c, s int64, _ float64) cache.Policy { return replacement.NewLRUK(c, s) }},
		{"LRU-K-SCIP", func(c, s int64, sc float64) cache.Policy {
			return replacement.NewLRUKWithInsertion(c, s, buildSCIPEnhancer(c, s, scaledInterval(sc)))
		}},
		{"LRU-K-ASCIP", func(c, s int64, _ float64) cache.Policy {
			return replacement.NewLRUKWithInsertion(c, s, policies.NewASCIP(c))
		}},
		{"LRB", func(c, s int64, _ float64) cache.Policy { return lrb.New(c, lrb.WithSeed(s)) }},
		{"LRB-SCIP", func(c, s int64, sc float64) cache.Policy {
			return lrb.New(c, lrb.WithSeed(s), lrb.WithInsertion(buildSCIPEnhancer(c, s, scaledInterval(sc))))
		}},
		{"LRB-ASCIP", func(c, s int64, _ float64) cache.Policy {
			return lrb.New(c, lrb.WithSeed(s), lrb.WithInsertion(policies.NewASCIP(c)))
		}},
	}
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		for _, b := range variants {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	i := 0
	for _, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, "%-8s", p)
		for range variants {
			fmt.Fprintf(cfg.Out, " %10.4f", cells[i])
			i++
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}
