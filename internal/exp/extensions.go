package exp

import (
	"fmt"
	"runtime"
	"time"

	"github.com/scip-cache/scip/internal/admission"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/replacement"
	"github.com/scip-cache/scip/internal/runner"
	"github.com/scip-cache/scip/internal/shard"
)

func init() {
	register(Runner{Name: "ext", Title: "Extensions: multi-chain SCIP (future work), admission policies, sharded concurrency", Run: runExtensions})
}

// runExtensions measures the three extensions beyond the paper's
// evaluation: the future-work multi-chain integration (S4LRU-SCIP), the
// related-work admission policies (§7), and the scalability of the
// sharded concurrent front.
func runExtensions(cfg Config) error {
	if err := runMultiChain(cfg); err != nil {
		return err
	}
	if err := runAdmission(cfg); err != nil {
		return err
	}
	return runSharded(cfg)
}

// runMultiChain compares S4LRU against S4LRU-SCIP (the paper's stated
// future work) on all profiles.
func runMultiChain(cfg Config) error {
	builders := []policyBuilder{
		{"S4LRU", func(c, s int64, _ float64) cache.Policy { return replacement.NewS4LRU(c) }},
		{"S4LRU-SCIP", func(c, s int64, sc float64) cache.Policy {
			return replacement.NewS4LRUWithInsertion(c, core.New(c,
				core.WithSeed(s), core.WithInterval(scaledInterval(sc)), core.ForEnhancement()))
		}},
	}
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		for _, b := range builders {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Extension A — multi-chain SCIP (paper future work), 64 GB-eq (scale %.4g)", cfg.Scale)
	header(cfg.Out, "%-8s %10s %12s", "trace", "S4LRU", "S4LRU-SCIP")
	for i, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, "%-8s %10.4f %12.4f\n", p, cells[2*i], cells[2*i+1])
	}
	return nil
}

// runAdmission compares SCIP with the related-work admission family.
func runAdmission(cfg Config) error {
	header(cfg.Out, "# Extension B — admission policies (paper §7), 64 GB-eq (scale %.4g)", cfg.Scale)
	builderSet := []policyBuilder{
		{"SCIP", func(c, s int64, sc float64) cache.Policy {
			return core.NewCache(c, core.WithSeed(s), core.WithInterval(scaledInterval(sc)))
		}},
		{"LRU", func(c, s int64, _ float64) cache.Policy { return cache.NewLRU(c) }},
		{"2Q", func(c, s int64, _ float64) cache.Policy { return admission.NewTwoQ(c) }},
		{"TinyLFU", func(c, s int64, _ float64) cache.Policy { return admission.NewTinyLFU(c) }},
		{"AdaptSize", func(c, s int64, _ float64) cache.Policy { return admission.NewAdaptSize(c, s) }},
	}
	var jobs []func() (float64, error)
	for _, p := range gen.Profiles {
		capBytes := p.CacheBytes(gb(64), cfg.Scale)
		for _, b := range builderSet {
			jobs = append(jobs, missCell(cfg, p, capBytes, b))
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	i := 0
	for _, p := range gen.Profiles {
		fmt.Fprintf(cfg.Out, "%-8s", p)
		for _, b := range builderSet {
			fmt.Fprintf(cfg.Out, " %s=%.4f", b.name, cells[i])
			i++
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// runSharded measures throughput scaling of the concurrent sharded SCIP
// front across worker counts. Only the Mreq/s column is a wall-clock
// measurement; the missRatio column is deterministic because the replay
// partitions the trace by shard (see replayShardPartitioned).
func runSharded(cfg Config) error {
	header(cfg.Out, "# Extension C — sharded concurrent SCIP throughput (scale %.4g)", cfg.Scale)
	header(cfg.Out, "%-8s %-10s %10s %8s %14s %10s", "workers", "mode", "shards", "batch", "Mreq/s", "missRatio")
	tr, err := getTrace(gen.CDNT, cfg.Scale, cfg.Seeds[0])
	if err != nil {
		return err
	}
	capBytes := gen.CDNT.CacheBytes(gb(64), cfg.Scale)
	maxWorkers := runtime.GOMAXPROCS(0) * 2
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	// The three concurrency configurations of DESIGN.md §10: per-request
	// mutex locking, mutex locking amortised over 64-request batches, and
	// the goroutine-per-shard actor path fed 64-request batches. The
	// missRatio column must agree across all of them (serial-order
	// invariant); only Mreq/s may differ.
	modes := []struct {
		name  string
		mode  shard.Mode
		batch int
	}{
		{"mutex", shard.ModeMutex, 1},
		{"batched", shard.ModeMutex, 64},
		{"actor", shard.ModeActor, 64},
	}
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		shards := workers * 2
		for _, m := range modes {
			c, err := shard.New("scip", capBytes, shards, func(cb int64, i int) cache.Policy {
				return core.NewCache(cb, core.WithSeed(int64(i)+1), core.WithInterval(scaledInterval(cfg.Scale)))
			}, shard.WithMode(m.mode))
			if err != nil {
				return err
			}
			start := time.Now() //scip:wallclock-ok metering only: feeds the Mreq/s column, never a cache decision
			hits := replayShardPartitioned(tr.Requests, c, workers, m.batch)
			elapsed := time.Since(start).Seconds() //scip:wallclock-ok metering only: feeds the Mreq/s column, never a cache decision
			c.Close()
			total := len(tr.Requests)
			fmt.Fprintf(cfg.Out, "%-8d %-10s %10d %8d %14.2f %10.4f\n",
				workers, m.name, c.Shards(), m.batch, float64(total)/elapsed/1e6, 1-float64(hits)/float64(total))
		}
	}
	return nil
}

// replayShardPartitioned replays reqs against the sharded cache from
// `workers` goroutines, partitioning the trace BY SHARD (worker w owns
// the shards with index ≡ w mod workers), not by request index: every
// shard sees its request subsequence in exact trace order regardless of
// the worker count, so each per-shard policy makes identical decisions
// and the returned hit count is byte-identical across worker counts —
// the same scheme the scip-load harness uses. The previous index-range
// partitioning interleaved each shard's requests across workers in
// scheduler order, which made the printed miss ratio nondeterministic.
// The loop itself lives in runner.ReplaySharded, shared with the
// scip-load scale matrix; batch chooses per-request Access (<= 1) or
// amortised AccessBatch issue.
func replayShardPartitioned(reqs []cache.Request, c *shard.Cache, workers, batch int) int64 {
	return runner.ReplaySharded(reqs, c, workers, batch)
}
