package exp

import (
	"bytes"
	"fmt"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/ml"
	"github.com/scip-cache/scip/internal/trace"
	"github.com/scip-cache/scip/internal/zro"
)

func init() {
	register(Runner{Name: "table1", Title: "Table 1: workload summary statistics", Run: runTable1})
	register(Runner{Name: "fig1", Title: "Figure 1: ZRO/A-ZRO/P-ZRO/A-P-ZRO shares and reducible miss ratios", Run: runFig1})
	register(Runner{Name: "fig3", Title: "Figure 3: theoretical miss ratios with oracle LRU placement", Run: runFig3})
	register(Runner{Name: "fig4", Title: "Figure 4: classifier accuracy on ZRO / P-ZRO / both", Run: runFig4})
}

// runTable1 prints the generated workloads' Table-1 statistics next to
// the paper's. Generating the three profile traces dominates, so each
// profile's (generate + scan) is one job.
func runTable1(cfg Config) error {
	rows, err := runJobs(cfg, profileJobs(cfg, func(p gen.Profile) (trace.Stats, error) {
		tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
		if err != nil {
			return trace.Stats{}, err
		}
		return tr.ComputeStats(), nil
	}))
	if err != nil {
		return err
	}
	header(cfg.Out, "# Table 1 — workload summary (scale %.4g, seed %d)", cfg.Scale, cfg.Seeds[0])
	header(cfg.Out, "%-8s %12s %12s %12s %10s %12s %10s", "trace", "requests", "unique", "meanSizeKB", "minSize", "maxSizeMB", "wssGB")
	for i, p := range gen.Profiles {
		s := rows[i]
		fmt.Fprintf(cfg.Out, "%-8s %12d %12d %12.2f %10d %12.2f %10.3f\n",
			s.Name, s.TotalRequests, s.UniqueObjects, s.MeanObjectSize/1024,
			s.MinObjectSize, float64(s.MaxObjectSize)/(1<<20), float64(s.WorkingSetSize)/(1<<30))
		ps := p.PaperStats()
		fmt.Fprintf(cfg.Out, "%-8s %12d %12d %12.2f %10d %12.2f %10.3f  (paper, scale 1)\n",
			"", ps.TotalRequests, ps.UniqueObjects, ps.MeanObjectSize/1024,
			ps.MinObjectSize, float64(ps.MaxObjectSize)/(1<<20), float64(ps.WorkingSetSize)/(1<<30))
	}
	return nil
}

// profileJobs wraps one job per workload profile.
func profileJobs[T any](cfg Config, fn func(p gen.Profile) (T, error)) []func() (T, error) {
	jobs := make([]func() (T, error), len(gen.Profiles))
	for i, p := range gen.Profiles {
		jobs[i] = func() (T, error) { return fn(p) }
	}
	return jobs
}

// fig1Sizes are the paper's cache sizes A–D as fractions of the working
// set X.
var fig1Sizes = []struct {
	label string
	frac  float64
}{
	{"A=0.5%X", 0.005},
	{"B=1%X", 0.01},
	{"C=5%X", 0.05},
	{"D=10%X", 0.10},
}

// runFig1 reproduces Figure 1: the shares of ZROs among missing objects
// (a), A-ZROs among ZROs (c), P-ZROs among hits (d), A-P-ZROs among
// P-ZROs (f), and the LRU miss ratios with the oracle-reducible portion
// (b, e).
func runFig1(cfg Config) error {
	sizes := fig1Sizes
	if cfg.Quick {
		sizes = sizes[1:3]
	}
	// One job per (profile, size): each runs the analyzer and the two
	// oracle replays on the shared memoised trace.
	type fig1Cell struct {
		sum           zro.Summary
		zroMR, pzroMR float64
	}
	var jobs []func() (fig1Cell, error)
	for _, p := range gen.Profiles {
		for _, sz := range sizes {
			jobs = append(jobs, func() (fig1Cell, error) {
				tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
				if err != nil {
					return fig1Cell{}, err
				}
				capBytes := int64(sz.frac * float64(tr.ComputeStats().WorkingSetSize))
				_, sum := zro.Analyze(tr, capBytes)
				return fig1Cell{
					sum:    sum,
					zroMR:  zro.OracleReplay(tr, capBytes, true, false, 1, 0),
					pzroMR: zro.OracleReplay(tr, capBytes, false, true, 1, 0),
				}, nil
			})
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Figure 1 — ZRO family shares under LRU (scale %.4g)", cfg.Scale)
	header(cfg.Out, "%-8s %-8s %8s %8s %8s %8s %8s %10s %10s", "trace", "size", "ZRO%", "A-ZRO%", "P-ZRO%", "A-P-ZRO%", "lruMR", "mr(ZRO)", "mr(P-ZRO)")
	i := 0
	for _, p := range gen.Profiles {
		for _, sz := range sizes {
			c := cells[i]
			i++
			fmt.Fprintf(cfg.Out, "%-8s %-8s %8.2f %8.2f %8.2f %8.2f %8.4f %10.4f %10.4f\n",
				p, sz.label, 100*c.sum.ZROFrac(), 100*c.sum.AZROFrac(),
				100*c.sum.PZROFrac(), 100*c.sum.APZROFrac(), c.sum.MissRatio, c.zroMR, c.pzroMR)
		}
	}
	return nil
}

// runFig3 reproduces Figure 3: the theoretical miss ratio as increasing
// fractions of ZROs, P-ZROs, or both are placed at the LRU position.
func runFig3(cfg Config) error {
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		fracs = []float64{0, 0.5, 1.0}
	}
	// One job per (profile, fraction): three oracle replays each.
	var jobs []func() ([3]float64, error)
	for _, p := range gen.Profiles {
		for _, f := range fracs {
			jobs = append(jobs, func() ([3]float64, error) {
				tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
				if err != nil {
					return [3]float64{}, err
				}
				capBytes := int64(0.05 * float64(tr.ComputeStats().WorkingSetSize)) // size C, mid panel
				return [3]float64{
					zro.OracleReplay(tr, capBytes, true, false, f, 0),
					zro.OracleReplay(tr, capBytes, false, true, f, 0),
					zro.OracleReplay(tr, capBytes, true, true, f, 0),
				}, nil
			})
		}
	}
	cells, err := runJobs(cfg, jobs)
	if err != nil {
		return err
	}
	header(cfg.Out, "# Figure 3 — oracle LRU-position placement (scale %.4g)", cfg.Scale)
	header(cfg.Out, "%-8s %6s %10s %10s %10s", "trace", "frac", "mr(ZRO)", "mr(P-ZRO)", "mr(both)")
	i := 0
	for _, p := range gen.Profiles {
		for _, f := range fracs {
			c := cells[i]
			i++
			fmt.Fprintf(cfg.Out, "%-8s %6.0f%% %10.4f %10.4f %10.4f\n", p, 100*f, c[0], c[1], c[2])
		}
	}
	return nil
}

// fig4Models builds the Figure-4 classifier set. The NN width shrinks
// with the trace scale (the paper's 1024 neurons train on 100M-request
// traces).
func fig4Models(seed int64, quick bool) []ml.Classifier {
	hidden := 64
	epochs := 20
	trees := 40
	if quick {
		hidden, epochs, trees = 16, 5, 10
	}
	return []ml.Classifier{
		&ml.LinReg{},
		&ml.LogReg{Seed: seed, Epochs: epochs},
		&ml.SVM{Seed: seed, Epochs: epochs},
		&ml.NN{Hidden: hidden, Seed: seed, Epochs: epochs},
		&ml.GBM{Trees: trees},
		&ml.Bandit{Seed: seed},
	}
}

// runFig4 reproduces Figure 4: decision accuracy of six models on the
// ZRO, P-ZRO, and combined classification tasks.
func runFig4(cfg Config) error {
	sample := 4
	if cfg.Quick {
		sample = 16
	}
	// One job per profile: labelling, event collection and the three
	// model-fitting tasks all run inside the job, which renders its own
	// table rows into a buffer so the ordered assembly stays trivial.
	rows, err := runJobs(cfg, profileJobs(cfg, func(p gen.Profile) (string, error) {
		var out bytes.Buffer
		tr, err := getTrace(p, cfg.Scale, cfg.Seeds[0])
		if err != nil {
			return "", err
		}
		wss := tr.ComputeStats().WorkingSetSize
		capBytes := int64(0.05 * float64(wss))
		labels, _ := zro.Analyze(tr, capBytes)
		events := zro.CollectEvents(tr, capBytes, sample)
		tasks := []struct {
			name string
			want func(e zro.Event) (keep bool, label float64)
		}{
			{"ZRO", func(e zro.Event) (bool, float64) {
				if !e.Insertion || !labels.Resolved[e.Index] {
					return false, 0
				}
				return true, b2f(labels.ZRO[e.Index])
			}},
			{"P-ZRO", func(e zro.Event) (bool, float64) {
				if e.Insertion || !labels.Resolved[e.Index] {
					return false, 0
				}
				return true, b2f(labels.PZRO[e.Index])
			}},
			{"both", func(e zro.Event) (bool, float64) {
				if !labels.Resolved[e.Index] {
					return false, 0
				}
				return true, b2f(labels.ZRO[e.Index] || labels.PZRO[e.Index])
			}},
		}
		for _, task := range tasks {
			d := &ml.Dataset{}
			for _, e := range events {
				if keep, y := task.want(e); keep {
					// Append copies the row, so Standardize mutating the
					// dataset in place cannot touch the events shared
					// across the three tasks.
					d.Append(e.Features, y)
				}
			}
			if d.Len() < 100 {
				fmt.Fprintf(&out, "%-8s %-6s insufficient data (%d rows)\n", p, task.name, d.Len())
				continue
			}
			train, test := d.Split(0.7, cfg.Seeds[0])
			m, s := train.Standardize()
			test.ApplyScaling(m, s)
			fmt.Fprintf(&out, "%-8s %-6s", p, task.name)
			for _, c := range fig4Models(cfg.Seeds[0], cfg.Quick) {
				if err := c.Fit(train); err != nil {
					return "", fmt.Errorf("fig4 %s/%s/%s: %w", p, task.name, c.Name(), err)
				}
				fmt.Fprintf(&out, " %8.3f", ml.Accuracy(c, test))
			}
			fmt.Fprintln(&out)
		}
		return out.String(), nil
	}))
	if err != nil {
		return err
	}
	header(cfg.Out, "# Figure 4 — classifier accuracy (scale %.4g)", cfg.Scale)
	header(cfg.Out, "%-8s %-6s %8s %8s %8s %8s %8s %8s", "trace", "task", "LinReg", "LogReg", "SVM", "NN", "GBM", "MAB")
	for _, r := range rows {
		fmt.Fprint(cfg.Out, r)
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
