package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sketch is a count-min frequency sketch with atomic counters: depth
// rows of width counters (width rounded up to a power of two), each row
// indexed by an independently mixed hash of the key. Observe increments
// one counter per row and returns the new minimum across rows — an
// estimate that can only over-count (hash collisions add, never
// subtract), which is the right bias for hot-key detection: a key the
// sketch calls hot gets replicated a little early at worst.
//
// All methods are safe for concurrent use. The row mixers are fixed
// constants, so two sketches fed the same observation multiset hold the
// same counters regardless of interleaving (each counter is a sum of
// atomic increments) — the determinism property TestSketchDeterminism
// and the -race suite pin.
type Sketch struct {
	mask uint64
	rows [sketchDepth][]atomic.Uint32
}

// sketchDepth is the row count. Four rows put the over-count probability
// per row-collision at (n/width)^4 — ample for a top-k gate.
const sketchDepth = 4

// rowSeeds decorrelate the rows: each row hashes mix64(key ^ seed).
// Fixed constants (digits of phi and e), not process randomness — the
// sketch must behave identically across router restarts.
var rowSeeds = [sketchDepth]uint64{
	0x9E3779B97F4A7C15, 0x2545F4914F6CDD1D, 0x27220A95FE5A39E9, 0x6C62272E07BB0142,
}

// NewSketch returns a sketch with the given counter width per row
// (rounded up to a power of two, min 16).
func NewSketch(width int) *Sketch {
	w := 16
	for w < width {
		w <<= 1
	}
	s := &Sketch{mask: uint64(w - 1)}
	for i := range s.rows {
		s.rows[i] = make([]atomic.Uint32, w)
	}
	return s
}

// Observe counts one access of key and returns the new estimate (the
// minimum counter across rows after the increment).
//
//scip:hotpath
func (s *Sketch) Observe(key uint64) uint32 {
	est := ^uint32(0)
	for i := range s.rows {
		c := s.rows[i][mix64(key^rowSeeds[i])&s.mask].Add(1)
		if c < est {
			est = c
		}
	}
	return est
}

// Estimate returns key's current estimate without counting an access.
//
//scip:hotpath
func (s *Sketch) Estimate(key uint64) uint32 {
	est := ^uint32(0)
	for i := range s.rows {
		c := s.rows[i][mix64(key^rowSeeds[i])&s.mask].Load()
		if c < est {
			est = c
		}
	}
	return est
}

// hotEntry is one member of the top-k set.
type hotEntry struct {
	key   uint64
	count uint32
}

// HotKeys tracks the top-k keys by sketch estimate: the router's
// replication gate. A key becomes hot once its estimate reaches Min and
// either the set has room or the key outranks the coldest member (which
// it displaces). Members never cool down on their own — estimates only
// grow — so within one router process the hot set only churns upward;
// a restart clears it, which is fine because replication is a
// performance hint, not a correctness property (a replica that never
// saw a key simply misses and peer-fills or refetches).
//
// The member set is a small slice scanned linearly: k is tiny (tens),
// the scan is branch-predictable, and unlike a map it gives the
// deterministic tie-breaking (lowest count loses, larger key breaks
// ties) that makes a sequential observation stream reproduce the exact
// same hot set on every run.
type HotKeys struct {
	sketch *Sketch
	k      int
	min    uint32

	mu      sync.Mutex
	members []hotEntry //scip:guardedby mu
}

// NewHotKeys returns a tracker admitting at most k hot keys, each with a
// sketch estimate of at least min. width sizes the backing sketch.
func NewHotKeys(k int, min uint32, width int) *HotKeys {
	if k < 1 {
		k = 1
	}
	if min < 1 {
		min = 1
	}
	return &HotKeys{
		sketch:  NewSketch(width),
		k:       k,
		min:     min,
		members: make([]hotEntry, 0, k),
	}
}

// Observe counts one access of key and reports whether key is hot after
// the access.
func (h *HotKeys) Observe(key uint64) bool {
	est := h.sketch.Observe(key)
	if est < h.min {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.members {
		if h.members[i].key == key {
			h.members[i].count = est
			return true
		}
	}
	if len(h.members) < h.k {
		h.members = append(h.members, hotEntry{key: key, count: est})
		return true
	}
	// Displace the coldest member if the candidate outranks it. Ties
	// keep the incumbent: est must be strictly greater, and among
	// equally cold incumbents the one with the larger key is evicted —
	// both rules are arbitrary but deterministic.
	victim := 0
	for i := 1; i < len(h.members); i++ {
		if h.members[i].count < h.members[victim].count ||
			(h.members[i].count == h.members[victim].count && h.members[i].key > h.members[victim].key) {
			victim = i
		}
	}
	if est > h.members[victim].count {
		h.members[victim] = hotEntry{key: key, count: est}
		return true
	}
	return false
}

// Hot reports whether key is currently a member of the hot set, without
// counting an access.
func (h *HotKeys) Hot(key uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.members {
		if h.members[i].key == key {
			return true
		}
	}
	return false
}

// Len returns the current hot-set size.
func (h *HotKeys) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.members)
}

// Members returns the hot keys in ascending key order (a copy; for
// /statusz and tests).
func (h *HotKeys) Members() []uint64 {
	h.mu.Lock()
	out := make([]uint64, len(h.members))
	for i := range h.members {
		out[i] = h.members[i].key
	}
	h.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Estimate exposes the backing sketch's estimate for key.
func (h *HotKeys) Estimate(key uint64) uint32 { return h.sketch.Estimate(key) }
