// Package cluster turns a set of scip-serve daemons into a routed cache
// fleet: a consistent-hash ring with virtual nodes (Ring) maps every
// key to an owner node, a stateless HTTP routing tier (Router) proxies
// object requests to that owner — load-balancing the hottest keys
// across a replica set chosen by a count-min frequency sketch (Sketch,
// HotKeys) and failing over to ring successors when the health registry
// (Registry) marks a node down — and a peer client (PeerClient) lets a
// node fill a local miss from the ring's next replica before paying an
// origin round trip.
//
// Together with internal/server this forms the live two-layer OC/DC
// hierarchy that internal/tdc models offline: the fleet's nodes are the
// origin-side caches, the shared origin is the data center, and the
// router is the request fabric between clients and the fleet. The
// correctness anchor is the same one every layer of this repository
// uses: with replication and peer fill off, a clustered replay's
// aggregate per-shard counters are byte-identical to single-node
// replays of the ring-partitioned trace, and enabling peer fill only
// converts origin fills into peer fills — never a policy decision (see
// the package's end-to-end tests and CLUSTER.md for the operator
// story).
package cluster
