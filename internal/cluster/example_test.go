package cluster_test

import (
	"fmt"

	"github.com/scip-cache/scip/internal/cluster"
)

// ExampleRing shows the ownership contract: every fleet participant
// builds a ring from the same node list (order does not matter) and
// agrees on which node owns a key and which nodes form its replica set.
func ExampleRing() {
	nodes := []string{
		"http://10.0.0.1:8344",
		"http://10.0.0.2:8344",
		"http://10.0.0.3:8344",
	}
	ring, err := cluster.NewRing(nodes, 64)
	if err != nil {
		panic(err)
	}
	for _, key := range []uint64{4, 5, 6} {
		owner := ring.Lookup(key)
		set := ring.Replicas(key, 2)
		fmt.Printf("key %d -> %s (fallback %s)\n", key, nodes[owner], nodes[set[1]])
	}
	// Output:
	// key 4 -> http://10.0.0.1:8344 (fallback http://10.0.0.2:8344)
	// key 5 -> http://10.0.0.2:8344 (fallback http://10.0.0.1:8344)
	// key 6 -> http://10.0.0.3:8344 (fallback http://10.0.0.1:8344)
}

// ExampleNewRouter builds the routing tier the scip-route binary wires
// up: a router over a fleet node list, ready to serve once handed a
// listener (Serve/ListenAndServe run the health loop alongside).
func ExampleNewRouter() {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes: []string{
			"http://10.0.0.1:8344",
			"http://10.0.0.2:8344",
			"http://10.0.0.3:8344",
		},
		Replicas:  2,
		Replicate: true, // spread hot-key reads over 2 replicas
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet of %d, all up: %v\n", len(rt.Ring().Nodes()), rt.Registry().UpCount() == 3)
	fmt.Printf("key 7 owned by %s\n", rt.Ring().Nodes()[rt.Ring().Lookup(7)])
	// Output:
	// fleet of 3, all up: true
	// key 7 owned by http://10.0.0.2:8344
}
