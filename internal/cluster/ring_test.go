package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refOwner is the brute-force reference ring: collect every vnode point,
// sort, linear-scan for the first point at or after the key's hash. The
// property tests compare Ring's binary search against it.
func refOwner(nodes []string, vnodes int, key uint64) string {
	type pt struct {
		hash uint64
		node string
		idx  int
	}
	var pts []pt
	for i, n := range nodes {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{pointHash(n, v), n, i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].idx < pts[b].idx
	})
	h := KeyHash(key)
	for _, p := range pts {
		if p.hash >= h {
			return p.node
		}
	}
	return pts[0].node
}

func benchNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8344", i+1)
	}
	return out
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Error("empty identity accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 64); err == nil {
		t.Error("duplicate identity accepted")
	}
}

func TestRingSingleNode(t *testing.T) {
	r, err := NewRing([]string{"only"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 1000; key++ {
		if r.Lookup(key) != 0 {
			t.Fatalf("key %d not on the only node", key)
		}
	}
}

func TestRingLookupMatchesReference(t *testing.T) {
	nodes := benchNodes(5)
	r, err := NewRing(nodes, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		key := rng.Uint64()
		if got, want := nodes[r.Lookup(key)], refOwner(nodes, 32, key); got != want {
			t.Fatalf("key %d: Lookup %s, reference %s", key, got, want)
		}
	}
}

// TestRingNodeOrderIrrelevant pins that ownership depends on node
// identities, not on the order the list was supplied in — the property
// that lets every fleet participant build its own ring from its own copy
// of the list.
func TestRingNodeOrderIrrelevant(t *testing.T) {
	nodes := benchNodes(6)
	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 20000; key++ {
		if nodes[a.Lookup(key)] != shuffled[b.Lookup(key)] {
			t.Fatalf("key %d: owner depends on node order", key)
		}
	}
}

// TestRingAddRemapsMinimally is the consistent-hashing contract, add
// direction: growing the ring moves keys only onto the new node.
func TestRingAddRemapsMinimally(t *testing.T) {
	nodes := benchNodes(4)
	grown := append(append([]string(nil), nodes...), "http://10.0.0.99:8344")
	before, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(grown, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 50000
	for key := uint64(0); key < keys; key++ {
		ob, oa := nodes[before.Lookup(key)], grown[after.Lookup(key)]
		if ob == oa {
			continue
		}
		moved++
		if oa != "http://10.0.0.99:8344" {
			t.Fatalf("key %d moved from %s to %s, not to the added node", key, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the added node")
	}
	// The new node's expected share is 1/5 of the keyspace; allow wide
	// slack (vnode placement is uneven) while catching gross breakage.
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Errorf("add moved %.1f%% of keys; expected about 20%%", 100*frac)
	}
}

// TestRingRemoveRemapsMinimally is the remove direction: shrinking the
// ring moves only the removed node's keys, and each moves to its arc's
// successor — the node peer-fill would have asked (see PeerClient).
func TestRingRemoveRemapsMinimally(t *testing.T) {
	nodes := benchNodes(5)
	const removed = 2
	var shrunk []string
	for i, n := range nodes {
		if i != removed {
			shrunk = append(shrunk, n)
		}
	}
	before, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(shrunk, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key := uint64(0); key < 50000; key++ {
		ob, oa := nodes[before.Lookup(key)], shrunk[after.Lookup(key)]
		if ob == oa {
			continue
		}
		moved++
		if ob != nodes[removed] {
			t.Fatalf("key %d moved from %s to %s though its owner stayed", key, ob, oa)
		}
		// The new owner must be the old ring's next distinct node after
		// the removed one at this key's position.
		set := before.Replicas(key, 2)
		if len(set) < 2 || set[0] != removed {
			t.Fatalf("key %d: unexpected old replica walk %v", key, set)
		}
		if oa != nodes[set[1]] {
			t.Fatalf("key %d landed on %s, successor says %s", key, oa, nodes[set[1]])
		}
	}
	if moved == 0 {
		t.Fatal("removing a node moved no keys")
	}
}

// TestRingSkew bounds the vnode load imbalance: with 64 vnodes per node
// the busiest node must stay within 2x of the mean share and the idlest
// above 0.3x. The bound is generous — it pins "vnodes spread load", not
// a precise distribution.
func TestRingSkew(t *testing.T) {
	nodes := benchNodes(8)
	r, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(nodes))
	const keys = 100000
	for key := uint64(0); key < keys; key++ {
		counts[r.Lookup(key)]++
	}
	mean := float64(keys) / float64(len(nodes))
	for i, c := range counts {
		if share := float64(c) / mean; share > 2.0 || share < 0.3 {
			t.Errorf("node %d owns %.2fx the mean share (counts %v)", i, share, counts)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	nodes := benchNodes(4)
	r, err := NewRing(nodes, 32)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 2000; key++ {
		set := r.Replicas(key, 3)
		if len(set) != 3 {
			t.Fatalf("key %d: replica set %v, want 3 distinct nodes", key, set)
		}
		if set[0] != r.Lookup(key) {
			t.Fatalf("key %d: replica set %v does not start at the owner %d", key, set, r.Lookup(key))
		}
		seen := map[int]bool{}
		for _, n := range set {
			if seen[n] {
				t.Fatalf("key %d: duplicate node in replica set %v", key, set)
			}
			seen[n] = true
		}
	}
	// n clamps to the node count, and ReplicasInto reuses the scratch.
	if set := r.Replicas(7, 10); len(set) != len(nodes) {
		t.Errorf("Replicas(7, 10) = %v, want all %d nodes", set, len(nodes))
	}
	scratch := make([]int, 0, 4)
	a := r.ReplicasInto(7, 2, scratch)
	b := r.ReplicasInto(7, 2, a)
	if &a[0] != &b[0] {
		t.Error("ReplicasInto reallocated a scratch with sufficient capacity")
	}
}

func TestRingDeterminism(t *testing.T) {
	a, _ := NewRing(benchNodes(3), 64)
	b, _ := NewRing(benchNodes(3), 64)
	for key := uint64(0); key < 10000; key++ {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("key %d: identical rings disagree", key)
		}
	}
}
