package cluster

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Registry tracks the reachability of the fleet's nodes. A node is
// marked down after Threshold consecutive failures — reported either by
// the router's own proxy attempts (Report) or by the background health
// loop (Watch, which probes GET /healthz) — and revives on the first
// success from either source. The router skips down nodes when walking
// a key's replica list, which is how the ring "heals": the key's
// traffic flows to the next distinct node until the probe succeeds
// again, and no state needs migrating because routers are stateless.
//
// All methods are safe for concurrent use.
type Registry struct {
	nodes     []string // base URLs
	client    *http.Client
	threshold int32

	state []nodeState
}

// nodeState is one node's health record.
type nodeState struct {
	down   atomic.Bool
	fails  atomic.Int32
	probes atomic.Int64
}

// NewRegistry builds a registry over the node base URLs. threshold is
// the consecutive-failure count that marks a node down (min 1); client
// is used for health probes (nil: a 1-second-timeout default).
func NewRegistry(nodes []string, threshold int, client *http.Client) *Registry {
	if threshold < 1 {
		threshold = 1
	}
	if client == nil {
		client = &http.Client{Timeout: time.Second}
	}
	return &Registry{
		nodes:     append([]string(nil), nodes...),
		client:    client,
		threshold: int32(threshold),
		state:     make([]nodeState, len(nodes)),
	}
}

// Up reports whether node i is currently considered reachable.
func (g *Registry) Up(i int) bool { return !g.state[i].down.Load() }

// UpCount returns the number of up nodes.
func (g *Registry) UpCount() int {
	n := 0
	for i := range g.state {
		if g.Up(i) {
			n++
		}
	}
	return n
}

// Report records the outcome of one interaction with node i (a proxy
// attempt or a health probe): success clears the failure streak and
// revives the node, failure extends the streak and marks the node down
// once it reaches the threshold.
func (g *Registry) Report(i int, ok bool) {
	s := &g.state[i]
	if ok {
		s.fails.Store(0)
		s.down.Store(false)
		return
	}
	if s.fails.Add(1) >= g.threshold {
		s.down.Store(true)
	}
}

// Probes returns how many health probes node i has received.
func (g *Registry) Probes(i int) int64 { return g.state[i].probes.Load() }

// CheckOnce probes every node's /healthz once, sequentially, and feeds
// the outcomes to Report. Any 2xx counts as healthy.
func (g *Registry) CheckOnce(ctx context.Context) {
	for i, base := range g.nodes {
		g.state[i].probes.Add(1)
		g.Report(i, g.probe(ctx, base))
	}
}

// probe performs one /healthz GET against base.
func (g *Registry) probe(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// Watch runs CheckOnce every interval until ctx is cancelled. Callers
// run it in its own goroutine; a zero or negative interval disables the
// loop (Report-driven marking still works).
func (g *Registry) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.CheckOnce(ctx)
		}
	}
}
