package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode is an httptest stand-in for a scip-serve node that records
// which keys it was asked for.
type fakeNode struct {
	srv  *httptest.Server
	gets atomic.Int64
	puts atomic.Int64
	dels atomic.Int64
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /obj/{key}", func(w http.ResponseWriter, r *http.Request) {
		n.gets.Add(1)
		w.Header().Set("X-Cache", "MISS")
		w.Header().Set("X-Served-By", name)
		io.WriteString(w, "body-"+r.PathValue("key"))
	})
	mux.HandleFunc("PUT /obj/{key}", func(w http.ResponseWriter, r *http.Request) {
		n.puts.Add(1)
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /obj/{key}", func(w http.ResponseWriter, _ *http.Request) {
		n.dels.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// newTestRouter builds a router (health loop off) over the given fakes.
func newTestRouter(t *testing.T, cfg RouterConfig, fakes []*fakeNode) *Router {
	t.Helper()
	for _, f := range fakes {
		cfg.Nodes = append(cfg.Nodes, f.srv.URL)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func routerGet(t *testing.T, h http.Handler, key uint64) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/obj/"+strconv.FormatUint(key, 10), nil))
	return rec
}

// TestRouterRoutesToOwner pins that every key is proxied to its ring
// owner and the node's response (status, body, forwarded headers) passes
// through verbatim.
func TestRouterRoutesToOwner(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")}
	rt := newTestRouter(t, RouterConfig{}, fakes)
	h := rt.Handler()

	perNode := make([]int64, len(fakes))
	for key := uint64(0); key < 300; key++ {
		owner := rt.Ring().Lookup(key)
		before := fakes[owner].gets.Load()
		rec := routerGet(t, h, key)
		if rec.Code != http.StatusOK {
			t.Fatalf("key %d: status %d", key, rec.Code)
		}
		if got := rec.Body.String(); got != fmt.Sprintf("body-%d", key) {
			t.Fatalf("key %d: body %q", key, got)
		}
		if fakes[owner].gets.Load() != before+1 {
			t.Fatalf("key %d not served by its owner (node %d)", key, owner)
		}
		if rec.Header().Get("X-Cache") != "MISS" {
			t.Errorf("key %d: X-Cache not forwarded", key)
		}
		if rec.Header().Get("X-Route-Node") != rt.Ring().Nodes()[owner] {
			t.Errorf("key %d: X-Route-Node = %q", key, rec.Header().Get("X-Route-Node"))
		}
		perNode[owner]++
	}
	for i, n := range perNode {
		if n == 0 {
			t.Errorf("node %d owned no keys out of 300", i)
		}
	}
}

// TestRouterFailover pins the ring-heal path: when a node dies, its keys
// flow to the next ring successor (after the failure threshold marks it
// down, probe-free), and the failover counter moves.
func TestRouterFailover(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")}
	rt := newTestRouter(t, RouterConfig{FailThreshold: 1, NodeTimeout: 2 * time.Second}, fakes)
	h := rt.Handler()

	// Find a key owned by node 0 and kill that node.
	var key uint64
	for ; rt.Ring().Lookup(key) != 0; key++ {
	}
	successor := rt.Ring().Replicas(key, 2)[1]
	fakes[0].srv.Close()

	rec := routerGet(t, h, key)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover GET: status %d, body %s", rec.Code, rec.Body.String())
	}
	if got, want := rec.Header().Get("X-Route-Node"), rt.Ring().Nodes()[successor]; got != want {
		t.Errorf("served by %q, want successor %q", got, want)
	}
	if rt.Registry().Up(0) {
		t.Error("dead node still marked up after threshold failures")
	}
	_, failovers, _ := rt.Requests()
	if failovers == 0 {
		t.Error("failover counter did not move")
	}

	// Subsequent requests for the dead node's keys go straight to the
	// successor without re-trying the corpse.
	before := fakes[successor].gets.Load()
	if rec := routerGet(t, h, key); rec.Code != http.StatusOK {
		t.Fatalf("post-failover GET: status %d", rec.Code)
	}
	if fakes[successor].gets.Load() != before+1 {
		t.Error("down node's key not routed to its successor")
	}
}

// TestRouterHotReplication pins hot-key handling: reads of a
// router-detected hot key spread across its replica set and hot writes
// fan out to all of it.
func TestRouterHotReplication(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")}
	rt := newTestRouter(t, RouterConfig{Replicate: true, Replicas: 2, HotK: 4, HotMin: 4}, fakes)
	h := rt.Handler()

	const key = 42
	set := rt.Ring().Replicas(key, 2)
	for i := 0; i < 40; i++ {
		if rec := routerGet(t, h, key); rec.Code != http.StatusOK {
			t.Fatalf("GET %d: status %d", i, rec.Code)
		}
	}
	if !rt.HotKeys().Hot(key) {
		t.Fatal("hammered key never went hot")
	}
	for _, n := range set {
		if fakes[n].gets.Load() == 0 {
			t.Errorf("replica node %d served no reads of the hot key", n)
		}
	}

	// A hot PUT reaches every replica.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/obj/42", strings.NewReader("v")))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("PUT: status %d", rec.Code)
	}
	var putNodes int
	for _, n := range set {
		if fakes[n].puts.Load() > 0 {
			putNodes++
		}
	}
	if putNodes != len(set) {
		t.Errorf("hot PUT reached %d of %d replicas", putNodes, len(set))
	}
}

// TestRouterMetricsAndStatusz smoke-checks the observability endpoints:
// every promised scip_route_* family is present and statusz mentions the
// fleet.
func TestRouterMetricsAndStatusz(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	rt := newTestRouter(t, RouterConfig{}, fakes)
	h := rt.Handler()
	routerGet(t, h, 7)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"scip_route_requests_total", "scip_route_http_responses_total",
		"scip_route_node_requests_total", "scip_route_node_errors_total",
		"scip_route_node_up", "scip_route_failovers_total",
		"scip_route_unroutable_total", "scip_route_replicated_reads_total",
		"scip_route_fanout_writes_total", "scip_route_replica_write_errors_total",
		"scip_route_hot_keys", "scip_route_inflight_requests",
		"scip_route_uptime_seconds", "scip_route_proxy_latency_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if !strings.Contains(rec.Body.String(), "2 nodes") {
		t.Errorf("/statusz does not describe the fleet:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/healthz: status %d", rec.Code)
	}
}

// TestRouterAllNodesDown pins the exhaustion path: with every node dead
// the router answers 502 and counts the request unroutable.
func TestRouterAllNodesDown(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "a")}
	rt := newTestRouter(t, RouterConfig{FailThreshold: 1, NodeTimeout: time.Second}, fakes)
	fakes[0].srv.Close()
	h := rt.Handler()

	if rec := routerGet(t, h, 1); rec.Code != http.StatusBadGateway {
		t.Fatalf("first GET against dead fleet: status %d", rec.Code)
	}
	// Node 0 is now marked down; the all-down fallback must still try it
	// (and fail) rather than answering without an attempt.
	rec := routerGet(t, h, 2)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all-down GET: status %d", rec.Code)
	}
	_, _, unroutable := rt.Requests()
	if unroutable != 2 {
		t.Errorf("unroutable = %d, want 2", unroutable)
	}
}

func TestRegistryThresholdAndRevival(t *testing.T) {
	reg := NewRegistry([]string{"http://a", "http://b"}, 3, nil)
	if !reg.Up(0) || reg.UpCount() != 2 {
		t.Fatal("nodes not up at start")
	}
	reg.Report(0, false)
	reg.Report(0, false)
	if !reg.Up(0) {
		t.Fatal("node down before the threshold")
	}
	reg.Report(0, false)
	if reg.Up(0) || reg.UpCount() != 1 {
		t.Fatal("node not down at the threshold")
	}
	// An interleaved success resets the streak.
	reg.Report(1, false)
	reg.Report(1, false)
	reg.Report(1, true)
	reg.Report(1, false)
	reg.Report(1, false)
	if !reg.Up(1) {
		t.Error("success did not clear the failure streak")
	}
	// One success revives a down node.
	reg.Report(0, true)
	if !reg.Up(0) {
		t.Error("down node not revived by a success")
	}
}

func TestRegistryCheckOnce(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	}))
	defer healthy.Close()
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer sick.Close()

	reg := NewRegistry([]string{healthy.URL, sick.URL}, 2, nil)
	reg.CheckOnce(context.Background())
	reg.CheckOnce(context.Background())
	if !reg.Up(0) {
		t.Error("healthy node marked down")
	}
	if reg.Up(1) {
		t.Error("500-ing node still up after threshold probes")
	}
	if reg.Probes(0) != 2 || reg.Probes(1) != 2 {
		t.Errorf("probe counts %d/%d, want 2/2", reg.Probes(0), reg.Probes(1))
	}
}
