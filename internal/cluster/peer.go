package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// ErrPeerMiss reports that no queried peer held the object's body. The
// server's fill chain treats it (and any other peer error) as "fall
// through to the origin" — peer fill is an optimisation layer, never a
// source of failures.
var ErrPeerMiss = errors.New("cluster: no peer holds the object")

// PeerClient fetches object bodies from ring-successor peers: a
// scip-serve node running with -peers constructs one and the server
// tries it before the origin on every declared-size miss. The peer
// asked is the next distinct node clockwise from this node at the key's
// ring position — for a key this node just inherited (a node joined or
// left), that successor is exactly the key's previous owner, so
// rebalanced keys warm from the fleet instead of hammering the origin.
//
// The peer side answers from its body store only (GET /peer/{key} —
// see internal/server): a peer fetch never touches the peer's policy
// state, which is what keeps peer fill invisible to every policy
// decision stream (the property TestClusterPeerFillConvertsOriginFills
// pins).
//
// PeerClient implements the server's Origin interface shape; the
// server applies its own bounded-backoff budget around Fetch, exactly
// as it does for the real origin.
type PeerClient struct {
	ring   *Ring
	self   int
	nodes  []string
	fanout int
	client *http.Client
}

// NewPeerClient builds a peer client for the node identified by self
// (which must appear in nodes; the list and vnodes must match the
// router's so both sides agree on ring positions). fanout is how many
// distinct successors to ask per fetch (default 1). client defaults to
// http.DefaultClient; per-attempt timeouts are the server's concern.
func NewPeerClient(nodes []string, self string, vnodes, fanout int, client *http.Client) (*PeerClient, error) {
	ring, err := NewRing(nodes, vnodes)
	if err != nil {
		return nil, err
	}
	selfIdx := -1
	for i, n := range nodes {
		if n == self {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("cluster: self %q not in the peer list", self)
	}
	if fanout < 1 {
		fanout = 1
	}
	if fanout > len(nodes)-1 {
		fanout = len(nodes) - 1
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &PeerClient{
		ring:   ring,
		self:   selfIdx,
		nodes:  ring.Nodes(),
		fanout: fanout,
		client: client,
	}, nil
}

// Peers returns the number of peers (nodes other than self).
func (p *PeerClient) Peers() int { return len(p.nodes) - 1 }

// Fetch implements the server Origin contract against the peer tier: it
// asks up to fanout ring successors of this node (at key's position)
// for the stored body and returns the first hit. A 404 from every peer
// — or any transport error — yields ErrPeerMiss-wrapped failure so the
// caller falls through to the real origin. size passes through as the
// authoritative object size; peers store bodies, not sizes, so callers
// only peer-fill requests that declare one.
func (p *PeerClient) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	if len(p.nodes) < 2 {
		return nil, 0, ErrPeerMiss
	}
	// Walk the distinct-node ring order from the key's position and
	// collect the fanout successors that come after self, wrapping.
	order := p.ring.Replicas(key, len(p.nodes))
	selfAt := 0
	for i, n := range order {
		if n == p.self {
			selfAt = i
			break
		}
	}
	var lastErr error = ErrPeerMiss
	asked := 0
	for i := 1; i < len(order) && asked < p.fanout; i++ {
		peer := order[(selfAt+i)%len(order)]
		if peer == p.self {
			continue
		}
		asked++
		body, err := p.fetchPeer(ctx, p.nodes[peer], key)
		if err == nil {
			objSize := size
			if objSize < 0 {
				objSize = int64(len(body))
			}
			return body, objSize, nil
		}
		lastErr = err
	}
	return nil, 0, lastErr
}

// fetchPeer performs one GET {base}/peer/{key}.
func (p *PeerClient) fetchPeer(ctx context.Context, base string, key uint64) ([]byte, error) {
	url := base + "/peer/" + strconv.FormatUint(key, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%w (peer %s)", ErrPeerMiss, base)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("peer %s: %s", base, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
