package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over node identities: each node owns
// VNodes points on a 64-bit hash circle, and a key belongs to the node
// owning the first point at or clockwise after the key's hash. It is the
// node-level analogue of the shard layer's key→shard mapping, with
// virtual nodes added because node counts are small (a handful of
// daemons, not a power-of-two shard array) and the ring must rebalance
// smoothly when one joins or leaves: removing a node hands each of its
// arcs to the next point's owner and moves no other key, which is the
// property the router's "ring heals" failure story and the peer-fill
// protocol both rest on (a migrated key's previous owner is, by the same
// arc argument, the next distinct node after the new one).
//
// A Ring is immutable after construction and therefore safe for
// concurrent readers with no locking. Topology changes are modelled by
// building a new Ring — routers are stateless, so "reconfigure" is
// "restart with a new node list".
type Ring struct {
	nodes  []string
	vnodes int
	points []ringPoint // sorted by (hash, node)
}

// ringPoint is one virtual node: a position on the circle and the index
// of the node that owns it.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring over the given node identities (typically base
// URLs; the strings are hashed verbatim, so every participant — router
// and peer-filling nodes alike — must use the identical list to agree on
// ownership). vnodes points are placed per node (min 1; 64 is a good
// default, see the skew bound pinned by TestRingSkew). Duplicate or
// empty identities are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node identity")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node identity %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: int32(i)})
		}
	}
	// Sort by (hash, node) so equal-hash collisions across nodes still
	// order deterministically regardless of the input node order.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the node identities in construction order (the index
// space Lookup and ReplicasInto report in).
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// KeyHash is the position of key on the circle. Keys are mixed through
// SplitMix64 rather than placed raw so dense key spaces (trace keys are
// small integers) spread uniformly between the vnode points.
func KeyHash(key uint64) uint64 { return mix64(key) }

// Lookup returns the index of the node owning key: the owner of the
// first point at or after KeyHash(key), wrapping at the top of the
// circle.
//
//scip:hotpath
func (r *Ring) Lookup(key uint64) int {
	return int(r.points[r.firstPoint(KeyHash(key))].node)
}

// firstPoint returns the index in points of the first point with
// hash >= h, wrapping to 0 past the end.
//
//scip:hotpath
func (r *Ring) firstPoint(h uint64) int {
	// Hand-rolled binary search: sort.Search takes a closure, which
	// escapes on the serving path.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		return 0
	}
	return lo
}

// ReplicasInto appends to dst[:0] the indices of the first n distinct
// nodes clockwise from key's position — the key's replica set, owner
// first. n is clamped to the node count. The caller's dst is reused so
// the steady-state routing path allocates nothing once dst's capacity
// reaches n.
//
//scip:hotpath
func (r *Ring) ReplicasInto(key uint64, n int, dst []int) []int {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	dst = dst[:0]
	if n <= 0 {
		return dst
	}
	start := r.firstPoint(KeyHash(key))
	for i := 0; i < len(r.points) && len(dst) < n; i++ {
		node := int(r.points[(start+i)%len(r.points)].node)
		if !containsInt(dst, node) {
			dst = append(dst, node)
		}
	}
	return dst
}

// Replicas is the allocating convenience form of ReplicasInto.
func (r *Ring) Replicas(key uint64, n int) []int {
	return r.ReplicasInto(key, n, make([]int, 0, n))
}

// containsInt reports whether xs contains x (replica sets are tiny, so a
// linear scan beats any set structure).
//
//scip:hotpath
func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// pointHash positions virtual node v of the named node on the circle:
// FNV-1a over "name#v", then a SplitMix64 finalising mix so short names
// differing in one byte still land far apart.
func pointHash(name string, v int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	h ^= uint64('#')
	h *= fnvPrime
	for _, c := range strconv.Itoa(v) {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finaliser: a bijective scramble used for both
// key placement and vnode placement.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
