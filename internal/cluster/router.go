package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scip-cache/scip/internal/stats"
)

// RouterConfig configures a Router. Nodes is required; everything else
// defaults (see NewRouter).
type RouterConfig struct {
	// Nodes lists the scip-serve base URLs, e.g.
	// "http://127.0.0.1:8344". The strings are the ring identities:
	// every participant (router instances, nodes running with -peers)
	// must use the identical list, in any order, to agree on ownership.
	Nodes []string
	// VNodes is the virtual-node count per node on the ring (default
	// 64).
	VNodes int
	// Replicas is the replica-set size for hot keys (default 2, clamped
	// to the node count). With Replicate off it still bounds the
	// failover walk's preferred prefix but changes no routing.
	Replicas int
	// Replicate enables hot-key replication: reads of a hot key are
	// load-balanced across its replica set and writes/invalidations fan
	// out to all of it. Off by default — replication changes which node
	// serves a key, so exactness comparisons run with it off.
	Replicate bool
	// HotK is the maximum hot-set size (default 16).
	HotK int
	// HotMin is the sketch estimate a key needs before it can enter the
	// hot set (default 64 observations).
	HotMin int
	// SketchWidth is the per-row counter width of the frequency sketch
	// (default 4096).
	SketchWidth int

	// NodeTimeout bounds each proxied attempt (default 2s).
	NodeTimeout time.Duration
	// FailThreshold is the consecutive-failure count that marks a node
	// down (default 3).
	FailThreshold int
	// HealthInterval is the background /healthz probe period (default
	// 2s; negative disables the loop — proxy outcomes still feed the
	// registry).
	HealthInterval time.Duration
	// MaxBodyBytes caps accepted PUT bodies (default 1 MiB).
	MaxBodyBytes int64
	// Client is the HTTP client used for proxying (nil: a pooled
	// transport sized for the fleet). Per-attempt timeouts come from
	// NodeTimeout, not the client.
	Client *http.Client
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg RouterConfig) withDefaults() RouterConfig {
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Nodes) {
		cfg.Replicas = len(cfg.Nodes)
	}
	if cfg.HotK <= 0 {
		cfg.HotK = 16
	}
	if cfg.HotMin <= 0 {
		cfg.HotMin = 64
	}
	if cfg.SketchWidth <= 0 {
		cfg.SketchWidth = 4096
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			MaxIdleConns:        32 * len(cfg.Nodes),
		}}
	}
	return cfg
}

// Router is the stateless consistent-hash routing tier: it proxies
// object requests to the scip-serve node(s) owning each key, fans hot
// keys out to a replica set, fails over to ring successors when a node
// is down, and exports its own scip_route_* metrics. "Stateless" means
// no object state: everything the router holds (health, frequency
// sketch, counters) is a soft hint rebuilt from traffic after a
// restart, so routers can be restarted, scaled out behind a TCP
// balancer, or replaced mid-flight without any handoff.
type Router struct {
	cfg   RouterConfig
	ring  *Ring
	reg   *Registry
	hot   *HotKeys
	start time.Time

	// seq spreads replicated reads across a hot key's replica set
	// (round-robin over the set, offset by one atomic counter).
	seq atomic.Uint64

	// Routing-path counters (CLUSTER.md carries the catalogue).
	inflight           atomic.Int64
	requestsByMethod   [3]atomic.Int64 // get, put, delete
	responsesByClass   [6]atomic.Int64
	failovers          atomic.Int64
	noNodeErrors       atomic.Int64
	replicatedReads    atomic.Int64
	fanoutWrites       atomic.Int64
	replicaWriteErrors atomic.Int64
	nodeRequests       []atomic.Int64
	nodeErrors         []atomic.Int64
	lat                stats.Histogram

	scopes sync.Pool
}

// method indices for requestsByMethod.
const (
	mGet = iota
	mPut
	mDelete
)

// NewRouter validates cfg, builds the ring and registry and returns a
// ready Router. Call Watch (or Serve, which does it for you) to start
// the background health loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:          cfg,
		ring:         ring,
		reg:          NewRegistry(cfg.Nodes, cfg.FailThreshold, cfg.Client),
		hot:          NewHotKeys(cfg.HotK, uint32(cfg.HotMin), cfg.SketchWidth),
		start:        time.Now(), //scip:wallclock-ok uptime metadata for /metrics and /statusz, never a routing decision input
		nodeRequests: make([]atomic.Int64, len(cfg.Nodes)),
		nodeErrors:   make([]atomic.Int64, len(cfg.Nodes)),
	}
	rt.scopes.New = func() any {
		return &routeScope{
			url:   make([]byte, 0, 256),
			body:  make([]byte, 0, 4096),
			buf:   make([]byte, 32<<10),
			cands: make([]int, 0, len(cfg.Nodes)),
			order: make([]int, 0, len(cfg.Nodes)),
		}
	}
	return rt, nil
}

// Ring returns the router's ring (shared, immutable).
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the router's health registry.
func (rt *Router) Registry() *Registry { return rt.reg }

// HotKeys returns the router's hot-key tracker.
func (rt *Router) HotKeys() *HotKeys { return rt.hot }

// Requests returns the routed object-request total plus the failover and
// unroutable counts — the interval report line's inputs.
func (rt *Router) Requests() (total, failovers, unroutable int64) {
	for i := range rt.requestsByMethod {
		total += rt.requestsByMethod[i].Load()
	}
	return total, rt.failovers.Load(), rt.noNodeErrors.Load()
}

// Latency returns a snapshot of the end-to-end proxy latency histogram.
func (rt *Router) Latency() (buckets [stats.NumLatencyBuckets]int64, sumNanos int64) {
	return rt.lat.Snapshot()
}

// routeScope is the pooled per-request arena (the PR-6 reqScope pattern
// applied to the routing tier): URL scratch, PUT body buffer, the
// response copy buffer and the candidate-order scratch all live for
// exactly one request and are recycled afterwards, so the steady-state
// proxy path allocates only what net/http itself needs. It doubles as
// the status-recording ResponseWriter for the response-class counters.
type routeScope struct {
	w      http.ResponseWriter
	status int
	url    []byte
	body   []byte
	buf    []byte
	cands  []int
	order  []int
}

func (sc *routeScope) Header() http.Header { return sc.w.Header() }

func (sc *routeScope) Write(p []byte) (int, error) {
	if sc.status == 0 {
		sc.status = http.StatusOK
	}
	return sc.w.Write(p)
}

func (sc *routeScope) WriteHeader(code int) {
	sc.status = code
	sc.w.WriteHeader(code)
}

// Handler returns the router's HTTP handler:
//
//	GET    /obj/{key}   proxy to the owning node (hot keys: a replica)
//	PUT    /obj/{key}   proxy to the owner (hot keys: fan to replicas)
//	DELETE /obj/{key}   proxy to the owner (replication on: all replicas)
//	GET    /metrics     Prometheus text exposition (scip_route_*)
//	GET    /healthz     liveness probe
//	GET    /statusz     human-readable status (ring, nodes, hot set)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /obj/{key}", rt.handleGet)
	mux.HandleFunc("PUT /obj/{key}", rt.handlePut)
	mux.HandleFunc("DELETE /obj/{key}", rt.handleDelete)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statusz", rt.handleStatusz)
	return rt.instrument(mux)
}

// instrument wraps the mux with in-flight tracking, response-class
// counting, proxy latency and the pooled per-request scope.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.inflight.Add(1)
		sc := rt.scopes.Get().(*routeScope)
		sc.w, sc.status = w, 0
		startT := time.Now() //scip:wallclock-ok proxy-latency metering, never a routing decision input
		next.ServeHTTP(sc, r)
		rt.lat.Observe(time.Since(startT)) //scip:wallclock-ok proxy-latency metering, never a routing decision input
		if class := sc.status / 100; class >= 1 && class <= 5 {
			rt.responsesByClass[class].Add(1)
		}
		sc.w = nil
		rt.scopes.Put(sc)
		rt.inflight.Add(-1)
	})
}

// scopeOf recovers the request's routeScope from the ResponseWriter the
// instrument wrapper installed.
func scopeOf(w http.ResponseWriter) *routeScope {
	sc, _ := w.(*routeScope)
	return sc
}

// routeKey parses the request key.
func routeKey(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("key"), 10, 64)
}

// candidates fills sc.order with the node indices to try for key, best
// first: the key's full distinct-node ring walk, with the first
// Replicas entries rotated by the round-robin sequence when the key is
// hot and replication is on (spreading hot reads across the replica
// set). rotate is false for writes — they always prefer the owner.
func (rt *Router) candidates(sc *routeScope, key uint64, rotate bool) []int {
	sc.cands = rt.ring.ReplicasInto(key, len(rt.cfg.Nodes), sc.cands)
	sc.order = sc.order[:0]
	n := len(sc.cands)
	rep := rt.cfg.Replicas
	if rep > n {
		rep = n
	}
	if rotate && rep > 1 {
		off := int(rt.seq.Add(1) % uint64(rep))
		for i := 0; i < rep; i++ {
			sc.order = append(sc.order, sc.cands[(off+i)%rep])
		}
		sc.order = append(sc.order, sc.cands[rep:]...)
	} else {
		sc.order = append(sc.order, sc.cands...)
	}
	return sc.order
}

// proxyHeaders are the response headers forwarded from node to client,
// copied individually (never by ranging over the header map) so the
// response byte stream is deterministic.
var proxyHeaders = [...]string{
	"Content-Type", "Content-Length", "X-Cache", "X-Cache-Shard", "X-Object-Size",
}

// tryNode proxies one attempt of method for key to node i, forwarding
// the node's response on success. A transport failure (connect, timeout)
// returns the error without touching the client connection, so the
// caller can fail over; any HTTP response from the node — including the
// node's own errors — counts as success and is forwarded verbatim.
func (rt *Router) tryNode(r *http.Request, sc *routeScope, i int, method string, key uint64, body []byte) error {
	rt.nodeRequests[i].Add(1)
	ctx := r.Context()
	if rt.cfg.NodeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.NodeTimeout)
		defer cancel()
	}
	sc.url = append(sc.url[:0], rt.cfg.Nodes[i]...)
	sc.url = append(sc.url, "/obj/"...)
	sc.url = strconv.AppendUint(sc.url, key, 10)
	if rq := r.URL.RawQuery; rq != "" {
		sc.url = append(sc.url, '?')
		sc.url = append(sc.url, rq...)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, string(sc.url), rd)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.nodeErrors[i].Add(1)
		rt.reg.Report(i, false)
		return err
	}
	defer resp.Body.Close()
	rt.reg.Report(i, true)

	h := sc.Header()
	for _, name := range proxyHeaders {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set("X-Route-Node", rt.cfg.Nodes[i])
	sc.WriteHeader(resp.StatusCode)
	io.CopyBuffer(sc, resp.Body, sc.buf)
	return nil
}

// fireAndForget issues a replica write (PUT/DELETE fan-out) whose
// response body is discarded; only transport failures count as errors.
func (rt *Router) fireAndForget(r *http.Request, sc *routeScope, i int, method string, key uint64, body []byte) {
	rt.nodeRequests[i].Add(1)
	ctx := r.Context()
	if rt.cfg.NodeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.NodeTimeout)
		defer cancel()
	}
	sc.url = append(sc.url[:0], rt.cfg.Nodes[i]...)
	sc.url = append(sc.url, "/obj/"...)
	sc.url = strconv.AppendUint(sc.url, key, 10)
	if rq := r.URL.RawQuery; rq != "" {
		sc.url = append(sc.url, '?')
		sc.url = append(sc.url, rq...)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, string(sc.url), rd)
	if err != nil {
		rt.replicaWriteErrors.Add(1)
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.nodeErrors[i].Add(1)
		rt.reg.Report(i, false)
		rt.replicaWriteErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.reg.Report(i, true)
}

// proxyWalk tries each candidate in order, skipping down nodes while an
// up one remains, failing over on transport errors, and answering 502
// when every attempt fails.
func (rt *Router) proxyWalk(r *http.Request, sc *routeScope, order []int, method string, key uint64, body []byte) {
	attempted := false
	var lastErr error
	for _, i := range order {
		if !rt.reg.Up(i) && rt.reg.UpCount() > 0 {
			continue
		}
		if attempted {
			rt.failovers.Add(1)
		}
		attempted = true
		if err := rt.tryNode(r, sc, i, method, key, body); err != nil {
			lastErr = err
			continue
		}
		return
	}
	if !attempted && len(order) > 0 {
		// Every node is marked down; try the owner anyway so the client
		// sees the real transport error, and so a revived node is
		// discovered even if the health loop is disabled.
		if err := rt.tryNode(r, sc, order[0], method, key, body); err == nil {
			return
		} else {
			lastErr = err
		}
	}
	rt.noNodeErrors.Add(1)
	if lastErr == nil {
		lastErr = fmt.Errorf("no nodes configured")
	}
	http.Error(sc, "route: no node reachable: "+lastErr.Error(), http.StatusBadGateway)
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	key, err := routeKey(r)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	rt.requestsByMethod[mGet].Add(1)
	sc := scopeOf(w)
	hot := false
	if rt.cfg.Replicate {
		hot = rt.hot.Observe(key)
		if hot {
			rt.replicatedReads.Add(1)
			sc.Header().Set("X-Route-Hot", "1")
		}
	}
	order := rt.candidates(sc, key, hot)
	rt.proxyWalk(r, sc, order, http.MethodGet, key, nil)
}

func (rt *Router) handlePut(w http.ResponseWriter, r *http.Request) {
	key, err := routeKey(r)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	rt.requestsByMethod[mPut].Add(1)
	sc := scopeOf(w)
	sc.body = sc.body[:0]
	lr := io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1)
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, rerr := lr.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			http.Error(w, "body: "+rerr.Error(), http.StatusBadRequest)
			return
		}
	}
	if int64(len(sc.body)) > rt.cfg.MaxBodyBytes {
		http.Error(w, "body exceeds router cap", http.StatusRequestEntityTooLarge)
		return
	}
	body := sc.body
	if len(body) == 0 {
		body = nil
	}

	hot := false
	if rt.cfg.Replicate {
		hot = rt.hot.Observe(key)
	}
	order := rt.candidates(sc, key, false)
	if hot {
		// Fan the write to the whole replica set so replicated reads
		// observe it wherever they land; the owner's response is the
		// client's response, replica outcomes are counted only.
		rep := rt.cfg.Replicas
		if rep > len(order) {
			rep = len(order)
		}
		rt.fanoutWrites.Add(1)
		for _, i := range order[1:rep] {
			if rt.reg.Up(i) {
				rt.fireAndForget(r, sc, i, http.MethodPut, key, body)
			}
		}
	}
	rt.proxyWalk(r, sc, order, http.MethodPut, key, body)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, err := routeKey(r)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	rt.requestsByMethod[mDelete].Add(1)
	sc := scopeOf(w)
	order := rt.candidates(sc, key, false)
	if rt.cfg.Replicate {
		// Invalidation must reach every node that may hold a copy: the
		// key may have been hot (and fanned out) at any point in the
		// past, so the whole replica set is invalidated regardless of
		// its current temperature.
		rep := rt.cfg.Replicas
		if rep > len(order) {
			rep = len(order)
		}
		rt.fanoutWrites.Add(1)
		for _, i := range order[1:rep] {
			if rt.reg.Up(i) {
				rt.fireAndForget(r, sc, i, http.MethodDelete, key, nil)
			}
		}
	}
	rt.proxyWalk(r, sc, order, http.MethodDelete, key, nil)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP scip_route_%s %s\n# TYPE scip_route_%s counter\nscip_route_%s %d\n",
			name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP scip_route_requests_total Object requests received, by method.\n")
	fmt.Fprintf(w, "# TYPE scip_route_requests_total counter\n")
	for i, m := range [...]string{"get", "put", "delete"} {
		fmt.Fprintf(w, "scip_route_requests_total{method=%q} %d\n", m, rt.requestsByMethod[i].Load())
	}
	fmt.Fprintf(w, "# HELP scip_route_http_responses_total HTTP responses by status class.\n")
	fmt.Fprintf(w, "# TYPE scip_route_http_responses_total counter\n")
	for class := 1; class <= 5; class++ {
		fmt.Fprintf(w, "scip_route_http_responses_total{class=\"%dxx\"} %d\n",
			class, rt.responsesByClass[class].Load())
	}
	fmt.Fprintf(w, "# HELP scip_route_node_requests_total Proxy attempts per node.\n")
	fmt.Fprintf(w, "# TYPE scip_route_node_requests_total counter\n")
	for i, n := range rt.cfg.Nodes {
		fmt.Fprintf(w, "scip_route_node_requests_total{node=%q} %d\n", n, rt.nodeRequests[i].Load())
	}
	fmt.Fprintf(w, "# HELP scip_route_node_errors_total Transport failures per node.\n")
	fmt.Fprintf(w, "# TYPE scip_route_node_errors_total counter\n")
	for i, n := range rt.cfg.Nodes {
		fmt.Fprintf(w, "scip_route_node_errors_total{node=%q} %d\n", n, rt.nodeErrors[i].Load())
	}
	fmt.Fprintf(w, "# HELP scip_route_node_up Node health (1 = up, 0 = down).\n")
	fmt.Fprintf(w, "# TYPE scip_route_node_up gauge\n")
	for i, n := range rt.cfg.Nodes {
		up := 0
		if rt.reg.Up(i) {
			up = 1
		}
		fmt.Fprintf(w, "scip_route_node_up{node=%q} %d\n", n, up)
	}
	counter("failovers_total", "Requests retried on a ring successor after a node failure.", rt.failovers.Load())
	counter("unroutable_total", "Requests that exhausted every candidate node.", rt.noNodeErrors.Load())
	counter("replicated_reads_total", "Hot-key reads load-balanced across a replica set.", rt.replicatedReads.Load())
	counter("fanout_writes_total", "Writes/invalidations fanned to a replica set.", rt.fanoutWrites.Load())
	counter("replica_write_errors_total", "Failed replica-side fan-out writes.", rt.replicaWriteErrors.Load())
	fmt.Fprintf(w, "# HELP scip_route_hot_keys Current hot-set size.\n# TYPE scip_route_hot_keys gauge\nscip_route_hot_keys %d\n",
		rt.hot.Len())
	fmt.Fprintf(w, "# HELP scip_route_inflight_requests Requests currently being routed.\n# TYPE scip_route_inflight_requests gauge\nscip_route_inflight_requests %d\n",
		rt.inflight.Load())
	fmt.Fprintf(w, "# HELP scip_route_uptime_seconds Seconds since the router started.\n# TYPE scip_route_uptime_seconds gauge\nscip_route_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(rt.start).Seconds(), 'f', 3, 64)) //scip:wallclock-ok uptime gauge for /metrics, never a routing input
	buckets, sum := rt.lat.Snapshot()
	stats.WriteHistogramPrometheus(w, "scip_route_proxy_latency_seconds",
		"End-to-end routed request latency.", buckets, sum)
}

func (rt *Router) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "scip-route: %d nodes, %d vnodes/node, replicas=%d replicate=%v\n",
		len(rt.cfg.Nodes), rt.cfg.VNodes, rt.cfg.Replicas, rt.cfg.Replicate)
	fmt.Fprintf(w, "uptime:     %s\n", time.Since(rt.start).Round(time.Second)) //scip:wallclock-ok uptime line for /statusz, never a routing input
	var reqs int64
	for i := range rt.requestsByMethod {
		reqs += rt.requestsByMethod[i].Load()
	}
	fmt.Fprintf(w, "requests:   %d (failovers %d, unroutable %d, inflight %d)\n",
		reqs, rt.failovers.Load(), rt.noNodeErrors.Load(), rt.inflight.Load())
	fmt.Fprintf(w, "hot keys:   %d/%d tracked (min estimate %d); %d replicated reads, %d fan-out writes\n",
		rt.hot.Len(), rt.cfg.HotK, rt.cfg.HotMin, rt.replicatedReads.Load(), rt.fanoutWrites.Load())
	for i, n := range rt.cfg.Nodes {
		state := "up"
		if !rt.reg.Up(i) {
			state = "DOWN"
		}
		fmt.Fprintf(w, "node %d:     %s  %s  %d reqs, %d errors, %d probes\n",
			i, state, n, rt.nodeRequests[i].Load(), rt.nodeErrors[i].Load(), rt.reg.Probes(i))
	}
}

// Serve accepts connections on l until ctx is cancelled, running the
// background health loop alongside, then shuts down gracefully: the
// listener closes immediately, in-flight requests drain for up to the
// drain timeout (0 = wait indefinitely). Same contract as server.Serve
// so the two binaries wire identically.
func (rt *Router) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go rt.reg.Watch(hctx, rt.cfg.HealthInterval)
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

// ListenAndServe resolves addr and calls Serve. ready, when non-nil,
// receives the bound address once the listener is up.
func (rt *Router) ListenAndServe(ctx context.Context, addr string, drain time.Duration, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return rt.Serve(ctx, l, drain)
}
