package cluster

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSketchOverCountsOnly pins the count-min bias: an estimate may
// exceed the true count (collisions add) but never undershoot it.
func TestSketchOverCountsOnly(t *testing.T) {
	s := NewSketch(256)
	truth := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(500))
		truth[key]++
		if est := s.Observe(key); est < truth[key] {
			t.Fatalf("key %d: estimate %d below true count %d", key, est, truth[key])
		}
	}
	for key, n := range truth {
		if est := s.Estimate(key); est < n {
			t.Fatalf("key %d: final estimate %d below true count %d", key, est, n)
		}
	}
}

// TestSketchDeterminism pins that counters are a pure function of the
// observation multiset: the same stream in two different orders yields
// identical estimates (each counter is a sum of increments).
func TestSketchDeterminism(t *testing.T) {
	keys := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = uint64(rng.Intn(200))
	}
	a, b := NewSketch(512), NewSketch(512)
	for _, k := range keys {
		a.Observe(k)
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		b.Observe(k)
	}
	for key := uint64(0); key < 200; key++ {
		if a.Estimate(key) != b.Estimate(key) {
			t.Fatalf("key %d: order-dependent estimate (%d vs %d)", key, a.Estimate(key), b.Estimate(key))
		}
	}
}

// TestSketchConcurrentConservation hammers one sketch from many
// goroutines under -race: afterwards every key's estimate must cover the
// exact number of observations made for it.
func TestSketchConcurrentConservation(t *testing.T) {
	s := NewSketch(1024)
	const (
		workers = 8
		perKey  = 500
		keys    = 32
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				for k := uint64(0); k < keys; k++ {
					s.Observe(k)
				}
			}
		}(w)
	}
	wg.Wait()
	for k := uint64(0); k < keys; k++ {
		if est := s.Estimate(k); est < workers*perKey {
			t.Errorf("key %d: estimate %d below the %d observations made", k, est, workers*perKey)
		}
	}
}

// TestHotKeysMinGate pins the admission threshold: a key below min never
// enters the hot set, the first observation at min does.
func TestHotKeysMinGate(t *testing.T) {
	h := NewHotKeys(4, 10, 256)
	for i := 0; i < 9; i++ {
		if h.Observe(77) {
			t.Fatalf("key hot after %d observations (min 10)", i+1)
		}
	}
	if !h.Observe(77) {
		t.Fatal("key not hot at the min estimate")
	}
	if !h.Hot(77) || h.Len() != 1 {
		t.Fatalf("hot set %v after admission", h.Members())
	}
	if h.Hot(78) {
		t.Error("unobserved key reported hot")
	}
}

// TestHotKeysDisplacement pins the top-k contract: with k slots, the k
// highest-frequency keys end up as the members and the coldest incumbent
// is the one displaced.
func TestHotKeysDisplacement(t *testing.T) {
	h := NewHotKeys(2, 2, 256)
	observe := func(key uint64, n int) {
		for i := 0; i < n; i++ {
			h.Observe(key)
		}
	}
	observe(1, 5) // hot
	observe(2, 3) // hot (fills the set)
	observe(3, 4) // outranks key 2, displaces it
	if !h.Hot(1) || !h.Hot(3) || h.Hot(2) {
		t.Fatalf("hot set %v, want [1 3]", h.Members())
	}
	// A tie must keep the incumbent.
	observe(4, 4)
	if h.Hot(4) {
		t.Errorf("tying candidate displaced an incumbent; set %v", h.Members())
	}
}

// TestHotKeysDeterminism pins that a sequential observation stream
// reproduces the exact same hot set on every run — the property the
// slice-scanned member set (deterministic tie-breaking) exists for.
func TestHotKeysDeterminism(t *testing.T) {
	stream := make([]uint64, 30000)
	rng := rand.New(rand.NewSource(11))
	for i := range stream {
		stream[i] = uint64(rng.Intn(100))
	}
	run := func() []uint64 {
		h := NewHotKeys(8, 16, 512)
		for _, k := range stream {
			h.Observe(k)
		}
		return h.Members()
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("stream produced no hot keys")
	}
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d produced %v, first run %v", i+2, got, first)
		}
	}
}

// TestHotKeysConcurrent exercises the tracker under -race; membership
// is timing-dependent here, so only invariants are asserted.
func TestHotKeysConcurrent(t *testing.T) {
	h := NewHotKeys(4, 8, 512)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(uint64(i % 16))
			}
		}(w)
	}
	wg.Wait()
	if n := h.Len(); n > 4 {
		t.Errorf("hot set overflowed k: %d members", n)
	}
	if n := len(h.Members()); n == 0 {
		t.Error("no key went hot despite heavy repetition")
	}
}
