package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/server"
	"github.com/scip-cache/scip/internal/stats"
	"github.com/scip-cache/scip/internal/trace"
)

// The cluster acceptance tests spin a real fleet on loopback: scip-serve
// instances behind a scip-route router, replaying a generated CDN-T
// trace over HTTP. Leg 1 (TestClusterEquivalenceMatchesSingleNode) pins
// that routing is a pure partition of the trace — every node's shard
// counters are byte-identical to a serial single-node replay of its ring
// partition. Leg 2 (TestClusterPeerFillConvertsOriginFills) pins that
// peer-fill is invisible to policy decisions: enabling it converts
// origin fills into peer fills and changes not one policy counter.

const (
	e2eScale  = 0.0002
	e2eSeed   = 7
	e2eShards = 4
)

// fleetNode is one in-process scip-serve instance serving on loopback.
type fleetNode struct {
	srv    *server.Server
	url    string
	cancel context.CancelFunc
	done   chan error
}

// startFleetNode serves cfg on a fresh loopback listener. When l is nil
// a listener is opened; passing one lets callers fix the URL (and hence
// the ring identity) before the server exists.
func startFleetNode(t *testing.T, cfg server.Config, l net.Listener) *fleetNode {
	t.Helper()
	if l == nil {
		var err error
		l, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &fleetNode{
		srv:    s,
		url:    "http://" + l.Addr().String(),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { n.done <- s.Serve(ctx, l, 10*time.Second) }()
	t.Cleanup(func() {
		n.stop(t)
		s.Close()
	})
	return n
}

func (n *fleetNode) stop(t *testing.T) {
	t.Helper()
	n.cancel()
	select {
	case err := <-n.done:
		if err != nil {
			t.Errorf("node %s: Serve returned %v", n.url, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("node %s did not shut down", n.url)
	}
	n.done <- nil // keep stop idempotent for the Cleanup call
}

// startRouter serves a router over the given node URLs on loopback and
// returns its address plus a shutdown func.
func startRouter(t *testing.T, nodes []string) (addr string, shutdown func()) {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Nodes: nodes, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- rt.ListenAndServe(ctx, "127.0.0.1:0", 10*time.Second, ready) }()
	select {
	case a := <-ready:
		addr = a.String()
	case err := <-done:
		cancel()
		t.Fatalf("router listen: %v", err)
	}
	var once sync.Once
	shutdown = func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("router Serve returned %v", err)
			}
		})
	}
	t.Cleanup(shutdown)
	return addr, shutdown
}

func e2eGet(client *http.Client, addr string, req cache.Request) error {
	url := fmt.Sprintf("http://%s/obj/%d?size=%d&t=%d", addr, req.Key, req.Size, req.Time)
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// TestClusterEquivalenceMatchesSingleNode is leg 1, the correctness
// anchor: a concurrent replay through the router (clients partitioned by
// (node, shard), per-partition order = trace order, replication and
// peer-fill off) leaves every fleet node with shard counters
// byte-identical to a serial single-node replay of the trace filtered to
// that node's ring partition.
func TestClusterEquivalenceMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e replay is seconds-long; skipped with -short")
	}
	const clients = 4
	tr, err := gen.Generate(gen.CDNT.Config(e2eScale, e2eSeed))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, e2eScale)

	fleet := make([]*fleetNode, 3)
	urls := make([]string, 3)
	for i := range fleet {
		fleet[i] = startFleetNode(t, server.Config{
			Policy:     "SCIP",
			CacheBytes: capBytes,
			Shards:     e2eShards,
			Seed:       e2eSeed,
			Origin:     &server.SyntheticOrigin{MaxBody: 64},
		}, nil)
		urls[i] = fleet[i].url
	}
	addr, shutdownRouter := startRouter(t, urls)
	ring, err := NewRing(urls, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Client c owns the (node, shard) lanes with lane % clients == c and
	// replays them sequentially in trace order — the same partitioning
	// scip-load uses, lifted to the fleet.
	laneOf := make([]int, len(tr.Requests))
	nodeOf := make([]int, len(tr.Requests))
	for i, req := range tr.Requests {
		n := ring.Lookup(req.Key)
		nodeOf[i] = n
		laneOf[i] = n*e2eShards + fleet[n].srv.Cache().ShardIndex(req.Key)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, req := range tr.Requests {
				if laneOf[i]%clients != c {
					continue
				}
				if err := e2eGet(client, addr, req); err != nil {
					errc <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	shutdownRouter()

	for n, node := range fleet {
		got := node.srv.Stats().Snapshot()
		ref, err := server.BuildSharded("SCIP", capBytes, e2eShards, e2eSeed)
		if err != nil {
			t.Fatal(err)
		}
		st := ref.EnableStats()
		var part int
		for i, req := range tr.Requests {
			if nodeOf[i] == n {
				ref.Access(req)
				part++
			}
		}
		want := st.Snapshot()
		ref.Close()
		for s := 0; s < e2eShards; s++ {
			if want.Shards[s] != got.Shards[s] {
				t.Errorf("node %d shard %d diverged:\n  single-node: %+v\n  fleet:       %+v",
					n, s, want.Shards[s], got.Shards[s])
			}
		}
		if !t.Failed() {
			t.Logf("node %d: %d requests, byte-identical (miss=%.4f)", n, part, got.MissRatio())
		}
	}
}

// scrapeCounter fetches one single-value counter family from a node's
// /metrics exposition.
func scrapeCounter(t *testing.T, client *http.Client, baseURL, family string) int64 {
	t.Helper()
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, family+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("%s: bad sample %q", family, line)
			}
			// Drain so the connection is reusable.
			for sc.Scan() {
			}
			return v
		}
	}
	t.Fatalf("family %s not found in %s/metrics", family, baseURL)
	return 0
}

// reservePorts picks n free loopback addresses: bind, record, release.
// Leg 2 runs its scenario twice and the ring hashes node URLs, so both
// runs must serve on the identical addresses to partition the trace the
// same way. The released ports are rebound immediately; SO_REUSEADDR
// (set by net.Listen on Unix) makes the rebind safe against lingering
// TIME_WAIT connections.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// peerFillRun is one full two-phase fleet scenario of leg 2: phase 1
// routes a trace prefix over nodes {A, B}; the router is then replaced
// by one that also knows C (a stateless reconfigure), and the suffix
// replays over all three. Keys that migrate to C warm from their old
// owner when peer-fill is on. Returns every node's policy snapshot plus
// the fleet totals of origin fetches and peer fills.
func peerFillRun(t *testing.T, tr *trace.Trace, capBytes int64, addrs []string, peerFill bool) (snaps []stats.Snapshot, originFetches, peerFills int64) {
	t.Helper()
	// Listeners first: the ring identities (URLs) must exist before the
	// servers, because each node's peer client needs the full list.
	listeners := make([]net.Listener, len(addrs))
	urls := make([]string, len(addrs))
	for i, addr := range addrs {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	fleet := make([]*fleetNode, len(addrs))
	for i := range fleet {
		cfg := server.Config{
			Policy:     "SCIP",
			CacheBytes: capBytes,
			Shards:     e2eShards,
			Seed:       e2eSeed,
			Origin:     &server.SyntheticOrigin{MaxBody: 64},
		}
		if peerFill {
			pc, err := NewPeerClient(urls, urls[i], 64, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			cfg.PeerFill = pc
		}
		fleet[i] = startFleetNode(t, cfg, listeners[i])
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	half := len(tr.Requests) / 2

	// Phase 1: two-node fleet; C runs but receives no routed traffic.
	addr, shutdown := startRouter(t, urls[:2])
	for _, req := range tr.Requests[:half] {
		if err := e2eGet(client, addr, req); err != nil {
			t.Fatal(err)
		}
	}
	shutdown()

	// Phase 2: the ring grows to three nodes — a new stateless router.
	addr, shutdown = startRouter(t, urls)
	for _, req := range tr.Requests[half:] {
		if err := e2eGet(client, addr, req); err != nil {
			t.Fatal(err)
		}
	}
	shutdown()

	for _, n := range fleet {
		snaps = append(snaps, n.srv.Stats().Snapshot())
		originFetches += scrapeCounter(t, client, n.url, "scip_server_origin_fetches_total")
		peerFills += scrapeCounter(t, client, n.url, "scip_server_peer_fills_total")
		n.stop(t)
	}
	return snaps, originFetches, peerFills
}

// TestClusterPeerFillConvertsOriginFills is leg 2: running the identical
// two-phase grow-the-fleet scenario with peer-fill on and off must leave
// every node's policy counters byte-identical — peer fill only changes
// where bodies come from (origin fetches become peer fills), never what
// any policy decides.
func TestClusterPeerFillConvertsOriginFills(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e replay is seconds-long; skipped with -short")
	}
	tr, err := gen.Generate(gen.CDNT.Config(e2eScale, e2eSeed))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, e2eScale)

	addrs := reservePorts(t, 3)
	offSnaps, offOrigin, offPeer := peerFillRun(t, tr, capBytes, addrs, false)
	onSnaps, onOrigin, onPeer := peerFillRun(t, tr, capBytes, addrs, true)

	if offPeer != 0 {
		t.Errorf("peer fills with peer-fill off: %d", offPeer)
	}
	if onPeer == 0 {
		t.Error("no peer fills despite migrated keys and warm old owners")
	}
	if onOrigin >= offOrigin {
		t.Errorf("origin fetches did not drop: %d with peer-fill vs %d without", onOrigin, offOrigin)
	}
	for n := range offSnaps {
		for s := 0; s < e2eShards; s++ {
			if offSnaps[n].Shards[s] != onSnaps[n].Shards[s] {
				t.Errorf("node %d shard %d policy counters diverged under peer-fill:\n  off: %+v\n  on:  %+v",
					n, s, offSnaps[n].Shards[s], onSnaps[n].Shards[s])
			}
		}
	}
	if !t.Failed() {
		t.Logf("policy streams identical; %d origin fetches became %d (%d peer fills)",
			offOrigin, onOrigin, onPeer)
	}
}
