// Package mab implements the Multi-Armed-Bandit primitives SCIP is built
// from: a two-expert weight vector with multiplicative decay updates
// (the ω_m / ω_l probabilities of Algorithm 1) and the adaptive learning
// rate of Algorithm 2 (gradient-based stochastic hill climbing with random
// restarts).
package mab
