package mab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoExpertInit(t *testing.T) {
	e := NewTwoExpert(0.7)
	if e.Weight(0) != 0.7 || math.Abs(e.Weight(1)-0.3) > 1e-12 {
		t.Fatalf("weights = %g,%g", e.Weight(0), e.Weight(1))
	}
	if c := NewTwoExpert(2); c.Weight(0) != 1 {
		t.Fatal("clamping to 1 failed")
	}
	if c := NewTwoExpert(-1); c.Weight(0) != 0 {
		t.Fatal("clamping to 0 failed")
	}
}

func TestTwoExpertSelect(t *testing.T) {
	e := NewTwoExpert(0.5)
	if e.Select(0.4) != 0 {
		t.Fatal("u below w0 should pick expert 0")
	}
	if e.Select(0.5) != 1 {
		t.Fatal("u at w0 should pick expert 1")
	}
	if e.Select(0.99) != 1 {
		t.Fatal("u near 1 should pick expert 1")
	}
}

func TestTwoExpertDecayDirection(t *testing.T) {
	e := NewTwoExpert(0.5)
	e.Decay(0, 0.5) // penalise expert 0
	if e.Weight(0) >= 0.5 {
		t.Fatalf("decayed weight did not drop: %g", e.Weight(0))
	}
	if math.Abs(e.Weight(0)+e.Weight(1)-1) > 1e-12 {
		t.Fatalf("weights not normalised: sum=%g", e.Weight(0)+e.Weight(1))
	}
	before := e.Weight(1)
	e.Decay(1, 0.5)
	if e.Weight(1) >= before {
		t.Fatal("penalising expert 1 did not drop its weight")
	}
}

// Property: after any sequence of decays, the weights stay normalised and
// within (0,1).
func TestTwoExpertNormalisationProperty(t *testing.T) {
	f := func(arms []bool, lambdas []float64) bool {
		e := NewTwoExpert(0.5)
		n := len(arms)
		if len(lambdas) < n {
			n = len(lambdas)
		}
		for i := 0; i < n; i++ {
			arm := 0
			if arms[i] {
				arm = 1
			}
			l := math.Abs(lambdas[i])
			l = math.Mod(l, 1) // keep λ in [0,1)
			e.Decay(arm, l)
			sum := e.Weight(0) + e.Weight(1)
			if math.Abs(sum-1) > 1e-9 || e.Weight(0) < 0 || e.Weight(1) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoExpertRepeatedDecayConverges(t *testing.T) {
	e := NewTwoExpert(0.5)
	for i := 0; i < 200; i++ {
		e.Decay(0, 0.3)
	}
	if e.Weight(0) > 0.01 {
		t.Fatalf("persistent penalty did not converge: w0=%g", e.Weight(0))
	}
	e.Reset(0.5)
	if e.Weight(0) != 0.5 {
		t.Fatal("Reset failed")
	}
}

func TestAdaptiveRateFirstUpdateIsBaseline(t *testing.T) {
	a := NewAdaptiveRate(nil)
	l0 := a.Lambda
	if got := a.Update(0.5); got != l0 {
		t.Fatalf("first update changed λ: %g -> %g", l0, got)
	}
}

func TestAdaptiveRateAmplifiesOnImprovement(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.50)
	// λ rose (0.27→0.3 baseline δ=0.03); hit rate improves → λ should grow.
	l1 := a.Update(0.60)
	if l1 <= 0.3 {
		t.Fatalf("λ did not grow on improvement: %g", l1)
	}
	if l1 > a.Max {
		t.Fatalf("λ above Max: %g", l1)
	}
}

func TestAdaptiveRateShrinksOnDegradation(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.60)
	l1 := a.Update(0.40) // hit rate fell while λ rose → shrink
	if l1 >= 0.3 {
		t.Fatalf("λ did not shrink on degradation: %g", l1)
	}
	if l1 < a.Min {
		t.Fatalf("λ below Min: %g", l1)
	}
}

func TestAdaptiveRateClamps(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.1)
	for i := 0; i < 50; i++ {
		a.Update(0.1 + float64(i+1)*0.01) // persistent improvement
	}
	if a.Lambda > a.Max {
		t.Fatalf("λ exceeded Max: %g", a.Lambda)
	}
	b := NewAdaptiveRate(nil)
	b.Update(0.9)
	for i := 0; i < 50; i++ {
		b.Update(0.9 - float64(i+1)*0.01)
	}
	if b.Lambda < b.Min {
		t.Fatalf("λ under Min: %g", b.Lambda)
	}
}

// TestAdaptiveRateProbeUnfreezes is the regression test for the λ-freeze
// bug: once newLambda == Lambda for a single interval, δ_t is 0 forever and
// the old code never moved λ again (the random restart could not fire while
// the hit rate was non-degrading). The probe step must unstick λ on the
// very next update.
func TestAdaptiveRateProbeUnfreezes(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.5)
	a.prevLambda = a.Lambda // δ = 0: the frozen state
	before := a.Lambda
	l := a.Update(0.6) // improving, so no restart path can help
	if l == before {
		t.Fatalf("λ frozen at %g despite δ=0 (probe did not fire)", l)
	}
	if a.Lambda < a.Min || a.Lambda > a.Max {
		t.Fatalf("probe pushed λ out of bounds: %g", a.Lambda)
	}
	// The probe must re-establish a finite difference: the following
	// update has δ != 0 and hill-climbs normally.
	if a.Lambda == a.prevLambda {
		t.Fatal("probe did not re-seed δ for the next interval")
	}
}

// TestAdaptiveRateProbeAlternates: under pure stagnation (δ repeatedly
// forced to 0) the deterministic probe alternates direction instead of
// creeping monotonically toward a bound.
func TestAdaptiveRateProbeAlternates(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.5)
	var deltas []float64
	for i := 0; i < 4; i++ {
		a.prevLambda = a.Lambda // force δ = 0 each interval
		before := a.Lambda
		a.Update(0.5)
		deltas = append(deltas, a.Lambda-before)
	}
	for i, d := range deltas {
		if d == 0 {
			t.Fatalf("probe %d did not move λ", i)
		}
		if i > 0 && (d > 0) == (deltas[i-1] > 0) {
			t.Fatalf("probes %d and %d moved the same direction: %v", i-1, i, deltas)
		}
	}
}

// TestAdaptiveRateEqualHitRateIsNotDegradation is the regression test for
// the restart counter: a merely equal hit rate (Δ == 0) must not advance
// unlearnCount — the old `delta <= 0` check random-restarted a perfectly
// stable cache every RestartAfter intervals.
func TestAdaptiveRateEqualHitRateIsNotDegradation(t *testing.T) {
	a := NewAdaptiveRate(nil)
	a.Update(0.5)
	for i := 0; i < a.RestartAfter/2; i++ {
		a.Update(0.5) // Δ = 0 every interval
	}
	if a.unlearn != 0 {
		t.Fatalf("unlearn = %d after equal-hit-rate intervals, want 0", a.unlearn)
	}
}

// TestAdaptiveRateRestartAfterStrictDecreases: RestartAfter consecutive
// strictly degrading intervals trigger a restart (midpoint with nil Rand).
func TestAdaptiveRateRestartAfterStrictDecreases(t *testing.T) {
	a := NewAdaptiveRate(nil)
	hr := 0.9
	a.Update(hr)
	for i := 0; i < a.RestartAfter-1; i++ {
		hr -= 0.01
		a.Update(hr)
	}
	if a.unlearn != a.RestartAfter-1 {
		t.Fatalf("unlearn = %d, want %d", a.unlearn, a.RestartAfter-1)
	}
	hr -= 0.01
	a.Update(hr) // the RestartAfter-th strict decrease fires the restart
	mid := (a.Min + a.Max) / 2
	if a.Lambda != mid {
		t.Fatalf("nil-rand restart should land on midpoint %g, got %g", mid, a.Lambda)
	}
	if a.unlearn != 0 {
		t.Fatalf("unlearn = %d after restart, want 0", a.unlearn)
	}
}

func TestAdaptiveRateRandomRestartInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAdaptiveRate(rng.Float64)
	hr := 0.9
	a.Update(hr)
	for i := 0; i < a.RestartAfter; i++ {
		hr -= 0.01
		a.Update(hr)
	}
	if a.unlearn != 0 {
		t.Fatalf("restart did not fire: unlearn = %d", a.unlearn)
	}
	if a.Lambda < a.Min || a.Lambda > a.Max {
		t.Fatalf("restart λ out of bounds: %g", a.Lambda)
	}
}

func TestAdaptiveRateStagnationCounterResets(t *testing.T) {
	a := NewAdaptiveRate(nil)
	hr := 0.9
	a.Update(hr)
	for i := 0; i < 5; i++ {
		hr -= 0.01
		a.Update(hr) // strict decreases advance the counter
	}
	if a.unlearn != 5 {
		t.Fatalf("unlearn = %d, want 5", a.unlearn)
	}
	a.Update(hr + 0.05) // an improving interval resets it
	if a.unlearn != 0 {
		t.Fatalf("unlearn not reset on improvement: %d", a.unlearn)
	}
}

// Property: λ always stays within [Min, Max] for arbitrary hit sequences.
func TestAdaptiveRateBoundsProperty(t *testing.T) {
	f := func(hits []float64) bool {
		rng := rand.New(rand.NewSource(9))
		a := NewAdaptiveRate(rng.Float64)
		for _, h := range hits {
			h = math.Abs(math.Mod(h, 1))
			a.Update(h)
			if a.Lambda < a.Min-1e-12 || a.Lambda > a.Max+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
