package mab

import "math"

// TwoExpert holds the execution probabilities of two experts. For SCIP,
// expert 0 is the MRU insertion policy (MIP, ω_m) and expert 1 the LRU
// insertion policy (LIP, ω_l). The weights always sum to 1.
type TwoExpert struct {
	w [2]float64
}

// NewTwoExpert returns experts with the given initial weight for expert 0;
// expert 1 receives the complement. w0 is clamped to [0, 1].
func NewTwoExpert(w0 float64) *TwoExpert {
	w0 = math.Min(1, math.Max(0, w0))
	return &TwoExpert{w: [2]float64{w0, 1 - w0}}
}

// Weight returns the probability of the given expert (0 or 1).
func (t *TwoExpert) Weight(arm int) float64 { return t.w[arm] }

// Select picks an expert using the uniform variate u ∈ [0,1): expert 0
// when ω_0 > u, otherwise expert 1 (Algorithm 1, SELECT).
func (t *TwoExpert) Select(u float64) int {
	if t.w[0] > u {
		return 0
	}
	return 1
}

// WeightFloor is the exploration floor: neither expert's probability may
// fall below it. Without a floor the multiplicative update absorbs at
// ω = 0/1 and can never recover (the zero weight stays zero under
// normalisation); the floor plays the role BIP's residual bimodality plays
// in the paper — "suspected ZROs and P-ZROs are given a chance to be
// accessed".
const WeightFloor = 0.01

// Decay applies ω_arm ← ω_arm · e^{−λ} followed by normalisation so the
// weights again sum to 1 (Algorithm 1 lines 8–13), then clamps both
// weights to [WeightFloor, 1−WeightFloor]. Decaying one expert is how SCIP
// penalises the position whose history list produced the hit.
func (t *TwoExpert) Decay(arm int, lambda float64) {
	t.w[arm] *= math.Exp(-lambda)
	sum := t.w[0] + t.w[1]
	if sum <= 0 {
		t.w[0], t.w[1] = 0.5, 0.5
		return
	}
	w0 := t.w[0] / sum
	if w0 < WeightFloor {
		w0 = WeightFloor
	}
	if w0 > 1-WeightFloor {
		w0 = 1 - WeightFloor
	}
	t.w[0] = w0
	t.w[1] = 1 - w0
}

// Reset restores the given initial weight for expert 0.
func (t *TwoExpert) Reset(w0 float64) { *t = *NewTwoExpert(w0) }

// AdaptiveRate is the learning-rate controller of Algorithm 2. Update is
// called once per learning interval with the interval's average hit rate
// Π_t; it adjusts λ by the quotient of the hit-rate change and the
// previous λ change (a stochastic hill-climbing step), and performs a
// random restart after RestartAfter consecutive non-improving stagnant
// intervals.
type AdaptiveRate struct {
	// Lambda is λ_{t−i}, the rate currently in force.
	Lambda float64
	// Min and Max clamp λ (paper: 0.001 and 1).
	Min, Max float64
	// RestartAfter is the unlearnCount threshold (paper: 10).
	RestartAfter int
	// Rand supplies uniform variates in [0,1) for random restarts.
	Rand func() float64

	prevLambda  float64 // λ_{t−2i}
	prevHitRate float64 // Π_{t−i}
	unlearn     int
	initialized bool
	probeUp     bool // direction of the next deterministic probe
}

// ProbeFrac is the relative step applied to λ when the hill climber has no
// gradient to follow (δ_t == 0). Without it the controller freezes: once
// newLambda == Lambda for a single interval, δ stays 0 forever and only a
// random restart could unstick λ. The probe re-seeds the finite
// difference deterministically, alternating direction so λ does not creep
// toward a bound under pure stagnation.
const ProbeFrac = 0.05

// NewAdaptiveRate returns a controller with the paper's defaults except
// for the λ floor: the paper's 0.001 effectively freezes all weight
// adaptation when the hill climber wanders to the bound (the gradient of
// the interval hit rate with respect to λ is noise-dominated), so the
// floor is raised to keep the bandit responsive; the ablation benchmark
// compares both.
// rand may be nil, in which case restarts reset λ to its midpoint.
func NewAdaptiveRate(rand func() float64) *AdaptiveRate {
	return &AdaptiveRate{
		Lambda:       0.3,
		Min:          0.05,
		Max:          1,
		RestartAfter: 10,
		Rand:         rand,
		// Seed λ_{t−2i} slightly away from λ₀ so the first update has a
		// non-zero δ and hill climbing starts immediately.
		prevLambda: 0.3 * 0.9,
	}
}

// Update consumes the hit rate Π_t of the interval that just ended and
// computes λ_t per Algorithm 2. It returns the new λ.
func (a *AdaptiveRate) Update(hitRate float64) float64 {
	if !a.initialized {
		// First interval: record the baseline; keep λ as-is.
		a.initialized = true
		a.prevHitRate = hitRate
		return a.Lambda
	}
	delta := hitRate - a.prevHitRate   // Δ_t
	dLambda := a.Lambda - a.prevLambda // δ_t
	newLambda := a.Lambda
	if dLambda != 0 {
		// Clip the quotient so one noisy interval cannot slam λ to a
		// bound (δ_t shrinks as λ converges, which makes the raw
		// quotient explode).
		ratio := delta / dLambda
		if ratio > 1 {
			ratio = 1
		}
		if ratio < -1 {
			ratio = -1
		}
		if ratio > 0 {
			newLambda = math.Min(a.Lambda+a.Lambda*ratio, a.Max)
		} else {
			newLambda = math.Max(a.Lambda+a.Lambda*ratio, a.Min)
		}
	} else {
		// No gradient to follow: probe. A zero δ would otherwise
		// propagate forever (λ_t == λ_{t−i} ⇒ δ_{t+i} == 0).
		newLambda = a.probe()
	}
	// Random restart after RestartAfter consecutive strictly degrading
	// intervals ("if the performance keeps degrading, we reset the
	// learning rate", Algorithm 2 lines 10–15). A merely equal hit rate
	// is stagnation, not degradation — the probe handles it — so only
	// strict decreases (or a dead cache, Π_t == 0) advance the counter.
	if hitRate == 0 || delta < 0 {
		a.unlearn++
		if a.unlearn >= a.RestartAfter {
			a.unlearn = 0
			newLambda = a.restartValue()
		}
	} else {
		a.unlearn = 0
	}
	a.prevLambda = a.Lambda
	a.Lambda = newLambda
	a.prevHitRate = hitRate
	return a.Lambda
}

// probe returns λ nudged by ±ProbeFrac, alternating direction each call
// and bouncing off the [Min, Max] bounds, so a stalled climber always
// re-establishes a non-zero δ for the next interval's finite difference.
func (a *AdaptiveRate) probe() float64 {
	step := a.Lambda * ProbeFrac
	if step == 0 {
		step = ProbeFrac * a.Min
	}
	up := a.probeUp
	a.probeUp = !a.probeUp
	if up {
		if next := a.Lambda + step; next <= a.Max {
			return next
		}
		return math.Max(a.Lambda-step, a.Min)
	}
	if next := a.Lambda - step; next >= a.Min {
		return next
	}
	return math.Min(a.Lambda+step, a.Max)
}

func (a *AdaptiveRate) restartValue() float64 {
	if a.Rand == nil {
		return (a.Min + a.Max) / 2
	}
	return a.Min + a.Rand()*(a.Max-a.Min) //scip:alloc-ok Rand is a seeded math/rand closure (allocation-free Float64)
}
