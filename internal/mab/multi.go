package mab

import "math"

// MultiExpert generalises TwoExpert to n ≥ 1 experts: a probability
// vector updated by multiplicative (Hedge) decay and renormalisation.
// The scorer pipeline uses one arm per admission scorer and decays each
// arm by λ × its observed loss, which is exactly the TwoExpert update
// with the two-arm complement replaced by an n-arm simplex projection.
type MultiExpert struct {
	w []float64
}

// NewMultiExpert returns experts initialised to the given weights,
// normalised to sum to 1. Negative weights are clamped to 0. A nil or
// all-zero init yields the uniform distribution.
func NewMultiExpert(init []float64) *MultiExpert {
	m := &MultiExpert{w: make([]float64, len(init))}
	copy(m.w, init)
	m.normalize()
	return m
}

// N returns the number of experts.
func (m *MultiExpert) N() int { return len(m.w) }

// Weight returns the probability of expert arm.
func (m *MultiExpert) Weight(arm int) float64 { return m.w[arm] }

// Weights returns the live weight vector; callers must not mutate it.
func (m *MultiExpert) Weights() []float64 { return m.w }

// Decay applies ω_arm ← ω_arm · e^{−λ} followed by renormalisation, the
// n-arm form of TwoExpert.Decay. As there, the per-event decay should be
// λ × loss with loss ∈ [0, 1]. With a single expert the update is inert:
// the weight renormalises back to exactly 1, so a one-scorer pipeline is
// provably unaffected by tuning (the monolith-equivalence invariant).
func (m *MultiExpert) Decay(arm int, lambda float64) {
	if lambda <= 0 {
		return
	}
	m.w[arm] *= math.Exp(-lambda)
	m.normalize()
}

// normalize projects the weights back onto the simplex and, with two or
// more experts, clamps every weight to the exploration floor so no
// scorer's opinion is permanently silenced (the same absorption argument
// as TwoExpert.WeightFloor). With one expert the floor is skipped: the
// only weight must be exactly 1.
func (m *MultiExpert) normalize() {
	n := len(m.w)
	if n == 0 {
		return
	}
	sum := 0.0
	for i, w := range m.w {
		if w < 0 || math.IsNaN(w) {
			m.w[i] = 0
			continue
		}
		sum += w
	}
	if sum <= 0 {
		u := 1 / float64(n)
		for i := range m.w {
			m.w[i] = u
		}
		return
	}
	if n == 1 {
		m.w[0] = 1
		return
	}
	for i := range m.w {
		m.w[i] /= sum
	}
	// Floor pass: lift starved weights, then renormalise the remainder.
	// One pass suffices because the floor total n×WeightFloor ≪ 1.
	lifted := 0.0
	floored := 0
	for _, w := range m.w {
		if w < WeightFloor {
			lifted += WeightFloor - w
			floored++
		}
	}
	if floored == 0 {
		return
	}
	scale := 1 - lifted
	for i, w := range m.w {
		if w < WeightFloor {
			m.w[i] = WeightFloor
		} else {
			m.w[i] = w * scale / (1 - float64(floored)*WeightFloor + lifted - lifted)
		}
	}
	// The closed form above keeps the sum at 1 only approximately when
	// several arms are floored at once; finish with an exact pass.
	sum = 0
	for _, w := range m.w {
		sum += w
	}
	excess := sum - 1
	if excess != 0 {
		for i := range m.w {
			if m.w[i] > WeightFloor {
				m.w[i] -= excess * (m.w[i] - WeightFloor) / (sum - float64(n)*WeightFloor)
			}
		}
	}
}

// Reset restores the given initial weights (normalised).
func (m *MultiExpert) Reset(init []float64) {
	copy(m.w, init)
	m.normalize()
}
