package mab

import (
	"math"
	"testing"
)

func TestMultiExpertNormalizes(t *testing.T) {
	m := NewMultiExpert([]float64{2, 1, 1})
	sum := 0.0
	for i := 0; i < m.N(); i++ {
		sum += m.Weight(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	if m.Weight(0) != 0.5 {
		t.Fatalf("w0 = %v, want 0.5", m.Weight(0))
	}
}

// TestMultiExpertSingleArmExact pins the monolith-equivalence invariant:
// with one expert the weight is exactly 1.0 (no floor clamp, no rounding
// residue) and Decay is inert.
func TestMultiExpertSingleArmExact(t *testing.T) {
	m := NewMultiExpert([]float64{0.37})
	if m.Weight(0) != 1.0 {
		t.Fatalf("single weight = %v, want exactly 1.0", m.Weight(0))
	}
	for i := 0; i < 100; i++ {
		m.Decay(0, 0.5)
		if m.Weight(0) != 1.0 {
			t.Fatalf("single weight drifted to %v after decay %d", m.Weight(0), i)
		}
	}
}

func TestMultiExpertDecayShiftsMass(t *testing.T) {
	m := NewMultiExpert([]float64{1, 1})
	for i := 0; i < 50; i++ {
		m.Decay(0, 0.3)
	}
	if m.Weight(0) >= m.Weight(1) {
		t.Fatalf("decayed arm not lighter: w = %v", m.Weights())
	}
	if m.Weight(0) < WeightFloor {
		t.Fatalf("w0 = %v fell below the exploration floor %v", m.Weight(0), WeightFloor)
	}
	sum := m.Weight(0) + m.Weight(1)
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v after decays", sum)
	}
}

func TestMultiExpertFloorAllArms(t *testing.T) {
	m := NewMultiExpert([]float64{1, 1, 1, 1})
	// Hammer three arms; none may pin to zero and the sum stays 1.
	for i := 0; i < 500; i++ {
		m.Decay(i%3, 1.0)
	}
	sum := 0.0
	for i := 0; i < m.N(); i++ {
		if m.Weight(i) < WeightFloor-1e-12 {
			t.Fatalf("arm %d = %v below floor", i, m.Weight(i))
		}
		sum += m.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestMultiExpertDegenerateInit(t *testing.T) {
	m := NewMultiExpert([]float64{0, -3, 0})
	for i := 0; i < m.N(); i++ {
		if w := m.Weight(i); math.Abs(w-1.0/3) > 1e-12 {
			t.Fatalf("arm %d = %v, want uniform 1/3", i, w)
		}
	}
}
