package stats

import (
	"fmt"
	"io"
	"strconv"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): one family per counter with # HELP / # TYPE headers,
// per-shard series labelled shard="i", and the access-latency histogram
// with cumulative buckets, _sum and _count. The output is deterministic
// (families in a fixed order, shards in index order) so tests can pin it
// and scrapes diff cleanly.

// promFamily describes one per-shard counter family.
type promFamily struct {
	name string
	typ  string // "counter" or "gauge"
	help string
	get  func(ShardSnapshot) int64
}

// promFamilies lists the exported per-shard series, in exposition order.
// OPERATIONS.md carries the operator-facing catalogue; keep the two in
// sync.
var promFamilies = []promFamily{
	{"requests_total", "counter", "Accesses routed to the shard.",
		func(c ShardSnapshot) int64 { return c.Requests }},
	{"hits_total", "counter", "Accesses served from cache.",
		func(c ShardSnapshot) int64 { return c.Hits }},
	{"bytes_requested_total", "counter", "Sum of requested object sizes in bytes.",
		func(c ShardSnapshot) int64 { return c.BytesRequested }},
	{"bytes_hit_total", "counter", "Sum of cache-served object sizes in bytes.",
		func(c ShardSnapshot) int64 { return c.BytesHit }},
	{"evictions_total", "counter", "Objects evicted by the shard policy.",
		func(c ShardSnapshot) int64 { return c.Evictions }},
	{"used_bytes", "gauge", "Last observed shard occupancy in bytes.",
		func(c ShardSnapshot) int64 { return c.UsedBytes }},
}

// WritePrometheus renders snap in the Prometheus text exposition format
// under the given metric namespace (e.g. "scip" yields
// scip_requests_total{shard="0"} series and a scip_access_latency_seconds
// histogram). It returns the first write error.
func WritePrometheus(w io.Writer, snap Snapshot, namespace string) error {
	ew := &errWriter{w: w}
	for _, fam := range promFamilies {
		full := namespace + "_" + fam.name
		fmt.Fprintf(ew, "# HELP %s %s\n", full, fam.help)
		fmt.Fprintf(ew, "# TYPE %s %s\n", full, fam.typ)
		for i, c := range snap.Shards {
			fmt.Fprintf(ew, "%s{shard=\"%d\"} %d\n", full, i, fam.get(c))
		}
	}

	return WriteHistogramPrometheus(ew, namespace+"_access_latency_seconds",
		"Cache access latency (policy decision under the shard lock).",
		snap.Latency, snap.LatencySumNanos)
}

// WriteHistogramPrometheus renders one latency histogram (buckets on the
// package's power-of-two geometry, as produced by Histogram.Snapshot or
// carried in a stats Snapshot) as a Prometheus histogram family with
// cumulative _bucket series, _sum and _count. Both the per-shard cache
// exposition and the router's scip_route_proxy_latency_seconds family
// render through it.
func WriteHistogramPrometheus(w io.Writer, name, help string, buckets [NumLatencyBuckets]int64, sumNanos int64) error {
	ew, ok := w.(*errWriter)
	if !ok {
		ew = &errWriter{w: w}
	}
	fmt.Fprintf(ew, "# HELP %s %s\n", name, help)
	fmt.Fprintf(ew, "# TYPE %s histogram\n", name)
	var cum int64
	for b, n := range buckets {
		cum += n
		le := strconv.FormatFloat(LatencyBucketBound(b).Seconds(), 'g', -1, 64)
		fmt.Fprintf(ew, "%s_bucket{le=\"%s\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	sum := strconv.FormatFloat(float64(sumNanos)/1e9, 'g', -1, 64)
	fmt.Fprintf(ew, "%s_sum %s\n", name, sum)
	fmt.Fprintf(ew, "%s_count %d\n", name, cum)
	return ew.err
}

// errWriter latches the first error so the renderer needs no per-line
// error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
