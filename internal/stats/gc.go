package stats

import (
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"time"
)

// GCSnapshot captures the garbage-collector counters the pointer-free
// data plane is designed to keep flat: with cache metadata in scalar
// slabs (internal/cache.Arena, Index), heap-scan bytes and pause totals
// must stay independent of the number of resident objects. The serving
// daemon exports these as scip_server_gc_* so a deployment can verify
// that property live (DESIGN.md §12).
type GCSnapshot struct {
	// NumGC is the number of completed GC cycles since process start.
	NumGC uint32
	// PauseTotal is the cumulative stop-the-world pause time.
	PauseTotal time.Duration
	// HeapScanBytes is the amount of heap memory the GC considers
	// scannable (pointer-bearing); the slab-backed cache core contributes
	// nothing to it regardless of object count.
	HeapScanBytes uint64
	// CPUFraction is the fraction of available CPU consumed by the GC
	// since process start.
	CPUFraction float64
	// HeapObjects is the number of live heap objects at the last sweep.
	HeapObjects uint64
}

// ReadGC samples the runtime's GC counters. It is a control-plane call
// (metrics scrape, interval report), not for request paths.
func ReadGC() GCSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := GCSnapshot{
		NumGC:       ms.NumGC,
		PauseTotal:  time.Duration(ms.PauseTotalNs),
		CPUFraction: ms.GCCPUFraction,
		HeapObjects: ms.HeapObjects,
	}
	sample := []metrics.Sample{{Name: "/gc/scan/heap:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		s.HeapScanBytes = sample[0].Value.Uint64()
	}
	return s
}

// WriteGCPrometheus renders gc in the Prometheus text exposition format
// under namespace_gc_* (the daemon passes "scip_server").
func WriteGCPrometheus(w io.Writer, gc GCSnapshot, namespace string) error {
	series := []struct {
		name, typ, help, value string
	}{
		{"gc_cycles_total", "counter", "Completed GC cycles.",
			fmt.Sprintf("%d", gc.NumGC)},
		{"gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.",
			fmt.Sprintf("%.9f", gc.PauseTotal.Seconds())},
		{"gc_heap_scan_bytes", "gauge", "Scannable (pointer-bearing) heap bytes; flat in resident objects with the pointer-free cache core.",
			fmt.Sprintf("%d", gc.HeapScanBytes)},
		{"gc_cpu_fraction", "gauge", "Fraction of available CPU consumed by the GC since start.",
			fmt.Sprintf("%g", gc.CPUFraction)},
		{"gc_heap_objects", "gauge", "Live heap objects at the last sweep.",
			fmt.Sprintf("%d", gc.HeapObjects)},
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n%s_%s %s\n",
			namespace, s.name, s.help, namespace, s.name, s.typ, namespace, s.name, s.value); err != nil {
			return err
		}
	}
	return nil
}
