// Package stats provides lock-free runtime observability for the
// concurrent cache front: per-shard atomic counters (requests, hits, byte
// traffic, evictions, used bytes) and a fixed-bucket access-latency
// histogram. Writers touch only their own shard's cache-line-padded
// counter block plus the shared histogram (atomic adds, no locks), so the
// instrumentation scales with the shard count; Snapshot() reads everything
// with atomic loads and never blocks the serving path.
//
// Counter semantics: Requests/Hits/BytesRequested/BytesHit/Evictions are
// monotonically increasing totals, so interval rates are computed by
// differencing two snapshots (Snapshot.Sub). UsedBytes is a gauge holding
// the most recently observed occupancy.
//
// Snapshots feed three consumers: the scip-load/scip-serve interval
// reporters (via Sub), the final JSON reports, and the Prometheus text
// exposition (WritePrometheus) scraped from the daemon's /metrics
// endpoint — the metric catalogue is documented in OPERATIONS.md.
package stats
