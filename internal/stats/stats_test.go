package stats

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestCountersPadding(t *testing.T) {
	size := unsafe.Sizeof(paddedCounters{})
	if size%64 != 0 {
		t.Fatalf("paddedCounters size %d is not a cache-line multiple", size)
	}
	var two [2]paddedCounters
	a := uintptr(unsafe.Pointer(&two[0].Requests)) / 64
	b := uintptr(unsafe.Pointer(&two[1].Requests)) / 64
	if a == b {
		t.Fatal("adjacent shard counters share a cache line")
	}
}

func TestObserveAccessAndSnapshot(t *testing.T) {
	s := New(2)
	s.ObserveAccess(0, 100, true, 500, 3)
	s.ObserveAccess(0, 50, false, 550, 4)
	s.ObserveAccess(1, 200, false, 200, 0)
	snap := s.Snapshot()
	c0 := snap.Shards[0]
	if c0.Requests != 2 || c0.Hits != 1 || c0.BytesRequested != 150 || c0.BytesHit != 100 {
		t.Fatalf("shard 0 counters: %+v", c0)
	}
	if c0.UsedBytes != 550 || c0.Evictions != 4 {
		t.Fatalf("shard 0 gauges: %+v", c0)
	}
	tot := snap.Totals()
	if tot.Requests != 3 || tot.Hits != 1 || tot.UsedBytes != 750 {
		t.Fatalf("totals: %+v", tot)
	}
	if mr := snap.MissRatio(); mr != 2.0/3.0 {
		t.Fatalf("MissRatio = %g", mr)
	}
	wantByte := float64(150+200-100) / float64(150+200)
	if br := snap.ByteMissRatio(); br != wantByte {
		t.Fatalf("ByteMissRatio = %g, want %g", br, wantByte)
	}
	// ObserveAccess is counters-only: latency is decoupled (observed by
	// the caller via LatencyTicker or Histogram.Observe), so no clock is
	// read and no samples appear here.
	if n := snap.LatencySamples(); n != 0 {
		t.Fatalf("LatencySamples = %d, want 0 (counters-only path)", n)
	}
}

// TestObserveBatchMatchesSerial: a single ObserveBatch call must leave
// the counter block byte-identical to the equivalent sequence of
// ObserveAccess calls — the invariant the batched shard access path
// rests on.
func TestObserveBatchMatchesSerial(t *testing.T) {
	serial, batched := New(2), New(2)
	accesses := []struct {
		size int64
		hit  bool
	}{{100, false}, {100, true}, {50, false}, {100, true}, {70, false}}
	var n, hits, bytesReq, bytesHit int64
	used, ev := int64(320), int64(2) // arbitrary final gauge values
	for i, a := range accesses {
		// The serial path stores intermediate gauge values; only the
		// final store survives, which is what ObserveBatch replicates.
		serial.ObserveAccess(1, a.size, a.hit, int64(10*i), int64(i))
		n++
		bytesReq += a.size
		if a.hit {
			hits++
			bytesHit += a.size
		}
	}
	serial.Shard(1).UsedBytes.Store(used)
	serial.Shard(1).Evictions.Store(ev)
	batched.ObserveBatch(1, n, hits, bytesReq, bytesHit, used, ev)
	if s, b := serial.Snapshot(), batched.Snapshot(); s.Shards[1] != b.Shards[1] {
		t.Fatalf("batched counters diverge:\nserial  %+v\nbatched %+v", s.Shards[1], b.Shards[1])
	}
}

// TestObserveNAttributesMeanLatency: ObserveN(d, n) must add n samples
// of d/n each and d to the sum, so batched runs keep sample counts and
// sums comparable to per-request runs.
func TestObserveNAttributesMeanLatency(t *testing.T) {
	var h Histogram
	h.ObserveN(8*time.Microsecond, 4)
	if got := h.buckets[bucketFor(2*time.Microsecond)].Load(); got != 4 {
		t.Fatalf("mean bucket count = %d, want 4", got)
	}
	if got := h.sum.Load(); got != 8000 {
		t.Fatalf("sum = %d, want 8000", got)
	}
	h.ObserveN(time.Second, 0) // n<=0 is a no-op
	if got := h.sum.Load(); got != 8000 {
		t.Fatalf("sum after no-op = %d, want 8000", got)
	}
}

// TestLatencyTicker: one Tick per request feeds exactly one sample, a
// TickN(n) feeds n, and the nil-histogram ticker (the -nolat opt-out)
// records nothing.
func TestLatencyTicker(t *testing.T) {
	s := New(1)
	tick := NewLatencyTicker(s.Latency())
	tick.Start()
	for i := 0; i < 5; i++ {
		tick.Tick()
	}
	tick.TickN(3)
	if n := s.Snapshot().LatencySamples(); n != 8 {
		t.Fatalf("samples = %d, want 8", n)
	}
	off := NewLatencyTicker(nil)
	off.Start()
	off.Tick()
	off.TickN(4)
	if n := s.Snapshot().LatencySamples(); n != 8 {
		t.Fatalf("nil ticker recorded samples: %d", n)
	}
}

func TestSnapshotSubIsIntervalDelta(t *testing.T) {
	s := New(1)
	s.ObserveAccess(0, 10, true, 10, 0)
	s.Latency().Observe(time.Microsecond)
	prev := s.Snapshot()
	s.ObserveAccess(0, 10, false, 20, 1)
	s.Latency().Observe(time.Microsecond)
	s.ObserveAccess(0, 10, false, 30, 2)
	s.Latency().Observe(time.Microsecond)
	d := s.Snapshot().Sub(prev)
	c := d.Shards[0]
	if c.Requests != 2 || c.Hits != 0 || c.BytesRequested != 20 {
		t.Fatalf("delta counters: %+v", c)
	}
	if c.UsedBytes != 30 {
		t.Fatalf("delta UsedBytes should keep the current gauge, got %d", c.UsedBytes)
	}
	if c.Evictions != 2 {
		t.Fatalf("delta Evictions = %d, want 2", c.Evictions)
	}
	if d.LatencySamples() != 2 {
		t.Fatalf("delta latency samples = %d", d.LatencySamples())
	}
	if d.MissRatio() != 1 {
		t.Fatalf("interval MissRatio = %g, want 1", d.MissRatio())
	}
}

func TestOccupancyAndRequestSkew(t *testing.T) {
	s := New(4)
	for i := 0; i < 4; i++ {
		s.ObserveAccess(i, 10, false, 100, 0)
	}
	snap := s.Snapshot()
	if sk := snap.OccupancySkew(); sk != 1 {
		t.Fatalf("balanced skew = %g, want 1", sk)
	}
	if sk := snap.RequestSkew(); sk != 1 {
		t.Fatalf("balanced request skew = %g, want 1", sk)
	}
	s.ObserveAccess(0, 10, false, 700, 0)
	snap = s.Snapshot()
	// used: 700,100,100,100 -> mean 250, max 700 -> 2.8
	if sk := snap.OccupancySkew(); sk != 2.8 {
		t.Fatalf("skew = %g, want 2.8", sk)
	}
	if empty := (Snapshot{Shards: make([]ShardSnapshot, 3)}); empty.OccupancySkew() != 0 || empty.RequestSkew() != 0 {
		t.Fatal("empty snapshot skew should be 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d", b)
	}
	if b := bucketFor(time.Duration(1) << histMinShift); b != 1 {
		t.Fatalf("bucketFor(min bound) = %d, want 1", b)
	}
	if b := bucketFor(time.Hour); b != NumLatencyBuckets-1 {
		t.Fatalf("huge latency bucket = %d, want last", b)
	}
	// Every observation must land in a bucket whose bound exceeds it.
	for d := time.Duration(1); d < time.Second; d *= 3 {
		b := bucketFor(d)
		if d >= bucketBound(b) && b != NumLatencyBuckets-1 {
			t.Fatalf("latency %v landed in bucket %d with bound %v", d, b, bucketBound(b))
		}
		if b > 0 && d < bucketBound(b-1) {
			t.Fatalf("latency %v below bucket %d's lower bound", d, b)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	s := New(1)
	if q := s.Snapshot().LatencyQuantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v", q)
	}
	// 90 fast samples, 10 slow ones: p50 must be near the fast mode,
	// p99 near the slow mode (within one power-of-two bucket).
	for i := 0; i < 90; i++ {
		s.Latency().Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		s.Latency().Observe(1 * time.Millisecond)
	}
	snap := s.Snapshot()
	p50 := snap.LatencyQuantile(0.5)
	p99 := snap.LatencyQuantile(0.99)
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if p99 <= p50 {
		t.Fatalf("p99 %v <= p50 %v", p99, p50)
	}
}

func TestResetClears(t *testing.T) {
	s := New(2)
	s.ObserveAccess(1, 10, true, 10, 1)
	s.Latency().Observe(time.Microsecond)
	s.Reset()
	snap := s.Snapshot()
	if snap.Totals() != (ShardSnapshot{}) {
		t.Fatalf("Reset left counters: %+v", snap.Totals())
	}
	if snap.LatencySamples() != 0 {
		t.Fatal("Reset left latency samples")
	}
}

// TestConcurrentObserve hammers ObserveAccess and Snapshot from many
// goroutines; run with -race. The final snapshot must account for every
// observation exactly once.
func TestConcurrentObserve(t *testing.T) {
	const (
		workers = 8
		perW    = 10_000
		shards  = 4
	)
	s := New(shards)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Snapshot().MissRatio()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a LatencyTicker, the one-clock-read
			// scheme the load drivers use.
			tick := NewLatencyTicker(s.Latency())
			tick.Start()
			for i := 0; i < perW; i++ {
				s.ObserveAccess((w+i)%shards, 1, i%2 == 0, 64, int64(i))
				tick.Tick()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snap := s.Snapshot()
	tot := snap.Totals()
	if tot.Requests != workers*perW {
		t.Fatalf("Requests = %d, want %d", tot.Requests, workers*perW)
	}
	if tot.Hits != workers*perW/2 {
		t.Fatalf("Hits = %d, want %d", tot.Hits, workers*perW/2)
	}
	if snap.LatencySamples() != workers*perW {
		t.Fatalf("latency samples = %d, want %d", snap.LatencySamples(), workers*perW)
	}
}
