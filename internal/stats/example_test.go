package stats_test

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/scip-cache/scip/internal/stats"
)

// ExampleStats shows the writer/reader split: the serving path bumps
// per-shard atomic counters, an observer snapshots and derives ratios.
func ExampleStats() {
	st := stats.New(2)

	// Shard 0 serves a miss (100 bytes) and a hit (100 bytes).
	sh := st.Shard(0)
	sh.Requests.Add(1)
	sh.BytesRequested.Add(100)
	sh.Requests.Add(1)
	sh.BytesRequested.Add(100)
	sh.Hits.Add(1)
	sh.BytesHit.Add(100)

	snap := st.Snapshot()
	fmt.Printf("requests: %d\n", snap.Totals().Requests)
	fmt.Printf("miss ratio: %.2f\n", snap.MissRatio())
	fmt.Printf("byte miss ratio: %.2f\n", snap.ByteMissRatio())
	// Output:
	// requests: 2
	// miss ratio: 0.50
	// byte miss ratio: 0.50
}

// ExampleSnapshot_Sub differences two snapshots into an interval view —
// the pattern behind scip-load's and scip-serve's live report lines.
func ExampleSnapshot_Sub() {
	st := stats.New(1)
	sh := st.Shard(0)

	sh.Requests.Add(10)
	sh.Hits.Add(2)
	before := st.Snapshot()

	sh.Requests.Add(10)
	sh.Hits.Add(8)
	after := st.Snapshot()

	interval := after.Sub(before)
	fmt.Printf("interval requests: %d\n", interval.Totals().Requests)
	fmt.Printf("interval miss ratio: %.2f\n", interval.MissRatio())
	// Output:
	// interval requests: 10
	// interval miss ratio: 0.20
}

// ExampleWritePrometheus renders a snapshot in the Prometheus text
// exposition format — what scip-serve's /metrics endpoint serves. The
// output filters one family: the full exposition also carries byte
// traffic, evictions, occupancy and the latency histogram (catalogued in
// OPERATIONS.md).
func ExampleWritePrometheus() {
	st := stats.New(2)
	st.Shard(0).Requests.Add(3)
	st.Shard(1).Requests.Add(4)
	st.Latency().Observe(time.Millisecond)

	var b strings.Builder
	if err := stats.WritePrometheus(&b, st.Snapshot(), "scip"); err != nil {
		panic(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		if strings.Contains(sc.Text(), "scip_requests_total") {
			fmt.Fprintln(os.Stdout, sc.Text())
		}
	}
	// Output:
	// # HELP scip_requests_total Accesses routed to the shard.
	// # TYPE scip_requests_total counter
	// scip_requests_total{shard="0"} 3
	// scip_requests_total{shard="1"} 4
}
