package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// ShardCounters is one shard's counter block. All fields are updated with
// atomic operations; the serving path calls ObserveAccess rather than
// touching fields directly.
type ShardCounters struct {
	// Requests counts accesses routed to the shard.
	Requests atomic.Int64
	// Hits counts accesses served from cache.
	Hits atomic.Int64
	// BytesRequested accumulates the sizes of all requested objects.
	BytesRequested atomic.Int64
	// BytesHit accumulates the sizes of objects served from cache.
	BytesHit atomic.Int64
	// Evictions holds the shard policy's cumulative eviction count.
	Evictions atomic.Int64
	// UsedBytes holds the last observed shard occupancy (a gauge).
	UsedBytes atomic.Int64
}

// countersPad rounds a ShardCounters block up to a whole number of 64-byte
// cache lines so neighbouring shards' hot counters never false-share (same
// scheme as shard.shardSlot).
const countersPad = 64 - unsafe.Sizeof(ShardCounters{})%64

type paddedCounters struct {
	ShardCounters
	_ [countersPad]byte
}

// Latency histogram geometry: bucket b counts observations with
// latency < bucketBound(b). Bounds grow as powers of two from
// 2^histMinShift ns (128 ns) so the histogram spans 128 ns .. ~17 s in
// NumLatencyBuckets fixed buckets; the last bucket is a catch-all.
const (
	histMinShift = 7
	// NumLatencyBuckets is the fixed bucket count of the histogram.
	NumLatencyBuckets = 28
)

// bucketFor maps a latency to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns>>histMinShift == 0 {
		return 0
	}
	b := bits.Len64(ns >> histMinShift) // strictly positive here
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

// bucketBound returns the exclusive upper latency bound of bucket b.
func bucketBound(b int) time.Duration {
	return time.Duration(uint64(1) << (histMinShift + uint(b)))
}

// LatencyBucketBound returns the upper latency bound of histogram bucket
// b (exclusive for observation, rendered as the inclusive `le` bound in
// the Prometheus exposition; the ≤-vs-< distinction only matters for
// samples landing exactly on a power-of-two nanosecond count). The last
// bucket is a catch-all whose nominal bound is ~17 s.
func LatencyBucketBound(b int) time.Duration { return bucketBound(b) }

// Histogram is a fixed-bucket, power-of-two latency histogram safe for
// concurrent Observe calls.
type Histogram struct {
	buckets [NumLatencyBuckets]atomic.Int64
	// sum accumulates observed nanoseconds so the Prometheus exposition
	// can publish the conventional _sum series alongside the buckets.
	sum atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.sum.Add(d.Nanoseconds())
}

// ObserveN records n latency samples of d/n each — the batched-access
// form: a batch of n requests completed after a total of d, so each is
// attributed the mean per-request latency. One histogram update and one
// sum update cover the whole batch.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	h.buckets[bucketFor(d/time.Duration(n))].Add(int64(n))
	h.sum.Add(d.Nanoseconds())
}

// Snapshot copies the histogram's current buckets and nanosecond sum
// with one atomic load each. Standalone Histogram users (the router's
// proxy-latency histogram) pair it with WriteHistogramPrometheus;
// Stats.Snapshot embeds the same values in its Snapshot struct.
func (h *Histogram) Snapshot() (buckets [NumLatencyBuckets]int64, sumNanos int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.sum.Load()
}

// Stats aggregates per-shard counters and the shared latency histogram
// for one cache front.
type Stats struct {
	shards []paddedCounters
	lat    Histogram
}

// New returns a Stats block for nShards shards (min 1).
func New(nShards int) *Stats {
	if nShards < 1 {
		nShards = 1
	}
	return &Stats{shards: make([]paddedCounters, nShards)}
}

// ShardCount returns the number of per-shard counter blocks.
func (s *Stats) ShardCount() int { return len(s.shards) }

// Shard returns shard i's counter block.
func (s *Stats) Shard(i int) *ShardCounters { return &s.shards[i].ShardCounters }

// Latency returns the shared latency histogram.
func (s *Stats) Latency() *Histogram { return &s.lat }

// ObserveAccess records one access routed to shard i: its hit outcome,
// the object size, and the shard's post-access occupancy and cumulative
// eviction count. It touches only atomic counters — no clock reads;
// latency is the caller's concern (see LatencyTicker for the
// one-clock-read-per-request scheme the load drivers use).
func (s *Stats) ObserveAccess(i int, size int64, hit bool, usedBytes, evictions int64) {
	c := s.Shard(i)
	c.Requests.Add(1)
	c.BytesRequested.Add(size)
	if hit {
		c.Hits.Add(1)
		c.BytesHit.Add(size)
	}
	c.UsedBytes.Store(usedBytes)
	c.Evictions.Store(evictions)
}

// ObserveBatch records a batch of n accesses routed to shard i with hits
// of them hitting, bytesReq/bytesHit the summed request/hit bytes, and
// the shard's post-batch occupancy and cumulative eviction count. One
// call per batch replaces n ObserveAccess calls: the totals are
// identical (sums commute) and the gauges end on the same final values
// a per-access replay would store, which is what keeps batched counters
// byte-identical to the serial path.
func (s *Stats) ObserveBatch(i int, n, hits int64, bytesReq, bytesHit, usedBytes, evictions int64) {
	c := s.Shard(i)
	c.Requests.Add(n)
	c.BytesRequested.Add(bytesReq)
	c.Hits.Add(hits)
	c.BytesHit.Add(bytesHit)
	c.UsedBytes.Store(usedBytes)
	c.Evictions.Store(evictions)
}

// Reset zeroes every counter and histogram bucket.
func (s *Stats) Reset() {
	for i := range s.shards {
		c := &s.shards[i].ShardCounters
		c.Requests.Store(0)
		c.Hits.Store(0)
		c.BytesRequested.Store(0)
		c.BytesHit.Store(0)
		c.Evictions.Store(0)
		c.UsedBytes.Store(0)
	}
	for i := range s.lat.buckets {
		s.lat.buckets[i].Store(0)
	}
	s.lat.sum.Store(0)
}

// ShardSnapshot is a plain-value copy of one shard's counters.
type ShardSnapshot struct {
	Requests       int64 `json:"requests"`
	Hits           int64 `json:"hits"`
	BytesRequested int64 `json:"bytes_requested"`
	BytesHit       int64 `json:"bytes_hit"`
	Evictions      int64 `json:"evictions"`
	UsedBytes      int64 `json:"used_bytes"`
}

// Snapshot is a point-in-time copy of a Stats block. Each counter is read
// with one atomic load; the snapshot is not a single linearization point
// across counters, which is the standard (and sufficient) consistency for
// periodic reporting under load.
type Snapshot struct {
	Shards  []ShardSnapshot          `json:"shards"`
	Latency [NumLatencyBuckets]int64 `json:"-"`
	// LatencySumNanos is the sum of all observed latencies in
	// nanoseconds (the Prometheus histogram _sum series).
	LatencySumNanos int64 `json:"-"`
}

// Snapshot copies the current counter values without blocking writers.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{Shards: make([]ShardSnapshot, len(s.shards))}
	for i := range s.shards {
		c := &s.shards[i].ShardCounters
		snap.Shards[i] = ShardSnapshot{
			Requests:       c.Requests.Load(),
			Hits:           c.Hits.Load(),
			BytesRequested: c.BytesRequested.Load(),
			BytesHit:       c.BytesHit.Load(),
			Evictions:      c.Evictions.Load(),
			UsedBytes:      c.UsedBytes.Load(),
		}
	}
	for i := range s.lat.buckets {
		snap.Latency[i] = s.lat.buckets[i].Load()
	}
	snap.LatencySumNanos = s.lat.sum.Load()
	return snap
}

// Sub returns the interval delta snap−prev: counters are differenced,
// UsedBytes (a gauge) keeps its current value. prev must be an earlier
// snapshot of the same Stats block.
func (snap Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{Shards: make([]ShardSnapshot, len(snap.Shards))}
	for i := range snap.Shards {
		cur := snap.Shards[i]
		var p ShardSnapshot
		if i < len(prev.Shards) {
			p = prev.Shards[i]
		}
		d.Shards[i] = ShardSnapshot{
			Requests:       cur.Requests - p.Requests,
			Hits:           cur.Hits - p.Hits,
			BytesRequested: cur.BytesRequested - p.BytesRequested,
			BytesHit:       cur.BytesHit - p.BytesHit,
			Evictions:      cur.Evictions - p.Evictions,
			UsedBytes:      cur.UsedBytes,
		}
	}
	for i := range snap.Latency {
		d.Latency[i] = snap.Latency[i]
		if i < len(prev.Latency) {
			d.Latency[i] -= prev.Latency[i]
		}
	}
	d.LatencySumNanos = snap.LatencySumNanos - prev.LatencySumNanos
	return d
}

// Totals sums the per-shard counters (UsedBytes included: the total
// occupancy gauge).
func (snap Snapshot) Totals() ShardSnapshot {
	var t ShardSnapshot
	for _, c := range snap.Shards {
		t.Requests += c.Requests
		t.Hits += c.Hits
		t.BytesRequested += c.BytesRequested
		t.BytesHit += c.BytesHit
		t.Evictions += c.Evictions
		t.UsedBytes += c.UsedBytes
	}
	return t
}

// MissRatio returns the object miss ratio across all shards.
func (snap Snapshot) MissRatio() float64 {
	t := snap.Totals()
	if t.Requests == 0 {
		return 0
	}
	return float64(t.Requests-t.Hits) / float64(t.Requests)
}

// ByteMissRatio returns the byte miss ratio across all shards.
func (snap Snapshot) ByteMissRatio() float64 {
	t := snap.Totals()
	if t.BytesRequested == 0 {
		return 0
	}
	return float64(t.BytesRequested-t.BytesHit) / float64(t.BytesRequested)
}

// OccupancySkew measures per-shard byte-occupancy imbalance: the maximum
// shard occupancy divided by the mean (1.0 = perfectly balanced). Returns
// 0 when nothing is cached.
func (snap Snapshot) OccupancySkew() float64 {
	var sum, max int64
	for _, c := range snap.Shards {
		sum += c.UsedBytes
		if c.UsedBytes > max {
			max = c.UsedBytes
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(snap.Shards))
	return float64(max) / mean
}

// RequestSkew measures per-shard request imbalance: max shard requests
// divided by the mean. Returns 0 when the snapshot holds no requests.
func (snap Snapshot) RequestSkew() float64 {
	var sum, max int64
	for _, c := range snap.Shards {
		sum += c.Requests
		if c.Requests > max {
			max = c.Requests
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(snap.Shards))
	return float64(max) / mean
}

// LatencySamples returns the number of recorded latency observations.
func (snap Snapshot) LatencySamples() int64 {
	var n int64
	for _, b := range snap.Latency {
		n += b
	}
	return n
}

// LatencyQuantile returns the latency at quantile q ∈ [0,1], linearly
// interpolated inside the containing bucket. Returns 0 when the histogram
// is empty. The power-of-two bucket geometry bounds the relative error of
// any quantile by the bucket width (under 2x the true value).
func (snap Snapshot) LatencyQuantile(q float64) time.Duration {
	total := snap.LatencySamples()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for b, n := range snap.Latency {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := time.Duration(0)
			if b > 0 {
				lo = bucketBound(b - 1)
			}
			hi := bucketBound(b)
			frac := 0.0
			if n > 0 {
				frac = (target - cum) / float64(n)
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return bucketBound(NumLatencyBuckets - 1)
}
