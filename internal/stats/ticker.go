package stats

import "time"

// LatencyTicker turns completion timestamps into latency samples with
// one clock read per request instead of the two (start + end) a naive
// stopwatch costs. It exploits the closed-loop structure of the load
// drivers: a worker issues its next request the moment the previous one
// completes, so the completion timestamp of request N is the start
// timestamp of request N+1 — the single post-completion time.Now() is
// reused as the next request's start ("reuse the timestamp" — PR 2
// measured the old 2-read scheme at ~150 ns/access, dominated by the
// clock reads).
//
// The measured quantity is per-worker inter-completion time, which in a
// closed loop with no think time equals the end-to-end request latency
// (policy access + lock wait or actor queueing). It is NOT meaningful
// for open-loop callers with idle gaps between requests — a daemon
// serving sparse traffic must time each request individually (scip-serve
// does, gated by -nolat) rather than use a ticker.
//
// A LatencyTicker is single-goroutine: each worker owns one. The zero
// value with a nil histogram is a no-op ticker (the -nolat opt-out) that
// never reads the clock.
type LatencyTicker struct {
	h    *Histogram
	prev time.Time
}

// NewLatencyTicker returns a ticker feeding h. A nil h disables the
// ticker entirely — Start/Tick/TickN become free no-ops, which is how
// the -nolat flag removes every per-request clock read.
func NewLatencyTicker(h *Histogram) LatencyTicker {
	return LatencyTicker{h: h}
}

// Start anchors the first interval at now. Call it immediately before
// the worker's first request (and again after any pause that should not
// be attributed to the next request).
func (t *LatencyTicker) Start() {
	if t.h == nil {
		return
	}
	t.prev = time.Now()
}

// Tick records the completion of one request: a single clock read whose
// delta from the previous tick (or Start) is observed as the request's
// latency.
func (t *LatencyTicker) Tick() {
	if t.h == nil {
		return
	}
	now := time.Now()
	t.h.Observe(now.Sub(t.prev))
	t.prev = now
}

// TickN records the completion of a batch of n requests: a single clock
// read, with each request attributed the mean per-request latency of
// the batch (Histogram.ObserveN). The sample count still advances by n,
// so quantiles stay comparable across batched and per-request runs.
func (t *LatencyTicker) TickN(n int) {
	if t.h == nil || n <= 0 {
		return
	}
	now := time.Now()
	t.h.ObserveN(now.Sub(t.prev), n)
	t.prev = now
}
