package stats

import (
	"bufio"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine matches a sample line of the text exposition format:
// name{labels} value — with an optional label set and a decimal or
// floating-point value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eE]+(Inf|NaN)?$`)

// checkPromText validates the structural rules of the exposition format:
// every line is a comment or a well-formed sample, every sample's family
// has a preceding # TYPE, and histogram buckets are cumulative with a
// trailing +Inf bucket equal to _count.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	var lastBucket = map[string]int64{}
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln, line)
			}
			if got := parts[3]; got != "counter" && got != "gauge" && got != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", ln, got)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d: not a valid sample line: %q", ln, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln, name)
		}
		if strings.HasSuffix(name, "_bucket") {
			val, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value: %v", ln, err)
			}
			if val < lastBucket[family] {
				t.Fatalf("line %d: histogram buckets not cumulative (%d < %d)", ln, val, lastBucket[family])
			}
			lastBucket[family] = val
		}
	}
}

// promValue extracts one sample value from rendered text.
func promValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, text)
	return 0
}

func TestWritePrometheus(t *testing.T) {
	st := New(2)
	st.ObserveAccess(0, 100, true, 1000, 0)
	st.Latency().Observe(200 * time.Nanosecond)
	st.ObserveAccess(0, 300, false, 1300, 1)
	st.Latency().Observe(5 * time.Microsecond)
	st.ObserveAccess(1, 50, true, 50, 0)
	st.Latency().Observe(time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, st.Snapshot(), "scip"); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkPromText(t, text)

	if got := promValue(t, text, `scip_requests_total{shard="0"}`); got != 2 {
		t.Errorf("shard 0 requests = %v, want 2", got)
	}
	if got := promValue(t, text, `scip_hits_total{shard="1"}`); got != 1 {
		t.Errorf("shard 1 hits = %v, want 1", got)
	}
	if got := promValue(t, text, `scip_bytes_requested_total{shard="0"}`); got != 400 {
		t.Errorf("shard 0 bytes requested = %v, want 400", got)
	}
	if got := promValue(t, text, `scip_used_bytes{shard="0"}`); got != 1300 {
		t.Errorf("shard 0 used bytes = %v, want 1300", got)
	}
	if got := promValue(t, text, "scip_access_latency_seconds_count"); got != 3 {
		t.Errorf("latency count = %v, want 3", got)
	}
	wantSum := (200*time.Nanosecond + 5*time.Microsecond + time.Millisecond).Seconds()
	if got := promValue(t, text, "scip_access_latency_seconds_sum"); got != wantSum {
		t.Errorf("latency sum = %v, want %v", got, wantSum)
	}
	if got := promValue(t, text, `scip_access_latency_seconds_bucket{le="+Inf"}`); got != 3 {
		t.Errorf("+Inf bucket = %v, want 3", got)
	}
}

// TestWritePrometheusEmpty: a fresh snapshot renders every declared
// family with zero values and stays structurally valid.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, New(1).Snapshot(), "scip"); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkPromText(t, text)
	for _, fam := range promFamilies {
		if got := promValue(t, text, fmt.Sprintf(`scip_%s{shard="0"}`, fam.name)); got != 0 {
			t.Errorf("%s = %v, want 0", fam.name, got)
		}
	}
}

// TestWritePrometheusPropagatesError: a failing writer surfaces its
// error instead of being swallowed.
func TestWritePrometheusPropagatesError(t *testing.T) {
	wantErr := errors.New("sink closed")
	if err := WritePrometheus(failWriter{wantErr}, New(1).Snapshot(), "scip"); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

// TestLatencySumTracksObservations: the histogram sum resets and
// differences like the other counters.
func TestLatencySumTracksObservations(t *testing.T) {
	st := New(1)
	st.ObserveAccess(0, 1, true, 1, 0)
	st.Latency().Observe(time.Microsecond)
	first := st.Snapshot()
	if first.LatencySumNanos != 1000 {
		t.Fatalf("sum = %d, want 1000", first.LatencySumNanos)
	}
	st.ObserveAccess(0, 1, true, 1, 0)
	st.Latency().Observe(3 * time.Microsecond)
	delta := st.Snapshot().Sub(first)
	if delta.LatencySumNanos != 3000 {
		t.Fatalf("delta sum = %d, want 3000", delta.LatencySumNanos)
	}
	st.Reset()
	if got := st.Snapshot().LatencySumNanos; got != 0 {
		t.Fatalf("sum after Reset = %d, want 0", got)
	}
}
