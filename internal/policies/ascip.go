package policies

import (
	"github.com/scip-cache/scip/internal/cache"
)

// ASCIP is the adaptive size-aware cache insertion policy (Wang et al.,
// ICCD 2022), the paper's closest prior work. It exploits the correlation
// between object size and zero reuse: missing objects at least as large
// as an adaptive threshold are inserted at the LRU position. The
// threshold adapts from two feedback signals:
//
//   - a ghost list of LRU-inserted evictions: a renewed miss on a ghost
//     entry means a size class was wrongly judged zero-reuse, so the
//     threshold moves up (fewer LRU insertions);
//   - evictions of MRU-inserted objects that were never hit (the ZRO
//     signal ASC-IP reads from the evicted object's hit token): the
//     threshold moves down toward that object's size, so similar objects
//     are demoted next time.
//
// Hit objects are always promoted to the MRU position — ASC-IP has no
// promotion policy, which is exactly the gap SCIP fills.
type ASCIP struct {
	// Up and Down are the multiplicative adaptation steps (defaults
	// 1.10 and 0.98).
	Up, Down float64

	threshold float64
	min, max  float64
	ghost     *cache.History
}

// NewASCIP returns an ASC-IP for a cache of capBytes capacity. The
// threshold starts at the cache capacity (no LRU insertions) and adapts
// downward as zero-reuse evictions accumulate.
func NewASCIP(capBytes int64) *ASCIP {
	return &ASCIP{
		Up:        1.10,
		Down:      0.98,
		threshold: float64(capBytes),
		min:       64,
		max:       float64(capBytes),
		ghost:     cache.NewHistory(capBytes / 2),
	}
}

// Name implements cache.InsertionPolicy.
func (a *ASCIP) Name() string { return "ASC-IP" }

// Threshold exposes the current size threshold for tests.
func (a *ASCIP) Threshold() float64 { return a.threshold }

// OnAccess implements cache.InsertionPolicy: a miss on a ghost-listed
// object means the threshold demoted a reusable size; raise it.
func (a *ASCIP) OnAccess(req cache.Request, hit bool) {
	if hit {
		return
	}
	if _, ok := a.ghost.Delete(req.Key); ok {
		a.threshold *= a.Up
		if a.threshold > a.max {
			a.threshold = a.max
		}
	}
}

// OnEvict implements cache.InsertionPolicy: a never-hit MRU insertion is
// a ZRO whose size should have been over the threshold; move the
// threshold toward it. LRU-inserted evictions are remembered in the ghost
// list so wrong demotions can be detected.
func (a *ASCIP) OnEvict(ev cache.EvictInfo) {
	if !ev.InsertedMRU {
		a.ghost.Add(ev.Key, ev.Size, ev.Residency)
		return
	}
	if !ev.EverHit {
		target := float64(ev.Size)
		if target < a.threshold {
			a.threshold *= a.Down
			if a.threshold < target {
				a.threshold = target
			}
			if a.threshold < a.min {
				a.threshold = a.min
			}
		}
	}
}

// ChooseInsert implements cache.InsertionPolicy.
func (a *ASCIP) ChooseInsert(req cache.Request) cache.Position {
	if float64(req.Size) >= a.threshold {
		return cache.LRU
	}
	return cache.MRU
}

// ChoosePromote implements cache.InsertionPolicy: all hit objects go to
// the MRU position.
func (a *ASCIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }
