package policies

import (
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// DIP is the dynamic insertion policy (Qureshi et al.): set dueling
// between MIP and BIP with a saturating policy-selection counter. For a
// single queue the dueling sets become sampled ghost caches
// (cache.DuelMonitor); PSEL accumulates their per-window verdicts and the
// winning expert drives insertions.
type DIP struct {
	// Window is the dueling window in requests (default 4096).
	Window int
	// PSELMax bounds the saturating counter (default 32).
	PSELMax int
	// Seed fixes BIP's PRNG.
	Seed int64

	monitor *cache.DuelMonitor
	bip     *BIP
	psel    int // positive favours MIP, negative favours BIP
	reqs    int
	rng     *rand.Rand
}

// NewDIP returns a DIP for a cache of capBytes capacity.
func NewDIP(capBytes int64, seed int64) *DIP {
	return &DIP{
		Window:  4096,
		PSELMax: 32,
		Seed:    seed,
		monitor: cache.NewDuelMonitor(capBytes, 1.0/8, 7),
		bip:     NewBIP(seed),
		rng:     rand.New(rand.NewSource(seed + 211)),
	}
}

// Name implements cache.InsertionPolicy.
func (d *DIP) Name() string { return "DIP" }

// OnAccess implements cache.InsertionPolicy.
func (d *DIP) OnAccess(req cache.Request, hit bool) {
	d.monitor.Observe(req)
	d.reqs++
	if d.reqs%d.Window == 0 {
		v := d.monitor.Verdict()
		switch {
		case v > 0 && d.psel < d.PSELMax:
			d.psel++
		case v < 0 && d.psel > -d.PSELMax:
			d.psel--
		}
	}
}

// ChooseInsert implements cache.InsertionPolicy: follow the dueling
// winner (MIP when PSEL >= 0, BIP otherwise).
func (d *DIP) ChooseInsert(req cache.Request) cache.Position {
	if d.psel >= 0 {
		return cache.MRU
	}
	return d.bip.ChooseInsert(req)
}

// ChoosePromote implements cache.InsertionPolicy (DIP promotes to MRU).
func (d *DIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }

// OnEvict implements cache.InsertionPolicy.
func (d *DIP) OnEvict(cache.EvictInfo) {}

// PSEL exposes the selector state for tests.
func (d *DIP) PSEL() int { return d.psel }
