package policies

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
)

func req(t int64, key uint64, size int64) cache.Request {
	return cache.Request{Time: t, Key: key, Size: size}
}

func testTrace(t *testing.T, seed int64) []cache.Request {
	t.Helper()
	tr, err := gen.Generate(gen.Config{
		Name: "p", Seed: seed,
		Requests:    80_000,
		CatalogSize: 1500,
		ZipfAlpha:   0.8,
		OneHitFrac:  0.35,
		EchoProb:    0.2, EchoDelay: 80, EchoTailFrac: 0.5,
		EpochRequests: 30_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Requests
}

// all policies must respect the capacity invariant and produce sane hit
// behaviour on a generic workload.
func TestAllPoliciesCapacityInvariant(t *testing.T) {
	capBytes := int64(400_000)
	builders := map[string]func() cache.Policy{
		"MIP":    func() cache.Policy { return NewCache("MIP", capBytes, MIP{}) },
		"LIP":    func() cache.Policy { return NewCache("LIP", capBytes, LIP{}) },
		"BIP":    func() cache.Policy { return NewCache("BIP", capBytes, NewBIP(1)) },
		"DIP":    func() cache.Policy { return NewCache("DIP", capBytes, NewDIP(capBytes, 1)) },
		"SHiP":   func() cache.Policy { return NewCache("SHiP", capBytes, NewSHiP()) },
		"DAAIP":  func() cache.Policy { return NewCache("DAAIP", capBytes, NewDAAIP(1)) },
		"ASC-IP": func() cache.Policy { return NewCache("ASC-IP", capBytes, NewASCIP(capBytes)) },
		"DTA":    func() cache.Policy { return NewCache("DTA", capBytes, NewDTA()) },
		"PIPP":   func() cache.Policy { return NewPIPP(capBytes, 1) },
		"DGIPPR": func() cache.Policy { return NewDGIPPR(capBytes, 1) },
	}
	reqs := testTrace(t, 3)
	for name, build := range builders {
		p := build()
		hits := 0
		for i, r := range reqs {
			if p.Access(r) {
				hits++
			}
			if p.Used() > p.Capacity() {
				t.Fatalf("%s: capacity exceeded at request %d", name, i)
			}
		}
		if hits == 0 {
			t.Errorf("%s: zero hits on a reusable workload", name)
		}
		// Re-access of a just-inserted object must hit for all policies.
		p2 := build()
		p2.Access(req(0, 1_000_000, 500))
		if !p2.Access(req(1, 1_000_000, 500)) {
			t.Errorf("%s: immediate re-access missed", name)
		}
	}
}

func TestFixedPolicyPositions(t *testing.T) {
	r := req(0, 1, 1)
	if (MIP{}).ChooseInsert(r) != cache.MRU || (MIP{}).ChoosePromote(r) != cache.MRU {
		t.Fatal("MIP positions wrong")
	}
	if (LIP{}).ChooseInsert(r) != cache.LRU || (LIP{}).ChoosePromote(r) != cache.MRU {
		t.Fatal("LIP positions wrong")
	}
}

func TestBIPMostlyLRU(t *testing.T) {
	b := NewBIP(7)
	mru := 0
	for i := 0; i < 10_000; i++ {
		if b.ChooseInsert(req(0, 1, 1)) == cache.MRU {
			mru++
		}
	}
	// Expect ~1/32 = 312; allow generous bounds.
	if mru < 150 || mru > 600 {
		t.Fatalf("BIP MRU insertions = %d of 10000, want ~312", mru)
	}
	if b.ChoosePromote(req(0, 1, 1)) != cache.MRU {
		t.Fatal("BIP must promote to MRU")
	}
}

func TestDIPFollowsWinner(t *testing.T) {
	capBytes := int64(100_000)
	d := NewDIP(capBytes, 5)
	d.psel = 5
	if d.ChooseInsert(req(0, 1, 1)) != cache.MRU {
		t.Fatal("positive PSEL should insert MRU")
	}
	d.psel = -5
	lru := 0
	for i := 0; i < 1000; i++ {
		if d.ChooseInsert(req(0, 1, 1)) == cache.LRU {
			lru++
		}
	}
	if lru < 900 {
		t.Fatalf("negative PSEL should mostly insert LRU, got %d/1000", lru)
	}
}

func TestSHiPLearnsDeadSignature(t *testing.T) {
	s := NewSHiP()
	// Evict the same signature dead repeatedly.
	for i := 0; i < 10; i++ {
		s.OnEvict(cache.EvictInfo{Key: 42, Size: 1 << 12, InsertedMRU: true, EverHit: false})
	}
	if s.ChooseInsert(req(0, 42, 1<<12)) != cache.LRU {
		t.Fatal("dead signature should insert at LRU")
	}
	// Hits on that signature rehabilitate it.
	for i := 0; i < 5; i++ {
		s.OnAccess(req(0, 42, 1<<12), true)
	}
	if s.ChooseInsert(req(0, 42, 1<<12)) != cache.MRU {
		t.Fatal("rehabilitated signature should insert at MRU")
	}
}

func TestDAAIPClassCounters(t *testing.T) {
	d := NewDAAIP(3)
	d.Escape = 0 // deterministic for the test
	size := int64(1 << 10)
	for i := 0; i < 20; i++ {
		d.OnEvict(cache.EvictInfo{Key: uint64(i), Size: size, EverHit: false})
	}
	if d.ChooseInsert(req(0, 99, size)) != cache.LRU {
		t.Fatal("dead class should insert at LRU")
	}
	for i := 0; i < 20; i++ {
		d.OnAccess(req(0, 1, size), true)
	}
	if d.ChooseInsert(req(0, 99, size)) != cache.MRU {
		t.Fatal("live class should insert at MRU")
	}
}

func TestASCIPThresholdAdapts(t *testing.T) {
	a := NewASCIP(1 << 20)
	t0 := a.Threshold()
	// Large never-hit MRU evictions pull the threshold down.
	for i := 0; i < 50; i++ {
		a.OnEvict(cache.EvictInfo{Key: uint64(i), Size: 1 << 15, InsertedMRU: true, EverHit: false})
	}
	if a.Threshold() >= t0 {
		t.Fatalf("threshold did not drop: %g -> %g", t0, a.Threshold())
	}
	down := a.Threshold()
	// Ghost hits push it back up.
	a.OnEvict(cache.EvictInfo{Key: 7, Size: 1 << 15, InsertedMRU: false})
	a.OnAccess(req(0, 7, 1<<15), false)
	if a.Threshold() <= down {
		t.Fatalf("threshold did not rise after ghost hit: %g", a.Threshold())
	}
	// Objects over the threshold insert at LRU.
	aa := NewASCIP(1 << 20)
	aa.threshold = 1000
	if aa.ChooseInsert(req(0, 1, 2000)) != cache.LRU {
		t.Fatal("large object should insert at LRU")
	}
	if aa.ChooseInsert(req(0, 1, 500)) != cache.MRU {
		t.Fatal("small object should insert at MRU")
	}
}

func TestDTATrainsAndPredicts(t *testing.T) {
	d := NewDTA()
	d.Retrain = 512
	// Feed a synthetic stream: large objects always die, small ones are
	// always reused.
	idx := 0
	for round := 0; round < 3000; round++ {
		big := req(int64(idx), uint64(1_000_000+round), 1<<14)
		d.OnAccess(big, false)
		d.ChooseInsert(big)
		d.OnEvict(cache.EvictInfo{Key: big.Key, Size: big.Size, InsertedMRU: true, EverHit: false})
		small := req(int64(idx+1), uint64(round%10), 1<<8)
		d.OnAccess(small, false)
		d.ChooseInsert(small)
		d.OnAccess(small, true) // reused
		idx += 2
	}
	if !d.trained {
		t.Fatal("DTA never trained")
	}
	probe := req(int64(idx), 5_000_000, 1<<14)
	d.OnAccess(probe, false)
	if d.ChooseInsert(probe) != cache.LRU {
		t.Fatal("trained DTA should demote always-dead size class")
	}
	probe2 := req(int64(idx+1), 3, 1<<8)
	d.OnAccess(probe2, false)
	if d.ChooseInsert(probe2) != cache.MRU {
		t.Fatal("trained DTA should protect reused size class")
	}
}

func TestSegQueueOrderAndBalance(t *testing.T) {
	q := NewSegQueue()
	for i := 0; i < 64; i++ {
		q.InsertAt(uint64(i), 100, 0, 0)
	}
	if q.Len() != 64 || q.Bytes() != 6400 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	keys := q.keysInOrder()
	if len(keys) != 64 {
		t.Fatalf("order length %d", len(keys))
	}
	// All inserted at front of seg 0: global order is reverse insertion,
	// with rebalancing preserving relative order.
	for i := 0; i < 63; i++ {
		if keys[i] < keys[i+1] {
			t.Fatalf("order violated at %d: %v", i, keys[:8])
		}
	}
	// Eviction takes the oldest.
	key, _, ok := q.EvictBack()
	if !ok || key != 0 {
		t.Fatalf("EvictBack = %d,%v, want 0,true", key, ok)
	}
}

func TestSegQueueStepUp(t *testing.T) {
	q := NewSegQueue()
	for i := 0; i < 16; i++ {
		q.InsertAt(uint64(i), 100, 0, 0)
	}
	h := q.Get(3)
	before := position(q, 3)
	q.StepUp(h)
	after := position(q, 3)
	if after != before-1 {
		t.Fatalf("StepUp moved from %d to %d", before, after)
	}
	// Stepping the global front is a no-op.
	frontKey := q.keysInOrder()[0]
	q.StepUp(q.Get(frontKey))
	if position(q, frontKey) != 0 {
		t.Fatal("front entry moved")
	}
}

func position(q *SegQueue, key uint64) int {
	for i, k := range q.keysInOrder() {
		if k == key {
			return i
		}
	}
	return -1
}

func TestSegQueueInsertAtClamps(t *testing.T) {
	q := NewSegQueue()
	q.InsertAt(1, 10, 0, -5)
	q.InsertAt(2, 10, 0, 99)
	if q.Len() != 2 {
		t.Fatal("clamped inserts failed")
	}
	for _, k := range []uint64{1, 2} {
		h := q.Get(k)
		if h == cache.None {
			t.Fatalf("entry %d missing", k)
		}
		if e := q.At(h); e.Class < 0 || e.Class >= NumSegments {
			t.Fatalf("entry %d has invalid segment", k)
		}
	}
	// With a realistic population, a seg-0 insert outlives a seg-7 insert.
	q2 := NewSegQueue()
	for i := 0; i < 64; i++ {
		q2.InsertAt(uint64(100+i), 100, 0, 3)
	}
	q2.InsertAt(1, 100, 0, -5) // clamped to 0 (MRU)
	q2.InsertAt(2, 100, 0, 99) // clamped to 7 (LRU)
	if position(q2, 1) > position(q2, 2) {
		t.Fatal("MRU-clamped insert should sit above LRU-clamped insert")
	}
}

func TestPIPPInsertPositionMidQueue(t *testing.T) {
	p := NewPIPP(10_000, 1)
	p.PromoteProb = 0 // isolate insertion behaviour
	for i := 0; i < 80; i++ {
		p.Access(req(int64(i), uint64(i), 100))
	}
	// A new object inserted mid-queue must be evicted before objects in
	// the MRU half survive.
	pos := position(p.q, 79)
	if pos < 20 || pos > 60 {
		t.Fatalf("fresh PIPP insert at position %d of 80, want mid-queue", pos)
	}
}

func TestPIPPPromotionStep(t *testing.T) {
	p := NewPIPP(10_000, 1)
	p.PromoteProb = 1
	for i := 0; i < 50; i++ {
		p.Access(req(int64(i), uint64(i), 100))
	}
	before := position(p.q, 10)
	p.Access(req(100, 10, 100))
	after := position(p.q, 10)
	if after != before-1 {
		t.Fatalf("PIPP hit moved entry from %d to %d, want single step", before, after)
	}
}

func TestDGIPPREvolves(t *testing.T) {
	g := NewDGIPPR(200_000, 2)
	g.Epoch = 500
	reqs := testTrace(t, 5)
	gen0Ins, gen0Pro := g.Chromosome()
	for _, r := range reqs {
		g.Access(r)
	}
	// After many generations the GA must have run without corrupting the
	// queue; fitness bookkeeping sanity:
	if g.reqs != len(reqs) {
		t.Fatalf("request counter %d, want %d", g.reqs, len(reqs))
	}
	_ = gen0Ins
	_ = gen0Pro
	if g.Used() > g.Capacity() {
		t.Fatal("capacity violated")
	}
}

func TestDGIPPRBreedKeepsPopulationSize(t *testing.T) {
	g := NewDGIPPR(10_000, 3)
	for i := range g.fitness {
		g.fitness[i] = i
	}
	g.breed()
	if len(g.pop) != g.Population {
		t.Fatalf("population size %d after breed", len(g.pop))
	}
	for _, c := range g.pop {
		if c.insertSeg < 0 || c.insertSeg >= NumSegments || c.promote < 0 || c.promote > 3 {
			t.Fatalf("invalid chromosome %+v", c)
		}
	}
}

// LIP must beat MIP on a pure ZRO flood over a small hot set, and MIP
// must beat LIP on a recency-friendly stream — the two regimes the
// adaptive policies arbitrate between.
func TestLIPvsMIPRegimes(t *testing.T) {
	capBytes := int64(50_000)
	// Regime 1: hot set fits, plus a flood of one-hit wonders large
	// enough that MRU insertion thrashes the hot set.
	var flood []cache.Request
	next := uint64(1 << 20)
	for i := 0; i < 40_000; i++ {
		if i%4 == 0 {
			flood = append(flood, req(int64(i), uint64(i/4%40), 1000)) // hot
		} else {
			flood = append(flood, req(int64(i), next, 1000)) // one-hit
			next++
		}
	}
	hits := func(ins cache.InsertionPolicy, reqs []cache.Request) int {
		c := NewCache("x", capBytes, ins)
		h := 0
		for _, r := range reqs {
			if c.Access(r) {
				h++
			}
		}
		return h
	}
	if lip, mip := hits(LIP{}, flood), hits(MIP{}, flood); lip <= mip {
		t.Fatalf("LIP (%d) should beat MIP (%d) on ZRO flood", lip, mip)
	}
	// Regime 2: pure recency stream (cyclic reuse within cache size).
	var recency []cache.Request
	for i := 0; i < 40_000; i++ {
		recency = append(recency, req(int64(i), uint64(i%45), 1000))
	}
	if lip, mip := hits(LIP{}, recency), hits(MIP{}, recency); mip < lip {
		t.Fatalf("MIP (%d) should not lose to LIP (%d) on recency stream", mip, lip)
	}
}
