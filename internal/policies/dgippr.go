package policies

import (
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// promoMode is a DGIPPR promotion gene.
type promoMode int

const (
	promoStay  promoMode = iota // leave the hit object in place
	promoUp1                    // one step toward MRU
	promoUp4                    // four steps toward MRU
	promoFront                  // move to the global MRU position
)

// chromosome is one insertion/promotion parameter vector.
type chromosome struct {
	insertSeg int
	promote   promoMode
}

// DGIPPR is genetic insertion and promotion for pseudo-LRU replacement
// (Jiménez). The original evolves insertion/promotion position vectors
// for a tree-PLRU last-level cache offline; this adaptation evolves
// (insertion segment, promotion step) chromosomes online: each chromosome
// drives the cache for one evaluation epoch, its fitness is the epoch hit
// count, and after every generation the fitter half survives and breeds
// the other half by crossover and mutation.
type DGIPPR struct {
	// Epoch is the per-chromosome evaluation window in requests
	// (default 4096).
	Epoch int
	// Population is the chromosome count (default 8).
	Population int

	name string
	cap  int64
	q    *SegQueue
	rng  *rand.Rand

	pop     []chromosome
	fitness []int
	current int
	reqs    int
	hits    int
}

var _ cache.Policy = (*DGIPPR)(nil)

// NewDGIPPR returns a DGIPPR cache of capBytes capacity.
func NewDGIPPR(capBytes int64, seed int64) *DGIPPR {
	g := &DGIPPR{
		Epoch:      4096,
		Population: 8,
		name:       "DGIPPR",
		cap:        capBytes,
		q:          NewSegQueue(),
		rng:        rand.New(rand.NewSource(seed + 503)),
	}
	for i := 0; i < g.Population; i++ {
		g.pop = append(g.pop, chromosome{
			insertSeg: g.rng.Intn(NumSegments),
			promote:   promoMode(g.rng.Intn(4)),
		})
	}
	g.fitness = make([]int, g.Population)
	return g
}

// Name implements cache.Policy.
func (g *DGIPPR) Name() string { return g.name }

// Capacity implements cache.Policy.
func (g *DGIPPR) Capacity() int64 { return g.cap }

// Used implements cache.Policy.
func (g *DGIPPR) Used() int64 { return g.q.Bytes() }

// Chromosome exposes the active parameter vector for tests.
func (g *DGIPPR) Chromosome() (insertSeg int, promote int) {
	c := g.pop[g.current]
	return c.insertSeg, int(c.promote)
}

// Access implements cache.Policy.
func (g *DGIPPR) Access(req cache.Request) bool {
	g.reqs++
	if g.reqs%g.Epoch == 0 {
		g.advance()
	}
	c := g.pop[g.current]
	if h := g.q.Get(req.Key); h != cache.None {
		e := g.q.At(h)
		e.Hits++
		e.LastAccess = req.Time
		g.hits++
		switch c.promote {
		case promoUp1:
			g.q.StepUp(h)
		case promoUp4:
			for i := 0; i < 4; i++ {
				g.q.StepUp(h)
			}
		case promoFront:
			g.q.MoveToFront(h)
		}
		return true
	}
	if req.Size > g.cap || req.Size <= 0 {
		return false
	}
	for g.q.Bytes()+req.Size > g.cap {
		g.q.EvictBack()
	}
	g.q.InsertAt(req.Key, req.Size, req.Time, c.insertSeg)
	return false
}

// advance records the finished chromosome's fitness and moves to the
// next; at generation end it breeds a new population.
func (g *DGIPPR) advance() {
	g.fitness[g.current] = g.hits
	g.hits = 0
	g.current++
	if g.current < g.Population {
		return
	}
	g.current = 0
	g.breed()
}

func (g *DGIPPR) breed() {
	// Rank by fitness (selection): simple O(n²) ranking, n = 8.
	order := make([]int, g.Population)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if g.fitness[order[j]] > g.fitness[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	half := g.Population / 2
	next := make([]chromosome, 0, g.Population)
	for i := 0; i < half; i++ {
		next = append(next, g.pop[order[i]])
	}
	for len(next) < g.Population {
		a := next[g.rng.Intn(half)]
		b := next[g.rng.Intn(half)]
		child := chromosome{insertSeg: a.insertSeg, promote: b.promote}
		if g.rng.Float64() < 0.25 { // mutation
			child.insertSeg = g.rng.Intn(NumSegments)
		}
		if g.rng.Float64() < 0.25 {
			child.promote = promoMode(g.rng.Intn(4))
		}
		next = append(next, child)
	}
	g.pop = next
}

// Reset implements cache.Resetter.
func (g *DGIPPR) Reset() {
	g.q = NewSegQueue()
	g.reqs, g.hits, g.current = 0, 0, 0
}
