package policies

import (
	"math/bits"
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// DAAIP is the deadblock-aware adaptive insertion policy (Mahto et al.).
// It predicts dead-on-arrival objects from per-class dead/live history and
// adapts the aggressiveness of LRU insertion: each size class keeps a
// saturating dead counter (incremented when a class member is evicted
// without reuse, decremented on a hit), and predicted-dead insertions go
// to the LRU position with an escape probability so mispredictions can
// recover — the adaptive component of the original proposal.
type DAAIP struct {
	// Classes is the number of size classes (default 32).
	Classes int
	// DeadMax saturates the per-class counters (default 15).
	DeadMax int
	// Threshold is the dead-count at which a class is predicted dead
	// (default 12).
	Threshold int
	// Escape is the probability a predicted-dead insertion still goes to
	// MRU (default 1/16).
	Escape float64
	// Seed fixes the PRNG.
	Seed int64

	counters []int
	rng      *rand.Rand
}

// NewDAAIP returns a DAAIP with the default configuration.
func NewDAAIP(seed int64) *DAAIP {
	d := &DAAIP{Classes: 32, DeadMax: 15, Threshold: 12, Escape: 1.0 / 16, Seed: seed}
	d.counters = make([]int, d.Classes)
	d.rng = rand.New(rand.NewSource(seed + 307))
	return d
}

// Name implements cache.InsertionPolicy.
func (d *DAAIP) Name() string { return "DAAIP" }

func (d *DAAIP) class(size int64) int {
	c := bits.Len64(uint64(size))
	if c >= d.Classes {
		c = d.Classes - 1
	}
	return c
}

// OnAccess implements cache.InsertionPolicy.
func (d *DAAIP) OnAccess(req cache.Request, hit bool) {
	if hit {
		c := d.class(req.Size)
		if d.counters[c] > 0 {
			d.counters[c]--
		}
	}
}

// OnEvict implements cache.InsertionPolicy.
func (d *DAAIP) OnEvict(ev cache.EvictInfo) {
	if !ev.EverHit {
		c := d.class(ev.Size)
		if d.counters[c] < d.DeadMax {
			d.counters[c]++
		}
	}
}

// ChooseInsert implements cache.InsertionPolicy.
func (d *DAAIP) ChooseInsert(req cache.Request) cache.Position {
	if d.counters[d.class(req.Size)] >= d.Threshold && d.rng.Float64() >= d.Escape {
		return cache.LRU
	}
	return cache.MRU
}

// ChoosePromote implements cache.InsertionPolicy (DAAIP promotes to MRU).
func (d *DAAIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }
