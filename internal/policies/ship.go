package policies

import (
	"math/bits"

	"github.com/scip-cache/scip/internal/cache"
)

// SHiP is the signature-based hit predictor (Wu et al.). The original
// signature is the requesting PC; CDN requests carry no PC, so the
// signature is the object's size class (log2 bucket) combined with a few
// key bits — the stable per-population signal available in a CDN. A table
// of saturating counters tracks whether objects with a signature get
// re-referenced: an eviction without reuse decrements, a hit increments.
// Insertions whose signature counter is zero are predicted
// distant-reuse and placed at the LRU position.
type SHiP struct {
	// TableBits sizes the signature history counter table (default 14).
	TableBits int
	// CounterMax saturates the counters (default 7, a 3-bit counter).
	CounterMax int

	table []int8
	mask  uint32
}

// NewSHiP returns a SHiP predictor with a 2^14-entry SHCT.
func NewSHiP() *SHiP {
	s := &SHiP{TableBits: 14, CounterMax: 7}
	s.table = make([]int8, 1<<s.TableBits)
	for i := range s.table {
		s.table[i] = 1 // weakly reusable prior
	}
	s.mask = uint32(len(s.table) - 1)
	return s
}

// Name implements cache.InsertionPolicy.
func (s *SHiP) Name() string { return "SHiP" }

// signature folds the size class and key bits into a table index.
func (s *SHiP) signature(key uint64, size int64) uint32 {
	sizeClass := uint32(bits.Len64(uint64(size)))
	h := uint32(key*0x9E3779B97F4A7C15>>40) ^ sizeClass<<8 ^ sizeClass
	return h & s.mask
}

// OnAccess implements cache.InsertionPolicy: hits increment the
// signature's reuse counter.
func (s *SHiP) OnAccess(req cache.Request, hit bool) {
	if hit {
		idx := s.signature(req.Key, req.Size)
		if int(s.table[idx]) < s.CounterMax {
			s.table[idx]++
		}
	}
}

// OnEvict implements cache.InsertionPolicy: evictions without reuse
// decrement the signature's counter.
func (s *SHiP) OnEvict(ev cache.EvictInfo) {
	if !ev.EverHit {
		idx := s.signature(ev.Key, ev.Size)
		if s.table[idx] > 0 {
			s.table[idx]--
		}
	}
}

// ChooseInsert implements cache.InsertionPolicy.
func (s *SHiP) ChooseInsert(req cache.Request) cache.Position {
	if s.table[s.signature(req.Key, req.Size)] == 0 {
		return cache.LRU
	}
	return cache.MRU
}

// ChoosePromote implements cache.InsertionPolicy (SHiP promotes to MRU).
func (s *SHiP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }
