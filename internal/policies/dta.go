package policies

import (
	"math"
	"math/bits"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/ml"
)

// DTA is insertion-policy selection by decision-tree analysis (Khan &
// Jiménez). A small regression tree is periodically retrained on recently
// resolved residencies — features of the object at insertion time, target
// "died without reuse" — and insertions the tree predicts dead go to the
// LRU position. The original work trains the tree offline over program
// features; here the tree trains online over the object features
// available to a CDN (size class, recency, frequency).
type DTA struct {
	// Retrain is the retraining period in resolved residencies
	// (default 4096).
	Retrain int
	// Buffer caps the training buffer (default 8192).
	Buffer int
	// Threshold is the predicted-dead score above which insertion goes
	// to LRU (default 0.5).
	Threshold float64

	tree        *ml.RegressionTree
	trained     bool
	bufX        ml.Matrix
	bufY        []float64
	resolved    int
	curFeatures [dtaFeatures]float64

	// Per-object running stats for features.
	lastSeen map[uint64]int64
	freq     map[uint64]int
	// Pending features of currently-resident objects, keyed by object.
	pending map[uint64][dtaFeatures]float64

	now int64
	req int
}

// NewDTA returns a DTA policy.
func NewDTA() *DTA {
	return &DTA{
		Retrain:   4096,
		Buffer:    8192,
		Threshold: 0.5,
		lastSeen:  make(map[uint64]int64, 1<<12),
		freq:      make(map[uint64]int, 1<<12),
		pending:   make(map[uint64][dtaFeatures]float64, 1<<12),
	}
}

// Name implements cache.InsertionPolicy.
func (d *DTA) Name() string { return "DTA" }

// dtaFeatures is the insertion-time feature count (size class, recency,
// frequency).
const dtaFeatures = 3

func (d *DTA) features(req cache.Request) [dtaFeatures]float64 {
	gap := 0.0
	if last, ok := d.lastSeen[req.Key]; ok {
		gap = float64(d.req) - float64(last)
	}
	return [dtaFeatures]float64{
		float64(bits.Len64(uint64(req.Size))),
		math.Log2(gap + 1),
		math.Log2(float64(d.freq[req.Key]) + 1),
	}
}

// OnAccess implements cache.InsertionPolicy: update per-object stats and
// resolve a residency as live on its first hit. The feature vector for a
// possible insertion is computed before the stats update so it describes
// the object's history excluding the current request.
func (d *DTA) OnAccess(req cache.Request, hit bool) {
	d.req++
	d.curFeatures = d.features(req)
	if hit {
		if f, ok := d.pending[req.Key]; ok {
			d.record(f, 0) // reused: not dead
			delete(d.pending, req.Key)
		}
	}
	d.freq[req.Key]++
	d.lastSeen[req.Key] = int64(d.req)
	d.now = req.Time
}

// OnEvict implements cache.InsertionPolicy: an eviction without reuse
// resolves the pending residency as dead.
func (d *DTA) OnEvict(ev cache.EvictInfo) {
	f, ok := d.pending[ev.Key]
	if !ok {
		return
	}
	delete(d.pending, ev.Key)
	if ev.EverHit {
		d.record(f, 0)
	} else {
		d.record(f, 1)
	}
}

func (d *DTA) record(f [dtaFeatures]float64, dead float64) {
	if d.bufX.Rows() >= d.Buffer {
		// Drop the oldest half to keep the buffer fresh without
		// reallocating per sample.
		n := d.Buffer / 2
		rows := d.bufX.Rows()
		d.bufX.TrimFront(n)
		copy(d.bufY, d.bufY[rows-n:])
		d.bufY = d.bufY[:n]
	}
	d.bufX.AppendRow(f[:])
	d.bufY = append(d.bufY, dead)
	d.resolved++
	if d.resolved%d.Retrain == 0 && d.bufX.Rows() >= 256 {
		if d.tree == nil {
			d.tree = &ml.RegressionTree{MaxDepth: 4, MinLeaf: 32}
		}
		// Refitting in place reuses the node array and grow scratch.
		d.tree.Fit(&d.bufX, d.bufY)
		d.trained = true
	}
}

// ChooseInsert implements cache.InsertionPolicy.
func (d *DTA) ChooseInsert(req cache.Request) cache.Position {
	f := d.curFeatures
	d.pending[req.Key] = f
	if d.trained && d.tree.Predict(f[:]) > d.Threshold {
		return cache.LRU
	}
	return cache.MRU
}

// ChoosePromote implements cache.InsertionPolicy (DTA promotes to MRU).
func (d *DTA) ChoosePromote(cache.Request) cache.Position { return cache.MRU }
