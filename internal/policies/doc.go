// Package policies implements the eight baseline insertion/promotion
// policies the paper compares SCIP against in Figures 8 and 9: LIP, DIP,
// PIPP, DTA, SHiP, DGIPPR, DAAIP and ASC-IP (plus MIP and BIP, the
// building blocks). All baselines pair with the LRU victim-selection
// policy, matching the paper's setup. Policies whose original formulation
// targets set-associative CPU caches are re-expressed for a single
// byte-capacity queue; the decision signal each exploits is preserved (see
// DESIGN.md §3).
package policies
