package policies

import (
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// MIP is the MRU insertion policy: every object, missing or hit, goes to
// the MRU position. Paired with LRU victim selection this is plain LRU.
type MIP struct{}

// Name implements cache.InsertionPolicy.
func (MIP) Name() string { return "MIP" }

// ChooseInsert implements cache.InsertionPolicy.
func (MIP) ChooseInsert(cache.Request) cache.Position { return cache.MRU }

// ChoosePromote implements cache.InsertionPolicy.
func (MIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }

// OnEvict implements cache.InsertionPolicy.
func (MIP) OnEvict(cache.EvictInfo) {}

// OnAccess implements cache.InsertionPolicy.
func (MIP) OnAccess(cache.Request, bool) {}

// LIP is the LRU insertion policy: missing objects enter at the LRU
// position; hits promote to MRU.
type LIP struct{}

// Name implements cache.InsertionPolicy.
func (LIP) Name() string { return "LIP" }

// ChooseInsert implements cache.InsertionPolicy.
func (LIP) ChooseInsert(cache.Request) cache.Position { return cache.LRU }

// ChoosePromote implements cache.InsertionPolicy.
func (LIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }

// OnEvict implements cache.InsertionPolicy.
func (LIP) OnEvict(cache.EvictInfo) {}

// OnAccess implements cache.InsertionPolicy.
func (LIP) OnAccess(cache.Request, bool) {}

// BIP is the bimodal insertion policy (Qureshi et al.): LIP with a small
// probability Epsilon of inserting at MRU instead, so the cache can adapt
// to working-set changes.
type BIP struct {
	// Epsilon is the MRU-insertion probability (default 1/32).
	Epsilon float64
	// Seed fixes the PRNG.
	Seed int64

	rng *rand.Rand
}

// NewBIP returns a BIP with the classic 1/32 bimodal throttle.
func NewBIP(seed int64) *BIP { return &BIP{Epsilon: 1.0 / 32, Seed: seed} }

// Name implements cache.InsertionPolicy.
func (b *BIP) Name() string { return "BIP" }

func (b *BIP) lazyInit() {
	if b.rng == nil {
		if b.Epsilon <= 0 {
			b.Epsilon = 1.0 / 32
		}
		b.rng = rand.New(rand.NewSource(b.Seed + 101))
	}
}

// ChooseInsert implements cache.InsertionPolicy.
func (b *BIP) ChooseInsert(cache.Request) cache.Position {
	b.lazyInit()
	if b.rng.Float64() < b.Epsilon {
		return cache.MRU
	}
	return cache.LRU
}

// ChoosePromote implements cache.InsertionPolicy.
func (b *BIP) ChoosePromote(cache.Request) cache.Position { return cache.MRU }

// OnEvict implements cache.InsertionPolicy.
func (b *BIP) OnEvict(cache.EvictInfo) {}

// OnAccess implements cache.InsertionPolicy.
func (b *BIP) OnAccess(cache.Request, bool) {}

// NewCache pairs an insertion policy with the LRU victim-selection cache,
// the configuration every Figure-8 baseline uses.
func NewCache(name string, capBytes int64, ins cache.InsertionPolicy) *cache.QueueCache {
	return cache.NewQueueCache(name, capBytes, ins)
}
