package policies

import "github.com/scip-cache/scip/internal/cache"

// SegQueue approximates positional insertion into an LRU queue by
// maintaining NumSegments byte-balanced segments. Inserting "at position
// k/N of the queue" becomes an O(1) push onto segment k, and a PIPP-style
// single-step promotion moves an entry one place toward the MRU end
// (possibly crossing a segment boundary). Rebalancing shifts boundary
// entries between adjacent segments and is amortised O(1) per operation.
// Segment 0 is the MRU end. An entry's segment lives in Entry.Class.
// Entries live in a private pointer-free arena addressed by handles.
type SegQueue struct {
	arena cache.Arena
	segs  []cache.Queue
	index cache.Index
	bytes int64
}

// NumSegments is the positional granularity of a SegQueue.
const NumSegments = 8

// NewSegQueue returns an empty segmented queue.
func NewSegQueue() *SegQueue {
	s := &SegQueue{segs: make([]cache.Queue, NumSegments)}
	for i := range s.segs {
		s.segs[i] = s.arena.NewQueue()
	}
	return s
}

// Len returns the number of entries.
func (s *SegQueue) Len() int { return s.index.Len() }

// Bytes returns the total bytes stored.
func (s *SegQueue) Bytes() int64 { return s.bytes }

// Get returns the handle for key, or cache.None.
func (s *SegQueue) Get(key uint64) cache.Handle { return s.index.Get(key) }

// At returns the entry behind a handle. The pointer is transient: it is
// invalidated by the next InsertAt.
func (s *SegQueue) At(h cache.Handle) *cache.Entry { return s.arena.At(h) }

// InsertAt records a new object at the front of segment seg (clamped to
// the valid range) and returns its handle. The key must not already be
// present.
func (s *SegQueue) InsertAt(key uint64, size, now int64, seg int) cache.Handle {
	if seg < 0 {
		seg = 0
	}
	if seg >= NumSegments {
		seg = NumSegments - 1
	}
	h := s.arena.Alloc()
	e := s.arena.At(h)
	e.Key = key
	e.Size = size
	e.InsertTime = now
	e.LastAccess = now
	e.Class = int32(seg)
	s.segs[seg].PushFront(h)
	s.index.Put(key, h)
	s.bytes += size
	s.rebalance()
	return h
}

// Remove unlinks and frees h.
func (s *SegQueue) Remove(h cache.Handle) {
	e := s.arena.At(h)
	s.segs[e.Class].Remove(h)
	s.index.Delete(e.Key)
	s.bytes -= e.Size
	s.arena.Free(h)
	s.rebalance()
}

// EvictBack removes the globally least-recent entry, returning its key
// and size, or ok=false when empty.
func (s *SegQueue) EvictBack() (key uint64, size int64, ok bool) {
	for k := NumSegments - 1; k >= 0; k-- {
		if h := s.segs[k].Back(); h != cache.None {
			e := s.arena.At(h)
			key, size = e.Key, e.Size
			s.segs[k].Remove(h)
			s.index.Delete(key)
			s.bytes -= size
			s.arena.Free(h)
			s.rebalance()
			return key, size, true
		}
	}
	return 0, 0, false
}

// StepUp moves h one position toward the MRU end: within its segment, or
// by swapping with its global predecessor when it is already at its
// segment's front (a swap keeps the segment byte balance, so rebalancing
// cannot immediately undo the promotion). At the global front it is a
// no-op.
func (s *SegQueue) StepUp(h cache.Handle) {
	seg := s.arena.At(h).Class
	if s.segs[seg].Front() != h {
		s.segs[seg].MoveTowardFront(h)
		return
	}
	prev := seg - 1
	for prev >= 0 && s.segs[prev].Len() == 0 {
		prev--
	}
	if prev < 0 {
		return
	}
	pred := s.segs[prev].Back()
	s.segs[prev].Remove(pred)
	s.segs[seg].Remove(h)
	s.arena.At(h).Class = prev
	s.segs[prev].PushBack(h)
	s.arena.At(pred).Class = seg
	s.segs[seg].PushFront(pred)
}

// MoveToFront moves h to the global MRU position.
func (s *SegQueue) MoveToFront(h cache.Handle) {
	e := s.arena.At(h)
	s.segs[e.Class].Remove(h)
	e.Class = 0
	s.segs[0].PushFront(h)
	s.rebalance()
}

// rebalance nudges boundary entries so segment byte sizes stay within a
// quarter-target of each other, preserving global order.
func (s *SegQueue) rebalance() {
	target := s.bytes / NumSegments
	slack := target/4 + 1
	for k := 0; k < NumSegments-1; k++ {
		for s.segs[k].Bytes() > target+slack {
			h := s.segs[k].Back()
			if h == cache.None {
				break
			}
			s.segs[k].Remove(h)
			s.arena.At(h).Class = int32(k + 1)
			s.segs[k+1].PushFront(h)
		}
		for s.segs[k].Bytes() < target-slack && s.segs[k+1].Len() > 0 {
			h := s.segs[k+1].Front()
			s.segs[k+1].Remove(h)
			s.arena.At(h).Class = int32(k)
			s.segs[k].PushBack(h)
		}
	}
}

// keysInOrder returns all keys from MRU to LRU (test helper).
func (s *SegQueue) keysInOrder() []uint64 {
	var out []uint64
	for k := 0; k < NumSegments; k++ {
		for h := s.segs[k].Front(); h != cache.None; h = s.segs[k].Next(h) {
			out = append(out, s.arena.At(h).Key)
		}
	}
	return out
}
