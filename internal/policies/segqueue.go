package policies

import "github.com/scip-cache/scip/internal/cache"

// SegQueue approximates positional insertion into an LRU queue by
// maintaining NumSegments byte-balanced segments. Inserting "at position
// k/N of the queue" becomes an O(1) push onto segment k, and a PIPP-style
// single-step promotion moves an entry one place toward the MRU end
// (possibly crossing a segment boundary). Rebalancing shifts boundary
// entries between adjacent segments and is amortised O(1) per operation.
// Segment 0 is the MRU end. An entry's segment lives in Entry.Class.
type SegQueue struct {
	segs  []cache.Queue
	index map[uint64]*cache.Entry
	bytes int64
}

// NumSegments is the positional granularity of a SegQueue.
const NumSegments = 8

// NewSegQueue returns an empty segmented queue.
func NewSegQueue() *SegQueue {
	return &SegQueue{
		segs:  make([]cache.Queue, NumSegments),
		index: make(map[uint64]*cache.Entry),
	}
}

// Len returns the number of entries.
func (s *SegQueue) Len() int { return len(s.index) }

// Bytes returns the total bytes stored.
func (s *SegQueue) Bytes() int64 { return s.bytes }

// Get returns the entry for key, or nil.
func (s *SegQueue) Get(key uint64) *cache.Entry { return s.index[key] }

// InsertAt places e at the front of segment seg (clamped to the valid
// range). e must not already be present.
func (s *SegQueue) InsertAt(e *cache.Entry, seg int) {
	if seg < 0 {
		seg = 0
	}
	if seg >= NumSegments {
		seg = NumSegments - 1
	}
	e.Class = seg
	s.segs[seg].PushFront(e)
	s.index[e.Key] = e
	s.bytes += e.Size
	s.rebalance()
}

// Remove unlinks e.
func (s *SegQueue) Remove(e *cache.Entry) {
	s.segs[e.Class].Remove(e)
	delete(s.index, e.Key)
	s.bytes -= e.Size
	s.rebalance()
}

// EvictBack removes and returns the globally least-recent entry, or nil
// when empty.
func (s *SegQueue) EvictBack() *cache.Entry {
	for k := NumSegments - 1; k >= 0; k-- {
		if e := s.segs[k].Back(); e != nil {
			s.segs[k].Remove(e)
			delete(s.index, e.Key)
			s.bytes -= e.Size
			s.rebalance()
			return e
		}
	}
	return nil
}

// StepUp moves e one position toward the MRU end: within its segment, or
// by swapping with its global predecessor when it is already at its
// segment's front (a swap keeps the segment byte balance, so rebalancing
// cannot immediately undo the promotion). At the global front it is a
// no-op.
func (s *SegQueue) StepUp(e *cache.Entry) {
	seg := e.Class
	if s.segs[seg].Front() != e {
		s.segs[seg].MoveTowardFront(e)
		return
	}
	prev := seg - 1
	for prev >= 0 && s.segs[prev].Len() == 0 {
		prev--
	}
	if prev < 0 {
		return
	}
	pred := s.segs[prev].Back()
	s.segs[prev].Remove(pred)
	s.segs[seg].Remove(e)
	e.Class = prev
	s.segs[prev].PushBack(e)
	pred.Class = seg
	s.segs[seg].PushFront(pred)
}

// MoveToFront moves e to the global MRU position.
func (s *SegQueue) MoveToFront(e *cache.Entry) {
	s.segs[e.Class].Remove(e)
	e.Class = 0
	s.segs[0].PushFront(e)
	s.rebalance()
}

// rebalance nudges boundary entries so segment byte sizes stay within a
// quarter-target of each other, preserving global order.
func (s *SegQueue) rebalance() {
	target := s.bytes / NumSegments
	slack := target/4 + 1
	for k := 0; k < NumSegments-1; k++ {
		for s.segs[k].Bytes() > target+slack {
			e := s.segs[k].Back()
			if e == nil {
				break
			}
			s.segs[k].Remove(e)
			e.Class = k + 1
			s.segs[k+1].PushFront(e)
		}
		for s.segs[k].Bytes() < target-slack && s.segs[k+1].Len() > 0 {
			e := s.segs[k+1].Front()
			s.segs[k+1].Remove(e)
			e.Class = k
			s.segs[k].PushBack(e)
		}
	}
}

// keysInOrder returns all keys from MRU to LRU (test helper).
func (s *SegQueue) keysInOrder() []uint64 {
	var out []uint64
	for k := 0; k < NumSegments; k++ {
		for e := s.segs[k].Front(); e != nil; e = e.Next() {
			out = append(out, e.Key)
		}
	}
	return out
}
