package policies

import (
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// PIPP is promotion/insertion pseudo-partitioning (Xie & Loh). The
// original partitions a shared set-associative cache between cores by
// choosing a per-core insertion position and promoting hits by a single
// position with a fixed probability. For a single CDN request stream the
// partitioning degenerates to its two mechanisms: insertion at an
// intermediate queue position and probabilistic single-step promotion —
// which is precisely the behaviour the paper critiques ("its promotion
// policy moves the hit object one unit towards the MRU position",
// leaving P-ZROs resident for a long time in large CDN queues).
type PIPP struct {
	// InsertSeg is the insertion segment in [0, NumSegments) from the
	// MRU end (default 4: mid-queue).
	InsertSeg int
	// PromoteProb is the probability a hit moves one step toward MRU
	// (default 3/4, the original's p_prom).
	PromoteProb float64

	name string
	cap  int64
	q    *SegQueue
	rng  *rand.Rand
}

var _ cache.Policy = (*PIPP)(nil)

// NewPIPP returns a PIPP cache of capBytes capacity.
func NewPIPP(capBytes int64, seed int64) *PIPP {
	return &PIPP{
		InsertSeg:   4,
		PromoteProb: 0.75,
		name:        "PIPP",
		cap:         capBytes,
		q:           NewSegQueue(),
		rng:         rand.New(rand.NewSource(seed + 401)),
	}
}

// Name implements cache.Policy.
func (p *PIPP) Name() string { return p.name }

// Capacity implements cache.Policy.
func (p *PIPP) Capacity() int64 { return p.cap }

// Used implements cache.Policy.
func (p *PIPP) Used() int64 { return p.q.Bytes() }

// Access implements cache.Policy.
func (p *PIPP) Access(req cache.Request) bool {
	if h := p.q.Get(req.Key); h != cache.None {
		e := p.q.At(h)
		e.Hits++
		e.LastAccess = req.Time
		if p.rng.Float64() < p.PromoteProb {
			p.q.StepUp(h)
		}
		return true
	}
	if req.Size > p.cap || req.Size <= 0 {
		return false
	}
	for p.q.Bytes()+req.Size > p.cap {
		p.q.EvictBack()
	}
	p.q.InsertAt(req.Key, req.Size, req.Time, p.InsertSeg)
	return false
}

// Reset implements cache.Resetter.
func (p *PIPP) Reset() { p.q = NewSegQueue() }
