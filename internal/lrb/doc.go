// Package lrb implements a faithful, laptop-scale reduction of Learning
// Relaxed Belady (Song et al., NSDI'20): per-object features (inter-access
// deltas, exponentially decayed counters, size, age) are maintained inside
// a sliding memory window; training samples receive their labels — the
// forward distance to the next access — when the object is next requested
// (or the window expires them); a gradient-boosted regression forest
// predicts time-to-next-access; and eviction removes the
// furthest-predicted object from a random sample of cached candidates.
//
// The sampling/training/eviction hot path is allocation-free in steady
// state: pending samples live in a growable flat arena linked by offsets,
// feature vectors are filled into fixed scratch, the training matrix is a
// flat ml.Matrix trimmed by copy, and the GBM refits in place.
package lrb
