package lrb

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/trace"
)

func req(t int64, key uint64, size int64) cache.Request {
	return cache.Request{Time: t, Key: key, Size: size}
}

func testTrace(t *testing.T, seed int64, n int) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.Config{
		Name: "l", Seed: seed,
		Requests:    n,
		CatalogSize: 1200,
		ZipfAlpha:   0.85,
		OneHitFrac:  0.3,
		EchoProb:    0.2, EchoDelay: 80, EchoTailFrac: 0.5,
		EpochRequests: n / 3, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLRBBasicBehaviour(t *testing.T) {
	l := New(1000, WithSeed(1))
	if l.Access(req(0, 1, 100)) {
		t.Fatal("cold access hit")
	}
	if !l.Access(req(1, 1, 100)) {
		t.Fatal("re-access missed")
	}
	if l.Access(req(2, 2, 2000)) {
		t.Fatal("oversized hit")
	}
	if l.Used() != 100 {
		t.Fatalf("Used=%d", l.Used())
	}
}

func TestLRBCapacityAndTraining(t *testing.T) {
	tr := testTrace(t, 7, 80_000)
	l := New(200_000, WithSeed(2), WithWindow(1<<15))
	hits := 0
	for i, r := range tr.Requests {
		if l.Access(r) {
			hits++
		}
		if l.Used() > l.Capacity() {
			t.Fatalf("capacity exceeded at %d", i)
		}
	}
	if !l.Trained() {
		t.Fatal("LRB never trained a model")
	}
	if hits == 0 {
		t.Fatal("no hits")
	}
}

func TestLRBCompetitiveWithLRU(t *testing.T) {
	tr := testTrace(t, 8, 120_000)
	capBytes := int64(250_000)
	opts := sim.Options{WarmupFrac: 0.3}
	lru := sim.Run(tr, cache.NewLRU(capBytes), opts)
	lrb := sim.Run(tr, New(capBytes, WithSeed(3), WithWindow(1<<15)), opts)
	// The learned policy should beat plain LRU on a drift+ZRO workload
	// once trained; allow a small tolerance for the warm-up phase.
	if lrb.MissRatio() > lru.MissRatio()+0.01 {
		t.Fatalf("LRB %.4f materially worse than LRU %.4f", lrb.MissRatio(), lru.MissRatio())
	}
}

func TestLRBWindowPrunesMetadata(t *testing.T) {
	l := New(10_000, WithSeed(4), WithWindow(1000))
	// Touch many one-shot objects; their metadata must not accumulate
	// past the window sweep.
	for i := 0; i < 10_000; i++ {
		l.Access(req(int64(i), uint64(i), 20_000)) // oversized: never cached
	}
	if len(l.meta) > 2500 {
		t.Fatalf("metadata not pruned: %d entries", len(l.meta))
	}
}

func TestLRBInsertionIntegration(t *testing.T) {
	ins := demoteAll{}
	l := New(1000, WithSeed(5), WithInsertion(ins))
	if l.Name() != "LRB-demote" {
		t.Fatalf("name = %q", l.Name())
	}
	l.Access(req(0, 1, 100))
	m := l.meta[1]
	if !m.demoted || m.insertedMRU {
		t.Fatal("insertion policy demotion not applied")
	}
	// Demoted entries are the first to go.
	l.Access(req(1, 2, 950))
	if m.cached {
		t.Fatal("demoted entry survived eviction pressure")
	}
}

type demoteAll struct{}

func (demoteAll) Name() string                               { return "demote" }
func (demoteAll) ChooseInsert(cache.Request) cache.Position  { return cache.LRU }
func (demoteAll) ChoosePromote(cache.Request) cache.Position { return cache.LRU }
func (demoteAll) OnEvict(cache.EvictInfo)                    {}
func (demoteAll) OnAccess(cache.Request, bool)               {}

func TestLRBResetReplaysIdenticalStream(t *testing.T) {
	// Reset must rewind the policy to its New state: replaying the same
	// trace on a reset instance — whose metadata structs, pending arena
	// and training matrix are recycled rather than reallocated — has to
	// reproduce the fresh instance's exact hit/miss stream.
	tr := testTrace(t, 10, 60_000)
	replay := func(l *LRB) uint64 {
		var sig uint64
		for i, r := range tr.Requests {
			if l.Access(r) {
				sig = sig*31 + uint64(i)
			}
		}
		return sig
	}
	l := New(100_000, WithSeed(11), WithWindow(1<<12))
	fresh := replay(l)
	if !l.Trained() {
		t.Fatal("model never trained; test exercises nothing")
	}
	l.Reset()
	if l.Trained() {
		t.Fatal("Reset kept a trained model")
	}
	if l.Used() != 0 || l.Evictions() != 0 {
		t.Fatalf("Reset kept counters: used=%d evictions=%d", l.Used(), l.Evictions())
	}
	for round := 1; round <= 2; round++ {
		if sig := replay(l); sig != fresh {
			t.Fatalf("reset replay %d diverged: %#x != %#x", round, sig, fresh)
		}
		l.Reset()
	}
}

func TestLRBAccessAllocsSteadyState(t *testing.T) {
	// Once warm — metadata map populated, pending arena and training
	// matrix at their high-water marks, first model fit — the sampled
	// access path (feature extraction, sample labelling, periodic GBM
	// retrains, window pruning, sampled eviction) must stay off the heap.
	// The warm-up is long enough that trainX has hit MaxTrain and been
	// halved at least once, so no backing array grows afterwards.
	tr := testTrace(t, 12, 120_000)
	l := New(100_000, WithSeed(13), WithWindow(1<<12))
	for _, r := range tr.Requests {
		l.Access(r)
	}
	if !l.Trained() {
		t.Fatal("LRB did not train during warm-up")
	}
	reqs := tr.Requests
	i := 0
	if a := testing.AllocsPerRun(20_000, func() {
		l.Access(reqs[i%len(reqs)])
		i++
	}); a != 0 {
		t.Fatalf("steady-state access allocates %.4f allocs/op, want 0", a)
	}
}

func TestLRBDeterministic(t *testing.T) {
	// The small window forces many pruneWindow sweeps: window-expired
	// samples must be labelled in sampling order, not in the map's
	// randomised iteration order, or the trained model (and the exact
	// hit sequence) varies between otherwise identical runs.
	tr := testTrace(t, 9, 60_000)
	run := func() (uint64, bool) {
		l := New(100_000, WithSeed(6), WithWindow(1<<12))
		var sig uint64
		for i, r := range tr.Requests {
			if l.Access(r) {
				sig = sig*31 + uint64(i)
			}
		}
		return sig, l.Trained()
	}
	sig0, trained := run()
	if !trained {
		t.Fatal("model never trained; test exercises nothing")
	}
	for i := 0; i < 3; i++ {
		if sig, _ := run(); sig != sig0 {
			t.Fatal("LRB not deterministic for fixed seed")
		}
	}
}
