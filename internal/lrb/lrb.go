package lrb

import (
	"math"
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/ml"
)

// Feature layout.
const (
	numDeltas   = 4
	numEDCs     = 8
	NumFeatures = 2 + numDeltas + numEDCs // size, age, deltas, EDCs
)

// objMeta is the feature state for one object in the memory window.
type objMeta struct {
	key      uint64
	size     int64
	lastSeen int64
	deltas   [numDeltas]float64 // most recent first, log2-scaled
	edcs     [numEDCs]float64
	cached   bool
	// demoted marks SCIP-LRU placements: treated as immediate eviction
	// candidates (predicted-infinite distance).
	demoted bool
	// res tracks how the current residency began and residHits counts
	// its hits, for the insertion-policy integration.
	res       cache.Residency
	residHits int
	// insertedMRU mirrors the SCIP bookkeeping for OnEvict.
	insertedMRU bool
	// storeIdx is the object's slot in the cached-set sampler.
	storeIdx int
}

// pendEntry is a training sample waiting for its label, stored in the
// pending arena and linked to the next sample of the same key by slab
// index (offsets survive slab growth; pointers would not).
type pendEntry struct {
	at   int64
	next int32
	feat [NumFeatures]float64
}

// pendList is the per-key chain of pending samples in sampling order.
// Entries are always looked up with the comma-ok form, so the zero value
// is never confused with a chain starting at slab index 0.
type pendList struct {
	head, tail int32
}

// Option configures an LRB cache.
type Option func(*LRB)

// WithWindow sets the memory window in requests (default 1<<17).
func WithWindow(w int64) Option {
	return func(l *LRB) {
		if w > 0 {
			l.window = w
		}
	}
}

// WithInsertion plugs an insertion/promotion policy (LRB-SCIP /
// LRB-ASC-IP in Figure 12): a cache.LRU decision demotes the object so
// the sampler evicts it first; cache.MRU keeps normal LRB behaviour. Per
// the paper's integration note, the policy can learn from LRB's memory
// window rather than globally.
func WithInsertion(ins cache.InsertionPolicy) Option {
	return func(l *LRB) {
		l.ins = ins
		l.name = "LRB-" + ins.Name()
	}
}

// WithSeed fixes sampling and training randomness.
func WithSeed(seed int64) Option {
	return func(l *LRB) { l.seed = seed }
}

// LRB is the learned cache.
type LRB struct {
	// SampleSize is the eviction sample (default 64).
	SampleSize int
	// SampleEvery subsamples accesses into training candidates
	// (default 8).
	SampleEvery int
	// TrainEvery triggers training after this many fresh labels
	// (default 2048).
	TrainEvery int
	// MaxTrain caps the training set (default 8192).
	MaxTrain int

	name      string
	cap       int64
	bytes     int64
	evictions int64
	window    int64
	seed      int64
	seq       int64
	meta      map[uint64]*objMeta
	cached    []*objMeta // sampler over cached objects
	metaFree  []*objMeta // recycled window-expired metadata
	rng       *rand.Rand

	pend      map[uint64]pendList
	pendSlab  []pendEntry // flat arena behind pend
	pendFree  []int32     // free slab slots
	expBuf    []int32     // window-expired samples, sorted before labelling
	pendCount int
	trainX    ml.Matrix
	trainY    []float64
	fresh     int
	model     *ml.GBM // nil until first successful training
	gbm       *ml.GBM // the persistent model instance model points at
	featBuf   [NumFeatures]float64

	ins cache.InsertionPolicy
	buf []*objMeta
}

var (
	_ cache.Policy   = (*LRB)(nil)
	_ cache.Resetter = (*LRB)(nil)
)

// New returns an LRB cache of capBytes capacity.
func New(capBytes int64, opts ...Option) *LRB {
	l := &LRB{
		SampleSize:  64,
		SampleEvery: 8,
		TrainEvery:  2048,
		MaxTrain:    8192,
		name:        "LRB",
		cap:         capBytes,
		window:      1 << 17,
		meta:        make(map[uint64]*objMeta, 1<<12),
		pend:        make(map[uint64]pendList, 1<<12),
	}
	for _, o := range opts {
		o(l)
	}
	l.rng = rand.New(rand.NewSource(l.seed + 907))
	return l
}

// Name implements cache.Policy.
func (l *LRB) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LRB) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LRB) Used() int64 { return l.bytes }

// Trained reports whether a model has been fit (diagnostics).
func (l *LRB) Trained() bool { return l.model != nil }

// Evictions implements cache.EvictionCounter.
func (l *LRB) Evictions() int64 { return l.evictions }

// Reset implements cache.Resetter: the cache returns to its New state —
// counters and sequence rewound, the PRNG re-seeded from the stored seed
// so the decision stream replays identically — while metadata, arena,
// sampler and training storage are retained for reuse.
func (l *LRB) Reset() {
	for _, m := range l.meta {
		//scip:ordered-ok freelist order only selects which recycled struct backs a later object; every field is reinitialised on reuse
		l.metaFree = append(l.metaFree, m)
	}
	clear(l.meta)
	clear(l.pend)
	l.cached = l.cached[:0]
	l.buf = l.buf[:0]
	l.pendSlab = l.pendSlab[:0]
	l.pendFree = l.pendFree[:0]
	l.expBuf = l.expBuf[:0]
	l.trainX.Reset(NumFeatures)
	l.trainY = l.trainY[:0]
	l.bytes, l.evictions, l.seq = 0, 0, 0
	l.pendCount, l.fresh = 0, 0
	l.model = nil // the persistent gbm keeps its buffers for the next fit
	l.rng.Seed(l.seed + 907)
	if r, ok := l.ins.(cache.Resetter); ok {
		r.Reset()
	}
}

// fillFeatures writes m's feature vector at the current sequence time
// into dst (length NumFeatures).
func (l *LRB) fillFeatures(m *objMeta, dst []float64) {
	dst[0] = math.Log2(float64(m.size) + 1)
	dst[1] = math.Log2(float64(l.seq-m.lastSeen) + 1)
	copy(dst[2:2+numDeltas], m.deltas[:])
	copy(dst[2+numDeltas:], m.edcs[:])
}

// touch updates the feature state of an object on access.
func (l *LRB) touch(m *objMeta) {
	gap := float64(l.seq - m.lastSeen)
	copy(m.deltas[1:], m.deltas[:numDeltas-1])
	m.deltas[0] = math.Log2(gap + 1)
	for i := range m.edcs {
		half := math.Exp2(float64(9 + i))
		m.edcs[i] = 1 + m.edcs[i]*math.Exp2(-gap/half)
	}
	m.lastSeen = l.seq
}

// newMeta returns a fully initialised objMeta, recycling window-expired
// structs when available.
func (l *LRB) newMeta(key uint64, size int64) *objMeta {
	if n := len(l.metaFree); n > 0 {
		m := l.metaFree[n-1]
		l.metaFree = l.metaFree[:n-1]
		*m = objMeta{key: key, size: size, lastSeen: l.seq, storeIdx: -1}
		return m
	}
	//scip:alloc-ok freelist warmup: steady state recycles window-expired metadata
	return &objMeta{key: key, size: size, lastSeen: l.seq, storeIdx: -1}
}

// allocPend returns a free pending-arena slot.
func (l *LRB) allocPend() int32 {
	if n := len(l.pendFree); n > 0 {
		id := l.pendFree[n-1]
		l.pendFree = l.pendFree[:n-1]
		return id
	}
	l.pendSlab = append(l.pendSlab, pendEntry{})
	return int32(len(l.pendSlab) - 1)
}

// Access implements cache.Policy.
//
//scip:hotpath
func (l *LRB) Access(req cache.Request) bool {
	l.seq++
	if l.seq%l.window == 0 {
		l.pruneWindow()
	}
	m, known := l.meta[req.Key]
	hit := known && m.cached
	if l.ins != nil {
		l.ins.OnAccess(req, hit) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting (core.SCIP)
	}
	// Label any pending training samples for this object, in sampling
	// order (the chain preserves append order).
	if ps, ok := l.pend[req.Key]; ok {
		for id := ps.head; id != -1; {
			e := &l.pendSlab[id]
			l.label(e.feat[:], float64(l.seq-e.at))
			next := e.next
			l.pendFree = append(l.pendFree, id)
			l.pendCount--
			id = next
		}
		delete(l.pend, req.Key)
	}
	if !known {
		m = l.newMeta(req.Key, req.Size)
		l.meta[req.Key] = m
	} else {
		l.touch(m)
	}
	// Subsample accesses into unlabeled training candidates.
	if l.seq%int64(l.SampleEvery) == 0 {
		id := l.allocPend()
		e := &l.pendSlab[id] // take the pointer after alloc: the slab may have grown
		e.at = l.seq
		e.next = -1
		l.fillFeatures(m, e.feat[:])
		if ps, ok := l.pend[req.Key]; ok {
			l.pendSlab[ps.tail].next = id
			ps.tail = id
			l.pend[req.Key] = ps
		} else {
			l.pend[req.Key] = pendList{head: id, tail: id}
		}
		l.pendCount++
	}
	if hit {
		m.residHits++
		if obs, ok := l.ins.(cache.ResidencyObserver); ok && l.ins != nil {
			obs.OnResidentHit(req, !m.demoted, m.res, m.residHits) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
		}
		//scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
		if l.ins != nil && l.ins.ChoosePromote(req) == cache.LRU {
			m.demoted = true
			m.insertedMRU = false
		} else {
			m.demoted = false
			m.insertedMRU = true
		}
		if m.res == cache.ResInserted {
			m.res = cache.ResFirstHit
		} else {
			m.res = cache.ResRepeat
		}
		m.residHits = 0
		return true
	}
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	for l.bytes+req.Size > l.cap {
		l.evictOne()
	}
	m.cached = true
	m.residHits = 0
	m.res = cache.ResInserted
	m.demoted = false
	m.insertedMRU = true
	//scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
	if l.ins != nil && l.ins.ChooseInsert(req) == cache.LRU {
		m.demoted = true
		m.insertedMRU = false
	}
	m.storeIdx = len(l.cached)
	l.cached = append(l.cached, m)
	l.bytes += req.Size
	return false
}

// label adds a completed training sample and triggers training. feat is
// copied into the flat training matrix.
func (l *LRB) label(feat []float64, dist float64) {
	if l.trainX.Rows() >= l.MaxTrain {
		n := l.MaxTrain / 2
		rows := l.trainX.Rows()
		l.trainX.TrimFront(n)
		copy(l.trainY, l.trainY[rows-n:])
		l.trainY = l.trainY[:n]
	}
	l.trainX.AppendRow(feat)
	l.trainY = append(l.trainY, math.Log2(dist+1))
	l.fresh++
	if l.fresh >= l.TrainEvery && l.trainX.Rows() >= 512 {
		l.fresh = 0
		if l.gbm == nil {
			l.gbm = &ml.GBM{Squared: true, Trees: 30, Depth: 4, LR: 0.2, MinLeaf: 16} //scip:alloc-ok one-time lazy construction of the persistent model
		}
		// Refitting in place reuses the ensemble, score and histogram
		// buffers; FitRegression only fails on an empty matrix, which
		// the >= 512 row guard excludes.
		if err := l.gbm.FitRegression(&l.trainX, l.trainY); err == nil {
			l.model = l.gbm
		}
	}
}

// predictDistance scores a cached candidate; higher means safer to evict.
func (l *LRB) predictDistance(m *objMeta) float64 {
	if m.demoted {
		return math.Inf(1)
	}
	if l.model == nil {
		// Untrained: fall back to recency (oldest last-seen evicted
		// first), mirroring LRB's LRU warm-up phase.
		return float64(l.seq - m.lastSeen)
	}
	l.fillFeatures(m, l.featBuf[:])
	return l.model.Predict(l.featBuf[:])
}

func (l *LRB) evictOne() {
	if len(l.cached) == 0 {
		panic("lrb: evict from empty cache")
	}
	l.buf = l.buf[:0]
	n := l.SampleSize
	if n > len(l.cached) {
		n = len(l.cached)
	}
	for i := 0; i < n; i++ {
		l.buf = append(l.buf, l.cached[l.rng.Intn(len(l.cached))])
	}
	victim := l.buf[0]
	best := l.predictDistance(victim)
	for _, m := range l.buf[1:] {
		if d := l.predictDistance(m); d > best {
			victim, best = m, d
		}
	}
	l.removeCached(victim)
	l.evictions++
	if l.ins != nil {
		//scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
		l.ins.OnEvict(cache.EvictInfo{
			Key:         victim.key,
			Size:        victim.size,
			InsertedMRU: victim.insertedMRU,
			EverHit:     victim.residHits > 0,
			Residency:   victim.res,
		})
	}
}

func (l *LRB) removeCached(m *objMeta) {
	last := len(l.cached) - 1
	idx := m.storeIdx
	l.cached[idx] = l.cached[last]
	l.cached[idx].storeIdx = idx
	l.cached = l.cached[:last]
	m.cached = false
	m.storeIdx = -1
	l.bytes -= m.size
}

// pruneWindow drops metadata and unlabeled samples older than the memory
// window (cached objects always stay).
func (l *LRB) pruneWindow() {
	cut := l.seq - l.window
	for k, m := range l.meta {
		if !m.cached && m.lastSeen < cut {
			delete(l.meta, k)
			//scip:ordered-ok freelist order only selects which recycled struct backs a later object; every field is reinitialised on reuse
			l.metaFree = append(l.metaFree, m)
		}
	}
	// Collect expired samples first and label them in sampling order:
	// label order feeds the training set, and the map's randomised
	// iteration order would otherwise make the trained model — and so
	// LRB's miss ratio — vary between identical runs.
	l.expBuf = l.expBuf[:0]
	for k, ps := range l.pend {
		head, tail := int32(-1), int32(-1)
		for id := ps.head; id != -1; {
			e := &l.pendSlab[id]
			next := e.next
			if e.at >= cut {
				e.next = -1
				if head == -1 {
					head = id
				} else {
					l.pendSlab[tail].next = id
				}
				tail = id
			} else {
				//scip:ordered-ok expBuf is sorted by the unique per-sample .at sequence number below, erasing map order before labelling
				l.expBuf = append(l.expBuf, id)
			}
			id = next
		}
		if head == -1 {
			delete(l.pend, k)
		} else {
			l.pend[k] = pendList{head: head, tail: tail}
		}
	}
	sortPendByAt(l.pendSlab, l.expBuf)
	for _, id := range l.expBuf {
		e := &l.pendSlab[id]
		// Window expiry: label with the window length (the relaxed-Belady
		// "beyond boundary" outcome).
		l.label(e.feat[:], float64(l.window)*2)
		l.pendFree = append(l.pendFree, id)
		l.pendCount--
	}
}

// sortPendByAt heapsorts arena ids by their entry's .at sequence number.
// Sampling takes at most one sample per sequence tick, so the keys are
// unique and heapsort's instability cannot affect the resulting order; a
// zero-allocation sort keeps the prune path off the heap (sort.Slice
// would allocate for its closure and interface header).
func sortPendByAt(slab []pendEntry, ids []int32) {
	n := len(ids)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownAt(slab, ids, i, n)
	}
	for end := n - 1; end > 0; end-- {
		ids[0], ids[end] = ids[end], ids[0]
		siftDownAt(slab, ids, 0, end)
	}
}

func siftDownAt(slab []pendEntry, ids []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && slab[ids[child+1]].at > slab[ids[child]].at {
			child++
		}
		if slab[ids[root]].at >= slab[ids[child]].at {
			return
		}
		ids[root], ids[child] = ids[child], ids[root]
		root = child
	}
}
