// Package lrb implements a faithful, laptop-scale reduction of Learning
// Relaxed Belady (Song et al., NSDI'20): per-object features (inter-access
// deltas, exponentially decayed counters, size, age) are maintained inside
// a sliding memory window; training samples receive their labels — the
// forward distance to the next access — when the object is next requested
// (or the window expires them); a gradient-boosted regression forest
// predicts time-to-next-access; and eviction removes the
// furthest-predicted object from a random sample of cached candidates.
package lrb

import (
	"math"
	"math/rand"
	"sort"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/ml"
)

// Feature layout.
const (
	numDeltas   = 4
	numEDCs     = 8
	NumFeatures = 2 + numDeltas + numEDCs // size, age, deltas, EDCs
)

// objMeta is the feature state for one object in the memory window.
type objMeta struct {
	key      uint64
	size     int64
	lastSeen int64
	deltas   [numDeltas]float64 // most recent first, log2-scaled
	edcs     [numEDCs]float64
	cached   bool
	// demoted marks SCIP-LRU placements: treated as immediate eviction
	// candidates (predicted-infinite distance).
	demoted bool
	// res tracks how the current residency began and residHits counts
	// its hits, for the insertion-policy integration.
	res       cache.Residency
	residHits int
	// insertedMRU mirrors the SCIP bookkeeping for OnEvict.
	insertedMRU bool
	// storeIdx is the object's slot in the cached-set sampler.
	storeIdx int
}

// pending is a training sample waiting for its label.
type pending struct {
	key  uint64
	at   int64
	feat []float64
}

// Option configures an LRB cache.
type Option func(*LRB)

// WithWindow sets the memory window in requests (default 1<<17).
func WithWindow(w int64) Option {
	return func(l *LRB) {
		if w > 0 {
			l.window = w
		}
	}
}

// WithInsertion plugs an insertion/promotion policy (LRB-SCIP /
// LRB-ASC-IP in Figure 12): a cache.LRU decision demotes the object so
// the sampler evicts it first; cache.MRU keeps normal LRB behaviour. Per
// the paper's integration note, the policy can learn from LRB's memory
// window rather than globally.
func WithInsertion(ins cache.InsertionPolicy) Option {
	return func(l *LRB) {
		l.ins = ins
		l.name = "LRB-" + ins.Name()
	}
}

// WithSeed fixes sampling and training randomness.
func WithSeed(seed int64) Option {
	return func(l *LRB) { l.seed = seed }
}

// LRB is the learned cache.
type LRB struct {
	// SampleSize is the eviction sample (default 64).
	SampleSize int
	// SampleEvery subsamples accesses into training candidates
	// (default 8).
	SampleEvery int
	// TrainEvery triggers training after this many fresh labels
	// (default 2048).
	TrainEvery int
	// MaxTrain caps the training set (default 8192).
	MaxTrain int

	name      string
	cap       int64
	bytes     int64
	evictions int64
	window    int64
	seed      int64
	seq       int64
	meta      map[uint64]*objMeta
	cached    []*objMeta // sampler over cached objects
	rng       *rand.Rand

	pend      map[uint64][]pending
	pendCount int
	trainX    [][]float64
	trainY    []float64
	fresh     int
	model     *ml.GBM

	ins cache.InsertionPolicy
	buf []*objMeta
}

var _ cache.Policy = (*LRB)(nil)

// New returns an LRB cache of capBytes capacity.
func New(capBytes int64, opts ...Option) *LRB {
	l := &LRB{
		SampleSize:  64,
		SampleEvery: 8,
		TrainEvery:  2048,
		MaxTrain:    8192,
		name:        "LRB",
		cap:         capBytes,
		window:      1 << 17,
		meta:        make(map[uint64]*objMeta, 1<<12),
		pend:        make(map[uint64][]pending, 1<<12),
	}
	for _, o := range opts {
		o(l)
	}
	l.rng = rand.New(rand.NewSource(l.seed + 907))
	return l
}

// Name implements cache.Policy.
func (l *LRB) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LRB) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LRB) Used() int64 { return l.bytes }

// Trained reports whether a model has been fit (diagnostics).
func (l *LRB) Trained() bool { return l.model != nil }

// Evictions implements cache.EvictionCounter.
func (l *LRB) Evictions() int64 { return l.evictions }

// features builds the feature vector for m at the current sequence time.
func (l *LRB) features(m *objMeta) []float64 {
	f := make([]float64, 0, NumFeatures)
	f = append(f,
		math.Log2(float64(m.size)+1),
		math.Log2(float64(l.seq-m.lastSeen)+1),
	)
	f = append(f, m.deltas[:]...)
	f = append(f, m.edcs[:]...)
	return f
}

// touch updates the feature state of an object on access.
func (l *LRB) touch(m *objMeta) {
	gap := float64(l.seq - m.lastSeen)
	copy(m.deltas[1:], m.deltas[:numDeltas-1])
	m.deltas[0] = math.Log2(gap + 1)
	for i := range m.edcs {
		half := math.Exp2(float64(9 + i))
		m.edcs[i] = 1 + m.edcs[i]*math.Exp2(-gap/half)
	}
	m.lastSeen = l.seq
}

// Access implements cache.Policy.
func (l *LRB) Access(req cache.Request) bool {
	l.seq++
	if l.seq%l.window == 0 {
		l.pruneWindow()
	}
	m, known := l.meta[req.Key]
	hit := known && m.cached
	if l.ins != nil {
		l.ins.OnAccess(req, hit)
	}
	// Label any pending training samples for this object.
	if ps, ok := l.pend[req.Key]; ok {
		for _, p := range ps {
			l.label(p.feat, float64(l.seq-p.at))
		}
		delete(l.pend, req.Key)
		l.pendCount -= len(ps)
	}
	if !known {
		m = &objMeta{key: req.Key, size: req.Size, lastSeen: l.seq, storeIdx: -1}
		l.meta[req.Key] = m
	} else {
		l.touch(m)
	}
	// Subsample accesses into unlabeled training candidates.
	if l.seq%int64(l.SampleEvery) == 0 {
		l.pend[req.Key] = append(l.pend[req.Key], pending{key: req.Key, at: l.seq, feat: l.features(m)})
		l.pendCount++
	}
	if hit {
		m.residHits++
		if obs, ok := l.ins.(cache.ResidencyObserver); ok && l.ins != nil {
			obs.OnResidentHit(req, !m.demoted, m.res, m.residHits)
		}
		if l.ins != nil && l.ins.ChoosePromote(req) == cache.LRU {
			m.demoted = true
			m.insertedMRU = false
		} else {
			m.demoted = false
			m.insertedMRU = true
		}
		if m.res == cache.ResInserted {
			m.res = cache.ResFirstHit
		} else {
			m.res = cache.ResRepeat
		}
		m.residHits = 0
		return true
	}
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	for l.bytes+req.Size > l.cap {
		l.evictOne()
	}
	m.cached = true
	m.residHits = 0
	m.res = cache.ResInserted
	m.demoted = false
	m.insertedMRU = true
	if l.ins != nil && l.ins.ChooseInsert(req) == cache.LRU {
		m.demoted = true
		m.insertedMRU = false
	}
	m.storeIdx = len(l.cached)
	l.cached = append(l.cached, m)
	l.bytes += req.Size
	return false
}

// label adds a completed training sample and triggers training.
func (l *LRB) label(feat []float64, dist float64) {
	if len(l.trainX) >= l.MaxTrain {
		n := l.MaxTrain / 2
		copy(l.trainX, l.trainX[len(l.trainX)-n:])
		copy(l.trainY, l.trainY[len(l.trainY)-n:])
		l.trainX = l.trainX[:n]
		l.trainY = l.trainY[:n]
	}
	l.trainX = append(l.trainX, feat)
	l.trainY = append(l.trainY, math.Log2(dist+1))
	l.fresh++
	if l.fresh >= l.TrainEvery && len(l.trainX) >= 512 {
		l.fresh = 0
		m := &ml.GBM{Squared: true, Trees: 30, Depth: 4, LR: 0.2, MinLeaf: 16}
		if err := m.FitRegression(l.trainX, l.trainY); err == nil {
			l.model = m
		}
	}
}

// predictDistance scores a cached candidate; higher means safer to evict.
func (l *LRB) predictDistance(m *objMeta) float64 {
	if m.demoted {
		return math.Inf(1)
	}
	if l.model == nil {
		// Untrained: fall back to recency (oldest last-seen evicted
		// first), mirroring LRB's LRU warm-up phase.
		return float64(l.seq - m.lastSeen)
	}
	return l.model.Predict(l.features(m))
}

func (l *LRB) evictOne() {
	if len(l.cached) == 0 {
		panic("lrb: evict from empty cache")
	}
	l.buf = l.buf[:0]
	n := l.SampleSize
	if n > len(l.cached) {
		n = len(l.cached)
	}
	for i := 0; i < n; i++ {
		l.buf = append(l.buf, l.cached[l.rng.Intn(len(l.cached))])
	}
	victim := l.buf[0]
	best := l.predictDistance(victim)
	for _, m := range l.buf[1:] {
		if d := l.predictDistance(m); d > best {
			victim, best = m, d
		}
	}
	l.removeCached(victim)
	l.evictions++
	if l.ins != nil {
		l.ins.OnEvict(cache.EvictInfo{
			Key:         victim.key,
			Size:        victim.size,
			InsertedMRU: victim.insertedMRU,
			EverHit:     victim.residHits > 0,
			Residency:   victim.res,
		})
	}
}

func (l *LRB) removeCached(m *objMeta) {
	last := len(l.cached) - 1
	idx := m.storeIdx
	l.cached[idx] = l.cached[last]
	l.cached[idx].storeIdx = idx
	l.cached = l.cached[:last]
	m.cached = false
	m.storeIdx = -1
	l.bytes -= m.size
}

// pruneWindow drops metadata and unlabeled samples older than the memory
// window (cached objects always stay).
func (l *LRB) pruneWindow() {
	cut := l.seq - l.window
	for k, m := range l.meta {
		if !m.cached && m.lastSeen < cut {
			delete(l.meta, k)
		}
	}
	// Collect expired samples first and label them in sampling order:
	// label order feeds the training set, and the map's randomised
	// iteration order would otherwise make the trained model — and so
	// LRB's miss ratio — vary between identical runs.
	var expired []pending
	for k, ps := range l.pend {
		kept := ps[:0]
		for _, p := range ps {
			if p.at >= cut {
				kept = append(kept, p)
			} else {
				//scip:ordered-ok expired is sorted by the unique per-sample .at sequence number below, erasing map order before labelling
				expired = append(expired, p)
			}
		}
		if len(kept) == 0 {
			delete(l.pend, k)
		} else {
			l.pend[k] = kept
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].at < expired[j].at })
	for _, p := range expired {
		// Window expiry: label with the window length (the relaxed-Belady
		// "beyond boundary" outcome).
		l.label(p.feat, float64(l.window)*2)
		l.pendCount--
	}
}
