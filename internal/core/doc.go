// Package core implements the paper's contribution: SCIP, the smart cache
// insertion and promotion policy (Algorithm 1 + Algorithm 2), and its
// ablation SCI (Algorithm 3) which keeps the learned insertion policy but
// always promotes hit objects to the MRU position.
//
// SCIP treats a hit object as a special missing object: both are
// (re-)inserted through a bimodal insertion policy that selects the MRU or
// LRU queue position with probabilities ω_m / ω_l. Two FIFO shadow lists
// H_m and H_l record the metadata of evicted objects by the position at
// which they entered the cache; a renewed miss on an object found in H_m
// means MRU insertion was wasted on it (it behaved as a ZRO or P-ZRO), so
// ω_m decays — and symmetrically for H_l. The decay strength λ is tuned
// every learning interval by gradient-based stochastic hill climbing on
// the interval hit rate (Algorithm 2).
//
// Three clarifications of the paper's pseudocode were required to obtain
// the behaviour the paper reports (all ablatable via Options and measured
// by the ablation benchmarks; see DESIGN.md §4):
//
//  1. Per-object adjustment (§3.2 prose): an object found in H_m is itself
//     inserted at LRU, one found in H_l at MRU. The pseudocode's global
//     ω update alone cannot express this.
//  2. ZRO emergence evidence: ZROs never reappear, so they generate no
//     history-list events at all; the only signal of their damage is an
//     eviction of a never-hit, MRU-inserted object. Such evictions decay
//     ω_m by evictGain × λ. This is the "relationship between performance
//     changes and the emergence of ZROs" the abstract describes.
//  3. Contextual weights: the miss population (ZRO-rich) and the hit
//     population (hot-object-rich) need different MRU probabilities; a
//     single shared ω demotes hot objects whenever ZRO pressure drives it
//     down. SCIP therefore learns one ω pair per context (insertion and
//     promotion) with identical update rules; WithUnifiedModel restores
//     the literal single-pair reading for comparison.
//
// NewCache builds a SCIP cache, NewSCICache its always-promote ablation;
// both return a cache.QueueCache wired to the learning Strategy, so they
// compose with everything that speaks cache.Policy (the simulator, the
// sharded front, the daemon).
package core
