package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/scip-cache/scip/internal/cache"
)

func TestSizeClassBuckets(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{1, 0}, {31, 0}, {32, 1}, {63, 1}, {64, 2},
		{1 << 10, 6}, {1 << 20, 16 - 1 /* clamped */},
	}
	for _, c := range cases {
		if got := sizeClass(c.size); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	// Monotone non-decreasing in size.
	prev := 0
	for s := int64(1); s < 1<<30; s *= 2 {
		c := sizeClass(s)
		if c < prev {
			t.Fatalf("sizeClass not monotone at %d", s)
		}
		prev = c
	}
}

func TestWeightSetFallbackUntilObserved(t *testing.T) {
	ws := newWeightSet(0.9)
	size := int64(1 << 12)
	if ws.pick(size) != ws.global {
		t.Fatal("unseen class should fall back to global pair")
	}
	for i := 0; i < classMinObs; i++ {
		ws.decay(size, 0, 0.1)
	}
	if ws.pick(size) == ws.global {
		t.Fatal("observed class should use its own pair")
	}
	// Other classes still fall back.
	if ws.pick(1<<24) != ws.global {
		t.Fatal("unrelated class should still fall back")
	}
}

func TestWeightSetDecayUpdatesGlobalToo(t *testing.T) {
	ws := newWeightSet(0.9)
	g0 := ws.global.Weight(0)
	ws.decay(1<<12, 0, 0.5)
	if ws.global.Weight(0) >= g0 {
		t.Fatal("global prior did not receive evidence")
	}
}

func TestWeightSetDecayClamped(t *testing.T) {
	ws := newWeightSet(0.5)
	ws.decay(1<<12, 0, 100) // absurd λ must be clamped
	w := ws.class[sizeClass(1<<12)].Weight(0)
	if w < math.Exp(-3)/(math.Exp(-3)+0.5)-0.05 {
		t.Fatalf("decay not clamped: w=%g", w)
	}
}

func TestWeightSetReset(t *testing.T) {
	ws := newWeightSet(0.9)
	for i := 0; i < classMinObs; i++ {
		ws.decay(1<<12, 0, 0.3)
	}
	ws.reset(0.9)
	if ws.pick(1<<12) != ws.global {
		t.Fatal("reset did not clear class observations")
	}
	if ws.global.Weight(0) != 0.9 {
		t.Fatal("reset did not restore weights")
	}
}

func TestSizeFactorEconomics(t *testing.T) {
	s := New(1 << 20)
	if s.sizeFactor(1<<20) != 1 {
		t.Fatal("no hit history: factor must be neutral")
	}
	// Record a typical hit size of ~1 KiB.
	s.OnAccess(cache.Request{Key: 1, Size: 1 << 10}, true)
	if f := s.sizeFactor(1 << 10); math.Abs(f-1) > 0.01 {
		t.Fatalf("factor at mean = %g, want ~1", f)
	}
	if f := s.sizeFactor(1 << 20); f != 64 {
		t.Fatalf("big-object factor = %g, want cap 64", f)
	}
	if f := s.sizeFactor(1); f != 0.25 {
		t.Fatalf("tiny-object factor = %g, want floor 0.25", f)
	}
}

func TestContextRouting(t *testing.T) {
	s := New(1 << 20)
	if s.context(cache.ResInserted) != s.insW {
		t.Fatal("insertion residency should train insW")
	}
	if s.context(cache.ResFirstHit) != s.proW {
		t.Fatal("first-hit residency should train proW")
	}
	if s.context(cache.ResRepeat) != nil {
		t.Fatal("repeat residency carries no decision")
	}
	sci := NewSCI(1 << 20)
	if sci.context(cache.ResFirstHit) != sci.insW {
		t.Fatal("SCI has no promotion decisions; evidence goes to insW")
	}
}

func TestUnifiedModelSharesWeights(t *testing.T) {
	s := New(1<<20, WithUnifiedModel(), WithSeed(3))
	if s.insW != s.proW {
		t.Fatal("unified model should share one weight set")
	}
	// Evidence through the promotion context must move the shared pair.
	w0 := s.MRUWeight()
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 1 << 10, InsertedMRU: true, Residency: cache.ResFirstHit})
	s.OnAccess(cache.Request{Key: 1, Size: 1 << 10}, false) // ghost hit in H_m
	if s.MRUWeight() >= w0 {
		t.Fatal("shared pair did not receive promotion-context evidence")
	}
}

func TestRepeatHitsPinnedToMRU(t *testing.T) {
	s := New(1<<20, WithSeed(5), WithInitialMRUWeight(0.01))
	// Simulate the observer being told this is a repeat residency.
	s.OnResidentHit(cache.Request{Key: 1, Size: 10}, true, cache.ResFirstHit, 1)
	if s.ChoosePromote(cache.Request{Key: 1, Size: 10}) != cache.MRU {
		t.Fatal("repeat hit must be pinned to MRU regardless of weights")
	}
}

func TestFirstHitGambleUsesPromoteWeights(t *testing.T) {
	s := New(1<<20, WithSeed(5), WithInitialMRUWeight(0.01))
	s.OnResidentHit(cache.Request{Key: 1, Size: 10}, true, cache.ResInserted, 1)
	lru := 0
	for i := 0; i < 100; i++ {
		s.pendingRepeatHit = false // re-arm the first-hit context
		if s.ChoosePromote(cache.Request{Key: 1, Size: 10}) == cache.LRU {
			lru++
		}
	}
	if lru < 80 {
		t.Fatalf("ω_m=0.01 should demote most first hits, got %d/100", lru)
	}
}

func TestForEnhancementPreset(t *testing.T) {
	s := New(1<<20, ForEnhancement())
	if s.duelists != nil {
		t.Fatal("enhancement preset must disable dueling")
	}
	if s.evictGain != 0 {
		t.Fatal("enhancement preset must disable insertion waste evidence")
	}
	w0 := s.MRUWeight()
	if w0 < 0.95 {
		t.Fatalf("enhancement preset initial ω_m = %g, want near 1", w0)
	}
	// Waste evidence on insertion residencies must be inert.
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 1 << 12, InsertedMRU: true, Residency: cache.ResInserted})
	if s.MRUWeight() != w0 {
		t.Fatal("insertion waste evidence leaked through the preset")
	}
}

func TestEvictGainRoutesToPromotionContext(t *testing.T) {
	s := New(1<<20, WithSeed(2))
	p0 := s.PromoteMRUWeight()
	// Set a hit-size baseline so sizeFactor is defined.
	s.OnAccess(cache.Request{Key: 9, Size: 1 << 12}, true)
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 1 << 12, InsertedMRU: true, Residency: cache.ResFirstHit})
	if s.PromoteMRUWeight() >= p0 {
		t.Fatal("wasted promotion did not decay promotion context")
	}
}

func TestDuelingDriftsWeights(t *testing.T) {
	s := New(1<<14, WithSeed(4), WithInterval(800), WithDueling(2.0))
	// Recency-friendly traffic: the MRU monitor wins, ω_m should rise
	// above its starting point despite contrary per-object noise.
	w0 := s.MRUWeight()
	for i := 0; i < 20_000; i++ {
		req := cache.Request{Time: int64(i), Key: uint64(i % 50), Size: 64}
		s.OnAccess(req, i >= 50)
	}
	if s.MRUWeight() < w0-0.1 {
		t.Fatalf("dueling let ω_m collapse on recency traffic: %g -> %g", w0, s.MRUWeight())
	}
}

func TestLambdaStaysInBounds(t *testing.T) {
	f := func(hits []uint8) bool {
		s := New(1<<16, WithSeed(9), WithInterval(10))
		for i, h := range hits {
			s.OnAccess(cache.Request{Time: int64(i), Key: uint64(i), Size: 1}, h%2 == 0)
			l := s.Lambda()
			if l < 0.05-1e-9 || l > 1+1e-9 || math.IsNaN(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryRecordsResidency(t *testing.T) {
	s := New(1 << 20)
	s.OnEvict(cache.EvictInfo{Key: 7, Size: 100, InsertedMRU: false, Residency: cache.ResFirstHit})
	// The H_l record must carry the residency so the rescue trains proW.
	p0 := s.PromoteMRUWeight()
	s.OnAccess(cache.Request{Key: 7, Size: 100}, false)
	if s.PromoteMRUWeight() <= p0 {
		t.Fatal("H_l rescue of a demoted first-hit did not protect proW")
	}
}
