package core

import (
	"math/bits"
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/mab"
)

// DefaultInterval is the learning-rate update interval i, in requests.
const DefaultInterval = 50_000

// DefaultEvictGain scales the ZRO-waste eviction evidence relative to the
// ghost-hit evidence (see OnEvict).
const DefaultEvictGain = 1.0

// DefaultHitGain scales the residency-validated hit evidence (see
// OnResidentHit).
const DefaultHitGain = 0.1

// DefaultPromoteEvictGain and DefaultPromoteHitGain are the promotion
// context's evidence gains. Wasted promotions are discounted harder and
// validated promotions count more than their insertion-context
// counterparts because a wrong demotion costs a guaranteed extra miss
// while a wasted promotion only costs residency space.
const (
	DefaultPromoteEvictGain = 0.1
	DefaultPromoteHitGain   = 0.2
)

// DefaultDuelGain scales the dueling-monitor drift applied to the
// insertion weights each dueling window.
const DefaultDuelGain = 0.5

// numSizeClasses is the contextual granularity of the weight pairs: the
// bandit learns one ω pair per log2 object-size class (plus the global
// pair it falls back to until a class has enough evidence). Size is the
// strongest per-object signal a CDN insertion policy can condition on —
// it is the entire basis of ASC-IP — and conditioning the MAB on it lets
// SCIP subsume ASC-IP's threshold behaviour instead of losing to it.
const numSizeClasses = 16

// classMinObs is the evidence count before a class pair overrides the
// global pair.
const classMinObs = 32

// sizeClass buckets an object size.
func sizeClass(size int64) int {
	c := bits.Len64(uint64(size)) - 5 // sizes < 32B share class 0
	if c < 0 {
		c = 0
	}
	if c >= numSizeClasses {
		c = numSizeClasses - 1
	}
	return c
}

// weightSet is a global ω pair plus per-size-class pairs that take over
// once a class has accumulated enough evidence.
type weightSet struct {
	global *mab.TwoExpert
	class  [numSizeClasses]*mab.TwoExpert
	seen   [numSizeClasses]int
}

func newWeightSet(w0 float64) *weightSet {
	ws := &weightSet{global: mab.NewTwoExpert(w0)}
	for i := range ws.class {
		ws.class[i] = mab.NewTwoExpert(w0)
	}
	return ws
}

// decay applies evidence to both the size class and the global prior.
// The per-event decay is clamped at 3 (e^-3 ≈ 0.05) so a single
// size-amplified event cannot pin a class beyond recovery.
func (ws *weightSet) decay(size int64, arm int, lambda float64) {
	if lambda > 3 {
		lambda = 3
	}
	c := sizeClass(size)
	ws.seen[c]++
	ws.class[c].Decay(arm, lambda)
	ws.global.Decay(arm, lambda)
}

// pick returns the pair that should drive a decision for size.
func (ws *weightSet) pick(size int64) *mab.TwoExpert {
	c := sizeClass(size)
	if ws.seen[c] >= classMinObs {
		return ws.class[c]
	}
	return ws.global
}

func (ws *weightSet) reset(w0 float64) {
	ws.global.Reset(w0)
	for i := range ws.class {
		ws.class[i].Reset(w0)
		ws.seen[i] = 0
	}
}

// Option configures a SCIP instance.
type Option func(*SCIP)

// WithSeed fixes the PRNG used for bimodal selection and random restarts.
// The seed is retained so Reset can rewind the PRNG to its initial state
// and a reset instance replays bit-for-bit.
func WithSeed(seed int64) Option {
	return func(s *SCIP) { s.seed = seed }
}

// WithInterval sets the learning-rate update interval i (requests).
func WithInterval(i int) Option {
	return func(s *SCIP) {
		if i > 0 {
			s.interval = i
		}
	}
}

// WithHistoryFraction sizes each history list as frac × the cache
// capacity. The paper uses 0.5 ("logically, the size of each list is half
// of the real cache").
func WithHistoryFraction(frac float64) Option {
	return func(s *SCIP) { s.historyFrac = frac }
}

// WithInitialMRUWeight sets the starting ω_m for both contexts
// (default 0.9: optimistic MRU, so the learning transient does not thrash
// workloads where plain LRU is already near-optimal).
func WithInitialMRUWeight(w float64) Option {
	return func(s *SCIP) { s.initW = w }
}

// WithPromoteMRU disables the learned promotion path: hit objects are
// always re-inserted at the MRU position. This turns SCIP into SCI
// (Algorithm 3), the paper's ablation.
func WithPromoteMRU() Option {
	return func(s *SCIP) {
		s.promoteMRU = true
		s.name = "SCI"
	}
}

// WithEvictGain scales the ZRO-waste evidence: an eviction of an object
// that entered at MRU and was never hit decays that context's ω_m by
// gain × λ. 0 disables the signal (pure Algorithm-1 ghost feedback).
func WithEvictGain(gain float64) Option {
	return func(s *SCIP) { s.evictGain = gain }
}

// ForceMode selects how much of the per-object §3.2 adjustment applies.
type ForceMode int

const (
	// ForceNone applies no per-object adjustment; insertion always
	// follows the global weights (the literal Algorithm 1).
	ForceNone ForceMode = iota
	// ForceRescue re-protects at MRU an object found in H_l (it was
	// demoted or LRU-inserted and proved reusable), but lets H_m-found
	// objects follow the global weights. This is the default: forcing
	// suspected ZROs to LRU would also kill objects with a short second
	// reuse (e.g. CDN-W's echoes) that promotion handles better.
	ForceRescue
	// ForceBoth additionally forces H_m-found objects to the LRU
	// position.
	ForceBoth
)

// WithForceMode selects the per-object §3.2 adjustment behaviour.
func WithForceMode(m ForceMode) Option {
	return func(s *SCIP) { s.force = m }
}

// WithHitGain scales the residency-validated evidence: the first hit of a
// residency decays that context's ω_l by gain × λ (the placement that kept
// the object resident was right). 0 disables the signal.
func WithHitGain(gain float64) Option {
	return func(s *SCIP) { s.hitGain = gain }
}

// WithPromoteGains overrides the promotion context's evidence gains
// (defaults: DefaultPromoteEvictGain, DefaultPromoteHitGain). The promotion context
// weighs wasted promotions against validated ones over a different
// population (hit objects), so its balance can be tuned independently.
func WithPromoteGains(evictGain, hitGain float64) Option {
	return func(s *SCIP) { s.proEvictGain, s.proHitGain = evictGain, hitGain }
}

// ForEnhancement configures SCIP as an enhancement component inside a
// host replacement algorithm that already performs informed victim
// selection (LRU-K, LRB — the paper's Figure 12). The dueling monitors
// are disabled (their LRU-vs-LIP counterfactual describes a plain queue
// cache, not the host) and the ZRO-waste gain is reduced: a never-hit
// eviction in such a host means the host's own ranking already handled
// the object, so it is weak evidence that earlier demotion would help.
func ForEnhancement() Option {
	return func(s *SCIP) {
		s.duelGain = 0
		s.evictGain = 0
		s.initW = 0.98
	}
}

// WithUnifiedModel makes insertion and promotion share a single ω pair,
// the literal reading of Algorithm 1. Used by the ablation benchmarks.
func WithUnifiedModel() Option {
	return func(s *SCIP) { s.unified = true }
}

// WithDueling toggles the sampled dueling monitors that ground the
// insertion weights in measured counterfactual hit counts (default on).
// gain scales the per-window drift; pass gain <= 0 to disable.
func WithDueling(gain float64) Option {
	return func(s *SCIP) { s.duelGain = gain }
}

// SCIP implements cache.InsertionPolicy per Algorithm 1. One instance
// drives one cache; it is not safe for concurrent use.
type SCIP struct {
	name         string
	hm, hl       *cache.History
	insW         *weightSet // ω_m/ω_l for missing objects
	proW         *weightSet // ω_m/ω_l for hit objects (== insW if unified)
	rate         *mab.AdaptiveRate
	seed         int64
	rng          *rand.Rand
	interval     int
	historyFrac  float64
	initW        float64
	promoteMRU   bool
	unified      bool
	evictGain    float64
	hitGain      float64
	proEvictGain float64 // -1: use evictGain
	proHitGain   float64 // -1: use hitGain
	force        ForceMode

	duelGain  float64
	duelists  *cache.DuelMonitor
	duelEvery int

	// interval hit-rate window
	reqs, hits int
	// lastMissRatio is the miss ratio of the last completed interval; it
	// scales the ZRO-waste evidence so pollution evidence counts in
	// proportion to the miss pressure it can actually relieve.
	lastMissRatio float64
	// emaSize tracks the mean size of HIT objects — the byte price of
	// one hit — so waste evidence can be weighted by the hits the freed
	// bytes could buy: demoting a never-hit 1 MB object relieves ~64×
	// the pressure of a 16 KB one, while the rescue cost of a wrong
	// demotion is one miss regardless of size.
	emaSize float64

	// forcedPos carries the per-object adjustment of §3.2 from the
	// history lookup in OnAccess to the ChooseInsert call for the same
	// request.
	forcedPos    cache.Position
	forcedActive bool

	// pendingRepeatHit carries residency provenance from OnResidentHit to
	// the ChoosePromote call for the same request: true when the hit
	// object's residency already began with a promotion, i.e. the object
	// is being re-hit repeatedly and is certainly not a P-ZRO.
	pendingRepeatHit bool
}

var (
	_ cache.InsertionPolicy   = (*SCIP)(nil)
	_ cache.ResidencyObserver = (*SCIP)(nil)
)

// New returns a SCIP insertion policy for a cache of capBytes capacity.
func New(capBytes int64, opts ...Option) *SCIP {
	s := &SCIP{
		name:          "SCIP",
		seed:          1,
		interval:      DefaultInterval,
		historyFrac:   0.5,
		initW:         0.9,
		evictGain:     DefaultEvictGain,
		hitGain:       DefaultHitGain,
		proEvictGain:  -1,
		proHitGain:    -1,
		force:         ForceRescue,
		lastMissRatio: 0.5,
		duelGain:      DefaultDuelGain,
	}
	for _, o := range opts {
		o(s)
	}
	if s.proEvictGain < 0 {
		s.proEvictGain = DefaultPromoteEvictGain
	}
	if s.proHitGain < 0 {
		s.proHitGain = DefaultPromoteHitGain
	}
	// The PRNG is derived from the stored seed (never an ambient or
	// hard-coded source) so that New and Reset produce the same stream
	// and every replay is a pure function of the configuration.
	s.rng = rand.New(rand.NewSource(s.seed))
	hb := int64(s.historyFrac * float64(capBytes))
	s.hm = cache.NewHistory(hb)
	s.hl = cache.NewHistory(hb)
	s.insW = newWeightSet(s.initW)
	if s.unified {
		s.proW = s.insW
	} else {
		s.proW = newWeightSet(s.initW)
	}
	s.rate = mab.NewAdaptiveRate(s.rng.Float64)
	if s.duelGain > 0 {
		s.duelists = cache.NewDuelMonitor(capBytes, 1.0/8, 7)
		s.duelEvery = s.interval / 8
		if s.duelEvery < 1 {
			s.duelEvery = 1
		}
	}
	return s
}

// NewSCI returns the SCI ablation (Algorithm 3): learned insertion for
// missing objects, unconditional MRU promotion for hit objects.
func NewSCI(capBytes int64, opts ...Option) *SCIP {
	return New(capBytes, append(opts, WithPromoteMRU())...)
}

// Name implements cache.InsertionPolicy.
func (s *SCIP) Name() string { return s.name }

// MRUWeight exposes the insertion-context global ω_m for tests and
// diagnostics.
func (s *SCIP) MRUWeight() float64 { return s.insW.global.Weight(0) }

// PromoteMRUWeight exposes the promotion-context global ω_m.
func (s *SCIP) PromoteMRUWeight() float64 { return s.proW.global.Weight(0) }

// ClassMRUWeight exposes the insertion ω_m for the size class of size.
func (s *SCIP) ClassMRUWeight(size int64) float64 {
	return s.insW.pick(size).Weight(0)
}

// Lambda exposes the current learning rate λ.
func (s *SCIP) Lambda() float64 { return s.rate.Lambda }

// context returns the weight set that the given residency's evidence
// should train: the promotion set for first-hit residencies (the proW
// gamble), the insertion set for miss insertions, and nil for repeat
// residencies, which are placed deterministically at MRU and therefore
// carry no decision to learn from.
func (s *SCIP) context(res cache.Residency) *weightSet {
	switch res {
	case cache.ResInserted:
		return s.insW
	case cache.ResFirstHit:
		if s.promoteMRU {
			return s.insW // SCI: promotions are not learned decisions
		}
		return s.proW
	default:
		return nil
	}
}

// OnAccess implements Algorithm 1's per-request bookkeeping: history-list
// lookups with weight decay on misses, the per-object §3.2 adjustment, and
// the periodic learning-rate update (lines 6–13 and 21–22).
//
//scip:hotpath
func (s *SCIP) OnAccess(req cache.Request, hit bool) {
	s.reqs++
	s.forcedActive = false
	if s.duelists != nil {
		s.duelists.Observe(req)
		if s.reqs%s.duelEvery == 0 {
			if v := s.duelists.Verdict(); v > 0 {
				s.insW.global.Decay(1, s.duelGain*v)
			} else if v < 0 {
				s.insW.global.Decay(0, -s.duelGain*v)
			}
		}
	}
	if hit {
		s.hits++
		if s.emaSize == 0 {
			s.emaSize = float64(req.Size)
		} else {
			s.emaSize += 0.001 * (float64(req.Size) - s.emaSize)
		}
	} else {
		if res, ok := s.hm.Delete(req.Key); ok {
			// The object entered at MRU and was evicted without enough
			// reuse to stay: it behaved as a ZRO/P-ZRO. Decay ω_m and
			// send this object to the LRU position.
			if w := s.context(res); w != nil {
				w.decay(req.Size, 0, s.rate.Lambda)
			}
			if s.force == ForceBoth {
				s.forcedPos, s.forcedActive = cache.LRU, true
			}
		} else if res, ok := s.hl.Delete(req.Key); ok {
			// The object was dropped from the LRU position yet proved
			// reusable: decay ω_l and protect this object at MRU.
			if w := s.context(res); w != nil {
				w.decay(req.Size, 1, s.rate.Lambda)
			}
			// Rescue-force only objects near or below the typical hit
			// size: re-protecting a much larger object at MRU costs more
			// bytes than its one recovered hit is worth, so large objects
			// stay under the learned class weights.
			if s.force != ForceNone && s.sizeFactor(req.Size) <= 2 {
				s.forcedPos, s.forcedActive = cache.MRU, true
			}
		}
	}
	if s.reqs%s.interval == 0 {
		pi := float64(s.hits) / float64(s.interval)
		s.rate.Update(pi)
		s.lastMissRatio = 1 - pi
		s.hits = 0
	}
}

// InsertScore returns SCIP's MRU-insertion probability for a missing
// object, split from the random draw so composed policies (the scorer
// pipeline) can mix the probability with other signals before deciding.
// forced reports the per-object §3.2 adjustment, in which case the score
// is exactly 0 or 1 and no randomness should be consumed. Calling
// InsertScore consumes the one-shot forced flag exactly as ChooseInsert
// does, so it must be called once per miss.
func (s *SCIP) InsertScore(req cache.Request) (score float64, forced bool) {
	if s.forcedActive {
		s.forcedActive = false
		if s.forcedPos == cache.MRU {
			return 1, true
		}
		return 0, true
	}
	return s.insW.pick(req.Size).Weight(0), false
}

// PromoteScore is InsertScore's promotion-context counterpart. A forced
// result (SCI mode, or a repeat-residency hit pinned to MRU) is always
// score 1 and consumes no randomness.
func (s *SCIP) PromoteScore(req cache.Request) (score float64, forced bool) {
	repeat := s.pendingRepeatHit
	s.pendingRepeatHit = false
	if s.promoteMRU || repeat {
		return 1, true
	}
	return s.proW.pick(req.Size).Weight(0), false
}

// Uniform draws from the instance PRNG. Exposed so a composed policy
// consuming SCIP's scores draws from the same stream as the monolith —
// the byte-identity of a zro-only scorer mix depends on the RNG
// consumption sequence matching exactly.
func (s *SCIP) Uniform() float64 { return s.rng.Float64() }

// ChooseInsert implements the bimodal insertion for missing objects,
// honouring the per-object adjustment when the object was just found in a
// history list. The non-forced decision is score > u with one uniform
// draw, the same predicate (and the same single draw) as
// TwoExpert.Select.
//
//scip:hotpath
func (s *SCIP) ChooseInsert(req cache.Request) cache.Position {
	p, forced := s.InsertScore(req)
	if forced {
		if p >= 1 {
			return cache.MRU
		}
		return cache.LRU
	}
	if p > s.rng.Float64() {
		return cache.MRU
	}
	return cache.LRU
}

// ChoosePromote treats promotion as a special insertion driven by the
// promotion-context weights. Only the first re-hit after an insertion
// consults the learned weights — that is where P-ZROs reveal themselves;
// an object whose residency already began with a promotion is being hit
// repeatedly and is pinned to MRU. For SCI every promotion is MRU.
//
//scip:hotpath
func (s *SCIP) ChoosePromote(req cache.Request) cache.Position {
	p, forced := s.PromoteScore(req)
	if forced {
		return cache.MRU
	}
	if p > s.rng.Float64() {
		return cache.MRU
	}
	return cache.LRU
}

// OnEvict records the victim's metadata into the history list matching its
// insertion position (Algorithm 1, lines 15–19). An MRU-inserted victim
// that was never hit wasted a full queue traversal — the ZRO (or, for a
// promoted residency, P-ZRO) emergence event — so the matching context's
// ω_m additionally decays by evictGain × λ.
//
//scip:hotpath
func (s *SCIP) OnEvict(ev cache.EvictInfo) {
	if ev.InsertedMRU {
		s.hm.Add(ev.Key, ev.Size, ev.Residency)
		gain := s.evictGain
		if ev.Residency == cache.ResFirstHit {
			gain = s.proEvictGain
		}
		if !ev.EverHit && gain > 0 {
			if w := s.context(ev.Residency); w != nil {
				w.decay(ev.Size, 0, gain*s.rate.Lambda*s.sizeFactor(ev.Size))
			}
		}
	} else {
		s.hl.Add(ev.Key, ev.Size, ev.Residency)
	}
}

// sizeFactor weighs byte-cost evidence by the victim's size relative to
// the mean inserted size, clamped to [0.25, 64]; the applied decay is
// additionally clamped in weightSet.decay so one event cannot slam a
// class past recovery.
func (s *SCIP) sizeFactor(size int64) float64 {
	if s.emaSize <= 0 {
		return 1
	}
	f := float64(size) / s.emaSize
	if f < 0.25 {
		f = 0.25
	}
	if f > 64 {
		f = 64
	}
	return f
}

// OnResidentHit implements cache.ResidencyObserver: the first hit of a
// residency validates the placement that kept the object resident, so the
// matching context's ω_l decays by hitGain × λ. Only the first hit of a
// residency votes, and repeat residencies carry no decision, so each
// placement decision is validated at most once.
//
//scip:hotpath
func (s *SCIP) OnResidentHit(req cache.Request, insertedMRU bool, res cache.Residency, hits int) {
	s.pendingRepeatHit = res != cache.ResInserted
	if hits != 1 || !insertedMRU {
		return
	}
	gain := s.hitGain
	if res == cache.ResFirstHit {
		gain = s.proHitGain
	}
	if gain <= 0 {
		return
	}
	if w := s.context(res); w != nil {
		w.decay(req.Size, 1, gain*s.rate.Lambda)
	}
}

// HistorySizes reports the current byte occupancy of H_m and H_l.
func (s *SCIP) HistorySizes() (hm, hl int64) { return s.hm.Bytes(), s.hl.Bytes() }

// Reset restores the initial learning state (used between benchmark
// runs), including the PRNG: a reset instance replays the same decision
// stream as a freshly constructed one, so back-to-back runs over the
// same trace are bit-identical.
func (s *SCIP) Reset() {
	s.hm.Reset()
	s.hl.Reset()
	s.insW.reset(s.initW)
	if !s.unified {
		s.proW.reset(s.initW)
	}
	s.rng = rand.New(rand.NewSource(s.seed))
	s.rate = mab.NewAdaptiveRate(s.rng.Float64)
	s.reqs, s.hits = 0, 0
	s.lastMissRatio = 0.5
	s.emaSize = 0
	s.forcedActive = false
	s.pendingRepeatHit = false
	if s.duelists != nil {
		s.duelists.Reset()
	}
}

// NewCache is a convenience constructor for the paper's SCIP-LRU: an LRU
// victim-selection cache whose insertion and promotion are driven by SCIP.
func NewCache(capBytes int64, opts ...Option) *cache.QueueCache {
	s := New(capBytes, opts...)
	return cache.NewQueueCache("SCIP", capBytes, s)
}

// NewSCICache returns the SCI-LRU configuration used by Figure 7.
func NewSCICache(capBytes int64, opts ...Option) *cache.QueueCache {
	s := NewSCI(capBytes, opts...)
	return cache.NewQueueCache("SCI", capBytes, s)
}
