package core

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
)

// TestResetReplaysIdenticalDecisionStream pins the fix for a scip-vet
// detrand finding: SCIP's fallback PRNG was built from a hard-coded
// rand.NewSource(1) at construction only, so Reset kept the PRNG's
// advanced state and a reset instance sampled a different bimodal
// decision stream than a fresh one — back-to-back benchmark runs over
// the same trace were not reproducible. The seed is now stored and
// Reset rewinds the PRNG, so the decision sequence after Reset must be
// bit-identical to the first run.
func TestResetReplaysIdenticalDecisionStream(t *testing.T) {
	s := New(1<<20, WithSeed(42), WithInterval(500))
	reqs := make([]cache.Request, 4096)
	for i := range reqs {
		// A fixed synthetic key pattern with enough misses to drive
		// ChooseInsert through the PRNG on every request.
		reqs[i] = cache.Request{Key: uint64(i*2654435761) % 1024, Size: 1 << 10}
	}
	run := func() []cache.Position {
		out := make([]cache.Position, 0, len(reqs))
		for _, r := range reqs {
			s.OnAccess(r, false)
			out = append(out, s.ChooseInsert(r))
		}
		return out
	}
	first := run()
	s.Reset()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision stream diverges after Reset at request %d: first=%v second=%v", i, first[i], second[i])
		}
	}
}

// TestResetReproducesMissRatio asserts the same property end-to-end
// through the cache: replaying a generated trace, resetting, and
// replaying again yields the identical miss ratio.
func TestResetReproducesMissRatio(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.0008, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(1<<24, WithSeed(7), WithInterval(2000))
	first := sim.Run(tr, c, sim.Options{})
	c.Reset()
	second := sim.Run(tr, c, sim.Options{})
	if first.MissRatio() != second.MissRatio() || first.Hits != second.Hits {
		t.Fatalf("run after Reset differs: first hits=%d miss=%.6f, second hits=%d miss=%.6f",
			first.Hits, first.MissRatio(), second.Hits, second.MissRatio())
	}
}
