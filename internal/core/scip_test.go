package core

import (
	"math"
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
)

func req(t int64, key uint64, size int64) cache.Request {
	return cache.Request{Time: t, Key: key, Size: size}
}

func TestNewDefaults(t *testing.T) {
	s := New(1000)
	if s.Name() != "SCIP" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.MRUWeight() != 0.9 {
		t.Fatalf("initial ω_m = %g, want 0.9", s.MRUWeight())
	}
	if s.Lambda() != 0.3 {
		t.Fatalf("initial λ = %g, want 0.3", s.Lambda())
	}
	hm, hl := s.HistorySizes()
	if hm != 0 || hl != 0 {
		t.Fatal("history lists not empty initially")
	}
}

func TestHistoryFractionSizesLists(t *testing.T) {
	s := New(1000, WithHistoryFraction(0.5))
	// Fill H_m beyond half the cache size; it must cap at 500 bytes.
	for k := uint64(0); k < 20; k++ {
		s.OnEvict(cache.EvictInfo{Key: k, Size: 100, InsertedMRU: true, EverHit: false})
	}
	hm, _ := s.HistorySizes()
	if hm > 500 {
		t.Fatalf("H_m bytes = %d, want <= 500", hm)
	}
}

func TestEvictRouting(t *testing.T) {
	s := New(10000)
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 100, InsertedMRU: true, EverHit: false})
	s.OnEvict(cache.EvictInfo{Key: 2, Size: 100, InsertedMRU: false, EverHit: true})
	hm, hl := s.HistorySizes()
	if hm != 100 || hl != 100 {
		t.Fatalf("history sizes = %d,%d, want 100,100", hm, hl)
	}
}

func TestMissInHmDecaysOmegaM(t *testing.T) {
	s := New(10000, WithSeed(7))
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 100, InsertedMRU: true, EverHit: false}) // 1 entered at MRU, got evicted
	w0 := s.MRUWeight()
	s.OnAccess(req(1, 1, 100), false) // misses again
	if s.MRUWeight() >= w0 {
		t.Fatalf("ω_m did not decay: %g -> %g", w0, s.MRUWeight())
	}
	// The record must be consumed (DELETE in Algorithm 1).
	w1 := s.MRUWeight()
	s.OnAccess(req(2, 1, 100), false)
	if s.MRUWeight() != w1 {
		t.Fatal("second miss on same key decayed ω_m again")
	}
}

func TestMissInHlDecaysOmegaL(t *testing.T) {
	s := New(10000, WithSeed(7))
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 100, InsertedMRU: false, EverHit: false})
	w0 := s.MRUWeight()
	s.OnAccess(req(1, 1, 100), false)
	if s.MRUWeight() <= w0 {
		t.Fatalf("ω_m did not grow after H_l hit: %g -> %g", w0, s.MRUWeight())
	}
}

func TestHitDoesNotTouchHistoryWeights(t *testing.T) {
	s := New(10000, WithSeed(7))
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 100, InsertedMRU: true, EverHit: false})
	w0 := s.MRUWeight()
	s.OnAccess(req(1, 1, 100), true) // hits in cache: no history lookup
	if s.MRUWeight() != w0 {
		t.Fatal("hit access modified weights")
	}
}

func TestWeightsStayNormalised(t *testing.T) {
	s := New(100000, WithSeed(3))
	for i := uint64(0); i < 5000; i++ {
		s.OnEvict(cache.EvictInfo{Key: i, Size: 10, InsertedMRU: i%2 == 0})
		s.OnAccess(req(int64(i), i, 10), false)
		wm := s.MRUWeight()
		if wm < 0 || wm > 1 || math.IsNaN(wm) {
			t.Fatalf("ω_m out of range: %g", wm)
		}
	}
}

func TestLearningRateUpdatesAtInterval(t *testing.T) {
	s := New(10000, WithSeed(1), WithInterval(10))
	l0 := s.Lambda()
	// Interval 1 establishes the baseline; interval 2 with a different
	// hit rate triggers a gradient step.
	for i := 0; i < 10; i++ {
		s.OnAccess(req(int64(i), uint64(i), 1), false)
	}
	for i := 0; i < 10; i++ {
		s.OnAccess(req(int64(10+i), uint64(i), 1), true)
	}
	if s.Lambda() == l0 {
		t.Fatalf("λ unchanged after improving interval: %g", s.Lambda())
	}
	if s.Lambda() < 0.001 || s.Lambda() > 1 {
		t.Fatalf("λ out of paper bounds: %g", s.Lambda())
	}
}

func TestSelectRespectsWeights(t *testing.T) {
	s := New(10000, WithSeed(42), WithInitialMRUWeight(1))
	for i := 0; i < 100; i++ {
		if s.ChooseInsert(req(0, 1, 1)) != cache.MRU {
			t.Fatal("ω_m=1 must always insert MRU")
		}
	}
	s2 := New(10000, WithSeed(42), WithInitialMRUWeight(0))
	for i := 0; i < 100; i++ {
		if s2.ChooseInsert(req(0, 1, 1)) != cache.LRU {
			t.Fatal("ω_m=0 must always insert LRU")
		}
	}
}

func TestSCIPromotesMRUAlways(t *testing.T) {
	s := NewSCI(10000, WithSeed(5), WithInitialMRUWeight(0))
	if s.Name() != "SCI" {
		t.Fatalf("Name = %q, want SCI", s.Name())
	}
	for i := 0; i < 50; i++ {
		if s.ChoosePromote(req(0, 1, 1)) != cache.MRU {
			t.Fatal("SCI must always promote to MRU")
		}
	}
	// Insertion still follows the learned weights.
	if s.ChooseInsert(req(0, 1, 1)) != cache.LRU {
		t.Fatal("SCI insertion should follow ω (ω_m=0 → LRU)")
	}
}

func TestReset(t *testing.T) {
	s := New(10000, WithSeed(9))
	s.OnEvict(cache.EvictInfo{Key: 1, Size: 100, InsertedMRU: true, EverHit: false})
	s.OnAccess(req(1, 1, 100), false)
	s.Reset()
	if s.MRUWeight() != 0.9 {
		t.Fatalf("ω_m after Reset = %g", s.MRUWeight())
	}
	hm, hl := s.HistorySizes()
	if hm != 0 || hl != 0 {
		t.Fatal("history lists survived Reset")
	}
}

func TestNewCacheIntegration(t *testing.T) {
	c := NewCache(300, WithSeed(2))
	if c.Name() != "SCIP" {
		t.Fatalf("cache name = %q", c.Name())
	}
	// Drive enough traffic that insertions, promotions and evictions all
	// happen; capacity invariant must hold throughout.
	for i := 0; i < 5000; i++ {
		k := uint64(i % 17)
		c.Access(req(int64(i), k, 50))
		if c.Used() > c.Capacity() {
			t.Fatalf("capacity exceeded at %d", i)
		}
	}
}

// TestSCIPBeatsLRUOnZROHeavyWorkload is the core behavioural check: on a
// workload dominated by one-hit wonders (ZROs) with a hot set several
// times the cache size, SCIP must achieve a lower miss ratio than plain
// LRU because it learns to keep ZROs away from the MRU position instead of
// letting them flush the reusable working set.
func TestSCIPBeatsLRUOnZROHeavyWorkload(t *testing.T) {
	cfg := gen.Config{
		Name: "zro-heavy", Seed: 11,
		Requests:    300_000,
		CatalogSize: 3000,
		ZipfAlpha:   0.8,
		OneHitFrac:  0.4,
		EchoProb:    0.2, EchoDelay: 100, EchoTailFrac: 0.6,
		EpochRequests: 100_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	}
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capBytes := int64(700_000)
	opts := sim.Options{WarmupFrac: 0.2}
	lru := sim.Run(tr, cache.NewLRU(capBytes), opts)
	scip := sim.Run(tr, NewCache(capBytes, WithSeed(4), WithInterval(5000)), opts)
	if scip.MissRatio() >= lru.MissRatio() {
		t.Fatalf("SCIP miss %.4f >= LRU miss %.4f on ZRO-heavy workload",
			scip.MissRatio(), lru.MissRatio())
	}
}

// TestSCIPAndSCIOnEchoWorkload checks the promotion half on a CDN-W-like
// workload (quick re-access echoes producing P-ZROs): SCIP must stay
// within noise of SCI and neither may collapse against LRU.
func TestSCIPAndSCIOnEchoWorkload(t *testing.T) {
	tr, err := gen.Generate(gen.CDNW.Config(0.002, 13))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNW.CacheBytes(64<<30, 0.002)
	opts := sim.Options{WarmupFrac: 0.2}
	lru := sim.Run(tr, cache.NewLRU(capBytes), opts)
	scip := sim.Run(tr, NewCache(capBytes, WithSeed(4), WithInterval(5000)), opts)
	sci := sim.Run(tr, NewSCICache(capBytes, WithSeed(4), WithInterval(5000)), opts)
	if scip.MissRatio() > lru.MissRatio()+0.02 {
		t.Fatalf("SCIP %.4f collapsed against LRU %.4f", scip.MissRatio(), lru.MissRatio())
	}
	if sci.MissRatio() > lru.MissRatio()+0.02 {
		t.Fatalf("SCI %.4f collapsed against LRU %.4f", sci.MissRatio(), lru.MissRatio())
	}
	if scip.MissRatio() > sci.MissRatio()+0.01 {
		t.Fatalf("SCIP %.4f materially worse than SCI %.4f on P-ZRO workload",
			scip.MissRatio(), sci.MissRatio())
	}
}

func TestOptionValidation(t *testing.T) {
	s := New(1000, WithInterval(0)) // ignored: keeps default
	if s.interval != DefaultInterval {
		t.Fatalf("interval = %d, want default", s.interval)
	}
}
