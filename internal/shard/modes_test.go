package shard

import (
	"sync"
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
)

// modeTrace generates a small CDN-T trace for the mode tests.
func modeTrace(t testing.TB) []cache.Request {
	t.Helper()
	tr, err := gen.Generate(gen.CDNT.Config(0.0008, 3))
	if err != nil {
		t.Fatal(err)
	}
	return tr.Requests
}

// replayByShard replays reqs against c from `workers` goroutines, worker
// w owning shards ≡ w (mod workers), batching batch requests per
// AccessBatch call (batch <= 1 uses per-request Access). The scheme all
// drivers share: per-shard order equals trace order in every
// configuration.
func replayByShard(t testing.TB, c *Cache, reqs []cache.Request, workers, batch int) {
	t.Helper()
	if workers > c.Shards() {
		workers = c.Shards()
	}
	shardOf := make([]int32, len(reqs))
	for i, r := range reqs {
		shardOf[i] = int32(c.ShardIndex(r.Key))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if batch <= 1 {
				for i, req := range reqs {
					if int(shardOf[i])%workers == w {
						c.Access(req)
					}
				}
				return
			}
			bufs := make([][]cache.Request, c.Shards())
			for i, req := range reqs {
				s := int(shardOf[i])
				if s%workers != w {
					continue
				}
				bufs[s] = append(bufs[s], req)
				if len(bufs[s]) == batch {
					c.AccessBatch(s, bufs[s], nil)
					bufs[s] = bufs[s][:0]
				}
			}
			for s, buf := range bufs {
				if len(buf) > 0 {
					c.AccessBatch(s, buf, nil)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardModeCountersInvariant: the per-shard counter blocks must be
// byte-identical across ModeMutex per-request, ModeMutex batched (several
// batch sizes) and ModeActor replays of the same shard-partitioned trace,
// at several worker counts. This is the serial-order invariant the
// concurrency modes are built on (DESIGN.md §10); the latency histogram
// is wall-clock and is deliberately not compared.
func TestShardModeCountersInvariant(t *testing.T) {
	reqs := modeTrace(t)
	type variant struct {
		name    string
		mode    Mode
		workers int
		batch   int
	}
	variants := []variant{{"mutex-serial", ModeMutex, 1, 1}}
	for _, w := range []int{2, 4, 8} {
		variants = append(variants,
			variant{"mutex", ModeMutex, w, 1},
			variant{"batched-3", ModeMutex, w, 3},
			variant{"batched-64", ModeMutex, w, 64},
			variant{"actor-1", ModeActor, w, 1},
			variant{"actor-64", ModeActor, w, 64},
		)
	}
	var want []int64
	for _, v := range variants {
		c, err := New("scip", 1<<24, 8, scipBuilder, WithMode(v.mode), WithActorDepth(4))
		if err != nil {
			t.Fatal(err)
		}
		st := c.EnableStats()
		replayByShard(t, c, reqs, v.workers, v.batch)
		c.Close()
		snap := st.Snapshot()
		var got []int64
		for _, sh := range snap.Shards {
			got = append(got, sh.Requests, sh.Hits, sh.BytesRequested, sh.BytesHit, sh.Evictions, sh.UsedBytes)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s workers=%d: counter %d = %d, want %d (serial replay)",
					v.name, v.workers, i, got[i], want[i])
			}
		}
	}
}

// TestAccessBatchMatchesSerial: a batch call must return the same hit
// outcomes, in order, as serial Access calls, and report the hit count.
func TestAccessBatchMatchesSerial(t *testing.T) {
	serial, _ := New("a", 1<<20, 1, lruBuilder)
	batched, _ := New("b", 1<<20, 1, lruBuilder)
	reqs := []cache.Request{
		{Time: 1, Key: 1, Size: 100},
		{Time: 2, Key: 2, Size: 50},
		{Time: 3, Key: 1, Size: 100},
		{Time: 4, Key: 3, Size: 70},
		{Time: 5, Key: 2, Size: 50},
	}
	var want []bool
	for _, r := range reqs {
		want = append(want, serial.Access(r))
	}
	hits := make([]bool, len(reqs))
	n := batched.AccessBatch(0, reqs, hits)
	wantHits := 0
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("request %d: batched hit=%v, serial hit=%v", i, hits[i], want[i])
		}
		if want[i] {
			wantHits++
		}
	}
	if n != wantHits {
		t.Fatalf("AccessBatch returned %d hits, want %d", n, wantHits)
	}
	if serial.Used() != batched.Used() {
		t.Fatalf("Used diverged: %d vs %d", serial.Used(), batched.Used())
	}
}

// TestBatchedEvictionAccounting extends the TestCapacitySplitExact-style
// accounting checks to the batched path: driving a tiny cache far past
// capacity through AccessBatch must feed the same EvictionCounter and
// used-bytes gauge the serial path feeds — eviction counts and occupancy
// gauges equal to a per-request replay, and the gauges equal to what the
// policies themselves report.
func TestBatchedEvictionAccounting(t *testing.T) {
	var reqs []cache.Request
	for i := 0; i < 512; i++ {
		reqs = append(reqs, cache.Request{Time: int64(i), Key: uint64(i % 96), Size: 512})
	}
	build := func(mode Mode) (*Cache, []int64) {
		c, err := New("x", 8192, 4, lruBuilder, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		st := c.EnableStats()
		// Group by shard to respect the AccessBatch contract.
		byShard := make([][]cache.Request, c.Shards())
		for _, r := range reqs {
			s := c.ShardIndex(r.Key)
			byShard[s] = append(byShard[s], r)
		}
		for s, batch := range byShard {
			for len(batch) > 0 {
				n := min(7, len(batch)) // odd batch size: exercises remainders
				c.AccessBatch(s, batch[:n], nil)
				batch = batch[n:]
			}
		}
		c.Close()
		snap := st.Snapshot()
		var flat []int64
		for i, sh := range snap.Shards {
			flat = append(flat, sh.Requests, sh.Hits, sh.Evictions, sh.UsedBytes)
			if got := c.shards[i].p.Used(); sh.UsedBytes != got {
				t.Fatalf("shard %d: gauge %d != policy Used %d", i, sh.UsedBytes, got)
			}
			if ec, ok := c.shards[i].p.(cache.EvictionCounter); ok {
				if got := ec.Evictions(); sh.Evictions != got {
					t.Fatalf("shard %d: eviction gauge %d != policy count %d", i, sh.Evictions, got)
				}
			}
		}
		if tot := snap.Totals(); tot.Evictions == 0 {
			t.Fatal("no evictions despite oversubscription")
		}
		return c, flat
	}
	// Serial per-request reference on an identical cache.
	ref, err := New("x", 8192, 4, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	refSt := ref.EnableStats()
	byShard := make([][]cache.Request, ref.Shards())
	for _, r := range reqs {
		byShard[ref.ShardIndex(r.Key)] = append(byShard[ref.ShardIndex(r.Key)], r)
	}
	for _, rs := range byShard {
		for _, r := range rs {
			ref.Access(r)
		}
	}
	var wantFlat []int64
	for _, sh := range refSt.Snapshot().Shards {
		wantFlat = append(wantFlat, sh.Requests, sh.Hits, sh.Evictions, sh.UsedBytes)
	}
	for _, mode := range []Mode{ModeMutex, ModeActor} {
		c, flat := build(mode)
		for i := range wantFlat {
			if flat[i] != wantFlat[i] {
				t.Fatalf("mode %s: accounting field %d = %d, want %d", mode, i, flat[i], wantFlat[i])
			}
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("mode %s: Used %d > Capacity %d", mode, c.Used(), c.Capacity())
		}
	}
}

// TestActorConcurrentAccess hammers a ModeActor cache from 8 goroutines
// mixing single accesses, batches and control-plane reads; run with
// -race. This is the actor-path race test: every policy touch must be
// serialised by the owner goroutine + slot mutex.
func TestActorConcurrentAccess(t *testing.T) {
	c, err := New("scip", 1<<22, 8, scipBuilder, WithMode(ModeActor), WithActorDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	const (
		workers = 8
		perW    = 5_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]cache.Request, 0, 4)
			hits := make([]bool, 4)
			for i := 0; i < perW; i++ {
				switch {
				case i%97 == 0:
					if c.Used() > c.Capacity() {
						t.Error("Used exceeds Capacity")
						return
					}
					_ = c.Evictions()
					_ = st.Snapshot().OccupancySkew()
				case i%5 == 4:
					// A same-shard batch: four accesses of one key's shard.
					key := uint64((w*perW + i) % 700)
					idx := c.ShardIndex(key)
					batch = batch[:0]
					for j := 0; j < 4; j++ {
						batch = append(batch, cache.Request{Time: int64(i + j), Key: key, Size: 256})
					}
					c.AccessBatch(idx, batch, hits[:4])
				default:
					c.Access(cache.Request{Time: int64(i), Key: uint64((w*perW + i) % 700), Size: 256})
				}
			}
		}(w)
	}
	wg.Wait()
	c.Close()
	c.Close() // idempotent
	if tot := st.Snapshot().Totals(); tot.Requests == 0 {
		t.Fatal("stats recorded no requests")
	}
	// The control plane stays usable after Close.
	if c.Used() > c.Capacity() {
		t.Fatal("post-Close capacity invariant violated")
	}
	c.Reset()
	if c.Used() != 0 {
		t.Fatal("post-Close Reset did not clear shards")
	}
}

// TestParseMode round-trips the flag values.
func TestParseMode(t *testing.T) {
	for _, m := range []Mode{ModeMutex, ModeActor} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
}

// TestAccessBatchValidation: mismatched hits length must panic (caller
// bug), empty batches are no-ops.
func TestAccessBatchValidation(t *testing.T) {
	c, _ := New("x", 1<<20, 2, lruBuilder)
	if n := c.AccessBatch(0, nil, nil); n != 0 {
		t.Fatalf("empty batch returned %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched hits slice did not panic")
		}
	}()
	c.AccessBatch(0, []cache.Request{{Key: 1, Size: 1}}, make([]bool, 2))
}
