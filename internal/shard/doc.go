// Package shard provides a concurrent cache front: requests are hash-
// partitioned across N independent shards, each holding its own policy
// instance (SCIP-LRU, LRB, ...) behind its own mutex. This mirrors how
// production CDN nodes parallelise a single logical cache — TDC's
// prototype runs a multi-ccd/multi-smcd process model — while keeping
// every policy implementation single-threaded and simple.
//
// Sharding by key hash preserves per-object decisions exactly (an object
// always lands on the same shard) and divides the byte budget evenly;
// recency interleaving across shards is the standard approximation and
// costs well under a point of miss ratio at 2^4..2^8 shards for CDN-scale
// object counts (see the package tests).
//
// The per-shard request order fully determines every policy decision:
// replaying a trace partitioned by shard produces byte-identical per-shard
// counters regardless of how many goroutines issue the requests. Both
// cmd/scip-load and the scip-serve end-to-end tests rest on this
// invariant; see DESIGN.md §7.
package shard
