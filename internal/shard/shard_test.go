package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
	"github.com/scip-cache/scip/internal/stats"
)

func lruBuilder(capBytes int64, _ int) cache.Policy { return cache.NewLRU(capBytes) }

// TestShardSlotPadding asserts that every shard slot occupies a whole
// number of cache lines and fully covers its payload, so neighbouring
// shards in the slot array never share a 64-byte line.
func TestShardSlotPadding(t *testing.T) {
	size := unsafe.Sizeof(shardSlot{})
	if size%64 != 0 {
		t.Fatalf("shardSlot size %d is not a cache-line multiple", size)
	}
	if size < slotDataSize {
		t.Fatalf("shardSlot size %d smaller than payload %d", size, slotDataSize)
	}
	if slotPad < 1 || slotPad > 64 {
		t.Fatalf("slotPad = %d, want 1..64", slotPad)
	}
	// The mutex of slot i+1 must start on a different line than slot i's.
	var two [2]shardSlot
	a := uintptr(unsafe.Pointer(&two[0].mu)) / 64
	b := uintptr(unsafe.Pointer(&two[1].mu)) / 64
	if a == b {
		t.Fatal("adjacent shard mutexes share a cache line")
	}
}

func scipBuilder(capBytes int64, shard int) cache.Policy {
	return core.NewCache(capBytes, core.WithSeed(int64(shard)+1), core.WithInterval(2000))
}

func TestNewValidates(t *testing.T) {
	if _, err := New("x", 100, 4, nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	if _, err := New("x", 0, 4, lruBuilder); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New("x", 100, 4, func(int64, int) cache.Policy { return nil }); err == nil {
		t.Fatal("nil shard policy accepted")
	}
}

func TestShardCountRoundsUp(t *testing.T) {
	c, err := New("x", 1<<20, 5, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	if c.Capacity() != (1<<20)/8*8 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
}

// TestCapacitySplitExact is the regression test for the remainder-drop
// bug: shard.New used capBytes/size per shard, so any budget not divisible
// by the shard count silently shrank the cache and Capacity() disagreed
// with the requested budget. The split must now be exact for every budget.
func TestCapacitySplitExact(t *testing.T) {
	cases := []struct {
		name     string
		capBytes int64
		n        int
		shards   int
	}{
		{"divisible", 1 << 20, 8, 8},
		{"remainder", 1<<30 + 7, 8, 8},
		{"prime budget", 1_000_003, 16, 16},
		{"one shard", 12345, 1, 1},
		{"round up with remainder", 1000, 5, 8},
		{"budget smaller than shards", 5, 8, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			perShard := map[int]int64{}
			c, err := New("x", tc.capBytes, tc.n, func(capBytes int64, shard int) cache.Policy {
				mu.Lock()
				perShard[shard] = capBytes
				mu.Unlock()
				return cache.NewLRU(capBytes)
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.Shards() != tc.shards {
				t.Fatalf("shards = %d, want %d", c.Shards(), tc.shards)
			}
			var sum int64
			var min, max int64 = 1 << 62, -1
			for _, b := range perShard {
				sum += b
				if b < min {
					min = b
				}
				if b > max {
					max = b
				}
			}
			if sum != tc.capBytes {
				t.Fatalf("sum(shard capacities) = %d, want %d", sum, tc.capBytes)
			}
			if max-min > 1 {
				t.Fatalf("uneven split: min %d max %d", min, max)
			}
			if c.Capacity() != tc.capBytes {
				t.Fatalf("Capacity() = %d, want requested budget %d", c.Capacity(), tc.capBytes)
			}
		})
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, err := New("x", 1<<20, 4, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	r := cache.Request{Time: 1, Key: 42, Size: 100}
	if c.Access(r) {
		t.Fatal("cold access hit")
	}
	if !c.Access(r) {
		t.Fatal("warm access missed")
	}
	if c.Used() != 100 {
		t.Fatalf("Used = %d", c.Used())
	}
	c.Reset()
	if c.Used() != 0 {
		t.Fatal("Reset did not clear shards")
	}
}

func TestKeyAffinity(t *testing.T) {
	c, _ := New("x", 1<<20, 8, lruBuilder)
	// The same key must always land on the same shard: a warm key keeps
	// hitting no matter how many other keys interleave.
	c.Access(cache.Request{Key: 7, Size: 10})
	for i := 0; i < 1000; i++ {
		c.Access(cache.Request{Key: uint64(1000 + i), Size: 10})
		if !c.Access(cache.Request{Key: 7, Size: 10}) {
			t.Fatalf("warm key missed at iteration %d", i)
		}
	}
}

// TestConcurrentAccess hammers the cache from many goroutines; run with
// -race to verify the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	c, err := New("scip", 1<<22, 8, scipBuilder)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 20_000
	)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := uint64((w*perW + i) % 500)
				if c.Access(cache.Request{Time: int64(i), Key: key, Size: 256}) {
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if hits.Load() == 0 {
		t.Fatal("no hits under concurrent access")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("capacity invariant violated: %d > %d", c.Used(), c.Capacity())
	}
}

// TestShardingMissRatioPenalty checks the approximation cost: sharding a
// SCIP cache 8 ways must stay within ~2 points of the unsharded miss
// ratio on a profile workload.
func TestShardingMissRatioPenalty(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	opts := sim.Options{WarmupFrac: 0.2}
	mono := sim.Run(tr, scipBuilder(capBytes, 0), opts)
	sharded, err := New("scip-8", capBytes, 8, scipBuilder)
	if err != nil {
		t.Fatal(err)
	}
	sh := sim.Run(tr, sharded, opts)
	if sh.MissRatio() > mono.MissRatio()+0.02 {
		t.Fatalf("sharding penalty too high: %.4f vs %.4f", sh.MissRatio(), mono.MissRatio())
	}
}

// TestStatsWiring checks that an attached stats block observes every
// access with the correct hit/byte accounting and occupancy/eviction
// gauges, on the shard the key actually routes to.
func TestStatsWiring(t *testing.T) {
	c, err := New("x", 1<<20, 4, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	if c.Stats() != st {
		t.Fatal("Stats() accessor disagrees with EnableStats")
	}
	reqs := []cache.Request{
		{Time: 1, Key: 1, Size: 100},
		{Time: 2, Key: 1, Size: 100}, // hit
		{Time: 3, Key: 2, Size: 50},
	}
	for _, r := range reqs {
		c.Access(r)
	}
	snap := st.Snapshot()
	tot := snap.Totals()
	if tot.Requests != 3 || tot.Hits != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.BytesRequested != 250 || tot.BytesHit != 100 {
		t.Fatalf("byte totals = %+v", tot)
	}
	if tot.UsedBytes != c.Used() {
		t.Fatalf("UsedBytes gauge %d != Used() %d", tot.UsedBytes, c.Used())
	}
	// The access path is clock-free: latency is observed caller-side
	// (stats.LatencyTicker), never by shard.Cache itself.
	if snap.LatencySamples() != 0 {
		t.Fatalf("latency samples = %d, want 0", snap.LatencySamples())
	}
	idx := c.ShardIndex(1)
	if got := snap.Shards[idx].Hits; got != 1 {
		t.Fatalf("hit recorded on wrong shard: shard %d has %d hits", idx, got)
	}
	c.Reset()
	if st.Snapshot().Totals() != (stats.ShardSnapshot{}) {
		t.Fatal("Reset did not clear the stats block")
	}
}

// TestStatsEvictionCounter fills a tiny sharded cache past capacity and
// checks the eviction gauges flow through from the shard policies.
func TestStatsEvictionCounter(t *testing.T) {
	c, err := New("x", 4096, 2, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	for i := 0; i < 256; i++ {
		c.Access(cache.Request{Time: int64(i), Key: uint64(i), Size: 512})
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions despite 32x oversubscription")
	}
	if got := st.Snapshot().Totals().Evictions; got != c.Evictions() {
		t.Fatalf("stats evictions %d != policy evictions %d", got, c.Evictions())
	}
}

// TestConcurrentAccessUsedReset hammers Access, Used, Capacity, Evictions
// and Reset from 8 goroutines with stats attached; run with -race to
// verify the locking discipline end to end.
func TestConcurrentAccessUsedReset(t *testing.T) {
	c, err := New("scip", 1<<22, 8, scipBuilder)
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	const (
		workers = 8
		perW    = 10_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				switch {
				case i%1000 == 999 && w == 0:
					c.Reset()
				case i%100 == 99:
					if c.Used() > c.Capacity() {
						t.Error("Used exceeds Capacity")
						return
					}
					_ = c.Evictions()
					_ = st.Snapshot().OccupancySkew()
				default:
					c.Access(cache.Request{Time: int64(i), Key: uint64((w*perW + i) % 1000), Size: 256})
				}
			}
		}(w)
	}
	wg.Wait()
	// Worker 0's final iteration (i=9999) is a Reset, which zeroes the
	// stats; if it serialises after every other worker's last access the
	// totals are legitimately zero. Record one more access after the
	// barrier so the assertion is deterministic.
	c.Access(cache.Request{Time: int64(perW), Key: 0, Size: 256})
	if tot := st.Snapshot().Totals(); tot.Requests == 0 {
		t.Fatal("stats recorded no requests")
	}
}

func BenchmarkShardedParallelAccess(b *testing.B) {
	c, err := New("scip", 1<<24, 16, scipBuilder)
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			c.Access(cache.Request{Time: int64(i), Key: i % 4096, Size: 512})
		}
	})
}

func BenchmarkUnshardedSerialAccess(b *testing.B) {
	p := scipBuilder(1<<24, 0)
	for i := 0; i < b.N; i++ {
		p.Access(cache.Request{Time: int64(i), Key: uint64(i % 4096), Size: 512})
	}
}

// TestRemove checks invalidation routing: Remove deletes the key from
// the shard it routes to, updates the occupancy gauge, and is not
// counted as an eviction (operator invalidation is not a placement
// signal).
func TestRemove(t *testing.T) {
	c, err := New("x", 1<<20, 4, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	c.Access(cache.Request{Time: 1, Key: 1, Size: 100})
	c.Access(cache.Request{Time: 2, Key: 2, Size: 50})

	removed, supported := c.Remove(1)
	if !supported || !removed {
		t.Fatalf("Remove(1) = %v, %v; want removed and supported", removed, supported)
	}
	if c.Used() != 50 {
		t.Fatalf("Used = %d after Remove, want 50", c.Used())
	}
	idx := c.ShardIndex(1)
	if got := st.Snapshot().Shards[idx].UsedBytes; got != c.shards[idx].p.Used() {
		t.Fatalf("shard %d UsedBytes gauge %d stale after Remove", idx, got)
	}
	if got := st.Snapshot().Totals().Evictions; got != 0 {
		t.Fatalf("Remove counted as eviction: %d", got)
	}
	if removed, _ := c.Remove(1); removed {
		t.Fatal("second Remove reported present")
	}
	if c.Access(cache.Request{Time: 3, Key: 1, Size: 100}) {
		t.Fatal("removed key reported hit")
	}
}

// TestRemoveUnsupported: a policy without cache.Remover support reports
// supported=false and stays untouched. SCIP/SCI/LRU are all
// QueueCache-backed and removable; a bare non-Remover policy stands in
// for LRB here to keep the shard tests free of the lrb import.
func TestRemoveUnsupported(t *testing.T) {
	c, err := New("fixed", 1<<20, 2, func(b int64, _ int) cache.Policy {
		return noRemovePolicy{cache.NewLRU(b)}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(cache.Request{Time: 1, Key: 1, Size: 100})
	used := c.Used()
	if _, supported := c.Remove(1); supported {
		t.Fatal("non-Remover policy reported Remove support")
	}
	if c.Used() != used {
		t.Fatal("unsupported Remove changed occupancy")
	}
}

// noRemovePolicy hides the embedded QueueCache's Remove so the wrapper
// does not satisfy cache.Remover.
type noRemovePolicy struct{ *cache.QueueCache }

func (noRemovePolicy) Remove() {}
