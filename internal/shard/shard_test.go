package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/sim"
)

func lruBuilder(capBytes int64, _ int) cache.Policy { return cache.NewLRU(capBytes) }

// TestShardSlotPadding asserts that every shard slot occupies a whole
// number of cache lines and fully covers its payload, so neighbouring
// shards in the slot array never share a 64-byte line.
func TestShardSlotPadding(t *testing.T) {
	size := unsafe.Sizeof(shardSlot{})
	if size%64 != 0 {
		t.Fatalf("shardSlot size %d is not a cache-line multiple", size)
	}
	if size < slotDataSize {
		t.Fatalf("shardSlot size %d smaller than payload %d", size, slotDataSize)
	}
	if slotPad < 1 || slotPad > 64 {
		t.Fatalf("slotPad = %d, want 1..64", slotPad)
	}
	// The mutex of slot i+1 must start on a different line than slot i's.
	var two [2]shardSlot
	a := uintptr(unsafe.Pointer(&two[0].mu)) / 64
	b := uintptr(unsafe.Pointer(&two[1].mu)) / 64
	if a == b {
		t.Fatal("adjacent shard mutexes share a cache line")
	}
}

func scipBuilder(capBytes int64, shard int) cache.Policy {
	return core.NewCache(capBytes, core.WithSeed(int64(shard)+1), core.WithInterval(2000))
}

func TestNewValidates(t *testing.T) {
	if _, err := New("x", 100, 4, nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	if _, err := New("x", 0, 4, lruBuilder); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New("x", 100, 4, func(int64, int) cache.Policy { return nil }); err == nil {
		t.Fatal("nil shard policy accepted")
	}
}

func TestShardCountRoundsUp(t *testing.T) {
	c, err := New("x", 1<<20, 5, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	if c.Capacity() != (1<<20)/8*8 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, err := New("x", 1<<20, 4, lruBuilder)
	if err != nil {
		t.Fatal(err)
	}
	r := cache.Request{Time: 1, Key: 42, Size: 100}
	if c.Access(r) {
		t.Fatal("cold access hit")
	}
	if !c.Access(r) {
		t.Fatal("warm access missed")
	}
	if c.Used() != 100 {
		t.Fatalf("Used = %d", c.Used())
	}
	c.Reset()
	if c.Used() != 0 {
		t.Fatal("Reset did not clear shards")
	}
}

func TestKeyAffinity(t *testing.T) {
	c, _ := New("x", 1<<20, 8, lruBuilder)
	// The same key must always land on the same shard: a warm key keeps
	// hitting no matter how many other keys interleave.
	c.Access(cache.Request{Key: 7, Size: 10})
	for i := 0; i < 1000; i++ {
		c.Access(cache.Request{Key: uint64(1000 + i), Size: 10})
		if !c.Access(cache.Request{Key: 7, Size: 10}) {
			t.Fatalf("warm key missed at iteration %d", i)
		}
	}
}

// TestConcurrentAccess hammers the cache from many goroutines; run with
// -race to verify the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	c, err := New("scip", 1<<22, 8, scipBuilder)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 20_000
	)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := uint64((w*perW + i) % 500)
				if c.Access(cache.Request{Time: int64(i), Key: key, Size: 256}) {
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if hits.Load() == 0 {
		t.Fatal("no hits under concurrent access")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("capacity invariant violated: %d > %d", c.Used(), c.Capacity())
	}
}

// TestShardingMissRatioPenalty checks the approximation cost: sharding a
// SCIP cache 8 ways must stay within ~2 points of the unsharded miss
// ratio on a profile workload.
func TestShardingMissRatioPenalty(t *testing.T) {
	tr, err := gen.Generate(gen.CDNT.Config(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, 0.001)
	opts := sim.Options{WarmupFrac: 0.2}
	mono := sim.Run(tr, scipBuilder(capBytes, 0), opts)
	sharded, err := New("scip-8", capBytes, 8, scipBuilder)
	if err != nil {
		t.Fatal(err)
	}
	sh := sim.Run(tr, sharded, opts)
	if sh.MissRatio() > mono.MissRatio()+0.02 {
		t.Fatalf("sharding penalty too high: %.4f vs %.4f", sh.MissRatio(), mono.MissRatio())
	}
}

func BenchmarkShardedParallelAccess(b *testing.B) {
	c, err := New("scip", 1<<24, 16, scipBuilder)
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			c.Access(cache.Request{Time: int64(i), Key: i % 4096, Size: 512})
		}
	})
}

func BenchmarkUnshardedSerialAccess(b *testing.B) {
	p := scipBuilder(1<<24, 0)
	for i := 0; i < b.N; i++ {
		p.Access(cache.Request{Time: int64(i), Key: uint64(i % 4096), Size: 512})
	}
}
