package shard

import (
	"fmt"
	"sync"
	"unsafe"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/stats"
)

// Builder constructs one shard's policy given the shard's byte budget and
// index (the index is typically folded into the policy's seed).
type Builder func(capBytes int64, shard int) cache.Policy

// Mode selects how accesses reach a shard's single-threaded policy. All
// modes preserve per-shard serial order, so a shard-partitioned replay
// produces byte-identical counters in every mode (pinned by
// TestModeInvariance); they differ only in synchronisation cost.
type Mode int

const (
	// ModeMutex guards each shard with its own mutex; every Access locks
	// and unlocks it. The default, and the fastest option for a single
	// accessor or per-request (unbatched) traffic.
	ModeMutex Mode = iota
	// ModeActor gives each shard a dedicated owner goroutine fed by a
	// bounded channel of request batches. Accessors never contend on the
	// shard mutex (the owner takes it uncontended, only to stay
	// interoperable with the direct control-plane methods); they pay one
	// channel send/receive per batch instead, which wins once batches
	// amortise the handoff across many requests.
	ModeActor
)

// String returns "mutex" or "actor".
func (m Mode) String() string {
	if m == ModeActor {
		return "actor"
	}
	return "mutex"
}

// ParseMode parses "mutex" or "actor" (the -mode flag values of
// scip-load and scip-serve; those drivers layer "batched" on top of
// ModeMutex — batching is an access pattern, not a cache mode).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "mutex":
		return ModeMutex, nil
	case "actor":
		return ModeActor, nil
	}
	return ModeMutex, fmt.Errorf("unknown shard mode %q (want mutex or actor)", s)
}

// Option configures a Cache beyond the required constructor arguments.
type Option func(*config)

type config struct {
	mode  Mode
	depth int
}

// WithMode selects the concurrency mode (default ModeMutex).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithActorDepth sets the per-shard channel depth in ModeActor (default
// 8 batches; min 1). Deeper channels let more batches queue behind a
// busy shard before senders block; they do not change any counter.
func WithActorDepth(n int) Option { return func(c *config) { c.depth = n } }

// Cache is a thread-safe sharded cache. All exported methods are safe for
// concurrent use.
type Cache struct {
	name   string
	shards []shardSlot
	mask   uint64
	mode   Mode

	// Actor mode: one bounded message channel per shard, each owned by a
	// dedicated goroutine; donePool recycles reply channels so the
	// steady-state access path allocates nothing.
	msgs     []chan shardMsg
	actorWG  sync.WaitGroup
	closeOne sync.Once
	donePool sync.Pool

	// st, when non-nil, receives per-access observations (counters and
	// latency). evc caches each shard policy's EvictionCounter side so
	// the hot path carries no type assertion.
	st  *stats.Stats
	evc []cache.EvictionCounter
}

// slotDataSize is the payload size of a shardSlot, computed from the real
// field layout rather than a hard-coded guess (the old padding only
// accounted for the mutex, leaving the 16-byte policy interface to spill
// onto a neighbour's cache line).
const slotDataSize = unsafe.Sizeof(struct {
	mu sync.Mutex
	p  cache.Policy
}{})

// slotPad rounds the slot up to a whole number of 64-byte cache lines. It
// is always in [1, 64] (a payload already at a line boundary gets a full
// spacer line) so the trailing array is never zero-sized, which would let
// Go place the next slot's fields flush against this one.
const slotPad = 64 - slotDataSize%64

// shardSlot pads each shard onto its own cache lines so the hot mutex and
// policy pointer of neighbouring shards do not false-share under
// contention. The package test asserts the size is a cache-line multiple.
type shardSlot struct {
	mu sync.Mutex
	p  cache.Policy //scip:guardedby mu
	_  [slotPad]byte
}

// shardMsg is one unit of work sent to a shard's owner goroutine in
// ModeActor. Exactly one of reqs (a batch) or req (a single request) is
// meaningful; hits, when non-nil, receives the per-request outcomes of a
// batch. The message is sent by value — no allocation — and done is a
// pooled reply channel carrying the batch hit count.
type shardMsg struct {
	reqs []cache.Request
	hits []bool
	req  cache.Request
	done chan int
}

// New builds a sharded cache with n shards (rounded up to a power of
// two, min 1) dividing capBytes between them.
func New(name string, capBytes int64, n int, build Builder, opts ...Option) (*Cache, error) {
	if build == nil {
		return nil, fmt.Errorf("shard: nil builder")
	}
	if capBytes <= 0 {
		return nil, fmt.Errorf("shard: capacity must be positive, got %d", capBytes)
	}
	cfg := config{mode: ModeMutex, depth: 8}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.depth < 1 {
		cfg.depth = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	c := &Cache{
		name:   name,
		shards: make([]shardSlot, size),
		mask:   uint64(size - 1),
		mode:   cfg.mode,
	}
	c.donePool.New = func() any { return make(chan int, 1) }
	// Split the byte budget exactly: base bytes per shard, with the
	// remainder distributed one byte each to the first capBytes%size
	// shards, so sum(shard caps) == capBytes and Capacity() reports
	// the budget the caller asked for.
	base := capBytes / int64(size)
	rem := capBytes % int64(size)
	for i := range c.shards {
		per := base
		if int64(i) < rem {
			per++
		}
		c.shards[i].p = build(per, i) //scip:lock-ok construction: the cache is not yet shared
		if c.shards[i].p == nil {     //scip:lock-ok construction: the cache is not yet shared
			return nil, fmt.Errorf("shard: builder returned nil for shard %d", i)
		}
	}
	if c.mode == ModeActor {
		c.msgs = make([]chan shardMsg, size)
		for i := range c.msgs {
			c.msgs[i] = make(chan shardMsg, cfg.depth)
			c.actorWG.Add(1)
			go c.runActor(i)
		}
	}
	return c, nil
}

// runActor owns shard i in ModeActor: it drains the shard's message
// channel and applies each batch under the slot mutex. The mutex is
// always uncontended on this path (accessors go through the channel, not
// the lock) — holding it only keeps the direct control-plane methods
// (Used, Reset, Remove, ...) safe without routing them through the
// actor, so they keep working even after Close.
//
//scip:hotpath
func (c *Cache) runActor(i int) {
	defer c.actorWG.Done()
	s := &c.shards[i]
	for m := range c.msgs[i] {
		s.mu.Lock()
		var hits int
		if m.reqs == nil {
			if s.p.Access(m.req) { //scip:alloc-ok shard policies carry their own //scip:hotpath vetting
				hits = 1
			}
			if c.st != nil {
				c.observeLocked(i, 1, int64(hits), m.req.Size, int64(hits)*m.req.Size)
			}
		} else {
			var bytesReq, bytesHit int64
			for j, req := range m.reqs {
				hit := s.p.Access(req) //scip:alloc-ok shard policies carry their own //scip:hotpath vetting
				if m.hits != nil {
					m.hits[j] = hit
				}
				bytesReq += req.Size
				if hit {
					hits++
					bytesHit += req.Size
				}
			}
			if c.st != nil {
				c.observeLocked(i, int64(len(m.reqs)), int64(hits), bytesReq, bytesHit)
			}
		}
		s.mu.Unlock()
		m.done <- hits
	}
}

// observeLocked records a completed access or batch on shard i. Caller
// holds the shard lock (the gauge reads need it).
//
//scip:hotpath
//scip:locked mu
func (c *Cache) observeLocked(i int, n, hits, bytesReq, bytesHit int64) {
	used := c.shards[i].p.Used() //scip:alloc-ok counter read on a vetted policy
	var ev int64
	if ec := c.evc[i]; ec != nil {
		ev = ec.Evictions() //scip:alloc-ok counter read on a vetted policy
	}
	c.st.ObserveBatch(i, n, hits, bytesReq, bytesHit, used, ev)
}

// Close shuts down the shard owner goroutines of a ModeActor cache and
// waits for them to drain their queued batches. Callers must quiesce all
// Access/AccessBatch callers first; accessing a closed actor cache
// panics. The control-plane methods (Used, Capacity, Evictions, Reset,
// Remove, Stats) remain usable after Close — they take the shard locks
// directly. Close is idempotent and a no-op in ModeMutex.
func (c *Cache) Close() {
	if c.mode != ModeActor {
		return
	}
	c.closeOne.Do(func() {
		for i := range c.msgs {
			close(c.msgs[i])
		}
		c.actorWG.Wait()
	})
}

// Mode returns the cache's concurrency mode.
func (c *Cache) Mode() Mode { return c.mode }

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Name implements cache.Policy.
func (c *Cache) Name() string { return c.name }

// EnableStats attaches (and returns) a per-shard stats block. Every
// subsequent Access records its outcome, the shard's occupancy and
// eviction count. Latency is the caller's concern (stats.LatencyTicker);
// the access path itself never reads the clock. Must be called before
// the cache is shared between goroutines; it is not synchronised with
// Access.
func (c *Cache) EnableStats() *stats.Stats {
	c.st = stats.New(len(c.shards))
	c.evc = make([]cache.EvictionCounter, len(c.shards))
	for i := range c.shards {
		c.evc[i], _ = c.shards[i].p.(cache.EvictionCounter) //scip:lock-ok EnableStats must precede sharing the cache (documented)
	}
	return c.st
}

// Stats returns the attached stats block, or nil.
func (c *Cache) Stats() *stats.Stats { return c.st }

// ShardIndex returns the shard the key is routed to. Load drivers use it
// to partition a trace by shard so per-shard request order (and therefore
// every per-shard policy decision) is independent of the worker count.
//
//scip:hotpath
func (c *Cache) ShardIndex(key uint64) int {
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 40) & c.mask)
}

// Access implements cache.Policy; safe for concurrent use.
//
//scip:hotpath
func (c *Cache) Access(req cache.Request) bool {
	idx := c.ShardIndex(req.Key)
	if c.mode == ModeActor {
		done := c.donePool.Get().(chan int)
		c.msgs[idx] <- shardMsg{req: req, done: done}
		hits := <-done
		c.donePool.Put(done)
		return hits == 1
	}
	s := &c.shards[idx]
	s.mu.Lock()
	hit := s.p.Access(req) //scip:alloc-ok shard policies carry their own //scip:hotpath vetting
	if c.st == nil {
		s.mu.Unlock()
		return hit
	}
	var nHit int64
	if hit {
		nHit = 1
	}
	c.observeLocked(idx, 1, nHit, req.Size, nHit*req.Size)
	s.mu.Unlock()
	return hit
}

// AccessBatch processes a batch of requests that all route to shard idx
// (the caller's responsibility — shard-partitioned replay loops already
// group requests by ShardIndex), amortising one synchronisation round
// per batch: a single lock acquisition in ModeMutex, a single channel
// handoff in ModeActor. Requests are applied in slice order, so a
// shard's decision stream — and every counter derived from it — is
// byte-identical to len(reqs) serial Access calls. hits, when non-nil,
// must have len(reqs) elements and receives each request's outcome.
// AccessBatch returns the batch hit count.
//
//scip:hotpath
func (c *Cache) AccessBatch(idx int, reqs []cache.Request, hits []bool) int {
	if len(reqs) == 0 {
		return 0
	}
	if hits != nil && len(hits) != len(reqs) {
		//scip:alloc-ok panic-message formatting on a programming error
		panic(fmt.Sprintf("shard: AccessBatch hits length %d != reqs length %d", len(hits), len(reqs)))
	}
	if c.mode == ModeActor {
		done := c.donePool.Get().(chan int)
		c.msgs[idx] <- shardMsg{reqs: reqs, hits: hits, done: done}
		n := <-done
		c.donePool.Put(done)
		return n
	}
	s := &c.shards[idx]
	var nHits int
	var bytesReq, bytesHit int64
	s.mu.Lock()
	for j, req := range reqs {
		hit := s.p.Access(req) //scip:alloc-ok shard policies carry their own //scip:hotpath vetting
		if hits != nil {
			hits[j] = hit
		}
		bytesReq += req.Size
		if hit {
			nHits++
			bytesHit += req.Size
		}
	}
	if c.st != nil {
		c.observeLocked(idx, int64(len(reqs)), int64(nHits), bytesReq, bytesHit)
	}
	s.mu.Unlock()
	return nHits
}

// Remove invalidates key on its shard. It reports whether the key was
// resident and whether the shard policy supports removal at all
// (cache.Remover); policies without removal support — LRB's sampled
// eviction has no per-key index delete — return supported == false and
// leave the cache untouched. Safe for concurrent use (in ModeActor it
// serialises with in-flight batches via the shard lock, which the actor
// holds while applying each batch).
func (c *Cache) Remove(key uint64) (removed, supported bool) {
	idx := c.ShardIndex(key)
	s := &c.shards[idx]
	s.mu.Lock()
	r, supported := s.p.(cache.Remover)
	if supported {
		removed = r.Remove(key)
	}
	used := s.p.Used()
	s.mu.Unlock()
	if removed && c.st != nil {
		c.st.Shard(idx).UsedBytes.Store(used)
	}
	return removed, supported
}

// Used implements cache.Policy (a racy-but-consistent-enough aggregate;
// each shard is read under its own lock).
func (c *Cache) Used() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.p.Used()
		s.mu.Unlock()
	}
	return total
}

// Capacity implements cache.Policy.
func (c *Cache) Capacity() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.p.Capacity()
		s.mu.Unlock()
	}
	return total
}

// Evictions implements cache.EvictionCounter: the sum over shards that
// expose a counter (each read under its own lock).
func (c *Cache) Evictions() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if ec, ok := s.p.(cache.EvictionCounter); ok {
			total += ec.Evictions()
		}
		s.mu.Unlock()
	}
	return total
}

// Reset resets every shard whose policy supports it, and the attached
// stats block if any.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if r, ok := s.p.(cache.Resetter); ok {
			r.Reset()
		}
		s.mu.Unlock()
	}
	if c.st != nil {
		c.st.Reset()
	}
}

var (
	_ cache.Policy          = (*Cache)(nil)
	_ cache.EvictionCounter = (*Cache)(nil)
)
