package shard

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/stats"
)

// Builder constructs one shard's policy given the shard's byte budget and
// index (the index is typically folded into the policy's seed).
type Builder func(capBytes int64, shard int) cache.Policy

// Cache is a thread-safe sharded cache. All exported methods are safe for
// concurrent use.
type Cache struct {
	name   string
	shards []shardSlot
	mask   uint64

	// st, when non-nil, receives per-access observations (counters and
	// latency). evc caches each shard policy's EvictionCounter side so
	// the hot path carries no type assertion.
	st  *stats.Stats
	evc []cache.EvictionCounter
}

// slotDataSize is the payload size of a shardSlot, computed from the real
// field layout rather than a hard-coded guess (the old padding only
// accounted for the mutex, leaving the 16-byte policy interface to spill
// onto a neighbour's cache line).
const slotDataSize = unsafe.Sizeof(struct {
	mu sync.Mutex
	p  cache.Policy
}{})

// slotPad rounds the slot up to a whole number of 64-byte cache lines. It
// is always in [1, 64] (a payload already at a line boundary gets a full
// spacer line) so the trailing array is never zero-sized, which would let
// Go place the next slot's fields flush against this one.
const slotPad = 64 - slotDataSize%64

// shardSlot pads each shard onto its own cache lines so the hot mutex and
// policy pointer of neighbouring shards do not false-share under
// contention. The package test asserts the size is a cache-line multiple.
type shardSlot struct {
	mu sync.Mutex
	p  cache.Policy
	_  [slotPad]byte
}

// New builds a sharded cache with n shards (rounded up to a power of
// two, min 1) dividing capBytes between them.
func New(name string, capBytes int64, n int, build Builder) (*Cache, error) {
	if build == nil {
		return nil, fmt.Errorf("shard: nil builder")
	}
	if capBytes <= 0 {
		return nil, fmt.Errorf("shard: capacity must be positive, got %d", capBytes)
	}
	size := 1
	for size < n {
		size <<= 1
	}
	c := &Cache{
		name:   name,
		shards: make([]shardSlot, size),
		mask:   uint64(size - 1),
	}
	// Split the byte budget exactly: base bytes per shard, with the
	// remainder distributed one byte each to the first capBytes%size
	// shards, so sum(shard capacities) == capBytes and Capacity() reports
	// the budget the caller asked for.
	base := capBytes / int64(size)
	rem := capBytes % int64(size)
	for i := range c.shards {
		per := base
		if int64(i) < rem {
			per++
		}
		c.shards[i].p = build(per, i)
		if c.shards[i].p == nil {
			return nil, fmt.Errorf("shard: builder returned nil for shard %d", i)
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Name implements cache.Policy.
func (c *Cache) Name() string { return c.name }

// EnableStats attaches (and returns) a per-shard stats block. Every
// subsequent Access records its outcome, the shard's occupancy and
// eviction count, and the access latency. Must be called before the cache
// is shared between goroutines; it is not synchronised with Access.
func (c *Cache) EnableStats() *stats.Stats {
	c.st = stats.New(len(c.shards))
	c.evc = make([]cache.EvictionCounter, len(c.shards))
	for i := range c.shards {
		c.evc[i], _ = c.shards[i].p.(cache.EvictionCounter)
	}
	return c.st
}

// Stats returns the attached stats block, or nil.
func (c *Cache) Stats() *stats.Stats { return c.st }

// ShardIndex returns the shard the key is routed to. Load drivers use it
// to partition a trace by shard so per-shard request order (and therefore
// every per-shard policy decision) is independent of the worker count.
func (c *Cache) ShardIndex(key uint64) int {
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 40) & c.mask)
}

// Access implements cache.Policy; safe for concurrent use.
func (c *Cache) Access(req cache.Request) bool {
	idx := c.ShardIndex(req.Key)
	s := &c.shards[idx]
	if c.st == nil {
		s.mu.Lock()
		hit := s.p.Access(req)
		s.mu.Unlock()
		return hit
	}
	start := time.Now()
	s.mu.Lock()
	hit := s.p.Access(req)
	used := s.p.Used()
	var ev int64
	if ec := c.evc[idx]; ec != nil {
		ev = ec.Evictions()
	}
	s.mu.Unlock()
	c.st.ObserveAccess(idx, req.Size, hit, used, ev, time.Since(start))
	return hit
}

// Remove invalidates key on its shard. It reports whether the key was
// resident and whether the shard policy supports removal at all
// (cache.Remover); policies without removal support — LRB's sampled
// eviction has no per-key index delete — return supported == false and
// leave the cache untouched. Safe for concurrent use.
func (c *Cache) Remove(key uint64) (removed, supported bool) {
	idx := c.ShardIndex(key)
	s := &c.shards[idx]
	s.mu.Lock()
	r, supported := s.p.(cache.Remover)
	if supported {
		removed = r.Remove(key)
	}
	used := s.p.Used()
	s.mu.Unlock()
	if removed && c.st != nil {
		c.st.Shard(idx).UsedBytes.Store(used)
	}
	return removed, supported
}

// Used implements cache.Policy (a racy-but-consistent-enough aggregate;
// each shard is read under its own lock).
func (c *Cache) Used() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.p.Used()
		s.mu.Unlock()
	}
	return total
}

// Capacity implements cache.Policy.
func (c *Cache) Capacity() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.p.Capacity()
		s.mu.Unlock()
	}
	return total
}

// Evictions implements cache.EvictionCounter: the sum over shards that
// expose a counter (each read under its own lock).
func (c *Cache) Evictions() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if ec, ok := s.p.(cache.EvictionCounter); ok {
			total += ec.Evictions()
		}
		s.mu.Unlock()
	}
	return total
}

// Reset resets every shard whose policy supports it, and the attached
// stats block if any.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if r, ok := s.p.(cache.Resetter); ok {
			r.Reset()
		}
		s.mu.Unlock()
	}
	if c.st != nil {
		c.st.Reset()
	}
}

var (
	_ cache.Policy          = (*Cache)(nil)
	_ cache.EvictionCounter = (*Cache)(nil)
)
