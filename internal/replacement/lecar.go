package replacement

import (
	"container/heap"
	"math"
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/mab"
)

// lecarEntry lives simultaneously in the recency queue and the frequency
// heap.
type lecarEntry struct {
	key     uint64
	size    int64
	freq    int
	lastAcc int64
	heapIdx int
	qnode   cache.Handle
}

type lfuHeap []*lecarEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].lastAcc < h[j].lastAcc
}
func (h lfuHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *lfuHeap) Push(x any)   { e := x.(*lecarEntry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *lfuHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// LeCaR (Vietri et al., HotStorage'18) drives eviction with two experts —
// LRU and LFU — whose weights are updated by regret: when a missing
// object is found in an expert's ghost list, that expert's past eviction
// was a mistake and its weight decays multiplicatively. CACHEUS
// (Rodriguez et al., FAST'21) builds on the same frame with an adaptive
// learning rate; NewCACHEUS configures that variant (the adaptive rate is
// the Algorithm-2-style controller shared with SCIP).
type LeCaR struct {
	// Lambda is the fixed learning rate (LeCaR default 0.45).
	Lambda float64

	name     string
	cap      int64
	seq      int64
	arena    cache.Arena
	q        cache.Queue
	h        lfuHeap
	index    map[uint64]*lecarEntry
	bytes    int64
	wLRU     float64
	ghostLRU *cache.History
	ghostLFU *cache.History
	rng      *rand.Rand

	// adaptive enables the CACHEUS-style learning-rate controller.
	adaptive bool
	rate     *mab.AdaptiveRate
	hits     int
	reqs     int
	interval int
}

var _ cache.Policy = (*LeCaR)(nil)

// NewLeCaR returns a LeCaR cache.
func NewLeCaR(capBytes int64, seed int64) *LeCaR {
	l := &LeCaR{
		Lambda:   0.45,
		name:     "LeCaR",
		cap:      capBytes,
		index:    make(map[uint64]*lecarEntry),
		wLRU:     0.5,
		ghostLRU: cache.NewHistory(capBytes / 2),
		ghostLFU: cache.NewHistory(capBytes / 2),
		rng:      rand.New(rand.NewSource(seed + 809)),
		interval: 1 << 14,
	}
	l.q = l.arena.NewQueue()
	return l
}

// NewCACHEUS returns the CACHEUS variant: LeCaR's expert frame with an
// adaptive learning rate driven by the interval hit rate.
func NewCACHEUS(capBytes int64, seed int64) *LeCaR {
	c := NewLeCaR(capBytes, seed)
	c.name = "CACHEUS"
	c.adaptive = true
	c.rate = mab.NewAdaptiveRate(c.rng.Float64)
	return c
}

// Name implements cache.Policy.
func (l *LeCaR) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LeCaR) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LeCaR) Used() int64 { return l.bytes }

// WeightLRU exposes the LRU expert's weight for tests.
func (l *LeCaR) WeightLRU() float64 { return l.wLRU }

func (l *LeCaR) lambda() float64 {
	if l.adaptive {
		return l.rate.Lambda
	}
	return l.Lambda
}

// Access implements cache.Policy.
func (l *LeCaR) Access(req cache.Request) bool {
	l.seq++
	l.reqs++
	if l.adaptive && l.reqs%l.interval == 0 {
		l.rate.Update(float64(l.hits) / float64(l.interval))
		l.hits = 0
	}
	if e, ok := l.index[req.Key]; ok {
		l.hits++
		e.freq++
		e.lastAcc = l.seq
		heap.Fix(&l.h, e.heapIdx)
		l.q.MoveToFront(e.qnode)
		return true
	}
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	// Regret updates from the ghost lists.
	if _, ok := l.ghostLRU.Delete(req.Key); ok {
		l.decayLRU() // the LRU expert evicted something still needed
	} else if _, ok := l.ghostLFU.Delete(req.Key); ok {
		l.decayLFU()
	}
	for l.bytes+req.Size > l.cap {
		l.evictOne()
	}
	qh := l.arena.Alloc()
	qe := l.arena.At(qh)
	qe.Key = req.Key
	qe.Size = req.Size
	e := &lecarEntry{key: req.Key, size: req.Size, freq: 1, lastAcc: l.seq, qnode: qh}
	l.q.PushFront(qh)
	heap.Push(&l.h, e)
	l.index[req.Key] = e
	l.bytes += req.Size
	return false
}

func (l *LeCaR) decayLRU() {
	w := l.wLRU * math.Exp(-l.lambda())
	l.wLRU = w / (w + (1 - l.wLRU))
}

func (l *LeCaR) decayLFU() {
	f := (1 - l.wLRU) * math.Exp(-l.lambda())
	l.wLRU = l.wLRU / (l.wLRU + f)
}

func (l *LeCaR) evictOne() {
	var victim *lecarEntry
	useLRU := l.rng.Float64() < l.wLRU
	if useLRU {
		victim = l.index[l.arena.At(l.q.Back()).Key]
	} else {
		victim = l.h[0]
	}
	l.q.Remove(victim.qnode)
	l.arena.Free(victim.qnode)
	heap.Remove(&l.h, victim.heapIdx)
	delete(l.index, victim.key)
	l.bytes -= victim.size
	if useLRU {
		l.ghostLRU.Add(victim.key, victim.size, cache.ResInserted)
	} else {
		l.ghostLFU.Add(victim.key, victim.size, cache.ResInserted)
	}
}
