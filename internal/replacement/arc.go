package replacement

import "github.com/scip-cache/scip/internal/cache"

// ARC is the adaptive replacement cache (Megiddo & Modha) generalised to
// byte capacities: T1 holds objects seen once recently, T2 objects seen
// at least twice; ghost lists B1/B2 remember recent evictions from each
// and steer the adaptation target p (in bytes) toward whichever ghost is
// producing hits.
type ARC struct {
	name   string
	cap    int64
	p      int64
	arena  cache.Arena
	t1, t2 cache.Queue
	b1, b2 *cache.History
	index  cache.Index
}

var _ cache.Policy = (*ARC)(nil)

// Entry.Class values for ARC lists.
const (
	arcT1 = 1
	arcT2 = 2
)

// NewARC returns an ARC cache.
func NewARC(capBytes int64) *ARC {
	a := &ARC{
		name: "ARC",
		cap:  capBytes,
		b1:   cache.NewHistory(capBytes),
		b2:   cache.NewHistory(capBytes),
	}
	a.t1 = a.arena.NewQueue()
	a.t2 = a.arena.NewQueue()
	return a
}

// Name implements cache.Policy.
func (a *ARC) Name() string { return a.name }

// Capacity implements cache.Policy.
func (a *ARC) Capacity() int64 { return a.cap }

// Used implements cache.Policy.
func (a *ARC) Used() int64 { return a.t1.Bytes() + a.t2.Bytes() }

// P exposes the adaptation target for tests.
func (a *ARC) P() int64 { return a.p }

// Access implements cache.Policy.
func (a *ARC) Access(req cache.Request) bool {
	if h := a.index.Get(req.Key); h != cache.None {
		// Case I: hit in T1 or T2 — move to MRU of T2.
		e := a.arena.At(h)
		e.Hits++
		e.LastAccess = req.Time
		if e.Class == arcT1 {
			a.t1.Remove(h)
			e.Class = arcT2
			a.t2.PushFront(h)
		} else {
			a.t2.MoveToFront(h)
		}
		return true
	}
	if req.Size > a.cap || req.Size <= 0 {
		return false
	}
	switch {
	case a.b1.Contains(req.Key):
		// Case II: ghost hit in B1 — favour recency.
		a.p = min64(a.p+max64(req.Size, a.b2.Bytes()/max64(a.b1.Bytes(), 1)*req.Size), a.cap)
		a.b1.Delete(req.Key)
		a.replace(false)
		a.insert(req, arcT2)
	case a.b2.Contains(req.Key):
		// Case III: ghost hit in B2 — favour frequency.
		a.p = max64(a.p-max64(req.Size, a.b1.Bytes()/max64(a.b2.Bytes(), 1)*req.Size), 0)
		a.b2.Delete(req.Key)
		a.replace(true)
		a.insert(req, arcT2)
	default:
		// Case IV: cold miss.
		a.replace(false)
		a.insert(req, arcT1)
	}
	return false
}

// insert places the object and enforces capacity.
func (a *ARC) insert(req cache.Request, class int) {
	for a.Used()+req.Size > a.cap {
		a.replaceOnce(false)
	}
	h := a.arena.Alloc()
	e := a.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	e.Class = int32(class)
	a.index.Put(req.Key, h)
	if class == arcT1 {
		a.t1.PushFront(h)
	} else {
		a.t2.PushFront(h)
	}
}

// replace evicts until the directories respect their budgets.
func (a *ARC) replace(inB2 bool) {
	for a.Used() > a.cap {
		a.replaceOnce(inB2)
	}
}

// replaceOnce performs one REPLACE step of the ARC algorithm.
func (a *ARC) replaceOnce(inB2 bool) {
	if a.t1.Len() > 0 && (a.t1.Bytes() > a.p || (inB2 && a.t1.Bytes() >= a.p)) {
		a.evictFrom(&a.t1, a.b1)
		return
	}
	if a.t2.Len() == 0 {
		if a.t1.Len() == 0 {
			panic("replacement: ARC replace on empty cache")
		}
		a.evictFrom(&a.t1, a.b1)
		return
	}
	a.evictFrom(&a.t2, a.b2)
}

// evictFrom drops the LRU entry of q into the ghost list b.
func (a *ARC) evictFrom(q *cache.Queue, b *cache.History) {
	h := q.Back()
	victim := a.arena.At(h)
	key, size := victim.Key, victim.Size
	q.Remove(h)
	a.index.Delete(key)
	a.arena.Free(h)
	b.Add(key, size, cache.ResInserted)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
