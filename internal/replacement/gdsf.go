package replacement

import (
	"container/heap"

	"github.com/scip-cache/scip/internal/cache"
)

// gdsfEntry is a heap item with priority H = L + freq × cost / size.
type gdsfEntry struct {
	key      uint64
	size     int64
	freq     float64
	priority float64
	heapIdx  int
}

type gdsfHeap []*gdsfEntry

func (h gdsfHeap) Len() int           { return len(h) }
func (h gdsfHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h gdsfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *gdsfHeap) Push(x any)        { e := x.(*gdsfEntry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *gdsfHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// GDSF is GreedyDual-Size-Frequency (Cherkasova & Ciardo): each object
// carries priority H = L + frequency × cost / size with cost 1 (hit-ratio
// objective); the lowest-priority object is evicted and its H becomes the
// global inflation value L, which ages the rest of the cache without
// touching every entry.
type GDSF struct {
	name  string
	cap   int64
	used  int64
	l     float64
	h     gdsfHeap
	index map[uint64]*gdsfEntry
}

var _ cache.Policy = (*GDSF)(nil)

// NewGDSF returns a GDSF cache.
func NewGDSF(capBytes int64) *GDSF {
	return &GDSF{name: "GDSF", cap: capBytes, index: make(map[uint64]*gdsfEntry)}
}

// Name implements cache.Policy.
func (g *GDSF) Name() string { return g.name }

// Capacity implements cache.Policy.
func (g *GDSF) Capacity() int64 { return g.cap }

// Used implements cache.Policy.
func (g *GDSF) Used() int64 { return g.used }

// Inflation exposes L for tests.
func (g *GDSF) Inflation() float64 { return g.l }

// Access implements cache.Policy.
func (g *GDSF) Access(req cache.Request) bool {
	if e, ok := g.index[req.Key]; ok {
		e.freq++
		e.priority = g.l + e.freq/float64(e.size)
		heap.Fix(&g.h, e.heapIdx)
		return true
	}
	if req.Size > g.cap || req.Size <= 0 {
		return false
	}
	for g.used+req.Size > g.cap {
		victim := heap.Pop(&g.h).(*gdsfEntry)
		delete(g.index, victim.key)
		g.used -= victim.size
		g.l = victim.priority
	}
	e := &gdsfEntry{key: req.Key, size: req.Size, freq: 1}
	e.priority = g.l + e.freq/float64(e.size)
	heap.Push(&g.h, e)
	g.index[req.Key] = e
	g.used += req.Size
	return false
}
