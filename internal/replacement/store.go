package replacement

import (
	"math/rand"
)

// Sized is implemented by every store item.
type Sized interface {
	ItemKey() uint64
	ItemSize() int64
}

// Store is a keyed set of cache items with O(1) insert/lookup/remove and
// O(k) uniform sampling, the substrate for sampling-based eviction
// (LRU-K, LHD, LRB all evict the worst of a small random sample, the
// standard technique for priority-based policies over millions of
// objects).
type Store[T Sized] struct {
	items []T
	index map[uint64]int
	bytes int64
	rng   *rand.Rand
}

// NewStore returns an empty store with a deterministic sampler.
func NewStore[T Sized](seed int64) *Store[T] {
	return &Store[T]{index: make(map[uint64]int), rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of items.
func (s *Store[T]) Len() int { return len(s.items) }

// Bytes returns the summed item sizes.
func (s *Store[T]) Bytes() int64 { return s.bytes }

// Get returns the item for key.
func (s *Store[T]) Get(key uint64) (T, bool) {
	var zero T
	i, ok := s.index[key]
	if !ok {
		return zero, false
	}
	return s.items[i], true
}

// Add inserts an item; the key must not be present.
func (s *Store[T]) Add(item T) {
	key := item.ItemKey()
	if _, ok := s.index[key]; ok {
		panic("replacement: Add of existing key")
	}
	s.index[key] = len(s.items)
	s.items = append(s.items, item)
	s.bytes += item.ItemSize()
}

// Remove deletes the item for key, returning it.
func (s *Store[T]) Remove(key uint64) (T, bool) {
	var zero T
	i, ok := s.index[key]
	if !ok {
		return zero, false
	}
	item := s.items[i]
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.index[s.items[i].ItemKey()] = i
	s.items = s.items[:last]
	delete(s.index, key)
	s.bytes -= item.ItemSize()
	return item, true
}

// Sample appends up to n uniformly drawn items (with replacement) to dst
// and returns it. Returns nil when empty.
func (s *Store[T]) Sample(n int, dst []T) []T {
	if len(s.items) == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.items[s.rng.Intn(len(s.items))])
	}
	return dst
}

// Each calls f for every item.
func (s *Store[T]) Each(f func(T)) {
	for _, it := range s.items {
		f(it)
	}
}
