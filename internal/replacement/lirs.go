package replacement

import "github.com/scip-cache/scip/internal/cache"

// LIRS implements the Low Inter-reference Recency Set policy (Jiang &
// Zhang, cited by the paper's related work) adapted to byte budgets. The
// cache is split into a large LIR region (low inter-reference recency:
// proven re-users) and a small HIR region; the S stack tracks recency of
// LIR blocks, resident HIR blocks and a bounded set of non-resident HIR
// ghosts, while the Q list orders resident HIR blocks for eviction. A
// resident HIR block that is re-referenced while still on S has
// demonstrated a low IRR and is promoted to LIR, demoting the LIR block
// at the stack bottom.
type LIRS struct {
	// LIRFrac is the LIR region's share of capacity (default 0.9).
	LIRFrac float64

	name  string
	cap   int64
	arena cache.Arena
	s     cache.Queue // recency stack: LIR + resident HIR + ghosts
	q     cache.Queue // resident HIR eviction order
	sIdx  cache.Index
	qIdx  cache.Index
	state map[uint64]int // lirsLIR / lirsHIR for resident objects
	sizes map[uint64]int64
	lir   int64 // LIR resident bytes
	hir   int64 // HIR resident bytes
}

// Object states.
const (
	lirsLIR = 1
	lirsHIR = 2
)

// Entry.Class marks ghost stack entries.
const lirsGhost = 9

var _ cache.Policy = (*LIRS)(nil)

// NewLIRS returns a LIRS cache.
func NewLIRS(capBytes int64) *LIRS {
	l := &LIRS{
		LIRFrac: 0.9,
		name:    "LIRS",
		cap:     capBytes,
		state:   make(map[uint64]int),
		sizes:   make(map[uint64]int64),
	}
	l.s = l.arena.NewQueue()
	l.q = l.arena.NewQueue()
	return l
}

// Name implements cache.Policy.
func (l *LIRS) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LIRS) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LIRS) Used() int64 { return l.lir + l.hir }

func (l *LIRS) lirCap() int64 { return int64(l.LIRFrac * float64(l.cap)) }

// Access implements cache.Policy.
func (l *LIRS) Access(req cache.Request) bool {
	st := l.state[req.Key]
	switch st {
	case lirsLIR:
		l.touchS(req)
		l.pruneS()
		return true
	case lirsHIR:
		if l.sIdx.Get(req.Key) != cache.None {
			// Low IRR demonstrated: promote HIR -> LIR.
			l.promoteToLIR(req)
		} else {
			// Re-referenced but off the stack: stay HIR, refresh Q and S.
			l.touchQ(req)
			l.touchS(req)
		}
		return true
	}
	// Miss.
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	wasGhost := false
	if h := l.sIdx.Get(req.Key); h != cache.None && l.arena.At(h).Class == lirsGhost {
		wasGhost = true
	}
	l.makeRoom(req.Size)
	if wasGhost || l.lir+req.Size <= l.lirCap() {
		// Ghost hit (low IRR) or cold start with LIR headroom: insert
		// as LIR.
		l.state[req.Key] = lirsLIR
		l.lir += req.Size
		l.sizes[req.Key] = req.Size
		l.touchS(req)
		for l.lir > l.lirCap() {
			l.demoteLIRBottom()
		}
	} else {
		// Normal miss: resident HIR.
		l.state[req.Key] = lirsHIR
		l.hir += req.Size
		l.sizes[req.Key] = req.Size
		l.touchS(req)
		l.touchQ(req)
	}
	l.pruneS()
	return false
}

// touchS moves/pushes the key to the stack top as a resident entry.
func (l *LIRS) touchS(req cache.Request) {
	if h := l.sIdx.Get(req.Key); h != cache.None {
		l.s.Remove(h)
		l.arena.Free(h)
	}
	h := l.arena.Alloc()
	e := l.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	l.s.PushFront(h)
	l.sIdx.Put(req.Key, h)
}

// touchQ moves/pushes the key to the front of the HIR queue.
func (l *LIRS) touchQ(req cache.Request) {
	if h := l.qIdx.Get(req.Key); h != cache.None {
		l.q.Remove(h)
		l.arena.Free(h)
	}
	h := l.arena.Alloc()
	e := l.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	l.q.PushFront(h)
	l.qIdx.Put(req.Key, h)
}

// promoteToLIR turns a resident HIR block into LIR and rebalances.
func (l *LIRS) promoteToLIR(req cache.Request) {
	size := l.sizes[req.Key]
	l.state[req.Key] = lirsLIR
	l.hir -= size
	l.lir += size
	if h, ok := l.qIdx.Delete(req.Key); ok {
		l.q.Remove(h)
		l.arena.Free(h)
	}
	l.touchS(req)
	for l.lir > l.lirCap() {
		l.demoteLIRBottom()
	}
	l.pruneS()
}

// demoteLIRBottom turns the LIR block at the stack bottom into resident
// HIR (front of Q).
func (l *LIRS) demoteLIRBottom() {
	for h := l.s.Back(); h != cache.None; h = l.s.Back() {
		e := l.arena.At(h)
		key := e.Key
		if l.state[key] == lirsLIR && e.Class != lirsGhost {
			size := l.sizes[key]
			l.state[key] = lirsHIR
			l.lir -= size
			l.hir += size
			l.s.Remove(h)
			l.sIdx.Delete(key)
			l.arena.Free(h)
			l.touchQ(cache.Request{Key: key, Size: size})
			return
		}
		// Non-LIR bottom entries are pruned.
		l.s.Remove(h)
		l.sIdx.Delete(key)
		l.arena.Free(h)
	}
}

// makeRoom evicts resident HIR blocks (back of Q) until size fits; their
// stack entries become ghosts.
func (l *LIRS) makeRoom(size int64) {
	for l.Used()+size > l.cap {
		victim := l.q.Back()
		if victim == cache.None {
			// No HIR residents: demote a LIR block first.
			l.demoteLIRBottom()
			if l.q.Back() == cache.None {
				return
			}
			continue
		}
		key := l.arena.At(victim).Key
		l.q.Remove(victim)
		l.qIdx.Delete(key)
		l.arena.Free(victim)
		vsize := l.sizes[key]
		l.hir -= vsize
		delete(l.state, key)
		delete(l.sizes, key)
		// The stack entry, if any, becomes a non-resident ghost.
		if sh := l.sIdx.Get(key); sh != cache.None {
			l.arena.At(sh).Class = lirsGhost
		}
	}
}

// pruneS removes non-LIR entries from the stack bottom (stack pruning)
// and bounds the ghost population to roughly the cache's object count.
func (l *LIRS) pruneS() {
	for h := l.s.Back(); h != cache.None; h = l.s.Back() {
		e := l.arena.At(h)
		if l.state[e.Key] == lirsLIR && e.Class != lirsGhost {
			break
		}
		l.s.Remove(h)
		l.sIdx.Delete(e.Key)
		l.arena.Free(h)
	}
	// Bound total stack entries (ghost cap): 4x the resident population.
	limit := 4 * (len(l.state) + 16)
	for l.s.Len() > limit {
		h := l.s.Back()
		key := l.arena.At(h).Key
		l.s.Remove(h)
		l.sIdx.Delete(key)
		l.arena.Free(h)
	}
}
