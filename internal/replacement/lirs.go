package replacement

import "github.com/scip-cache/scip/internal/cache"

// LIRS implements the Low Inter-reference Recency Set policy (Jiang &
// Zhang, cited by the paper's related work) adapted to byte budgets. The
// cache is split into a large LIR region (low inter-reference recency:
// proven re-users) and a small HIR region; the S stack tracks recency of
// LIR blocks, resident HIR blocks and a bounded set of non-resident HIR
// ghosts, while the Q list orders resident HIR blocks for eviction. A
// resident HIR block that is re-referenced while still on S has
// demonstrated a low IRR and is promoted to LIR, demoting the LIR block
// at the stack bottom.
type LIRS struct {
	// LIRFrac is the LIR region's share of capacity (default 0.9).
	LIRFrac float64

	name  string
	cap   int64
	s     cache.Queue // recency stack: LIR + resident HIR + ghosts
	q     cache.Queue // resident HIR eviction order
	sIdx  map[uint64]*cache.Entry
	qIdx  map[uint64]*cache.Entry
	state map[uint64]int // lirsLIR / lirsHIR for resident objects
	sizes map[uint64]int64
	lir   int64 // LIR resident bytes
	hir   int64 // HIR resident bytes
}

// Object states.
const (
	lirsLIR = 1
	lirsHIR = 2
)

// Entry.Class marks ghost stack entries.
const lirsGhost = 9

var _ cache.Policy = (*LIRS)(nil)

// NewLIRS returns a LIRS cache.
func NewLIRS(capBytes int64) *LIRS {
	return &LIRS{
		LIRFrac: 0.9,
		name:    "LIRS",
		cap:     capBytes,
		sIdx:    make(map[uint64]*cache.Entry),
		qIdx:    make(map[uint64]*cache.Entry),
		state:   make(map[uint64]int),
		sizes:   make(map[uint64]int64),
	}
}

// Name implements cache.Policy.
func (l *LIRS) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LIRS) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LIRS) Used() int64 { return l.lir + l.hir }

func (l *LIRS) lirCap() int64 { return int64(l.LIRFrac * float64(l.cap)) }

// Access implements cache.Policy.
func (l *LIRS) Access(req cache.Request) bool {
	st := l.state[req.Key]
	switch st {
	case lirsLIR:
		l.touchS(req)
		l.pruneS()
		return true
	case lirsHIR:
		if _, onS := l.sIdx[req.Key]; onS {
			// Low IRR demonstrated: promote HIR -> LIR.
			l.promoteToLIR(req)
		} else {
			// Re-referenced but off the stack: stay HIR, refresh Q and S.
			l.touchQ(req)
			l.touchS(req)
		}
		return true
	}
	// Miss.
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	wasGhost := false
	if e, onS := l.sIdx[req.Key]; onS && e.Class == lirsGhost {
		wasGhost = true
	}
	l.makeRoom(req.Size)
	if wasGhost || l.lir+req.Size <= l.lirCap() {
		// Ghost hit (low IRR) or cold start with LIR headroom: insert
		// as LIR.
		l.state[req.Key] = lirsLIR
		l.lir += req.Size
		l.sizes[req.Key] = req.Size
		l.touchS(req)
		for l.lir > l.lirCap() {
			l.demoteLIRBottom()
		}
	} else {
		// Normal miss: resident HIR.
		l.state[req.Key] = lirsHIR
		l.hir += req.Size
		l.sizes[req.Key] = req.Size
		l.touchS(req)
		l.touchQ(req)
	}
	l.pruneS()
	return false
}

// touchS moves/pushes the key to the stack top as a resident entry.
func (l *LIRS) touchS(req cache.Request) {
	if e, ok := l.sIdx[req.Key]; ok {
		l.s.Remove(e)
	}
	e := &cache.Entry{Key: req.Key, Size: req.Size, Class: 0}
	l.s.PushFront(e)
	l.sIdx[req.Key] = e
}

// touchQ moves/pushes the key to the front of the HIR queue.
func (l *LIRS) touchQ(req cache.Request) {
	if e, ok := l.qIdx[req.Key]; ok {
		l.q.Remove(e)
	}
	e := &cache.Entry{Key: req.Key, Size: req.Size}
	l.q.PushFront(e)
	l.qIdx[req.Key] = e
}

// promoteToLIR turns a resident HIR block into LIR and rebalances.
func (l *LIRS) promoteToLIR(req cache.Request) {
	size := l.sizes[req.Key]
	l.state[req.Key] = lirsLIR
	l.hir -= size
	l.lir += size
	if e, ok := l.qIdx[req.Key]; ok {
		l.q.Remove(e)
		delete(l.qIdx, req.Key)
	}
	l.touchS(req)
	for l.lir > l.lirCap() {
		l.demoteLIRBottom()
	}
	l.pruneS()
}

// demoteLIRBottom turns the LIR block at the stack bottom into resident
// HIR (front of Q).
func (l *LIRS) demoteLIRBottom() {
	for e := l.s.Back(); e != nil; e = l.s.Back() {
		if l.state[e.Key] == lirsLIR && e.Class != lirsGhost {
			size := l.sizes[e.Key]
			l.state[e.Key] = lirsHIR
			l.lir -= size
			l.hir += size
			l.s.Remove(e)
			delete(l.sIdx, e.Key)
			l.touchQ(cache.Request{Key: e.Key, Size: size})
			return
		}
		// Non-LIR bottom entries are pruned.
		l.s.Remove(e)
		if e.Class != lirsGhost && l.state[e.Key] == 0 {
			delete(l.sIdx, e.Key)
			continue
		}
		delete(l.sIdx, e.Key)
	}
}

// makeRoom evicts resident HIR blocks (back of Q) until size fits; their
// stack entries become ghosts.
func (l *LIRS) makeRoom(size int64) {
	for l.Used()+size > l.cap {
		victim := l.q.Back()
		if victim == nil {
			// No HIR residents: demote a LIR block first.
			l.demoteLIRBottom()
			if l.q.Back() == nil {
				return
			}
			continue
		}
		l.q.Remove(victim)
		delete(l.qIdx, victim.Key)
		vsize := l.sizes[victim.Key]
		l.hir -= vsize
		delete(l.state, victim.Key)
		delete(l.sizes, victim.Key)
		// The stack entry, if any, becomes a non-resident ghost.
		if se, ok := l.sIdx[victim.Key]; ok {
			se.Class = lirsGhost
		}
	}
}

// pruneS removes non-LIR entries from the stack bottom (stack pruning)
// and bounds the ghost population to roughly the cache's object count.
func (l *LIRS) pruneS() {
	for e := l.s.Back(); e != nil; e = l.s.Back() {
		if l.state[e.Key] == lirsLIR && e.Class != lirsGhost {
			break
		}
		l.s.Remove(e)
		delete(l.sIdx, e.Key)
	}
	// Bound total stack entries (ghost cap): 4x the resident population.
	limit := 4 * (len(l.state) + 16)
	for l.s.Len() > limit {
		e := l.s.Back()
		l.s.Remove(e)
		delete(l.sIdx, e.Key)
	}
}
