package replacement

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/trace"
)

func req(t int64, key uint64, size int64) cache.Request {
	return cache.Request{Time: t, Key: key, Size: size}
}

func testTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.Config{
		Name: "r", Seed: seed,
		Requests:    60_000,
		CatalogSize: 1200,
		ZipfAlpha:   0.85,
		OneHitFrac:  0.3,
		EchoProb:    0.2, EchoDelay: 80, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func builders(capBytes int64) map[string]func() cache.Policy {
	return map[string]func() cache.Policy{
		"LRU-K":    func() cache.Policy { return NewLRUK(capBytes, 1) },
		"S4LRU":    func() cache.Policy { return NewS4LRU(capBytes) },
		"SS-LRU":   func() cache.Policy { return NewSSLRU(capBytes) },
		"GDSF":     func() cache.Policy { return NewGDSF(capBytes) },
		"LHD":      func() cache.Policy { return NewLHD(capBytes, 1) },
		"ARC":      func() cache.Policy { return NewARC(capBytes) },
		"LeCaR":    func() cache.Policy { return NewLeCaR(capBytes, 1) },
		"CACHEUS":  func() cache.Policy { return NewCACHEUS(capBytes, 1) },
		"GL-Cache": func() cache.Policy { return NewGLCache(capBytes) },
	}
}

func TestAllReplacementPolicies(t *testing.T) {
	capBytes := int64(300_000)
	tr := testTrace(t, 9)
	for name, build := range builders(capBytes) {
		p := build()
		hits := 0
		for i, r := range tr.Requests {
			if p.Access(r) {
				hits++
			}
			if p.Used() > p.Capacity() {
				t.Fatalf("%s: capacity exceeded at %d (%d > %d)", name, i, p.Used(), p.Capacity())
			}
		}
		ratio := float64(hits) / float64(len(tr.Requests))
		if ratio < 0.05 {
			t.Errorf("%s: hit ratio %.3f suspiciously low", name, ratio)
		}
		// Immediate re-access must hit.
		p2 := build()
		p2.Access(req(0, 42, 500))
		if !p2.Access(req(1, 42, 500)) {
			t.Errorf("%s: immediate re-access missed", name)
		}
		// Oversized objects bypass.
		p3 := build()
		if p3.Access(req(0, 7, capBytes+1)) {
			t.Errorf("%s: oversized access hit", name)
		}
		if p3.Used() != 0 {
			t.Errorf("%s: oversized object admitted", name)
		}
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore[*lrukEntry](1)
	a := &lrukEntry{key: 1, size: 10}
	b := &lrukEntry{key: 2, size: 20}
	s.Add(a)
	s.Add(b)
	if s.Len() != 2 || s.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	if got, ok := s.Get(1); !ok || got != a {
		t.Fatal("Get(1) failed")
	}
	if _, ok := s.Remove(1); !ok {
		t.Fatal("Remove(1) failed")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("removed key still present")
	}
	if s.Bytes() != 20 {
		t.Fatalf("Bytes=%d after removal", s.Bytes())
	}
	sample := s.Sample(5, nil)
	if len(sample) != 5 {
		t.Fatalf("Sample returned %d items", len(sample))
	}
	for _, it := range sample {
		if it != b {
			t.Fatal("sample returned foreign item")
		}
	}
	count := 0
	s.Each(func(*lrukEntry) { count++ })
	if count != 1 {
		t.Fatalf("Each visited %d", count)
	}
}

func TestStorePanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	s := NewStore[*lrukEntry](1)
	s.Add(&lrukEntry{key: 1, size: 1})
	s.Add(&lrukEntry{key: 1, size: 1})
}

func TestLRUKPrefersShortHistoryVictims(t *testing.T) {
	l := NewLRUK(1000, 2)
	l.SampleSize = 100 // exhaustive sampling for determinism
	// Object 1 accessed twice (full history); objects 2..10 once.
	l.Access(req(0, 1, 100))
	l.Access(req(1, 1, 100))
	for k := uint64(2); k <= 10; k++ {
		l.Access(req(int64(k), k, 100))
	}
	// Cache full (10x100); next insert must evict a single-access object,
	// not object 1.
	l.Access(req(20, 99, 100))
	if _, ok := l.store.Get(1); !ok {
		t.Fatal("LRU-K evicted the only object with full history")
	}
}

func TestLRUKSCIPIntegrationDemotes(t *testing.T) {
	ins := forcedLRUIns{}
	l := NewLRUKWithInsertion(1000, 3, ins)
	if l.Name() != "LRU-K-forced" {
		t.Fatalf("name = %q", l.Name())
	}
	l.Access(req(0, 1, 100))
	e, _ := l.store.Get(1)
	if !e.demoted {
		t.Fatal("LRU-inserted object not demoted")
	}
	if l.kDistance(e) != -1 {
		t.Fatal("demoted entry should rank infinitely old")
	}
}

// forcedLRUIns always chooses the LRU position.
type forcedLRUIns struct{}

func (forcedLRUIns) Name() string                               { return "forced" }
func (forcedLRUIns) ChooseInsert(cache.Request) cache.Position  { return cache.LRU }
func (forcedLRUIns) ChoosePromote(cache.Request) cache.Position { return cache.LRU }
func (forcedLRUIns) OnEvict(cache.EvictInfo)                    {}
func (forcedLRUIns) OnAccess(cache.Request, bool)               {}

func TestS4LRUPromotionSegments(t *testing.T) {
	s := NewS4LRU(4000)
	s.Access(req(0, 1, 100))
	seg := func() int32 { return s.arena.At(s.index.Get(1)).Class }
	if seg() != 0 {
		t.Fatalf("insert segment = %d, want 0", seg())
	}
	s.Access(req(1, 1, 100))
	if seg() != 1 {
		t.Fatalf("after hit segment = %d, want 1", seg())
	}
	for i := 0; i < 5; i++ {
		s.Access(req(int64(2+i), 1, 100))
	}
	if seg() != 3 {
		t.Fatalf("segment should saturate at 3, got %d", seg())
	}
}

func TestSSLRUProtectedPromotion(t *testing.T) {
	s := NewSSLRU(4000)
	s.Access(req(0, 1, 100))
	if s.arena.At(s.index.Get(1)).Class != segProbation {
		t.Fatal("new object should enter probation")
	}
	s.Access(req(1, 1, 100))
	if s.arena.At(s.index.Get(1)).Class != segProtected {
		t.Fatal("reused object should be protected")
	}
}

func TestGDSFFavorsSmallFrequent(t *testing.T) {
	g := NewGDSF(10_000)
	// A small frequent object and large cold objects.
	for i := 0; i < 5; i++ {
		g.Access(req(int64(i), 1, 100))
	}
	for k := uint64(2); k < 10; k++ {
		g.Access(req(int64(10+k), k, 2000))
	}
	// Cache churns; the small frequent object must survive.
	if _, ok := g.index[1]; !ok {
		t.Fatal("GDSF evicted the small frequent object")
	}
	if g.Inflation() == 0 {
		t.Fatal("inflation never advanced despite evictions")
	}
}

func TestARCAdaptsP(t *testing.T) {
	a := NewARC(2000)
	// Fill T1 and force evictions into B1, then re-request: p must grow.
	for k := uint64(1); k <= 40; k++ {
		a.Access(req(int64(k), k, 100))
	}
	p0 := a.P()
	a.Access(req(100, 1, 100)) // ghost hit in B1
	if a.P() <= p0 {
		t.Fatalf("p did not grow on B1 ghost hit: %d -> %d", p0, a.P())
	}
}

func TestLeCaRWeightsAdapt(t *testing.T) {
	l := NewLeCaR(1000, 4)
	w0 := l.WeightLRU()
	// Force a ghost hit in the LRU ghost list.
	l.ghostLRU.Add(42, 100, cache.ResInserted)
	l.Access(req(0, 42, 100))
	if l.WeightLRU() >= w0 {
		t.Fatalf("LRU weight did not decay on its ghost hit: %g -> %g", w0, l.WeightLRU())
	}
	w1 := l.WeightLRU()
	l.ghostLFU.Add(43, 100, cache.ResInserted)
	l.Access(req(1, 43, 100))
	if l.WeightLRU() <= w1 {
		t.Fatalf("LRU weight did not grow on LFU ghost hit: %g -> %g", w1, l.WeightLRU())
	}
}

func TestCACHEUSUsesAdaptiveRate(t *testing.T) {
	c := NewCACHEUS(1000, 4)
	if c.Name() != "CACHEUS" || !c.adaptive || c.rate == nil {
		t.Fatal("CACHEUS variant not configured")
	}
}

func TestGLCacheGroupsSealAndDrain(t *testing.T) {
	g := NewGLCache(10_000)
	g.GroupObjects = 4
	for k := uint64(1); k <= 9; k++ {
		g.Access(req(int64(k), k, 100))
	}
	sealed := 0
	for _, gr := range g.groups {
		if gr.sealed {
			sealed++
		}
	}
	if sealed != 2 {
		t.Fatalf("sealed groups = %d, want 2", sealed)
	}
	// Force evictions: groups must drain without accounting drift.
	for k := uint64(100); k < 250; k++ {
		g.Access(req(int64(k), k, 100))
		if g.Used() > g.Capacity() {
			t.Fatal("GL-Cache capacity exceeded")
		}
	}
}

func TestGLCacheTrainsModel(t *testing.T) {
	g := NewGLCache(500_000)
	g.TrainEvery = 2000
	tr := testTrace(t, 12)
	for _, r := range tr.Requests[:20_000] {
		g.Access(r)
	}
	if g.model == nil {
		t.Fatal("GL-Cache never trained its utility model")
	}
}

func TestS4LRUWithInsertionMultiChain(t *testing.T) {
	ins := forcedLRUIns{}
	s := NewS4LRUWithInsertion(4000, ins)
	if s.Name() != "S4LRU-forced" {
		t.Fatalf("name = %q", s.Name())
	}
	// Forced-LRU insertion lands at the tail of segment 0: the very next
	// eviction pressure removes it before older MRU-side objects.
	s.Access(req(0, 1, 100))
	if e := s.arena.At(s.index.Get(1)); e.InsertedMRU || e.Class != 0 {
		t.Fatalf("forced insert misplaced: %+v", e)
	}
	if s.arena.At(s.segs[0].Back()).Key != 1 {
		t.Fatal("forced insert not at segment-0 tail")
	}
	// Forced-LRU promotion demotes a hit object back to segment-0 tail.
	s.Access(req(1, 1, 100))
	e := s.arena.At(s.index.Get(1))
	if e.Class != 0 || e.Residency != cache.ResFirstHit {
		t.Fatalf("demoted promotion misrouted: %+v", e)
	}
	if s.arena.At(s.segs[0].Back()).Key != 1 {
		t.Fatal("demoted promotion not at segment-0 tail")
	}
}

func TestS4LRUWithInsertionEvictionCallback(t *testing.T) {
	rec := &recordingIns{}
	s := NewS4LRUWithInsertion(1000, rec)
	for k := uint64(1); k <= 30; k++ {
		s.Access(req(int64(k), k, 100))
	}
	if rec.evicts == 0 {
		t.Fatal("insertion policy never observed evictions")
	}
	if s.Used() > s.Capacity() {
		t.Fatal("capacity violated")
	}
}

// recordingIns counts callbacks.
type recordingIns struct{ evicts int }

func (r *recordingIns) Name() string                              { return "rec" }
func (r *recordingIns) ChooseInsert(cache.Request) cache.Position { return cache.MRU }
func (r *recordingIns) ChoosePromote(cache.Request) cache.Position {
	return cache.MRU
}
func (r *recordingIns) OnEvict(cache.EvictInfo)      { r.evicts++ }
func (r *recordingIns) OnAccess(cache.Request, bool) {}

func TestLIRSBasics(t *testing.T) {
	l := NewLIRS(1000)
	if l.Access(req(0, 1, 100)) {
		t.Fatal("cold access hit")
	}
	if !l.Access(req(1, 1, 100)) {
		t.Fatal("re-access missed")
	}
	if l.Access(req(2, 2, 2000)) {
		t.Fatal("oversized hit")
	}
	if l.Used() != 100 {
		t.Fatalf("Used=%d", l.Used())
	}
}

func TestLIRSScanResistance(t *testing.T) {
	// Hot set that fits in the LIR region, then a one-pass scan: the hot
	// set must survive (LIRS's defining property vs LRU).
	capBytes := int64(10_000)
	l := NewLIRS(capBytes)
	lru := cache.NewLRU(capBytes)
	tick := int64(0)
	access := func(k uint64) (bool, bool) {
		tick++
		return l.Access(req(tick, k, 500)), lru.Access(req(tick, k, 500))
	}
	// Warm 16 hot objects (8000 bytes) with two rounds.
	for round := 0; round < 2; round++ {
		for k := uint64(0); k < 16; k++ {
			access(k)
		}
	}
	// One-pass scan of 100 cold objects.
	for k := uint64(1000); k < 1100; k++ {
		access(k)
	}
	lirsHits, lruHits := 0, 0
	for k := uint64(0); k < 16; k++ {
		lh, uh := access(k)
		if lh {
			lirsHits++
		}
		if uh {
			lruHits++
		}
	}
	if lirsHits <= lruHits {
		t.Fatalf("LIRS hot-set hits %d <= LRU %d after scan", lirsHits, lruHits)
	}
	if lirsHits < 12 {
		t.Fatalf("LIRS kept only %d/16 hot objects through the scan", lirsHits)
	}
}

func TestLIRSCapacityInvariant(t *testing.T) {
	tr := testTrace(t, 21)
	l := NewLIRS(250_000)
	hits := 0
	for i, r := range tr.Requests {
		if l.Access(r) {
			hits++
		}
		if l.Used() > l.Capacity() {
			t.Fatalf("capacity exceeded at %d: %d > %d", i, l.Used(), l.Capacity())
		}
	}
	if hits == 0 {
		t.Fatal("no hits")
	}
}

func TestLIRSGhostPromotion(t *testing.T) {
	l := NewLIRS(2000)
	l.LIRFrac = 0.5
	// Fill LIR region.
	for k := uint64(1); k <= 2; k++ {
		l.Access(req(int64(k), k, 500))
	}
	// Object 9 enters as HIR, gets evicted, leaving a ghost.
	l.Access(req(10, 9, 500))
	for k := uint64(20); k < 24; k++ {
		l.Access(req(int64(k+10), k, 500))
	}
	if l.state[9] != 0 {
		t.Fatal("object 9 should have been evicted")
	}
	// Re-reference within ghost lifetime: must come back as LIR.
	l.Access(req(100, 9, 500))
	if l.state[9] != lirsLIR {
		t.Fatalf("ghost re-reference state = %d, want LIR", l.state[9])
	}
}
