package replacement

import (
	"math/bits"

	"github.com/scip-cache/scip/internal/cache"
)

// lhdEntry is a cached object with the age bookkeeping LHD ranks by.
type lhdEntry struct {
	key        uint64
	size       int64
	lastAccess int64 // request sequence number
	hits       int
}

func (e *lhdEntry) ItemKey() uint64 { return e.key }
func (e *lhdEntry) ItemSize() int64 { return e.size }

// LHD implements Least Hit Density (Beckmann et al., NSDI'18), coarsened
// the way the original implementation coarsens: objects are classified
// (here by size class × reused-before bit), per-class histograms of hit
// and eviction ages estimate the probability that an object of a given
// class and age will hit again, and the eviction candidate with the
// lowest hit density — hit probability per byte — is evicted from a
// random sample. Histograms decay periodically so the estimator tracks
// the workload.
type LHD struct {
	// SampleSize is the eviction sample (default 32).
	SampleSize int
	// AgeBuckets is the number of log-scale age buckets (default 24).
	AgeBuckets int
	// DecayEvery is the histogram decay period in requests
	// (default 1<<16).
	DecayEvery int

	name  string
	cap   int64
	seq   int64
	store *Store[*lhdEntry]
	buf   []*lhdEntry

	hitHist   [][]float64 // [class][ageBucket]
	evictHist [][]float64
}

var _ cache.Policy = (*LHD)(nil)

const lhdSizeClasses = 20

// NewLHD returns an LHD cache.
func NewLHD(capBytes int64, seed int64) *LHD {
	classes := lhdSizeClasses * 2
	l := &LHD{
		SampleSize: 32,
		AgeBuckets: 24,
		DecayEvery: 1 << 16,
		name:       "LHD",
		cap:        capBytes,
		store:      NewStore[*lhdEntry](seed + 701),
	}
	l.hitHist = make([][]float64, classes)
	l.evictHist = make([][]float64, classes)
	for i := range l.hitHist {
		l.hitHist[i] = make([]float64, l.AgeBuckets)
		l.evictHist[i] = make([]float64, l.AgeBuckets)
	}
	return l
}

// Name implements cache.Policy.
func (l *LHD) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LHD) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LHD) Used() int64 { return l.store.Bytes() }

func (l *LHD) class(e *lhdEntry) int {
	c := bits.Len64(uint64(e.size))
	if c >= lhdSizeClasses {
		c = lhdSizeClasses - 1
	}
	if e.hits > 0 {
		c += lhdSizeClasses
	}
	return c
}

func (l *LHD) ageBucket(age int64) int {
	b := bits.Len64(uint64(age))
	if b >= l.AgeBuckets {
		b = l.AgeBuckets - 1
	}
	return b
}

// density estimates hits per byte for an entry at its current age: the
// fraction of same-class objects that, having reached this age, were hit
// rather than evicted, divided by the object size.
func (l *LHD) density(e *lhdEntry) float64 {
	cls := l.class(e)
	from := l.ageBucket(l.seq - e.lastAccess)
	var hits, evicts float64
	for b := from; b < l.AgeBuckets; b++ {
		hits += l.hitHist[cls][b]
		evicts += l.evictHist[cls][b]
	}
	if hits+evicts == 0 {
		return 0.5 / float64(e.size) // unknown class/age: neutral prior
	}
	return hits / (hits + evicts) / float64(e.size)
}

// Access implements cache.Policy.
func (l *LHD) Access(req cache.Request) bool {
	l.seq++
	if l.DecayEvery > 0 && l.seq%int64(l.DecayEvery) == 0 {
		l.decay()
	}
	if e, ok := l.store.Get(req.Key); ok {
		l.hitHist[l.class(e)][l.ageBucket(l.seq-e.lastAccess)]++
		e.hits++
		e.lastAccess = l.seq
		return true
	}
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	for l.store.Bytes()+req.Size > l.cap {
		l.evictOne()
	}
	l.store.Add(&lhdEntry{key: req.Key, size: req.Size, lastAccess: l.seq})
	return false
}

func (l *LHD) evictOne() {
	l.buf = l.store.Sample(l.SampleSize, l.buf[:0])
	if len(l.buf) == 0 {
		panic("replacement: evict from empty LHD store")
	}
	victim := l.buf[0]
	best := l.density(victim)
	for _, e := range l.buf[1:] {
		if d := l.density(e); d < best {
			victim, best = e, d
		}
	}
	l.evictHist[l.class(victim)][l.ageBucket(l.seq-victim.lastAccess)]++
	l.store.Remove(victim.key)
}

func (l *LHD) decay() {
	for i := range l.hitHist {
		for b := range l.hitHist[i] {
			l.hitHist[i][b] *= 0.9
			l.evictHist[i][b] *= 0.9
		}
	}
}
