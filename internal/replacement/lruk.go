package replacement

import (
	"github.com/scip-cache/scip/internal/cache"
)

// lrukEntry tracks the last K access times of a cached object.
type lrukEntry struct {
	key   uint64
	size  int64
	times []int64 // ring of the last K access times; times[0] oldest
	// demoted marks the entry as an immediate-eviction candidate; used
	// by the SCIP integration (LRU-K-SCIP), where an "LRU insertion"
	// maps to resetting the object's history to the infinite past.
	demoted bool
	// res tracks how the current residency began, and hits counts the
	// hits it received, for the insertion-policy integration.
	res  cache.Residency
	hits int
}

func (e *lrukEntry) ItemKey() uint64 { return e.key }
func (e *lrukEntry) ItemSize() int64 { return e.size }

// LRUK is the LRU-K replacement policy (O'Neil et al.): the victim is the
// object whose K-th most recent access is oldest (backward K-distance).
// Objects with fewer than K accesses have infinite backward distance and
// are preferred victims. Eviction ranks a random sample, the standard
// adaptation for large object caches.
type LRUK struct {
	// K is the history depth (default 2).
	K int
	// SampleSize is the eviction sample (default 16).
	SampleSize int

	name  string
	cap   int64
	now   int64
	seq   int64
	store *Store[*lrukEntry]
	buf   []*lrukEntry

	// ins, when non-nil, integrates an insertion/promotion policy
	// (LRU-K-SCIP in Figure 12): position choices map to history
	// manipulation, see Access.
	ins cache.InsertionPolicy
}

var _ cache.Policy = (*LRUK)(nil)

// NewLRUK returns an LRU-K cache (K = 2).
func NewLRUK(capBytes int64, seed int64) *LRUK {
	return &LRUK{
		K:          2,
		SampleSize: 16,
		name:       "LRU-K",
		cap:        capBytes,
		store:      NewStore[*lrukEntry](seed + 601),
	}
}

// NewLRUKWithInsertion returns LRU-K enhanced by an insertion/promotion
// policy (the paper's LRU-K-SCIP / LRU-K-ASC-IP): a cache.LRU decision
// demotes the object (its access history is treated as infinitely old, so
// it is the next sampled victim), a cache.MRU decision keeps the normal
// LRU-K bookkeeping.
func NewLRUKWithInsertion(capBytes int64, seed int64, ins cache.InsertionPolicy) *LRUK {
	k := NewLRUK(capBytes, seed)
	k.ins = ins
	k.name = "LRU-K-" + ins.Name()
	return k
}

// Name implements cache.Policy.
func (l *LRUK) Name() string { return l.name }

// Capacity implements cache.Policy.
func (l *LRUK) Capacity() int64 { return l.cap }

// Used implements cache.Policy.
func (l *LRUK) Used() int64 { return l.store.Bytes() }

// kDistance returns the entry's K-th most recent access sequence number;
// entries with short history or a demotion mark rank as -1 (infinitely
// old).
func (l *LRUK) kDistance(e *lrukEntry) int64 {
	if e.demoted || len(e.times) < l.K {
		return -1
	}
	return e.times[0]
}

// Access implements cache.Policy.
func (l *LRUK) Access(req cache.Request) bool {
	l.seq++
	l.now = l.seq
	e, hit := l.store.Get(req.Key)
	if l.ins != nil {
		l.ins.OnAccess(req, hit)
	}
	if hit {
		e.times = append(e.times, l.now)
		if len(e.times) > l.K {
			e.times = e.times[1:]
		}
		e.hits++
		if obs, ok := l.ins.(cache.ResidencyObserver); ok && l.ins != nil {
			obs.OnResidentHit(req, !e.demoted, e.res, e.hits)
		}
		e.demoted = false
		if l.ins != nil && l.ins.ChoosePromote(req) == cache.LRU {
			e.demoted = true
		}
		// Each hit starts a new residency, mirroring QueueCache.
		if e.res == cache.ResInserted {
			e.res = cache.ResFirstHit
		} else {
			e.res = cache.ResRepeat
		}
		e.hits = 0
		return true
	}
	if req.Size > l.cap || req.Size <= 0 {
		return false
	}
	for l.store.Bytes()+req.Size > l.cap {
		l.evictOne()
	}
	ne := &lrukEntry{key: req.Key, size: req.Size, times: []int64{l.now}, res: cache.ResInserted}
	if l.ins != nil && l.ins.ChooseInsert(req) == cache.LRU {
		ne.demoted = true
	}
	l.store.Add(ne)
	return false
}

func (l *LRUK) evictOne() {
	l.buf = l.store.Sample(l.SampleSize, l.buf[:0])
	if len(l.buf) == 0 {
		panic("replacement: evict from empty LRU-K store")
	}
	victim := l.buf[0]
	best := l.kDistance(victim)
	for _, e := range l.buf[1:] {
		if d := l.kDistance(e); d < best {
			victim, best = e, d
		}
	}
	l.store.Remove(victim.key)
	if l.ins != nil {
		l.ins.OnEvict(cache.EvictInfo{
			Key:         victim.key,
			Size:        victim.size,
			InsertedMRU: !victim.demoted,
			EverHit:     victim.hits > 0,
			Residency:   victim.res,
		})
	}
}
