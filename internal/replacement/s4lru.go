package replacement

import "github.com/scip-cache/scip/internal/cache"

// S4LRU is the quadruply-segmented LRU of the Facebook photo-caching
// study (Huang et al., adopted for CDN photo stores by Zhou et al.).
// The cache is split into four equal LRU segments; missing objects enter
// segment 0, a hit in segment i moves the object to the head of segment
// min(i+1, 3), and overflow of segment i demotes its tail to the head of
// segment i−1 (segment 0 evicts).
//
// With an insertion policy attached (NewS4LRUWithInsertion) it becomes
// the multi-chain integration the paper leaves as future work ("SCIP
// cannot be well adapted to multi-chain structure algorithms, but this is
// a focus of our future work"): an MRU decision keeps the normal S4LRU
// flow, an LRU decision maps to the multi-chain equivalent of the LRU
// position — the tail of segment 0, the next global eviction candidate.
type S4LRU struct {
	name  string
	cap   int64
	arena cache.Arena
	segs  [4]cache.Queue
	index cache.Index
	ins   cache.InsertionPolicy
}

var _ cache.Policy = (*S4LRU)(nil)

// NewS4LRU returns an S4LRU cache.
func NewS4LRU(capBytes int64) *S4LRU {
	s := &S4LRU{name: "S4LRU", cap: capBytes}
	for i := range s.segs {
		s.segs[i] = s.arena.NewQueue()
	}
	return s
}

// NewS4LRUWithInsertion returns S4LRU driven by an insertion/promotion
// policy — the paper's future-work multi-chain integration.
func NewS4LRUWithInsertion(capBytes int64, ins cache.InsertionPolicy) *S4LRU {
	s := NewS4LRU(capBytes)
	s.ins = ins
	s.name = "S4LRU-" + ins.Name()
	return s
}

// Name implements cache.Policy.
func (s *S4LRU) Name() string { return s.name }

// Capacity implements cache.Policy.
func (s *S4LRU) Capacity() int64 { return s.cap }

// Used implements cache.Policy.
func (s *S4LRU) Used() int64 {
	var b int64
	for i := range s.segs {
		b += s.segs[i].Bytes()
	}
	return b
}

// segCap is the per-segment byte budget.
func (s *S4LRU) segCap() int64 { return s.cap / 4 }

// Access implements cache.Policy.
func (s *S4LRU) Access(req cache.Request) bool {
	h := s.index.Get(req.Key)
	hit := h != cache.None
	if s.ins != nil {
		s.ins.OnAccess(req, hit)
	}
	if hit {
		e := s.arena.At(h)
		e.Hits++
		e.LastAccess = req.Time
		if obs, ok := s.ins.(cache.ResidencyObserver); ok && s.ins != nil {
			obs.OnResidentHit(req, e.InsertedMRU, e.Residency, int(e.Hits))
		}
		if s.ins != nil {
			// Promotion as a special insertion: a fresh residency starts.
			e.Hits = 0
			if e.Residency == cache.ResInserted {
				e.Residency = cache.ResFirstHit
			} else {
				e.Residency = cache.ResRepeat
			}
			if s.ins.ChoosePromote(req) == cache.LRU {
				// Multi-chain LRU position: tail of segment 0.
				s.segs[e.Class].Remove(h)
				e.Class = 0
				e.InsertedMRU = false
				s.segs[0].PushBack(h)
				s.overflow()
				return true
			}
			e.InsertedMRU = true
		}
		s.promote(h)
		return true
	}
	if req.Size > s.cap || req.Size <= 0 {
		return false
	}
	h = s.arena.Alloc()
	e := s.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	e.Class = 0
	e.InsertedMRU = true
	if s.ins != nil && s.ins.ChooseInsert(req) == cache.LRU {
		e.InsertedMRU = false
		s.index.Put(req.Key, h)
		s.segs[0].PushBack(h)
		s.overflow()
		return false
	}
	s.index.Put(req.Key, h)
	s.segs[0].PushFront(h)
	s.overflow()
	return false
}

// promote moves a hit entry up one segment.
func (s *S4LRU) promote(h cache.Handle) {
	e := s.arena.At(h)
	next := e.Class + 1
	if next > 3 {
		next = 3
	}
	s.segs[e.Class].Remove(h)
	e.Class = next
	s.segs[next].PushFront(h)
	s.overflow()
}

// overflow cascades demotions down the segments and evicts from segment 0.
func (s *S4LRU) overflow() {
	for i := 3; i >= 1; i-- {
		for s.segs[i].Bytes() > s.segCap() {
			tail := s.segs[i].Back()
			s.segs[i].Remove(tail)
			s.arena.At(tail).Class = int32(i - 1)
			s.segs[i-1].PushFront(tail)
		}
	}
	// Segment 0 absorbs the rest of the global budget.
	for s.Used() > s.cap {
		tail := s.segs[0].Back()
		if tail == cache.None {
			return
		}
		victim := s.arena.At(tail)
		s.segs[0].Remove(tail)
		s.index.Delete(victim.Key)
		if s.ins != nil {
			s.ins.OnEvict(cache.EvictInfo{
				Key:         victim.Key,
				Size:        victim.Size,
				InsertedMRU: victim.InsertedMRU,
				EverHit:     victim.Hits > 0,
				Residency:   victim.Residency,
			})
		}
		s.arena.Free(tail)
	}
}

// Reset implements cache.Resetter.
func (s *S4LRU) Reset() {
	for i := range s.segs {
		s.segs[i].Clear()
	}
	s.index.Reset()
	s.arena.Reset()
}
