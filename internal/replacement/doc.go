// Package replacement implements the victim-selection baselines the paper
// compares SCIP against in Figures 10 and 11: LRU-K, S4LRU, SS-LRU, GDSF,
// LHD, ARC, LeCaR, CACHEUS and GL-Cache (plain LRU lives in
// internal/cache; LRB and Belady have their own packages). Algorithms
// designed for page caches are adapted to byte-capacity object caches the
// way the CDN caching literature does: evictions repeat until the new
// object fits, and ranking-based policies evict from a small random
// sample.
package replacement
