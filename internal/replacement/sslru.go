package replacement

import (
	"math/bits"

	"github.com/scip-cache/scip/internal/cache"
)

// SSLRU is Smart Segmented LRU (Li et al., DAC'22): a probation/protected
// segmented LRU whose admission and promotion are gated by a lightweight
// reuse predictor. Our predictor follows the original's spirit with the
// signals available in a CDN object cache: per-size-class reuse counters
// (hit increments, dead eviction decrements). Objects of classes with no
// predicted reuse enter the probation tail; reused objects move to the
// protected segment, whose overflow demotes back to probation.
type SSLRU struct {
	// ProtectedFrac is the protected segment's share of capacity
	// (default 0.75).
	ProtectedFrac float64

	name      string
	cap       int64
	arena     cache.Arena
	probation cache.Queue
	protected cache.Queue
	index     cache.Index
	classes   [40]int
}

var _ cache.Policy = (*SSLRU)(nil)

// Segment ids for Entry.Class.
const (
	segProbation = 0
	segProtected = 1
)

// NewSSLRU returns an SS-LRU cache.
func NewSSLRU(capBytes int64) *SSLRU {
	s := &SSLRU{
		ProtectedFrac: 0.75,
		name:          "SS-LRU",
		cap:           capBytes,
	}
	s.probation = s.arena.NewQueue()
	s.protected = s.arena.NewQueue()
	return s
}

// Name implements cache.Policy.
func (s *SSLRU) Name() string { return s.name }

// Capacity implements cache.Policy.
func (s *SSLRU) Capacity() int64 { return s.cap }

// Used implements cache.Policy.
func (s *SSLRU) Used() int64 { return s.probation.Bytes() + s.protected.Bytes() }

func (s *SSLRU) class(size int64) int {
	c := bits.Len64(uint64(size))
	if c >= len(s.classes) {
		c = len(s.classes) - 1
	}
	return c
}

// Access implements cache.Policy.
func (s *SSLRU) Access(req cache.Request) bool {
	if h := s.index.Get(req.Key); h != cache.None {
		e := s.arena.At(h)
		e.Hits++
		e.LastAccess = req.Time
		c := s.class(req.Size)
		if s.classes[c] < 16 {
			s.classes[c]++
		}
		// Reused objects move (or refresh) into the protected segment.
		if e.Class == segProtected {
			s.protected.MoveToFront(h)
		} else {
			s.probation.Remove(h)
			e.Class = segProtected
			s.protected.PushFront(h)
			s.balanceProtected()
		}
		return true
	}
	if req.Size > s.cap || req.Size <= 0 {
		return false
	}
	h := s.arena.Alloc()
	e := s.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	e.Class = segProbation
	s.index.Put(req.Key, h)
	// The smart admission: classes with no observed reuse enter at the
	// probation tail, where the next eviction takes them.
	if s.classes[s.class(req.Size)] <= 0 {
		s.probation.PushBack(h)
	} else {
		s.probation.PushFront(h)
	}
	for s.Used() > s.cap {
		s.evictOne()
	}
	return false
}

// balanceProtected demotes protected overflow back to probation's head.
func (s *SSLRU) balanceProtected() {
	limit := int64(s.ProtectedFrac * float64(s.cap))
	for s.protected.Bytes() > limit {
		tail := s.protected.Back()
		s.protected.Remove(tail)
		s.arena.At(tail).Class = segProbation
		s.probation.PushFront(tail)
	}
}

func (s *SSLRU) evictOne() {
	h := s.probation.Back()
	if h == cache.None {
		h = s.protected.Back()
		if h == cache.None {
			panic("replacement: evict from empty SS-LRU")
		}
		s.protected.Remove(h)
	} else {
		s.probation.Remove(h)
	}
	victim := s.arena.At(h)
	s.index.Delete(victim.Key)
	if victim.Hits == 0 {
		c := s.class(victim.Size)
		if s.classes[c] > -16 {
			s.classes[c]--
		}
	}
	s.arena.Free(h)
}

// Reset implements cache.Resetter.
func (s *SSLRU) Reset() {
	s.probation.Clear()
	s.protected.Clear()
	s.index.Reset()
	s.arena.Reset()
	s.classes = [40]int{}
}
