package replacement

import (
	"container/heap"
	"math"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/ml"
)

// glGroup is a segment of objects inserted consecutively, the learning
// unit of GL-Cache.
type glGroup struct {
	id        int64
	createdAt int64
	objects   []*glObject
	bytes     int64
	liveBytes int64
	hits      float64 // hits accrued by members, decayed at training
	snapHits  float64 // hits at the last training snapshot
	utility   float64
	heapIdx   int
	sealed    bool
}

type glObject struct {
	key   uint64
	size  int64
	group *glGroup
	dead  bool
}

type groupHeap []*glGroup

func (h groupHeap) Len() int           { return len(h) }
func (h groupHeap) Less(i, j int) bool { return h[i].utility < h[j].utility }
func (h groupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *groupHeap) Push(x any)        { g := x.(*glGroup); g.heapIdx = len(*h); *h = append(*h, g) }
func (h *groupHeap) Pop() any          { old := *h; n := len(old); g := old[n-1]; *h = old[:n-1]; return g }

// GLCache is group-level learning (Yang et al., FAST'23): objects are
// grouped into insertion-order segments, a regression model learns each
// group's utility (hits per byte accrued since the last training
// snapshot) from group-level features, and eviction drains the
// lowest-predicted-utility group. Learning whole groups amortises both
// the training and the inference cost that per-object learned policies
// (LRB) pay.
type GLCache struct {
	// GroupObjects is the segment size in objects. When 0 (the default)
	// it adapts so the cache holds roughly 64 groups, keeping the
	// learning granularity proportional to the cache size.
	GroupObjects int
	// TrainEvery is the training period in requests (default 1<<15).
	TrainEvery int

	name   string
	cap    int64
	seq    int64
	bytes  int64
	index  map[uint64]*glObject
	open   *glGroup
	groups []*glGroup
	h      groupHeap
	model  *ml.LinReg // nil until first successful training
	nextID int64

	lin     *ml.LinReg // the persistent model instance model points at
	ds      ml.Dataset // reused training buffer
	featBuf [glFeatures]float64
}

// glFeatures is the group-level feature count.
const glFeatures = 4

var _ cache.Policy = (*GLCache)(nil)

// NewGLCache returns a GL-Cache.
func NewGLCache(capBytes int64) *GLCache {
	g := &GLCache{
		TrainEvery: 1 << 15,
		name:       "GL-Cache",
		cap:        capBytes,
		index:      make(map[uint64]*glObject),
	}
	g.newOpenGroup()
	return g
}

// Name implements cache.Policy.
func (g *GLCache) Name() string { return g.name }

// Capacity implements cache.Policy.
func (g *GLCache) Capacity() int64 { return g.cap }

// Used implements cache.Policy.
func (g *GLCache) Used() int64 { return g.bytes }

// groupTarget returns the adaptive segment size: about 1/64th of the
// resident object count, at least 8.
func (g *GLCache) groupTarget() int {
	if g.GroupObjects > 0 {
		return g.GroupObjects
	}
	t := len(g.index) / 64
	if t < 8 {
		t = 8
	}
	return t
}

func (g *GLCache) newOpenGroup() {
	g.open = &glGroup{id: g.nextID, createdAt: g.seq, heapIdx: -1}
	g.nextID++
	g.groups = append(g.groups, g.open)
}

// fillFeatures writes the group-level feature vector into dst (length
// glFeatures).
func (g *GLCache) fillFeatures(gr *glGroup, dst []float64) {
	age := float64(g.seq - gr.createdAt)
	n := float64(len(gr.objects))
	if n == 0 {
		n = 1
	}
	meanSize := float64(gr.bytes) / n
	dst[0] = math.Log2(age + 1)
	dst[1] = math.Log2(meanSize + 1)
	dst[2] = gr.hits / n
	dst[3] = float64(gr.liveBytes) / math.Max(float64(gr.bytes), 1)
}

// Access implements cache.Policy.
func (g *GLCache) Access(req cache.Request) bool {
	g.seq++
	if g.seq%int64(g.TrainEvery) == 0 {
		g.train()
	}
	if o, ok := g.index[req.Key]; ok {
		o.group.hits++
		return true
	}
	if req.Size > g.cap || req.Size <= 0 {
		return false
	}
	for g.bytes+req.Size > g.cap {
		g.evictOne()
	}
	o := &glObject{key: req.Key, size: req.Size, group: g.open}
	g.open.objects = append(g.open.objects, o)
	g.open.bytes += req.Size
	g.open.liveBytes += req.Size
	g.index[req.Key] = o
	g.bytes += req.Size
	if len(g.open.objects) >= g.groupTarget() {
		g.sealOpen()
	}
	return false
}

// sealOpen closes the open group and makes it evictable.
func (g *GLCache) sealOpen() {
	g.open.sealed = true
	g.open.utility = g.predict(g.open)
	heap.Push(&g.h, g.open)
	g.newOpenGroup()
}

func (g *GLCache) predict(gr *glGroup) float64 {
	if g.model == nil {
		// Untrained: prefer evicting older groups (FIFO-like bootstrap).
		return float64(gr.createdAt)
	}
	g.fillFeatures(gr, g.featBuf[:])
	return g.model.Predict(g.featBuf[:])
}

// evictOne removes one object from the lowest-utility sealed group.
func (g *GLCache) evictOne() {
	for {
		if len(g.h) == 0 {
			// Only the open group remains: seal it so it can drain.
			if len(g.open.objects) == 0 {
				panic("replacement: GL-Cache evict with no objects")
			}
			g.sealOpen()
			continue
		}
		gr := g.h[0]
		// Drain one live object from the group's tail.
		for len(gr.objects) > 0 {
			o := gr.objects[len(gr.objects)-1]
			gr.objects = gr.objects[:len(gr.objects)-1]
			if o.dead {
				continue
			}
			o.dead = true
			gr.liveBytes -= o.size
			delete(g.index, o.key)
			g.bytes -= o.size
			return
		}
		heap.Pop(&g.h) // group fully drained
	}
}

// train fits the utility model on sealed groups: target is the hit rate
// accrued per object since the previous snapshot, features are the group
// descriptors; predictions re-rank the eviction heap.
func (g *GLCache) train() {
	g.ds.X.Reset(glFeatures)
	g.ds.Y = g.ds.Y[:0]
	for _, gr := range g.groups {
		if !gr.sealed || len(gr.objects) == 0 {
			continue
		}
		g.fillFeatures(gr, g.featBuf[:])
		g.ds.Append(g.featBuf[:], (gr.hits-gr.snapHits)/float64(len(gr.objects)))
		gr.snapHits = gr.hits
		gr.hits *= 0.5 // decay so utility tracks recent behaviour
		gr.snapHits *= 0.5
	}
	if g.ds.Len() >= 8 {
		if g.lin == nil {
			g.lin = &ml.LinReg{}
		}
		// Refitting in place reuses the normal-equation buffers; on a
		// singular system the previous weights survive, matching the old
		// keep-the-last-model behaviour.
		if err := g.lin.Fit(&g.ds); err == nil {
			g.model = g.lin
		}
	}
	// Re-rank the heap under the new model.
	for _, gr := range g.h {
		gr.utility = g.predict(gr)
	}
	heap.Init(&g.h)
	// Compact fully drained groups from the bookkeeping slice.
	live := g.groups[:0]
	for _, gr := range g.groups {
		if !gr.sealed || len(gr.objects) > 0 {
			live = append(live, gr)
		}
	}
	g.groups = live
}
