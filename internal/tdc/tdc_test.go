package tdc

import (
	"strings"
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/trace"
)

func tdcTrace(t *testing.T, days int64) *trace.Trace {
	t.Helper()
	cfg := gen.Config{
		Name: "TDC", Seed: 21,
		Requests:    200_000,
		CatalogSize: 4_000,
		ZipfAlpha:   0.85,
		OneHitFrac:  0.12,
		EchoProb:    0.25, EchoDelay: 150, EchoTailFrac: 0.6,
		EpochRequests: 40_000, DriftFrac: 0.1,
		SizeMean: 40 * 1024, SizeSigma: 1.4, MinSize: 128, MaxSize: 8 << 20,
		Duration: days * 86_400,
	}
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunBucketsCoverTimeline(t *testing.T) {
	tr := tdcTrace(t, 2)
	cfg := DefaultConfig()
	cfg.BucketSeconds = 3600
	res := Run(tr, cfg)
	if len(res.Buckets) < 40 || len(res.Buckets) > 49 {
		t.Fatalf("buckets = %d, want ~48 for 2 days hourly", len(res.Buckets))
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Requests
		if b.BTORequests > b.Requests {
			t.Fatal("BTO count exceeds requests")
		}
	}
	if total != len(tr.Requests) {
		t.Fatalf("bucketed %d of %d requests", total, len(tr.Requests))
	}
	if res.Deployed != -1 {
		t.Fatal("no deployment configured but Deployed set")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	cfg := DefaultConfig()
	sys := NewSystem(cfg)
	r := tdcTrace(t, 1).Requests[0]
	lat1, bto1 := sys.Serve(r) // cold: origin
	if !bto1 || lat1 <= cfg.OriginLatencyMs {
		t.Fatalf("cold request should pay origin latency, got %.1f bto=%v", lat1, bto1)
	}
	lat2, bto2 := sys.Serve(r) // now in OC
	if bto2 || lat2 != cfg.OCLatencyMs {
		t.Fatalf("warm request should hit OC at %.1f ms, got %.1f", cfg.OCLatencyMs, lat2)
	}
}

func TestDCCatchesOCEvictions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OCCapacity = 10_000
	cfg.DCCapacity = 10_000_000
	sys := NewSystem(cfg)
	// Fill OC past capacity so object 1 falls out of OC but stays in DC.
	sys.Serve(cache.Request{Time: 0, Key: 1, Size: 5_000})
	for k := uint64(2); k < 10; k++ {
		sys.Serve(cache.Request{Time: int64(k), Key: k, Size: 5_000})
	}
	lat, bto := sys.Serve(cache.Request{Time: 100, Key: 1, Size: 5_000})
	if bto {
		t.Fatal("object evicted from OC should hit DC, not origin")
	}
	if lat != cfg.DCLatencyMs {
		t.Fatalf("DC hit latency = %.1f, want %.1f", lat, cfg.DCLatencyMs)
	}
}

func TestDeploymentImprovesOperatingPoint(t *testing.T) {
	tr := tdcTrace(t, 4)
	cfg := DefaultConfig()
	cfg.OCCapacity = 64 << 20
	cfg.DCCapacity = 256 << 20
	cfg.DeployAt = 2 * 86_400
	cfg.Seed = 5
	res := Run(tr, cfg)
	if res.Deployed <= 0 || res.Deployed >= len(res.Buckets) {
		t.Fatalf("Deployed index = %d of %d buckets", res.Deployed, len(res.Buckets))
	}
	before, after := res.Before(), res.After()
	if before.Requests == 0 || after.Requests == 0 {
		t.Fatal("empty before/after aggregates")
	}
	// SCIP must not degrade the system; on this drift+one-hit workload it
	// should reduce the BTO ratio.
	if after.BTORatio() > before.BTORatio()+0.01 {
		t.Fatalf("BTO ratio worsened: %.4f -> %.4f", before.BTORatio(), after.BTORatio())
	}
	if !strings.Contains(res.Summary(), "before:") {
		t.Fatalf("Summary() = %q", res.Summary())
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var b Bucket
	for i := 1; i <= 2000; i++ {
		b.Requests++
		b.observeLatency(float64(i % 100))
	}
	p50 := b.LatencyPercentile(0.5)
	p99 := b.LatencyPercentile(0.99)
	if p50 < 30 || p50 > 70 {
		t.Fatalf("p50 = %g, want ~50", p50)
	}
	if p99 < p50 {
		t.Fatal("p99 below p50")
	}
	if p99 > 99 {
		t.Fatalf("p99 = %g out of range", p99)
	}
	var empty Bucket
	if empty.LatencyPercentile(0.5) != 0 {
		t.Fatal("empty bucket percentile should be 0")
	}
}

func TestRunPercentilesReflectHierarchy(t *testing.T) {
	tr := tdcTrace(t, 2)
	cfg := DefaultConfig()
	res := Run(tr, cfg)
	last := res.Buckets[len(res.Buckets)-1]
	p50 := last.LatencyPercentile(0.5)
	p99 := last.LatencyPercentile(0.99)
	// Warm steady state: median should be an OC hit, the tail an origin
	// fetch.
	if p50 != cfg.OCLatencyMs {
		t.Fatalf("p50 = %g, want OC latency %g", p50, cfg.OCLatencyMs)
	}
	if p99 < cfg.DCLatencyMs {
		t.Fatalf("p99 = %g, want >= DC latency", p99)
	}
}
