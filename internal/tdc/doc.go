// Package tdc models Tencent's TDC image-CDN hierarchy (Figure 2 of the
// paper): clients hit the outside cache (OC) layer, OC misses fall
// through to the data-center cache (DC) layer, and DC misses "back to the
// original source" (BTO) — the storage system COS. The simulation
// replays a request timeline, switches the cache layers' insertion policy
// to SCIP at a configurable deployment time (the layers themselves keep
// their LRU victim selection, exactly like the production rollout), and
// reports the Figure-6 series: BTO traffic, BTO ratio and mean user
// access latency per time bucket.
package tdc
