package tdc

import (
	"fmt"
	"sort"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/trace"
)

// Config parametrises the hierarchy.
type Config struct {
	// OCCapacity and DCCapacity are the layer capacities in bytes.
	OCCapacity, DCCapacity int64
	// OCLatencyMs, DCLatencyMs and OriginLatencyMs are the base response
	// latencies of each layer.
	OCLatencyMs, DCLatencyMs, OriginLatencyMs float64
	// OriginMsPerMiB adds size-dependent transfer time for BTO fetches.
	OriginMsPerMiB float64
	// DeployAt is the simulation time (seconds) at which SCIP replaces
	// the LRU insertion policy in both layers; negative disables
	// deployment (pure-LRU baseline run).
	DeployAt int64
	// BucketSeconds is the reporting granularity.
	BucketSeconds int64
	// Seed drives SCIP's bimodal choices.
	Seed int64
}

// DefaultConfig returns a configuration whose pre-deployment operating
// point sits in the regime the paper reports (single-digit BTO ratio,
// a few hundred ms mean latency).
func DefaultConfig() Config {
	return Config{
		OCCapacity:      256 << 20,
		DCCapacity:      1 << 30,
		OCLatencyMs:     12,
		DCLatencyMs:     90,
		OriginLatencyMs: 1200,
		OriginMsPerMiB:  220,
		DeployAt:        -1,
		BucketSeconds:   3600,
	}
}

// latencyReservoir is a fixed-size deterministic sampling reservoir for
// percentile estimates.
const reservoirSize = 1024

// Bucket is one reporting interval of the Figure-6 series.
type Bucket struct {
	// StartTime is the bucket's start (seconds).
	StartTime int64
	// Requests served in the bucket.
	Requests int
	// BTOBytes fetched from the origin.
	BTOBytes int64
	// BTORequests that reached the origin.
	BTORequests int
	// LatencySumMs accumulates per-request latency.
	LatencySumMs float64

	// reservoir holds a uniform sample of per-request latencies for
	// percentile estimation.
	reservoir []float64
	rngState  uint64
}

// observeLatency records one latency into the reservoir (Vitter's
// algorithm R with a cheap deterministic PRNG).
func (b *Bucket) observeLatency(ms float64) {
	if len(b.reservoir) < reservoirSize {
		b.reservoir = append(b.reservoir, ms)
		return
	}
	b.rngState = b.rngState*6364136223846793005 + 1442695040888963407
	j := int((b.rngState >> 33) % uint64(b.Requests))
	if j < reservoirSize {
		b.reservoir[j] = ms
	}
}

// LatencyPercentile returns the q-quantile (0 < q < 1) of the bucket's
// sampled latencies, or 0 when empty.
func (b Bucket) LatencyPercentile(q float64) float64 {
	if len(b.reservoir) == 0 {
		return 0
	}
	s := append([]float64(nil), b.reservoir...)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// BTOGbps returns the bucket's origin traffic in Gbit/s.
func (b Bucket) BTOGbps(bucketSeconds int64) float64 {
	if bucketSeconds == 0 {
		return 0
	}
	return float64(b.BTOBytes) * 8 / float64(bucketSeconds) / 1e9
}

// BTORatio returns the fraction of requests that reached the origin (the
// paper's miss-ratio metric for the deployment).
func (b Bucket) BTORatio() float64 {
	if b.Requests == 0 {
		return 0
	}
	return float64(b.BTORequests) / float64(b.Requests)
}

// MeanLatencyMs returns the bucket's average user access latency.
func (b Bucket) MeanLatencyMs() float64 {
	if b.Requests == 0 {
		return 0
	}
	return b.LatencySumMs / float64(b.Requests)
}

// Result is a full simulation outcome.
type Result struct {
	Cfg     Config
	Buckets []Bucket
	// Deployed marks the bucket index at which SCIP took over (-1 when
	// never deployed).
	Deployed int
}

// aggregate sums a bucket range into one.
func (r *Result) aggregate(from, to int) Bucket {
	var out Bucket
	for _, b := range r.Buckets[from:to] {
		out.Requests += b.Requests
		out.BTOBytes += b.BTOBytes
		out.BTORequests += b.BTORequests
		out.LatencySumMs += b.LatencySumMs
	}
	return out
}

// Before aggregates the pre-deployment buckets (whole run if never
// deployed).
func (r *Result) Before() Bucket {
	if r.Deployed < 0 {
		return r.aggregate(0, len(r.Buckets))
	}
	return r.aggregate(0, r.Deployed)
}

// After aggregates the post-deployment buckets.
func (r *Result) After() Bucket {
	if r.Deployed < 0 || r.Deployed >= len(r.Buckets) {
		return Bucket{}
	}
	return r.aggregate(r.Deployed, len(r.Buckets))
}

// System is the two-layer hierarchy.
type System struct {
	cfg Config
	oc  *cache.QueueCache
	dc  *cache.QueueCache
}

// NewSystem builds the hierarchy with plain LRU layers.
func NewSystem(cfg Config) *System {
	return &System{
		cfg: cfg,
		oc:  cache.NewLRU(cfg.OCCapacity),
		dc:  cache.NewLRU(cfg.DCCapacity),
	}
}

// Deploy switches both layers' insertion policy to SCIP, mirroring the
// production rollout.
func (s *System) Deploy() {
	s.oc.SetInsertion(core.New(s.cfg.OCCapacity, core.WithSeed(s.cfg.Seed+1)))
	s.dc.SetInsertion(core.New(s.cfg.DCCapacity, core.WithSeed(s.cfg.Seed+2)))
}

// Serve processes one request and returns its latency in ms and whether
// it reached the origin.
func (s *System) Serve(req cache.Request) (latencyMs float64, bto bool) {
	if s.oc.Access(req) {
		return s.cfg.OCLatencyMs, false
	}
	if s.dc.Access(req) {
		return s.cfg.DCLatencyMs, false
	}
	transfer := s.cfg.OriginMsPerMiB * float64(req.Size) / (1 << 20)
	return s.cfg.OriginLatencyMs + transfer, true
}

// Run replays tr through the hierarchy, deploying SCIP at cfg.DeployAt.
func Run(tr *trace.Trace, cfg Config) *Result {
	sys := NewSystem(cfg)
	res := &Result{Cfg: cfg, Deployed: -1}
	if cfg.BucketSeconds <= 0 {
		cfg.BucketSeconds = 3600
		res.Cfg = cfg
	}
	deployed := false
	var cur *Bucket
	var curStart int64 = -1
	for _, req := range tr.Requests {
		if !deployed && cfg.DeployAt >= 0 && req.Time >= cfg.DeployAt {
			sys.Deploy()
			deployed = true
			// The first fully post-deployment bucket is the next one to
			// be created (a bucket in progress at the switch counts as
			// pre-deployment).
			res.Deployed = len(res.Buckets)
		}
		bucketStart := req.Time / cfg.BucketSeconds * cfg.BucketSeconds
		if cur == nil || bucketStart != curStart {
			res.Buckets = append(res.Buckets, Bucket{StartTime: bucketStart})
			cur = &res.Buckets[len(res.Buckets)-1]
			curStart = bucketStart
		}
		lat, bto := sys.Serve(req)
		cur.Requests++
		cur.LatencySumMs += lat
		cur.observeLatency(lat)
		if bto {
			cur.BTORequests++
			cur.BTOBytes += req.Size
		}
	}
	if res.Deployed > len(res.Buckets) {
		res.Deployed = len(res.Buckets)
	}
	return res
}

// Summary renders the before/after comparison like the paper's §5.2.
func (r *Result) Summary() string {
	b, a := r.Before(), r.After()
	nb := r.Deployed
	if nb < 0 {
		nb = len(r.Buckets)
	}
	na := len(r.Buckets) - nb
	gbps := func(agg Bucket, buckets int) float64 {
		if buckets == 0 {
			return 0
		}
		return float64(agg.BTOBytes) * 8 / float64(int64(buckets)*r.Cfg.BucketSeconds) / 1e9
	}
	return fmt.Sprintf(
		"before: BTO-ratio=%.2f%% BTO=%.3f Gbps latency=%.1f ms | after: BTO-ratio=%.2f%% BTO=%.3f Gbps latency=%.1f ms",
		100*b.BTORatio(), gbps(b, nb), b.MeanLatencyMs(),
		100*a.BTORatio(), gbps(a, na), a.MeanLatencyMs())
}
