// Package admission implements the cache admission algorithms the paper's
// related-work section (§7) contrasts insertion policies against: 2Q
// (Shasha & Johnson), TinyLFU (Einziger et al., as the W-TinyLFU cache),
// and AdaptSize (Berger et al.). Admission policies decide whether an
// object enters the cache at all, whereas insertion policies decide where
// it enters; the `admission` experiment compares both families.
package admission
