package scorer

import (
	"errors"
	"math/rand"
	"strings"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/mab"
)

// Config selects and weighs the scorers of a Pipeline. Scorers with a
// positive weight are built, in the fixed canonical order zro, size,
// freq, ghost, reuse (construction order never depends on spec order, so
// a given config is a pure function of its values).
type Config struct {
	// ZRO..Reuse are the initial mixer weights; <= 0 excludes the scorer.
	ZRO, Size, Freq, Ghost, Reuse float64

	// Name overrides the pipeline's display name (default: "MIX(...)"
	// listing the active scorers). The monolith-equivalence configs use
	// it to reproduce the monolith's table rows byte-identically.
	Name string
	// Seed drives the pipeline PRNG and the embedded SCIP's.
	Seed int64
	// Interval is the tuning window in requests (default
	// core.DefaultInterval); it is also the embedded SCIP's interval.
	Interval int
	// Tune enables online mixer-weight tuning on resolved evidence
	// events. With a single scorer tuning is provably inert (the lone
	// weight renormalises to exactly 1), so equivalence configs may
	// leave it on.
	Tune bool
	// C is the size scorer's parameter (default capBytes/100, AdaptSize's
	// starting point).
	C float64
	// GhostFrac sizes the ghost scorer's history as a fraction of
	// capacity (default 0.5, the paper's history budget).
	GhostFrac float64
	// ZROOpts are extra options for the embedded SCIP (e.g.
	// core.ForEnhancement when hosted inside LRU-K/LRB), applied after
	// the seed and interval.
	ZROOpts []core.Option
}

// Pipeline combines independent admission scorers with a weighted mixer
// into a cache.InsertionPolicy. The mixed score is the MRU/admit
// probability; mab.MultiExpert holds the mixer weights and
// mab.AdaptiveRate supplies the tuning step, the same machinery SCIP
// uses for its single bimodal probability. Not safe for concurrent use.
type Pipeline struct {
	name    string
	scorers []Scorer
	mix     *mab.MultiExpert
	initW   []float64
	rate    *mab.AdaptiveRate
	tune    bool

	seed     int64
	rng      *rand.Rand
	uniform  func() float64
	interval int

	reqs, hits int
}

var (
	_ cache.InsertionPolicy   = (*Pipeline)(nil)
	_ cache.ResidencyObserver = (*Pipeline)(nil)
	_ cache.Resetter          = (*Pipeline)(nil)
)

// NewPipeline builds the configured scorers for a cache of capBytes.
func NewPipeline(capBytes int64, cfg Config) (*Pipeline, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = core.DefaultInterval
	}
	if cfg.C <= 0 {
		cfg.C = float64(capBytes) / 100
	}
	if cfg.GhostFrac <= 0 {
		cfg.GhostFrac = 0.5
	}
	p := &Pipeline{
		name:     cfg.Name,
		tune:     cfg.Tune,
		seed:     cfg.Seed,
		interval: cfg.Interval,
	}
	var weights []float64
	add := func(s Scorer, w float64) {
		p.scorers = append(p.scorers, s)
		weights = append(weights, w)
	}
	if cfg.ZRO > 0 {
		add(newZROScorer(capBytes, cfg.Seed, cfg.Interval, cfg.ZROOpts), cfg.ZRO)
	}
	if cfg.Size > 0 {
		add(&sizeScorer{c: cfg.C}, cfg.Size)
	}
	if cfg.Freq > 0 {
		add(newFreqScorer(capBytes), cfg.Freq)
	}
	if cfg.Ghost > 0 {
		add(newGhostScorer(capBytes, cfg.GhostFrac), cfg.Ghost)
	}
	if cfg.Reuse > 0 {
		add(newReuseScorer(), cfg.Reuse)
	}
	if len(p.scorers) == 0 {
		return nil, errors.New("scorer: config selects no scorers")
	}
	p.initW = weights
	p.mix = mab.NewMultiExpert(weights)
	// The tuner's AdaptiveRate gets no PRNG: its restarts fall back to
	// the deterministic midpoint, so tuning never consumes randomness
	// and cannot perturb a shared decision stream.
	p.rate = mab.NewAdaptiveRate(nil)
	p.rng = rand.New(rand.NewSource(cfg.Seed))
	p.bindUniform()
	if p.name == "" {
		names := make([]string, len(p.scorers))
		for i, s := range p.scorers {
			names[i] = s.Name()
		}
		p.name = "MIX(" + strings.Join(names, "+") + ")"
	}
	return p, nil
}

// bindUniform points the decision draw at the first scorer that owns a
// PRNG (the zro scorer), so a zro-only mix consumes SCIP's exact stream;
// otherwise at the pipeline's own seeded PRNG. Rebound after every Reset
// because the fallback closure captures the current *rand.Rand.
func (p *Pipeline) bindUniform() {
	p.uniform = p.rng.Float64
	for _, s := range p.scorers {
		if u, ok := s.(uniformSource); ok {
			p.uniform = u.Uniform
			break
		}
	}
}

// Name implements cache.InsertionPolicy.
func (p *Pipeline) Name() string { return p.name }

// Weights exposes the live mixer weights (canonical scorer order) for
// tests and diagnostics; callers must not mutate the slice.
func (p *Pipeline) Weights() []float64 { return p.mix.Weights() }

// Scorers lists the active scorer names in mixer order.
func (p *Pipeline) Scorers() []string {
	names := make([]string, len(p.scorers))
	for i, s := range p.scorers {
		names[i] = s.Name()
	}
	return names
}

// insertMix gathers every scorer's insertion opinion exactly once and
// returns the weighted mix. When one or more scorers force the decision,
// the weighted mean of the forcing scorers' scores is returned with
// forced=true and the caller must not consume randomness.
func (p *Pipeline) insertMix(req cache.Request) (score float64, forced bool) {
	var mix, fsum, fw float64
	for i, s := range p.scorers {
		sc, f := s.InsertScore(req)
		w := p.mix.Weight(i)
		mix += w * sc
		if f {
			forced = true
			fsum += w * sc
			fw += w
		}
	}
	if forced {
		if fw > 0 {
			return fsum / fw, true
		}
		return 1, true
	}
	return mix, false
}

func (p *Pipeline) promoteMix(req cache.Request) (score float64, forced bool) {
	var mix, fsum, fw float64
	for i, s := range p.scorers {
		sc, f := s.PromoteScore(req)
		w := p.mix.Weight(i)
		mix += w * sc
		if f {
			forced = true
			fsum += w * sc
			fw += w
		}
	}
	if forced {
		if fw > 0 {
			return fsum / fw, true
		}
		return 1, true
	}
	return mix, false
}

// ChooseInsert implements cache.InsertionPolicy: the mixed score is the
// MRU probability, decided by one uniform draw (score > u, the
// TwoExpert.Select predicate). Forced decisions consume no randomness.
func (p *Pipeline) ChooseInsert(req cache.Request) cache.Position {
	score, forced := p.insertMix(req)
	if forced {
		if score >= 0.5 {
			return cache.MRU
		}
		return cache.LRU
	}
	if score > p.uniform() {
		return cache.MRU
	}
	return cache.LRU
}

// ChoosePromote implements cache.InsertionPolicy for the promotion
// context.
func (p *Pipeline) ChoosePromote(req cache.Request) cache.Position {
	score, forced := p.promoteMix(req)
	if forced {
		if score >= 0.5 {
			return cache.MRU
		}
		return cache.LRU
	}
	if score > p.uniform() {
		return cache.MRU
	}
	return cache.LRU
}

// OnAccess forwards the request to every scorer and maintains the
// interval hit-rate window feeding the tuning step size.
func (p *Pipeline) OnAccess(req cache.Request, hit bool) {
	p.reqs++
	if hit {
		p.hits++
	}
	for _, s := range p.scorers {
		s.OnAccess(req, hit)
	}
	if p.reqs%p.interval == 0 {
		p.rate.Update(float64(p.hits) / float64(p.interval))
		p.hits = 0
	}
}

// OnEvict applies the negative tuning evidence — a never-hit eviction
// resolves the admission question as y=0, so each scorer's weight decays
// by λ × its (side-effect-free) score for the victim — then forwards the
// eviction to every scorer. With one scorer the decay renormalises back
// to exactly 1: tuning is inert and equivalence configs keep it on.
func (p *Pipeline) OnEvict(ev cache.EvictInfo) {
	if p.tune && !ev.EverHit {
		req := cache.Request{Key: ev.Key, Size: ev.Size}
		for i, s := range p.scorers {
			if loss := s.Score(req); loss > 0 {
				p.mix.Decay(i, p.rate.Lambda*loss)
			}
		}
	}
	for _, s := range p.scorers {
		s.OnEvict(ev)
	}
}

// OnResidentHit applies the positive tuning evidence — the first hit of
// a residency resolves the admission question as y=1, decaying each
// scorer by λ × (1 − score) — then forwards the event.
func (p *Pipeline) OnResidentHit(req cache.Request, insertedMRU bool, res cache.Residency, hits int) {
	if p.tune && hits == 1 {
		for i, s := range p.scorers {
			if loss := 1 - s.Score(req); loss > 0 {
				p.mix.Decay(i, p.rate.Lambda*loss)
			}
		}
	}
	for _, s := range p.scorers {
		s.OnResidentHit(req, insertedMRU, res, hits)
	}
}

// Reset implements cache.Resetter: scorers, mixer weights, tuning rate,
// PRNG and counters all return to their initial state, so a reset
// pipeline replays bit-for-bit.
func (p *Pipeline) Reset() {
	for _, s := range p.scorers {
		s.Reset()
	}
	p.mix.Reset(p.initW)
	p.rate = mab.NewAdaptiveRate(nil)
	p.rng = rand.New(rand.NewSource(p.seed))
	p.bindUniform()
	p.reqs, p.hits = 0, 0
}

// NewCache wraps a placement-mode pipeline in a QueueCache: LRU victim
// selection with scorer-driven insertion and promotion, the same shape
// as the paper's SCIP-LRU. name defaults to the pipeline's.
func NewCache(name string, capBytes int64, cfg Config) (*cache.QueueCache, error) {
	p, err := NewPipeline(capBytes, cfg)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = p.Name()
	}
	return cache.NewQueueCache(name, capBytes, p), nil
}
