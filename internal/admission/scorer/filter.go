package scorer

import "github.com/scip-cache/scip/internal/cache"

// FilterCache is the pipeline's admission-filter mode: a plain-LRU inner
// cache whose misses are gated on the mixed insertion score — the shape
// of AdaptSize and the TinyLFU duel, with the signal swapped for the
// composable mix. theta >= 0 admits deterministically (score >= theta);
// theta < 0 admits probabilistically (score >= u, one uniform draw per
// miss, AdaptSize's predicate). Promotion inside the inner cache is
// plain LRU; the promotion-context scores are unused in this mode.
type FilterCache struct {
	name  string
	inner *cache.QueueCache
	p     *Pipeline
	theta float64
}

var (
	_ cache.Policy          = (*FilterCache)(nil)
	_ cache.Remover         = (*FilterCache)(nil)
	_ cache.EvictionCounter = (*FilterCache)(nil)
	_ cache.Resetter        = (*FilterCache)(nil)
)

// NewFilter builds a filter-mode cache of capBytes capacity. name
// defaults to the pipeline's.
func NewFilter(name string, capBytes int64, theta float64, cfg Config) (*FilterCache, error) {
	p, err := NewPipeline(capBytes, cfg)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = p.Name()
	}
	f := &FilterCache{name: name, inner: cache.NewLRU(capBytes), p: p, theta: theta}
	// The inner cache is plain LRU, so the pipeline is not its insertion
	// policy; evictions reach the scorers through the hook instead.
	f.inner.EvictHook = func(e *cache.Entry) {
		p.OnEvict(cache.EvictInfo{
			Key:         e.Key,
			Size:        e.Size,
			InsertedMRU: e.InsertedMRU,
			EverHit:     e.Hits > 0,
			Residency:   e.Residency,
		})
	}
	return f, nil
}

// Name implements cache.Policy.
func (f *FilterCache) Name() string { return f.name }

// Capacity implements cache.Policy.
func (f *FilterCache) Capacity() int64 { return f.inner.Capacity() }

// Used implements cache.Policy.
func (f *FilterCache) Used() int64 { return f.inner.Used() }

// Evictions implements cache.EvictionCounter.
func (f *FilterCache) Evictions() int64 { return f.inner.Evictions() }

// Pipeline exposes the scorer pipeline for tests and diagnostics.
func (f *FilterCache) Pipeline() *Pipeline { return f.p }

// Access implements cache.Policy: hits pass straight through to the
// inner LRU; misses are admitted only when the mixed score clears the
// threshold (or the uniform draw). The event order matches QueueCache:
// OnAccess first, then the resident-hit report.
func (f *FilterCache) Access(req cache.Request) bool {
	hit := f.inner.Contains(req.Key)
	f.p.OnAccess(req, hit)
	if hit {
		if e := f.inner.Entry(req.Key); e != nil {
			f.p.OnResidentHit(req, e.InsertedMRU, e.Residency, int(e.Hits)+1)
		}
		f.inner.Access(req)
		return true
	}
	score, forced := f.p.insertMix(req)
	admit := false
	switch {
	case forced:
		admit = score >= 0.5
	case f.theta >= 0:
		admit = score >= f.theta
	default:
		admit = score >= f.p.uniform()
	}
	if admit {
		f.inner.Access(req)
	}
	return false
}

// Remove implements cache.Remover by delegating to the inner LRU: no
// eviction counter, no EvictHook, no scorer signal — invalidation
// teaches nothing.
func (f *FilterCache) Remove(key uint64) bool { return f.inner.Remove(key) }

// Reset implements cache.Resetter.
func (f *FilterCache) Reset() {
	f.inner.Reset()
	f.p.Reset()
}
