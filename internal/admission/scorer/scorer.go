package scorer

import (
	"math"

	"github.com/scip-cache/scip/internal/admission"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/zro"
)

// Scorer is one independent admission signal producing scores in [0, 1]:
// 1 means "this object deserves cache space" (admit / place at MRU),
// 0 means "it does not" (reject / place at LRU).
type Scorer interface {
	// Name returns the spec key for this scorer ("zro", "size", ...).
	Name() string
	// InsertScore returns the opinion on a missing object. forced=true
	// demands an unconditional decision (score exactly 0 or 1, no
	// randomness consumed). It is called exactly once per miss and may
	// consume one-shot per-request state.
	InsertScore(req cache.Request) (score float64, forced bool)
	// PromoteScore is the promotion-context counterpart, called exactly
	// once per hit (placement mode only).
	PromoteScore(req cache.Request) (score float64, forced bool)
	// Score returns the current opinion of req without consuming any
	// per-request state; the weight tuner uses it to attribute loss on
	// resolved evidence events.
	Score(req cache.Request) float64
	// OnAccess, OnEvict and OnResidentHit forward the hosting cache's
	// learning events.
	OnAccess(req cache.Request, hit bool)
	OnEvict(ev cache.EvictInfo)
	OnResidentHit(req cache.Request, insertedMRU bool, res cache.Residency, hits int)
	// Reset restores the initial learning state.
	Reset()
}

// uniformSource is implemented by scorers that own a PRNG the pipeline
// should draw its decisions from (the zro scorer: byte-identity with the
// monolith requires sharing SCIP's stream).
type uniformSource interface {
	Uniform() float64
}

// baseScorer provides no-op event hooks for stateless scorers.
type baseScorer struct{}

func (baseScorer) OnAccess(cache.Request, bool)                            {}
func (baseScorer) OnEvict(cache.EvictInfo)                                 {}
func (baseScorer) OnResidentHit(cache.Request, bool, cache.Residency, int) {}
func (baseScorer) Reset()                                                  {}

// ---------------------------------------------------------------------------
// zro: SCIP's learned bimodal probability.

// zroScorer wraps a full SCIP instance: its score is the learned
// per-size-class MRU weight, its forced results are the §3.2 per-object
// adjustments, and all learning events are forwarded so the embedded
// monolith trains exactly as it would standalone.
type zroScorer struct {
	s *core.SCIP
}

func newZROScorer(capBytes int64, seed int64, interval int, extra []core.Option) *zroScorer {
	opts := append([]core.Option{core.WithSeed(seed), core.WithInterval(interval)}, extra...)
	return &zroScorer{s: core.New(capBytes, opts...)}
}

func (z *zroScorer) Name() string { return "zro" }

func (z *zroScorer) InsertScore(req cache.Request) (float64, bool)  { return z.s.InsertScore(req) }
func (z *zroScorer) PromoteScore(req cache.Request) (float64, bool) { return z.s.PromoteScore(req) }
func (z *zroScorer) Score(req cache.Request) float64                { return z.s.ClassMRUWeight(req.Size) }
func (z *zroScorer) Uniform() float64                               { return z.s.Uniform() }

func (z *zroScorer) OnAccess(req cache.Request, hit bool) { z.s.OnAccess(req, hit) }
func (z *zroScorer) OnEvict(ev cache.EvictInfo)           { z.s.OnEvict(ev) }
func (z *zroScorer) OnResidentHit(req cache.Request, insertedMRU bool, res cache.Residency, hits int) {
	z.s.OnResidentHit(req, insertedMRU, res, hits)
}
func (z *zroScorer) Reset() { z.s.Reset() }

// ---------------------------------------------------------------------------
// size: AdaptSize's admission probability.

// sizeScorer scores e^{−size/c}: small objects near 1, large objects
// near 0 — AdaptSize's admission probability used as a mixable signal.
// c is fixed at construction; adaptivity comes from the mixer weight,
// not from hill-climbing c.
type sizeScorer struct {
	baseScorer
	c float64
}

func (s *sizeScorer) Name() string { return "size" }

func (s *sizeScorer) score(size int64) float64 { return math.Exp(-float64(size) / s.c) }

func (s *sizeScorer) InsertScore(req cache.Request) (float64, bool)  { return s.score(req.Size), false }
func (s *sizeScorer) PromoteScore(req cache.Request) (float64, bool) { return s.score(req.Size), false }
func (s *sizeScorer) Score(req cache.Request) float64                { return s.score(req.Size) }

// ---------------------------------------------------------------------------
// freq: the TinyLFU count-min sketch.

// freqScorer counts every access in an aging count-min sketch and scores
// the normalised estimate — TinyLFU's duel signal recast as a [0, 1]
// opinion.
type freqScorer struct {
	baseScorer
	sk *admission.Sketch
}

func newFreqScorer(capBytes int64) *freqScorer {
	counters := int(capBytes / 4096)
	if counters < 1024 {
		counters = 1024
	}
	return &freqScorer{sk: admission.NewSketch(counters)}
}

func (f *freqScorer) Name() string { return "freq" }

func (f *freqScorer) score(key uint64) float64 { return float64(f.sk.Estimate(key)) / 15 }

func (f *freqScorer) InsertScore(req cache.Request) (float64, bool)  { return f.score(req.Key), false }
func (f *freqScorer) PromoteScore(req cache.Request) (float64, bool) { return f.score(req.Key), false }
func (f *freqScorer) Score(req cache.Request) float64                { return f.score(req.Key) }

func (f *freqScorer) OnAccess(req cache.Request, hit bool) { f.sk.Add(req.Key) }
func (f *freqScorer) Reset()                               { f.sk.Reset() }

// ---------------------------------------------------------------------------
// ghost: History re-reference.

// Ghost scores: a missing object found in the ghost list of recent
// evictions was dropped too early — full confidence. A cold miss scores
// low; a resident hit is neutral (the ghost has no opinion on objects it
// has never seen evicted).
const (
	ghostHitScore  = 1.0
	ghostColdScore = 0.25
	ghostNeutral   = 0.5
)

// ghostScorer remembers recently evicted keys in a cache.History and
// scores re-referenced ones as certain re-admissions — 2Q's A1out rule
// as a soft signal. The ghost record is consumed on the miss that finds
// it, like every ghost list in the repository.
type ghostScorer struct {
	h       *cache.History
	pending bool
}

func newGhostScorer(capBytes int64, frac float64) *ghostScorer {
	return &ghostScorer{h: cache.NewHistory(int64(frac * float64(capBytes)))}
}

func (g *ghostScorer) Name() string { return "ghost" }

func (g *ghostScorer) OnAccess(req cache.Request, hit bool) {
	if hit {
		g.pending = false
		return
	}
	_, g.pending = g.h.Delete(req.Key)
}

func (g *ghostScorer) OnEvict(ev cache.EvictInfo) { g.h.Add(ev.Key, ev.Size, ev.Residency) }

func (g *ghostScorer) InsertScore(req cache.Request) (float64, bool) {
	if g.pending {
		g.pending = false
		return ghostHitScore, false
	}
	return ghostColdScore, false
}

func (g *ghostScorer) PromoteScore(req cache.Request) (float64, bool) { return ghostNeutral, false }

func (g *ghostScorer) Score(req cache.Request) float64 {
	if g.h.Contains(req.Key) {
		return ghostHitScore
	}
	return ghostColdScore
}

func (g *ghostScorer) OnResidentHit(cache.Request, bool, cache.Residency, int) {}

func (g *ghostScorer) Reset() {
	g.h.Reset()
	g.pending = false
}

// ---------------------------------------------------------------------------
// reuse: online per-size-class ZRO estimate.

// reuseScorer scores the zro.OnlineEstimator's reuse likelihood for the
// object's size class, learned from the hosting cache's own eviction
// outcomes — a drift-tracking statistical cousin of the zro scorer's
// learned weights.
type reuseScorer struct {
	baseScorer
	est *zro.OnlineEstimator
}

func newReuseScorer() *reuseScorer { return &reuseScorer{est: zro.NewOnlineEstimator()} }

func (r *reuseScorer) Name() string { return "reuse" }

func (r *reuseScorer) InsertScore(req cache.Request) (float64, bool) {
	return r.est.Likelihood(req.Size), false
}
func (r *reuseScorer) PromoteScore(req cache.Request) (float64, bool) {
	return r.est.Likelihood(req.Size), false
}
func (r *reuseScorer) Score(req cache.Request) float64 { return r.est.Likelihood(req.Size) }

func (r *reuseScorer) OnEvict(ev cache.EvictInfo) { r.est.Observe(ev.Size, ev.EverHit) }
func (r *reuseScorer) Reset()                     { r.est.Reset() }
