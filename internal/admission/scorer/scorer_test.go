package scorer

import (
	"testing"

	"github.com/scip-cache/scip/internal/admission"
	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/core"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/trace"
)

func testTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.Config{
		Name: "scorer-test", Seed: seed,
		Requests:    40_000,
		CatalogSize: 2_000,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.3,
		EchoProb:    0.2, EchoDelay: 60, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestZROOnlyMatchesMonolith is the tentpole's core invariant at unit
// scale: a placement-mode pipeline with only the zro scorer reproduces
// the monolithic SCIP cache's decision stream request-for-request —
// same hits, same occupancy, same eviction count.
func TestZROOnlyMatchesMonolith(t *testing.T) {
	tr := testTrace(t, 11)
	const capBytes = 300_000
	const seed, interval = 7, 5_000

	mono := core.NewCache(capBytes, core.WithSeed(seed), core.WithInterval(interval))
	pipe, err := NewCache("SCIP", capBytes, Config{
		ZRO: 1, Seed: seed, Interval: interval, Tune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range tr.Requests {
		mh := mono.Access(req)
		ph := pipe.Access(req)
		if mh != ph {
			t.Fatalf("request %d: monolith hit=%v, pipeline hit=%v", i, mh, ph)
		}
	}
	if mono.Used() != pipe.Used() {
		t.Fatalf("Used: monolith %d, pipeline %d", mono.Used(), pipe.Used())
	}
	if mono.Evictions() != pipe.Evictions() {
		t.Fatalf("Evictions: monolith %d, pipeline %d", mono.Evictions(), pipe.Evictions())
	}
}

// TestFilterMatchesFrozenAdaptSize: a filter-mode pipeline with only the
// size scorer and probabilistic admission reproduces a tuning-frozen
// AdaptSize request-for-request. The pipeline seed is offset by 1009 to
// match AdaptSize's internal PRNG derivation.
func TestFilterMatchesFrozenAdaptSize(t *testing.T) {
	tr := testTrace(t, 12)
	const capBytes = 300_000
	const seed = 4

	ads := admission.NewAdaptSize(capBytes, seed)
	ads.Interval = 1 << 30 // freeze: c never tunes within the test horizon
	filt, err := NewFilter("AdaptSize", capBytes, -1, Config{
		Size: 1, Seed: seed + 1009, C: float64(capBytes) / 100, Tune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range tr.Requests {
		ah := ads.Access(req)
		fh := filt.Access(req)
		if ah != fh {
			t.Fatalf("request %d: AdaptSize hit=%v, filter hit=%v", i, ah, fh)
		}
	}
	if ads.Used() != filt.Used() {
		t.Fatalf("Used: AdaptSize %d, filter %d", ads.Used(), filt.Used())
	}
}

// TestPipelineResetReplaysBitForBit: a full five-scorer mix replays the
// same hit sequence after Reset — the determinism contract every policy
// in the repository honours.
func TestPipelineResetReplaysBitForBit(t *testing.T) {
	tr := testTrace(t, 13)
	p, err := FromSpec("scorer:zro=0.4,size=0.2,freq=0.2,ghost=0.1,reuse=0.1", 200_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		out := make([]bool, len(tr.Requests))
		for i, req := range tr.Requests {
			out[i] = p.Access(req)
		}
		return out
	}
	first := run()
	p.(cache.Resetter).Reset()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: first run hit=%v, replay hit=%v", i, first[i], second[i])
		}
	}
}

// TestFilterModeBasics: deterministic theta admits small objects and
// rejects large ones under a size-only mix.
func TestFilterModeBasics(t *testing.T) {
	p, err := FromSpec("scorer:size=1,mode=filter,theta=0.5,c=1000", 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := p.(*FilterCache)
	f.Access(cache.Request{Time: 0, Key: 1, Size: 100})    // e^{-0.1} ≈ 0.90 ≥ θ
	f.Access(cache.Request{Time: 1, Key: 2, Size: 10_000}) // e^{-10} ≈ 0  < θ
	if !f.Access(cache.Request{Time: 2, Key: 1, Size: 100}) {
		t.Fatal("small object should have been admitted")
	}
	if f.Access(cache.Request{Time: 3, Key: 2, Size: 10_000}) {
		t.Fatal("large object should have been rejected")
	}
	if !f.Remove(1) {
		t.Fatal("Remove of resident key reported false")
	}
	if f.Access(cache.Request{Time: 4, Key: 1, Size: 100}) {
		t.Fatal("removed key still hits")
	}
}

// TestTuningMovesWeights: with tuning on and a workload where small
// objects reuse and large ones never do, the mixer must move mass
// between scorers while staying on the simplex.
func TestTuningMovesWeights(t *testing.T) {
	p, err := NewPipeline(100_000, Config{
		Size: 1, Freq: 1, Seed: 1, Interval: 1_000, Tune: true, C: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	qc := cache.NewQueueCache("mix", 100_000, p)
	// Small hot set + large one-hit wonders: reuse evidence favours the
	// size scorer.
	for i := 0; i < 30_000; i++ {
		if i%3 == 0 {
			qc.Access(cache.Request{Time: int64(i), Key: uint64(i), Size: 20_000})
		} else {
			qc.Access(cache.Request{Time: int64(i), Key: uint64(i % 8), Size: 500})
		}
	}
	w := p.Weights()
	if len(w) != 2 {
		t.Fatalf("want 2 weights, got %v", w)
	}
	sum := w[0] + w[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights off the simplex: %v", w)
	}
	if w[0] == 0.5 && w[1] == 0.5 {
		t.Fatal("tuning never moved the weights")
	}
}

func TestSpecParsing(t *testing.T) {
	if !IsSpec("SCORER:zro=1") || !IsSpec("scorer:size") || IsSpec("SCIP") {
		t.Fatal("IsSpec prefix detection wrong")
	}
	cfg, mode, theta, err := ParseSpec("scorer:zro=1,size=0.5,mode=filter,theta=0.8,tune=off,interval=9000,name=X")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ZRO != 1 || cfg.Size != 0.5 || mode != "filter" || theta != 0.8 || cfg.Tune || cfg.Interval != 9000 || cfg.Name != "X" {
		t.Fatalf("parsed %+v mode=%q theta=%v", cfg, mode, theta)
	}
	// Bare scorer name means weight 1; defaults: placement, θ=-1, tune on.
	cfg, mode, theta, err = ParseSpec("scorer:freq")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Freq != 1 || mode != "placement" || theta != -1 || !cfg.Tune {
		t.Fatalf("parsed %+v mode=%q theta=%v", cfg, mode, theta)
	}
	for _, bad := range []string{
		"scorer:", "scorer:bogus=1", "scorer:zro=x", "scorer:zro=1,mode=nope",
		"scorer:zro=1,tune=maybe", "SCIP",
	} {
		if _, _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestPipelineName: derived and overridden display names.
func TestPipelineName(t *testing.T) {
	p, err := NewPipeline(10_000, Config{Size: 1, Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "MIX(size+freq)" {
		t.Fatalf("derived name = %q", p.Name())
	}
	pol, err := FromSpec("scorer:ghost=1,name=GhostOnly", 10_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "GhostOnly" {
		t.Fatalf("overridden name = %q", pol.Name())
	}
}
