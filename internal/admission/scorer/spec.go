package scorer

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/scip-cache/scip/internal/cache"
)

// SpecPrefix marks a policy string as a scorer-pipeline spec.
const SpecPrefix = "scorer:"

// IsSpec reports whether the policy string is a scorer spec
// (case-insensitive prefix match, so CLIs that upper-case policy names
// can test before normalising).
func IsSpec(policy string) bool {
	return len(policy) >= len(SpecPrefix) && strings.EqualFold(policy[:len(SpecPrefix)], SpecPrefix)
}

// ParseSpec parses a "scorer:" policy spec into a Config plus the mode
// fields that sit outside it. The grammar is a comma-separated list of
// key=value pairs after the prefix:
//
//	scorer:zro=1,size=0.5,freq=0.3,ghost=0.2,reuse=0.4,
//	       mode=placement|filter,theta=0.8,tune=on|off,
//	       interval=50000,c=8192,ghostfrac=0.5,name=MyMix
//
// Scorer keys give initial mixer weights (at least one must be
// positive). mode defaults to placement; theta (filter mode only)
// defaults to -1, the probabilistic score >= u rule; tune defaults to
// on. Seed and capacity are runtime inputs, not spec fields.
func ParseSpec(spec string) (cfg Config, mode string, theta float64, err error) {
	if !IsSpec(spec) {
		return cfg, "", 0, fmt.Errorf("scorer: spec %q lacks the %q prefix", spec, SpecPrefix)
	}
	mode, theta = "placement", -1
	cfg.Tune = true
	for _, kv := range strings.Split(spec[len(SpecPrefix):], ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			// A bare scorer name means weight 1.
			k, v = kv, "1"
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		num := func() (float64, error) {
			f, ferr := strconv.ParseFloat(v, 64)
			if ferr != nil {
				return 0, fmt.Errorf("scorer: bad value %q for %q in spec %q", v, k, spec)
			}
			return f, nil
		}
		switch k {
		case "zro":
			cfg.ZRO, err = num()
		case "size":
			cfg.Size, err = num()
		case "freq":
			cfg.Freq, err = num()
		case "ghost":
			cfg.Ghost, err = num()
		case "reuse":
			cfg.Reuse, err = num()
		case "theta":
			theta, err = num()
		case "c":
			cfg.C, err = num()
		case "ghostfrac":
			cfg.GhostFrac, err = num()
		case "interval":
			var f float64
			f, err = num()
			cfg.Interval = int(f)
		case "mode":
			mode = strings.ToLower(v)
			if mode != "placement" && mode != "filter" {
				err = fmt.Errorf("scorer: unknown mode %q in spec %q", v, spec)
			}
		case "tune":
			switch strings.ToLower(v) {
			case "on", "true", "1":
				cfg.Tune = true
			case "off", "false", "0":
				cfg.Tune = false
			default:
				err = fmt.Errorf("scorer: bad tune value %q in spec %q", v, spec)
			}
		case "name":
			cfg.Name = v
		default:
			err = fmt.Errorf("scorer: unknown key %q in spec %q", k, spec)
		}
		if err != nil {
			return cfg, "", 0, err
		}
	}
	if cfg.ZRO <= 0 && cfg.Size <= 0 && cfg.Freq <= 0 && cfg.Ghost <= 0 && cfg.Reuse <= 0 {
		return cfg, "", 0, fmt.Errorf("scorer: spec %q selects no scorers", spec)
	}
	return cfg, mode, theta, nil
}

// FromSpec builds the cache.Policy a "scorer:" spec describes. The
// policy's display name defaults to the spec string itself so experiment
// tables identify the exact mix.
func FromSpec(spec string, capBytes, seed int64) (cache.Policy, error) {
	cfg, mode, theta, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	name := cfg.Name
	if name == "" {
		name = spec
	}
	if mode == "filter" {
		f, ferr := NewFilter(name, capBytes, theta, cfg)
		if ferr != nil {
			return nil, ferr
		}
		return f, nil
	}
	c, cerr := NewCache(name, capBytes, cfg)
	if cerr != nil {
		return nil, cerr
	}
	return c, nil
}
