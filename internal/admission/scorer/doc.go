// Package scorer decomposes cache admission into independent [0, 1]
// scorers — ZRO likelihood (SCIP's learned bimodal weight), size
// (AdaptSize's e^{−size/c}), frequency (the TinyLFU count-min sketch),
// recency (ghost-list re-reference) and reuse (an online per-size-class
// ZRO estimate) — combined by a weighted mixer whose weights are tuned
// online by the same multiplicative-weights machinery SCIP uses for its
// single bimodal probability (mab.MultiExpert + mab.AdaptiveRate).
//
// A Pipeline is a cache.InsertionPolicy: in placement mode it drives a
// cache.QueueCache, deciding MRU vs LRU placement from the mixed score.
// In filter mode a FilterCache gates admission into a plain-LRU inner
// cache, either deterministically (score ≥ θ) or probabilistically
// (score ≥ u). Both modes are selectable from the CLIs via the
// "scorer:" policy spec (see FromSpec).
//
// Monolith equivalence: a pipeline configured with only the zro scorer
// reproduces the monolithic SCIP policy byte-identically — the embedded
// SCIP exposes its probability and its PRNG separately (InsertScore /
// Uniform), a single-scorer mixer weight is exactly 1.0, and the
// decision predicate (score > u, one draw per non-forced decision)
// matches TwoExpert.Select. The committed figure goldens pin this
// equivalence in internal/exp. Likewise a filter-mode pipeline with only
// the size scorer reproduces a frozen AdaptSize admission stream.
package scorer
