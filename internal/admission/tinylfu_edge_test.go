package admission

// Edge-behaviour coverage for TinyLFU (issue 7, satellite 4): sketch
// aging at the exact sample-window boundary, and the admit duel with an
// empty main region / a candidate larger than cap − windowCap. The
// structural invariants checked after every scenario are the absence of
// index leaks (every indexed entry is on exactly one queue) and of
// used-bytes drift (queue byte accounting matches the entries).

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
)

// checkTinyLFU walks both queues and cross-checks them against the index
// and the byte accounting.
func checkTinyLFU(t *testing.T, tl *TinyLFU) {
	t.Helper()
	count := 0
	var bytes int64
	for _, q := range []*cache.Queue{&tl.window, &tl.main} {
		for h := q.Front(); h != cache.None; h = q.Next(h) {
			count++
			e := q.At(h)
			bytes += e.Size
			if tl.index.Get(e.Key) != h {
				t.Fatalf("queued entry %d missing from index", e.Key)
			}
		}
	}
	if count != tl.index.Len() {
		t.Fatalf("index leak: %d queued entries vs %d indexed", count, tl.index.Len())
	}
	if bytes != tl.Used() {
		t.Fatalf("used-bytes drift: entries sum to %d, Used() = %d", bytes, tl.Used())
	}
	if tl.Used() > tl.cap {
		t.Fatalf("over capacity: %d > %d", tl.Used(), tl.cap)
	}
}

// TestSketchAgingBoundary pins the aging point: no decay at window−1
// samples, halving (counters and sample count) at exactly window.
func TestSketchAgingBoundary(t *testing.T) {
	s := NewSketch(256)
	for i := 0; i < 20; i++ {
		s.Add(42)
	}
	if got := s.Estimate(42); got != 15 {
		t.Fatalf("estimate = %d, want counter capped at 15", got)
	}
	for s.Samples() < s.Window()-1 {
		s.Add(uint64(1_000_000 + s.Samples()))
	}
	if got := s.Estimate(42); got != 15 {
		t.Fatalf("estimate decayed to %d before the window boundary", got)
	}
	s.Add(7) // the window-th sample fires the aging halving
	if got, want := s.Samples(), s.Window()/2; got != want {
		t.Fatalf("samples after aging = %d, want %d", got, want)
	}
	if got := s.Estimate(42); got != 7 {
		t.Fatalf("hot-key estimate after halving = %d, want 7", got)
	}
}

// TestTinyLFUAdmitEmptyMain: a candidate graduating into an empty main
// region skips the duel entirely — there is no victim to duel — and must
// be admitted even when it alone exceeds cap − windowCap.
func TestTinyLFUAdmitEmptyMain(t *testing.T) {
	tl := NewTinyLFU(20_000) // windowCap = 4096
	tl.Access(req(0, 1, 19_000))
	h := tl.index.Get(1)
	if h == cache.None || tl.arena.At(h).Class != tlfuMain {
		t.Fatal("lone oversized candidate should be admitted into empty main")
	}
	checkTinyLFU(t, tl)
}

// TestTinyLFUOversizedWinner: a main resident larger than cap − windowCap
// leaves no room for later window arrivals, so the next insertion evicts
// it straight back out. The wasted admission is accepted behaviour; the
// invariant under test is that the push/re-evict cycle leaks nothing.
func TestTinyLFUOversizedWinner(t *testing.T) {
	tl := NewTinyLFU(20_000)
	tl.Access(req(0, 1, 19_000)) // into main, per TestTinyLFUAdmitEmptyMain
	tl.Access(req(1, 2, 1_500))  // pushes Used to 20_500: the giant is evicted
	if tl.index.Get(1) != cache.None {
		t.Fatal("oversized main resident should have been evicted to fit the new arrival")
	}
	if tl.index.Get(2) == cache.None {
		t.Fatal("new arrival should be resident")
	}
	checkTinyLFU(t, tl)
}

// TestTinyLFUOversizedDuelLoss: an oversized candidate that loses the
// sketch duel against the main victim is dropped cleanly — no index
// entry, no byte accounting residue.
func TestTinyLFUOversizedDuelLoss(t *testing.T) {
	tl := NewTinyLFU(20_000)
	// Warm key 1's sketch estimate well above any newcomer's, then land
	// it in main (empty-main admission).
	for i := 0; i < 10; i++ {
		tl.Access(req(int64(i), 1, 3_000))
	}
	if tl.index.Get(1) == cache.None {
		t.Fatal("setup: warm key should be resident")
	}
	// Graduate it to main by overflowing the window with a throwaway.
	tl.Access(req(20, 2, 3_000))
	if h := tl.index.Get(1); h == cache.None || tl.arena.At(h).Class != tlfuMain {
		t.Fatal("setup: warm key should have graduated to main")
	}
	// A cold oversized candidate must lose the duel against the warm
	// victim and vanish without residue.
	tl.Access(req(30, 3, 19_000))
	if tl.index.Get(3) != cache.None {
		t.Fatal("cold oversized candidate should have lost the duel")
	}
	if tl.index.Get(1) == cache.None {
		t.Fatal("warm main resident should have survived the duel")
	}
	checkTinyLFU(t, tl)
}
