package admission

// Sketch is a 4-row count-min sketch with 4-bit conceptual counters
// (stored as int8, halved periodically — TinyLFU's aging). It backs
// TinyLFU's admission duel and is exported so the scorer pipeline's
// frequency scorer can share the exact structure.
type Sketch struct {
	rows    [4][]int8
	mask    uint64
	samples int
	window  int
}

// NewSketch returns a sketch with at least the given number of counters
// per row (rounded up to a power of two). The aging sample window is
// 8 × counters, TinyLFU's W = 8C setting.
func NewSketch(counters int) *Sketch {
	size := 1
	for size < counters {
		size <<= 1
	}
	s := &Sketch{mask: uint64(size - 1), window: counters * 8}
	for i := range s.rows {
		s.rows[i] = make([]int8, size)
	}
	return s
}

func (s *Sketch) idx(row int, key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return (h >> (8 * row)) & s.mask
}

// Add records one access and ages the sketch when the sample window
// fills.
func (s *Sketch) Add(key uint64) {
	for r := range s.rows {
		i := s.idx(r, key)
		if s.rows[r][i] < 15 {
			s.rows[r][i]++
		}
	}
	s.samples++
	if s.samples >= s.window {
		s.samples /= 2
		for r := range s.rows {
			for i := range s.rows[r] {
				s.rows[r][i] /= 2
			}
		}
	}
}

// Estimate returns the minimum counter across rows.
func (s *Sketch) Estimate(key uint64) int {
	est := 16
	for r := range s.rows {
		if v := int(s.rows[r][s.idx(r, key)]); v < est {
			est = v
		}
	}
	return est
}

// Window returns the aging sample window in accesses.
func (s *Sketch) Window() int { return s.window }

// Samples returns the accesses recorded since the last aging halving.
func (s *Sketch) Samples() int { return s.samples }

// Reset zeroes all counters and the sample count.
func (s *Sketch) Reset() {
	s.samples = 0
	for r := range s.rows {
		clear(s.rows[r])
	}
}
