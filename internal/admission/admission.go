package admission

import (
	"math"
	"math/rand"

	"github.com/scip-cache/scip/internal/cache"
)

// ---------------------------------------------------------------------------
// 2Q

// TwoQ is the 2Q algorithm adapted to byte budgets: newly seen objects
// enter the FIFO probation queue A1in; on eviction from A1in their keys
// are remembered in the ghost queue A1out; a miss that hits A1out admits
// the object into the long-term LRU queue Am. Only objects referenced
// again after leaving probation occupy long-term space.
type TwoQ struct {
	// KinFrac is A1in's share of capacity (default 0.25).
	KinFrac float64
	// KoutFrac sizes the A1out ghost as a fraction of capacity
	// (default 0.5).
	KoutFrac float64

	name  string
	cap   int64
	arena cache.Arena
	a1in  cache.Queue
	am    cache.Queue
	a1out *cache.History
	index cache.Index
}

// Entry.Class values for the 2Q queues.
const (
	twoQA1in = 0
	twoQAm   = 1
)

var (
	_ cache.Policy  = (*TwoQ)(nil)
	_ cache.Remover = (*TwoQ)(nil)
)

// NewTwoQ returns a 2Q cache.
func NewTwoQ(capBytes int64) *TwoQ {
	const kin, kout = 0.25, 0.5
	q := &TwoQ{
		KinFrac:  kin,
		KoutFrac: kout,
		name:     "2Q",
		cap:      capBytes,
		a1out:    cache.NewHistory(int64(kout * float64(capBytes))),
	}
	q.a1in = q.arena.NewQueue()
	q.am = q.arena.NewQueue()
	return q
}

// Name implements cache.Policy.
func (q *TwoQ) Name() string { return q.name }

// Capacity implements cache.Policy.
func (q *TwoQ) Capacity() int64 { return q.cap }

// Used implements cache.Policy.
func (q *TwoQ) Used() int64 { return q.a1in.Bytes() + q.am.Bytes() }

// Access implements cache.Policy.
func (q *TwoQ) Access(req cache.Request) bool {
	if h := q.index.Get(req.Key); h != cache.None {
		e := q.arena.At(h)
		e.Hits++
		e.LastAccess = req.Time
		if e.Class == twoQAm {
			q.am.MoveToFront(h)
		}
		// 2Q leaves A1in residents in FIFO order: a burst of correlated
		// references must not promote.
		return true
	}
	if req.Size > q.cap || req.Size <= 0 {
		return false
	}
	h := q.arena.Alloc()
	e := q.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	if _, wasOut := q.ghost().Delete(req.Key); wasOut {
		// Re-referenced after probation: admit to the long-term queue.
		e.Class = twoQAm
		q.am.PushFront(h)
	} else {
		e.Class = twoQA1in
		q.a1in.PushFront(h)
	}
	q.index.Put(req.Key, h)
	q.evictToFit()
	return false
}

// ghost syncs the A1out budget to the live KoutFrac before returning the
// list. KinFrac has always been read live in evictToFit; KoutFrac used to
// be baked in by NewTwoQ, so mutating the exported field was silently
// ignored. Routing every A1out touch through this accessor makes both
// knobs behave the same way.
func (q *TwoQ) ghost() *cache.History {
	if want := int64(q.KoutFrac * float64(q.cap)); want != q.a1out.Capacity() {
		q.a1out.SetCapacity(want)
	}
	return q.a1out
}

func (q *TwoQ) evictToFit() {
	// A1in is a fixed-size probation FIFO: overflow spills into the
	// ghost even while the cache as a whole has room (original 2Q).
	kin := int64(q.KinFrac * float64(q.cap))
	ghost := q.ghost()
	for q.a1in.Bytes() > kin {
		h := q.a1in.Back()
		victim := q.arena.At(h)
		key, size := victim.Key, victim.Size
		q.a1in.Remove(h)
		q.index.Delete(key)
		q.arena.Free(h)
		ghost.Add(key, size, cache.ResInserted)
	}
	for q.Used() > q.cap {
		h := q.am.Back()
		if h == cache.None {
			h = q.a1in.Back()
			victim := q.arena.At(h)
			key, size := victim.Key, victim.Size
			q.a1in.Remove(h)
			q.index.Delete(key)
			q.arena.Free(h)
			ghost.Add(key, size, cache.ResInserted)
			continue
		}
		key := q.arena.At(h).Key
		q.am.Remove(h)
		q.index.Delete(key)
		q.arena.Free(h)
	}
}

// Remove implements cache.Remover. Invalidation is an operator action,
// not an eviction: the victim must not enter the A1out ghost — a later
// re-reference would be admitted straight to Am as if the object had
// proved itself through probation.
func (q *TwoQ) Remove(key uint64) bool {
	h, ok := q.index.Delete(key)
	if !ok {
		return false
	}
	if q.arena.At(h).Class == twoQAm {
		q.am.Remove(h)
	} else {
		q.a1in.Remove(h)
	}
	q.arena.Free(h)
	return true
}

// ---------------------------------------------------------------------------
// TinyLFU

// TinyLFU is the W-TinyLFU cache: a small LRU window in front of a main
// SLRU, with a frequency sketch arbitrating admission from the window
// into the main region — a candidate only displaces the main victim if
// the sketch says it is accessed more often.
type TinyLFU struct {
	name   string
	cap    int64
	arena  cache.Arena
	window cache.Queue // ~1% of capacity
	main   cache.Queue // SLRU approximated as one LRU (protection via admission)
	index  cache.Index
	sk     *Sketch
}

// Entry.Class values for TinyLFU regions.
const (
	tlfuWindow = 0
	tlfuMain   = 1
)

var (
	_ cache.Policy  = (*TinyLFU)(nil)
	_ cache.Remover = (*TinyLFU)(nil)
)

// NewTinyLFU returns a W-TinyLFU cache.
func NewTinyLFU(capBytes int64) *TinyLFU {
	counters := int(capBytes / 4096)
	if counters < 1024 {
		counters = 1024
	}
	t := &TinyLFU{
		name: "TinyLFU",
		cap:  capBytes,
		sk:   NewSketch(counters),
	}
	t.window = t.arena.NewQueue()
	t.main = t.arena.NewQueue()
	return t
}

// Name implements cache.Policy.
func (t *TinyLFU) Name() string { return t.name }

// Capacity implements cache.Policy.
func (t *TinyLFU) Capacity() int64 { return t.cap }

// Used implements cache.Policy.
func (t *TinyLFU) Used() int64 { return t.window.Bytes() + t.main.Bytes() }

func (t *TinyLFU) windowCap() int64 {
	c := t.cap / 100
	if c < 4096 {
		c = 4096
	}
	return c
}

// Access implements cache.Policy.
func (t *TinyLFU) Access(req cache.Request) bool {
	t.sk.Add(req.Key)
	if h := t.index.Get(req.Key); h != cache.None {
		e := t.arena.At(h)
		e.Hits++
		e.LastAccess = req.Time
		if e.Class == tlfuWindow {
			t.window.MoveToFront(h)
		} else {
			t.main.MoveToFront(h)
		}
		return true
	}
	if req.Size > t.cap || req.Size <= 0 {
		return false
	}
	h := t.arena.Alloc()
	e := t.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	e.Class = tlfuWindow
	t.window.PushFront(h)
	t.index.Put(req.Key, h)
	// Window overflow: candidates graduate to main through the filter.
	for t.window.Bytes() > t.windowCap() {
		cand := t.window.Back()
		t.window.Remove(cand)
		t.admit(cand)
	}
	for t.Used() > t.cap {
		victim := t.main.Back()
		if victim == cache.None {
			victim = t.window.Back()
			t.window.Remove(victim)
		} else {
			t.main.Remove(victim)
		}
		t.index.Delete(t.arena.At(victim).Key)
		t.arena.Free(victim)
	}
	return false
}

// admit moves a window candidate into main if the sketch favours it over
// the main victim; otherwise the candidate is dropped.
func (t *TinyLFU) admit(cand cache.Handle) {
	c := t.arena.At(cand)
	for t.main.Bytes()+c.Size > t.cap-t.windowCap() && t.main.Len() > 0 {
		victim := t.main.Back()
		v := t.arena.At(victim)
		if t.sk.Estimate(c.Key) <= t.sk.Estimate(v.Key) {
			// Candidate loses the duel: drop it.
			t.index.Delete(c.Key)
			t.arena.Free(cand)
			return
		}
		t.main.Remove(victim)
		t.index.Delete(v.Key)
		t.arena.Free(victim)
	}
	c.Class = tlfuMain
	t.main.PushFront(cand)
}

// Remove implements cache.Remover. The frequency sketch is left alone:
// invalidation says nothing about the object's popularity, and decaying
// its counters would handicap the object in a future admission duel.
func (t *TinyLFU) Remove(key uint64) bool {
	h, ok := t.index.Delete(key)
	if !ok {
		return false
	}
	if t.arena.At(h).Class == tlfuMain {
		t.main.Remove(h)
	} else {
		t.window.Remove(h)
	}
	t.arena.Free(h)
	return true
}

// ---------------------------------------------------------------------------
// AdaptSize

// AdaptSize admits a missing object with probability e^{−size/c} and
// tunes the size parameter c to maximise the hit rate. The original
// derives the optimal c from a Markov model over a request window; this
// implementation hill-climbs c on the measured interval hit rate (the
// same controller style as SCIP's λ), which the AdaptSize paper reports
// as the natural greedy alternative.
type AdaptSize struct {
	// Interval is the tuning window in requests (default 1<<15).
	Interval int

	name     string
	inner    *cache.QueueCache
	rng      *rand.Rand
	c        float64
	dir      float64
	reqs     int
	hits     int
	prevRate float64
}

var (
	_ cache.Policy  = (*AdaptSize)(nil)
	_ cache.Remover = (*AdaptSize)(nil)
)

// NewAdaptSize returns an AdaptSize-filtered LRU cache.
func NewAdaptSize(capBytes int64, seed int64) *AdaptSize {
	return &AdaptSize{
		Interval: 1 << 15,
		name:     "AdaptSize",
		inner:    cache.NewLRU(capBytes),
		rng:      rand.New(rand.NewSource(seed + 1009)),
		c:        float64(capBytes) / 100,
		dir:      1.5,
	}
}

// Name implements cache.Policy.
func (a *AdaptSize) Name() string { return a.name }

// Capacity implements cache.Policy.
func (a *AdaptSize) Capacity() int64 { return a.inner.Capacity() }

// Used implements cache.Policy.
func (a *AdaptSize) Used() int64 { return a.inner.Used() }

// C exposes the admission size parameter for tests.
func (a *AdaptSize) C() float64 { return a.c }

// LastIntervalRate exposes the hit rate of the last completed tuning
// interval for tests and diagnostics.
func (a *AdaptSize) LastIntervalRate() float64 { return a.prevRate }

// Access implements cache.Policy. The request is classified (and its hit
// counted) before any boundary tune() fires: each interval's rate must
// divide exactly Interval classified requests by Interval, with the
// boundary request's own outcome included rather than leaking into the
// next window.
func (a *AdaptSize) Access(req cache.Request) bool {
	a.reqs++
	hit := a.inner.Contains(req.Key)
	if hit {
		a.hits++
		a.inner.Access(req)
	} else if math.Exp(-float64(req.Size)/a.c) >= a.rng.Float64() {
		// Admission filter: large objects are admitted with exponentially
		// decreasing probability.
		a.inner.Access(req)
	}
	if a.reqs%a.Interval == 0 {
		a.tune()
	}
	return hit
}

// Remove implements cache.Remover by delegating to the inner LRU, whose
// Remove already carries the required semantics: no eviction counter, no
// learning signal. The admission tuning state (c, interval counters) is
// untouched — invalidation is not evidence about object sizes.
func (a *AdaptSize) Remove(key uint64) bool {
	return a.inner.Remove(key)
}

// tune hill-climbs c on the interval hit rate.
func (a *AdaptSize) tune() {
	rate := float64(a.hits) / float64(a.Interval)
	a.hits = 0
	if rate < a.prevRate {
		// Last move hurt: reverse direction.
		a.dir = 1 / a.dir
	}
	a.prevRate = rate
	a.c *= a.dir
	lo := 1024.0
	hi := float64(a.inner.Capacity())
	if a.c < lo {
		a.c = lo
		a.dir = 1.5
	}
	if a.c > hi {
		a.c = hi
		a.dir = 1 / 1.5
	}
}
