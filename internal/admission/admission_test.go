package admission

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
)

func req(t int64, key uint64, size int64) cache.Request {
	return cache.Request{Time: t, Key: key, Size: size}
}

func builders(capBytes int64) map[string]func() cache.Policy {
	return map[string]func() cache.Policy{
		"2Q":        func() cache.Policy { return NewTwoQ(capBytes) },
		"TinyLFU":   func() cache.Policy { return NewTinyLFU(capBytes) },
		"AdaptSize": func() cache.Policy { return NewAdaptSize(capBytes, 1) },
	}
}

func TestAllAdmissionPoliciesInvariants(t *testing.T) {
	capBytes := int64(300_000)
	tr, err := gen.Generate(gen.Config{
		Name: "a", Seed: 5,
		Requests:    60_000,
		CatalogSize: 1000,
		ZipfAlpha:   0.9,
		OneHitFrac:  0.3,
		EchoProb:    0.2, EchoDelay: 60, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range builders(capBytes) {
		p := build()
		hits := 0
		for i, r := range tr.Requests {
			if p.Access(r) {
				hits++
			}
			if p.Used() > p.Capacity() {
				t.Fatalf("%s: capacity exceeded at %d", name, i)
			}
		}
		if hits == 0 {
			t.Errorf("%s: no hits", name)
		}
		// Oversized bypass.
		p2 := build()
		if p2.Access(req(0, 9, capBytes+1)) {
			t.Errorf("%s: oversized hit", name)
		}
	}
}

func TestTwoQProbationAndPromotion(t *testing.T) {
	q := NewTwoQ(10_000)
	q.Access(req(0, 1, 100))
	class := func(key uint64) int32 {
		h := q.index.Get(key)
		if h == cache.None {
			t.Fatalf("key %d not resident", key)
		}
		return q.arena.At(h).Class
	}
	if class(1) != twoQA1in {
		t.Fatal("new object should enter A1in")
	}
	// A hit while in probation must NOT promote (2Q's correlated-
	// reference rule).
	q.Access(req(1, 1, 100))
	if class(1) != twoQA1in {
		t.Fatal("probation hit must not promote")
	}
	// Push object 1 out of probation into the ghost, then re-reference.
	for k := uint64(2); k < 40; k++ {
		q.Access(req(int64(k), k, 100))
	}
	if q.index.Get(1) != cache.None {
		t.Fatal("object 1 should have left probation")
	}
	q.Access(req(100, 1, 100))
	if class(1) != twoQAm {
		t.Fatal("ghost re-reference should admit to Am")
	}
}

func TestSketchCountsAndAges(t *testing.T) {
	s := NewSketch(1024)
	for i := 0; i < 10; i++ {
		s.Add(42)
	}
	if s.Estimate(42) < 5 {
		t.Fatalf("estimate = %d, want >= 5", s.Estimate(42))
	}
	if s.Estimate(43) > 2 {
		t.Fatalf("cold key estimate = %d", s.Estimate(43))
	}
	// Aging halves counters.
	before := s.Estimate(42)
	for i := 0; i < s.Window(); i++ {
		s.Add(uint64(1000 + i))
	}
	if s.Estimate(42) >= before {
		t.Fatal("aging did not decay the hot key's counter")
	}
}

func TestTinyLFUAdmissionDuel(t *testing.T) {
	tl := NewTinyLFU(100_000)
	// Warm a popular object into main.
	for i := 0; i < 20; i++ {
		tl.Access(req(int64(i), 1, 30_000))
	}
	// Flood with one-hit objects: they must not displace the popular one.
	for k := uint64(100); k < 200; k++ {
		tl.Access(req(int64(k), k, 30_000))
	}
	if !tl.Access(req(999, 1, 30_000)) {
		t.Fatal("popular object displaced by one-hit flood")
	}
}

func TestAdaptSizeFiltersLarge(t *testing.T) {
	a := NewAdaptSize(1_000_000, 2)
	a.c = 1000 // small c: large objects are almost never admitted
	admitted := 0
	for k := uint64(0); k < 200; k++ {
		a.Access(req(int64(k), k, 100_000))
		if a.inner.Contains(k) {
			admitted++
		}
	}
	if admitted > 5 {
		t.Fatalf("large objects admitted %d/200 with tiny c", admitted)
	}
	small := 0
	for k := uint64(1000); k < 1200; k++ {
		a.Access(req(int64(k), k, 10))
		if a.inner.Contains(k) {
			small++
		}
	}
	if small < 190 {
		t.Fatalf("small objects admitted only %d/200", small)
	}
}

func TestAdaptSizeTunes(t *testing.T) {
	a := NewAdaptSize(1_000_000, 3)
	a.Interval = 2000
	c0 := a.C()
	tr, err := gen.Generate(gen.CDNT.Config(0.0005, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		a.Access(r)
	}
	if a.C() == c0 {
		t.Fatal("c never adapted")
	}
	if a.C() < 1024 || a.C() > float64(a.Capacity()) {
		t.Fatalf("c out of bounds: %g", a.C())
	}
}
