package admission

// Regression tests for the admission-layer bug sweep (issue 7). Each
// test fails on the pre-fix code:
//
//   - TwoQ.KoutFrac was baked into the A1out budget at construction, so
//     mutating the exported knob never resized the ghost.
//   - AdaptSize.tune() fired before the boundary request was classified,
//     so each interval divided at most Interval−1 counted hits by
//     Interval and the boundary hit leaked into the next window.
//   - TwoQ/TinyLFU/AdaptSize had no cache.Remover, so scip-serve DELETE
//     answered 501 for every admission policy.

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
)

// TestTwoQKoutFracLive: shrinking KoutFrac to 0 after construction must
// disable the ghost — a probation victim may no longer be remembered, so
// its re-reference goes back to A1in instead of being admitted to Am.
// On the old code the ghost kept its construction-time budget and the
// re-reference was (wrongly) admitted to Am.
func TestTwoQKoutFracLive(t *testing.T) {
	q := NewTwoQ(10_000)
	q.KoutFrac = 0

	q.Access(req(0, 1, 100))
	// Push key 1 out of the probation FIFO (kin = 2500 bytes).
	for k := uint64(2); k < 40; k++ {
		q.Access(req(int64(k), k, 100))
	}
	if q.index.Get(1) != cache.None {
		t.Fatal("setup: object 1 should have left probation")
	}
	q.Access(req(100, 1, 100))
	h := q.index.Get(1)
	if h == cache.None {
		t.Fatal("object 1 should be re-admitted")
	}
	if q.arena.At(h).Class != twoQA1in {
		t.Fatal("KoutFrac=0 must disable the ghost: re-reference should re-enter A1in, not Am")
	}
}

// TestTwoQKoutFracGrowsGhost: raising KoutFrac must widen the ghost's
// budget so more probation victims stay remembered. With the knob dead
// (old code) the budget stays at the construction-time 0.5 × cap.
func TestTwoQKoutFracGrowsGhost(t *testing.T) {
	q := NewTwoQ(10_000)
	q.KoutFrac = 2 // remember 4× the default ghost volume

	// Cycle many distinct objects through probation; the ghost accretes
	// victims until its budget trims the tail.
	for k := uint64(1); k <= 300; k++ {
		q.Access(req(int64(k), k, 100))
	}
	if got, want := q.a1out.Capacity(), int64(20_000); got != want {
		t.Fatalf("ghost capacity = %d, want %d (live KoutFrac)", got, want)
	}
	if q.a1out.Bytes() <= 5_000 {
		t.Fatalf("ghost holds %d bytes; a raised KoutFrac should let it exceed the old 5000-byte budget", q.a1out.Bytes())
	}
}

// TestAdaptSizeIntervalRate pins the corrected interval accounting: with
// Interval=8 and a request stream of 1 distinct miss followed by 7 hits,
// the first completed window's rate must be exactly 7/8. The old code
// tuned before classifying the 8th request, reporting 6/8, and leaked
// the boundary hit into the next window.
func TestAdaptSizeIntervalRate(t *testing.T) {
	a := NewAdaptSize(1_000_000, 1)
	a.Interval = 8
	for i := 0; i < 8; i++ {
		a.Access(req(int64(i), 7, 10)) // tiny object: admitted ~surely on the first miss
	}
	if got, want := a.LastIntervalRate(), 7.0/8; got != want {
		t.Fatalf("first interval rate = %v, want %v (boundary hit must count in its own window)", got, want)
	}
	// The boundary hit must not leak: a second window of 8 fresh misses
	// (never re-accessed) has rate exactly 0.
	for i := 0; i < 8; i++ {
		a.Access(req(int64(100+i), uint64(100+i), 1_000_000_000)) // never admitted, never hit
	}
	if got := a.LastIntervalRate(); got != 0 {
		t.Fatalf("second interval rate = %v, want 0 (no leaked boundary hit)", got)
	}
}

// TestAdmissionRemovers: all three admission policies implement
// cache.Remover; removal makes the key a miss again without disturbing
// learning state.
func TestAdmissionRemovers(t *testing.T) {
	for name, build := range builders(1_000_000) {
		p := build()
		r, ok := p.(cache.Remover)
		if !ok {
			t.Fatalf("%s: does not implement cache.Remover", name)
		}
		if r.Remove(1) {
			t.Fatalf("%s: Remove on empty cache reported true", name)
		}
		p.Access(req(0, 1, 100))
		p.Access(req(1, 1, 100))
		if !p.Access(req(2, 1, 100)) {
			t.Fatalf("%s: setup: key 1 should be a hit", name)
		}
		used := p.Used()
		if !r.Remove(1) {
			t.Fatalf("%s: Remove of resident key reported false", name)
		}
		if got := p.Used(); got != used-100 {
			t.Fatalf("%s: Used = %d after Remove, want %d", name, got, used-100)
		}
		if p.Access(req(3, 1, 100)) {
			t.Fatalf("%s: removed key still hits", name)
		}
		if r.Remove(99) {
			t.Fatalf("%s: Remove of absent key reported true", name)
		}
	}
}

// TestTwoQRemoveSkipsGhost: an invalidated probation object must NOT be
// recorded in A1out — its next access is a cold miss (A1in), not a
// probation graduate (Am).
func TestTwoQRemoveSkipsGhost(t *testing.T) {
	q := NewTwoQ(10_000)
	q.Access(req(0, 1, 100))
	if !q.Remove(1) {
		t.Fatal("Remove of resident key reported false")
	}
	if q.a1out.Contains(1) {
		t.Fatal("invalidation leaked the key into the A1out ghost")
	}
	q.Access(req(1, 1, 100))
	if h := q.index.Get(1); h == cache.None || q.arena.At(h).Class != twoQA1in {
		t.Fatal("re-access after invalidation must re-enter probation, not Am")
	}
}

// TestTinyLFURemoveKeepsSketch: invalidation must not decay the victim's
// frequency estimate — it still deserves to win a later admission duel.
func TestTinyLFURemoveKeepsSketch(t *testing.T) {
	tl := NewTinyLFU(100_000)
	for i := 0; i < 10; i++ {
		tl.Access(req(int64(i), 1, 1000))
	}
	est := tl.sk.Estimate(1)
	if !tl.Remove(1) {
		t.Fatal("Remove of resident key reported false")
	}
	if got := tl.sk.Estimate(1); got != est {
		t.Fatalf("sketch estimate changed on Remove: %d -> %d", est, got)
	}
	if tl.window.Len()+tl.main.Len() != tl.index.Len() {
		t.Fatal("index out of sync with queues after Remove")
	}
}

// TestAdaptSizeRemoveKeepsTuning: invalidation must not perturb the
// admission parameter c or the interval counters.
func TestAdaptSizeRemoveKeepsTuning(t *testing.T) {
	a := NewAdaptSize(1_000_000, 1)
	a.Access(req(0, 1, 10))
	c, reqs, hits := a.c, a.reqs, a.hits
	if !a.Remove(1) {
		t.Fatal("Remove of resident key reported false")
	}
	if a.c != c || a.reqs != reqs || a.hits != hits {
		t.Fatal("Remove perturbed tuning state")
	}
	if a.inner.Contains(1) {
		t.Fatal("key still resident after Remove")
	}
}
