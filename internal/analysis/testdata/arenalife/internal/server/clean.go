package serverfix

import "net/http"

// A header store is fine when a body write follows in the same
// function: net/http serialises the header block during that write,
// while the arena is still live. Purely local uses never escape.

func headerThenBody(w http.ResponseWriter, n int) {
	s := mkArena(n)
	w.Header().Set("X-Size", s)
	w.Write(pool[:1])
}

func localOnly(n int) int {
	s := mkArena(n)
	return len(s)
}
