// Package serverfix exercises the arena-lifetime analyzer: its import
// path ends in internal/server, the only scope where arenalife runs.
// Strings built with unsafe.String over a pooled buffer must not
// outlive the request.
package serverfix

import (
	"net/http"
	"unsafe"
)

type resp struct {
	tag string
}

var pool [32]byte

// mkArena is an itoa-style constructor: its own escaping return carries
// the suppression, and arenalife tracks its callers instead.
func mkArena(n int) string {
	buf := pool[:n]
	return unsafe.String(&buf[0], len(buf)) //scip:arena-ok constructor: arenalife tracks the callers instead
}

func escapes(n int) string {
	s := unsafe.String(&pool[0], n)
	return s // want "arena-backed string escapes via return"
}

func stored(r *resp, n int) {
	s := mkArena(n)
	r.tag = s // want "arena-backed string stored through r.tag outlives the request scope"
}

func headerNoBody(h http.Header, n int) {
	s := mkArena(n)
	h.Set("X-Size", s) // want "arena-backed header value with no body write before return"
}
