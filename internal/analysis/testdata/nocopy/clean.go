package nocopy

import "sync/atomic"

// Pointer-threaded use of a no-copy type: nothing in this file may be
// flagged.
type stats struct {
	hits atomic.Int64
}

func newStats() *stats {
	return &stats{}
}

func bump(s *stats) {
	s.hits.Add(1)
}

func read(s *stats) int64 {
	return s.hits.Load()
}

func total(all []*stats) int64 {
	var sum int64
	for _, s := range all {
		sum += s.hits.Load()
	}
	return sum
}
