// Package nocopy exercises the nocopy analyzer: value copies of structs
// carrying sync or sync/atomic state must produce a diagnostic.
package nocopy

import (
	"sync"
	"sync/atomic"
)

// counters mirrors the repository's padded stats blocks: an atomic
// counter plus cache-line padding.
type counters struct {
	hits atomic.Int64
	_    [56]byte
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func use(c *counters) {}

func assignCopy(c *counters) {
	snapshot := *c // want "assignment copies nocopy\\.counters, which contains sync/atomic\\.Int64"
	use(&snapshot)
}

func argCopy(g guarded) { // want "function takes nocopy\\.guarded by value, which contains sync\\.Mutex"
	_ = g.n
}

func (c counters) value() int { // want "method receives nocopy\\.counters by value"
	return 0
}

func rangeCopy(cs []counters) int {
	n := 0
	for _, c := range cs { // want "range value copies nocopy\\.counters"
		use(&c)
		n++
	}
	return n
}

func returnCopy(g *guarded) guarded {
	return *g // want "return copies nocopy\\.guarded"
}
