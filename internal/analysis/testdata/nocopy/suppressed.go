package nocopy

import "sync"

type settings struct {
	mu    sync.Mutex
	limit int
}

// snapshotSettings shows the sanctioned exception: a justified copy-ok
// comment silences the finding.
func snapshotSettings(s *settings) settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s //scip:copy-ok snapshot taken under the lock; the copy's mutex is never locked
}

// bareCopy lacks a justification, so the finding survives as a
// needs-a-justification diagnostic.
func bareCopy(s *settings) settings {
	//scip:copy-ok
	return *s // want "suppression //scip:copy-ok needs a justification"
}
