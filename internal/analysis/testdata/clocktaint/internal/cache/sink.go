// Package cachefix stands in for a decision-state package: its import
// path ends in internal/cache, which clocktaint treats as a sink — no
// wall-clock-derived value may reach its functions, fields or literals.
package cachefix

// Config is decision state.
type Config struct {
	Deadline int64
	Window   int64
}

// Tune feeds a value into decision state.
func Tune(v int64) int64 { return v * 2 }

// Observe is a method sink.
func (c *Config) Observe(v int64) { c.Window = v }
