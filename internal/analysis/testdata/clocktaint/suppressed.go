package clocktaint

import (
	"time"

	sink "fixture/clocktaint/internal/cache"
)

// A justified //scip:wallclock-ok at the sink line silences the finding
// when the flow is deliberate.

func acceptedFlow() int64 {
	v := time.Now().UnixNano()
	return sink.Tune(v) //scip:wallclock-ok deliberate: seeding the window from boot time is part of the fixture contract
}
