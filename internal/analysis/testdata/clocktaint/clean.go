package clocktaint

import (
	"time"

	sink "fixture/clocktaint/internal/cache"
)

// Untainted values may flow into the sink freely, and a clock read
// sanctioned at the source with a justified //scip:wallclock-ok kills
// the taint for everything derived from it.

func cleanFlow(n int64) int64 {
	return sink.Tune(n + 1)
}

func meteredOnly() int64 {
	start := time.Now()                        //scip:wallclock-ok logging-only timing, never a decision
	elapsed := time.Since(start).Nanoseconds() //scip:wallclock-ok logging-only timing, never a decision
	return sink.Tune(elapsed)
}
