// Package clocktaint exercises the interprocedural wall-clock taint
// analyzer: time.Now/Since-derived values may not reach the sink
// package (import path suffix internal/cache) through any call chain.
package clocktaint

import (
	"time"

	sink "fixture/clocktaint/internal/cache"
)

// now launders a clock read through a helper: the summary marks its
// return as clock-tainted.
func now() int64 { return time.Now().UnixNano() }

func direct() {
	sink.Tune(time.Now().UnixNano()) // want "wall-clock-derived value reaches deterministic state"
}

func throughHelper() {
	v := now()
	sink.Tune(v) // want "wall-clock-derived value reaches deterministic state"
}

// relay's parameter flows to a sink, so its summary carries toSink and
// the diagnostic lands at the tainted call site.
func relay(v int64) { sink.Tune(v) }

func throughParam() {
	relay(now()) // want "wall-clock-derived value reaches deterministic state"
}

func fieldWrite(c *sink.Config) {
	c.Deadline = now() // want "wall-clock-derived value reaches deterministic state"
}

func literal() sink.Config {
	return sink.Config{Deadline: now()} // want "wall-clock-derived value reaches deterministic state"
}

func methodSink(c *sink.Config) {
	d := time.Since(time.Unix(0, 0)).Nanoseconds()
	c.Observe(d) // want "wall-clock-derived value reaches deterministic state"
}
