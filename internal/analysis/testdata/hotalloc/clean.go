package hotalloc

// Clean hot path: arithmetic, stack values, map reads and calls into
// other allocation-free functions stay silent, and a //scip:coldpath
// boundary stops the traversal before an allocating slow path.

//scip:hotpath
func cleanRoot(xs []int, m map[int]int) int {
	total := 0
	for _, x := range xs {
		total += x * 2
	}
	total += m[7]
	v := state{} // by-value struct literal lives on the stack
	total += cleanHelper(total) + v.step()
	if total < 0 {
		total += coldRebuild(len(xs))
	}
	return total
}

func cleanHelper(n int) int { return n + 1 }

func (st state) step() int { return len(st.buf) }

// coldRebuild is an intentionally allocating slow path; the coldpath
// annotation stops the hot-set traversal here.
//
//scip:coldpath rebuild path allocates by design
func coldRebuild(n int) int {
	return len(make([]int, n))
}
