package hotalloc

// Suppression handling: a justified //scip:alloc-ok silences a finding,
// a bare one surfaces as needs-a-justification.

//scip:hotpath
func suppressedRoot(n int) int {
	a := make([]int, n) //scip:alloc-ok warmup buffer, reused afterwards
	//scip:alloc-ok
	b := make([]int, n) // want "suppression //scip:alloc-ok needs a justification"
	return len(a) + len(b)
}
