// Package dep is imported by the hotalloc fixture root so the analyzer
// must follow a cross-package static call edge into it.
package dep

// Alloc is reached from the root package's hot set.
func Alloc(n int) int {
	v := make([]int, n) // want "make allocates .hot via root \\(\\*hotalloc.state\\).Root"
	return len(v)
}
