// Package hotalloc exercises the hot-path allocation analyzer: every
// construct that can heap-allocate must be flagged inside the hot set,
// including transitively reached functions in the same and in imported
// fixture packages.
package hotalloc

import (
	"fixture/hotalloc/dep"
)

// Worker is a policy-like interface so dynamic dispatch is exercised.
type Worker interface{ Work(n int) int }

type state struct {
	w    Worker
	hook func(int)
	buf  []int
	s    string
}

//scip:hotpath
func (st *state) Root(n int) int {
	s := make([]int, n)           // want "make allocates"
	p := new(int)                 // want "new allocates"
	grown := append(s, n)         // want "append may grow its backing array"
	lit := []int{1, 2}            // want "slice literal allocates"
	m := map[int]int{}            // want "map literal allocates"
	e := &state{}                 // want "&composite literal escapes to the heap"
	st.s = st.s + "x"             // want "string concatenation allocates"
	b := []byte(st.s)             // want "string-to-slice conversion copies"
	cl := func() int { return n } // want "func literal allocates a closure"
	go helperClean(n)             // want "go statement allocates a goroutine"
	st.w.Work(n)                  // want "dynamic call \\(hotalloc.Worker.Work\\) cannot be proven allocation-free"
	st.hook(n)                    // want "dynamic call \\(function value st.hook\\) cannot be proven allocation-free"
	var any1 interface{}
	any1 = n // want "assignment boxes a int into interface\\{\\}"
	_ = any1
	return helperAllocates(n) + len(grown) + len(lit) + len(m) + len(b) + *p + e.buf[0] + cl() + dep.Alloc(n) // want "dynamic call \\(function value cl\\) cannot be proven allocation-free"
}

// helperAllocates is hot only transitively, through Root.
func helperAllocates(n int) int {
	v := make([]int, n) // want "make allocates .hot via root \\(\\*hotalloc.state\\).Root"
	return len(v)
}

func helperClean(n int) int { return n * 2 }

//scip:hotpath
func selfAppendIsFine(st *state, n int) {
	st.buf = st.buf[:0]
	st.buf = append(st.buf, n)        // amortised pooled growth: not flagged
	st.buf = append(st.buf[:0], n, n) // resliced self-append: not flagged
}
