// Package maporder exercises the maporder analyzer: every order-sensitive
// effect inside a map range loop must produce a diagnostic anchored at
// the effect itself.
package maporder

import "fmt"

func appendsInMapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "map iteration appends to out"
	}
	return out
}

func printsInMapOrder(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "map iteration calls fmt\\.Println with iteration-dependent arguments"
	}
}

func sendsInMapOrder(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "map iteration sends to channel ch"
	}
}

func concatsInMapOrder(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want "map iteration accumulates into s"
	}
	return s
}

func sumsFloatsInMapOrder(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "map iteration accumulates into total"
	}
	return total
}

// sink is the PR-1 pruneWindow shape: a method mutating ordered outer
// state, called with iteration-derived arguments.
type sink struct {
	vals []int
}

func (s *sink) add(v int) {
	s.vals = append(s.vals, v)
}

func labelsInMapOrder(m map[string]int, s *sink) {
	for _, v := range m {
		s.add(v) // want "map iteration calls s\\.add .* s's state is updated in map order"
	}
}
