package maporder

// Order-independent map loops: nothing in this file may be flagged.

func deleteOnly(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition commutes exactly; order cannot show
	}
	return total
}

func loopLocalAppend(m map[string]int) int {
	n := 0
	for _, v := range m {
		local := make([]int, 0, 2)
		local = append(local, v, v)
		n += len(local)
	}
	return n
}

func writeBack(m map[string]int) {
	for k, v := range m {
		m[k] = v * 2
	}
}
