package maporder

import "sort"

// collectThenSort is the approved idiom: the accumulator is re-sorted by
// a total order immediately after the loop, so a justified ordered-ok
// suppression on the append silences the finding. The suppression covers
// only that statement — any other order-sensitive effect added to the
// loop is still reported (see stillCaught).
func collectThenSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //scip:ordered-ok out is sorted immediately below, erasing map order
	}
	sort.Ints(out)
	return out
}

// stillCaught shows that a suppressed effect does not blanket the loop:
// the second accumulator has no suppression and must be reported.
func stillCaught(m map[string]int) ([]int, string) {
	var out []int
	var joined string
	for k, v := range m {
		joined += k          // want "map iteration accumulates into joined"
		out = append(out, v) //scip:ordered-ok out is sorted immediately below, erasing map order
	}
	sort.Ints(out)
	return out, joined
}

// bareSuppression lacks a justification, so the finding is converted
// into a needs-a-justification diagnostic instead of being silenced.
func bareSuppression(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//scip:ordered-ok
		out = append(out, v) // want "suppression //scip:ordered-ok needs a justification"
	}
	return out
}
