package guardedby

// Properly locked accesses, deferred unlocks, the unlock-then-return
// early exit, and //scip:locked call sites under a held lock are all
// accepted.

func lockedWrite(s *S) {
	s.mu.Lock()
	s.n = 1
	s.mu.Unlock()
}

func deferredUnlock(s *S) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

func earlyExit(s *S, quick bool) int {
	s.mu.Lock()
	if quick {
		v := s.n
		s.mu.Unlock()
		return v
	}
	s.n = 7
	s.mu.Unlock()
	return 0
}

func rlockedRead(r *R) int {
	r.mu.RLock()
	v := r.v
	r.mu.RUnlock()
	return v
}

func callUnderLock(s *S) {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

//scip:locked mu
func (s *S) doubleLocked() {
	s.n = 9        // own accesses accepted: callers hold mu
	s.bumpLocked() // locked-to-locked call accepted
}
