package guardedby

// Construction-time access before the value is shared is declared with
// a justified //scip:lock-ok.

func newS() *S {
	s := &S{}
	s.n = 42 //scip:lock-ok construction: s is not yet shared with any other goroutine
	return s
}
