// Package guardedby exercises the lock-discipline analyzer: fields
// annotated //scip:guardedby <field> may only be touched while the
// named sibling mutex is provably held lexically.
package guardedby

import "sync"

type S struct {
	mu sync.Mutex
	n  int //scip:guardedby mu
}

type R struct {
	mu sync.RWMutex
	v  int //scip:guardedby mu
}

type Bad struct {
	lock int
	//scip:guardedby lock
	x int // want "//scip:guardedby lock: lock is not a sync.Mutex/RWMutex field of Bad"
}

func unlockedRead(s *S) int {
	return s.n // want "read of S.n without holding mu"
}

func unlockedWrite(s *S) {
	s.n = 1 // want "write of S.n without holding mu"
}

func afterUnlock(s *S) {
	s.mu.Lock()
	s.n = 2
	s.mu.Unlock()
	s.n = 3 // want "write of S.n without holding mu"
}

func writeUnderRLock(r *R) {
	r.mu.RLock()
	r.v = 3 // want "write of R.v without holding mu .write lock; RLock only covers reads."
	r.mu.RUnlock()
}

//scip:locked mu
func (s *S) bumpLocked() { s.n++ }

func callWithoutLock(s *S) {
	s.bumpLocked() // want "requires mu held \\(//scip:locked\\)"
}
