// Package atomicmix exercises the atomicmix analyzer: a variable passed
// to sync/atomic must never also be read or written plainly.
package atomicmix

import "sync/atomic"

type stats struct {
	ops int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.ops, 1)
}

func (s *stats) read() int64 {
	return s.ops // want "plain access to ops, which is accessed atomically at"
}

func (s *stats) reset() {
	s.ops = 0 // want "plain access to ops"
}

var hits uint64

func recordHit() {
	atomic.AddUint64(&hits, 1)
}

func hitCount() uint64 {
	return hits // want "plain access to hits"
}
