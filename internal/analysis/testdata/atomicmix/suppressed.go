package atomicmix

import "sync/atomic"

type meter struct {
	count int64
}

func (m *meter) add() {
	atomic.AddInt64(&m.count, 1)
}

// reset shows the sanctioned exception: a justified atomic-ok comment
// silences the finding.
func (m *meter) reset() {
	m.count = 0 //scip:atomic-ok called during single-threaded setup, before any goroutine starts
}

// drain lacks a justification, so the finding survives as a
// needs-a-justification diagnostic.
func (m *meter) drain() int64 {
	//scip:atomic-ok
	return m.count // want "suppression //scip:atomic-ok needs a justification"
}
