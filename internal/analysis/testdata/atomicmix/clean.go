package atomicmix

import "sync/atomic"

// gauge accesses its counter exclusively through sync/atomic: nothing in
// this file may be flagged.
type gauge struct {
	n int64
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.n, 1)
}

func (g *gauge) get() int64 {
	return atomic.LoadInt64(&g.n)
}

func (g *gauge) clear() {
	atomic.StoreInt64(&g.n, 0)
}

// plain is never touched atomically, so its ordinary accesses are fine.
var plain int

func bumpPlain() {
	plain++
}
