// Package detrand exercises the detrand analyzer: ambient randomness,
// hard-coded seeds and wall-clock reads must each produce a diagnostic.
package detrand

import (
	"math/rand"
	"time"
)

func ambientRand() int {
	return rand.Intn(10) // want "global rand\\.Intn: draw from a seed-threaded \\*rand\\.Rand instead"
}

func hardCodedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "rand\\.NewSource with a hard-coded seed"
}

func foldedSeedLiteral() rand.Source {
	return rand.NewSource(6*9 + 12) // want "rand\\.NewSource with a hard-coded seed"
}

func wallClock() time.Time {
	return time.Now() // want "time\\.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time\\.Since reads the wall clock"
}
