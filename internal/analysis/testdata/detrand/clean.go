package detrand

import "math/rand"

// widget threads its seed from configuration: building the RNG from a
// seed variable and drawing from the instance is the approved pattern,
// so nothing in this file may be flagged.
type widget struct {
	rng *rand.Rand
}

func newWidget(seed int64) *widget {
	return &widget{rng: rand.New(rand.NewSource(seed))}
}

func (w *widget) draw() float64 {
	return w.rng.Float64()
}

func (w *widget) pick(n int) int {
	return w.rng.Intn(n)
}
