package detrand

import (
	"math/rand"
	"time"
)

// metered shows the sanctioned wall-clock exception: a justified
// //scip:wallclock-ok comment silences the finding entirely.
func metered(f func()) time.Duration {
	start := time.Now() //scip:wallclock-ok metering only: feeds a throughput column, never a decision
	f()
	return time.Since(start) //scip:wallclock-ok metering only: feeds a throughput column, never a decision
}

// fixedProbe shows the rand-ok token on the line above the finding.
func fixedProbe() int {
	//scip:rand-ok fixture-only: demonstrates the rand-ok escape hatch
	return rand.Intn(2)
}

// bareClock shows that a suppression without a justification does not
// silence the finding — it is converted into its own diagnostic.
func bareClock() time.Time {
	//scip:wallclock-ok
	return time.Now() // want "suppression //scip:wallclock-ok needs a justification"
}
