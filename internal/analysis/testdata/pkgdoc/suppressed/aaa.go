//scip:pkgdoc-ok fixture-only: demonstrates the pkgdoc-ok escape hatch
package suppressed

func aaa() int { return 1 }
