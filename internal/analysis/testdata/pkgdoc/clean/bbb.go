package clean

func bbb() int { return aaa() }
