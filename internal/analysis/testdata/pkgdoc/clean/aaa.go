// Package clean demonstrates a documented package: one package comment
// on any file satisfies the check for every file.
package clean

func aaa() int { return 1 }
