package missing

// zzz documents a function, which is not a package comment: the
// diagnostic must anchor at the lexically first file (aaa.go), and only
// there.
func zzz() int { return aaa() }
