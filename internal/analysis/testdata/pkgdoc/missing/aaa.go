package missing // want "package missing has no package comment"

func aaa() int { return 1 }
