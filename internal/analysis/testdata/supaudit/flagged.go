// Package supaudit exercises the suppression audit that VetModule runs
// after the analyzers: a //scip: token no analyzer recognises is a
// finding, and a known suppression that silences nothing is stale.
package supaudit

func unknownToken() int {
	x := 1 /*scip:bogus-ok no analyzer owns this token*/ // want "unknown //scip:bogus-ok"
	return x
}

func staleSuppression() int {
	y := 2 /*scip:alloc-ok justified once, but it silences nothing here*/ // want "stale suppression //scip:alloc-ok"
	return y
}
