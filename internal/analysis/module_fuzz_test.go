package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// FuzzCallGraph throws arbitrary source at the module indexer: whatever
// the parser accepts — including ill-typed programs, which leave holes
// in the types.Info maps exactly the way a broken in-progress tree
// does — must never panic the call-graph builder, the annotation
// parser, the hot-set traversal, or the flow analyzers on top. The
// fuzzed package path ends in internal/server so the path-scoped
// arenalife analyzer is exercised too.
func FuzzCallGraph(f *testing.F) {
	seeds := []string{
		// Simple static calls and a hotpath root.
		`package p

//scip:hotpath
func a() int { return b() }
func b() int { return len(make([]int, 4)) }
`,
		// Interface dispatch and function values.
		`package p

type I interface{ M(int) int }

type s struct{ fn func(int) int }

//scip:hotpath
func dyn(i I, st *s, n int) int { return i.M(n) + st.fn(n) }
`,
		// Mutual recursion: the hot-set BFS must terminate on cycles.
		`package p

//scip:hotpath
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
`,
		// Generics: instantiated calls still resolve to the generic decl.
		`package p

func id[T any](v T) T { return v }

//scip:hotpath
func g() int { return id(7) }
`,
		// Guardedby annotations, lock regions, and a //scip:locked callee.
		`package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int //scip:guardedby mu
}

//scip:locked mu
func (s *S) bump() { s.n++ }

func use(s *S) {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}
`,
		// Clock reads and unsafe arena strings (imports unresolved under
		// the nil importer: the analyzers must tolerate missing type info).
		`package p

import (
	"time"
	"unsafe"
)

var buf [8]byte

func now() int64 { return time.Now().UnixNano() }
func arena() string { return unsafe.String(&buf[0], 8) }
`,
		// Methods without bodies, blank names, odd-but-parseable shapes.
		`package p

type T struct{}

func (T) m()
func _() {}
var x = func() {}
`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Error: func(error) {}} // keep whatever checks
		tpkg, _ := conf.Check("fuzz/internal/server", fset, []*ast.File{file}, info)
		if tpkg == nil {
			t.Skip()
		}
		pkg := &Package{
			Path:  "fuzz/internal/server",
			Dir:   ".",
			Fset:  fset,
			Files: []*ast.File{file},
			Types: tpkg,
			Info:  info,
		}
		mod := NewModule([]*Package{pkg})
		mod.HotSet()
		VetModule(Analyzers(), mod) // diagnostics are fine; panics are not
	})
}
