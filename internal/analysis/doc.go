// Package analysis is a from-scratch static-analysis framework on the
// standard library's go/parser and go/types (no golang.org/x/tools
// dependency; the module stays stdlib-only). It exists to mechanically
// enforce the two invariant classes this repository's correctness rests
// on and that have already produced real bugs:
//
//   - bit-for-bit deterministic replay: Algorithms 1+2 sample a seeded
//     MAB, so every source of nondeterminism — ambient RNGs, wall-clock
//     reads, map iteration order feeding ordered state — silently breaks
//     figure reproduction (the PR-1 LRB pruneWindow bug labelled training
//     samples in map order);
//   - lock-free concurrency: the sharded front and its stats blocks rely
//     on cache-line-padded structs and atomic counters that must never be
//     copied or mixed with plain loads and stores (the PR-1 traceCache
//     map race).
//
// The cmd/scip-vet driver loads the module, runs every registered
// analyzer over the requested packages and exits nonzero on any
// diagnostic. Intentional exceptions are declared in the code with a
// //scip:<token> comment carrying a justification; see Analyzer.Suppress
// and DESIGN.md §7 ("Invariants").
package analysis
