package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Clocktaint upgrades detrand from a syntactic ban to interprocedural
// dataflow: a value derived from time.Now/Since/Until — read anywhere in
// the module, including packages where wall-clock reads are legitimate —
// may not flow into the deterministic decision state (policy, admission,
// MAB, LRB; see ClockSinkPaths) through any call chain. The analysis
// computes per-function summaries to a module-wide fixpoint: whether a
// function returns a clock-derived value, and for every parameter
// (receiver included) whether it can reach a sink or the return value.
// Taint is tracked flow-insensitively at variable granularity, which
// over-approximates (a variable once tainted stays tainted) and never
// misses a flow through locals, returns, or call chains.
//
// A clock read whose uses are all metering (latency histograms,
// BENCH.json timings) is declared with a justified //scip:wallclock-ok
// comment; that sanctions the source, so nothing downstream of it is
// tainted. Sinks are (1) arguments passed to functions or interface
// methods declared in a sink package, (2) writes to struct fields
// declared in a sink package, and (3) composite literals of sink-package
// types.
var Clocktaint = &Analyzer{
	Name:     "clocktaint",
	Doc:      "forbid wall-clock-derived values from reaching policy/admission/MAB/LRB state",
	Suppress: []string{"wallclock-ok"},
	Run:      runClocktaint,
}

// clockSummary is one function's taint behaviour, computed to fixpoint.
type clockSummary struct {
	// clockRet: some return value is clock-derived regardless of inputs.
	clockRet bool
	// params holds one flow record per parameter, receiver first.
	params []clockParamFlow
}

type clockParamFlow struct {
	toRet  bool // the parameter can flow into a return value
	toSink bool // the parameter can flow into a sink
}

const clockBit uint64 = 1 // mask bit 0; bit i+1 is parameter i

func runClocktaint(pass *Pass) {
	mod := pass.Mod
	mod.ensureClockSummaries()
	for _, node := range mod.FuncsOf(pass.P) {
		sc := &clockScan{mod: mod, node: node, pass: pass, vars: make(map[*types.Var]uint64)}
		sc.run()
	}
}

// ensureClockSummaries computes every function's clockSummary to a
// module-wide fixpoint (memoised).
func (m *Module) ensureClockSummaries() {
	if m.clockOnce {
		return
	}
	m.clockOnce = true
	for _, node := range m.nodes {
		node.clock = &clockSummary{params: make([]clockParamFlow, len(clockParams(node)))}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range m.nodes {
			sc := &clockScan{mod: m, node: node, vars: make(map[*types.Var]uint64)}
			if sc.run() {
				changed = true
			}
		}
	}
}

// clockParams lists a function's parameter objects, receiver first.
func clockParams(node *FuncNode) []*types.Var {
	sig, _ := node.Fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// clockScan propagates taint through one function body. With pass set it
// reports sink hits; with pass nil it only updates the summary, and
// run() returns whether the summary changed (the fixpoint driver's
// termination condition).
type clockScan struct {
	mod  *Module
	node *FuncNode
	pass *Pass // nil during summary fixpoint
	vars map[*types.Var]uint64
}

func (sc *clockScan) run() bool {
	sum := sc.node.clock
	before := *sum
	beforeParams := append([]clockParamFlow(nil), sum.params...)

	for i, p := range clockParams(sc.node) {
		if i < 63 {
			sc.vars[p] = uint64(1) << uint(i+1)
		}
	}
	// Iterate the body until variable masks stabilise: taint is monotone,
	// so this terminates. Diagnostics are held back until the final sweep
	// (reporting) so each sink hit is reported exactly once.
	pass := sc.pass
	sc.pass = nil
	for {
		h := sc.snapshot()
		ast.Inspect(sc.node.Decl.Body, sc.visit)
		if sc.snapshot() == h {
			break
		}
	}
	if pass != nil {
		sc.pass = pass
		ast.Inspect(sc.node.Decl.Body, sc.visit)
	}
	retMask := sc.returnMask()
	if retMask&clockBit != 0 {
		sum.clockRet = true
	}
	for i := range sum.params {
		if i < 63 && retMask&(uint64(1)<<uint(i+1)) != 0 {
			sum.params[i].toRet = true
		}
	}
	if sum.clockRet != before.clockRet {
		return true
	}
	for i := range sum.params {
		if sum.params[i] != beforeParams[i] {
			return true
		}
	}
	return false
}

// snapshot folds the var masks into a comparable fingerprint: an
// order-independent XOR-sum, so map iteration order cannot affect the
// fixpoint test. Masks only ever gain bits, so equal fingerprints across
// a sweep mean no mask changed.
func (sc *clockScan) snapshot() uint64 {
	var h uint64
	for v, m := range sc.vars {
		h ^= m * (uint64(v.Pos()) | 1)
	}
	return h
}

// visit handles one node during taint propagation.
func (sc *clockScan) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		sc.assign(n)
	case *ast.RangeStmt:
		// k, v := range x: loop variables take the container's taint.
		m := sc.mask(n.X)
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v, ok := sc.varOf(id); ok {
					sc.vars[v] |= m
				}
			}
		}
	case *ast.GenDecl:
		for _, spec := range n.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					if v, ok := sc.varOf(name); ok {
						sc.vars[v] |= sc.mask(vs.Values[i])
					}
				}
			}
		}
	case *ast.CallExpr:
		sc.call(n)
	case *ast.CompositeLit:
		sc.compositeSink(n)
	}
	return true
}

// assign propagates RHS taint to LHS variables and checks field-write
// sinks.
func (sc *clockScan) assign(as *ast.AssignStmt) {
	var masks []uint64
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		m := sc.mask(as.Rhs[0]) // multi-value call: every LHS gets the union
		for range as.Lhs {
			masks = append(masks, m)
		}
	} else {
		for _, r := range as.Rhs {
			masks = append(masks, sc.mask(r))
		}
	}
	for i, lhs := range as.Lhs {
		if i >= len(masks) {
			break
		}
		m := masks[i]
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if v, ok := sc.varOf(lhs); ok {
				sc.vars[v] |= m
			}
		case *ast.SelectorExpr:
			// Writing through a field: if the field lives in a sink
			// package, taint entering it is a finding.
			if fv, ok := sc.fieldOf(lhs); ok && sinkPackage(fv.Pkg()) {
				sc.sinkHit(lhs.Pos(), m, "write to "+fv.Pkg().Name()+"."+fv.Name())
			}
			// Struct fields are not tracked individually: the base
			// variable absorbs the taint so later reads stay tainted.
			if id := baseIdent(lhs); id != nil {
				if v, ok := sc.varOf(id); ok {
					sc.vars[v] |= m
				}
			}
		case *ast.IndexExpr:
			if id := baseIdent(lhs); id != nil {
				if v, ok := sc.varOf(id); ok {
					sc.vars[v] |= m
				}
			}
		}
	}
}

// call checks sink parameters and marks sanctioned sources used.
func (sc *clockScan) call(call *ast.CallExpr) {
	callee := sc.calleeFunc(call)
	if callee == nil {
		return
	}
	var sum *clockSummary
	if node := sc.mod.NodeOf(callee); node != nil {
		sum = node.clock
	}
	calleeSink := callee.Pkg() != nil && sinkPackage(callee.Pkg())
	// Receiver is parameter 0 of a method summary.
	argIdx := 0
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		argIdx = 1
	}
	for i, arg := range call.Args {
		j := argIdx + i
		toSink := calleeSink
		if sum != nil && j < len(sum.params) && sum.params[j].toSink {
			toSink = true
		}
		if !toSink {
			continue
		}
		sc.sinkHit(arg.Pos(), sc.mask(arg), "argument to "+shortFuncName(callee))
	}
}

// compositeSink flags clock taint built directly into a sink-package
// composite literal (e.g. constructing policy config from a clock read).
func (sc *clockScan) compositeSink(lit *ast.CompositeLit) {
	t := sc.node.Pkg.Info.TypeOf(lit)
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !sinkPackage(named.Obj().Pkg()) {
		return
	}
	if named.Obj().Pkg() == sc.node.Fn.Pkg() {
		return // a sink package building its own values is covered by field writes
	}
	for _, el := range lit.Elts {
		e := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		sc.sinkHit(e.Pos(), sc.mask(e), "field of "+named.Obj().Name()+" literal")
	}
}

// sinkHit records taint reaching a sink: the clock bit is a diagnostic,
// parameter bits update the summary (the caller's caller gets the
// diagnostic at its own call site).
func (sc *clockScan) sinkHit(at token.Pos, mask uint64, what string) {
	if mask&clockBit != 0 && sc.pass != nil {
		sc.pass.Reportf(at, "wall-clock-derived value reaches deterministic state (%s)", what)
	}
	sum := sc.node.clock
	for i := range sum.params {
		if i < 63 && mask&(uint64(1)<<uint(i+1)) != 0 {
			sum.params[i].toSink = true
		}
	}
}

// mask computes the taint mask of an expression.
func (sc *clockScan) mask(e ast.Expr) uint64 {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := sc.varOf(e); ok {
			return sc.vars[v]
		}
	case *ast.CallExpr:
		return sc.callMask(e)
	case *ast.BinaryExpr:
		return sc.mask(e.X) | sc.mask(e.Y)
	case *ast.UnaryExpr:
		return sc.mask(e.X)
	case *ast.StarExpr:
		return sc.mask(e.X)
	case *ast.ParenExpr:
		return sc.mask(e.X)
	case *ast.SelectorExpr:
		return sc.mask(e.X)
	case *ast.IndexExpr:
		return sc.mask(e.X)
	case *ast.SliceExpr:
		return sc.mask(e.X)
	case *ast.TypeAssertExpr:
		return sc.mask(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= sc.mask(kv.Value)
			} else {
				m |= sc.mask(el)
			}
		}
		return m
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// callMask computes the taint of a call's result.
func (sc *clockScan) callMask(call *ast.CallExpr) uint64 {
	info := sc.node.Pkg.Info
	fun := unwrapCallFun(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		var m uint64 // conversions and builtins pass taint through
		for _, a := range call.Args {
			m |= sc.mask(a)
		}
		return m
	}
	callee := sc.calleeFunc(call)
	if callee != nil && isClockSource(callee) {
		if sc.mod.sanctioned(sc.node.Pkg, "wallclock-ok", call.Pos()) {
			return 0 // justified metering read: the source is sanctioned
		}
		return clockBit
	}
	var recvMask uint64
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		recvMask = sc.mask(sel.X)
	}
	if callee != nil {
		if node := sc.mod.NodeOf(callee); node != nil && node.clock != nil {
			var m uint64
			if node.clock.clockRet {
				m = clockBit
			}
			argIdx := 0
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if len(node.clock.params) > 0 && node.clock.params[0].toRet {
					m |= recvMask
				}
				argIdx = 1
			}
			for i, a := range call.Args {
				j := argIdx + i
				if j < len(node.clock.params) && node.clock.params[j].toRet {
					m |= sc.mask(a)
				}
			}
			return m
		}
	}
	// External or dynamic call: conservatively union the inputs — a
	// tainted value through math.Max or an interface method stays tainted.
	m := recvMask
	for _, a := range call.Args {
		m |= sc.mask(a)
	}
	return m
}

// returnMask unions every return statement's taint, including named
// result variables at bare returns.
func (sc *clockScan) returnMask() uint64 {
	var m uint64
	results := sc.node.Decl.Type.Results
	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			m |= sc.mask(e)
		}
		if len(ret.Results) == 0 && results != nil {
			for _, f := range results.List {
				for _, name := range f.Names {
					if v, ok := sc.varOf(name); ok {
						m |= sc.vars[v]
					}
				}
			}
		}
		return true
	})
	return m
}

// varOf resolves an identifier to a variable object.
func (sc *clockScan) varOf(id *ast.Ident) (*types.Var, bool) {
	info := sc.node.Pkg.Info
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// fieldOf resolves a selector to the struct field it names.
func (sc *clockScan) fieldOf(sel *ast.SelectorExpr) (*types.Var, bool) {
	info := sc.node.Pkg.Info
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v, true
		}
	}
	return nil, false
}

// calleeFunc resolves a call to its *types.Func when possible: static
// functions, methods, and interface methods (whose declaring package
// identifies the sink).
func (sc *clockScan) calleeFunc(call *ast.CallExpr) *types.Func {
	info := sc.node.Pkg.Info
	switch fun := unwrapCallFun(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isClockSource reports whether fn is a wall-clock read.
func isClockSource(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// sinkPackage reports whether pkg holds deterministic decision state.
func sinkPackage(pkg *types.Package) bool {
	for _, suffix := range ClockSinkPaths {
		if strings.HasSuffix(pkg.Path(), suffix) {
			return true
		}
	}
	return false
}

// derefType strips one pointer layer.
func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
