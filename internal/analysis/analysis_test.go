package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs every analyzer over its testdata package and checks
// the diagnostics against the // want comments. Each fixture package
// carries a flagged file (findings expected), a clean file (silence
// expected) and a suppressed file (justified //scip: comments silence,
// bare ones surface as needs-a-justification).
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{Detrand, "detrand"},
		{Maporder, "maporder"},
		{Nocopy, "nocopy"},
		{Atomicmix, "atomicmix"},
		// pkgdoc is package-scoped, so its three states are three fixture
		// packages instead of three files of one package.
		{Pkgdoc, "pkgdoc/missing"},
		{Pkgdoc, "pkgdoc/clean"},
		{Pkgdoc, "pkgdoc/suppressed"},
		// guardedby works from per-package lexical lock regions, so one
		// package exercises it fully.
		{Guardedby, "guardedby"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			CheckFixture(t, c.analyzer, filepath.Join("testdata", c.dir))
		})
	}
}

// TestModuleFixtures runs the interprocedural analyzers over multi-file
// (and multi-package) fixture trees through the module-wide VetModule
// entry point: cross-package transitive hot paths, taint flows into a
// sink sub-package, arena lifetimes in an internal/server-suffixed
// package, and the suppression audit itself.
func TestModuleFixtures(t *testing.T) {
	cases := []struct {
		analyzers []*Analyzer
		dir       string
	}{
		{[]*Analyzer{Hotalloc}, "hotalloc"},
		{[]*Analyzer{Clocktaint}, "clocktaint"},
		{[]*Analyzer{Arenalife}, "arenalife"},
		// The audit runs after any VetModule invocation; the full analyzer
		// set makes every registered token count as "ran".
		{Analyzers(), "supaudit"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			CheckFixtureModule(t, c.analyzers, filepath.Join("testdata", c.dir))
		})
	}
}

// TestRepoIsClean loads the whole module the way cmd/scip-vet does and
// asserts zero diagnostics: the tree must stay vet-clean, every
// intentional exception must carry a justified suppression comment, and
// no suppression may be stale. The module-wide VetModule entry point
// matters here — the interprocedural analyzers need cross-package call
// edges, and the suppression audit needs the shared used-marking.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	l, err := NewLoader("..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the ./... expansion is broken", len(pkgs))
	}
	for _, d := range VetModule(Analyzers(), NewModule(pkgs)) {
		t.Errorf("%s", d)
	}
}

// TestLoadPrefixPattern pins the "dir/..." expansion `make docs-check`
// relies on: every package under the prefix and nothing outside it.
func TestLoadPrefixPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module subtree")
	}
	l, err := NewLoader("..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the ./internal/... expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		if !strings.Contains(pkg.Path, "/internal/") {
			t.Errorf("pattern ./internal/... matched %s", pkg.Path)
		}
	}
	if _, err := l.Load("./nonexistent/..."); err == nil {
		t.Error("pattern matching no packages should be an error")
	}
}

// TestApplies pins the detrand path scoping: deterministic-replay
// packages are covered, the analysis framework itself is not.
func TestApplies(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{Detrand, "github.com/scip-cache/scip/internal/core", true},
		{Detrand, "github.com/scip-cache/scip/internal/mab", true},
		{Detrand, "github.com/scip-cache/scip/internal/exp", true},
		{Detrand, "github.com/scip-cache/scip/internal/analysis", false},
		{Detrand, "github.com/scip-cache/scip/cmd/scip-vet", false},
		{Maporder, "github.com/scip-cache/scip/internal/analysis", true},
		{Nocopy, "github.com/scip-cache/scip/cmd/scip-vet", true},
		{Atomicmix, "github.com/scip-cache/scip/internal/shard", true},
		{Pkgdoc, "github.com/scip-cache/scip/internal/server", true},
		{Pkgdoc, "github.com/scip-cache/scip/cmd/scip-serve", false},
	}
	for _, c := range cases {
		if got := Applies(c.analyzer, c.path); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
}
