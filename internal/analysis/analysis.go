package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detrand", ...).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Suppress lists the //scip: comment tokens that silence this
	// analyzer's diagnostics (e.g. "ordered-ok"). A suppression comment
	// must carry a justification after the token.
	Suppress []string
	// Run inspects the package and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one type-checked package. Mod is
// the module-wide index (call graph, annotations, summaries) shared by
// every pass of one vet run; per-file analyzers can ignore it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Mod      *Module
	P        *Package

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's file:line: analyzer: message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Run executes the analyzer over pkg (as a one-package module) and
// returns the surviving diagnostics: findings on lines covered by a
// justified suppression comment are dropped, and suppression comments
// without a justification are themselves reported (an exception must say
// why it is safe). Interprocedural analyzers see only pkg-internal call
// edges under Run; use VetModule for the module-wide view.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	return runWith(a, pkg, NewModule([]*Package{pkg}))
}

// runWith executes one analyzer over one package of mod, applying mod's
// shared suppression set for the package.
func runWith(a *Analyzer, pkg *Package, mod *Module) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Mod:      mod,
		P:        pkg,
	}
	a.Run(pass)
	sup := mod.Sups(pkg)
	var out []Diagnostic
	for _, d := range pass.diags {
		if s := sup.match(a, d.Pos); s != nil {
			s.used = true
			if s.justification == "" {
				d.Message = fmt.Sprintf("suppression //scip:%s needs a justification (%s)", s.token, d.Message)
				out = append(out, d)
			}
			continue
		}
		out = append(out, d)
	}
	sortDiags(out)
	return out
}

// RunAll executes every analyzer that applies to pkg (see Applies) and
// merges the diagnostics in file/line order. The package is analyzed as
// a one-package module; the driver and the repo self-vet use VetModule,
// which also audits suppressions.
func RunAll(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	mod := NewModule([]*Package{pkg})
	var out []Diagnostic
	for _, a := range analyzers {
		if !Applies(a, pkg.Path) {
			continue
		}
		out = append(out, runWith(a, pkg, mod)...)
	}
	sortDiags(out)
	return out
}

// AuditName labels the suppression-audit diagnostics (stale and unknown
// //scip: tokens). The audit is not itself suppressible.
const AuditName = "supaudit"

// VetModule is the driver entry point: it runs every applicable analyzer
// over every package of mod, sharing one suppression set per package so
// a comment consumed by any analyzer counts as used, then audits the
// suppressions — a token no analyzer knows is reported as unknown, and a
// known suppression that silenced nothing is reported as stale. The
// diagnostics come back merged in file/line order.
func VetModule(analyzers []*Analyzer, mod *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range mod.Packages {
		for _, a := range analyzers {
			if !Applies(a, pkg.Path) {
				continue
			}
			out = append(out, runWith(a, pkg, mod)...)
		}
	}
	// Audit after every analyzer has run: used-marking must be complete.
	// A token is unknown when NO registered analyzer claims it; it is
	// stale only when its analyzer actually ran this invocation and still
	// consumed nothing (a -run subset must not flag the other analyzers'
	// suppressions).
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		for _, tok := range a.Suppress {
			known[tok] = true
		}
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		for _, tok := range a.Suppress {
			ran[tok] = true
		}
	}
	for _, pkg := range mod.Packages {
		out = append(out, auditSuppressions(pkg, mod.Sups(pkg), known, ran)...)
	}
	sortDiags(out)
	return out
}

// auditSuppressions reports stale and unknown //scip: comments in one
// package. Annotation tokens (hotpath, guardedby, ...) assert invariants
// rather than silencing findings and are exempt from staleness.
func auditSuppressions(pkg *Package, sup suppressionSet, known, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range sup.byFileLine {
		for _, sups := range lines {
			for _, s := range sups {
				if annotationTokens[s.token] {
					continue
				}
				var msg string
				switch {
				case !known[s.token]:
					msg = fmt.Sprintf("unknown //scip:%s: no analyzer recognises this token (known suppressions end in -ok)", s.token)
				case ran[s.token] && !s.used:
					msg = fmt.Sprintf("stale suppression //scip:%s: it no longer silences any finding; delete it", s.token)
				default:
					continue
				}
				//scip:ordered-ok collect-only: diagnostics carry their own position and VetModule sorts the merged output by file/line
				out = append(out, Diagnostic{
					Pos:      token.Position{Filename: s.file, Line: s.line},
					Analyzer: AuditName,
					Message:  msg,
				})
			}
		}
	}
	return out
}

// sortDiags orders diagnostics by file, line, then analyzer name.
func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// suppression is one //scip: comment in a file.
type suppression struct {
	file          string
	line          int
	token         string
	justification string
	used          bool
}

type suppressionSet struct {
	// byFileLine maps file -> line -> suppressions ending on that line.
	byFileLine map[string]map[int][]*suppression
}

// match returns the suppression covering a diagnostic of analyzer a at
// pos: a //scip: comment with one of the analyzer's tokens on the same
// line or the line directly above.
func (s suppressionSet) match(a *Analyzer, pos token.Position) *suppression {
	lines := s.byFileLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, sup := range lines[line] {
			for _, tok := range a.Suppress {
				if sup.token == tok {
					return sup
				}
			}
		}
	}
	return nil
}

// suppressionPrefix introduces an in-code exception to an analyzer.
const suppressionPrefix = "scip:"

// collectSuppressions scans the files' comments for //scip:<token>
// markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	set := suppressionSet{byFileLine: make(map[string]map[int][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressionPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressionPrefix)
				tok, just, _ := strings.Cut(rest, " ")
				if tok == "" {
					continue
				}
				pos := fset.Position(c.End())
				lines := set.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					set.byFileLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &suppression{
					file:          pos.Filename,
					line:          pos.Line,
					token:         tok,
					justification: strings.TrimSpace(just),
				})
			}
		}
	}
	return set
}
