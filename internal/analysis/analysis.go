package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detrand", ...).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Suppress lists the //scip: comment tokens that silence this
	// analyzer's diagnostics (e.g. "ordered-ok"). A suppression comment
	// must carry a justification after the token.
	Suppress []string
	// Run inspects the package and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's file:line: analyzer: message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Run executes the analyzer over pkg and returns the surviving
// diagnostics: findings on lines covered by a justified suppression
// comment are dropped, and suppression comments without a justification
// are themselves reported (an exception must say why it is safe).
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if s := sup.match(a, d.Pos); s != nil {
			s.used = true
			if s.justification == "" {
				d.Message = fmt.Sprintf("suppression //scip:%s needs a justification (%s)", s.token, d.Message)
				out = append(out, d)
			}
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// RunAll executes every analyzer that applies to pkg (see Applies) and
// merges the diagnostics in file/line order.
func RunAll(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if !Applies(a, pkg.Path) {
			continue
		}
		out = append(out, Run(a, pkg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// suppression is one //scip: comment in a file.
type suppression struct {
	file          string
	line          int
	token         string
	justification string
	used          bool
}

type suppressionSet struct {
	// byFileLine maps file -> line -> suppressions ending on that line.
	byFileLine map[string]map[int][]*suppression
}

// match returns the suppression covering a diagnostic of analyzer a at
// pos: a //scip: comment with one of the analyzer's tokens on the same
// line or the line directly above.
func (s suppressionSet) match(a *Analyzer, pos token.Position) *suppression {
	lines := s.byFileLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, sup := range lines[line] {
			for _, tok := range a.Suppress {
				if sup.token == tok {
					return sup
				}
			}
		}
	}
	return nil
}

// suppressionPrefix introduces an in-code exception to an analyzer.
const suppressionPrefix = "scip:"

// collectSuppressions scans the files' comments for //scip:<token>
// markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	set := suppressionSet{byFileLine: make(map[string]map[int][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressionPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressionPrefix)
				tok, just, _ := strings.Cut(rest, " ")
				if tok == "" {
					continue
				}
				pos := fset.Position(c.End())
				lines := set.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					set.byFileLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &suppression{
					file:          pos.Filename,
					line:          pos.Line,
					token:         tok,
					justification: strings.TrimSpace(just),
				})
			}
		}
	}
	return set
}
