package analysis

import (
	"reflect"
	"regexp"
	"strings"
	"testing"
)

func TestParseWant(t *testing.T) {
	cases := []struct {
		text    string
		want    []string
		ok      bool
		wantErr bool
	}{
		{`want "foo"`, []string{"foo"}, true, false},
		{` want "a" "b"`, []string{"a", "b"}, true, false},
		{"want\t\"tabbed\"", []string{"tabbed"}, true, false},
		{`want "escaped \" quote"`, []string{`escaped " quote`}, true, false},
		{`want "rand\\.Intn"`, []string{`rand\.Intn`}, true, false},
		// Not want comments at all.
		{`plain prose`, nil, false, false},
		{`wanted: more caching`, nil, false, false},
		{``, nil, false, false},
		{`//`, nil, false, false},
		// Malformed want comments.
		{`want`, nil, true, true},
		{`want   `, nil, true, true},
		{`want foo`, nil, true, true},
		{`want "unterminated`, nil, true, true},
		{`want "ok" trailing`, nil, true, true},
		{`want "bad[regexp"`, nil, true, true},
		{`want "bad escape \q"`, nil, true, true},
	}
	for _, c := range cases {
		got, ok, err := ParseWant(c.text)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseWant(%q) ok=%v err=%v, want ok=%v err=%v", c.text, ok, err, c.ok, c.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseWant(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

// FuzzParseWant fuzzes the want-comment parser for its three invariants:
// it never panics, ok=false always means no patterns and no error, and
// every pattern returned without error is a compilable regexp from a
// comment that really starts with the want keyword.
func FuzzParseWant(f *testing.F) {
	f.Add(`want "foo"`)
	f.Add(`want "a" "b" "c"`)
	f.Add(` want	"tabs and spaces" `)
	f.Add(`want "escaped \" quote" "second"`)
	f.Add(`wanted prose about caching`)
	f.Add(`want`)
	f.Add(`want "unterminated`)
	f.Add(`want "bad[regexp"`)
	f.Add(`want bare`)
	f.Add(`scip:ordered-ok not a want comment`)
	f.Add("want \"\\x00\"")
	f.Fuzz(func(t *testing.T, text string) {
		pats, ok, err := ParseWant(text)
		if !ok {
			if err != nil {
				t.Fatalf("ok=false with err=%v", err)
			}
			if pats != nil {
				t.Fatalf("ok=false with patterns %q", pats)
			}
			return
		}
		if !strings.HasPrefix(strings.TrimSpace(text), wantPrefix) {
			t.Fatalf("ok=true for %q, which does not start with %q", text, wantPrefix)
		}
		if err != nil {
			if pats != nil {
				t.Fatalf("err=%v with patterns %q", err, pats)
			}
			return
		}
		if len(pats) == 0 {
			t.Fatalf("ok=true, err=nil, but no patterns for %q", text)
		}
		for _, p := range pats {
			if _, cerr := regexp.Compile(p); cerr != nil {
				t.Fatalf("returned uncompilable pattern %q: %v", p, cerr)
			}
		}
	})
}
