package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` loops over maps whose body performs an
// order-sensitive effect: appending to an outer slice, emitting output,
// accumulating into an order-sensitive outer variable (string
// concatenation, floating-point sums), sending on a channel, or calling
// an outer method with iteration-derived arguments. Go randomises map
// iteration order per run, so any such loop makes output differ between
// identical executions — the exact PR-1 bug where LRB's pruneWindow
// labelled window-expired training samples in map order and LRB's miss
// ratio stopped reproducing across processes.
//
// Loops whose effects are provably order-independent (the body re-sorts
// its accumulator by a unique key, for example) are declared with a
// //scip:ordered-ok comment carrying the justification.
var Maporder = &Analyzer{
	Name:     "maporder",
	Doc:      "flag map iteration feeding ordered accumulators or output",
	Suppress: []string{"ordered-ok"},
	Run:      runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng)
			// The body is fully handled here, including nested map
			// ranges (their effects are order-dependent on the outer
			// iteration too).
			return false
		})
	}
}

// checkMapRange reports every order-sensitive effect in the body of one
// map-range loop. Diagnostics anchor at the effect itself — the append,
// send, accumulation or call — so a suppression covers exactly one
// effect and a new order-sensitive statement added to an already
// suppressed loop is still reported.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n)
		case *ast.SendStmt:
			if id := baseIdent(n.Chan); id != nil && !declaredWithin(pass, id, rng) {
				pass.Reportf(n.Pos(), "map iteration sends to channel %s: receive order depends on map order",
					id.Name)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkMapRangeCall(pass, rng, call)
			}
			return false // arguments already inspected by the call check
		}
		return true
	})
}

// checkMapRangeAssign flags ordered accumulation: append to an outer
// slice and order-sensitive compound assignment (string concatenation,
// floating-point accumulation) into an outer variable.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
			continue
		}
		dst := baseIdent(call.Args[0])
		if dst == nil || declaredWithin(pass, dst, rng) {
			continue
		}
		// `outer = append(outer, ...)` grows an ordered accumulator in
		// map-iteration order. Replacing the whole slice with a value
		// that does not extend it (outer = append(local, ...)) is still
		// flagged: the elements come from the iteration.
		if i < len(as.Lhs) {
			pass.Reportf(as.Pos(), "map iteration appends to %s: element order depends on map order",
				dst.Name)
		}
	}
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE || len(as.Lhs) != 1 {
		return
	}
	// Compound assignment (+=, -=, ...): order-sensitive for strings and
	// floats (concatenation order; FP addition is not associative).
	lhs := baseIdent(as.Lhs[0])
	if lhs == nil || declaredWithin(pass, lhs, rng) {
		return
	}
	if t := pass.TypeOf(as.Lhs[0]); t != nil {
		switch b := t.Underlying().(type) {
		case *types.Basic:
			if b.Info()&types.IsString != 0 || b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "map iteration accumulates into %s: result depends on map order",
					lhs.Name)
			}
		}
	}
}

// checkMapRangeCall flags side-effect calls driven by the iteration: a
// statement-level call to an outer method or an output function whose
// receiver or arguments derive from loop-local state. This is what
// catches the PR-1 pruneWindow pattern (l.label(p.feat, ...) inside
// `range l.pend`): the callee mutates outer ordered state in map order.
func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	if isBuiltin(pass, call, "delete") {
		// Deleting keys is order-independent: the surviving map is the
		// same whatever order the loop visits.
		return
	}
	name := calleeName(call)
	argsDerived := false
	for _, arg := range call.Args {
		if derivesFromLoop(pass, arg, rng) {
			argsDerived = true
			break
		}
	}
	if !argsDerived {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if recv := baseIdent(fun.X); recv != nil {
			if _, isPkg := pass.ObjectOf(recv).(*types.PkgName); isPkg {
				// Package-level function with iteration-derived
				// arguments, called for its side effect.
				pass.Reportf(call.Pos(), "map iteration calls %s with iteration-dependent arguments: side effects occur in map order",
					name)
				return
			}
			if !declaredWithin(pass, recv, rng) {
				pass.Reportf(call.Pos(), "map iteration calls %s with iteration-dependent arguments: %s's state is updated in map order",
					name, recv.Name)
			}
		}
	case *ast.Ident:
		if obj := pass.ObjectOf(fun); obj != nil && !declaredWithin(pass, fun, rng) {
			if _, isBuiltinObj := obj.(*types.Builtin); isBuiltinObj {
				return
			}
			pass.Reportf(call.Pos(), "map iteration calls %s with iteration-dependent arguments: side effects occur in map order",
				name)
		}
	}
}

// derivesFromLoop reports whether e references any identifier declared
// inside the range statement (the key/value variables or body locals).
func derivesFromLoop(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && declaredWithin(pass, id, rng) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// declaredWithin reports whether id resolves to an object declared
// lexically inside the range statement.
func declaredWithin(pass *Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// baseIdent strips selectors, indexing, derefs and parens down to the
// root identifier of an expression, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok
}

// calleeName renders the callee for diagnostics (pkg.F, recv.Method, f).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
