package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Guardedby enforces //scip:guardedby <field> annotations on struct
// fields: every access to an annotated field must happen while the named
// sibling mutex is provably held. The proof is lexical: a region opens
// at x.mu.Lock()/RLock() and closes at the matching Unlock()/RUnlock()
// (a deferred unlock holds to the end of the function; an unlock
// immediately followed by a return — the singleflight early-exit shape —
// does not end the region for code after the return). Write accesses
// require the write lock; RLock only covers reads. A function annotated
// //scip:locked <field> declares that its callers hold the mutex: its
// own accesses are accepted, and every call site is checked for a held
// lock instead.
//
// Accesses that are safe without the lock — construction before the
// value is shared, actor-goroutine ownership, stats snapshots that
// tolerate tearing — are declared with a //scip:lock-ok comment carrying
// the justification.
var Guardedby = &Analyzer{
	Name:     "guardedby",
	Doc:      "enforce //scip:guardedby field annotations via lexical lock regions",
	Suppress: []string{"lock-ok"},
	Run:      runGuardedby,
}

func runGuardedby(pass *Pass) {
	mod := pass.Mod
	for _, gf := range mod.GuardedFields() {
		if gf.Field.Pkg() != pass.Pkg {
			continue
		}
		if gf.Mutex == nil {
			pass.Reportf(gf.Pos, "//scip:guardedby %s: %s is not a sync.Mutex/RWMutex field of %s",
				gf.MutexName, gf.MutexName, gf.Struct)
		}
	}
	for _, node := range mod.FuncsOf(pass.P) {
		checkGuardedFunc(pass, node)
	}
}

// lockRegion is one lexical span during which a mutex is held.
type lockRegion struct {
	mutex *types.Var // the mutex field or variable object
	base  string     // rendered receiver expression ("s", "g.inner")
	write bool       // Lock (write) vs RLock (read-only)
	start token.Pos
	end   token.Pos
}

// lockEvent is one Lock/Unlock call found in a body.
type lockEvent struct {
	pos   token.Pos
	mutex *types.Var
	base  string
	open  bool
	write bool
}

func checkGuardedFunc(pass *Pass, node *FuncNode) {
	regions := lockRegions(pass, node)
	mod := pass.Mod
	info := node.Pkg.Info

	held := func(pos token.Pos, mutex *types.Var, base string, write bool) bool {
		for _, r := range regions {
			if r.mutex == mutex && r.base == base && pos > r.start && pos < r.end && (r.write || !write) {
				return true
			}
		}
		return false
	}
	// heldByName ignores the receiver expression: the //scip:locked
	// call-site check accepts any held lock stored in a field of the
	// required name (s.mu held when calling s.observeLocked).
	heldByName := func(pos token.Pos, name string) bool {
		for _, r := range regions {
			if r.mutex != nil && r.mutex.Name() == name && pos > r.start && pos < r.end {
				return true
			}
		}
		return false
	}

	writes := writeSites(node.Decl.Body)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			// Field keys in a literal construct a fresh value that cannot
			// yet be shared; only the element values are checked.
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					ast.Inspect(kv.Value, walk)
				} else {
					ast.Inspect(el, walk)
				}
			}
			return false
		case *ast.SelectorExpr:
			fv := selectedField(info, n)
			if fv == nil {
				return true
			}
			gf := mod.GuardedFieldOf(fv)
			if gf == nil || gf.Mutex == nil {
				return true
			}
			if node.LockedField == gf.MutexName {
				return true // callers hold the lock; call sites are checked
			}
			isWrite := writes[n]
			if held(n.Pos(), gf.Mutex, exprString(n.X), isWrite) {
				return true
			}
			verb := "read"
			need := gf.MutexName
			if isWrite {
				verb = "write"
				if heldByName(n.Pos(), gf.MutexName) {
					need = gf.MutexName + " (write lock; RLock only covers reads)"
				}
			}
			pass.Reportf(n.Pos(), "%s of %s.%s without holding %s", verb, gf.Struct, fv.Name(), need)
			return true
		case *ast.CallExpr:
			callee := staticCallee(info, n)
			if callee == nil {
				return true
			}
			target := mod.NodeOf(callee)
			if target == nil || target.LockedField == "" {
				return true
			}
			if node.LockedField == target.LockedField {
				return true
			}
			if heldByName(n.Pos(), target.LockedField) {
				return true
			}
			pass.Reportf(n.Pos(), "call to %s requires %s held (//scip:locked)", target.Name(), target.LockedField)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// writeSites maps selector expressions that are written: assignment
// targets, ++/--, and address-taken operands (a pointer escaping the
// region could be written any time, so &x.f counts as a write).
func writeSites(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			out[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return out
}

// lockRegions finds the lexical spans of node's body during which each
// mutex is held.
func lockRegions(pass *Pass, node *FuncNode) []lockRegion {
	info := node.Pkg.Info
	var events []lockEvent
	bodyEnd := node.Decl.Body.End()

	// Walk with enclosing-block tracking so the unlock-then-return shape
	// can be recognised. Deferred calls are skipped entirely: a deferred
	// unlock holds the lock to function end (no close event), and defers
	// never open locks.
	var walk func(n ast.Node, encl *ast.BlockStmt)
	walk = func(n ast.Node, encl *ast.BlockStmt) {
		if n == nil {
			return
		}
		if blk, ok := n.(*ast.BlockStmt); ok {
			for _, st := range blk.List {
				walk(st, blk)
			}
			return
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.BlockStmt:
				for _, st := range m.List {
					walk(st, m)
				}
				return false
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				ev, ok := lockCall(info, m)
				if !ok {
					return true
				}
				if !ev.open && blockEndsInReturn(encl, m.Pos()) {
					// mu.Unlock(); return — the unlock only matters on the
					// exiting path; code after the return is still covered
					// by the outer region.
					return true
				}
				events = append(events, ev)
				return true
			}
			return true
		})
	}
	walk(node.Decl.Body, node.Decl.Body)

	// Pair events per mutex+base in position order into regions.
	type key struct {
		mutex *types.Var
		base  string
	}
	open := make(map[key]*lockEvent)
	var regions []lockRegion
	for i := range events {
		ev := &events[i]
		k := key{ev.mutex, ev.base}
		if ev.open {
			if open[k] == nil {
				open[k] = ev
			}
			continue
		}
		if o := open[k]; o != nil {
			regions = append(regions, lockRegion{
				mutex: o.mutex, base: o.base, write: o.write, start: o.pos, end: ev.pos,
			})
			open[k] = nil
		}
	}
	for _, o := range open {
		if o != nil {
			//scip:ordered-ok collect-only: regions are queried point-wise, never iterated in a result-affecting order
			regions = append(regions, lockRegion{mutex: o.mutex, base: o.base, write: o.write, start: o.pos, end: bodyEnd})
		}
	}
	return regions
}

// blockEndsInReturn reports whether the statement list of blk, at or
// after pos, ends in a return (the unlock-then-return early exit).
func blockEndsInReturn(blk *ast.BlockStmt, pos token.Pos) bool {
	if blk == nil || len(blk.List) == 0 {
		return false
	}
	last := blk.List[len(blk.List)-1]
	if _, ok := last.(*ast.ReturnStmt); !ok {
		return false
	}
	return last.Pos() >= pos
}

// lockCall classifies a call as a Lock/RLock/Unlock/RUnlock on a mutex
// expression, resolving the mutex object and rendering its base.
func lockCall(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var open, write bool
	switch sel.Sel.Name {
	case "Lock":
		open, write = true, true
	case "RLock":
		open, write = true, false
	case "Unlock":
		open, write = false, true
	case "RUnlock":
		open, write = false, false
	default:
		return lockEvent{}, false
	}
	mutexExpr := sel.X
	if t := info.TypeOf(mutexExpr); t == nil || !isMutexType(t) {
		return lockEvent{}, false
	}
	var mutex *types.Var
	base := ""
	switch x := mutexExpr.(type) {
	case *ast.SelectorExpr:
		mutex = selectedField(info, x)
		base = exprString(x.X)
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			mutex = v
		}
	}
	if mutex == nil {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), mutex: mutex, base: base, open: open, write: write}, true
}

// selectedField resolves a selector to the struct field variable it
// names, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// staticCallee resolves a call to a statically known module-or-external
// function (methods included), or nil for dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unwrapCallFun(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok && !types.IsInterface(s.Recv()) {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
