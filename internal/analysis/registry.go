package analysis

import "strings"

// Analyzers returns every registered analyzer in a stable order. The
// first five are the per-file syntactic checks from scip-vet v1; the
// last four are the interprocedural, flow-aware checks built on the
// module call graph (module.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Nocopy, Atomicmix, Pkgdoc, Hotalloc, Clocktaint, Guardedby, Arenalife}
}

// DetrandPaths lists the import-path suffixes of the packages whose
// behaviour must be a pure function of their inputs and seeds: the
// SCIP/MAB learning core, the experiment harness whose tables must
// reproduce byte-for-byte, and the replay engine. Trace generation and
// the learned baselines are seed-threaded too and are held to the same
// bar. Drivers (cmd/...) legitimately read clocks for reporting and are
// not listed.
var DetrandPaths = []string{
	"internal/core",
	"internal/mab",
	"internal/exp",
	"internal/sim",
	"internal/gen",
	"internal/lrb",
	"internal/ml",
	"internal/replacement",
	"internal/admission/scorer",
	"internal/zro",
	"internal/cluster",
}

// ClockSinkPaths lists the import-path suffixes of the packages holding
// deterministic decision state for the clocktaint analyzer: everything
// detrand already guards, plus the cache/policy layers that detrand
// exempts (they host the policies and must not absorb wall-clock values
// through any call chain even though drivers time them from outside).
var ClockSinkPaths = append(append([]string{}, DetrandPaths...),
	"internal/cache",
	"internal/policies",
	"internal/admission",
	"internal/shard",
)

// Applies reports whether analyzer a runs over the package at pkgPath.
// Maporder, Nocopy and Atomicmix guard every package; Detrand is scoped
// to the deterministic-replay packages (DetrandPaths), because drivers
// and reporting code read wall clocks by design; Pkgdoc is scoped to
// internal/ packages — commands document themselves in their main file
// and are checked by convention, not the analyzer. Of the flow-aware
// analyzers, Hotalloc/Clocktaint/Guardedby run everywhere (their
// annotations decide what is checked), while Arenalife is scoped to the
// server package that owns the request arena.
func Applies(a *Analyzer, pkgPath string) bool {
	switch a {
	case Detrand:
		for _, suffix := range DetrandPaths {
			if strings.HasSuffix(pkgPath, suffix) {
				return true
			}
		}
		return false
	case Pkgdoc:
		return strings.Contains(pkgPath, "/internal/")
	case Arenalife:
		return strings.HasSuffix(pkgPath, "internal/server")
	}
	return true
}
