package analysis

import "strings"

// Analyzers returns every registered analyzer in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Nocopy, Atomicmix, Pkgdoc}
}

// DetrandPaths lists the import-path suffixes of the packages whose
// behaviour must be a pure function of their inputs and seeds: the
// SCIP/MAB learning core, the experiment harness whose tables must
// reproduce byte-for-byte, and the replay engine. Trace generation and
// the learned baselines are seed-threaded too and are held to the same
// bar. Drivers (cmd/...) legitimately read clocks for reporting and are
// not listed.
var DetrandPaths = []string{
	"internal/core",
	"internal/mab",
	"internal/exp",
	"internal/sim",
	"internal/gen",
	"internal/lrb",
	"internal/ml",
	"internal/replacement",
	"internal/admission/scorer",
	"internal/zro",
}

// Applies reports whether analyzer a runs over the package at pkgPath.
// Maporder, Nocopy and Atomicmix guard every package; Detrand is scoped
// to the deterministic-replay packages (DetrandPaths), because drivers
// and reporting code read wall clocks by design; Pkgdoc is scoped to
// internal/ packages — commands document themselves in their main file
// and are checked by convention, not the analyzer.
func Applies(a *Analyzer, pkgPath string) bool {
	switch a {
	case Detrand:
		for _, suffix := range DetrandPaths {
			if strings.HasSuffix(pkgPath, suffix) {
				return true
			}
		}
		return false
	case Pkgdoc:
		return strings.Contains(pkgPath, "/internal/")
	}
	return true
}
