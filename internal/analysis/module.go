package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the flow-aware analyzers
// (hotalloc, clocktaint, guardedby, arenalife): a Module indexes every
// type-checked package of one load, builds a module-wide call graph over
// the declared functions (callgraph.go) and parses the //scip:
// annotations that name the invariants — hotpath roots, coldpath
// boundaries, locked preconditions and guardedby fields. Per-function
// effect summaries (allocation sites, clock taint, lock regions) are
// computed by the analyzers on top of this index.

// Module is the interprocedural view of one loaded package set. Build it
// once with NewModule and share it across analyzers: the call graph and
// annotation index are immutable after construction, and the lazily
// computed summaries are memoised on the Module.
type Module struct {
	// Packages are the loaded packages, sorted by import path.
	Packages []*Package

	// funcs indexes every function and method declared with a body in
	// the module.
	funcs  map[*types.Func]*FuncNode
	nodes  []*FuncNode // declaration order, for deterministic iteration
	byPkg  map[*Package][]*FuncNode
	fields map[*types.Var]*GuardedField

	// sups holds each package's //scip: comments. VetModule threads the
	// same set through every analyzer so a suppression consumed by one
	// analyzer (or sanctioned by clocktaint) counts as used for the
	// stale-suppression audit.
	sups map[*Package]suppressionSet

	clockOnce  bool // clock summaries computed (clocktaint.go)
	arenaOnce  bool // arena summaries computed (arenalife.go)
	hotPathSet map[*FuncNode]*hotTrace
}

// FuncNode is one declared function or method in the module's call graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls are statically resolved calls to module functions.
	Calls []CallEdge
	// Dynamic are call sites whose callee cannot be resolved statically:
	// interface method calls and calls through function values.
	Dynamic []DynCall
	// External are statically resolved calls to functions outside the
	// module (the standard library, under this repo's no-dependency rule).
	External []ExtCall

	// Hotpath marks a //scip:hotpath root: this function and everything
	// it transitively calls must be allocation-free.
	Hotpath bool
	// Coldpath marks a //scip:coldpath boundary: an intentionally
	// allocating slow path that hot-set traversal does not enter. The
	// annotation must carry a justification.
	Coldpath bool
	// ColdpathJust is the justification text after //scip:coldpath.
	ColdpathJust string
	// LockedField, when non-empty, is the mutex field named by a
	// //scip:locked annotation: the function's callers must hold that
	// mutex (guardedby.go checks both sides).
	LockedField string

	// Analyzer-computed summaries (memoised; see clocktaint.go and
	// arenalife.go).
	clock *clockSummary
	arena *arenaSummary
}

// Name renders a short human name: pkg.Func or (*pkg.Recv).Method.
func (n *FuncNode) Name() string { return shortFuncName(n.Fn) }

// CallEdge is one statically resolved module-internal call.
type CallEdge struct {
	Callee *FuncNode
	Call   *ast.CallExpr
}

// DynCall is one dynamically dispatched call site.
type DynCall struct {
	Call *ast.CallExpr
	// Desc names the target as well as it can be known: the interface
	// method ("cache.Policy.Access") or "function value".
	Desc string
}

// ExtCall is one statically resolved call that leaves the module.
type ExtCall struct {
	Call *ast.CallExpr
	Fn   *types.Func
}

// hotTrace records how a function entered the hot set.
type hotTrace struct {
	root *FuncNode // the annotated root that reaches it
	via  *FuncNode // the direct caller on the discovery path (nil at root)
}

// Annotation tokens recognised in //scip: comments, beyond the
// per-analyzer suppression tokens. The stale-suppression audit treats
// these as annotations (they assert an invariant) rather than
// suppressions (they silence one), so they are never "stale".
var annotationTokens = map[string]bool{
	"hotpath":   true,
	"coldpath":  true,
	"locked":    true,
	"guardedby": true,
}

// NewModule indexes pkgs, builds the call graph and parses annotations.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Packages: pkgs,
		funcs:    make(map[*types.Func]*FuncNode),
		byPkg:    make(map[*Package][]*FuncNode),
		fields:   make(map[*types.Var]*GuardedField),
		sups:     make(map[*Package]suppressionSet),
	}
	// Pass 1: declare every function so cross-package edges resolve.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg}
				parseFuncAnnotations(node)
				m.funcs[obj] = node
				m.nodes = append(m.nodes, node)
				m.byPkg[pkg] = append(m.byPkg[pkg], node)
			}
		}
		m.parseGuardedFields(pkg)
	}
	// Pass 2: resolve call edges.
	for _, node := range m.nodes {
		m.buildEdges(node)
	}
	return m
}

// Sups returns (building on first use) the //scip: comment set of pkg.
// The same set instance is shared by every analyzer run over pkg, so
// used-marking accumulates across analyzers.
func (m *Module) Sups(pkg *Package) suppressionSet {
	if s, ok := m.sups[pkg]; ok {
		return s
	}
	s := collectSuppressions(pkg.Fset, pkg.Files)
	m.sups[pkg] = s
	return s
}

// sanctioned reports whether a //scip:<token> comment covers pos in
// pkg, marking it used (the comment justifies the behaviour at pos, so
// it is live even though no diagnostic is emitted).
func (m *Module) sanctioned(pkg *Package, token string, pos token.Pos) bool {
	sup := m.Sups(pkg)
	p := pkg.Fset.Position(pos)
	lines := sup.byFileLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, s := range lines[line] {
			if s.token == token && s.justification != "" {
				s.used = true
				return true
			}
		}
	}
	return false
}

// FuncsOf returns the functions declared in pkg, in declaration order.
func (m *Module) FuncsOf(pkg *Package) []*FuncNode { return m.byPkg[pkg] }

// SuppressionInfo is one //scip: comment for the -supps inventory.
type SuppressionInfo struct {
	File          string
	Line          int
	Token         string
	Justification string
	// Annotation: the token asserts an invariant (hotpath, guardedby, ...)
	// rather than silencing a finding.
	Annotation bool
	// Used: some analyzer consumed the comment. Only meaningful after
	// VetModule has run over the module.
	Used bool
}

// SuppressionInventory lists every //scip: comment in the module, sorted
// by file and line. Run VetModule first to populate Used.
func (m *Module) SuppressionInventory() []SuppressionInfo {
	var out []SuppressionInfo
	for _, pkg := range m.Packages {
		sup := m.Sups(pkg)
		for _, lines := range sup.byFileLine {
			for _, sups := range lines {
				for _, s := range sups {
					//scip:ordered-ok collect-then-sort: the slice is sorted below, erasing map order
					out = append(out, SuppressionInfo{
						File:          s.file,
						Line:          s.line,
						Token:         s.token,
						Justification: s.justification,
						Annotation:    annotationTokens[s.token],
						Used:          s.used,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// NodeOf returns the node for a declared module function, or nil.
func (m *Module) NodeOf(fn *types.Func) *FuncNode { return m.funcs[fn] }

// parseFuncAnnotations reads //scip: tokens from the function's doc
// comment.
func parseFuncAnnotations(node *FuncNode) {
	if node.Decl.Doc == nil {
		return
	}
	for _, c := range node.Decl.Doc.List {
		tok, rest, ok := directive(c.Text)
		if !ok {
			continue
		}
		switch tok {
		case "hotpath":
			node.Hotpath = true
		case "coldpath":
			node.Coldpath = true
			node.ColdpathJust = rest
		case "locked":
			field, _, _ := strings.Cut(rest, " ")
			node.LockedField = field
		}
	}
}

// directive parses one comment as a //scip:<token> directive, returning
// the token and the text after it.
func directive(text string) (tok, rest string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, suppressionPrefix) {
		return "", "", false
	}
	rest = strings.TrimPrefix(text, suppressionPrefix)
	tok, rest, _ = strings.Cut(rest, " ")
	if tok == "" {
		return "", "", false
	}
	return tok, strings.TrimSpace(rest), true
}

// GuardedField is one struct field carrying a //scip:guardedby
// annotation: every access must hold the named sibling mutex.
type GuardedField struct {
	Field *types.Var
	// MutexName is the annotated sibling field name ("mu").
	MutexName string
	// Mutex is the resolved sibling mutex field, nil if the name does
	// not resolve (guardedby reports that as a bad annotation).
	Mutex *types.Var
	// Struct is the declaring struct type's name, for messages.
	Struct string
	Pos    token.Pos
}

// parseGuardedFields scans pkg's struct declarations for
// //scip:guardedby annotations.
func (m *Module) parseGuardedFields(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				name, ok := guardedAnnotation(field)
				if !ok {
					continue
				}
				for _, id := range field.Names {
					fv, ok := pkg.Info.Defs[id].(*types.Var)
					if !ok {
						continue
					}
					gf := &GuardedField{
						Field:     fv,
						MutexName: name,
						Struct:    ts.Name.Name,
						Pos:       id.Pos(),
					}
					gf.Mutex = siblingMutex(pkg, st, name)
					m.fields[fv] = gf
				}
			}
			return true
		})
	}
}

// guardedAnnotation extracts the mutex name from a field's
// //scip:guardedby doc or line comment.
func guardedAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			tok, rest, ok := directive(c.Text)
			if !ok || tok != "guardedby" {
				continue
			}
			name, _, _ := strings.Cut(rest, " ")
			return name, name != ""
		}
	}
	return "", false
}

// siblingMutex resolves name to a sync.Mutex/RWMutex field of st.
func siblingMutex(pkg *Package, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			fv, ok := pkg.Info.Defs[id].(*types.Var)
			if !ok || !isMutexType(fv.Type()) {
				return nil
			}
			return fv
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// GuardedFieldOf returns the guard annotation covering a field object,
// or nil.
func (m *Module) GuardedFieldOf(v *types.Var) *GuardedField { return m.fields[v] }

// GuardedFields returns every annotated field (module order is the
// package/declaration order of m.nodes' packages; callers sort output by
// position, so map order here is irrelevant to diagnostics).
func (m *Module) GuardedFields() []*GuardedField {
	out := make([]*GuardedField, 0, len(m.fields))
	for _, gf := range m.fields {
		//scip:ordered-ok collect-only: callers anchor diagnostics by token.Pos and the driver sorts them before printing
		out = append(out, gf)
	}
	return out
}

// HotSet computes (once) the transitive hot set: every function reachable
// from a //scip:hotpath root through statically resolved calls, stopping
// at //scip:coldpath boundaries.
func (m *Module) HotSet() map[*FuncNode]*hotTrace {
	if m.hotPathSet != nil {
		return m.hotPathSet
	}
	set := make(map[*FuncNode]*hotTrace)
	var queue []*FuncNode
	for _, n := range m.nodes {
		if n.Hotpath {
			set[n] = &hotTrace{root: n}
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			if e.Callee.Coldpath {
				continue
			}
			if _, seen := set[e.Callee]; seen {
				continue
			}
			set[e.Callee] = &hotTrace{root: set[n].root, via: n}
			queue = append(queue, e.Callee)
		}
	}
	m.hotPathSet = set
	return set
}

// shortFuncName renders fn as pkg.Func or (*pkg.Type).Method, trimming
// the module path down to the last import-path element.
func shortFuncName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if pkg == "" {
			return fn.Name()
		}
		return pkg + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	name := types.TypeString(recv, func(p *types.Package) string { return p.Name() })
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return "(" + ptr + name + ")." + fn.Name()
}
