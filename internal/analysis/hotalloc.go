package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc statically backs the repo's zero-allocation guarantees
// (TestServeAllocs, TestAccessAllocsSteadyState,
// TestLRBAccessAllocsSteadyState): a function annotated //scip:hotpath
// and everything it transitively calls through statically resolved edges
// must be allocation-free. The hot set stops at //scip:coldpath
// boundaries (intentionally allocating slow paths such as origin
// fetches), and individual sites that are allocation-free in steady
// state — pooled buffers that grow only during warmup, error paths that
// box only on failure — are declared with a //scip:alloc-ok comment
// carrying the justification.
//
// Flagged sites: make/new, append — except the self-append form
// x = append(x, ...) (including x = append(x[:k], ...)), which is the
// amortised pooled-buffer pattern the allocation tests measure as
// steady-state-free: the backing array grows to a high-water mark and is
// then reused — slice/map composite literals and &T{} literals, string
// concatenation, string<->[]byte/[]rune conversions, interface boxing
// (conversions, call arguments, assignments and returns that wrap a
// concrete non-pointer value in an interface), closure literals, go
// statements, calls to external functions not on the allocation-free
// allowlist, and dynamically dispatched calls (interface methods,
// function values) whose callee cannot be traversed. Map writes are
// deliberately not flagged: inserting into a pre-sized map is
// steady-state allocation-free and the runtime growth case is covered by
// the allocation tests.
var Hotalloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid allocation in //scip:hotpath functions and their transitive callees",
	Suppress: []string{"alloc-ok"},
	Run:      runHotalloc,
}

func runHotalloc(pass *Pass) {
	hot := pass.Mod.HotSet()
	for _, node := range pass.Mod.FuncsOf(pass.P) {
		trace, ok := hot[node]
		if !ok {
			continue
		}
		checkHotFunc(pass, node, trace)
	}
}

// hotWhere renders the hot-set provenance for diagnostics: "" for a
// root, " (hot via <caller>, root <root>)" for a transitive callee.
func hotWhere(node *FuncNode, trace *hotTrace) string {
	if trace.via == nil {
		return ""
	}
	if trace.via == trace.root {
		return " (hot via root " + trace.root.Name() + ")"
	}
	return " (hot via " + trace.via.Name() + ", root " + trace.root.Name() + ")"
}

// checkHotFunc reports every allocation site in one hot function.
func checkHotFunc(pass *Pass, node *FuncNode, trace *hotTrace) {
	where := hotWhere(node, trace)
	info := node.Pkg.Info

	// Call edges first: they were classified at module-build time.
	for _, ext := range node.External {
		if allowedExternal(ext.Fn) {
			continue
		}
		pass.Reportf(ext.Call.Pos(), "call to %s may allocate%s", shortFuncName(ext.Fn), where)
	}
	for _, dyn := range node.Dynamic {
		if allowedDynamic[dyn.Desc] {
			continue
		}
		pass.Reportf(dyn.Call.Pos(), "dynamic call (%s) cannot be proven allocation-free%s", dyn.Desc, where)
	}
	// Interface boxing at statically resolved call arguments.
	for _, e := range node.Calls {
		checkCallBoxing(pass, info, e.Call, e.Callee.Fn, where)
	}
	for _, ext := range node.External {
		checkCallBoxing(pass, info, ext.Call, ext.Fn, where)
	}

	selfAppends := collectSelfAppends(node.Decl.Body)
	results := node.Decl.Type.Results
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal allocates a closure%s", where)
			return false // sites inside run on the closure's schedule, not this path
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine%s", where)
		case *ast.CompositeLit:
			checkCompositeLit(pass, info, n, where)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap%s", where)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates%s", where)
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, info, n, where)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, info, n, results, where)
		case *ast.CallExpr:
			checkHotCall(pass, info, n, selfAppends, where)
		}
		return true
	})
}

// collectSelfAppends returns the append calls of the amortised
// x = append(x, ...) form (the slice is written back to the expression it
// grew from, possibly resliced: x = append(x[:k], ...)). These reach a
// high-water capacity and then stop allocating, which is exactly the
// steady state the runtime allocation tests pin at 0 allocs/op.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			rhs := as.Rhs[i]
			// buf = append(buf, 0)[:n] still writes the grown slice back.
			if sl, ok := rhs.(*ast.SliceExpr); ok {
				rhs = sl.X
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if builtinName(unwrapCallFun(call.Fun)) != "append" {
				continue
			}
			base := call.Args[0]
			for {
				if sl, ok := base.(*ast.SliceExpr); ok {
					base = sl.X
					continue
				}
				break
			}
			if exprString(base) != "" && exprString(base) == exprString(as.Lhs[i]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// checkCompositeLit flags slice and map literals; struct literals by
// value live on the stack and are allowed (taking their address is
// flagged separately).
func checkCompositeLit(pass *Pass, info *types.Info, lit *ast.CompositeLit, where string) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates%s", where)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates%s", where)
	}
}

// checkHotCall flags allocating builtins and conversions. Static,
// external and dynamic calls are handled from the call-graph edges.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, where string) {
	fun := unwrapCallFun(call.Fun)
	if tv, ok := info.Types[fun]; ok {
		if tv.IsType() {
			checkConversion(pass, info, call, where)
			return
		}
		if tv.IsBuiltin() {
			name := builtinName(fun)
			switch name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates%s", where)
			case "new":
				pass.Reportf(call.Pos(), "new allocates%s", where)
			case "append":
				if !selfAppends[call] {
					pass.Reportf(call.Pos(), "append may grow its backing array%s", where)
				}
			}
		}
	}
}

// builtinName returns the name of a builtin call's function expression.
func builtinName(fun ast.Expr) string {
	if id, ok := fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkConversion flags conversions that copy or box: string<->[]byte,
// string<->[]rune, and conversion of a concrete non-pointer value to an
// interface type.
func checkConversion(pass *Pass, info *types.Info, call *ast.CallExpr, where string) {
	if len(call.Args) != 1 {
		return
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	if isStringType(to) && isByteOrRuneSlice(from) {
		pass.Reportf(call.Pos(), "[]byte-to-string conversion copies%s", where)
		return
	}
	if isStringType(from) && isByteOrRuneSlice(to) {
		pass.Reportf(call.Pos(), "string-to-slice conversion copies%s", where)
		return
	}
	if boxes(from, to) {
		pass.Reportf(call.Pos(), "conversion to %s boxes a %s%s", to.String(), from.String(), where)
	}
}

// checkCallBoxing flags arguments implicitly boxed into interface
// parameters of a resolved callee.
func checkCallBoxing(pass *Pass, info *types.Info, call *ast.CallExpr, callee *types.Func, where string) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info.TypeOf(arg), pt) {
			pass.Reportf(arg.Pos(), "argument boxes a %s into %s%s", info.TypeOf(arg).String(), pt.String(), where)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		// The variadic slice itself is allocated per call.
		pass.Reportf(call.Pos(), "variadic call to %s allocates the argument slice%s", shortFuncName(callee), where)
	}
}

// checkHotAssign flags string += and interface boxing on assignment.
func checkHotAssign(pass *Pass, info *types.Info, as *ast.AssignStmt, where string) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.TypeOf(as.Lhs[0])) {
		pass.Reportf(as.Pos(), "string concatenation allocates%s", where)
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if boxes(info.TypeOf(as.Rhs[i]), info.TypeOf(as.Lhs[i])) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a %s into %s%s",
				info.TypeOf(as.Rhs[i]).String(), info.TypeOf(as.Lhs[i]).String(), where)
		}
	}
}

// checkReturnBoxing flags returning a concrete non-pointer value as an
// interface result (the classic escaping error box).
func checkReturnBoxing(pass *Pass, info *types.Info, ret *ast.ReturnStmt, results *ast.FieldList, where string) {
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, f := range results.List {
		t := info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // return f() with multiple results: boxing happened at f's return
	}
	for i, e := range ret.Results {
		if boxes(info.TypeOf(e), resTypes[i]) {
			pass.Reportf(e.Pos(), "return boxes a %s into %s%s",
				info.TypeOf(e).String(), resTypes[i].String(), where)
		}
	}
}

// boxes reports whether assigning a value of type from to a location of
// type to wraps a concrete value in an interface in a way that can heap
// allocate: to is an interface, from is a concrete type that is neither
// a pointer nor itself an interface nil. Pointers (and anything
// word-sized the runtime can store directly) still allocate for
// non-pointer layouts, so only pointer kinds are exempt.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if !types.IsInterface(to) {
		return false
	}
	if types.IsInterface(from) {
		return false // interface-to-interface re-wraps the same box
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return false // pointer-shaped: stored directly in the interface word
	case *types.Basic:
		if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// allocFreePkgs are external packages whose exported functions do not
// heap-allocate (or allocate only on paths the runtime tests pin at 0
// allocs/op anyway).
var allocFreePkgs = map[string]bool{
	"sync":         true,
	"sync/atomic":  true,
	"math":         true,
	"math/bits":    true,
	"unsafe":       true,
	"math/rand":    true,
	"math/rand/v2": true,
	"sort":         false, // sort.Slice boxes; sort.Search is fine but rare on hot paths
}

// allowedDynamic lists interface methods (by the call graph's Desc
// rendering) that hot paths may call even though the concrete callee is
// unknown: the net/http response writer and the io read/write primitives
// are the platform the zero-alloc tests measure against — their cost is
// outside the handler's control and already pinned by TestServeAllocs.
var allowedDynamic = map[string]bool{
	"http.ResponseWriter.Header":      true,
	"http.ResponseWriter.Write":       true,
	"http.ResponseWriter.WriteHeader": true,
	"io.Reader.Read":                  true,
	"io.ReadCloser.Read":              true,
	"io.Writer.Write":                 true,
}

// stringsAllocFree are the strings-package functions that only scan their
// arguments (search/compare), never building a new string.
var stringsAllocFree = map[string]bool{
	"IndexByte": true, "Index": true, "IndexRune": true, "LastIndexByte": true,
	"Contains": true, "ContainsRune": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Compare": true, "Count": true, "Cut": true,
}

// timeAllocMethods are the time.Time/time.Duration methods that do
// allocate (formatting); everything else on those types is arithmetic.
var timeAllocMethods = map[string]bool{
	"String":       true,
	"Format":       true,
	"AppendFormat": true,
	"GoString":     true,
	"MarshalJSON":  true,
	"MarshalText":  true,
}

// allowedExternal reports whether a call to fn is accepted in a hot path
// without a suppression.
func allowedExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error etc. surface as dynamic calls, not here
	}
	switch path := pkg.Path(); path {
	case "time":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return !timeAllocMethods[fn.Name()]
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			return true
		}
		return false
	case "strconv":
		return strings.HasPrefix(fn.Name(), "Append") ||
			strings.HasPrefix(fn.Name(), "Parse") || fn.Name() == "Atoi"
	case "strings":
		return stringsAllocFree[fn.Name()]
	case "net/http":
		// (*Request).PathValue returns a substring of the matched path.
		return fn.Name() == "PathValue"
	default:
		return allocFreePkgs[path]
	}
}
