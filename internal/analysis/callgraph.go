package analysis

import (
	"go/ast"
	"go/types"
)

// Call-graph construction: every CallExpr in a declared function body is
// classified as a builtin, a type conversion, a statically resolved call
// (module-internal edge or external function), or a dynamic call
// (interface dispatch or a call through a function value). The
// classification is deliberately conservative — anything that cannot be
// proven static lands in Dynamic, and the flow-aware analyzers treat
// dynamic sites as opaque (hotalloc reports them; clocktaint passes the
// union of the argument taint through them rather than guessing the
// callee).

// buildEdges fills node's Calls/Dynamic/External from its body.
func (m *Module) buildEdges(node *FuncNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		m.classify(node, info, call)
		return true
	})
}

// classify resolves one call expression and records the edge.
func (m *Module) classify(node *FuncNode, info *types.Info, call *ast.CallExpr) {
	fun := unwrapCallFun(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return // conversion or builtin: no edge
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			m.addStatic(node, call, obj)
		case *types.Var:
			node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: "function value " + fn.Name})
		case nil:
			// Defs (rare: recursive reference inside its own decl) or
			// unresolved; treat as dynamic only if it has function type.
			if t := info.TypeOf(fn); t != nil {
				if _, ok := t.Underlying().(*types.Signature); ok {
					node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: "function value " + fn.Name})
				}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			callee, ok := sel.Obj().(*types.Func)
			if !ok {
				// Field of function type: a call through a stored func value.
				node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: "function value " + exprString(fn)})
				return
			}
			if types.IsInterface(sel.Recv()) || interfaceMethod(callee) {
				node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: dynDesc(sel.Recv(), callee)})
				return
			}
			m.addStatic(node, call, callee)
			return
		}
		// Package-qualified reference (pkg.F or pkg.Var).
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			m.addStatic(node, call, obj)
		case *types.Var:
			node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: "function value " + exprString(fn)})
		}
	case *ast.FuncLit:
		// An immediately invoked literal: its body is scanned as part of
		// the enclosing function by analyzers that care (hotalloc treats
		// the literal itself as an allocation).
	default:
		// Call of an arbitrary expression (result of another call, index
		// into a slice of funcs, ...): dynamic.
		if t := info.TypeOf(fun); t != nil {
			if _, ok := t.Underlying().(*types.Signature); ok {
				node.Dynamic = append(node.Dynamic, DynCall{Call: call, Desc: "function value"})
			}
		}
	}
}

// addStatic records a resolved call: a module edge when the callee is
// declared here, an external call otherwise.
func (m *Module) addStatic(node *FuncNode, call *ast.CallExpr, callee *types.Func) {
	if target, ok := m.funcs[callee]; ok {
		node.Calls = append(node.Calls, CallEdge{Callee: target, Call: call})
		return
	}
	// Methods resolve to the origin for generic instantiations.
	if target, ok := m.funcs[callee.Origin()]; ok {
		node.Calls = append(node.Calls, CallEdge{Callee: target, Call: call})
		return
	}
	node.External = append(node.External, ExtCall{Call: call, Fn: callee})
}

// interfaceMethod reports whether fn is declared on an interface type
// (its receiver is an interface), which makes any call dynamic even when
// the selection metadata says MethodVal on a concrete-looking path.
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// dynDesc names a dynamic dispatch site: "cache.Policy.Access".
func dynDesc(recv types.Type, fn *types.Func) string {
	name := types.TypeString(recv, func(p *types.Package) string { return p.Name() })
	return name + "." + fn.Name()
}

// unwrapCallFun strips parens and generic instantiation indices off a
// call's Fun expression.
func unwrapCallFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	}
	return "expr"
}
