package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a file map under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadErrorContext pins the loader's error reporting: a broken
// package must be named by import path AND by the position of the
// failing code, for both type errors and parse errors. Without the
// position a type error surfacing through a dependency import reaches
// the driver as an unanchored one-liner.
func TestLoadErrorContext(t *testing.T) {
	t.Run("type error", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/broken\n\ngo 1.22\n",
			"sub/bad.go": `package sub

func f() int { return "not an int" }
`,
		})
		l, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, err = l.Load("./...")
		if err == nil {
			t.Fatal("loading a package with a type error succeeded")
		}
		for _, want := range []string{"example.com/broken/sub", "bad.go:3"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("load error %q does not mention %q", err, want)
			}
		}
	})
	t.Run("multiple type errors are counted", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/broken\n\ngo 1.22\n",
			"sub/bad.go": `package sub

func f() int { return "no" }
func g() int { return true }
`,
		})
		l, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, err = l.Load("./...")
		if err == nil {
			t.Fatal("loading a package with type errors succeeded")
		}
		for _, want := range []string{"bad.go:3", "and 1 more"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("load error %q does not mention %q", err, want)
			}
		}
	})
	t.Run("parse error", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/broken\n\ngo 1.22\n",
			"sub/bad.go": `package sub

func f( {
`,
		})
		l, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, err = l.Load("./...")
		if err == nil {
			t.Fatal("loading an unparseable package succeeded")
		}
		for _, want := range []string{"example.com/broken/sub", "bad.go:3"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("load error %q does not mention %q", err, want)
			}
		}
	})
	t.Run("error through an import names the broken package", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/broken\n\ngo 1.22\n",
			"sub/bad.go": `package sub

func F() int { return "no" }
`,
			"top/top.go": `package top

import "example.com/broken/sub"

func G() int { return sub.F() }
`,
		})
		l, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Load only the importer: the failure must still be attributed to
		// the imported package, with its own file position.
		_, err = l.Load("./top")
		if err == nil {
			t.Fatal("loading a package whose import is broken succeeded")
		}
		for _, want := range []string{"example.com/broken/sub", "bad.go:3"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("load error %q does not mention %q", err, want)
			}
		}
	})
}
