package analysis

import (
	"go/ast"
	"strings"
)

// Pkgdoc flags internal packages that carry no package doc comment.
// Every internal package documents its role, key types and invariants in
// a package comment (kept in a dedicated doc.go); a package without one
// is invisible to godoc and to the next reader deciding where code
// belongs. The check is package-level: one doc comment on any non-test
// file satisfies it, and the diagnostic anchors at the package clause of
// the lexically first file — the natural home for a doc.go.
//
// A deliberately undocumented package (none exist today) would declare
// itself with //scip:pkgdoc-ok and a justification directly above the
// package clause of its lexically first file.
var Pkgdoc = &Analyzer{
	Name:     "pkgdoc",
	Doc:      "flag internal packages with no package doc comment",
	Suppress: []string{"pkgdoc-ok"},
	Run:      runPkgdoc,
}

func runPkgdoc(pass *Pass) {
	var first *ast.File
	var firstFile string
	for _, f := range pass.Files {
		if hasPackageDoc(f) {
			return
		}
		name := pass.Fset.Position(f.Package).Filename
		if first == nil || name < firstFile {
			first, firstFile = f, name
		}
	}
	if first == nil {
		return
	}
	pass.Reportf(first.Package, "package %s has no package comment; document it in a doc.go", pass.Pkg.Name())
}

// hasPackageDoc reports whether f carries a real package doc comment. A
// doc group consisting solely of //scip: directive lines is not
// documentation: a //scip:pkgdoc-ok suppression directly above the
// package clause parses as the file's Doc, and it must suppress the
// diagnostic, not satisfy the check.
func hasPackageDoc(f *ast.File) bool {
	if f.Doc == nil {
		return false
	}
	for _, c := range f.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		if !strings.HasPrefix(strings.TrimSpace(text), suppressionPrefix) {
			return true
		}
	}
	return false
}
