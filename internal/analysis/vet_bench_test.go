package analysis

import (
	"testing"
	"time"
)

// loadModulePkgs loads the repository's own packages the way cmd/scip-vet
// does. The load (parse + type-check, stdlib from source) dominates a
// cold vet run and is amortised across iterations here, so the
// benchmark isolates the analysis cost: module indexing, call-graph
// construction, summary fixpoints, and every analyzer pass.
func loadModulePkgs(tb testing.TB) []*Package {
	tb.Helper()
	l, err := NewLoader("..")
	if err != nil {
		tb.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		tb.Fatal(err)
	}
	return pkgs
}

// BenchmarkVetModule measures one full interprocedural vet pass over
// the repository (module index + all analyzers + suppression audit).
func BenchmarkVetModule(b *testing.B) {
	pkgs := loadModulePkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := NewModule(pkgs)
		if diags := VetModule(Analyzers(), mod); len(diags) != 0 {
			b.Fatalf("module not vet-clean: %d diagnostics", len(diags))
		}
	}
}

// TestVetModuleBudget keeps the analysis phase inside an interactive
// budget: `make lint` runs scip-vet on every build, so a regression
// that makes the fixpoints quadratic in practice (e.g. a summary that
// never stabilises and reruns per package) must fail loudly, not slide
// into a minute-long lint. The bound is deliberately generous — an
// order of magnitude over the observed cost — so slow CI hardware does
// not flake it.
func TestVetModuleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	pkgs := loadModulePkgs(t)
	start := time.Now()
	VetModule(Analyzers(), NewModule(pkgs))
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("VetModule over the repository took %v; budget is 30s — a summary fixpoint is likely diverging", elapsed)
	}
}
