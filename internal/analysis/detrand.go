package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrand enforces seeded determinism in the replay/learning path:
// packages whose outputs must be a pure function of their inputs and
// seeds (internal/core, internal/mab, internal/exp, internal/sim — see
// DetrandPaths) may not draw from the process-global math/rand RNG, read
// the wall clock, or build an RNG from a hard-coded seed literal that is
// not threaded from configuration.
//
// Rationale: SCIP's MAB sampling (Algorithm 1) and the hill climber's
// random restarts (Algorithm 2) are replayed bit-for-bit across runs and
// worker counts; one ambient rand.Float64() or time.Now() in that path
// desynchronises the sampled decision stream and every figure built on
// it. Wall-clock reads that only feed wall-clock *metering* (throughput
// columns, BENCH.json timings) are legitimate and are declared with a
// //scip:wallclock-ok comment.
var Detrand = &Analyzer{
	Name:     "detrand",
	Doc:      "forbid ambient randomness and wall-clock reads in deterministic-replay packages",
	Suppress: []string{"rand-ok", "wallclock-ok"},
	Run:      runDetrand,
}

// randConstructors are the math/rand (and v2) functions that build a new
// RNG from an explicit seed; they are the only package-level rand
// functions allowed, and only with a seed threaded from configuration.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand; the Rand carries the seed
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(pass, sel)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(call.Pos(),
						"global rand.%s: draw from a seed-threaded *rand.Rand instead", name)
					return true
				}
				if name == "NewSource" || name == "NewPCG" {
					for _, arg := range call.Args {
						if isConstantLiteral(pass, arg) {
							pass.Reportf(call.Pos(),
								"rand.%s with a hard-coded seed: thread the seed from configuration (WithSeed)", name)
							break
						}
					}
				}
			case "time":
				switch name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in a deterministic-replay package", name)
				}
			}
			return true
		})
	}
}

// packageQualifier reports the import path of sel's qualifier when the
// qualifier is a package name (rand.Intn, time.Now).
func packageQualifier(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isConstantLiteral reports whether e is (or trivially folds to) an
// untyped constant written in the source, e.g. 1 or 42*7.
func isConstantLiteral(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isConstantLiteral(pass, e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB || e.Op == token.MUL {
			return isConstantLiteral(pass, e.X) && isConstantLiteral(pass, e.Y)
		}
	case *ast.ParenExpr:
		return isConstantLiteral(pass, e.X)
	}
	return false
}
