package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the repository's stdlib-only stand-in for x/tools'
// analysistest: fixture packages under testdata/ carry
//
//	// want "regexp" "regexp"
//
// comments on the lines where an analyzer must report, and CheckFixture
// verifies the produced diagnostics against them — every expectation
// must be matched by a diagnostic on its line, and every diagnostic must
// be expected. A fixture with no want comments therefore asserts the
// analyzer stays silent on clean code.

// Reporter receives fixture mismatches; *testing.T satisfies it.
type Reporter interface {
	Errorf(format string, args ...any)
}

// wantPrefix introduces an expectation comment.
const wantPrefix = "want"

// ParseWant parses the text of one comment (without the // marker). It
// returns the expected diagnostic regexps and ok=true when the comment
// is a want comment; a malformed want comment returns an error. Non-want
// comments return ok=false.
func ParseWant(text string) (patterns []string, ok bool, err error) {
	s := strings.TrimSpace(text)
	rest, found := strings.CutPrefix(s, wantPrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '"') {
		// Not a want comment (e.g. "wanted" prose).
		return nil, false, nil
	}
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			break
		}
		if rest[0] != '"' {
			return nil, true, fmt.Errorf("want comment: expected quoted regexp, got %q", rest)
		}
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			return nil, true, err
		}
		pat, err := strconv.Unquote(lit)
		if err != nil {
			return nil, true, fmt.Errorf("want comment: bad string %s: %v", lit, err)
		}
		if _, err := regexp.Compile(pat); err != nil {
			return nil, true, fmt.Errorf("want comment: bad regexp %q: %v", pat, err)
		}
		patterns = append(patterns, pat)
		rest = remainder
	}
	if len(patterns) == 0 {
		return nil, true, fmt.Errorf("want comment carries no quoted regexp")
	}
	return patterns, true, nil
}

// cutStringLit splits a leading Go double-quoted string literal off s.
func cutStringLit(s string) (lit, rest string, err error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case '"':
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("want comment: unterminated string in %q", s)
}

// fixtureImporterOnce shares one source importer across fixtures so the
// standard library is type-checked once per test process.
var (
	fixtureImporterOnce sync.Once
	fixtureFset         *token.FileSet
	fixtureImporter     types.Importer
)

func fixtureEnv() (*token.FileSet, types.Importer) {
	fixtureImporterOnce.Do(func() {
		fixtureFset = token.NewFileSet()
		fixtureImporter = importer.ForCompiler(fixtureFset, "source", nil)
	})
	return fixtureFset, fixtureImporter
}

// CheckFixture type-checks the fixture package in dir, runs analyzer a
// over it (including suppression handling, so fixtures can assert that
// //scip: comments silence findings) and verifies the diagnostics
// against the want comments.
func CheckFixture(r Reporter, a *Analyzer, dir string) {
	fset, imp := fixtureEnv()
	pkg, err := CheckDir(fset, dir, "fixture/"+filepath.Base(dir), imp)
	if err != nil {
		r.Errorf("loading fixture %s: %v", dir, err)
		return
	}
	checkWants(r, dir, fset, []*Package{pkg}, Run(a, pkg))
}

// fixtureModule resolves imports inside one multi-package fixture tree:
// "fixture/<base>" maps to root, "fixture/<base>/<rel>" to root/<rel>,
// and anything else falls through to the shared stdlib source importer.
// Sub-packages let fixtures exercise cross-package call edges and the
// path-suffix scoping of the flow analyzers (a directory named
// internal/cache inside a fixture IS a clocktaint sink package).
type fixtureModule struct {
	root   string
	prefix string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*Package
}

func (m *fixtureModule) Import(path string) (*types.Package, error) {
	if path == m.prefix || strings.HasPrefix(path, m.prefix+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

func (m *fixtureModule) load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.prefix), "/")
	pkg, err := CheckDir(m.fset, filepath.Join(m.root, filepath.FromSlash(rel)), path, m)
	if err != nil {
		return nil, err
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// CheckFixtureModule loads every package under root (root itself plus
// any subdirectories with Go files) as one fixture module, runs the
// analyzers module-wide through VetModule — cross-package call edges,
// shared suppressions and the stale-suppression audit included — and
// verifies the merged diagnostics against the want comments of all
// files.
func CheckFixtureModule(r Reporter, analyzers []*Analyzer, root string) {
	fset, imp := fixtureEnv()
	fm := &fixtureModule{
		root:   root,
		prefix: "fixture/" + filepath.Base(root),
		fset:   fset,
		std:    imp,
		pkgs:   make(map[string]*Package),
	}
	dirs, err := fixtureDirs(root)
	if err != nil {
		r.Errorf("scanning fixture %s: %v", root, err)
		return
	}
	var pkgs []*Package
	for _, rel := range dirs {
		path := fm.prefix
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := fm.load(path)
		if err != nil {
			r.Errorf("loading fixture package %s: %v", path, err)
			return
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		r.Errorf("fixture %s holds no Go packages", root)
		return
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	checkWants(r, root, fset, pkgs, VetModule(analyzers, NewModule(pkgs)))
}

// fixtureDirs lists the directories under root holding Go source,
// relative to root, in sorted order.
func fixtureDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			dirs = append(dirs, rel)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// checkWants verifies diagnostics against the want comments of the
// packages' files: every expectation must be matched by a diagnostic on
// its line, and every diagnostic must be expected.
func checkWants(r Reporter, dir string, fset *token.FileSet, pkgs []*Package, diags []Diagnostic) {
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					pats, ok, err := ParseWant(text)
					if err != nil {
						pos := fset.Position(c.Pos())
						r.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
						continue
					}
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], pats...)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		pats := wants[k]
		matched := -1
		for i, pat := range pats {
			if regexp.MustCompile(pat).MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			r.Errorf("%s: unexpected diagnostic: %s (analyzer %s)", dir, d, d.Analyzer)
			continue
		}
		wants[k] = append(pats[:matched], pats[matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	// Report unmatched expectations in file/line order, not map order.
	var missed []key
	for k := range wants {
		//scip:ordered-ok collect-then-sort: the slice is sorted immediately below, erasing map order
		missed = append(missed, k)
	}
	sort.Slice(missed, func(i, j int) bool {
		if missed[i].file != missed[j].file {
			return missed[i].file < missed[j].file
		}
		return missed[i].line < missed[j].line
	})
	for _, k := range missed {
		for _, pat := range wants[k] {
			r.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
		}
	}
}
