package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages of one module. Analyzers see
// only non-test files: the invariants guard production behaviour, and
// tests legitimately use wall clocks and throwaway RNGs.
type Loader struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	Fset       *token.FileSet

	pkgs     map[string]*Package // by import path
	checking map[string]bool     // import cycle detection
	fallback types.ImporterFrom  // stdlib, resolved from source
}

// NewLoader locates the module root at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:       root,
		ModulePath: modPath,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	// The "source" importer type-checks dependencies from GOROOT source,
	// so the driver needs no export data and no x/tools.
	l.fallback = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves the patterns (import paths relative to the module root;
// "./..." or "..." expands to every package in the module, and a
// "dir/..." suffix expands to every package under dir) and returns
// the matched packages, type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, l.relDir(strings.TrimSuffix(pat, "/...")))
			all, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			matched := false
			for _, d := range all {
				if d == base || strings.HasPrefix(d, base+string(filepath.Separator)) {
					dirs[d] = true
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("analysis: pattern %s matched no packages", pat)
			}
		default:
			dirs[filepath.Join(l.Root, l.relDir(pat))] = true
		}
	}
	// Load in sorted directory order (not map order) so packages are
	// checked — and any type-check error is reported — deterministically.
	sorted := make([]string, 0, len(dirs))
	for dir := range dirs {
		//scip:ordered-ok collect-then-sort: the slice is sorted immediately below, erasing map order
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, dir := range sorted {
		ok, err := hasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// relDir normalises a package pattern ("./internal/cache", an import
// path, or "") to a directory path relative to the module root.
func (l *Loader) relDir(pat string) string {
	rel := strings.TrimPrefix(pat, "./")
	rel = strings.TrimPrefix(rel, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	if rel == "" {
		rel = "."
	}
	return rel
}

// moduleDirs returns every directory under the root that contains
// non-test Go files, skipping testdata, vendor, hidden and underscore
// directories.
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoised).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	pkg, err := CheckDir(l.Fset, dir, path, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths are
// type-checked from source in their directory; everything else (the
// standard library) is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(path, l.ModulePath)
		rel = strings.TrimPrefix(rel, "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// CheckDir parses the non-test Go files of one directory and type-checks
// them as the package at importPath, resolving imports through imp. It is
// the loader's workhorse and is used directly by the fixture harness,
// which checks testdata directories that are not part of the module.
func CheckDir(fset *token.FileSet, dir, importPath string, imp types.Importer) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			// Parse errors carry their own file:line; prefix the package so
			// multi-package loads name the failing package too.
			return nil, fmt.Errorf("analysis: package %s: %w", importPath, err)
		}
		if excludedByBuildTags(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Collect every type error so the report can carry an exact position:
	// conf.Check alone returns only the first error, and when that error
	// surfaces through a dependency import it reaches the driver with no
	// file context at all.
	var terrs []types.Error
	conf := types.Config{Importer: imp, Error: func(err error) {
		if te, ok := err.(types.Error); ok && !te.Soft {
			terrs = append(terrs, te)
		}
	}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(terrs) > 0 {
		te := terrs[0]
		extra := ""
		if n := len(terrs); n > 1 {
			extra = fmt.Sprintf(" (and %d more)", n-1)
		}
		return nil, fmt.Errorf("analysis: package %s: %s: %s%s",
			importPath, te.Fset.Position(te.Pos), te.Msg, extra)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: package %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// excludedByBuildTags reports whether f's //go:build (or legacy +build)
// constraint excludes it from the default, tag-less build configuration —
// the configuration the analyzers model, matching plain `go vet ./...`.
// Files behind opt-in tags (e.g. the cache package's scipdebug handle
// guards) would otherwise collide with their default-configuration
// counterparts during type checking.
func excludedByBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return !expr.Eval(defaultBuildTag)
		}
	}
	return false
}

// defaultBuildTag evaluates one constraint tag for the default
// configuration: the host OS/arch and release tags hold, custom tags do
// not.
func defaultBuildTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH {
		return true
	}
	return strings.HasPrefix(tag, "go1")
}
