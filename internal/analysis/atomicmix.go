package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicmix enforces all-or-nothing atomicity per variable: a field or
// package-level variable that is ever passed to a sync/atomic function
// (atomic.AddInt64(&x.f, ...), atomic.LoadInt64(&x.f), ...) must never
// be read or written with a plain load or store anywhere else in the
// package. One plain `x.f++` next to an atomic reader is a data race the
// race detector only catches when the schedule cooperates; mixed access
// also defeats the happens-before reasoning the lock-free stats path
// depends on. Fields of the modern atomic.Int64-style types cannot be
// mixed by construction (and their copies are Nocopy's business); this
// analyzer closes the hole the free-function API leaves open.
var Atomicmix = &Analyzer{
	Name:     "atomicmix",
	Doc:      "flag plain access to variables that are accessed atomically elsewhere",
	Suppress: []string{"atomic-ok"},
	Run:      runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	// Pass A: find every variable that appears as &v in a sync/atomic
	// call; remember the identifiers that participate in those calls so
	// pass B can exempt them.
	atomicSites := make(map[types.Object]token.Position)
	inAtomicCall := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				markAtomicArg(pass, arg, call, atomicSites, inAtomicCall)
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return
	}
	// Pass B: any other use of those variables is a plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inAtomicCall[id] {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				return true
			}
			site, tracked := atomicSites[obj]
			if !tracked || obj.Pos() == id.Pos() {
				// Untracked, or this is the declaration itself.
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed atomically at %s:%d; use sync/atomic consistently",
				id.Name, shortFile(site.Filename), site.Line)
			return true
		})
	}
}

// markAtomicArg records the variable behind an &v (or &x.f) argument of
// an atomic call, and marks every identifier inside the argument as
// participating in atomic access.
func markAtomicArg(pass *Pass, arg ast.Expr, call *ast.CallExpr, sites map[types.Object]token.Position, inCall map[*ast.Ident]bool) {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return
	}
	var target *ast.Ident
	switch e := un.X.(type) {
	case *ast.Ident:
		target = e
	case *ast.SelectorExpr:
		target = e.Sel
	case *ast.IndexExpr:
		target = baseIdent(e)
	}
	if target == nil {
		return
	}
	obj := pass.ObjectOf(target)
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if _, seen := sites[obj]; !seen {
		sites[obj] = pass.Fset.Position(call.Pos())
	}
	ast.Inspect(un, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			inCall[id] = true
		}
		return true
	})
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// read-modify-write or load/store function.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, ok := packageQualifier(pass, sel)
	if !ok || path != "sync/atomic" {
		return false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// shortFile trims the path to its last two elements for messages.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
