package analysis

import (
	"go/ast"
	"go/types"
)

// Nocopy flags value copies of types that must stay put: structs
// containing sync primitives (Mutex, RWMutex, WaitGroup, Once, Cond,
// Map, Pool) or sync/atomic counter types, directly or transitively —
// which covers the repository's cache-line-padded stats.ShardCounters /
// stats.Histogram blocks and shard.shardSlot without naming them. A
// copied mutex deadlocks or fails to exclude; a copied atomic counter
// silently forks the count; a copied padded block loses its false-
// sharing isolation. go vet's copylocks catches the sync cases but not
// the atomic ones, which are exactly what the lock-free stats path uses.
//
// Flagged: assignments and declarations copying an addressable no-copy
// value, passing one as a call argument, returning one, range clauses
// that copy no-copy elements, and method declarations with a no-copy
// value receiver or parameter. Constructing a fresh value (composite
// literal, function result) is allowed.
var Nocopy = &Analyzer{
	Name:     "nocopy",
	Doc:      "flag by-value copies of types containing sync or atomic state",
	Suppress: []string{"copy-ok"},
	Run:      runNocopy,
}

// noCopyPkgTypes are the named types whose values pin their address.
var noCopyPkgTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true,
		"Once": true, "Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// nocopyChecker caches per-type verdicts (the reason a type must not be
// copied, or "" when copying is fine).
type nocopyChecker struct {
	pass  *Pass
	cache map[types.Type]string
}

func runNocopy(pass *Pass) {
	c := &nocopyChecker{pass: pass, cache: make(map[types.Type]string)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkValueUse(rhs, "assignment copies")
				}
			case *ast.CallExpr:
				if isConversion(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					c.checkValueUse(arg, "call argument copies")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkValueUse(res, "return copies")
				}
			case *ast.RangeStmt:
				c.checkRange(n)
			case *ast.FuncDecl:
				c.checkFuncDecl(n)
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkValueUse(v, "declaration copies")
				}
			}
			return true
		})
	}
}

// checkValueUse reports e when it is an addressable (or dereferenced)
// expression of a no-copy type used as a value. Fresh values —
// composite literals, function results — are fine: they have no other
// owner yet.
func (c *nocopyChecker) checkValueUse(e ast.Expr, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return
	}
	t := c.pass.TypeOf(e)
	if t == nil {
		return
	}
	if reason := c.reason(t); reason != "" {
		c.pass.Reportf(e.Pos(), "%s %s, which contains %s; use a pointer", what, typeLabel(t), reason)
	}
}

// checkRange flags `for _, v := range xs` where the element type must
// not be copied (the per-iteration value variable is a copy).
func (c *nocopyChecker) checkRange(rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := c.pass.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if reason := c.reason(t); reason != "" {
		c.pass.Reportf(rng.Value.Pos(), "range value copies %s, which contains %s; range over indices instead", typeLabel(t), reason)
	}
}

// checkFuncDecl flags no-copy value receivers and parameters: every call
// through them copies.
func (c *nocopyChecker) checkFuncDecl(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if reason := c.reason(t); reason != "" {
				c.pass.Reportf(field.Type.Pos(), "%s %s by value, which contains %s; use a pointer", what, typeLabel(t), reason)
			}
		}
	}
	check(fd.Recv, "method receives")
	check(fd.Type.Params, "function takes")
}

// reason returns why t must not be copied, or "".
func (c *nocopyChecker) reason(t types.Type) string {
	if r, ok := c.cache[t]; ok {
		return r
	}
	c.cache[t] = "" // breaks recursive type cycles
	r := c.computeReason(t)
	c.cache[t] = r
	return r
}

func (c *nocopyChecker) computeReason(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			if names := noCopyPkgTypes[pkg.Path()]; names[obj.Name()] {
				return pkg.Path() + "." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if r := c.reason(u.Field(i).Type()); r != "" {
				return r
			}
		}
	case *types.Array:
		return c.reason(u.Elem())
	}
	return ""
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// typeLabel names t compactly for diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
