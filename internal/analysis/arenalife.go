package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Arenalife encodes the reqScope lifetime rule from internal/server
// (PR 6) as a check instead of a prose comment: a string built with
// unsafe.String over a pooled arena buffer aliases memory that is
// recycled as soon as the handler returns, so it must not outlive the
// request. Tracked arena values are unsafe.String results and the
// results of module functions that return one (itoa-style constructors,
// whose own escaping return carries a //scip:arena-ok justification).
//
// Violations: (1) returning an arena string (it escapes the frame that
// owns the buffer), (2) storing an arena string through a selector or
// index (a struct field, map or slice outlives the request), and (3)
// placing an arena string in a response header without a body write
// later in the same function — net/http serialises the header block
// during the first body write, so a bodyless path serialises headers
// only after the handler returns, when the arena is already recycled.
var Arenalife = &Analyzer{
	Name:     "arenalife",
	Doc:      "keep unsafe arena strings from outliving the request (reqScope lifetime rule)",
	Suppress: []string{"arena-ok"},
	Run:      runArenalife,
}

// arenaSummary records whether a function hands out arena memory.
type arenaSummary struct {
	returnsArena bool
}

func runArenalife(pass *Pass) {
	mod := pass.Mod
	mod.ensureArenaSummaries()
	for _, node := range mod.FuncsOf(pass.P) {
		sc := &arenaScan{mod: mod, node: node, pass: pass, vars: make(map[*types.Var]bool)}
		sc.run()
	}
}

// ensureArenaSummaries computes returnsArena for every module function
// to a fixpoint (memoised).
func (m *Module) ensureArenaSummaries() {
	if m.arenaOnce {
		return
	}
	m.arenaOnce = true
	for _, node := range m.nodes {
		node.arena = &arenaSummary{}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range m.nodes {
			sc := &arenaScan{mod: m, node: node, vars: make(map[*types.Var]bool)}
			if sc.run() {
				changed = true
			}
		}
	}
}

// arenaScan propagates arena-string values through one function body.
type arenaScan struct {
	mod  *Module
	node *FuncNode
	pass *Pass // nil during summary fixpoint
	vars map[*types.Var]bool
}

func (sc *arenaScan) run() bool {
	// Propagate through locals until stable.
	for {
		n := len(sc.vars)
		ast.Inspect(sc.node.Decl.Body, sc.propagate)
		if len(sc.vars) == n {
			break
		}
	}
	sum := sc.node.arena
	before := sum.returnsArena
	sc.check()
	return sum.returnsArena != before
}

// propagate records locals assigned an arena value.
func (sc *arenaScan) propagate(n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return true
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || !sc.isArena(as.Rhs[i]) {
			continue
		}
		if v, ok := sc.varOf(id); ok {
			sc.vars[v] = true
		}
	}
	return true
}

// check walks the body once, reporting violations and updating the
// summary.
func (sc *arenaScan) check() {
	var headerUses []token.Pos
	var lastBodyWrite token.Pos
	info := sc.node.Pkg.Info

	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if sc.isArena(e) {
					sc.node.arena.returnsArena = true
					sc.report(e.Pos(), "arena-backed string escapes via return: it aliases a pooled buffer recycled after the handler returns")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if sc.isArena(n.Rhs[i]) {
						sc.report(n.Pos(), "arena-backed string stored through %s outlives the request scope", exprString(lhs.(ast.Expr)))
					}
				}
			}
		case *ast.CallExpr:
			if isBodyWrite(n) {
				if p := n.Pos(); p > lastBodyWrite {
					lastBodyWrite = p
				}
				return true
			}
			if !isHeaderStore(info, n) {
				return true
			}
			for _, arg := range n.Args {
				if sc.isArena(arg) {
					headerUses = append(headerUses, arg.Pos())
				}
			}
		}
		return true
	})
	for _, p := range headerUses {
		if lastBodyWrite <= p {
			sc.report(p, "arena-backed header value with no body write before return: headers serialise after the arena is recycled (reqScope lifetime rule)")
		}
	}
}

func (sc *arenaScan) report(pos token.Pos, format string, args ...any) {
	if sc.pass != nil {
		sc.pass.Reportf(pos, format, args...)
	}
}

// isArena reports whether e yields an arena-backed string.
func (sc *arenaScan) isArena(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := sc.varOf(e); ok {
			return sc.vars[v]
		}
	case *ast.ParenExpr:
		return sc.isArena(e.X)
	case *ast.CallExpr:
		if isUnsafeString(sc.node.Pkg.Info, e) {
			return true
		}
		callee := sc.callee(e)
		if callee == nil {
			return false
		}
		if node := sc.mod.NodeOf(callee); node != nil && node.arena != nil {
			return node.arena.returnsArena
		}
	}
	return false
}

func (sc *arenaScan) varOf(id *ast.Ident) (*types.Var, bool) {
	info := sc.node.Pkg.Info
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

func (sc *arenaScan) callee(call *ast.CallExpr) *types.Func {
	return staticCallee(sc.node.Pkg.Info, call)
}

// isUnsafeString matches unsafe.String(ptr, len) calls. The unsafe
// pseudo-functions are *types.Builtin objects, not *types.Func, so the
// static-callee path cannot resolve them.
func isUnsafeString(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// isHeaderStore recognises calls that place a value into a response
// header: the package's setHeader helper, and Set/Add/Values-style
// methods on net/http.Header.
func isHeaderStore(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "setHeader"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Set" && fun.Sel.Name != "Add" {
			return false
		}
		t := info.TypeOf(fun.X)
		return t != nil && isHTTPHeader(t)
	}
	return false
}

func isHTTPHeader(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Header"
}

// isBodyWrite recognises the calls that flush the header block to the
// wire: Write/WriteString on a writer (net/http serialises the header
// block during the first body write).
func isBodyWrite(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Write" || fun.Sel.Name == "WriteString"
	case *ast.Ident:
		return fun.Name == "WriteString"
	}
	return false
}
