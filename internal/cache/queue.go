package cache

// Entry is one cached object inside a Queue. Entries are intrusive list
// nodes owned by exactly one Queue at a time. The exported bookkeeping
// fields (Hits, Freq, ...) are shared scratch space for policies so that a
// single allocation serves LRU-family algorithms without per-policy
// wrapper nodes.
type Entry struct {
	Key  uint64
	Size int64

	prev, next *Entry
	owner      *Queue

	// InsertedMRU records whether the entry last entered the queue at
	// the MRU position (SCIP's insert_pos flag).
	InsertedMRU bool
	// Residency records how the entry's current residency began.
	Residency Residency
	// Hits counts hits during the current residency.
	Hits int
	// InsertTime is the request time at which the entry entered the
	// cache for the current residency.
	InsertTime int64
	// LastAccess is the request time of the most recent access.
	LastAccess int64
	// Freq is a generic frequency counter for frequency-aware policies.
	Freq int
	// Score is a generic priority used by GDSF and similar policies.
	Score float64
	// Class is a generic small-integer classification slot (size class,
	// segment number, ...).
	Class int
}

// InQueue reports whether the entry is currently linked into a queue.
func (e *Entry) InQueue() bool { return e.owner != nil }

// Queue is an intrusive doubly-linked list with byte accounting. The front
// is the MRU end, the back is the LRU end. All operations are O(1).
//
// The zero value is ready to use.
type Queue struct {
	head, tail *Entry
	n          int
	bytes      int64
}

// Len returns the number of entries.
func (q *Queue) Len() int { return q.n }

// Bytes returns the sum of entry sizes.
func (q *Queue) Bytes() int64 { return q.bytes }

// Front returns the MRU entry, or nil when empty.
func (q *Queue) Front() *Entry { return q.head }

// Back returns the LRU entry, or nil when empty.
func (q *Queue) Back() *Entry { return q.tail }

// PushFront inserts e at the MRU end. e must not belong to any queue.
func (q *Queue) PushFront(e *Entry) {
	if e.owner != nil {
		panic("cache: PushFront of entry already in a queue")
	}
	e.owner = q
	e.prev = nil
	e.next = q.head
	if q.head != nil {
		q.head.prev = e
	} else {
		q.tail = e
	}
	q.head = e
	q.n++
	q.bytes += e.Size
}

// PushBack inserts e at the LRU end. e must not belong to any queue.
func (q *Queue) PushBack(e *Entry) {
	if e.owner != nil {
		panic("cache: PushBack of entry already in a queue")
	}
	e.owner = q
	e.next = nil
	e.prev = q.tail
	if q.tail != nil {
		q.tail.next = e
	} else {
		q.head = e
	}
	q.tail = e
	q.n++
	q.bytes += e.Size
}

// InsertBefore inserts e immediately MRU-ward of mark. mark must belong to
// q and e must be detached.
func (q *Queue) InsertBefore(e, mark *Entry) {
	if mark.owner != q {
		panic("cache: InsertBefore mark not in queue")
	}
	if e.owner != nil {
		panic("cache: InsertBefore of entry already in a queue")
	}
	e.owner = q
	e.next = mark
	e.prev = mark.prev
	if mark.prev != nil {
		mark.prev.next = e
	} else {
		q.head = e
	}
	mark.prev = e
	q.n++
	q.bytes += e.Size
}

// InsertAfter inserts e immediately LRU-ward of mark. mark must belong to
// q and e must be detached.
func (q *Queue) InsertAfter(e, mark *Entry) {
	if mark.owner != q {
		panic("cache: InsertAfter mark not in queue")
	}
	if e.owner != nil {
		panic("cache: InsertAfter of entry already in a queue")
	}
	e.owner = q
	e.prev = mark
	e.next = mark.next
	if mark.next != nil {
		mark.next.prev = e
	} else {
		q.tail = e
	}
	mark.next = e
	q.n++
	q.bytes += e.Size
}

// Remove unlinks e from the queue. e must belong to q.
func (q *Queue) Remove(e *Entry) {
	if e.owner != q {
		panic("cache: Remove of entry not in this queue")
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next, e.owner = nil, nil, nil
	q.n--
	q.bytes -= e.Size
}

// MoveToFront moves an entry already in the queue to the MRU end.
func (q *Queue) MoveToFront(e *Entry) {
	if q.head == e {
		return
	}
	q.Remove(e)
	q.PushFront(e)
}

// MoveToBack moves an entry already in the queue to the LRU end.
func (q *Queue) MoveToBack(e *Entry) {
	if q.tail == e {
		return
	}
	q.Remove(e)
	q.PushBack(e)
}

// MoveTowardFront moves e one position toward the MRU end (PIPP-style
// single-step promotion). No-op if e is already at the front.
func (q *Queue) MoveTowardFront(e *Entry) {
	p := e.prev
	if p == nil {
		return
	}
	q.Remove(e)
	q.InsertBefore(e, p)
}

// Next returns the entry LRU-ward of e (toward the back), or nil.
func (e *Entry) Next() *Entry { return e.next }

// Prev returns the entry MRU-ward of e (toward the front), or nil.
func (e *Entry) Prev() *Entry { return e.prev }
