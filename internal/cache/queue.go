package cache

// Entry is one cached object inside an Arena. Entries are intrusive list
// nodes owned by exactly one Queue at a time, linked through int32 handles
// rather than pointers: the struct contains no pointers at all, so the
// slab holding millions of entries is invisible to the garbage collector.
// The exported bookkeeping fields (Hits, Freq, ...) are shared scratch
// space for policies so that a single slot serves LRU-family algorithms
// without per-policy wrapper nodes.
//
// The struct is exactly 64 bytes — one cache line — so every entry touch
// on the replay hot path costs a single line fill. Keep it that way when
// adding fields (there is a compile-time guard in arena.go).
type Entry struct {
	Key  uint64
	Size int64

	// InsertTime is the request time at which the entry entered the
	// cache for the current residency.
	InsertTime int64
	// LastAccess is the request time of the most recent access.
	LastAccess int64
	// Score is a generic priority used by GDSF and similar policies.
	Score float64
	// Hits counts hits during the current residency.
	Hits int32
	// Freq is a generic frequency counter for frequency-aware policies.
	Freq int32
	// Class is a generic small-integer classification slot (size class,
	// segment number, ...).
	Class int32

	prev, next Handle
	// owner is the id of the queue holding this entry (0 detached,
	// ownerFree on the freelist).
	owner int16

	// InsertedMRU records whether the entry last entered the queue at
	// the MRU position (SCIP's insert_pos flag).
	InsertedMRU bool
	// Residency records how the entry's current residency began.
	Residency Residency
}

// InQueue reports whether the entry is currently linked into a queue.
func (e *Entry) InQueue() bool { return e.owner > 0 }

// Queue is an intrusive doubly-linked list of arena entries with byte
// accounting. The front is the MRU end, the back is the LRU end. All
// operations are O(1) and take handles; use At (or the arena's At) to
// reach the entry behind a handle.
//
// Queues are created by Arena.NewQueue and operate only on handles from
// that arena; the zero value is not usable.
type Queue struct {
	a          *Arena
	id         int16
	head, tail Handle
	n          int
	bytes      int64
}

// Arena returns the arena this queue links entries in.
func (q *Queue) Arena() *Arena { return q.a }

// Len returns the number of entries.
func (q *Queue) Len() int { return q.n }

// Bytes returns the sum of entry sizes.
func (q *Queue) Bytes() int64 { return q.bytes }

// Front returns the MRU entry's handle, or None when empty.
func (q *Queue) Front() Handle { return q.head }

// Back returns the LRU entry's handle, or None when empty.
func (q *Queue) Back() Handle { return q.tail }

// At returns the entry for h. The pointer is transient — see Arena.At.
func (q *Queue) At(h Handle) *Entry { return q.a.At(h) }

// Next returns the handle LRU-ward of h (toward the back), or None.
func (q *Queue) Next(h Handle) Handle { return q.a.slab[h].next }

// Prev returns the handle MRU-ward of h (toward the front), or None.
func (q *Queue) Prev(h Handle) Handle { return q.a.slab[h].prev }

// Clear empties the queue without freeing its entries: the caller either
// frees them individually or resets the whole arena alongside.
func (q *Queue) Clear() {
	q.head, q.tail = None, None
	q.n, q.bytes = 0, 0
}

// PushFront inserts h at the MRU end. The entry must not belong to any
// queue.
func (q *Queue) PushFront(h Handle) {
	slab := q.a.slab
	e := &slab[h]
	if e.owner != 0 {
		panic("cache: PushFront of entry already in a queue")
	}
	e.owner = q.id
	e.prev = None
	e.next = q.head
	if q.head != None {
		slab[q.head].prev = h
	} else {
		q.tail = h
	}
	q.head = h
	q.n++
	q.bytes += e.Size
}

// PushBack inserts h at the LRU end. The entry must not belong to any
// queue.
func (q *Queue) PushBack(h Handle) {
	slab := q.a.slab
	e := &slab[h]
	if e.owner != 0 {
		panic("cache: PushBack of entry already in a queue")
	}
	e.owner = q.id
	e.next = None
	e.prev = q.tail
	if q.tail != None {
		slab[q.tail].next = h
	} else {
		q.head = h
	}
	q.tail = h
	q.n++
	q.bytes += e.Size
}

// InsertBefore inserts h immediately MRU-ward of mark. mark must belong
// to q and h must be detached.
func (q *Queue) InsertBefore(h, mark Handle) {
	slab := q.a.slab
	m := &slab[mark]
	if m.owner != q.id {
		panic("cache: InsertBefore mark not in queue")
	}
	e := &slab[h]
	if e.owner != 0 {
		panic("cache: InsertBefore of entry already in a queue")
	}
	e.owner = q.id
	e.next = mark
	e.prev = m.prev
	if m.prev != None {
		slab[m.prev].next = h
	} else {
		q.head = h
	}
	m.prev = h
	q.n++
	q.bytes += e.Size
}

// InsertAfter inserts h immediately LRU-ward of mark. mark must belong to
// q and h must be detached.
func (q *Queue) InsertAfter(h, mark Handle) {
	slab := q.a.slab
	m := &slab[mark]
	if m.owner != q.id {
		panic("cache: InsertAfter mark not in queue")
	}
	e := &slab[h]
	if e.owner != 0 {
		panic("cache: InsertAfter of entry already in a queue")
	}
	e.owner = q.id
	e.prev = mark
	e.next = m.next
	if m.next != None {
		slab[m.next].prev = h
	} else {
		q.tail = h
	}
	m.next = h
	q.n++
	q.bytes += e.Size
}

// Remove unlinks h from the queue. The entry must belong to q.
func (q *Queue) Remove(h Handle) {
	slab := q.a.slab
	e := &slab[h]
	if e.owner != q.id {
		panic("cache: Remove of entry not in this queue")
	}
	if e.prev != None {
		slab[e.prev].next = e.next
	} else {
		q.head = e.next
	}
	if e.next != None {
		slab[e.next].prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next, e.owner = None, None, 0
	q.n--
	q.bytes -= e.Size
}

// MoveToFront moves an entry already in the queue to the MRU end. This is
// the hottest queue operation (every LRU-family hit lands here), so it
// splices directly instead of Remove+PushFront: length and byte accounting
// are unchanged by a move, and h != head implies e.prev is a real handle.
func (q *Queue) MoveToFront(h Handle) {
	if q.head == h {
		return
	}
	slab := q.a.slab
	e := &slab[h]
	if e.owner != q.id {
		panic("cache: MoveToFront of entry not in this queue")
	}
	slab[e.prev].next = e.next
	if e.next != None {
		slab[e.next].prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev = None
	e.next = q.head
	slab[q.head].prev = h
	q.head = h
}

// MoveToBack moves an entry already in the queue to the LRU end. Direct
// splice for the same reason as MoveToFront.
func (q *Queue) MoveToBack(h Handle) {
	if q.tail == h {
		return
	}
	slab := q.a.slab
	e := &slab[h]
	if e.owner != q.id {
		panic("cache: MoveToBack of entry not in this queue")
	}
	slab[e.next].prev = e.prev
	if e.prev != None {
		slab[e.prev].next = e.next
	} else {
		q.head = e.next
	}
	e.next = None
	e.prev = q.tail
	slab[q.tail].next = h
	q.tail = h
}

// MoveTowardFront moves h one position toward the MRU end (PIPP-style
// single-step promotion). No-op if h is already at the front.
func (q *Queue) MoveTowardFront(h Handle) {
	p := q.a.slab[h].prev
	if p == None {
		return
	}
	q.Remove(h)
	q.InsertBefore(h, p)
}
