//go:build !scipdebug

package cache

// handleChecks gates per-dereference handle validation (range and
// freed-slot checks in Arena.At). Off in normal builds: the serving path
// relies on the slice bounds check alone. Build with -tags scipdebug to
// turn misuse of stale handles into immediate panics.
const handleChecks = false
