package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func keysFrontToBack(q *Queue) []uint64 {
	var out []uint64
	for e := q.Front(); e != nil; e = e.Next() {
		out = append(out, e.Key)
	}
	return out
}

func keysBackToFront(q *Queue) []uint64 {
	var out []uint64
	for e := q.Back(); e != nil; e = e.Prev() {
		out = append(out, e.Key)
	}
	return out
}

func TestQueuePushFrontOrder(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 3; i++ {
		q.PushFront(&Entry{Key: i, Size: 1})
	}
	got := keysFrontToBack(&q)
	want := []uint64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Len() != 3 || q.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d, want 3,3", q.Len(), q.Bytes())
	}
}

func TestQueuePushBackOrder(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 3; i++ {
		q.PushBack(&Entry{Key: i, Size: 2})
	}
	got := keysFrontToBack(&q)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Bytes() != 6 {
		t.Fatalf("Bytes=%d, want 6", q.Bytes())
	}
}

func TestQueueRemoveMiddle(t *testing.T) {
	var q Queue
	es := make([]*Entry, 5)
	for i := range es {
		es[i] = &Entry{Key: uint64(i), Size: 1}
		q.PushBack(es[i])
	}
	q.Remove(es[2])
	if es[2].InQueue() {
		t.Fatal("removed entry still reports InQueue")
	}
	got := keysFrontToBack(&q)
	want := []uint64{0, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	back := keysBackToFront(&q)
	for i := range want {
		if back[len(back)-1-i] != want[i] {
			t.Fatalf("reverse order broken: %v", back)
		}
	}
}

func TestQueueRemoveEnds(t *testing.T) {
	var q Queue
	a := &Entry{Key: 1, Size: 1}
	b := &Entry{Key: 2, Size: 1}
	q.PushBack(a)
	q.PushBack(b)
	q.Remove(a)
	if q.Front() != b || q.Back() != b {
		t.Fatal("removing head broke ends")
	}
	q.Remove(b)
	if q.Front() != nil || q.Back() != nil || q.Len() != 0 || q.Bytes() != 0 {
		t.Fatal("queue not empty after removing all")
	}
}

func TestQueueMoveToFrontAndBack(t *testing.T) {
	var q Queue
	es := make([]*Entry, 3)
	for i := range es {
		es[i] = &Entry{Key: uint64(i), Size: 1}
		q.PushBack(es[i])
	}
	q.MoveToFront(es[2])
	if q.Front().Key != 2 {
		t.Fatalf("front = %d, want 2", q.Front().Key)
	}
	q.MoveToBack(es[2])
	if q.Back().Key != 2 {
		t.Fatalf("back = %d, want 2", q.Back().Key)
	}
	// Moving the element already at the target end is a no-op.
	q.MoveToBack(q.Back())
	q.MoveToFront(q.Front())
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3", q.Len())
	}
}

func TestQueueMoveTowardFront(t *testing.T) {
	var q Queue
	es := make([]*Entry, 3)
	for i := range es {
		es[i] = &Entry{Key: uint64(i), Size: 1}
		q.PushBack(es[i])
	}
	q.MoveTowardFront(es[2]) // 0,1,2 -> 0,2,1
	got := keysFrontToBack(&q)
	want := []uint64{0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	q.MoveTowardFront(es[2]) // -> 2,0,1
	q.MoveTowardFront(es[2]) // already front: no-op
	if q.Front().Key != 2 {
		t.Fatalf("front = %d, want 2", q.Front().Key)
	}
}

func TestQueueInsertBeforeAfter(t *testing.T) {
	var q Queue
	a := &Entry{Key: 1, Size: 1}
	c := &Entry{Key: 3, Size: 1}
	q.PushBack(a)
	q.PushBack(c)
	b := &Entry{Key: 2, Size: 1}
	q.InsertBefore(b, c)
	got := keysFrontToBack(&q)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	d := &Entry{Key: 4, Size: 1}
	q.InsertAfter(d, c)
	if q.Back() != d {
		t.Fatal("InsertAfter tail entry did not become back")
	}
	e := &Entry{Key: 0, Size: 1}
	q.InsertBefore(e, a)
	if q.Front() != e {
		t.Fatal("InsertBefore head entry did not become front")
	}
}

func TestQueuePanicsOnMisuse(t *testing.T) {
	var q, q2 Queue
	e := &Entry{Key: 1, Size: 1}
	q.PushBack(e)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double PushBack", func() { q.PushBack(e) })
	mustPanic("double PushFront", func() { q.PushFront(e) })
	mustPanic("Remove from wrong queue", func() { q2.Remove(e) })
	mustPanic("evict empty", func() { NewLRU(10).evictOne() })
}

// TestQueueRandomOpsInvariant drives random operations and checks the
// byte/length invariants and bidirectional consistency after each step.
func TestQueueRandomOpsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue
	live := map[uint64]*Entry{}
	var wantBytes int64
	next := uint64(0)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(live) == 0:
			e := &Entry{Key: next, Size: int64(rng.Intn(100) + 1)}
			next++
			if rng.Intn(2) == 0 {
				q.PushFront(e)
			} else {
				q.PushBack(e)
			}
			live[e.Key] = e
			wantBytes += e.Size
		case op == 1:
			for _, e := range live {
				q.Remove(e)
				delete(live, e.Key)
				wantBytes -= e.Size
				break
			}
		case op == 2:
			for _, e := range live {
				q.MoveToFront(e)
				break
			}
		default:
			for _, e := range live {
				q.MoveTowardFront(e)
				break
			}
		}
		if q.Len() != len(live) {
			t.Fatalf("step %d: Len=%d want %d", step, q.Len(), len(live))
		}
		if q.Bytes() != wantBytes {
			t.Fatalf("step %d: Bytes=%d want %d", step, q.Bytes(), wantBytes)
		}
	}
	fw := keysFrontToBack(&q)
	bw := keysBackToFront(&q)
	if len(fw) != len(bw) {
		t.Fatalf("asymmetric traversal: %d vs %d", len(fw), len(bw))
	}
	for i := range fw {
		if fw[i] != bw[len(bw)-1-i] {
			t.Fatal("forward and backward traversals disagree")
		}
	}
}

// Property: for any sequence of front/back pushes, the concatenation of
// reversed-front-pushes and back-pushes equals the queue order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var q Queue
		var fronts, backs []uint64
		for i, front := range ops {
			k := uint64(i)
			e := &Entry{Key: k, Size: 1}
			if front {
				q.PushFront(e)
				fronts = append(fronts, k)
			} else {
				q.PushBack(e)
				backs = append(backs, k)
			}
		}
		want := make([]uint64, 0, len(ops))
		for i := len(fronts) - 1; i >= 0; i-- {
			want = append(want, fronts[i])
		}
		want = append(want, backs...)
		got := keysFrontToBack(&q)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
