package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allocSized allocates an arena entry with the given key and size.
func allocSized(a *Arena, key uint64, size int64) Handle {
	h := a.Alloc()
	e := a.At(h)
	e.Key = key
	e.Size = size
	return h
}

func keysFrontToBack(q *Queue) []uint64 {
	var out []uint64
	for h := q.Front(); h != None; h = q.Next(h) {
		out = append(out, q.At(h).Key)
	}
	return out
}

func keysBackToFront(q *Queue) []uint64 {
	var out []uint64
	for h := q.Back(); h != None; h = q.Prev(h) {
		out = append(out, q.At(h).Key)
	}
	return out
}

func TestQueuePushFrontOrder(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	for i := uint64(1); i <= 3; i++ {
		q.PushFront(allocSized(&a, i, 1))
	}
	got := keysFrontToBack(&q)
	want := []uint64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Len() != 3 || q.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d, want 3,3", q.Len(), q.Bytes())
	}
}

func TestQueuePushBackOrder(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	for i := uint64(1); i <= 3; i++ {
		q.PushBack(allocSized(&a, i, 2))
	}
	got := keysFrontToBack(&q)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Bytes() != 6 {
		t.Fatalf("Bytes=%d, want 6", q.Bytes())
	}
}

func TestQueueRemoveMiddle(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	hs := make([]Handle, 5)
	for i := range hs {
		hs[i] = allocSized(&a, uint64(i), 1)
		q.PushBack(hs[i])
	}
	q.Remove(hs[2])
	if a.At(hs[2]).InQueue() {
		t.Fatal("removed entry still reports InQueue")
	}
	got := keysFrontToBack(&q)
	want := []uint64{0, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	back := keysBackToFront(&q)
	for i := range want {
		if back[len(back)-1-i] != want[i] {
			t.Fatalf("reverse order broken: %v", back)
		}
	}
}

func TestQueueRemoveEnds(t *testing.T) {
	var ar Arena
	q := ar.NewQueue()
	a := allocSized(&ar, 1, 1)
	b := allocSized(&ar, 2, 1)
	q.PushBack(a)
	q.PushBack(b)
	q.Remove(a)
	if q.Front() != b || q.Back() != b {
		t.Fatal("removing head broke ends")
	}
	q.Remove(b)
	if q.Front() != None || q.Back() != None || q.Len() != 0 || q.Bytes() != 0 {
		t.Fatal("queue not empty after removing all")
	}
}

func TestQueueMoveToFrontAndBack(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	hs := make([]Handle, 3)
	for i := range hs {
		hs[i] = allocSized(&a, uint64(i), 1)
		q.PushBack(hs[i])
	}
	q.MoveToFront(hs[2])
	if q.At(q.Front()).Key != 2 {
		t.Fatalf("front = %d, want 2", q.At(q.Front()).Key)
	}
	q.MoveToBack(hs[2])
	if q.At(q.Back()).Key != 2 {
		t.Fatalf("back = %d, want 2", q.At(q.Back()).Key)
	}
	// Moving the element already at the target end is a no-op.
	q.MoveToBack(q.Back())
	q.MoveToFront(q.Front())
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3", q.Len())
	}
}

func TestQueueMoveTowardFront(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	hs := make([]Handle, 3)
	for i := range hs {
		hs[i] = allocSized(&a, uint64(i), 1)
		q.PushBack(hs[i])
	}
	q.MoveTowardFront(hs[2]) // 0,1,2 -> 0,2,1
	got := keysFrontToBack(&q)
	want := []uint64{0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	q.MoveTowardFront(hs[2]) // -> 2,0,1
	q.MoveTowardFront(hs[2]) // already front: no-op
	if q.At(q.Front()).Key != 2 {
		t.Fatalf("front = %d, want 2", q.At(q.Front()).Key)
	}
}

func TestQueueInsertBeforeAfter(t *testing.T) {
	var ar Arena
	q := ar.NewQueue()
	a := allocSized(&ar, 1, 1)
	c := allocSized(&ar, 3, 1)
	q.PushBack(a)
	q.PushBack(c)
	b := allocSized(&ar, 2, 1)
	q.InsertBefore(b, c)
	got := keysFrontToBack(&q)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	d := allocSized(&ar, 4, 1)
	q.InsertAfter(d, c)
	if q.Back() != d {
		t.Fatal("InsertAfter tail entry did not become back")
	}
	e := allocSized(&ar, 0, 1)
	q.InsertBefore(e, a)
	if q.Front() != e {
		t.Fatal("InsertBefore head entry did not become front")
	}
}

func TestQueuePanicsOnMisuse(t *testing.T) {
	var a Arena
	q := a.NewQueue()
	q2 := a.NewQueue()
	h := allocSized(&a, 1, 1)
	q.PushBack(h)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double PushBack", func() { q.PushBack(h) })
	mustPanic("double PushFront", func() { q.PushFront(h) })
	mustPanic("Remove from wrong queue", func() { q2.Remove(h) })
	mustPanic("Free while in queue", func() { a.Free(h) })
	q.Remove(h)
	a.Free(h)
	mustPanic("double Free", func() { a.Free(h) })
	mustPanic("evict empty", func() { NewLRU(10).evictOne() })
}

// TestQueueRandomOpsInvariant drives random operations and checks the
// byte/length invariants and bidirectional consistency after each step.
func TestQueueRandomOpsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Arena
	q := a.NewQueue()
	live := map[uint64]Handle{}
	var wantBytes int64
	next := uint64(0)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(live) == 0:
			h := allocSized(&a, next, int64(rng.Intn(100)+1))
			next++
			if rng.Intn(2) == 0 {
				q.PushFront(h)
			} else {
				q.PushBack(h)
			}
			live[a.At(h).Key] = h
			wantBytes += a.At(h).Size
		case op == 1:
			for k, h := range live {
				wantBytes -= a.At(h).Size
				q.Remove(h)
				a.Free(h)
				delete(live, k)
				break
			}
		case op == 2:
			for _, h := range live {
				q.MoveToFront(h)
				break
			}
		default:
			for _, h := range live {
				q.MoveTowardFront(h)
				break
			}
		}
		if q.Len() != len(live) {
			t.Fatalf("step %d: Len=%d want %d", step, q.Len(), len(live))
		}
		if q.Bytes() != wantBytes {
			t.Fatalf("step %d: Bytes=%d want %d", step, q.Bytes(), wantBytes)
		}
	}
	fw := keysFrontToBack(&q)
	bw := keysBackToFront(&q)
	if len(fw) != len(bw) {
		t.Fatalf("asymmetric traversal: %d vs %d", len(fw), len(bw))
	}
	for i := range fw {
		if fw[i] != bw[len(bw)-1-i] {
			t.Fatal("forward and backward traversals disagree")
		}
	}
}

// Property: for any sequence of front/back pushes, the concatenation of
// reversed-front-pushes and back-pushes equals the queue order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var a Arena
		q := a.NewQueue()
		var fronts, backs []uint64
		for i, front := range ops {
			k := uint64(i)
			h := allocSized(&a, k, 1)
			if front {
				q.PushFront(h)
				fronts = append(fronts, k)
			} else {
				q.PushBack(h)
				backs = append(backs, k)
			}
		}
		want := make([]uint64, 0, len(ops))
		for i := len(fronts) - 1; i >= 0; i-- {
			want = append(want, fronts[i])
		}
		want = append(want, backs...)
		got := keysFrontToBack(&q)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
