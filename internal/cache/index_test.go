package cache

import (
	"math/rand"
	"testing"
)

// checkIndexAgainst compares every observable of x with a reference map:
// Len, Get for every reference key, and ForEach coverage.
func checkIndexAgainst(t *testing.T, x *Index, ref map[uint64]Handle) {
	t.Helper()
	if x.Len() != len(ref) {
		t.Fatalf("Len = %d, ref has %d", x.Len(), len(ref))
	}
	for k, v := range ref {
		if got := x.Get(k); got != v {
			t.Fatalf("Get(%d) = %d, want %d", k, got, v)
		}
	}
	seen := make(map[uint64]Handle, len(ref))
	x.ForEach(func(k uint64, h Handle) {
		if prev, dup := seen[k]; dup {
			t.Fatalf("ForEach yielded key %d twice (%d, %d)", k, prev, h)
		}
		seen[k] = h
	})
	if len(seen) != len(ref) {
		t.Fatalf("ForEach yielded %d keys, ref has %d", len(seen), len(ref))
	}
	for k, v := range seen {
		if ref[k] != v {
			t.Fatalf("ForEach yielded %d=%d, ref %d", k, v, ref[k])
		}
	}
}

// TestIndexVsMapRandomOps drives the index and a map[uint64]Handle through
// the same random operation stream, crossing several incremental growths,
// and requires identical observable behaviour throughout.
func TestIndexVsMapRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x Index // zero value: first Put must self-initialize
	ref := make(map[uint64]Handle)
	// Small key space forces collisions; unbounded growth forces several
	// migration windows within 20k ops.
	const keySpace = 6000
	for op := 0; op < 20_000; op++ {
		key := uint64(rng.Intn(keySpace))
		switch rng.Intn(4) {
		case 0, 1: // Put (insert or overwrite)
			h := Handle(rng.Int31n(1 << 20))
			x.Put(key, h)
			ref[key] = h
		case 2: // Delete
			h, ok := x.Delete(key)
			rh, rok := ref[key]
			if ok != rok || (ok && h != rh) {
				t.Fatalf("op %d: Delete(%d) = (%d,%v), want (%d,%v)", op, key, h, ok, rh, rok)
			}
			delete(ref, key)
		case 3: // Get
			h := x.Get(key)
			rh, rok := ref[key]
			if rok && h != rh || !rok && h != None {
				t.Fatalf("op %d: Get(%d) = %d, ref (%d,%v)", op, key, h, rh, rok)
			}
		}
		if op%2500 == 0 {
			checkIndexAgainst(t, &x, ref)
		}
	}
	checkIndexAgainst(t, &x, ref)

	x.Reset()
	ref = map[uint64]Handle{}
	checkIndexAgainst(t, &x, ref)
	x.Put(1, 42)
	if x.Get(1) != 42 || x.Len() != 1 {
		t.Fatal("index unusable after Reset")
	}
}

// TestIndexMigrationWindow pins behaviour while a frozen table is
// draining: lookups, overwrites and deletes of keys still housed in the
// frozen table must behave as if the table were one.
func TestIndexMigrationWindow(t *testing.T) {
	var x Index
	x.Init(16) // 32 slots
	// Fill to just under the growth threshold, then push it over.
	n := 0
	for ; n < 16; n++ {
		x.Put(uint64(n), Handle(n))
	}
	x.Put(uint64(n), Handle(n)) // triggers grow; frozen table now draining
	n++
	if x.old == nil {
		t.Fatal("expected a frozen table in flight")
	}
	// Every key — migrated or frozen — must resolve.
	for i := 0; i < n; i++ {
		if x.Get(uint64(i)) != Handle(i) {
			t.Fatalf("Get(%d) missed during migration", i)
		}
	}
	// Overwrite a key that may still live in the frozen table: the new
	// mapping must shadow it permanently.
	x.Put(3, 333)
	if x.Get(3) != 333 {
		t.Fatal("overwrite during migration lost")
	}
	// Delete a frozen-resident key.
	if h, ok := x.Delete(5); !ok || h != 5 {
		t.Fatalf("Delete(5) = (%d,%v) during migration", h, ok)
	}
	if x.Get(5) != None {
		t.Fatal("deleted key resurfaced from frozen table")
	}
	// Drain completely via mutations; the frozen table must release.
	for i := 100; i < 200; i++ {
		x.Put(uint64(i), Handle(i))
		x.Delete(uint64(i))
	}
	if x.old != nil {
		t.Fatal("frozen table never drained")
	}
	if x.Get(3) != 333 || x.Get(5) != None || x.Get(0) != 0 {
		t.Fatal("post-drain state wrong")
	}
}

// FuzzIndexVsMap is the differential fuzzer from the issue: an arbitrary
// byte string is decoded into an operation stream applied to both the
// open-addressing index and a reference map, and any observable divergence
// fails. Growth and the incremental-migration window are reachable because
// the index starts at its 16-slot minimum.
func FuzzIndexVsMap(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x42, 0x03, 0x42})
	f.Add([]byte("put get del put put del get"))
	seed := make([]byte, 0, 3*64)
	for i := byte(0); i < 64; i++ { // forces at least two growths
		seed = append(seed, 0x00, i, i)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var x Index
		ref := make(map[uint64]Handle)
		for i := 0; i+1 < len(data); {
			op := data[i]
			key := uint64(data[i+1])
			i += 2
			switch op % 3 {
			case 0: // Put: value derives from the op byte so overwrites differ
				h := Handle(op)
				x.Put(key, h)
				ref[key] = h
			case 1: // Get
				h := x.Get(key)
				rh, ok := ref[key]
				if ok && h != rh || !ok && h != None {
					t.Fatalf("Get(%d) = %d, ref (%d,%v)", key, h, rh, ok)
				}
			case 2: // Delete
				h, ok := x.Delete(key)
				rh, rok := ref[key]
				if ok != rok || (ok && h != rh) {
					t.Fatalf("Delete(%d) = (%d,%v), want (%d,%v)", key, h, ok, rh, rok)
				}
				delete(ref, key)
			}
		}
		if x.Len() != len(ref) {
			t.Fatalf("Len = %d, ref %d", x.Len(), len(ref))
		}
		for k, v := range ref {
			if x.Get(k) != v {
				t.Fatalf("final Get(%d) = %d, want %d", k, x.Get(k), v)
			}
		}
	})
}

// TestArenaRefSurvivesChurn is the handle-validity property test: a Ref
// taken on a live entry stays Live across unrelated alloc/free churn, dies
// the moment its slot is freed, and stays dead when the slot is recycled
// for a different key (the ABA case) or the arena is Reset.
func TestArenaRefSurvivesChurn(t *testing.T) {
	var a Arena
	h := a.Alloc()
	a.At(h).Key = 1
	r := a.Ref(h)
	if !a.Live(r) {
		t.Fatal("fresh ref not live")
	}

	// Unrelated churn — including slab growth — must not kill the ref.
	others := make([]Handle, 0, 64)
	for i := 0; i < 64; i++ {
		others = append(others, a.Alloc())
	}
	for _, o := range others {
		a.Free(o)
	}
	if !a.Live(r) {
		t.Fatal("ref died from unrelated churn")
	}

	// Freeing the slot kills the ref.
	a.Free(h)
	if a.Live(r) {
		t.Fatal("ref live after Free")
	}

	// ABA: the freelist hands the same slot to a new entry; the old ref
	// must not validate against the recycled occupant.
	h2 := a.Alloc()
	if h2 != h {
		t.Fatalf("freelist did not recycle slot %d (got %d)", h, h2)
	}
	a.At(h2).Key = 2
	if a.Live(r) {
		t.Fatal("stale ref validates recycled slot (ABA)")
	}
	r2 := a.Ref(h2)
	if !a.Live(r2) {
		t.Fatal("new occupant's ref not live")
	}

	// Reset invalidates every ref, even for slots that get re-allocated at
	// generation zero afterwards.
	a.Reset()
	if a.Live(r2) {
		t.Fatal("ref live after Reset")
	}
	h3 := a.Alloc()
	if a.Live(r2) {
		t.Fatal("pre-Reset ref validates post-Reset slot")
	}
	if !a.Live(a.Ref(h3)) {
		t.Fatal("post-Reset ref not live")
	}
}

// TestArenaRefRandomChurn cross-checks Live against a shadow model over a
// long random alloc/free/reset stream: at every step, each tracked ref's
// Live answer must match whether its allocation is still the current
// occupant of its slot.
func TestArenaRefRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a Arena
	type tracked struct {
		r     Ref
		alive bool
	}
	var refs []tracked
	var live []Handle
	for op := 0; op < 10_000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0: // alloc
			h := a.Alloc()
			live = append(live, h)
			refs = append(refs, tracked{r: a.Ref(h), alive: true})
		case rng.Intn(2) == 0: // free a random live entry
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			a.Free(h)
			for j := range refs {
				if refs[j].alive && refs[j].r.H == h {
					refs[j].alive = false
				}
			}
		case rng.Intn(200) == 0: // rare reset
			a.Reset()
			live = live[:0]
			for j := range refs {
				refs[j].alive = false
			}
		}
		if op%500 == 0 {
			for j := range refs {
				if got := a.Live(refs[j].r); got != refs[j].alive {
					t.Fatalf("op %d: Live(ref %d) = %v, want %v", op, j, got, refs[j].alive)
				}
			}
		}
	}
	if a.Len() != len(live) {
		t.Fatalf("arena Len = %d, model %d", a.Len(), len(live))
	}
}
