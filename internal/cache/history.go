package cache

// History is a FIFO shadow list storing metadata (key and size only) of
// evicted objects, as used by SCIP's H_m and H_l and by several baselines'
// ghost caches. New entries enter at the MRU end; when the byte budget is
// exceeded the oldest entries are dropped from the LRU end (Algorithm 1,
// ADD). Lookup, insert and delete are O(1). Records live in a private
// pointer-free arena indexed by an open-addressing table, so even large
// ghost lists add no GC scan work.
type History struct {
	arena Arena
	q     Queue
	index Index
	cap   int64
}

// NewHistory returns a history list with the given byte capacity. A zero or
// negative capacity yields a list that stores nothing.
func NewHistory(capBytes int64) *History {
	h := &History{cap: capBytes}
	h.q = h.arena.NewQueue()
	return h
}

// Capacity returns the byte budget.
func (h *History) Capacity() int64 { return h.cap }

// SetCapacity rebudgets the list to capBytes, dropping the oldest
// records until the new budget is respected. Policies whose ghost
// fraction is an exported live knob (TwoQ.KoutFrac) call this when the
// knob changes after construction.
func (h *History) SetCapacity(capBytes int64) {
	h.cap = capBytes
	h.trim()
}

// trim drops the oldest records until the byte budget is respected.
func (h *History) trim() {
	for h.q.Bytes() > h.cap {
		old := h.q.Back()
		key := h.arena.At(old).Key
		h.q.Remove(old)
		h.index.Delete(key)
		h.arena.Free(old)
	}
}

// Bytes returns the bytes of metadata-tracked objects currently recorded.
func (h *History) Bytes() int64 { return h.q.Bytes() }

// Len returns the number of recorded objects.
func (h *History) Len() int { return h.q.Len() }

// Contains reports whether key is recorded.
func (h *History) Contains(key uint64) bool {
	return h.index.Get(key) != None
}

// Add records an evicted object, evicting the oldest records as needed to
// respect the byte budget. If the key is already present its record keeps
// its original FIFO age — Algorithm 1's history is FIFO, not LRU, so a
// re-evicted object must not have its remaining history lifetime renewed;
// only its size and residency metadata are refreshed in place. res records
// how the evicted residency began, so a later lookup can attribute the
// evidence to the right learning context.
func (h *History) Add(key uint64, size int64, res Residency) {
	if h.cap <= 0 || size > h.cap {
		return
	}
	if hd := h.index.Get(key); hd != None {
		h.refresh(hd, size, res)
		return
	}
	for h.q.Bytes()+size > h.cap {
		old := h.q.Back()
		oldKey := h.arena.At(old).Key
		h.q.Remove(old)
		h.index.Delete(oldKey)
		h.arena.Free(old)
	}
	hd := h.arena.Alloc()
	e := h.arena.At(hd)
	e.Key = key
	e.Size = size
	e.Residency = res
	h.q.PushFront(hd)
	h.index.Put(key, hd)
}

// refresh updates a present record's size and residency without changing
// its queue position (its FIFO age). A size change re-links the entry at
// the same position to keep the queue's byte accounting exact, then trims
// from the LRU end if the growth pushed the list over budget — which may
// evict the refreshed record itself when it is the oldest.
func (h *History) refresh(hd Handle, size int64, res Residency) {
	e := h.arena.At(hd)
	e.Residency = res
	if e.Size != size {
		next := h.q.Next(hd)
		h.q.Remove(hd)
		e.Size = size
		if next != None {
			h.q.InsertBefore(hd, next)
		} else {
			h.q.PushBack(hd)
		}
	}
	h.trim()
}

// Delete removes all information about key (Algorithm 1, DELETE),
// reporting whether it was present and how the recorded residency began.
func (h *History) Delete(key uint64) (res Residency, ok bool) {
	hd, found := h.index.Delete(key)
	if !found {
		return ResInserted, false
	}
	res = h.arena.At(hd).Residency
	h.q.Remove(hd)
	h.arena.Free(hd)
	return res, true
}

// Reset empties the list.
func (h *History) Reset() {
	h.q.Clear()
	h.index.Reset()
	h.arena.Reset()
}
