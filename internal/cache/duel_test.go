package cache

import "testing"

func TestDuelMonitorSamplesSubset(t *testing.T) {
	d := NewDuelMonitor(1<<20, 1.0/8, 7)
	for i := uint64(0); i < 8000; i++ {
		d.Observe(Request{Time: int64(i), Key: i, Size: 64})
	}
	if d.samples == 0 {
		t.Fatal("no keys sampled")
	}
	// 1/8 sampling: expect ~1000 of 8000, generous bounds.
	if d.samples < 500 || d.samples > 1800 {
		t.Fatalf("samples = %d of 8000, want ~1000", d.samples)
	}
}

func TestDuelMonitorSampleIsDeterministicPerKey(t *testing.T) {
	d := NewDuelMonitor(1<<20, 1.0/8, 7)
	d.Observe(Request{Key: 3, Size: 64})
	first := d.samples
	d.Observe(Request{Key: 3, Size: 64})
	if d.samples != first*2 && d.samples != first {
		t.Fatal("key sampling not deterministic")
	}
}

func TestDuelMonitorVerdictFavoursMRUOnRecency(t *testing.T) {
	// Pure recency traffic over a working set larger than the ghosts:
	// the LRU ghost keeps recent objects hot; the LIP ghost freezes an
	// early snapshot and starves. MRU must win.
	d := NewDuelMonitor(1<<16, 1.0/2, 0) // sample everything, bigger ghosts
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 64; k++ {
			d.Observe(Request{Time: int64(round*64 + int(k)), Key: k + uint64(round*8), Size: 512})
		}
	}
	if v := d.Verdict(); v <= 0 {
		t.Fatalf("verdict = %g, want > 0 (MRU wins recency drift)", v)
	}
}

func TestDuelMonitorVerdictResetsWindow(t *testing.T) {
	d := NewDuelMonitor(1<<16, 1.0/2, 0)
	for i := uint64(0); i < 100; i++ {
		d.Observe(Request{Key: i % 4, Size: 64})
	}
	d.Verdict()
	if d.hitA != 0 || d.hitB != 0 || d.samples != 0 {
		t.Fatal("verdict did not reset the window")
	}
	if v := d.Verdict(); v != 0 {
		t.Fatalf("empty-window verdict = %g, want 0", v)
	}
}

func TestDuelMonitorReset(t *testing.T) {
	d := NewDuelMonitor(1<<16, 1.0/2, 0)
	for i := uint64(0); i < 100; i++ {
		d.Observe(Request{Key: i % 4, Size: 64})
	}
	d.Reset()
	if d.mru.Used() != 0 || d.lip.Used() != 0 {
		t.Fatal("Reset did not clear ghosts")
	}
}

func TestSetInsertionHotSwap(t *testing.T) {
	c := NewLRU(1000)
	c.Access(Request{Time: 1, Key: 1, Size: 100})
	ins := &fixedIns{insert: LRU, promote: MRU}
	c.SetInsertion(ins)
	// Resident object still hits; new misses follow the new policy.
	if !c.Access(Request{Time: 2, Key: 1, Size: 100}) {
		t.Fatal("resident object lost across hot swap")
	}
	c.Access(Request{Time: 3, Key: 2, Size: 100})
	if e := c.Entry(2); e.InsertedMRU {
		t.Fatal("post-swap insertion ignored the new policy")
	}
	c.SetInsertion(nil)
	c.Access(Request{Time: 4, Key: 3, Size: 100})
	if e := c.Entry(3); !e.InsertedMRU {
		t.Fatal("nil swap did not restore plain LRU")
	}
}
