package cache

// QueueCache is a byte-capacity cache with a single LRU-ordered queue and a
// pluggable insertion/promotion policy. The victim selection policy is
// LRU: evictions always take the entry at the LRU end. With a nil
// insertion policy it behaves as plain LRU (insert at MRU, promote to
// MRU), which is the configuration the paper calls "LRU". With an
// InsertionPolicy such as SCIP it becomes the paper's SCIP-LRU.
//
// The data plane is pointer-free: entries live in a dense arena slab
// linked by int32 handles, and the key index is an open-addressing table
// of scalars (see Arena and Index), so resident metadata contributes no
// GC scan work regardless of object count.
type QueueCache struct {
	name  string
	cap   int64
	arena Arena
	q     Queue
	index Index
	ins   InsertionPolicy
	// resObs is ins's ResidencyObserver side, asserted once at
	// construction/SetInsertion time so the per-hit path carries no type
	// assertion.
	resObs ResidencyObserver
	// evictions counts objects evicted since construction or Reset.
	evictions int64

	// EvictHook, when non-nil, observes every eviction (used by the ZRO
	// analyzer and tests). The entry is only valid for the duration of
	// the call; its slot is recycled for a later insertion afterwards.
	EvictHook func(e *Entry)
}

// NewQueueCache returns a cache of capBytes capacity driven by ins. A nil
// ins yields plain LRU. name is used in experiment tables; if empty it is
// derived from the insertion policy.
func NewQueueCache(name string, capBytes int64, ins InsertionPolicy) *QueueCache {
	if name == "" {
		if ins != nil {
			name = ins.Name() + "-LRU"
		} else {
			name = "LRU"
		}
	}
	c := &QueueCache{
		name: name,
		cap:  capBytes,
	}
	hint := indexHint(capBytes)
	c.arena.Reserve(hint)
	c.index.Init(hint)
	c.q = c.arena.NewQueue()
	c.SetInsertion(ins)
	return c
}

// indexHint pre-sizes the key index and entry slab from the byte capacity,
// assuming CDN-scale mean object sizes (~32 KiB), so steady-state replay
// does not repeatedly grow either. Clamped so tiny test caches and huge
// capacities both get sane starts.
func indexHint(capBytes int64) int {
	h := capBytes >> 15
	if h < 16 {
		h = 16
	}
	if h > 1<<20 {
		h = 1 << 20
	}
	return int(h)
}

// NewLRU returns a plain LRU cache.
func NewLRU(capBytes int64) *QueueCache { return NewQueueCache("LRU", capBytes, nil) }

// Name implements Policy.
func (c *QueueCache) Name() string { return c.name }

// Capacity implements Policy.
func (c *QueueCache) Capacity() int64 { return c.cap }

// Used implements Policy.
func (c *QueueCache) Used() int64 { return c.q.Bytes() }

// Len returns the number of cached objects.
func (c *QueueCache) Len() int { return c.q.Len() }

// Evictions implements EvictionCounter.
func (c *QueueCache) Evictions() int64 { return c.evictions }

// Contains reports whether key is cached without touching recency state.
func (c *QueueCache) Contains(key uint64) bool {
	return c.index.Get(key) != None
}

// Entry returns the live entry for key, or nil. The pointer is transient
// (valid until the cache next admits an object) and callers must not
// relink it.
func (c *QueueCache) Entry(key uint64) *Entry {
	h := c.index.Get(key)
	if h == None {
		return nil
	}
	return c.arena.At(h)
}

// Queue exposes the underlying queue for analyzers; callers must treat it
// as read-only.
func (c *QueueCache) Queue() *Queue { return &c.q }

// SetInsertion hot-swaps the insertion/promotion policy, as the paper's
// TDC deployment did ("we have merely replaced LRU's insertion policy
// with SCIP"). Resident entries keep their marks; nil restores plain LRU.
func (c *QueueCache) SetInsertion(ins InsertionPolicy) {
	c.ins = ins
	c.resObs, _ = ins.(ResidencyObserver)
}

// Access implements Policy.
//
//scip:hotpath
func (c *QueueCache) Access(req Request) bool {
	h := c.index.Get(req.Key)
	hit := h != None
	if c.ins != nil {
		c.ins.OnAccess(req, hit) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting (core.SCIP)
	}
	if hit {
		e := c.arena.At(h)
		e.Hits++
		e.Freq++
		e.LastAccess = req.Time
		if c.resObs != nil {
			c.resObs.OnResidentHit(req, e.InsertedMRU, e.Residency, int(e.Hits)) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
		}
		c.promote(h, e, req)
		return true
	}
	if req.Size > c.cap || req.Size <= 0 {
		return false // object cannot fit: bypass
	}
	c.insert(req)
	return false
}

// promote re-positions a hit entry. Plain LRU moves it to the MRU end;
// with an insertion policy the promotion is treated as a special insertion
// (Algorithm 1, PROMOTE): the entry is removed (without touching the
// history lists) and re-inserted at the chosen position.
func (c *QueueCache) promote(h Handle, e *Entry, req Request) {
	if c.ins == nil {
		c.q.MoveToFront(h)
		return
	}
	pos := c.ins.ChoosePromote(req) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
	c.q.Remove(h)
	// The promotion starts a fresh residency: Hits restarts so a later
	// eviction can report whether the promoted object was ever hit again
	// (the P-ZRO signal).
	e.Hits = 0
	if e.Residency == ResInserted {
		e.Residency = ResFirstHit
	} else {
		e.Residency = ResRepeat
	}
	c.place(h, e, pos)
}

// insert admits a missing object, evicting from the LRU end as needed.
// Steady-state inserts are allocation-free: the evictions they trigger
// free arena slots the new entry is carved from.
func (c *QueueCache) insert(req Request) {
	for c.q.Bytes()+req.Size > c.cap {
		c.evictOne()
	}
	h := c.arena.Alloc()
	e := c.arena.At(h)
	e.Key = req.Key
	e.Size = req.Size
	e.InsertTime = req.Time
	e.LastAccess = req.Time
	e.Freq = 1
	pos := MRU
	if c.ins != nil {
		pos = c.ins.ChooseInsert(req) //scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
	}
	c.place(h, e, pos)
	c.index.Put(req.Key, h)
}

func (c *QueueCache) place(h Handle, e *Entry, pos Position) {
	if pos == MRU {
		e.InsertedMRU = true
		c.q.PushFront(h)
	} else {
		e.InsertedMRU = false
		c.q.PushBack(h)
	}
}

func (c *QueueCache) evictOne() {
	h := c.q.Back()
	if h == None {
		panic("cache: evict from empty queue")
	}
	victim := c.arena.At(h)
	c.q.Remove(h)
	c.index.Delete(victim.Key)
	c.evictions++
	if c.ins != nil {
		//scip:alloc-ok insertion policies carry their own //scip:hotpath vetting
		c.ins.OnEvict(EvictInfo{
			Key:         victim.Key,
			Size:        victim.Size,
			InsertedMRU: victim.InsertedMRU,
			EverHit:     victim.Hits > 0,
			Residency:   victim.Residency,
		})
	}
	if c.EvictHook != nil {
		c.EvictHook(victim) //scip:alloc-ok instrumentation hook (ZRO meters, duel bookkeeping); nil on production serving paths
	}
	// Recycle after the hooks have seen the victim's final state.
	c.arena.Free(h)
}

// Remove implements Remover: it drops key from the cache if present.
// Unlike an eviction it leaves the insertion policy's learning state
// untouched (no OnEvict, no history-list entry, no eviction count): an
// invalidation says nothing about whether the placement decision was
// good. A later access to the key is an ordinary miss.
func (c *QueueCache) Remove(key uint64) bool {
	h, ok := c.index.Delete(key)
	if !ok {
		return false
	}
	c.q.Remove(h)
	c.arena.Free(h)
	return true
}

// Reset implements Resetter.
func (c *QueueCache) Reset() {
	c.q.Clear()
	c.index.Reset()
	c.arena.Reset()
	c.evictions = 0
	if r, ok := c.ins.(Resetter); ok && c.ins != nil {
		r.Reset()
	}
}
