// Package cache provides the substrate shared by every caching policy in
// this repository: the request model, an intrusive byte-accounted queue,
// FIFO history (shadow) lists, and the interfaces the simulator drives.
//
// All capacities and object sizes are expressed in bytes, matching CDN
// object caches where a single queue holds variable-sized objects.
//
// Key types: Request (one access), Policy (the simulator-facing contract:
// Access reports hit/miss and performs all bookkeeping), QueueCache (the
// generic byte-accounted queue every queue-based policy builds on, with
// optional Remover invalidation), and History (the FIFO shadow lists SCIP
// learns from).
package cache
