package cache

import (
	"math/rand"
	"testing"
)

func req(t int64, key uint64, size int64) Request { return Request{Time: t, Key: key, Size: size} }

func TestLRUHitMiss(t *testing.T) {
	c := NewLRU(100)
	if c.Access(req(1, 1, 50)) {
		t.Fatal("first access hit")
	}
	if !c.Access(req(2, 1, 50)) {
		t.Fatal("second access missed")
	}
	if c.Used() != 50 {
		t.Fatalf("Used=%d, want 50", c.Used())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 40))
	c.Access(req(2, 2, 40))
	c.Access(req(3, 1, 40)) // promote 1; LRU order now 2,1
	c.Access(req(4, 3, 40)) // needs eviction: 2 goes
	if c.Contains(2) {
		t.Fatal("LRU victim should have been 2")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("wrong objects evicted")
	}
}

func TestLRUCapacityNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewLRU(10_000)
	for i := 0; i < 20000; i++ {
		c.Access(req(int64(i), uint64(rng.Intn(500)), int64(rng.Intn(3000)+1)))
		if c.Used() > c.Capacity() {
			t.Fatalf("step %d: used %d > cap %d", i, c.Used(), c.Capacity())
		}
	}
}

func TestLRUOversizedBypass(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 60))
	if c.Access(req(2, 2, 500)) {
		t.Fatal("oversized object reported hit")
	}
	if c.Contains(2) {
		t.Fatal("oversized object admitted")
	}
	if !c.Contains(1) {
		t.Fatal("oversized bypass evicted resident object")
	}
}

func TestLRUZeroSizeBypass(t *testing.T) {
	c := NewLRU(100)
	if c.Access(req(1, 1, 0)) {
		t.Fatal("zero-size access reported hit")
	}
	if c.Contains(1) {
		t.Fatal("zero-size object admitted")
	}
}

func TestQueueCacheEvictHook(t *testing.T) {
	c := NewLRU(100)
	var evicted []uint64
	c.EvictHook = func(e *Entry) { evicted = append(evicted, e.Key) }
	c.Access(req(1, 1, 60))
	c.Access(req(2, 2, 60))
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
}

func TestQueueCacheEntryMetadata(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(5, 1, 10))
	e := c.Entry(1)
	if e == nil || e.InsertTime != 5 || e.Freq != 1 || e.Hits != 0 {
		t.Fatalf("unexpected metadata after insert: %+v", e)
	}
	if !e.InsertedMRU {
		t.Fatal("plain LRU insert should be MRU-marked")
	}
	c.Access(req(9, 1, 10))
	if e.Hits != 1 || e.Freq != 2 || e.LastAccess != 9 {
		t.Fatalf("unexpected metadata after hit: %+v", e)
	}
}

// lruOracle is a trivial reference LRU used to cross-check QueueCache.
type lruOracle struct {
	cap   int64
	used  int64
	order []uint64 // MRU first
	size  map[uint64]int64
}

func (o *lruOracle) access(key uint64, size int64) bool {
	for i, k := range o.order {
		if k == key {
			o.order = append(o.order[:i], o.order[i+1:]...)
			o.order = append([]uint64{key}, o.order...)
			return true
		}
	}
	if size > o.cap {
		return false
	}
	for o.used+size > o.cap {
		last := o.order[len(o.order)-1]
		o.order = o.order[:len(o.order)-1]
		o.used -= o.size[last]
		delete(o.size, last)
	}
	o.order = append([]uint64{key}, o.order...)
	o.size[key] = size
	o.used += size
	return false
}

func TestLRUMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := NewLRU(5000)
	o := &lruOracle{cap: 5000, size: map[uint64]int64{}}
	for i := 0; i < 30000; i++ {
		key := uint64(rng.Intn(120))
		size := int64(rng.Intn(900) + 1)
		if s, ok := o.size[key]; ok {
			size = s // same object keeps its size
		}
		got := c.Access(req(int64(i), key, size))
		want := o.access(key, size)
		if got != want {
			t.Fatalf("step %d key %d: hit=%v oracle=%v", i, key, got, want)
		}
		if c.Used() != o.used {
			t.Fatalf("step %d: used=%d oracle=%d", i, c.Used(), o.used)
		}
	}
}

func TestQueueCacheReset(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 10))
	c.Reset()
	if c.Used() != 0 || c.Len() != 0 || c.Contains(1) {
		t.Fatal("Reset did not clear the cache")
	}
	if c.Access(req(2, 1, 10)) {
		t.Fatal("hit after Reset")
	}
}

// fixedIns always chooses the configured positions, for testing plumbing.
type fixedIns struct {
	insert, promote Position
	evicts          int
	accesses        int
}

func (f *fixedIns) Name() string                   { return "fixed" }
func (f *fixedIns) ChooseInsert(Request) Position  { return f.insert }
func (f *fixedIns) ChoosePromote(Request) Position { return f.promote }
func (f *fixedIns) OnEvict(EvictInfo)              { f.evicts++ }
func (f *fixedIns) OnAccess(Request, bool)         { f.accesses++ }

func TestInsertionPolicyPlumbing(t *testing.T) {
	ins := &fixedIns{insert: LRU, promote: LRU}
	c := NewQueueCache("", 100, ins)
	if c.Name() != "fixed-LRU" {
		t.Fatalf("derived name = %q", c.Name())
	}
	c.Access(req(1, 1, 40))
	if e := c.Entry(1); e.InsertedMRU {
		t.Fatal("LRU-choice insert marked as MRU")
	}
	c.Access(req(2, 2, 40)) // 2 also at LRU end, so order front->back: 1,2
	c.Access(req(3, 1, 40)) // hit 1, promoted to LRU end
	if q := c.Queue(); q.At(q.Back()).Key != 1 {
		t.Fatalf("promoted-to-LRU entry not at back, back=%d", q.At(q.Back()).Key)
	}
	c.Access(req(4, 3, 40)) // miss: evicts 1 (back)
	if c.Contains(1) {
		t.Fatal("LRU-promoted entry survived eviction")
	}
	if ins.evicts != 1 {
		t.Fatalf("evicts=%d, want 1", ins.evicts)
	}
	if ins.accesses != 4 {
		t.Fatalf("accesses=%d, want 4", ins.accesses)
	}
}

func TestPositionString(t *testing.T) {
	if MRU.String() != "MRU" || LRU.String() != "LRU" {
		t.Fatal("Position.String broken")
	}
}

func TestFreelistReusesEvictedEntry(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 60))
	first := c.Entry(1)
	c.Access(req(2, 2, 60)) // evicts 1, freelist now holds its entry
	c.Access(req(3, 3, 60)) // evicts 2, must reuse 1's entry
	reused := c.Entry(3)
	if reused != first {
		t.Fatal("miss after eviction did not reuse the freed entry")
	}
	if reused.Key != 3 || reused.Size != 60 || reused.InsertTime != 3 ||
		reused.LastAccess != 3 || reused.Hits != 0 || reused.Freq != 1 ||
		reused.Score != 0 || reused.Class != 0 || reused.Residency != ResInserted {
		t.Fatalf("recycled entry not fully reset: %+v", reused)
	}
	if !reused.InsertedMRU {
		t.Fatal("recycled plain-LRU insert should be MRU-marked")
	}
}

func TestFreelistEvictHookSeesFinalState(t *testing.T) {
	c := NewLRU(100)
	type evicted struct {
		key  uint64
		hits int
	}
	var got []evicted
	c.EvictHook = func(e *Entry) { got = append(got, evicted{e.Key, int(e.Hits)}) }
	c.Access(req(1, 1, 60))
	c.Access(req(2, 1, 60)) // hit
	c.Access(req(3, 2, 60)) // evicts 1 (one hit, then promotion reset? plain LRU keeps Hits)
	c.Access(req(4, 3, 60)) // evicts 2, reusing 1's entry
	if len(got) != 2 || got[0].key != 1 || got[1].key != 2 {
		t.Fatalf("evictions = %+v", got)
	}
	if got[1].hits != 0 {
		t.Fatalf("recycled entry leaked hit count into next eviction: %+v", got[1])
	}
}

func TestFreelistClearedOnReset(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 60))
	c.Access(req(2, 2, 60)) // evicts 1 onto the freelist
	c.Reset()
	c.Access(req(3, 3, 60))
	if c.Used() != 60 || !c.Contains(3) {
		t.Fatal("insert after Reset broken")
	}
}

// TestAccessAllocsSteadyState asserts the zero-allocation replay hot
// path: steady-state hits allocate nothing, and steady-state misses are
// served from the eviction-fed freelist without allocating.
func TestAccessAllocsSteadyState(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 100)) // resident
	hitReq := req(2, 1, 100)
	if a := testing.AllocsPerRun(200, func() { c.Access(hitReq) }); a != 0 {
		t.Fatalf("steady-state hit allocates %.1f allocs/op, want 0", a)
	}

	// Alternate two same-sized objects through a one-slot cache: every
	// access misses, evicts the other, and must reuse its entry.
	c2 := NewLRU(100)
	c2.Access(req(1, 10, 100))
	c2.Access(req(2, 11, 100))
	i := int64(3)
	if a := testing.AllocsPerRun(200, func() {
		key := uint64(10 + i%2)
		c2.Access(req(i, key, 100))
		i++
	}); a != 0 {
		t.Fatalf("freelist-served miss allocates %.1f allocs/op, want 0", a)
	}
}

// TestAccessAllocsWithInsertionPolicy covers the hoisted
// ResidencyObserver path: a policy without the observer must not cost an
// assertion or allocation per hit, and one with it must still be
// allocation-free through the cache layer.
func TestAccessAllocsWithInsertionPolicy(t *testing.T) {
	ins := &fixedIns{insert: MRU, promote: MRU}
	c := NewQueueCache("", 100, ins)
	c.Access(req(1, 1, 100))
	hitReq := req(2, 1, 100)
	if a := testing.AllocsPerRun(200, func() { c.Access(hitReq) }); a != 0 {
		t.Fatalf("policy-driven hit allocates %.1f allocs/op, want 0", a)
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU(100)
	c.Access(req(1, 1, 40))
	c.Access(req(2, 2, 40))
	if !c.Remove(1) {
		t.Fatal("Remove of a resident key reported absent")
	}
	if c.Contains(1) {
		t.Fatal("key still resident after Remove")
	}
	if c.Used() != 40 {
		t.Fatalf("Used = %d after Remove, want 40", c.Used())
	}
	if c.Evictions() != 0 {
		t.Fatalf("Remove counted as eviction: %d", c.Evictions())
	}
	if c.Remove(1) {
		t.Fatal("second Remove reported present")
	}
	if c.Remove(99) {
		t.Fatal("Remove of never-seen key reported present")
	}
	// A removed key is a fresh miss, then resident again.
	if c.Access(req(3, 1, 40)) {
		t.Fatal("removed key reported hit")
	}
	if !c.Access(req(4, 1, 40)) {
		t.Fatal("re-inserted key missed")
	}
}

// TestRemoveRecyclesEntry checks the freed entry returns to the free
// list: capacity-many inserts after a Remove must not grow the arena
// (observable as Used staying bounded and the queue staying consistent).
func TestRemoveRecyclesEntry(t *testing.T) {
	c := NewLRU(100)
	for i := 0; i < 1000; i++ {
		k := uint64(i % 3)
		c.Access(req(int64(i), k, 30))
		if i%7 == 0 {
			c.Remove(k)
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("step %d: used %d > cap %d", i, c.Used(), c.Capacity())
		}
	}
}
