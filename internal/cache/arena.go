package cache

import (
	"math"
	"unsafe"
)

// Entry must stay exactly one cache line (see the Entry doc comment); this
// fails to compile if a field pushes it past 64 bytes.
var _ [64]byte = [unsafe.Sizeof(Entry{})]byte{}

// Handle identifies an Entry inside an Arena. Handles are dense int32
// indices into the arena's slab, so queues link entries through 4-byte
// integers instead of 8-byte pointers and the slab itself contains no
// pointers at all — the GC never scans cache metadata, no matter how many
// objects are resident. None is the null handle.
type Handle int32

// None is the null Handle, held by empty queue ends and returned by index
// lookups that miss.
const None Handle = -1

// owner sentinel: entries on the freelist carry ownerFree so misuse of a
// stale handle panics instead of corrupting a queue. Live detached entries
// carry owner 0; queue members carry the positive queue id.
const ownerFree int16 = -1

// maxArenaEntries bounds the slab so handles always fit in an int32.
const maxArenaEntries = math.MaxInt32

// Arena is a dense slab of Entries addressed by Handle. Freed slots are
// threaded into a freelist through Entry.next, so steady-state churn
// (evict one, insert one) reuses slots without allocating; the slab only
// grows via append when the live set exceeds every slot ever allocated.
//
// The zero value is ready to use. An Arena and the Queues created from it
// form one ownership domain: handles are only meaningful against the arena
// that allocated them, and *Entry pointers obtained from At are transient —
// they are invalidated by the next Alloc (the slab may move) and must not
// be retained across it.
type Arena struct {
	slab []Entry
	// gens counts, per slot, how many times the slot has been freed. It
	// backs Ref validity checks and lives outside Entry so the hot slab
	// stays at one cache line per entry; it is only touched on Free and
	// by Ref/Live.
	gens []uint32
	// free1 is the freelist head encoded as handle+1 so the zero value
	// means "empty" (handle 0 is a valid slot).
	free1 int32
	live  int
	// nq allocates queue ids; id 0 means "detached".
	nq int16
	// epoch increments on Reset so Refs taken before a reset never
	// validate against recycled slots.
	epoch uint32
}

// NewArena returns an arena with room for hint entries before the slab
// first grows. A zero hint defers all allocation to first use.
func NewArena(hint int) *Arena {
	a := &Arena{}
	a.Reserve(hint)
	return a
}

// Reserve grows the slab's capacity to at least n entries without changing
// its length. Pre-sizing from the expected working set keeps the serving
// path free of append-driven slab moves (see OPERATIONS.md on memory
// sizing).
func (a *Arena) Reserve(n int) {
	if n <= cap(a.slab) {
		return
	}
	s := make([]Entry, len(a.slab), n)
	copy(s, a.slab)
	a.slab = s
	g := make([]uint32, len(a.gens), n)
	copy(g, a.gens)
	a.gens = g
}

// Len returns the number of live (allocated, not freed) entries.
func (a *Arena) Len() int { return a.live }

// Cap returns the number of slots the slab holds without growing.
func (a *Arena) Cap() int { return cap(a.slab) }

// At returns the entry for h. The pointer is transient: it is valid only
// until the next Alloc on this arena, which may move the slab.
func (a *Arena) At(h Handle) *Entry {
	if handleChecks {
		a.checkLive(h)
	}
	return &a.slab[h]
}

// Alloc takes a slot from the freelist, or extends the slab when the
// freelist is empty, and returns its handle. The slot's policy fields are
// zeroed; its generation survives so stale Refs to the previous occupant
// remain detectably dead.
//
// Alloc may move the slab: *Entry pointers obtained before the call are
// invalid after it.
func (a *Arena) Alloc() Handle {
	if a.free1 != 0 {
		h := Handle(a.free1 - 1)
		e := &a.slab[h]
		a.free1 = int32(e.next) + 1
		*e = Entry{prev: None, next: None}
		a.live++
		return h
	}
	if len(a.slab) >= maxArenaEntries {
		panic("cache: arena full (2^31-1 entries)")
	}
	a.slab = append(a.slab, Entry{prev: None, next: None})
	a.gens = append(a.gens, 0)
	a.live++
	return Handle(len(a.slab) - 1)
}

// Free returns h's slot to the freelist. The entry must be detached from
// any queue. Freeing bumps the slot's generation, so Refs taken before the
// free report dead.
func (a *Arena) Free(h Handle) {
	e := &a.slab[h]
	if e.owner != 0 {
		if e.owner == ownerFree {
			panic("cache: double Free of entry")
		}
		panic("cache: Free of entry still in a queue")
	}
	a.gens[h]++
	e.owner = ownerFree
	e.prev = None
	e.next = Handle(a.free1 - 1)
	a.free1 = int32(h) + 1
	a.live--
}

// Reset discards every entry and empties the freelist, keeping the slab's
// capacity for reuse. Queues built on this arena must be cleared by their
// owners in the same breath; their handles are all invalid afterwards.
func (a *Arena) Reset() {
	a.slab = a.slab[:0]
	a.gens = a.gens[:0]
	a.free1 = 0
	a.live = 0
	a.epoch++
}

// NewQueue returns an empty queue linked to this arena. Queue identity is
// a small id stamped into member entries' owner field, which is how queue
// membership is checked without pointers.
func (a *Arena) NewQueue() Queue {
	if a.nq == math.MaxInt16 {
		panic("cache: arena queue ids exhausted")
	}
	a.nq++
	return Queue{a: a, id: a.nq, head: None, tail: None}
}

// Ref is a generation-stamped handle for validity tracking across frees
// and resets. Refs are a debugging and testing device (the ABA property
// tests use them); hot paths carry bare Handles.
type Ref struct {
	H     Handle
	gen   uint32
	epoch uint32
}

// Ref stamps h with its current generation and the arena epoch.
func (a *Arena) Ref(h Handle) Ref {
	return Ref{H: h, gen: a.gens[h], epoch: a.epoch}
}

// Live reports whether r still names the same allocation it was taken
// from: the arena has not been Reset, the slot has not been freed, and the
// slot has not been recycled for a different entry (generation match).
func (a *Arena) Live(r Ref) bool {
	if r.epoch != a.epoch || r.H < 0 || int(r.H) >= len(a.slab) {
		return false
	}
	return a.gens[r.H] == r.gen && a.slab[r.H].owner != ownerFree
}

// checkLive panics on out-of-range or freed handles. Compiled in only
// under the scipdebug build tag (see handleChecks).
func (a *Arena) checkLive(h Handle) {
	if h < 0 || int(h) >= len(a.slab) {
		panic("cache: At of out-of-range handle")
	}
	if a.slab[h].owner == ownerFree {
		panic("cache: At of freed entry")
	}
}
