package cache

import (
	"math/rand"
	"testing"
)

func TestHistoryAddContainsDelete(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	if !h.Contains(1) || !h.Contains(2) {
		t.Fatal("added keys missing")
	}
	if h.Bytes() != 80 || h.Len() != 2 {
		t.Fatalf("Bytes=%d Len=%d, want 80,2", h.Bytes(), h.Len())
	}
	if _, ok := h.Delete(1); !ok {
		t.Fatal("Delete(1) = false")
	}
	if _, ok := h.Delete(1); ok {
		t.Fatal("second Delete(1) = true")
	}
	if h.Contains(1) {
		t.Fatal("deleted key still present")
	}
}

func TestHistoryFIFOEviction(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	h.Add(3, 40, ResInserted) // must evict 1 (oldest)
	if h.Contains(1) {
		t.Fatal("oldest record not evicted")
	}
	if !h.Contains(2) || !h.Contains(3) {
		t.Fatal("newer records lost")
	}
	if h.Bytes() != 80 {
		t.Fatalf("Bytes=%d, want 80", h.Bytes())
	}
}

func TestHistoryRefreshMovesToFront(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	h.Add(1, 40, ResInserted) // refresh: 1 becomes newest
	h.Add(3, 40, ResInserted) // evicts 2, the now-oldest
	if h.Contains(2) {
		t.Fatal("refreshed ordering ignored: 2 should have been evicted")
	}
	if !h.Contains(1) || !h.Contains(3) {
		t.Fatal("expected keys missing")
	}
}

func TestHistoryOversizedAndZeroCap(t *testing.T) {
	h := NewHistory(50)
	h.Add(1, 60, ResInserted) // larger than capacity: ignored
	if h.Contains(1) || h.Len() != 0 {
		t.Fatal("oversized record stored")
	}
	z := NewHistory(0)
	z.Add(1, 1, ResInserted)
	if z.Len() != 0 {
		t.Fatal("zero-capacity history stored a record")
	}
}

func TestHistoryResizeOnRefresh(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 10, ResInserted)
	h.Add(1, 90, ResInserted)
	if h.Bytes() != 90 {
		t.Fatalf("Bytes=%d, want 90 after size refresh", h.Bytes())
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 10, ResInserted)
	h.Reset()
	if h.Len() != 0 || h.Bytes() != 0 || h.Contains(1) {
		t.Fatal("Reset did not clear history")
	}
	h.Add(2, 10, ResInserted)
	if !h.Contains(2) {
		t.Fatal("history unusable after Reset")
	}
}

func TestHistoryNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistory(1000)
	for i := 0; i < 10000; i++ {
		h.Add(uint64(rng.Intn(300)), int64(rng.Intn(200)+1), Residency(rng.Intn(3)))
		if h.Bytes() > 1000 {
			t.Fatalf("capacity exceeded: %d", h.Bytes())
		}
		if h.Len() > 0 && h.Bytes() <= 0 {
			t.Fatal("byte accounting broken")
		}
	}
}

func TestHistoryResidencyRoundTrip(t *testing.T) {
	h := NewHistory(1000)
	h.Add(1, 10, ResFirstHit)
	h.Add(2, 10, ResRepeat)
	if res, ok := h.Delete(1); !ok || res != ResFirstHit {
		t.Fatalf("Delete(1) = %v,%v", res, ok)
	}
	if res, ok := h.Delete(2); !ok || res != ResRepeat {
		t.Fatalf("Delete(2) = %v,%v", res, ok)
	}
}
