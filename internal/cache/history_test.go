package cache

import (
	"math/rand"
	"testing"
)

func TestHistoryAddContainsDelete(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	if !h.Contains(1) || !h.Contains(2) {
		t.Fatal("added keys missing")
	}
	if h.Bytes() != 80 || h.Len() != 2 {
		t.Fatalf("Bytes=%d Len=%d, want 80,2", h.Bytes(), h.Len())
	}
	if _, ok := h.Delete(1); !ok {
		t.Fatal("Delete(1) = false")
	}
	if _, ok := h.Delete(1); ok {
		t.Fatal("second Delete(1) = true")
	}
	if h.Contains(1) {
		t.Fatal("deleted key still present")
	}
}

func TestHistoryFIFOEviction(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	h.Add(3, 40, ResInserted) // must evict 1 (oldest)
	if h.Contains(1) {
		t.Fatal("oldest record not evicted")
	}
	if !h.Contains(2) || !h.Contains(3) {
		t.Fatal("newer records lost")
	}
	if h.Bytes() != 80 {
		t.Fatalf("Bytes=%d, want 80", h.Bytes())
	}
}

// TestHistoryRefreshKeepsFIFOAge pins the duplicate-Add semantics:
// Algorithm 1's history is FIFO, so re-adding a present key must NOT renew
// its age. Key 1 stays the oldest record through a refresh and is still
// the first to be evicted. (The old remove-then-reinsert implementation
// moved it to the front and evicted 2 instead.)
func TestHistoryRefreshKeepsFIFOAge(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	h.Add(1, 40, ResFirstHit) // refresh: age unchanged, 1 is still oldest
	if h.Len() != 2 || h.Bytes() != 80 {
		t.Fatalf("refresh duplicated the record: Len=%d Bytes=%d", h.Len(), h.Bytes())
	}
	h.Add(3, 40, ResInserted) // evicts 1, the oldest
	if h.Contains(1) {
		t.Fatal("FIFO age renewed on refresh: 1 should have been evicted first")
	}
	if !h.Contains(2) || !h.Contains(3) {
		t.Fatal("expected keys missing")
	}
}

// TestHistoryRefreshUpdatesMetadata checks that a duplicate Add refreshes
// size and residency in place.
func TestHistoryRefreshUpdatesMetadata(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 10, ResInserted)
	h.Add(2, 10, ResInserted)
	h.Add(1, 30, ResRepeat)
	if h.Bytes() != 40 {
		t.Fatalf("Bytes=%d, want 40 after size refresh", h.Bytes())
	}
	if res, ok := h.Delete(1); !ok || res != ResRepeat {
		t.Fatalf("Delete(1) = %v,%v, want ResRepeat,true", res, ok)
	}
}

// TestHistoryRefreshGrowthEvictsSelf: growing the oldest record over
// budget evicts from the LRU end, which is the refreshed record itself.
func TestHistoryRefreshGrowthEvictsSelf(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 40, ResInserted)
	h.Add(2, 40, ResInserted)
	h.Add(1, 70, ResInserted) // 70+40 > 100: oldest (1 itself) must go
	if h.Contains(1) {
		t.Fatal("over-budget refreshed record not evicted")
	}
	if !h.Contains(2) || h.Bytes() != 40 {
		t.Fatalf("wrong survivor set: Contains(2)=%v Bytes=%d", h.Contains(2), h.Bytes())
	}
}

func TestHistoryOversizedAndZeroCap(t *testing.T) {
	h := NewHistory(50)
	h.Add(1, 60, ResInserted) // larger than capacity: ignored
	if h.Contains(1) || h.Len() != 0 {
		t.Fatal("oversized record stored")
	}
	z := NewHistory(0)
	z.Add(1, 1, ResInserted)
	if z.Len() != 0 {
		t.Fatal("zero-capacity history stored a record")
	}
}

func TestHistoryResizeOnRefresh(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 10, ResInserted)
	h.Add(1, 90, ResInserted)
	if h.Bytes() != 90 {
		t.Fatalf("Bytes=%d, want 90 after size refresh", h.Bytes())
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory(100)
	h.Add(1, 10, ResInserted)
	h.Reset()
	if h.Len() != 0 || h.Bytes() != 0 || h.Contains(1) {
		t.Fatal("Reset did not clear history")
	}
	h.Add(2, 10, ResInserted)
	if !h.Contains(2) {
		t.Fatal("history unusable after Reset")
	}
}

func TestHistoryNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistory(1000)
	for i := 0; i < 10000; i++ {
		h.Add(uint64(rng.Intn(300)), int64(rng.Intn(200)+1), Residency(rng.Intn(3)))
		if h.Bytes() > 1000 {
			t.Fatalf("capacity exceeded: %d", h.Bytes())
		}
		if h.Len() > 0 && h.Bytes() <= 0 {
			t.Fatal("byte accounting broken")
		}
	}
}

// checkHistoryInvariants cross-checks the queue and the index: same
// population, same entries, exact byte accounting, budget respected.
func checkHistoryInvariants(t *testing.T, h *History) {
	t.Helper()
	if h.Bytes() > h.Capacity() && h.Capacity() > 0 {
		t.Fatalf("byte budget exceeded: %d > %d", h.Bytes(), h.Capacity())
	}
	if h.Len() != h.index.Len() {
		t.Fatalf("queue length %d != index size %d", h.Len(), h.index.Len())
	}
	var bytes int64
	n := 0
	for hd := h.q.Front(); hd != None; hd = h.q.Next(hd) {
		n++
		e := h.q.At(hd)
		bytes += e.Size
		if ih := h.index.Get(e.Key); ih != hd {
			t.Fatalf("queue entry %d not (or wrongly) indexed", e.Key)
		}
	}
	if n != h.Len() {
		t.Fatalf("queue walk found %d entries, Len() says %d", n, h.Len())
	}
	if bytes != h.Bytes() {
		t.Fatalf("queue walk bytes %d != Bytes() %d", bytes, h.Bytes())
	}
}

// TestHistoryPropertyRandomOps drives a History with random Add/Delete/
// Reset sequences while checking, after every operation, that the byte
// budget is never exceeded, the index and the queue agree, and that a
// Delete immediately after an Add round-trips the residency.
func TestHistoryPropertyRandomOps(t *testing.T) {
	for _, capBytes := range []int64{1, 64, 1000, 1 << 20} {
		rng := rand.New(rand.NewSource(capBytes))
		h := NewHistory(capBytes)
		for i := 0; i < 5000; i++ {
			key := uint64(rng.Intn(200))
			switch op := rng.Intn(10); {
			case op < 6: // Add
				size := int64(rng.Intn(2000) + 1)
				res := Residency(rng.Intn(3))
				h.Add(key, size, res)
				if size <= capBytes && h.Contains(key) {
					// Residency must round-trip through Delete...
					got, ok := h.Delete(key)
					if !ok || got != res {
						t.Fatalf("op %d: Delete(%d) = %v,%v after Add(res=%v)", i, key, got, ok, res)
					}
					if h.Contains(key) {
						t.Fatalf("op %d: key %d still present after Delete", i, key)
					}
					// ...and the record is restored for the next ops.
					h.Add(key, size, res)
				}
			case op < 9: // Delete
				had := h.Contains(key)
				if _, ok := h.Delete(key); ok != had {
					t.Fatalf("op %d: Delete(%d) = %v, Contains said %v", i, key, ok, had)
				}
			default:
				h.Reset()
			}
			checkHistoryInvariants(t, h)
		}
	}
}

// FuzzHistory feeds arbitrary operation tapes to a History and checks the
// structural invariants after every step.
func FuzzHistory(f *testing.F) {
	f.Add(int64(100), []byte{0, 1, 2, 3, 0, 0, 1})
	f.Add(int64(1), []byte{0, 0, 0})
	f.Add(int64(1<<16), []byte{5, 9, 13, 2, 2, 2, 7, 7})
	f.Fuzz(func(t *testing.T, capBytes int64, tape []byte) {
		if capBytes < 0 || capBytes > 1<<40 {
			t.Skip()
		}
		h := NewHistory(capBytes)
		for i := 0; i+2 < len(tape); i += 3 {
			key := uint64(tape[i] % 32)
			size := int64(tape[i+1])*16 + 1
			switch tape[i+2] % 4 {
			case 0, 1:
				h.Add(key, size, Residency(tape[i+2]%3))
			case 2:
				h.Delete(key)
			case 3:
				h.Add(key, size, ResInserted)
				h.Add(key, size*2, ResRepeat) // duplicate-Add path
			}
			if h.Bytes() > capBytes && capBytes > 0 {
				t.Fatalf("budget exceeded: %d > %d", h.Bytes(), capBytes)
			}
			if h.Len() != h.index.Len() {
				t.Fatalf("queue/index disagree: %d vs %d", h.Len(), h.index.Len())
			}
		}
	})
}

func TestHistoryResidencyRoundTrip(t *testing.T) {
	h := NewHistory(1000)
	h.Add(1, 10, ResFirstHit)
	h.Add(2, 10, ResRepeat)
	if res, ok := h.Delete(1); !ok || res != ResFirstHit {
		t.Fatalf("Delete(1) = %v,%v", res, ok)
	}
	if res, ok := h.Delete(2); !ok || res != ResRepeat {
		t.Fatalf("Delete(2) = %v,%v", res, ok)
	}
}
