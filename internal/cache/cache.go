package cache

// Request is a single object access in a trace.
type Request struct {
	// Time is a monotonically non-decreasing logical timestamp. The
	// synthetic generators emit seconds; the algorithms only rely on
	// ordering and differences.
	Time int64
	// Key identifies the object.
	Key uint64
	// Size is the object size in bytes. Must be > 0.
	Size int64
}

// Policy is a complete cache replacement algorithm: victim selection plus
// insertion/promotion. Access processes one request and reports whether it
// hit. Implementations are single-goroutine; the simulator never calls
// Access concurrently.
type Policy interface {
	// Name returns a short identifier used in experiment tables.
	Name() string
	// Access processes req and returns true if the object was already
	// cached (a hit).
	Access(req Request) bool
	// Used returns the number of bytes currently cached.
	Used() int64
	// Capacity returns the configured capacity in bytes.
	Capacity() int64
}

// Resetter is implemented by policies that can be reset to their initial
// empty state without reallocating (used by repeated benchmark runs).
type Resetter interface {
	Reset()
}

// Remover is implemented by policies that support external invalidation:
// removing an object on command (a DELETE from a cache daemon) rather
// than by capacity pressure. A removal is not an eviction — it does not
// count toward EvictionCounter and is not reported to the insertion
// policy's OnEvict, because the learning signals of Algorithm 1 are
// about placement decisions, not operator actions.
type Remover interface {
	// Remove deletes key if cached and reports whether it was present.
	Remove(key uint64) bool
}

// EvictionCounter is implemented by policies that track their cumulative
// eviction count. The sharded front uses it to export per-shard eviction
// counters without a per-eviction callback on the hot path.
type EvictionCounter interface {
	// Evictions returns the number of objects evicted since construction
	// (or the last Reset).
	Evictions() int64
}

// Position is a queue insertion position chosen by an insertion policy.
type Position int

const (
	// MRU inserts at the most-recently-used (head) end.
	MRU Position = iota
	// LRU inserts at the least-recently-used (tail) end.
	LRU
)

// String returns "MRU" or "LRU".
func (p Position) String() string {
	if p == MRU {
		return "MRU"
	}
	return "LRU"
}

// Residency classifies how an object's current stay at its queue position
// began. Each hit starts a new residency (the promotion re-inserts the
// object), so every placement decision owns exactly one residency.
type Residency uint8

const (
	// ResInserted: the residency began with a miss insertion.
	ResInserted Residency = iota
	// ResFirstHit: the residency began with the first hit after an
	// insertion — the point where P-ZROs reveal themselves.
	ResFirstHit
	// ResRepeat: the residency began with a second or later consecutive
	// hit; the object is demonstrably hot.
	ResRepeat
)

// EvictInfo describes an eviction as seen by an insertion policy.
type EvictInfo struct {
	// Key and Size identify the victim.
	Key  uint64
	Size int64
	// InsertedMRU reports whether the victim's latest (re-)insertion
	// placed it at the MRU position.
	InsertedMRU bool
	// EverHit reports whether the victim was hit during its latest
	// residency (since its last insertion or promotion).
	EverHit bool
	// Residency reports how the victim's final residency began.
	Residency Residency
}

// InsertionPolicy decides where missing and hit objects are placed in an
// LRU-style queue. It is the pluggable component that SCIP, ASC-IP and the
// other insertion baselines implement; replacement algorithms with a queue
// (LRU, LRU-K, LRB, ...) consult it on every miss and hit.
type InsertionPolicy interface {
	// Name returns a short identifier used in experiment tables.
	Name() string
	// ChooseInsert picks the position for a missing object about to be
	// inserted.
	ChooseInsert(req Request) Position
	// ChoosePromote picks the position for a hit object about to be
	// re-inserted (the promotion treated as a special insertion).
	ChoosePromote(req Request) Position
	// OnEvict informs the policy that an object was evicted from the
	// real cache.
	OnEvict(ev EvictInfo)
	// OnAccess is called for every request before the insert/promote
	// decision, with the hit outcome, so the policy can learn.
	OnAccess(req Request, hit bool)
}

// ResidencyObserver is an optional extension of InsertionPolicy. When the
// policy implements it, the cache reports every hit on a resident object
// together with the provenance of its current residency — the positive
// counterpart of the never-hit eviction signal: the placement decision
// that kept this object resident has just been validated.
type ResidencyObserver interface {
	// OnResidentHit is called when req hits. insertedMRU and res
	// describe the residency that produced the hit; hits is the number
	// of hits in this residency including this one.
	OnResidentHit(req Request, insertedMRU bool, res Residency, hits int)
}
