package cache

// Index is an open-addressing hash table from uint64 keys to Handles,
// replacing map[uint64]*Entry in the cache data plane. The backing array
// is pointer-free (uint64 keys, int32 handles), so a fully loaded index
// contributes nothing to GC scan work.
//
// Layout: power-of-two capacity, Fibonacci multiplicative hashing into the
// top bits, linear probing over a single slot array (key and handle share
// a 16-byte slot, so each probe step touches one cache line). Deletions in
// the active table use backward-shift compaction (no tombstones accumulate
// on the hot probe paths). Growth is incremental: the loaded table is
// frozen, a table of twice the size becomes active, and each subsequent
// Put or Delete migrates a bounded batch of frozen slots, so no single
// operation pays a full rehash. While a frozen table exists, lookups probe
// the active table first and fall back to the frozen one; frozen-table
// deletions leave tombstones (the frozen table only drains, so they cannot
// accumulate beyond its original load).
//
// The zero value is an empty index ready for use.
type Index struct {
	slots []indexEntry
	shift uint8 // 64 - log2(len(slots))
	n     int   // live entries in the active table

	// Frozen table being drained by incremental migration. nil when no
	// growth is in flight.
	old      []indexEntry
	oldShift uint8
	oldN     int // live (non-tombstone, unmigrated) entries left
	migrated int // next frozen slot to scan
}

// indexEntry is one open-addressing slot: a key and its handle (or None
// for an empty slot, tombstone for a retired frozen-table slot).
type indexEntry struct {
	key uint64
	val Handle
}

// tombstone marks a frozen-table slot whose entry was deleted or migrated.
// It never appears in the active table.
const tombstone Handle = -2

// fibMult is the 64-bit Fibonacci hashing multiplier (2^64 / phi).
const fibMult = 0x9E3779B97F4A7C15

const (
	indexMinBits = 4 // smallest table: 16 slots
	// migrateChunk frozen slots are scanned per mutating operation. The
	// active table needs well over half its predecessor's slot count in
	// fresh inserts before it can grow again, while migration finishes
	// after len(old)/migrateChunk mutations, so a frozen table always
	// drains long before the next growth.
	migrateChunk = 16
)

func indexSlot(key uint64, shift uint8) uint64 {
	return (key * fibMult) >> shift
}

// Init pre-sizes the index for hint entries so steady-state use never
// grows. Calling Init on a non-empty index is a no-op.
func (x *Index) Init(hint int) {
	if x.slots != nil {
		return
	}
	bits := uint8(indexMinBits)
	for bits < 31 && (1<<bits) < hint*2 {
		bits++
	}
	x.alloc(bits)
}

// alloc installs a fresh active table of 1<<bits slots.
func (x *Index) alloc(bits uint8) {
	//scip:alloc-ok index growth is amortized-rare and absent entirely when Init pre-sizes for the working set
	x.slots = make([]indexEntry, 1<<bits)
	for i := range x.slots {
		x.slots[i].val = None
	}
	x.shift = 64 - bits
	x.n = 0
}

// Len returns the number of keys present.
func (x *Index) Len() int { return x.n + x.oldN }

// Get returns the handle for key, or None. Get never mutates the index,
// so concurrent readers under the caller's read lock stay safe.
func (x *Index) Get(key uint64) Handle {
	if len(x.slots) == 0 {
		return None
	}
	slots := x.slots
	mask := uint64(len(slots)) - 1
	i := indexSlot(key, x.shift)
	for {
		s := &slots[i]
		if s.val == None {
			break
		}
		if s.key == key {
			return s.val
		}
		i = (i + 1) & mask
	}
	if x.old == nil {
		return None
	}
	if j, ok := x.oldProbe(key); ok {
		return x.old[j].val
	}
	return None
}

// Put maps key to h, replacing any existing mapping.
func (x *Index) Put(key uint64, h Handle) {
	if len(x.slots) == 0 {
		x.alloc(indexMinBits)
	}
	if x.old != nil {
		x.migrate(migrateChunk)
	}
	slots := x.slots
	mask := uint64(len(slots)) - 1
	i := indexSlot(key, x.shift)
	for {
		s := &slots[i]
		if s.val == None {
			break
		}
		if s.key == key {
			s.val = h
			return
		}
		i = (i + 1) & mask
	}
	// Not in the active table. A frozen-table occurrence must be retired
	// so the new mapping shadows it permanently.
	if x.old != nil {
		if j, ok := x.oldProbe(key); ok {
			x.old[j].val = tombstone
			x.dropOldEntry()
		}
	}
	// Grow above 1/2 load: probe chains stay short enough that misses
	// (which scan a full run in Get and again here) cost ~2 probes.
	if (x.n+x.oldN+1)*2 > len(slots) {
		x.grow()
		slots = x.slots
		mask = uint64(len(slots)) - 1
		i = indexSlot(key, x.shift)
		for slots[i].val != None {
			i = (i + 1) & mask
		}
	}
	slots[i] = indexEntry{key: key, val: h}
	x.n++
}

// Delete removes key, returning its handle and whether it was present.
func (x *Index) Delete(key uint64) (Handle, bool) {
	if len(x.slots) == 0 {
		return None, false
	}
	if x.old != nil {
		x.migrate(migrateChunk)
	}
	slots := x.slots
	mask := uint64(len(slots)) - 1
	i := indexSlot(key, x.shift)
	for {
		s := &slots[i]
		if s.val == None {
			break
		}
		if s.key == key {
			v := s.val
			x.backshift(i)
			x.n--
			return v, true
		}
		i = (i + 1) & mask
	}
	if x.old != nil {
		if j, ok := x.oldProbe(key); ok {
			v := x.old[j].val
			x.old[j].val = tombstone
			x.dropOldEntry()
			return v, true
		}
	}
	return None, false
}

// Reset empties the index, keeping the active table's capacity.
func (x *Index) Reset() {
	for i := range x.slots {
		x.slots[i].val = None
	}
	x.n = 0
	x.old = nil
	x.oldN, x.migrated = 0, 0
}

// ForEach calls f for every (key, handle) pair. Iteration order is the
// table's probe order, not insertion order; it is a test and debugging
// aid, not a hot-path API.
func (x *Index) ForEach(f func(key uint64, h Handle)) {
	for i := range x.slots {
		if v := x.slots[i].val; v != None {
			f(x.slots[i].key, v)
		}
	}
	for i := range x.old {
		if v := x.old[i].val; v != None && v != tombstone {
			f(x.old[i].key, v)
		}
	}
}

// oldProbe finds key's slot in the frozen table, skipping tombstones.
func (x *Index) oldProbe(key uint64) (uint64, bool) {
	mask := uint64(len(x.old)) - 1
	i := indexSlot(key, x.oldShift)
	for {
		s := &x.old[i]
		if s.val == None {
			return 0, false
		}
		if s.val != tombstone && s.key == key {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// dropOldEntry accounts for one frozen-table entry retired (deleted or
// migrated) and releases the frozen table once it is fully drained.
func (x *Index) dropOldEntry() {
	x.oldN--
	if x.oldN == 0 {
		x.old = nil
		x.migrated = 0
	}
}

// grow freezes the active table and installs one of twice the size.
// Entries drain into the new table incrementally via migrate.
func (x *Index) grow() {
	if x.old != nil {
		// Unreachable at migrateChunk's pacing (the frozen table drains
		// long before the active one refills), kept as a safety net: a
		// second growth may not start until the first has finished.
		x.migrate(len(x.old))
	}
	x.old = x.slots
	x.oldShift, x.oldN = x.shift, x.n
	x.migrated = 0
	x.alloc(64 - x.shift + 1)
}

// migrate scans up to limit frozen slots, re-homing live entries into the
// active table and tombstoning their frozen slots.
func (x *Index) migrate(limit int) {
	for limit > 0 && x.old != nil {
		if x.migrated >= len(x.old) {
			// Every slot scanned; only tombstones remain.
			x.old = nil
			x.oldN, x.migrated = 0, 0
			return
		}
		s := &x.old[x.migrated]
		if s.val != None && s.val != tombstone {
			x.insertFresh(s.key, s.val)
			s.val = tombstone
			x.migrated++
			x.dropOldEntry()
		} else {
			x.migrated++
		}
		limit--
	}
}

// insertFresh places a key known to be absent from the active table. The
// active table is sized for the whole frozen population, so migration
// inserts need no growth check.
func (x *Index) insertFresh(key uint64, h Handle) {
	mask := uint64(len(x.slots)) - 1
	i := indexSlot(key, x.shift)
	for x.slots[i].val != None {
		i = (i + 1) & mask
	}
	x.slots[i] = indexEntry{key: key, val: h}
	x.n++
}

// backshift deletes active-table slot i by shifting the following probe
// run backward (Robin Hood style), so probe chains stay dense and the
// active table never holds tombstones.
func (x *Index) backshift(i uint64) {
	slots := x.slots
	mask := uint64(len(slots)) - 1
	j := i
	for {
		j = (j + 1) & mask
		if slots[j].val == None {
			break
		}
		home := indexSlot(slots[j].key, x.shift)
		if ((j - home) & mask) >= ((j - i) & mask) {
			slots[i] = slots[j]
			i = j
		}
	}
	slots[i].val = None
}
