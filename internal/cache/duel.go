package cache

// lipGhost is the fixed LIP policy used by the dueling monitor's second
// ghost: missing objects enter at the LRU position, hits promote to MRU.
type lipGhost struct{}

func (lipGhost) Name() string                   { return "LIP" }
func (lipGhost) ChooseInsert(Request) Position  { return LRU }
func (lipGhost) ChoosePromote(Request) Position { return MRU }
func (lipGhost) OnEvict(EvictInfo)              {}
func (lipGhost) OnAccess(Request, bool)         {}

// DuelMonitor runs two small sampled ghost caches — one with pure MRU
// insertion (plain LRU) and one with pure LRU insertion (LIP) — over a
// hash sample of the traffic and periodically reports which insertion
// expert actually produces more hits. It is the single-queue analogue of
// DIP's set dueling: the damage a ZRO flood does to the MRU monitor shows
// up in the monitor's own hit count, a counterfactual signal per-object
// ghost lists cannot provide.
type DuelMonitor struct {
	mru, lip   *QueueCache
	hitA, hitB int
	samples    int
	mask       uint64
}

// NewDuelMonitor creates dueling monitors. Each ghost holds ghostFrac of
// capBytes and observes keys whose hash lands in 1/(mask+1) of the space
// (mask must be 2^k−1; the ghost capacity should use the same fraction so
// reuse distances scale consistently).
func NewDuelMonitor(capBytes int64, ghostFrac float64, mask uint64) *DuelMonitor {
	gb := int64(ghostFrac * float64(capBytes))
	if gb < 1 {
		gb = 1
	}
	return &DuelMonitor{
		mru:  NewLRU(gb),
		lip:  NewQueueCache("ghost-LIP", gb, lipGhost{}),
		mask: mask,
	}
}

// Observe feeds a request to the monitors if it falls in the sample.
func (d *DuelMonitor) Observe(req Request) {
	// Cheap multiplicative hash so sampling is independent of key layout.
	if (req.Key*0x9E3779B97F4A7C15)>>56&d.mask != 0 {
		return
	}
	d.samples++
	if d.mru.Access(req) {
		d.hitA++
	}
	if d.lip.Access(req) {
		d.hitB++
	}
}

// Verdict returns the normalised hit-count difference in [-1, 1]: positive
// favours MRU insertion, negative favours LRU insertion. The counters are
// reset for the next window.
func (d *DuelMonitor) Verdict() float64 {
	total := d.hitA + d.hitB
	var v float64
	if total > 0 {
		v = float64(d.hitA-d.hitB) / float64(total)
	}
	d.hitA, d.hitB, d.samples = 0, 0, 0
	return v
}

// Reset clears the monitors.
func (d *DuelMonitor) Reset() {
	d.mru.Reset()
	d.lip.Reset()
	d.hitA, d.hitB, d.samples = 0, 0, 0
}
