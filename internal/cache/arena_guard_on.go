//go:build scipdebug

package cache

// handleChecks is on under the scipdebug build tag: every Arena.At
// validates the handle's range and that the slot has not been freed, so
// use-after-free of a handle panics at the dereference instead of
// corrupting another entry.
const handleChecks = true
