package zro

import (
	"testing"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/trace"
)

// mkTrace builds a trace of unit-size objects from a key sequence.
func mkTrace(keys ...uint64) *trace.Trace {
	t := &trace.Trace{Name: "t"}
	for i, k := range keys {
		t.Requests = append(t.Requests, cache.Request{Time: int64(i), Key: k, Size: 10})
	}
	return t
}

func TestAnalyzeLabelsZRO(t *testing.T) {
	// Cache fits 3 objects. Object 9 is inserted once, never reused, and
	// evicted by the flood of 1..4: a ZRO occurrence at index 0.
	tr := mkTrace(9, 1, 2, 3, 4, 1, 2, 3, 4)
	lb, sum := Analyze(tr, 30)
	if !lb.IsInsertion[0] {
		t.Fatal("request 0 should be an insertion")
	}
	if !lb.ZRO[0] {
		t.Fatal("object 9's insertion should be a ZRO occurrence")
	}
	if lb.AZRO[0] {
		t.Fatal("object 9 never re-hit: not an A-ZRO")
	}
	if sum.ZROs == 0 || sum.Insertions == 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

func TestAnalyzeLabelsAZRO(t *testing.T) {
	// Object 9: inserted (idx 0), evicted unused (ZRO), re-inserted
	// (idx 5), then hit (idx 6) -> its earlier ZRO becomes an A-ZRO.
	tr := mkTrace(9, 1, 2, 3, 4, 9, 9)
	lb, sum := Analyze(tr, 30)
	if !lb.ZRO[0] {
		t.Fatal("first insertion of 9 should be ZRO")
	}
	if !lb.AZRO[0] {
		t.Fatal("ZRO at 0 should degrade to A-ZRO after the hit at 6")
	}
	if sum.AZROs != 1 {
		t.Fatalf("AZROs = %d, want 1", sum.AZROs)
	}
}

func TestAnalyzeLabelsPZRO(t *testing.T) {
	// Object 9: inserted (0), hit once (1), then evicted by flood with no
	// further hit: the hit at index 1 is a P-ZRO occurrence.
	tr := mkTrace(9, 9, 1, 2, 3, 4, 1, 2, 3, 4)
	lb, sum := Analyze(tr, 30)
	if !lb.IsHit[1] {
		t.Fatal("request 1 should be a hit")
	}
	if !lb.PZRO[1] {
		t.Fatal("the lone hit should be a P-ZRO occurrence")
	}
	if lb.ZRO[0] {
		t.Fatal("insertion with a hit is not a ZRO")
	}
	if sum.PZROs != 1 {
		t.Fatalf("PZROs = %d, want 1", sum.PZROs)
	}
}

func TestAnalyzeLabelsAPZRO(t *testing.T) {
	// Object 9: insert, hit (P-ZRO), evicted, re-insert, hit again ->
	// the P-ZRO becomes an A-P-ZRO.
	tr := mkTrace(9, 9, 1, 2, 3, 4, 9, 9)
	lb, sum := Analyze(tr, 30)
	if !lb.PZRO[1] {
		t.Fatal("hit at 1 should be P-ZRO")
	}
	if !lb.APZRO[1] {
		t.Fatal("P-ZRO at 1 should degrade to A-P-ZRO after the hit at 7")
	}
	if sum.APZROs != 1 {
		t.Fatalf("APZROs = %d, want 1", sum.APZROs)
	}
}

func TestAnalyzeUnresolvedExcluded(t *testing.T) {
	// Everything still resident at the end stays unresolved.
	tr := mkTrace(1, 2)
	lb, sum := Analyze(tr, 100)
	if lb.Resolved[0] || lb.Resolved[1] {
		t.Fatal("resident objects should be unresolved")
	}
	if sum.Insertions != 0 || sum.ZROs != 0 {
		t.Fatalf("unresolved events counted: %+v", sum)
	}
	if sum.MissRatio != 1 {
		t.Fatalf("miss ratio = %g, want 1", sum.MissRatio)
	}
}

func TestAnalyzeValidatedHitNotPZRO(t *testing.T) {
	// Object 9 hit twice then evicted: first hit validated, second is the
	// P-ZRO occurrence.
	tr := mkTrace(9, 9, 9, 1, 2, 3, 4, 1, 2, 3, 4)
	lb, _ := Analyze(tr, 30)
	if lb.PZRO[1] {
		t.Fatal("hit followed by another hit must not be P-ZRO")
	}
	if !lb.PZRO[2] {
		t.Fatal("final hit should be the P-ZRO occurrence")
	}
	if !lb.Resolved[1] {
		t.Fatal("validated hit should be resolved")
	}
}

func TestOracleReplayReducesMissRatio(t *testing.T) {
	tr, err := gen.Generate(gen.Config{
		Name: "zro", Seed: 5,
		Requests:    60_000,
		CatalogSize: 500,
		ZipfAlpha:   0.8,
		OneHitFrac:  0.4,
		EchoProb:    0.2, EchoDelay: 60, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := int64(150_000)
	_, sum := Analyze(tr, capBytes)
	lruMR := sum.MissRatio
	zroMR := OracleReplay(tr, capBytes, true, false, 1, 0)
	pzroMR := OracleReplay(tr, capBytes, false, true, 1, 0)
	bothMR := OracleReplay(tr, capBytes, true, true, 1, 0)
	noneMR := OracleReplay(tr, capBytes, true, true, 0, 0)
	if zroMR >= lruMR {
		t.Fatalf("ZRO oracle %.4f >= LRU %.4f", zroMR, lruMR)
	}
	if pzroMR >= lruMR {
		t.Fatalf("P-ZRO oracle %.4f >= LRU %.4f", pzroMR, lruMR)
	}
	// Figure 3's headline relationship: treating both beats either alone.
	if bothMR >= zroMR || bothMR >= pzroMR {
		t.Fatalf("both-oracle %.4f should beat ZRO %.4f and P-ZRO %.4f", bothMR, zroMR, pzroMR)
	}
	if diff := noneMR - lruMR; diff > 0.001 || diff < -0.001 {
		t.Fatalf("frac-disabled oracle %.4f != LRU %.4f", noneMR, lruMR)
	}
}

func TestOracleReplayMonotoneInFraction(t *testing.T) {
	tr, err := gen.Generate(gen.Config{
		Name: "zro", Seed: 6,
		Requests:    40_000,
		CatalogSize: 400,
		ZipfAlpha:   0.8,
		OneHitFrac:  0.4,
		EchoProb:    0.2, EchoDelay: 60, EchoTailFrac: 0.5,
		EpochRequests: 20_000, DriftFrac: 0.1,
		SizeMean: 1000, SizeSigma: 0.8, MinSize: 100, MaxSize: 10_000,
		Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := int64(120_000)
	prev := 1.0
	for _, f := range []float64{0, 0.5, 1} {
		mr := OracleReplay(tr, capBytes, true, true, f, 0)
		if mr > prev+0.01 {
			t.Fatalf("miss ratio not (weakly) decreasing in fraction: %.4f after %.4f", mr, prev)
		}
		prev = mr
	}
}

func TestCollectEvents(t *testing.T) {
	tr := mkTrace(9, 9, 1, 2, 9)
	events := CollectEvents(tr, 30, 1)
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	if !events[0].Insertion || events[1].Insertion {
		t.Fatal("event roles wrong")
	}
	for _, e := range events {
		if len(e.Features) != NumFeatures {
			t.Fatalf("feature width %d", len(e.Features))
		}
	}
	// Gap feature of the hit at index 1 must reflect distance 1.
	if events[1].Features[1] != 1 { // log2(1+1) = 1
		t.Fatalf("gap feature = %g, want 1", events[1].Features[1])
	}
	// Sampling.
	half := CollectEvents(tr, 30, 2)
	if len(half) >= len(events) {
		t.Fatal("sampling did not reduce events")
	}
}

func TestSummaryFracs(t *testing.T) {
	s := Summary{Insertions: 10, ZROs: 5, AZROs: 1, Hits: 20, PZROs: 4, APZROs: 2}
	if s.ZROFrac() != 0.5 || s.AZROFrac() != 0.2 || s.PZROFrac() != 0.2 || s.APZROFrac() != 0.5 {
		t.Fatalf("fracs wrong: %g %g %g %g", s.ZROFrac(), s.AZROFrac(), s.PZROFrac(), s.APZROFrac())
	}
	var empty Summary
	if empty.ZROFrac() != 0 || empty.PZROFrac() != 0 {
		t.Fatal("empty summary fracs should be 0")
	}
}
