// Package zro labels zero-reuse objects (ZROs) and promotion-ZROs
// (P-ZROs) in a trace replayed under LRU, reproducing the analyses behind
// the paper's Figures 1 and 3 and supplying the labelled datasets Figure 4
// trains its classifiers on.
//
// Definitions (relative to a replay):
//   - A ZRO occurrence is a miss insertion whose residency ends (eviction)
//     without a single hit.
//   - An A-ZRO is a ZRO occurrence whose object is hit in the cache at
//     some later time (the ZRO property is not a fixed attribute).
//   - A P-ZRO occurrence is a hit (promotion) that is never followed by
//     another hit before the object is evicted.
//   - An A-P-ZRO is a P-ZRO occurrence whose object is hit again later.
//
// Occurrences whose residency has not ended when the trace ends are left
// unresolved and excluded from numerators and denominators.
package zro
