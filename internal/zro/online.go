package zro

import "math/bits"

// onlineClasses buckets the online estimator by log2 object size, the
// same granularity as SCIP's contextual weight pairs: size is the
// strongest conditioning signal available at admission time.
const onlineClasses = 16

// onlineMinObs is the evidence count before a class estimate is trusted
// over the prior.
const onlineMinObs = 8

func onlineClass(size int64) int {
	c := bits.Len64(uint64(size)) - 5 // sizes < 32B share class 0
	if c < 0 {
		c = 0
	}
	if c >= onlineClasses {
		c = onlineClasses - 1
	}
	return c
}

// OnlineEstimator tracks, per log2 size class, an exponentially weighted
// estimate of the probability that an inserted object is reused before
// leaving the cache — the online counterpart of 1 − ZROFrac from the
// offline Analyze pass. Evidence comes from the hosting cache's
// residency outcomes: an eviction with no hits is a ZRO occurrence
// (reuse did not happen), any resident hit is the positive outcome. The
// EWMA lets the estimate track workload drift instead of averaging over
// the whole replay. Not safe for concurrent use.
type OnlineEstimator struct {
	// Alpha is the EWMA step per observation (default 0.02).
	Alpha float64
	// Prior is returned for classes with too little evidence
	// (default 0.5: no opinion).
	Prior float64

	est  [onlineClasses]float64
	seen [onlineClasses]int
}

// NewOnlineEstimator returns an estimator with the default EWMA step.
func NewOnlineEstimator() *OnlineEstimator {
	e := &OnlineEstimator{Alpha: 0.02, Prior: 0.5}
	e.Reset()
	return e
}

// Observe records one resolved residency outcome for an object of the
// given size: reused=false for a never-hit eviction (ZRO), reused=true
// for a residency that produced a hit.
func (e *OnlineEstimator) Observe(size int64, reused bool) {
	c := onlineClass(size)
	y := 0.0
	if reused {
		y = 1
	}
	e.est[c] += e.Alpha * (y - e.est[c])
	if e.seen[c] < onlineMinObs {
		e.seen[c]++
	}
}

// Likelihood returns the estimated reuse probability for an object of
// the given size, in [0, 1]. Classes without enough evidence return the
// prior.
func (e *OnlineEstimator) Likelihood(size int64) float64 {
	c := onlineClass(size)
	if e.seen[c] < onlineMinObs {
		return e.Prior
	}
	return e.est[c]
}

// Seen reports whether the size's class has accumulated enough evidence
// to override the prior.
func (e *OnlineEstimator) Seen(size int64) bool {
	return e.seen[onlineClass(size)] >= onlineMinObs
}

// Reset restores the initial no-evidence state.
func (e *OnlineEstimator) Reset() {
	for i := range e.est {
		e.est[i] = e.Prior
		e.seen[i] = 0
	}
}
