package zro

import (
	"math"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/trace"
)

// Labels holds per-request-index roles and occurrence labels.
type Labels struct {
	// IsInsertion marks requests that missed and inserted an object.
	IsInsertion []bool
	// IsHit marks requests that hit.
	IsHit []bool
	// ZRO marks insertion events later resolved as ZRO occurrences.
	ZRO []bool
	// PZRO marks hit events later resolved as P-ZRO occurrences.
	PZRO []bool
	// AZRO marks ZRO occurrences whose object was hit again later.
	AZRO []bool
	// APZRO marks P-ZRO occurrences whose object was hit again later.
	APZRO []bool
	// Resolved marks events whose residency outcome is known.
	Resolved []bool
}

// Summary aggregates a labelling pass (all counts are over resolved
// events only, except the miss ratio which covers the whole replay).
type Summary struct {
	Insertions int
	ZROs       int
	AZROs      int
	Hits       int
	PZROs      int
	APZROs     int
	MissRatio  float64
}

// ZROFrac returns the proportion of ZROs among missing objects
// (Figure 1a).
func (s Summary) ZROFrac() float64 { return frac(s.ZROs, s.Insertions) }

// AZROFrac returns the proportion of A-ZROs among ZROs (Figure 1c).
func (s Summary) AZROFrac() float64 { return frac(s.AZROs, s.ZROs) }

// PZROFrac returns the proportion of P-ZROs among hit objects
// (Figure 1d).
func (s Summary) PZROFrac() float64 { return frac(s.PZROs, s.Hits) }

// APZROFrac returns the proportion of A-P-ZROs among P-ZROs (Figure 1f).
func (s Summary) APZROFrac() float64 { return frac(s.APZROs, s.PZROs) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

type objState struct {
	lastPlacement int
	lastWasHit    bool
	pendingZRO    []int32
	pendingPZRO   []int32
}

// Analyze replays tr under plain LRU with capBytes capacity and returns
// the occurrence labels and summary.
func Analyze(tr *trace.Trace, capBytes int64) (*Labels, Summary) {
	n := len(tr.Requests)
	lb := &Labels{
		IsInsertion: make([]bool, n),
		IsHit:       make([]bool, n),
		ZRO:         make([]bool, n),
		PZRO:        make([]bool, n),
		AZRO:        make([]bool, n),
		APZRO:       make([]bool, n),
		Resolved:    make([]bool, n),
	}
	c := cache.NewLRU(capBytes)
	states := make(map[uint64]*objState, 1<<12)
	var misses int
	c.EvictHook = func(e *cache.Entry) {
		st := states[e.Key]
		if st == nil {
			return
		}
		idx := st.lastPlacement
		lb.Resolved[idx] = true
		if e.Hits == 0 {
			// The insertion was never rewarded: ZRO occurrence.
			lb.ZRO[idx] = true
			st.pendingZRO = append(st.pendingZRO, int32(idx))
		} else {
			// The final hit was never followed by another: P-ZRO.
			lb.PZRO[idx] = true
			st.pendingPZRO = append(st.pendingPZRO, int32(idx))
		}
	}
	for i, req := range tr.Requests {
		hit := c.Contains(req.Key)
		if hit {
			lb.IsHit[i] = true
			st := states[req.Key]
			// The previous placement of this residency is validated.
			lb.Resolved[st.lastPlacement] = true
			// Earlier ZRO/P-ZRO occurrences of this object degrade to
			// their A- variants: the object is being hit in the cache.
			for _, z := range st.pendingZRO {
				lb.AZRO[z] = true
			}
			for _, z := range st.pendingPZRO {
				lb.APZRO[z] = true
			}
			st.pendingZRO = st.pendingZRO[:0]
			st.pendingPZRO = st.pendingPZRO[:0]
			st.lastPlacement = i
			st.lastWasHit = true
		} else {
			misses++
			if req.Size <= capBytes && req.Size > 0 {
				lb.IsInsertion[i] = true
				st := states[req.Key]
				if st == nil {
					st = &objState{}
					states[req.Key] = st
				}
				st.lastPlacement = i
				st.lastWasHit = false
			}
		}
		c.Access(req)
	}
	var sum Summary
	for i := 0; i < n; i++ {
		if !lb.Resolved[i] {
			continue
		}
		switch {
		case lb.IsInsertion[i]:
			sum.Insertions++
			if lb.ZRO[i] {
				sum.ZROs++
				if lb.AZRO[i] {
					sum.AZROs++
				}
			}
		case lb.IsHit[i]:
			sum.Hits++
			if lb.PZRO[i] {
				sum.PZROs++
				if lb.APZRO[i] {
					sum.APZROs++
				}
			}
		}
	}
	if n > 0 {
		sum.MissRatio = float64(misses) / float64(n)
	}
	return lb, sum
}

// oracleIns places occurrences with no near-future reuse at the LRU
// position during an OracleReplay. Its reuse horizon adapts online: an
// MRU-placed object survives until the cache has turned over once, so the
// horizon is capacity divided by the rate at which bytes enter the MRU
// position. The treatment itself slows that rate (ZROs and P-ZROs stop
// passing through the full queue), lengthening the horizon — the
// interaction §2.2 of the paper calls out — and the rate-based estimate
// tracks it with stable negative feedback.
type oracleIns struct {
	next     []int
	horizon  float64
	minH     float64
	capBytes int64
	useZRO   bool
	usePZRO  bool
	limitIdx int
	i        int

	windowStart    int
	windowMRUBytes int64
}

const oracleWindow = 1000

func (o *oracleIns) Name() string { return "Oracle" }

// dead reports whether the object requested at the current index will not
// be requested again within the horizon — the self-consistent ZRO/P-ZRO
// criterion.
func (o *oracleIns) dead() bool {
	nxt := o.next[o.i]
	return nxt < 0 || float64(nxt-o.i) > o.horizon
}

func (o *oracleIns) ChooseInsert(req cache.Request) cache.Position {
	if o.useZRO && o.i < o.limitIdx && o.dead() {
		return cache.LRU
	}
	o.windowMRUBytes += req.Size
	return cache.MRU
}

func (o *oracleIns) ChoosePromote(req cache.Request) cache.Position {
	if o.usePZRO && o.i < o.limitIdx && o.dead() {
		return cache.LRU
	}
	return cache.MRU
}

func (o *oracleIns) OnEvict(cache.EvictInfo) {}

func (o *oracleIns) OnAccess(cache.Request, bool) {
	if o.i-o.windowStart < oracleWindow {
		return
	}
	if o.windowMRUBytes > 0 {
		h := float64(o.capBytes) * oracleWindow / float64(o.windowMRUBytes)
		if h < o.minH {
			h = o.minH
		}
		if max := float64(len(o.next)); h > max {
			h = max
		}
		// Smooth across windows.
		o.horizon += 0.5 * (h - o.horizon)
	}
	o.windowStart = o.i
	o.windowMRUBytes = 0
}

// NextOccurrences returns, per request index, the index of the next
// request for the same object, or -1 when there is none.
func NextOccurrences(tr *trace.Trace) []int {
	next := make([]int, len(tr.Requests))
	last := make(map[uint64]int, 1<<12)
	for i := len(tr.Requests) - 1; i >= 0; i-- {
		k := tr.Requests[i].Key
		if j, ok := last[k]; ok {
			next[i] = j
		} else {
			next[i] = -1
		}
		last[k] = i
	}
	return next
}

// MeanResidency replays tr under plain LRU and returns the mean number of
// requests an inserted object stays cached before eviction — the natural
// horizon for the theoretical ZRO criterion.
func MeanResidency(tr *trace.Trace, capBytes int64) int {
	c := cache.NewLRU(capBytes)
	insertIdx := make(map[uint64]int, 1<<12)
	var sum, n float64
	cur := 0
	c.EvictHook = func(e *cache.Entry) {
		if ins, ok := insertIdx[e.Key]; ok {
			sum += float64(cur - ins)
			n++
			delete(insertIdx, e.Key)
		}
	}
	for i, req := range tr.Requests {
		cur = i
		if !c.Contains(req.Key) && req.Size > 0 && req.Size <= capBytes {
			insertIdx[req.Key] = i
		}
		c.Access(req)
	}
	if n == 0 {
		return len(tr.Requests)
	}
	return int(sum / n)
}

// OracleReplay replays tr with LRU victim selection, placing insertions
// (useZRO) and/or promotions (usePZRO) of objects with no reuse within the
// horizon at the LRU position, for the first fracTop of the access
// sequence ("the top of the access sequence" in the paper's Figure 3).
// It returns the resulting miss ratio; fracTop = 0 degenerates to plain
// LRU. The future-knowledge criterion is used instead of the replay
// labels because index-aligned labels lose their meaning once placements
// change the hit/miss pattern — the interaction §2.2 of the paper calls
// out. horizon <= 0 selects MeanResidency(tr, capBytes) automatically.
func OracleReplay(tr *trace.Trace, capBytes int64, useZRO, usePZRO bool, fracTop float64, horizon int) float64 {
	if horizon <= 0 {
		horizon = MeanResidency(tr, capBytes)
	}
	ins := &oracleIns{
		next:     NextOccurrences(tr),
		horizon:  float64(horizon),
		minH:     float64(horizon),
		capBytes: capBytes,
		useZRO:   useZRO,
		usePZRO:  usePZRO,
		limitIdx: int(fracTop * float64(len(tr.Requests))),
	}
	c := cache.NewQueueCache("oracle", capBytes, ins)
	misses := 0
	for i, req := range tr.Requests {
		ins.i = i
		if !c.Access(req) {
			misses++
		}
	}
	if len(tr.Requests) == 0 {
		return 0
	}
	return float64(misses) / float64(len(tr.Requests))
}

// Event is one feature vector of the Figure-4 dataset.
type Event struct {
	// Index is the request index the event describes.
	Index int
	// Insertion distinguishes miss-insertion events from hit events.
	Insertion bool
	// Features: log2(size), log2(1+gap since the object's previous
	// access in requests), log2(1+accesses so far), log2(1+mean
	// inter-arrival), hits in current residency, log2(1+requests since
	// insertion).
	Features []float64
}

// NumFeatures is the width of Event.Features.
const NumFeatures = 6

// CollectEvents replays tr under LRU and emits every sampleEvery-th
// resolved-eligible event with its features; callers join them with
// Labels to build classification datasets.
func CollectEvents(tr *trace.Trace, capBytes int64, sampleEvery int) []Event {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	type objFeat struct {
		count      int
		lastIdx    int
		sumGap     float64
		insertIdx  int
		residHits  int
		everCached bool
	}
	feats := make(map[uint64]*objFeat, 1<<12)
	c := cache.NewLRU(capBytes)
	var events []Event
	for i, req := range tr.Requests {
		hit := c.Contains(req.Key)
		f := feats[req.Key]
		if f == nil {
			f = &objFeat{lastIdx: -1}
			feats[req.Key] = f
		}
		gap := 0.0
		if f.lastIdx >= 0 {
			gap = float64(i - f.lastIdx)
			f.sumGap += gap
		}
		meanGap := 0.0
		if f.count > 1 {
			meanGap = f.sumGap / float64(f.count-1)
		}
		if hit {
			f.residHits++
		} else {
			f.residHits = 0
			f.insertIdx = i
		}
		if i%sampleEvery == 0 && (hit || (req.Size <= capBytes && req.Size > 0)) {
			events = append(events, Event{
				Index:     i,
				Insertion: !hit,
				Features: []float64{
					math.Log2(float64(req.Size) + 1),
					math.Log2(gap + 1),
					math.Log2(float64(f.count) + 1),
					math.Log2(meanGap + 1),
					float64(f.residHits),
					math.Log2(float64(i-f.insertIdx) + 1),
				},
			})
		}
		f.count++
		f.lastIdx = i
		c.Access(req)
	}
	return events
}
