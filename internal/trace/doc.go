// Package trace defines the on-disk trace formats and summary statistics
// used by the simulator. A trace is an ordered sequence of cache.Request
// records. Two codecs are provided: a human-readable CSV ("time,key,size"
// per line, the format used by the LRB simulator) and a compact binary
// varint format for large synthetic traces.
//
// ParseBytes parses human-readable byte sizes ("256MiB") for CLI flags,
// and Summary computes the per-trace statistics the generators validate
// against.
package trace
