package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/scip-cache/scip/internal/cache"
)

func sample() *Trace {
	return &Trace{Name: "t", Requests: []cache.Request{
		{Time: 0, Key: 1, Size: 100},
		{Time: 1, Key: 2, Size: 50},
		{Time: 2, Key: 1, Size: 100},
		{Time: 5, Key: 3, Size: 25},
	}}
}

func TestComputeStats(t *testing.T) {
	s := sample().ComputeStats()
	if s.TotalRequests != 4 {
		t.Fatalf("TotalRequests=%d", s.TotalRequests)
	}
	if s.UniqueObjects != 3 {
		t.Fatalf("UniqueObjects=%d", s.UniqueObjects)
	}
	if s.MaxObjectSize != 100 || s.MinObjectSize != 25 {
		t.Fatalf("Max=%d Min=%d", s.MaxObjectSize, s.MinObjectSize)
	}
	if s.WorkingSetSize != 175 {
		t.Fatalf("WSS=%d", s.WorkingSetSize)
	}
	if want := 175.0 / 3; s.MeanObjectSize != want {
		t.Fatalf("Mean=%g want %g", s.MeanObjectSize, want)
	}
	if !strings.Contains(s.String(), "requests=4") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := (&Trace{Name: "e"}).ComputeStats()
	if s.TotalRequests != 0 || s.UniqueObjects != 0 || s.MeanObjectSize != 0 {
		t.Fatalf("unexpected stats for empty trace: %+v", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := in.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Requests) != len(in.Requests) {
		t.Fatalf("len=%d want %d", len(out.Requests), len(in.Requests))
	}
	for i := range in.Requests {
		if out.Requests[i] != in.Requests[i] {
			t.Fatalf("record %d: %v != %v", i, out.Requests[i], in.Requests[i])
		}
	}
}

func TestCSVSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n1,2,3\n  \n4,5,6\n"
	tr, err := ReadCSV(strings.NewReader(src), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("len=%d want 2", len(tr.Requests))
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",
		"a,2,3\n",
		"1,b,3\n",
		"1,2,c\n",
		"1,2,0\n",
		"1,2,-5\n",
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "x"); err == nil {
			t.Fatalf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Requests {
		if out.Requests[i] != in.Requests[i] {
			t.Fatalf("record %d: %v != %v", i, out.Requests[i], in.Requests[i])
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("nope....."), "x"); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsNonMonotonicTime(t *testing.T) {
	tr := &Trace{Requests: []cache.Request{
		{Time: 5, Key: 1, Size: 1},
		{Time: 4, Key: 2, Size: 1},
	}}
	if err := tr.WriteBinary(&bytes.Buffer{}); err == nil {
		t.Fatal("non-monotonic time accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-1]), "x"); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// Property: binary round-trip preserves arbitrary monotone traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, keys []uint32) bool {
		n := len(deltas)
		if len(keys) < n {
			n = len(keys)
		}
		in := &Trace{Name: "p"}
		var tm int64
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < n; i++ {
			tm += int64(deltas[i])
			in.Requests = append(in.Requests, cache.Request{
				Time: tm, Key: uint64(keys[i]), Size: int64(rng.Intn(1000) + 1),
			})
		}
		var buf bytes.Buffer
		if err := in.WriteBinary(&buf); err != nil {
			return false
		}
		out, err := ReadBinary(&buf, "p")
		if err != nil || len(out.Requests) != len(in.Requests) {
			return false
		}
		for i := range in.Requests {
			if out.Requests[i] != in.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1024", 1024, true},
		{"4KiB", 4096, true},
		{"512MiB", 512 << 20, true},
		{"64GiB", 64 << 30, true},
		{" 2GiB", 2 << 30, true},
		{"abc", 0, false},
		{"-5", 0, false},
		{"5TiB", 0, false}, // unknown suffix -> parse failure
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", c.in)
		}
	}
}

func TestReadLRBFormat(t *testing.T) {
	src := "# comment\n1 100 512\n2 101 1024 42 extra 7\n\n3 100 512\n"
	tr, err := ReadLRB(strings.NewReader(src), "lrb")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("len = %d, want 3", len(tr.Requests))
	}
	want := cache.Request{Time: 2, Key: 101, Size: 1024}
	if tr.Requests[1] != want {
		t.Fatalf("record 1 = %+v, want %+v", tr.Requests[1], want)
	}
}

func TestReadLRBErrors(t *testing.T) {
	for _, src := range []string{"1 2\n", "x 2 3\n", "1 y 3\n", "1 2 z\n", "1 2 0\n"} {
		if _, err := ReadLRB(strings.NewReader(src), "x"); err == nil {
			t.Errorf("ReadLRB(%q) succeeded, want error", src)
		}
	}
}
