package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the CSV parser must never panic and must only accept
// records with positive sizes.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2,3\n4,5,6\n")
	f.Add("# c\n\n9,9,9\n")
	f.Add("a,b,c\n")
	f.Add("1,2,-3\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadCSV(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		for _, r := range tr.Requests {
			if r.Size <= 0 {
				t.Fatalf("accepted non-positive size %d", r.Size)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic the binary decoder,
// and any accepted trace must round-trip.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = (&Trace{Requests: sample().Requests}).WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("SCT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.WriteBinary(&out); err != nil {
			// Accepted traces are monotone by construction of the delta
			// encoding, so re-encoding must succeed.
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadBinary(&out, "fuzz2")
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatal("round-trip length mismatch")
		}
	})
}

// FuzzReadLRB: the LRB-format parser must never panic.
func FuzzReadLRB(f *testing.F) {
	f.Add("1 2 3\n")
	f.Add("1 2 3 extra cols\n")
	f.Add("x y z\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadLRB(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		for _, r := range tr.Requests {
			if r.Size <= 0 {
				t.Fatalf("accepted non-positive size %d", r.Size)
			}
		}
	})
}
