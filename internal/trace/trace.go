package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/scip-cache/scip/internal/cache"
)

// Trace is an in-memory access trace.
type Trace struct {
	// Name labels the workload (e.g. "CDN-T").
	Name string
	// Requests in replay order.
	Requests []cache.Request
}

// Stats summarises a trace in the shape of the paper's Table 1.
type Stats struct {
	Name           string
	TotalRequests  int
	UniqueObjects  int
	MaxObjectSize  int64
	MinObjectSize  int64
	MeanObjectSize float64 // mean size over unique objects, bytes
	WorkingSetSize int64   // sum of unique object sizes, bytes
}

// ComputeStats scans the trace once and returns its Table-1 statistics.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Name: t.Name, TotalRequests: len(t.Requests)}
	sizes := make(map[uint64]int64, 1<<16)
	for _, r := range t.Requests {
		if _, seen := sizes[r.Key]; !seen {
			sizes[r.Key] = r.Size
			s.WorkingSetSize += r.Size
			if r.Size > s.MaxObjectSize {
				s.MaxObjectSize = r.Size
			}
			if s.MinObjectSize == 0 || r.Size < s.MinObjectSize {
				s.MinObjectSize = r.Size
			}
		}
	}
	s.UniqueObjects = len(sizes)
	if s.UniqueObjects > 0 {
		s.MeanObjectSize = float64(s.WorkingSetSize) / float64(s.UniqueObjects)
	}
	return s
}

// String renders the stats as one Table-1-style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s requests=%d unique=%d maxSize=%d minSize=%d meanSizeKB=%.2f wssMB=%.1f",
		s.Name, s.TotalRequests, s.UniqueObjects, s.MaxObjectSize, s.MinObjectSize,
		s.MeanObjectSize/1024, float64(s.WorkingSetSize)/(1<<20))
}

// WriteCSV writes the trace in "time,key,size" lines.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", r.Time, r.Key, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "time,key,size" lines. Blank lines and lines starting
// with '#' are skipped.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineno, len(parts))
		}
		tm, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", lineno, err)
		}
		key, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad key: %w", lineno, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %w", lineno, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace: line %d: non-positive size %d", lineno, size)
		}
		t.Requests = append(t.Requests, cache.Request{Time: tm, Key: key, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// binaryMagic guards against decoding unrelated files.
var binaryMagic = [4]byte{'S', 'C', 'T', '1'}

// WriteBinary writes the trace in the compact varint format: a 4-byte
// magic, a varint record count, then per record varint-encoded time delta,
// key and size.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(t.Requests))); err != nil {
		return err
	}
	var prev int64
	for _, r := range t.Requests {
		if r.Time < prev {
			return fmt.Errorf("trace: non-monotonic time %d after %d", r.Time, prev)
		}
		if err := put(uint64(r.Time - prev)); err != nil {
			return err
		}
		prev = r.Time
		if err := put(r.Key); err != nil {
			return err
		}
		if err := put(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader, name string) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: bad magic (not a binary trace)")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: name, Requests: make([]cache.Request, 0, n)}
	var tm int64
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		key, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		tm += int64(dt)
		t.Requests = append(t.Requests, cache.Request{Time: tm, Key: key, Size: int64(size)})
	}
	return t, nil
}

// ParseBytes parses a human byte size: a plain integer or one with a
// KiB/MiB/GiB suffix ("512MiB", "64GiB").
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad byte size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("trace: negative byte size %q", s)
	}
	return v * mult, nil
}

// ReadLRB parses the whitespace-separated "timestamp id size [extra...]"
// format used by the open-source LRB simulator's public traces (e.g. the
// Wikipedia CDN trace), ignoring any extra feature columns.
func ReadLRB(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: want >= 3 fields, got %d", lineno, len(fields))
		}
		tm, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %w", lineno, err)
		}
		key, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id: %w", lineno, err)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %w", lineno, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace: line %d: non-positive size %d", lineno, size)
		}
		t.Requests = append(t.Requests, cache.Request{Time: tm, Key: key, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
