package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is used as-is,
// anything else defaults to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0..n-1) on at most workers goroutines and returns the
// results in index order. workers <= 0 defaults to GOMAXPROCS; workers ==
// 1 degenerates to a plain serial loop (no goroutines).
//
// On error the lowest-indexed error observed is returned; jobs that have
// not started when an error is recorded are skipped (their result is the
// zero value), so callers must not use the result slice when err != nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue // drain remaining indices without running them
				}
				v, err := fn(i)
				out[i], errs[i] = v, err
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Memo is a concurrency-safe memoizing map with singleflight semantics:
// concurrent callers of Do with the same key share a single execution of
// fn, and later callers get the memoised value without re-running it.
// Failed executions are not memoised. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Do returns the memoised value for key, computing it with fn if absent.
// If another goroutine is already computing key, Do blocks until that
// computation finishes and shares its result.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	if e, ok := m.m[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.v, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.m[key] = e
	m.mu.Unlock()

	e.v, e.err = fn()
	if e.err != nil {
		// Do not memoise failures: a later caller may retry.
		m.mu.Lock()
		delete(m.m, key)
		m.mu.Unlock()
	}
	close(e.done)
	return e.v, e.err
}

// Len returns the number of memoised keys (in-flight computations count).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Clear drops all memoised values. In-flight computations complete and
// deliver their value to current waiters but are not re-memoised.
func (m *Memo[K, V]) Clear() {
	m.mu.Lock()
	m.m = nil
	m.mu.Unlock()
}
