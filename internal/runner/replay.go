package runner

import (
	"sync"
	"sync/atomic"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/shard"
)

// ReplaySharded replays reqs against the sharded cache from `workers`
// goroutines, partitioning the trace BY SHARD (worker w owns the shards
// with index ≡ w mod workers), never by request index: every shard sees
// its request subsequence in exact trace order regardless of the worker
// count, so each per-shard policy makes identical decisions and the
// returned hit count is byte-identical across worker counts, batch sizes
// and shard.Cache modes. batch > 1 groups each shard's requests into
// batches of that size and issues them through AccessBatch, amortising
// one synchronisation round (lock acquisition or actor handoff) across
// the batch; batch <= 1 issues per-request Access calls. This is the
// replay loop Extension C and the scip-load scale matrix are built on.
func ReplaySharded(reqs []cache.Request, c *shard.Cache, workers, batch int) int64 {
	if workers < 1 {
		workers = 1
	}
	if workers > c.Shards() {
		workers = c.Shards()
	}
	shardOf := make([]int32, len(reqs))
	for i, r := range reqs {
		shardOf[i] = int32(c.ShardIndex(r.Key))
	}
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var h int64
			if batch <= 1 {
				for i, req := range reqs {
					if int(shardOf[i])%workers != w {
						continue
					}
					if c.Access(req) {
						h++
					}
				}
				hits.Add(h)
				return
			}
			// One pending batch per owned shard; a shard's batch is
			// flushed when full and once at the end, so its request
			// order is exactly its trace order.
			bufs := make([][]cache.Request, c.Shards())
			for s := w; s < c.Shards(); s += workers {
				bufs[s] = make([]cache.Request, 0, batch)
			}
			for i, req := range reqs {
				s := int(shardOf[i])
				if s%workers != w {
					continue
				}
				bufs[s] = append(bufs[s], req)
				if len(bufs[s]) == batch {
					h += int64(c.AccessBatch(s, bufs[s], nil))
					bufs[s] = bufs[s][:0]
				}
			}
			for s := w; s < c.Shards(); s += workers {
				if len(bufs[s]) > 0 {
					h += int64(c.AccessBatch(s, bufs[s], nil))
				}
			}
			hits.Add(h)
		}(w)
	}
	wg.Wait()
	return hits.Load()
}
