package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit count not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero should default to GOMAXPROCS")
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should default to GOMAXPROCS")
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty Map = (%v, %v)", got, err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i == 7 || i == 20 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if err.Error() != "job 7 failed" && workers > 1 {
			// Parallel runs may skip job 7 if 20 fails first, but the
			// returned error must still be the lowest-indexed one recorded.
			if err.Error() != "job 20 failed" {
				t.Fatalf("workers=%d: unexpected error %v", workers, err)
			}
		}
		if workers == 1 && err.Error() != "job 7 failed" {
			t.Fatalf("serial: error = %v, want job 7", err)
		}
	}
}

func TestMemoSingleflight(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	const goroutines = 16
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(start)
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", g, v)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d, want 1", m.Len())
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	var m Memo[int, string]
	boom := errors.New("boom")
	if _, err := m.Do(1, func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("failure memoised")
	}
	v, err := m.Do(1, func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry = (%q, %v)", v, err)
	}
}

func TestMemoClear(t *testing.T) {
	var m Memo[int, int]
	var calls int
	gen := func() (int, error) { calls++; return calls, nil }
	if v, _ := m.Do(1, gen); v != 1 {
		t.Fatal("first Do")
	}
	if v, _ := m.Do(1, gen); v != 1 {
		t.Fatal("not memoised")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear did not empty")
	}
	if v, _ := m.Do(1, gen); v != 2 {
		t.Fatal("Clear did not force regeneration")
	}
}
