// Package runner provides the concurrency substrate of the experiment
// harness: a bounded worker pool that evaluates independent jobs and
// returns their results in submission order, and a concurrency-safe
// memoizing map with singleflight semantics.
//
// The pool makes no fairness or scheduling promises beyond determinism of
// the *results*: jobs may execute in any order, but Map always returns the
// result slice indexed exactly as submitted, so callers that format output
// from the ordered slice produce byte-identical tables regardless of the
// worker count.
package runner
