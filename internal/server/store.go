package server

import "sync"

// bodyEntry is one stored object body on the store's intrusive LRU list.
type bodyEntry struct {
	key        uint64
	body       []byte
	prev, next *bodyEntry
}

// bodyStore is a byte-bounded LRU store for object bodies, one per
// shard. It is intentionally independent of the policy cache: the policy
// decides hit/miss (the accounting truth), the store merely keeps bytes
// around to serve. The two can disagree — a policy hit whose body was
// displaced triggers an origin refetch, and a displaced policy entry
// whose body survives is what serve-stale degradation serves — and both
// disagreements are counted, not hidden (see the scip_server_* metrics).
type bodyStore struct {
	mu       sync.Mutex
	capBytes int64
	used     int64                 //scip:guardedby mu
	m        map[uint64]*bodyEntry //scip:guardedby mu
	//scip:guardedby mu
	head, tail *bodyEntry // head = most recent
}

func newBodyStore(capBytes int64) *bodyStore {
	return &bodyStore{capBytes: capBytes, m: make(map[uint64]*bodyEntry)}
}

// get appends the stored body to dst (may be nil) and refreshes the
// entry's recency. The copy is deliberate: entry buffers are reused in
// place by put, so handing a caller store-owned memory would race with
// the next refresh of the same key. Callers pass a per-request arena
// buffer, making the steady-state copy allocation-free.
func (s *bodyStore) get(key uint64, dst []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	//scip:alloc-ok appends into the caller's arena buffer; growth amortises to the arena's high-water mark
	return append(dst, e.body...), true
}

// put stores a copy of body under key, displacing least-recently-used
// bodies while over capacity. Refreshing a resident key reuses the
// entry's buffer in place (no allocation once its capacity suffices),
// which is why body may be arena memory that the caller recycles after
// the request. Bodies larger than the store are not kept.
func (s *bodyStore) put(key uint64, body []byte) {
	n := int64(len(body))
	if n > s.capBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.used += n - int64(len(e.body))
		e.body = append(e.body[:0], body...)
		s.unlink(e)
		s.pushFront(e)
	} else {
		e := &bodyEntry{key: key, body: append([]byte(nil), body...)} //scip:alloc-ok first insert of a key allocates its entry; refreshes reuse the buffer in place
		s.m[key] = e
		s.pushFront(e)
		s.used += n
	}
	for s.used > s.capBytes && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		s.used -= int64(len(victim.body))
	}
}

// delete removes key's body and reports whether one was stored.
func (s *bodyStore) delete(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return false
	}
	s.unlink(e)
	delete(s.m, key)
	s.used -= int64(len(e.body))
	return true
}

//scip:locked mu
func (s *bodyStore) pushFront(e *bodyEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

//scip:locked mu
func (s *bodyStore) unlink(e *bodyEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
