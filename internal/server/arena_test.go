package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullWriter is a reusable ResponseWriter with a persistent header map:
// the steady-state stand-in for a kept-alive connection, which net/http
// also serves with a long-lived response object. It lets the allocs
// tests measure the daemon's own serving path without the per-connection
// machinery of a real listener.
type nullWriter struct {
	h      http.Header
	status int
	wrote  int64
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) Write(p []byte) (int, error) {
	w.wrote += int64(len(p))
	return len(p), nil
}
func (w *nullWriter) WriteHeader(code int) { w.status = code }

// replayBody is a rewindable request body so one PUT request can be
// replayed without allocating a fresh reader per iteration.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
func (b *replayBody) Close() error { return nil }

// TestServeAllocs pins the arena'd serving path: once warm, a GET hit
// and a PUT refresh perform zero heap allocations per request — the
// pooled reqScope replaces the per-request status recorder, parseQuery
// replaces r.URL.Query(), setHeader reuses header slices, numeric header
// values format into the arena, and the body store copies through arena
// buffers instead of allocating. Measured through s.instrument (the real
// wrapper) on both the SCIP and LRU policies; the request itself is
// routed directly to the handler because ServeMux clones the request to
// attach path values, an allocation outside the daemon's control.
func TestServeAllocs(t *testing.T) {
	for _, policy := range []string{"SCIP", "LRU"} {
		t.Run(policy, func(t *testing.T) {
			s := newTestServer(t, func(c *Config) { c.Policy = policy })

			get := s.instrument(http.HandlerFunc(s.handleGet))
			greq := httptest.NewRequest("GET", "/obj/42?size=1000&t=7", nil)
			greq.SetPathValue("key", "42")
			w := &nullWriter{h: make(http.Header)}
			for i := 0; i < 3; i++ { // miss + warm the pool, slices, buffers
				get.ServeHTTP(w, greq)
			}
			if w.status != http.StatusOK || w.h.Get("X-Cache") != "HIT" {
				t.Fatalf("warmup: status %d, X-Cache %q", w.status, w.h.Get("X-Cache"))
			}
			if allocs := testing.AllocsPerRun(200, func() {
				get.ServeHTTP(w, greq)
			}); allocs != 0 {
				t.Errorf("GET hit: %.1f allocs/op, want 0", allocs)
			}
			if w.h.Get("X-Object-Size") != "1000" || w.h.Get("Content-Length") != "1000" {
				t.Fatalf("arena headers corrupted: size %q length %q",
					w.h.Get("X-Object-Size"), w.h.Get("Content-Length"))
			}

			put := s.instrument(http.HandlerFunc(s.handlePut))
			body := &replayBody{data: bytes.Repeat([]byte{0xAB}, 512)}
			preq := httptest.NewRequest("PUT", "/obj/43?size=512&t=7", nil)
			preq.SetPathValue("key", "43")
			preq.Body = body
			for i := 0; i < 3; i++ {
				body.off = 0
				put.ServeHTTP(w, preq)
			}
			if w.status != http.StatusNoContent || w.h.Get("X-Cache") != "HIT" {
				t.Fatalf("warmup: status %d, X-Cache %q", w.status, w.h.Get("X-Cache"))
			}
			if allocs := testing.AllocsPerRun(200, func() {
				body.off = 0
				put.ServeHTTP(w, preq)
			}); allocs != 0 {
				t.Errorf("PUT refresh: %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestParseQuery checks the manual scanner against the r.URL.Query()
// behaviour it replaced.
func TestParseQuery(t *testing.T) {
	cases := []struct {
		raw     string
		size, t int64
		bad     bool
	}{
		{"", -1, -1, false},
		{"size=100", 100, -1, false},
		{"t=5", -1, 5, false},
		{"size=100&t=5", 100, 5, false},
		{"t=5&size=100", 100, 5, false},
		{"t=0", -1, 0, false},
		{"other=zz&size=7", 7, -1, false},
		{"size=", -1, -1, false}, // empty value = absent, like Query().Get
		{"t=", -1, -1, false},
		{"size", -1, -1, false}, // no '=': ignored
		{"size=0", 0, 0, true},
		{"size=-3", 0, 0, true},
		{"size=abc", 0, 0, true},
		{"t=abc", 0, 0, true},
	}
	for _, c := range cases {
		size, tt, err := parseQuery(c.raw)
		if c.bad {
			if err == nil {
				t.Errorf("parseQuery(%q): want error, got size=%d t=%d", c.raw, size, tt)
			}
			continue
		}
		if err != nil || size != c.size || tt != c.t {
			t.Errorf("parseQuery(%q) = (%d, %d, %v), want (%d, %d, nil)",
				c.raw, size, tt, err, c.size, c.t)
		}
	}
}

// TestSetHeaderReuse: setHeader must mutate an existing one-element slice
// in place and produce values http.Header.Get understands.
func TestSetHeaderReuse(t *testing.T) {
	h := make(http.Header)
	setHeader(h, "X-Cache", "MISS")
	first := h["X-Cache"]
	setHeader(h, "X-Cache", "HIT")
	if got := h.Get("X-Cache"); got != "HIT" {
		t.Fatalf("X-Cache = %q, want HIT", got)
	}
	if &first[0] != &h["X-Cache"][0] {
		t.Fatal("setHeader did not reuse the existing slice")
	}
}

// TestBodyStoreCopies: the store must not retain caller memory (put
// copies in) and must not leak entry memory (get copies out), so arena
// reuse by the serving path cannot corrupt stored bodies.
func TestBodyStoreCopies(t *testing.T) {
	st := newBodyStore(1 << 16)
	src := []byte("hello world")
	st.put(7, src)
	src[0] = 'X' // caller recycles its buffer
	got, ok := st.get(7, nil)
	if !ok || string(got) != "hello world" {
		t.Fatalf("stored body = %q, want %q", got, "hello world")
	}
	got[0] = 'Y' // reader scribbles on its copy
	again, _ := st.get(7, nil)
	if string(again) != "hello world" {
		t.Fatalf("entry mutated through get result: %q", again)
	}
	// Refreshing a resident key reuses the entry buffer in place.
	st.put(7, []byte("hello again"))
	refreshed, _ := st.get(7, nil)
	if string(refreshed) != "hello again" {
		t.Fatalf("refresh = %q", refreshed)
	}
}
