package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unsafe"
)

// reqScope is the per-request arena (ROADMAP item 3, reqcache-style): one
// pooled object carrying everything a request needs to allocate — the
// status capture the response-class counters read, a scratch buffer for
// numeric header values, and a byte buffer for request/response bodies.
// instrument checks one out per request and returns it after the handler
// finishes, so the steady-state serving path performs zero heap
// allocations per request (pinned by TestServeAllocs).
//
// Lifetime rule for itoa strings: they alias scratch, which is reused as
// soon as the scope returns to the pool — immediately after the handler
// returns. net/http serialises headers during the FIRST body write, so
// arena strings are safe in headers only on paths that write a body
// before returning (serveBody does). Bodyless responses (204s) serialise
// headers after the handler returns and must use only constant or
// precomputed strings.
type reqScope struct {
	w       http.ResponseWriter
	status  int
	scratch []byte // itoa arena, reset per request
	body    []byte // request-body read buffer / response-body copy buffer
}

var scopePool = sync.Pool{New: func() any {
	return &reqScope{scratch: make([]byte, 0, 64), body: make([]byte, 0, 4096)}
}}

// reset readies a pooled scope for the next request.
func (sc *reqScope) reset(w http.ResponseWriter) {
	sc.w = w
	sc.status = http.StatusOK
	sc.scratch = sc.scratch[:0]
}

func (sc *reqScope) Header() http.Header         { return sc.w.Header() }
func (sc *reqScope) Write(p []byte) (int, error) { return sc.w.Write(p) }

func (sc *reqScope) WriteHeader(code int) {
	sc.status = code
	sc.w.WriteHeader(code)
}

// scopeOf recovers the request's arena from the ResponseWriter the
// instrument wrapper installed. Handlers invoked without the wrapper
// (direct tests) get nil and fall back to allocating paths.
func scopeOf(w http.ResponseWriter) *reqScope {
	sc, _ := w.(*reqScope)
	return sc
}

// itoa formats v into the scope's scratch arena and returns a string
// aliasing it — valid only until the scope is reused, see the lifetime
// rule on reqScope. A nil scope falls back to an allocating FormatInt.
func (sc *reqScope) itoa(v int64) string {
	if sc == nil {
		return strconv.FormatInt(v, 10) //scip:alloc-ok nil-scope fallback for writers without an arena (direct handler tests)
	}
	n := len(sc.scratch)
	sc.scratch = strconv.AppendInt(sc.scratch, v, 10)
	out := sc.scratch[n:]
	//scip:arena-ok itoa is the arena-string constructor; arenalife tracks its callers instead
	return unsafe.String(&out[0], len(out))
}

var errBodyTooLarge = errors.New("request body exceeds MaxBodyBytes")

// readBody reads r's body into the scope's reusable buffer, rejecting
// bodies over max. The returned slice is arena memory: it is overwritten
// on scope reuse, so anything that outlives the request (the body store)
// must copy it. A nil scope reads through an allocating MaxBytesReader.
func (sc *reqScope) readBody(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	if sc == nil {
		return io.ReadAll(http.MaxBytesReader(w, r.Body, max)) //scip:alloc-ok nil-scope fallback for writers without an arena (direct handler tests)
	}
	buf := sc.body[:0]
	for {
		if int64(len(buf)) > max {
			sc.body = buf
			return nil, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.body = buf
			if int64(len(buf)) > max {
				return nil, errBodyTooLarge
			}
			return buf, nil
		}
		if err != nil {
			sc.body = buf
			return nil, err
		}
	}
}

// setHeader sets key to the single value without allocating once the
// header already holds a one-element slice for key (the steady state with
// a persistent connection or reusable recorder): http.Header.Set always
// allocates a fresh []string. key must already be in canonical form.
func setHeader(h http.Header, key, value string) {
	if v := h[key]; len(v) == 1 {
		v[0] = value
		return
	}
	h[key] = []string{value} //scip:alloc-ok first response on a connection allocates the header slot; the in-place reuse above is the steady state
}

// parseQuery extracts the size and t parameters from a raw query string
// without the per-request map and slice allocations of r.URL.Query().
// The daemon's parameters are plain integers, so percent-decoding is
// deliberately not applied; unknown parameters are ignored and empty
// values are treated as absent, matching Query().Get. Absent values
// return -1.
func parseQuery(raw string) (size, t int64, err error) {
	size, t = -1, -1
	for len(raw) > 0 {
		kv := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		k, v := kv[:eq], kv[eq+1:]
		if v == "" {
			continue
		}
		switch k {
		case "size":
			size, err = strconv.ParseInt(v, 10, 64)
			if err != nil || size <= 0 {
				return 0, 0, badParamError{"size", v} //scip:alloc-ok bad-request path: the error boxes only on malformed input
			}
		case "t":
			t, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, 0, badParamError{"t", v} //scip:alloc-ok bad-request path: the error boxes only on malformed input
			}
		}
	}
	return size, t, nil
}

// badParamError defers the fmt-style message build to the error path so
// the happy path never touches fmt.
type badParamError struct{ param, value string }

func (e badParamError) Error() string { return "bad " + e.param + " " + strconv.Quote(e.value) }
