package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer builds a small LRU-backed server with overrides applied.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Policy:        "LRU",
		CacheBytes:    1 << 20,
		Shards:        4,
		Seed:          1,
		OriginBackoff: time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doReq(t *testing.T, h http.Handler, method, target string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestGetMissThenHit(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	rec := doReq(t, h, "GET", "/obj/42?size=1000", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first access X-Cache = %q, want MISS", got)
	}
	if got := rec.Header().Get("X-Object-Size"); got != "1000" {
		t.Fatalf("X-Object-Size = %q, want 1000", got)
	}
	body1 := rec.Body.String()
	if len(body1) != 1000 {
		t.Fatalf("body length = %d, want 1000", len(body1))
	}

	rec = doReq(t, h, "GET", "/obj/42?size=1000", nil)
	if got := rec.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second access X-Cache = %q, want HIT", got)
	}
	if rec.Body.String() != body1 {
		t.Fatal("hit body differs from miss body")
	}

	snap := s.Stats().Snapshot()
	tot := snap.Totals()
	if tot.Requests != 2 || tot.Hits != 1 {
		t.Fatalf("requests/hits = %d/%d, want 2/1", tot.Requests, tot.Hits)
	}
	if tot.BytesRequested != 2000 || tot.BytesHit != 1000 {
		t.Fatalf("bytes requested/hit = %d/%d, want 2000/1000", tot.BytesRequested, tot.BytesHit)
	}
}

func TestGetWithoutSizeUsesOriginSize(t *testing.T) {
	s := newTestServer(t, nil)
	rec := doReq(t, s.Handler(), "GET", "/obj/7", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	want := syntheticSize(7)
	if got := rec.Header().Get("X-Object-Size"); got != fmt.Sprint(want) {
		t.Fatalf("X-Object-Size = %q, want %d", got, want)
	}
	if got := s.Stats().Snapshot().Totals().BytesRequested; got != want {
		t.Fatalf("accounted bytes = %d, want %d", got, want)
	}
}

func TestGetBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	for _, target := range []string{"/obj/notakey", "/obj/5?size=0", "/obj/5?size=-3", "/obj/5?t=x"} {
		if rec := doReq(t, h, "GET", target, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", target, rec.Code)
		}
	}
	if got := s.Stats().Snapshot().Totals().Requests; got != 0 {
		t.Fatalf("bad requests reached the cache: %d accesses", got)
	}
}

func TestPutThenGetAndDelete(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	rec := doReq(t, h, "PUT", "/obj/9", strings.NewReader("hello body"))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("PUT status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("PUT X-Cache = %q, want MISS", got)
	}

	rec = doReq(t, h, "GET", "/obj/9?size=10", nil)
	if got := rec.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("GET after PUT X-Cache = %q, want HIT", got)
	}
	if rec.Body.String() != "hello body" {
		t.Fatalf("GET body = %q, want the PUT body", rec.Body.String())
	}

	if rec = doReq(t, h, "DELETE", "/obj/9", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", rec.Code)
	}
	if rec = doReq(t, h, "DELETE", "/obj/9", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d, want 404", rec.Code)
	}
	rec = doReq(t, h, "GET", "/obj/9?size=10", nil)
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("GET after DELETE X-Cache = %q, want MISS", got)
	}
}

// TestDeleteAcrossPolicies runs the full invalidation round trip —
// PUT, GET hit, DELETE 204, GET miss, second DELETE 404 — over every
// policy family that implements cache.Remover, including a composable
// scorer pipeline in both placement and filter modes. Before the
// admission policies grew Remove, DELETE on them answered 501.
func TestDeleteAcrossPolicies(t *testing.T) {
	for _, policy := range []string{
		"SCIP", "2Q", "TinyLFU", "AdaptSize",
		"scorer:zro=0.5,size=0.5",
		"scorer:size=1,mode=filter,theta=0.9,c=1048576",
	} {
		t.Run(policy, func(t *testing.T) {
			s := newTestServer(t, func(cfg *Config) { cfg.Policy = policy; cfg.CacheBytes = 1 << 22 })
			h := s.Handler()
			if rec := doReq(t, h, "PUT", "/obj/9", strings.NewReader("hello body")); rec.Code != http.StatusNoContent {
				t.Fatalf("PUT status = %d", rec.Code)
			}
			if rec := doReq(t, h, "GET", "/obj/9?size=10", nil); rec.Header().Get("X-Cache") != "HIT" {
				t.Fatalf("GET after PUT X-Cache = %q, want HIT", rec.Header().Get("X-Cache"))
			}
			if rec := doReq(t, h, "DELETE", "/obj/9", nil); rec.Code != http.StatusNoContent {
				t.Fatalf("DELETE status = %d, want 204", rec.Code)
			}
			if rec := doReq(t, h, "DELETE", "/obj/9", nil); rec.Code != http.StatusNotFound {
				t.Fatalf("second DELETE status = %d, want 404", rec.Code)
			}
			if rec := doReq(t, h, "GET", "/obj/9?size=10", nil); rec.Header().Get("X-Cache") != "MISS" {
				t.Fatalf("GET after DELETE X-Cache = %q, want MISS", rec.Header().Get("X-Cache"))
			}
		})
	}
}

func TestDeleteUnsupportedPolicy(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) { cfg.Policy = "LRB"; cfg.CacheBytes = 1 << 22 })
	h := s.Handler()
	doReq(t, h, "GET", "/obj/3?size=100", nil)
	if rec := doReq(t, h, "DELETE", "/obj/3", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("DELETE on LRB = %d, want 501", rec.Code)
	}
}

func TestPutEmptyRejected(t *testing.T) {
	s := newTestServer(t, nil)
	if rec := doReq(t, s.Handler(), "PUT", "/obj/4", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty PUT = %d, want 400", rec.Code)
	}
}

// countingOrigin wraps an Origin and counts Fetch calls; with fail set it
// errors every time.
type countingOrigin struct {
	inner   Origin
	calls   atomic.Int64
	failing atomic.Bool
	block   chan struct{} // when non-nil, Fetch waits for a receive
}

func (o *countingOrigin) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	o.calls.Add(1)
	if o.block != nil {
		select {
		case o.block <- struct{}{}:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	if o.failing.Load() {
		return nil, 0, errors.New("origin down")
	}
	return o.inner.Fetch(ctx, key, size)
}

// TestCoalescing: concurrent GET misses on one key share a single origin
// fetch.
func TestCoalescing(t *testing.T) {
	origin := &countingOrigin{inner: &SyntheticOrigin{Latency: 20 * time.Millisecond}}
	s := newTestServer(t, func(cfg *Config) { cfg.Origin = origin })
	h := s.Handler()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doReq(t, h, "GET", "/obj/1?size=512", nil).Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	// Every request Accessed the cache exactly once...
	if got := s.Stats().Snapshot().Totals().Requests; got != n {
		t.Fatalf("cache accesses = %d, want %d", got, n)
	}
	// ...but misses overlapping the first flight joined it instead of
	// fetching; with 20ms origin latency at least some overlap is
	// guaranteed, and the origin must never see all n.
	if calls := origin.calls.Load(); calls >= n {
		t.Fatalf("origin saw %d fetches for %d concurrent requests; coalescing is not working", calls, n)
	}
	if s.coalescedWaits.Load() == 0 {
		t.Fatal("no request was recorded as coalesced")
	}
}

// TestOriginRetryThenSuccess: transient origin failures are retried with
// backoff and the request still succeeds.
func TestOriginRetryThenSuccess(t *testing.T) {
	origin := &countingOrigin{inner: &SyntheticOrigin{}}
	origin.failing.Store(true)
	s := newTestServer(t, func(cfg *Config) {
		cfg.Origin = origin
		cfg.OriginRetries = 3
	})
	// Heal the origin after the second attempt.
	go func() {
		for origin.calls.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		origin.failing.Store(false)
	}()
	rec := doReq(t, s.Handler(), "GET", "/obj/11?size=100", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	if s.originRetries.Load() == 0 {
		t.Fatal("no retry was recorded")
	}
	if s.originErrors.Load() == 0 {
		t.Fatal("no origin error was recorded")
	}
}

// TestOriginDown502: with retries exhausted and no stale body the GET is
// a 502 — and the policy access still happened (accounting is decoupled
// from serving).
func TestOriginDown502(t *testing.T) {
	origin := &countingOrigin{inner: &SyntheticOrigin{}}
	origin.failing.Store(true)
	s := newTestServer(t, func(cfg *Config) {
		cfg.Origin = origin
		cfg.OriginRetries = 1
	})
	rec := doReq(t, s.Handler(), "GET", "/obj/12?size=100", nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", rec.Code)
	}
	if calls := origin.calls.Load(); calls != 2 {
		t.Fatalf("origin attempts = %d, want 2 (1 + 1 retry)", calls)
	}
	if got := s.Stats().Snapshot().Totals().Requests; got != 1 {
		t.Fatalf("cache accesses = %d, want 1", got)
	}
}

// TestServeStale: after a successful fetch stored the body, an origin
// outage serves the stale copy instead of a 502.
func TestServeStale(t *testing.T) {
	origin := &countingOrigin{inner: &SyntheticOrigin{}}
	s := newTestServer(t, func(cfg *Config) {
		cfg.Origin = origin
		cfg.ServeStale = true
		cfg.OriginRetries = 0
	})
	h := s.Handler()

	rec := doReq(t, h, "GET", "/obj/20?size=1500", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm fetch status = %d", rec.Code)
	}
	warmBody := rec.Body.String()

	origin.failing.Store(true)
	// Invalidate key 20 from the policy only (the body store keeps its
	// copy) so the next GET is a genuine policy miss with a stored body —
	// the exact state serve-stale degradation is for.
	if removed, supported := s.Cache().Remove(20); !supported || !removed {
		t.Fatal("setup: could not invalidate key 20 from the policy")
	}
	rec = doReq(t, h, "GET", "/obj/20?size=1500", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale serve status = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("X-Cache"); got != "STALE" {
		t.Fatalf("X-Cache = %q, want STALE", got)
	}
	if rec.Body.String() != warmBody {
		t.Fatal("stale body differs from the stored body")
	}
	if s.staleServes.Load() != 1 {
		t.Fatalf("staleServes = %d, want 1", s.staleServes.Load())
	}
}

func TestHealthzStatusz(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	if rec := doReq(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	doReq(t, h, "GET", "/obj/1?size=100", nil)
	rec := doReq(t, h, "GET", "/statusz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz = %d", rec.Code)
	}
	for _, want := range []string{"scip-serve: LRU-x4", "requests:   1", "capacity:", "origin:"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("statusz missing %q:\n%s", want, rec.Body.String())
		}
	}
}

// TestGracefulShutdownDrains: cancelling the serve context lets an
// in-flight request (blocked on a slow origin) finish before Serve
// returns, while new connections are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.Origin = &SyntheticOrigin{Latency: 300 * time.Millisecond}
	})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ListenAndServe(ctx, "127.0.0.1:0", 5*time.Second, ready)
	}()
	addr := (<-ready).String()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/obj/77?size=100")
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()

	// Give the request time to reach the handler, then initiate shutdown
	// while it is still blocked on the slow origin.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case code := <-reqDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}
