package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// hangOrigin blocks every fetch until its context is cancelled — the
// "dead peer" (or dead origin) that the bounded-backoff budget exists to
// contain.
type hangOrigin struct {
	calls atomic.Int64
}

func (h *hangOrigin) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	h.calls.Add(1)
	<-ctx.Done()
	return nil, 0, ctx.Err()
}

// fixedPeer answers every fetch with a fixed body, standing in for a
// fleet peer that holds the object.
type fixedPeer struct {
	body  []byte
	calls atomic.Int64
}

func (p *fixedPeer) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	p.calls.Add(1)
	return p.body, size, nil
}

func newPeerTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 1 << 20
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Origin == nil {
		cfg.Origin = &SyntheticOrigin{MaxBody: 64}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestDeadPeerCannotStallRequest is the regression test named in
// retry.go: a peer tier that hangs forever must not hold a request past
// the peer retryPolicy's worst-case budget — each attempt is cut off by
// the per-attempt timeout and the request falls through to the origin.
func TestDeadPeerCannotStallRequest(t *testing.T) {
	dead := &hangOrigin{}
	cfg := Config{
		PeerFill:    dead,
		PeerTimeout: 50 * time.Millisecond,
		PeerRetries: 1,
		PeerBackoff: 10 * time.Millisecond,
	}
	s := newPeerTestServer(t, cfg)
	h := s.Handler()

	pol := retryPolicy{timeout: s.cfg.PeerTimeout, retries: s.cfg.PeerRetries, backoff: s.cfg.PeerBackoff}
	limit := pol.budget() + 500*time.Millisecond // generous scheduling slack

	start := time.Now()
	rec := get(t, h, "/obj/42?size=100")
	elapsed := time.Since(start)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via origin fallthrough", rec.Code)
	}
	if rec.Header().Get("X-Fill") == "peer" {
		t.Error("response claims a peer fill from a dead peer")
	}
	if elapsed > limit {
		t.Errorf("request took %v, budget is %v (+slack)", elapsed, pol.budget())
	}
	if got := dead.calls.Load(); got != int64(cfg.PeerRetries)+1 {
		t.Errorf("dead peer asked %d times, want %d", got, cfg.PeerRetries+1)
	}
	if s.peerErrors.Load() == 0 {
		t.Error("peer errors not counted")
	}
	if s.peerFills.Load() != 0 {
		t.Error("peer fill counted despite a dead peer")
	}
}

// TestRetryPolicyBudget pins the budget arithmetic the stall test leans
// on: every attempt's timeout plus every doubling backoff.
func TestRetryPolicyBudget(t *testing.T) {
	pol := retryPolicy{timeout: 100 * time.Millisecond, retries: 2, backoff: 10 * time.Millisecond}
	// 3 attempts x 100ms + 10ms + 20ms backoffs.
	if got, want := pol.budget(), 330*time.Millisecond; got != want {
		t.Errorf("budget() = %v, want %v", got, want)
	}
	if got := (retryPolicy{timeout: time.Second}).budget(); got != time.Second {
		t.Errorf("no-retry budget = %v, want 1s", got)
	}
}

// TestPeerFillServesAndCounts pins the happy path: a declared-size miss
// is filled from the peer tier, marked X-Fill: peer, and counted; the
// origin is never asked.
func TestPeerFillServesAndCounts(t *testing.T) {
	peer := &fixedPeer{body: []byte("peer-body")}
	origin := &hangOrigin{} // must never be consulted
	s := newPeerTestServer(t, Config{PeerFill: peer, Origin: origin})
	h := s.Handler()

	rec := get(t, h, "/obj/7?size=9")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("X-Fill") != "peer" {
		t.Error("peer-filled response not marked X-Fill: peer")
	}
	if rec.Body.String() != "peer-body" {
		t.Errorf("body %q", rec.Body.String())
	}
	if origin.calls.Load() != 0 {
		t.Error("origin consulted although the peer held the body")
	}
	if s.peerFills.Load() != 1 {
		t.Errorf("peer_fills = %d, want 1", s.peerFills.Load())
	}

	// A later hit serves from the body store — no further peer calls.
	before := peer.calls.Load()
	rec = get(t, h, "/obj/7?size=9")
	if rec.Header().Get("X-Cache") != "HIT" {
		t.Errorf("second GET X-Cache = %q, want HIT", rec.Header().Get("X-Cache"))
	}
	if peer.calls.Load() != before {
		t.Error("hit consulted the peer tier")
	}
}

// TestPeerFillSkipsUnknownSize pins the accounting guard: a request
// with no declared size must bypass the peer tier entirely (the origin
// is the size authority).
func TestPeerFillSkipsUnknownSize(t *testing.T) {
	peer := &fixedPeer{body: []byte("wrong")}
	s := newPeerTestServer(t, Config{PeerFill: peer})
	h := s.Handler()

	rec := get(t, h, "/obj/9")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if peer.calls.Load() != 0 {
		t.Error("unknown-size request consulted the peer tier")
	}
	if rec.Header().Get("X-Fill") == "peer" {
		t.Error("unknown-size response marked as a peer fill")
	}
}

// TestPeerEndpointInvisibleToPolicy pins the /peer/{key} contract: it
// serves only what the body store holds, 404s otherwise, and moves no
// policy counter either way.
func TestPeerEndpointInvisibleToPolicy(t *testing.T) {
	s := newPeerTestServer(t, Config{})
	h := s.Handler()

	if rec := get(t, h, "/peer/5"); rec.Code != http.StatusNotFound {
		t.Fatalf("cold /peer GET: status %d, want 404", rec.Code)
	}
	if s.peerMisses.Load() != 1 {
		t.Errorf("peer_misses = %d, want 1", s.peerMisses.Load())
	}

	// Warm the body store through the public path, then snapshot.
	if rec := get(t, h, "/obj/5?size=20"); rec.Code != http.StatusOK {
		t.Fatalf("warming GET: status %d", rec.Code)
	}
	before := s.Stats().Snapshot()

	rec := get(t, h, "/peer/5")
	if rec.Code != http.StatusOK {
		t.Fatalf("warm /peer GET: status %d", rec.Code)
	}
	if rec.Header().Get("X-Cache") != "PEER" {
		t.Errorf("X-Cache = %q, want PEER", rec.Header().Get("X-Cache"))
	}
	if s.peerServes.Load() != 1 {
		t.Errorf("peer_serves = %d, want 1", s.peerServes.Load())
	}

	after := s.Stats().Snapshot()
	for i := range after.Shards {
		if before.Shards[i] != after.Shards[i] {
			t.Errorf("peer GET moved policy counters on shard %d:\n  before %+v\n  after  %+v",
				i, before.Shards[i], after.Shards[i])
		}
	}

	if rec := get(t, h, "/peer/nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad key: status %d, want 400", rec.Code)
	}
}

// TestPeerMetricsExposed pins that the six scip_server_peer_* families
// appear in /metrics and statusz reports the peer-fill state.
func TestPeerMetricsExposed(t *testing.T) {
	s := newPeerTestServer(t, Config{PeerFill: &fixedPeer{body: []byte("x")}})
	h := s.Handler()
	get(t, h, "/obj/3?size=1")

	body := get(t, h, "/metrics").Body.String()
	for _, family := range []string{
		"scip_server_peer_fetches_total", "scip_server_peer_errors_total",
		"scip_server_peer_retries_total", "scip_server_peer_fills_total",
		"scip_server_peer_serves_total", "scip_server_peer_misses_total",
	} {
		if !strings.Contains(body, "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(body, "scip_server_peer_fills_total 1") {
		t.Error("/metrics does not report the peer fill")
	}

	statusz := get(t, h, "/statusz").Body.String()
	if !strings.Contains(statusz, "peer-fill on") {
		t.Errorf("/statusz does not report peer-fill on:\n%s", statusz)
	}
	off := newPeerTestServer(t, Config{})
	if sz := get(t, off.Handler(), "/statusz").Body.String(); !strings.Contains(sz, "peer-fill off") {
		t.Errorf("/statusz does not report peer-fill off:\n%s", sz)
	}
}
