package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/scip-cache/scip/internal/cache"
	"github.com/scip-cache/scip/internal/shard"
	"github.com/scip-cache/scip/internal/stats"
)

// Config configures a Server. The zero value is not usable: CacheBytes
// is required; everything else has a sensible default (see New).
type Config struct {
	// Policy selects the sharded cache policy: SCIP, SCI, LRU or LRB
	// (default SCIP).
	Policy string
	// CacheBytes is the total byte capacity, split exactly across
	// shards. Required.
	CacheBytes int64
	// Shards is the shard count, rounded up to a power of two
	// (default 8).
	Shards int
	// Seed seeds the per-shard policies (shard i gets Seed+i).
	Seed int64
	// Mode selects the shard concurrency mode (DESIGN.md §10): the
	// default shard.ModeMutex, or shard.ModeActor for a goroutine per
	// shard. Counters and decisions are identical in both.
	Mode shard.Mode
	// ActorDepth bounds each actor's mailbox in ModeActor (0 = shard
	// package default).
	ActorDepth int
	// NoLatency disables the per-request latency histogram, removing the
	// serving path's only two clock reads; /statusz and /metrics then
	// report zero latency.
	NoLatency bool

	// Origin supplies object bodies on a miss (default: a zero-latency
	// SyntheticOrigin).
	Origin Origin
	// OriginTimeout bounds each origin fetch attempt (default 2s;
	// negative disables the per-attempt timeout).
	OriginTimeout time.Duration
	// OriginRetries is the number of retry attempts after a failed
	// fetch (default 2, so up to 3 attempts; negative means none).
	OriginRetries int
	// OriginBackoff is the delay before the first retry, doubling per
	// attempt (default 50ms).
	OriginBackoff time.Duration
	// ServeStale serves a previously stored body (marked X-Cache: STALE)
	// when every origin attempt fails, instead of a 502.
	ServeStale bool

	// PeerFill, when non-nil, is consulted before Origin on every miss
	// whose request declares a size: a fleet node (see internal/cluster
	// and the scip-serve -peers flag) fetches the body from the ring's
	// next replica and only falls through to the origin when no peer
	// holds it. Peer fetches go through the same bounded-backoff
	// implementation as origin fetches, under the Peer* budget below.
	// Unknown-size requests skip the peer tier: the origin is the size
	// authority, and accounting with a peer's body length instead would
	// perturb the policy decision stream.
	PeerFill Origin
	// PeerTimeout bounds each peer fetch attempt (default 500ms;
	// negative disables the per-attempt timeout).
	PeerTimeout time.Duration
	// PeerRetries is the number of peer retry attempts after a failure
	// (default 0 — peers are an optimisation, not a dependency).
	PeerRetries int
	// PeerBackoff is the delay before the first peer retry, doubling
	// per attempt (default 25ms).
	PeerBackoff time.Duration

	// MaxBodyBytes caps stored and accepted body lengths (default
	// 1 MiB). Accounting always uses the declared object size.
	MaxBodyBytes int64
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.Policy == "" {
		cfg.Policy = "SCIP"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Origin == nil {
		cfg.Origin = &SyntheticOrigin{}
	}
	if cfg.OriginTimeout == 0 {
		cfg.OriginTimeout = 2 * time.Second
	}
	if cfg.OriginRetries == 0 {
		cfg.OriginRetries = 2
	}
	if cfg.OriginRetries < 0 {
		cfg.OriginRetries = 0
	}
	if cfg.OriginBackoff <= 0 {
		cfg.OriginBackoff = 50 * time.Millisecond
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 500 * time.Millisecond
	}
	if cfg.PeerRetries < 0 {
		cfg.PeerRetries = 0
	}
	if cfg.PeerBackoff <= 0 {
		cfg.PeerBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	return cfg
}

// Server is the scip-serve daemon: the sharded cache, its stats block,
// the per-shard body stores and flight groups, and the serving-path
// counters exported at /metrics.
type Server struct {
	cfg     Config
	cache   *shard.Cache
	st      *stats.Stats
	flights []flightGroup
	bodies  []*bodyStore
	// clock assigns logical timestamps to requests that carry no t
	// parameter; policies only rely on per-shard ordering, which a
	// global counter preserves.
	clock atomic.Int64
	start time.Time
	// shardStr[i] is strconv.Itoa(i), precomputed so the X-Cache-Shard
	// header never formats on the serving path.
	shardStr []string

	// Serving-path counters (see OPERATIONS.md for the catalogue).
	inflight         atomic.Int64
	originFetches    atomic.Int64
	originErrors     atomic.Int64
	originRetries    atomic.Int64
	coalescedWaits   atomic.Int64
	staleServes      atomic.Int64
	bodyRefetches    atomic.Int64
	peerFetches      atomic.Int64
	peerErrors       atomic.Int64
	peerRetries      atomic.Int64
	peerFills        atomic.Int64
	peerServes       atomic.Int64
	peerMisses       atomic.Int64
	responsesByClass [6]atomic.Int64 // index = status/100
}

// New validates cfg, builds the sharded cache with stats attached and
// returns a ready Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheBytes <= 0 {
		return nil, fmt.Errorf("server: CacheBytes must be positive, got %d", cfg.CacheBytes)
	}
	opts := []shard.Option{shard.WithMode(cfg.Mode)}
	if cfg.ActorDepth > 0 {
		opts = append(opts, shard.WithActorDepth(cfg.ActorDepth))
	}
	c, err := BuildSharded(cfg.Policy, cfg.CacheBytes, cfg.Shards, cfg.Seed, opts...)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		cache:   c,
		st:      c.EnableStats(),
		flights: make([]flightGroup, c.Shards()),
		bodies:  make([]*bodyStore, c.Shards()),
		start:   time.Now(), //scip:wallclock-ok uptime metadata for /metrics and /statusz, never a cache decision
	}
	// Mirror shard.New's exact byte split so each shard's body store is
	// bounded by its shard's policy capacity.
	base := cfg.CacheBytes / int64(c.Shards())
	rem := cfg.CacheBytes % int64(c.Shards())
	for i := range s.bodies {
		per := base
		if int64(i) < rem {
			per++
		}
		s.bodies[i] = newBodyStore(per)
	}
	s.shardStr = make([]string, c.Shards())
	for i := range s.shardStr {
		s.shardStr[i] = strconv.Itoa(i)
	}
	return s, nil
}

// Close stops the cache's actor goroutines (a no-op in ModeMutex). The
// control plane — /metrics, /statusz, Remove — keeps working afterwards,
// but object requests must have drained first.
func (s *Server) Close() { s.cache.Close() }

// Cache returns the sharded cache front.
func (s *Server) Cache() *shard.Cache { return s.cache }

// Stats returns the cache's stats block.
func (s *Server) Stats() *stats.Stats { return s.st }

// Handler returns the daemon's HTTP handler:
//
//	GET    /obj/{key}   serve the object (query: size, t)
//	PUT    /obj/{key}   insert/refresh the object (body = content)
//	DELETE /obj/{key}   invalidate the object
//	GET    /peer/{key}  fleet-internal: stored body only, no policy access
//	GET    /metrics     Prometheus text exposition
//	GET    /healthz     liveness probe
//	GET    /statusz     human-readable status
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /obj/{key}", s.handleGet)
	mux.HandleFunc("PUT /obj/{key}", s.handlePut)
	mux.HandleFunc("DELETE /obj/{key}", s.handleDelete)
	mux.HandleFunc("GET /peer/{key}", s.handlePeer)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s.instrument(mux)
}

// instrument wraps the mux with in-flight tracking, response-class
// counting and the per-request arena: every request runs against a
// pooled reqScope instead of a freshly allocated status recorder, which
// is what lets the steady-state serving path reach zero allocations
// (TestServeAllocs).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		sc := scopePool.Get().(*reqScope)
		sc.reset(w)
		next.ServeHTTP(sc, r)
		if class := sc.status / 100; class >= 1 && class <= 5 {
			s.responsesByClass[class].Add(1)
		}
		sc.w = nil
		scopePool.Put(sc)
		s.inflight.Add(-1)
	})
}

// reqMeta extracts key and the optional size/t query parameters. The
// query is scanned in place (parseQuery) rather than through
// r.URL.Query(), whose map was the dominant per-request allocation.
//
//scip:hotpath
func reqMeta(r *http.Request) (key uint64, size int64, t int64, err error) {
	key, err = strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad key: %w", err) //scip:alloc-ok bad-request path: formats only on malformed input
	}
	size, t, err = parseQuery(r.URL.RawQuery)
	if err != nil {
		return 0, 0, 0, err
	}
	return key, size, t, nil
}

// tick resolves a request's logical timestamp: the declared t, or the
// next server-local tick.
//
//scip:hotpath
func (s *Server) tick(t int64) int64 {
	if t >= 0 {
		return t
	}
	return s.clock.Add(1)
}

// fetchBody performs one coalesced fill of key's body: the peer tier
// first when configured and the request declared a size, the origin
// otherwise — both through the shared bounded-backoff implementation
// (retry.go), each under its own budget. The fetch context is detached
// from the request context so a departing waiter does not abort the
// flight for everyone else; coalescing covers the whole chain, so a
// thundering herd of concurrent misses costs one peer round and at most
// one origin fetch.
//
//scip:coldpath miss path: the fill chain pays contexts, timers and the flight closure by design
func (s *Server) fetchBody(r *http.Request, shardIdx int, key uint64, size int64) flightResult {
	ctx := context.WithoutCancel(r.Context())
	res, shared := s.flights[shardIdx].do(key, func() flightResult {
		if s.cfg.PeerFill != nil && size >= 0 {
			res := boundedFetch(ctx, s.cfg.PeerFill, key, size,
				retryPolicy{timeout: s.cfg.PeerTimeout, retries: s.cfg.PeerRetries, backoff: s.cfg.PeerBackoff},
				fetchCounters{attempts: &s.peerFetches, errors: &s.peerErrors, retries: &s.peerRetries})
			if res.err == nil {
				s.peerFills.Add(1)
				res.peer = true
				return res
			}
		}
		return boundedFetch(ctx, s.cfg.Origin, key, size,
			retryPolicy{timeout: s.cfg.OriginTimeout, retries: s.cfg.OriginRetries, backoff: s.cfg.OriginBackoff},
			fetchCounters{attempts: &s.originFetches, errors: &s.originErrors, retries: &s.originRetries})
	})
	if shared {
		s.coalescedWaits.Add(1)
	}
	return res
}

// serveBody writes an object response. The numeric header values are
// formatted into the request's arena: that is safe here, and only here,
// because this path always writes a body, and net/http serialises the
// header block during the first body write — before the handler returns
// and the arena is recycled (see the reqScope lifetime rule).
//
//scip:hotpath
func (s *Server) serveBody(w http.ResponseWriter, cacheState string, shardIdx int, objSize int64, body []byte) {
	sc := scopeOf(w)
	h := w.Header()
	setHeader(h, "Content-Type", "application/octet-stream")
	setHeader(h, "X-Cache", cacheState)
	setHeader(h, "X-Cache-Shard", s.shardStr[shardIdx])
	setHeader(h, "X-Object-Size", sc.itoa(objSize))
	setHeader(h, "Content-Length", sc.itoa(int64(len(body))))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

//scip:hotpath
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, size, t, err := reqMeta(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest) //scip:alloc-ok bad-request path
		return
	}
	shardIdx := s.cache.ShardIndex(key)

	if size < 0 {
		// Unknown size: the origin is the authority, so fetch first and
		// account with the size it reports (the peer tier is skipped —
		// see Config.PeerFill).
		res := s.fetchBody(r, shardIdx, key, -1)
		if res.err != nil {
			s.finishWithError(w, shardIdx, key, res.err)
			return
		}
		hit := s.access(key, res.size, s.tick(t))
		s.bodies[shardIdx].put(key, res.body)
		state := "MISS"
		if hit {
			state = "HIT"
		}
		s.serveBody(w, state, shardIdx, res.size, res.body)
		return
	}

	hit := s.access(key, size, s.tick(t))
	if hit {
		if body, ok := s.copyBody(w, shardIdx, key); ok {
			s.serveBody(w, "HIT", shardIdx, size, body)
			return
		}
		// The policy says resident but the body was displaced from the
		// bounded body store: refetch without disturbing the accounting.
		s.bodyRefetches.Add(1)
	}
	res := s.fetchBody(r, shardIdx, key, size)
	if res.err != nil {
		s.finishWithError(w, shardIdx, key, res.err)
		return
	}
	s.bodies[shardIdx].put(key, res.body)
	if res.peer {
		setHeader(w.Header(), "X-Fill", "peer")
	}
	state := "MISS"
	if hit {
		state = "HIT"
	}
	s.serveBody(w, state, shardIdx, res.size, res.body)
}

// handlePeer serves GET /peer/{key}: the fleet-internal peer-fill
// endpoint. It answers from the shard's body store alone — no policy
// access, no logical-clock tick, no stats observation — so a peer
// asking this node for a body is invisible to every policy decision
// stream; only the peer_serves/peer_misses counters move. A 404 means
// "no body here": the asking node falls through to the origin.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	shardIdx := s.cache.ShardIndex(key)
	body, ok := s.copyBody(w, shardIdx, key)
	if !ok {
		s.peerMisses.Add(1)
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	s.peerServes.Add(1)
	s.serveBody(w, "PEER", shardIdx, int64(len(body)), body)
}

// finishWithError ends a GET whose origin fetch failed: a stale body if
// degradation is enabled and one survives, a 502 otherwise.
//
//scip:coldpath error path: origin failures may allocate for the 502/stale response
func (s *Server) finishWithError(w http.ResponseWriter, shardIdx int, key uint64, err error) {
	if s.cfg.ServeStale {
		if body, ok := s.copyBody(w, shardIdx, key); ok {
			s.staleServes.Add(1)
			s.serveBody(w, "STALE", shardIdx, int64(len(body)), body)
			return
		}
	}
	http.Error(w, "origin: "+err.Error(), http.StatusBadGateway)
}

// copyBody fetches key's stored body into the request arena. The store
// owns its entry buffers and reuses them in place on refresh, so the
// serving path must not hold store memory outside the store lock; the
// copy is what makes that reuse safe (see bodyStore.put).
//
//scip:hotpath
func (s *Server) copyBody(w http.ResponseWriter, shardIdx int, key uint64) ([]byte, bool) {
	sc := scopeOf(w)
	var dst []byte
	if sc != nil {
		dst = sc.body[:0]
	}
	body, ok := s.bodies[shardIdx].get(key, dst)
	if ok && sc != nil {
		sc.body = body
	}
	return body, ok
}

// access performs the one policy access of an object request under the
// shard lock. The daemon is open-loop — requests arrive whenever clients
// send them — so unlike the closed-loop replay drivers (which reuse the
// previous completion timestamp, stats.LatencyTicker) it must pay two
// clock reads per request to time the access; Config.NoLatency trades
// the histogram away to eliminate them.
//
//scip:hotpath
func (s *Server) access(key uint64, size, t int64) bool {
	if s.cfg.NoLatency {
		return s.cache.Access(cache.Request{Time: t, Key: key, Size: size})
	}
	start := time.Now()
	hit := s.cache.Access(cache.Request{Time: t, Key: key, Size: size})
	s.st.Latency().Observe(time.Since(start))
	return hit
}

// handlePut responds 204 with no body, so net/http serialises its
// headers after the handler returns — after the arena is recycled. Every
// header value on this path is therefore a constant or a precomputed
// string, never arena memory (see the reqScope lifetime rule).
//
//scip:hotpath
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, size, t, err := reqMeta(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest) //scip:alloc-ok bad-request path
		return
	}
	body, err := scopeOf(w).readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		http.Error(w, "body: "+err.Error(), http.StatusRequestEntityTooLarge) //scip:alloc-ok bad-request path
		return
	}
	if size < 0 {
		size = int64(len(body))
	}
	if size <= 0 {
		http.Error(w, "empty object: declare ?size= or send a body", http.StatusBadRequest) //scip:alloc-ok bad-request path
		return
	}
	shardIdx := s.cache.ShardIndex(key)
	hit := s.access(key, size, s.tick(t))
	if len(body) > 0 {
		s.bodies[shardIdx].put(key, body)
	}
	h := w.Header()
	setHeader(h, "X-Cache-Shard", s.shardStr[shardIdx])
	if hit {
		setHeader(h, "X-Cache", "HIT")
	} else {
		setHeader(h, "X-Cache", "MISS")
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, _, _, err := reqMeta(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shardIdx := s.cache.ShardIndex(key)
	removed, supported := s.cache.Remove(key)
	hadBody := s.bodies[shardIdx].delete(key)
	if !supported {
		http.Error(w, fmt.Sprintf("policy %s does not support invalidation", s.cache.Name()),
			http.StatusNotImplemented)
		return
	}
	if !removed && !hadBody {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := stats.WritePrometheus(w, s.st.Snapshot(), "scip"); err != nil {
		return
	}
	s.writeServerMetrics(w)
}

// writeServerMetrics appends the serving-path series to the exposition.
func (s *Server) writeServerMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP scip_server_%s %s\n# TYPE scip_server_%s counter\nscip_server_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP scip_server_%s %s\n# TYPE scip_server_%s gauge\nscip_server_%s %s\n",
			name, help, name, name, v)
	}
	counter("origin_fetches_total", "Origin fetch attempts.", s.originFetches.Load())
	counter("origin_errors_total", "Failed origin fetch attempts.", s.originErrors.Load())
	counter("origin_retries_total", "Origin fetch retries.", s.originRetries.Load())
	counter("coalesced_requests_total", "Requests that joined an in-flight origin fetch.", s.coalescedWaits.Load())
	counter("stale_serves_total", "Responses served from a stale body after origin failure.", s.staleServes.Load())
	counter("body_refetches_total", "Policy hits whose body needed an origin refetch.", s.bodyRefetches.Load())
	counter("peer_fetches_total", "Outbound peer-fill fetch attempts.", s.peerFetches.Load())
	counter("peer_errors_total", "Failed outbound peer-fill attempts (misses included).", s.peerErrors.Load())
	counter("peer_retries_total", "Outbound peer-fill retries.", s.peerRetries.Load())
	counter("peer_fills_total", "Misses whose body came from a peer instead of the origin.", s.peerFills.Load())
	counter("peer_serves_total", "Inbound /peer requests answered with a stored body.", s.peerServes.Load())
	counter("peer_misses_total", "Inbound /peer requests answered 404 (no body stored).", s.peerMisses.Load())
	fmt.Fprintf(w, "# HELP scip_server_http_responses_total HTTP responses by status class.\n")
	fmt.Fprintf(w, "# TYPE scip_server_http_responses_total counter\n")
	for class := 1; class <= 5; class++ {
		fmt.Fprintf(w, "scip_server_http_responses_total{class=\"%dxx\"} %d\n",
			class, s.responsesByClass[class].Load())
	}
	gauge("inflight_requests", "Requests currently being served.", strconv.FormatInt(s.inflight.Load(), 10))
	gauge("uptime_seconds", "Seconds since the daemon started.",
		strconv.FormatFloat(time.Since(s.start).Seconds(), 'f', 3, 64))
	// GC series: with the pointer-free cache core, heap-scan bytes and
	// pause totals must stay flat as the resident set grows — these
	// gauges are how a deployment checks that invariant live.
	stats.WriteGCPrometheus(w, stats.ReadGC(), "scip_server")
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	snap := s.st.Snapshot()
	tot := snap.Totals()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "scip-serve: %s (%s mode)\n", s.cache.Name(), s.cache.Mode())
	fmt.Fprintf(w, "uptime:     %s\n", time.Since(s.start).Round(time.Second))
	fmt.Fprintf(w, "capacity:   %.1f MiB across %d shards\n",
		float64(s.cfg.CacheBytes)/(1<<20), s.cache.Shards())
	fmt.Fprintf(w, "used:       %.1f MiB (occupancy skew %.3f)\n",
		float64(tot.UsedBytes)/(1<<20), snap.OccupancySkew())
	fmt.Fprintf(w, "requests:   %d (%d hits, miss %.4f, byteMiss %.4f)\n",
		tot.Requests, tot.Hits, snap.MissRatio(), snap.ByteMissRatio())
	fmt.Fprintf(w, "evictions:  %d\n", tot.Evictions)
	fmt.Fprintf(w, "latency:    p50=%s p99=%s\n",
		snap.LatencyQuantile(0.50).Round(time.Nanosecond),
		snap.LatencyQuantile(0.99).Round(time.Nanosecond))
	fmt.Fprintf(w, "origin:     %d fetches, %d errors, %d retries, %d coalesced, %d stale, %d refetches\n",
		s.originFetches.Load(), s.originErrors.Load(), s.originRetries.Load(),
		s.coalescedWaits.Load(), s.staleServes.Load(), s.bodyRefetches.Load())
	peerFill := "off"
	if s.cfg.PeerFill != nil {
		peerFill = "on"
	}
	fmt.Fprintf(w, "cluster:    peer-fill %s: %d peer fetches (%d fills, %d errors, %d retries); served %d peer reads (%d peer misses)\n",
		peerFill, s.peerFetches.Load(), s.peerFills.Load(), s.peerErrors.Load(),
		s.peerRetries.Load(), s.peerServes.Load(), s.peerMisses.Load())
	fmt.Fprintf(w, "inflight:   %d (goroutines %d)\n", s.inflight.Load(), runtime.NumGoroutine())
	gc := stats.ReadGC()
	fmt.Fprintf(w, "gc:         %d cycles, pause %s, heap-scan %.1f MiB, cpu %.4f%%\n",
		gc.NumGC, gc.PauseTotal.Round(time.Microsecond),
		float64(gc.HeapScanBytes)/(1<<20), gc.CPUFraction*100)
}

// Serve accepts connections on l until ctx is cancelled, then shuts
// down gracefully: the listener closes immediately, in-flight requests
// drain for up to the drain timeout (0 = wait indefinitely), and only
// then does Serve return. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

// ListenAndServe resolves addr and calls Serve. ready, when non-nil,
// receives the bound address once the listener is up (tests and callers
// binding port 0 use it).
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Serve(ctx, l, drain)
}
