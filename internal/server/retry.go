package server

import (
	"context"
	"sync/atomic"
	"time"
)

// retryPolicy bounds one fill source's fetch behaviour: every attempt
// gets its own timeout, failed attempts retry with exponential backoff
// from the base delay, and the attempt count is capped at 1+retries.
// The origin and peer-fill paths share this one implementation (they
// differ only in their budgets), so "a dead upstream cannot stall a
// request past its per-attempt budget" is a single property with a
// single regression test (TestDeadPeerCannotStallRequest) instead of
// two drifting copies.
type retryPolicy struct {
	// timeout bounds each attempt (<= 0: no per-attempt timeout).
	timeout time.Duration
	// retries is the number of attempts after the first (>= 0).
	retries int
	// backoff is the delay before the first retry, doubling per
	// attempt.
	backoff time.Duration
}

// budget returns the worst-case wall time boundedFetch can consume
// under pol: every attempt timing out plus every backoff sleep. Tests
// assert against it; a stalled upstream must not hold a request longer.
func (pol retryPolicy) budget() time.Duration {
	d := pol.timeout * time.Duration(pol.retries+1)
	for a := 0; a < pol.retries; a++ {
		d += pol.backoff << a
	}
	return d
}

// fetchCounters receives a bounded fetch's observable outcomes; any
// field may be nil.
type fetchCounters struct {
	attempts *atomic.Int64 // incremented per attempt
	errors   *atomic.Int64 // incremented per failed attempt
	retries  *atomic.Int64 // incremented per retry taken
}

func bump(c *atomic.Int64) {
	if c != nil {
		c.Add(1)
	}
}

// boundedFetch performs one retried fetch of key from o under pol:
// each attempt is bounded by pol.timeout, failures back off
// exponentially, and a cancelled ctx aborts the backoff wait
// immediately. It returns the first successful attempt's result or the
// last failure.
//
//scip:coldpath miss path: fetch attempts pay contexts and timers by design
func boundedFetch(ctx context.Context, o Origin, key uint64, size int64, pol retryPolicy, c fetchCounters) flightResult {
	var last flightResult
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if pol.timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, pol.timeout)
		}
		bump(c.attempts)
		body, objSize, err := o.Fetch(actx, key, size)
		cancel()
		if err == nil {
			return flightResult{body: body, size: objSize}
		}
		bump(c.errors)
		last = flightResult{err: err}
		if attempt >= pol.retries {
			return last
		}
		bump(c.retries)
		backoff := pol.backoff << attempt
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			last.err = ctx.Err()
			return last
		case <-t.C:
		}
	}
}
