package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scip-cache/scip/internal/gen"
	"github.com/scip-cache/scip/internal/stats"
	"github.com/scip-cache/scip/internal/trace"
)

// TestEndToEndMatchesInProcessReplay is the daemon's determinism
// acceptance test: replaying a generated trace over loopback HTTP
// against scip-serve — shard-partitioned across concurrent clients,
// exactly as scip-load partitions its workers — produces per-shard
// counters and object/byte miss ratios byte-identical to an in-process
// replay of the same trace against the same sharded cache. It also
// checks that /metrics emits valid Prometheus text and that shutdown
// drains cleanly afterwards.
func TestEndToEndMatchesInProcessReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e replay is seconds-long; skipped with -short")
	}
	const (
		scale   = 0.0002
		seed    = 7
		shards  = 4
		clients = 4
	)
	tr, err := gen.Generate(gen.CDNT.Config(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	capBytes := gen.CDNT.CacheBytes(64<<30, scale)
	t.Logf("trace: %d requests, cache %.1f MiB, %d shards, %d clients",
		len(tr.Requests), float64(capBytes)/(1<<20), shards, clients)

	for _, policy := range []string{"SCIP", "LRU"} {
		t.Run(policy, func(t *testing.T) {
			want := inProcessReplay(t, tr, policy, capBytes, shards)
			got := daemonReplay(t, tr, policy, capBytes, shards, clients)
			compareSnapshots(t, want, got, shards)
		})
	}
}

// inProcessReplay is the scip-load ground truth: a serial replay of the
// trace through the same sharded construction the daemon uses.
func inProcessReplay(t *testing.T, tr *trace.Trace, policy string, capBytes int64, shards int) stats.Snapshot {
	t.Helper()
	c, err := BuildSharded(policy, capBytes, shards, seedE2E)
	if err != nil {
		t.Fatal(err)
	}
	st := c.EnableStats()
	for _, req := range tr.Requests {
		c.Access(req)
	}
	return st.Snapshot()
}

const seedE2E = 7

// daemonReplay starts a real scip-serve instance on loopback and replays
// the trace through it: each client goroutine owns the shards whose
// index ≡ client (mod clients) and issues that partition's requests
// sequentially in trace order, so every shard sees the identical access
// sequence as the in-process replay.
func daemonReplay(t *testing.T, tr *trace.Trace, policy string, capBytes int64, shards, clients int) stats.Snapshot {
	t.Helper()
	s, err := New(Config{
		Policy:     policy,
		CacheBytes: capBytes,
		Shards:     shards,
		Seed:       seedE2E,
		Origin:     &SyntheticOrigin{MaxBody: 64},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ListenAndServe(ctx, "127.0.0.1:0", 10*time.Second, ready) }()
	var addr string
	select {
	case a := <-ready:
		addr = a.String()
	case err := <-serveErr:
		t.Fatalf("listen: %v", err)
	}

	// Partition by shard exactly like scip-load's runLoad.
	shardOf := make([]int, len(tr.Requests))
	for i, req := range tr.Requests {
		shardOf[i] = s.Cache().ShardIndex(req.Key)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, req := range tr.Requests {
				if shardOf[i]%clients != w {
					continue
				}
				url := fmt.Sprintf("http://%s/obj/%d?size=%d&t=%d", addr, req.Key, req.Size, req.Time)
				resp, err := client.Get(url)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The exposition endpoint must be valid Prometheus text after a real
	// workload.
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	validatePromText(t, string(metricsText))

	snap := s.Stats().Snapshot()

	// Graceful shutdown must drain cleanly with no requests in flight.
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	return snap
}

// compareSnapshots asserts the per-shard counters and derived ratios are
// byte-identical between the two replays.
func compareSnapshots(t *testing.T, want, got stats.Snapshot, shards int) {
	t.Helper()
	for i := 0; i < shards; i++ {
		w, g := want.Shards[i], got.Shards[i]
		if w != g {
			t.Errorf("shard %d diverged:\n  in-process: %+v\n  daemon:     %+v", i, w, g)
		}
	}
	if w, g := want.MissRatio(), got.MissRatio(); w != g {
		t.Errorf("miss ratio: in-process %v, daemon %v", w, g)
	}
	if w, g := want.ByteMissRatio(), got.ByteMissRatio(); w != g {
		t.Errorf("byte miss ratio: in-process %v, daemon %v", w, g)
	}
	if t.Failed() {
		return
	}
	t.Logf("byte-identical: miss=%.6f byteMiss=%.6f over %d requests",
		got.MissRatio(), got.ByteMissRatio(), got.Totals().Requests)
}

var promSampleRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)

// validatePromText checks every line of a /metrics body against the
// Prometheus text exposition format 0.0.4: lines are HELP/TYPE comments
// or samples, every sample's family has a preceding TYPE, and the
// scip-side families the daemon promises are all present.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	typed := make(map[string]string)
	sampled := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for line := 1; sc.Scan(); line++ {
		s := sc.Text()
		switch {
		case s == "":
		case strings.HasPrefix(s, "# HELP ") || strings.HasPrefix(s, "# TYPE "):
			f := strings.Fields(s)
			if len(f) < 4 {
				t.Errorf("line %d: malformed comment %q", line, s)
				continue
			}
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
		case strings.HasPrefix(s, "#"):
			t.Errorf("line %d: unknown comment form %q", line, s)
		default:
			if !promSampleRE.MatchString(s) {
				t.Errorf("line %d: malformed sample %q", line, s)
				continue
			}
			name := s[:strings.IndexAny(s, "{ ")]
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typed[base] == "histogram" {
					family = base
				}
			}
			if _, ok := typed[family]; !ok {
				t.Errorf("line %d: sample %q has no preceding # TYPE", line, name)
			}
			sampled[family] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"scip_requests_total", "scip_hits_total", "scip_bytes_requested_total",
		"scip_bytes_hit_total", "scip_evictions_total", "scip_used_bytes",
		"scip_access_latency_seconds",
		"scip_server_origin_fetches_total", "scip_server_http_responses_total",
		"scip_server_inflight_requests", "scip_server_uptime_seconds",
	} {
		if !sampled[family] {
			t.Errorf("metrics missing family %s", family)
		}
	}
}
