// Package server implements scip-serve: an HTTP cache daemon fronting
// the sharded SCIP cache (internal/shard over internal/core and the
// other concurrency-ready policies). It is the networked counterpart of
// the in-process scip-load harness — same cache, same accounting, with a
// real request path on top.
//
// # Key types
//
//   - Config — daemon configuration (policy, capacity, shard count,
//     origin behaviour); BuildSharded constructs the sharded cache the
//     daemon and scip-load share.
//   - Server — the daemon itself: New validates a Config, Handler
//     returns the http.Handler, Serve runs it with graceful shutdown.
//   - Origin — the upstream interface; SyntheticOrigin (deterministic
//     in-process origin) and HTTPOrigin (a real upstream) implement it.
//
// # Request path
//
// GET/PUT/DELETE operate on /obj/{key} (decimal uint64 keys). Every
// object request performs exactly one policy Access under its shard
// lock, so the daemon's hit/miss/byte counters are governed by the same
// invariant as scip-load: per-shard access order determines every
// policy decision, and replaying a shard-partitioned trace over
// loopback yields counters byte-identical to the in-process replay
// (asserted by TestEndToEndMatchesInProcessReplay).
//
// Cache accounting is deliberately decoupled from body serving: the
// policy (keys and sizes) is the source of truth for hit/miss and byte
// ratios, while object bodies live in a per-shard bounded body store.
// Origin failures therefore affect only the response (a 502, or a stale
// body when Config.ServeStale is set), never the learning state.
// Concurrent misses on one key are coalesced per shard: a single origin
// fetch is shared by every waiter (singleflight).
//
// # Invariants
//
//   - One Access per object request, ordered per shard by the shard
//     mutex; no wall-clock input reaches the policy (logical timestamps
//     come from the t query parameter or a server-local counter).
//   - The body store never blocks the accounting path and is bounded by
//     the configured capacity; a policy hit whose body was displaced is
//     refetched from the origin and stays a hit.
//   - /metrics renders the internal/stats snapshot in Prometheus text
//     exposition format plus scip_server_* serving-path series.
//
// See OPERATIONS.md for the operator view (flags, endpoints, the full
// metrics catalogue, shutdown semantics) and DESIGN.md §9 for the
// architecture rationale.
package server
