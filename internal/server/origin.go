package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Origin is the daemon's upstream: where object bodies come from on a
// cache miss. size is the declared object size in bytes, or < 0 when the
// request did not declare one; the returned objSize is the authoritative
// size used for cache accounting. The returned body may be shorter than
// objSize (origins cap generated or stored bodies), which affects only
// the response payload, never the accounting.
type Origin interface {
	Fetch(ctx context.Context, key uint64, size int64) (body []byte, objSize int64, err error)
}

// SyntheticOrigin is a deterministic in-process origin: the body bytes
// are a pure function of the key, so two fetches of the same object are
// bit-identical and a "hit" body can always be reconstructed. It stands
// in for a real upstream in tests, benchmarks and trace replay, the same
// way the synthetic workload generators stand in for the paper's
// proprietary traces.
type SyntheticOrigin struct {
	// Latency is an artificial per-fetch delay (0 = none), interruptible
	// by the context.
	Latency time.Duration
	// MaxBody caps the generated body length in bytes (default 64 KiB).
	// Accounting uses the declared object size regardless.
	MaxBody int64
}

// syntheticMaxBodyDefault bounds generated bodies when MaxBody is unset:
// big enough to exercise real payloads, small enough that replaying a
// CDN trace over loopback is not a memory-bandwidth benchmark.
const syntheticMaxBodyDefault = 64 << 10

// Fetch implements Origin.
func (o *SyntheticOrigin) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	if o.Latency > 0 {
		t := time.NewTimer(o.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-t.C:
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if size < 0 {
		size = syntheticSize(key)
	}
	maxBody := o.MaxBody
	if maxBody <= 0 {
		maxBody = syntheticMaxBodyDefault
	}
	n := size
	if n > maxBody {
		n = maxBody
	}
	body := make([]byte, n)
	x := key
	for i := range body {
		x = splitmix64(x)
		body[i] = byte(x)
	}
	return body, size, nil
}

// syntheticSize derives a deterministic object size in [1 KiB, 64 KiB)
// for requests that declare none.
func syntheticSize(key uint64) int64 {
	return 1<<10 + int64(splitmix64(key)%(63<<10))
}

// splitmix64 is the SplitMix64 mixing function — a bijective scramble,
// so distinct keys yield distinct byte streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HTTPOrigin fetches bodies from a real upstream with
// GET {Base}/{key}. Timeouts, retries and backoff are applied by the
// server around Fetch, not here, so every Origin implementation gets the
// same resilience behaviour.
type HTTPOrigin struct {
	// Base is the upstream URL prefix; the decimal key is appended as a
	// path element.
	Base string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
}

// Fetch implements Origin.
func (o *HTTPOrigin) Fetch(ctx context.Context, key uint64, size int64) ([]byte, int64, error) {
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := o.Base + "/" + strconv.FormatUint(key, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("origin %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if size < 0 {
		size = int64(len(body))
	}
	return body, size, nil
}
